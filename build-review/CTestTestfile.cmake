# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo/build-review
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(core "/root/repo/build-review/sas_core_tests")
set_tests_properties(core PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;65;add_test;/root/repo/CMakeLists.txt;0;")
add_test(structure "/root/repo/build-review/sas_structure_tests")
set_tests_properties(structure PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;65;add_test;/root/repo/CMakeLists.txt;0;")
add_test(sampling "/root/repo/build-review/sas_sampling_tests")
set_tests_properties(sampling PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;65;add_test;/root/repo/CMakeLists.txt;0;")
add_test(aware "/root/repo/build-review/sas_aware_tests")
set_tests_properties(aware PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;65;add_test;/root/repo/CMakeLists.txt;0;")
add_test(summaries "/root/repo/build-review/sas_summaries_tests")
set_tests_properties(summaries PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;65;add_test;/root/repo/CMakeLists.txt;0;")
add_test(data "/root/repo/build-review/sas_data_tests")
set_tests_properties(data PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;65;add_test;/root/repo/CMakeLists.txt;0;")
add_test(eval "/root/repo/build-review/sas_eval_tests")
set_tests_properties(eval PROPERTIES  LABELS "tsan" _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;65;add_test;/root/repo/CMakeLists.txt;0;")
add_test(api "/root/repo/build-review/sas_api_tests")
set_tests_properties(api PROPERTIES  LABELS "tsan" _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;65;add_test;/root/repo/CMakeLists.txt;0;")
add_test(window "/root/repo/build-review/sas_window_tests")
set_tests_properties(window PROPERTIES  LABELS "tsan" _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;65;add_test;/root/repo/CMakeLists.txt;0;")
add_test(integration "/root/repo/build-review/sas_integration_tests")
set_tests_properties(integration PROPERTIES  LABELS "tsan" _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;65;add_test;/root/repo/CMakeLists.txt;0;")
