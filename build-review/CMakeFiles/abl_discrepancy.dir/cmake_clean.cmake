file(REMOVE_RECURSE
  "CMakeFiles/abl_discrepancy.dir/bench/abl_discrepancy.cc.o"
  "CMakeFiles/abl_discrepancy.dir/bench/abl_discrepancy.cc.o.d"
  "abl_discrepancy"
  "abl_discrepancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_discrepancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
