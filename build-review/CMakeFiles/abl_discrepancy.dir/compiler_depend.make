# Empty compiler generated dependencies file for abl_discrepancy.
# This may be replaced when dependencies are built.
