
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/summaries/count_sketch_test.cc" "CMakeFiles/sas_summaries_tests.dir/tests/summaries/count_sketch_test.cc.o" "gcc" "CMakeFiles/sas_summaries_tests.dir/tests/summaries/count_sketch_test.cc.o.d"
  "/root/repo/tests/summaries/dyadic_sketch_test.cc" "CMakeFiles/sas_summaries_tests.dir/tests/summaries/dyadic_sketch_test.cc.o" "gcc" "CMakeFiles/sas_summaries_tests.dir/tests/summaries/dyadic_sketch_test.cc.o.d"
  "/root/repo/tests/summaries/haar1d_test.cc" "CMakeFiles/sas_summaries_tests.dir/tests/summaries/haar1d_test.cc.o" "gcc" "CMakeFiles/sas_summaries_tests.dir/tests/summaries/haar1d_test.cc.o.d"
  "/root/repo/tests/summaries/qdigest2d_test.cc" "CMakeFiles/sas_summaries_tests.dir/tests/summaries/qdigest2d_test.cc.o" "gcc" "CMakeFiles/sas_summaries_tests.dir/tests/summaries/qdigest2d_test.cc.o.d"
  "/root/repo/tests/summaries/qdigest_test.cc" "CMakeFiles/sas_summaries_tests.dir/tests/summaries/qdigest_test.cc.o" "gcc" "CMakeFiles/sas_summaries_tests.dir/tests/summaries/qdigest_test.cc.o.d"
  "/root/repo/tests/summaries/wavelet1d_test.cc" "CMakeFiles/sas_summaries_tests.dir/tests/summaries/wavelet1d_test.cc.o" "gcc" "CMakeFiles/sas_summaries_tests.dir/tests/summaries/wavelet1d_test.cc.o.d"
  "/root/repo/tests/summaries/wavelet2d_test.cc" "CMakeFiles/sas_summaries_tests.dir/tests/summaries/wavelet2d_test.cc.o" "gcc" "CMakeFiles/sas_summaries_tests.dir/tests/summaries/wavelet2d_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/CMakeFiles/sas.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
