# Empty compiler generated dependencies file for sas_summaries_tests.
# This may be replaced when dependencies are built.
