file(REMOVE_RECURSE
  "CMakeFiles/sas_summaries_tests.dir/tests/summaries/count_sketch_test.cc.o"
  "CMakeFiles/sas_summaries_tests.dir/tests/summaries/count_sketch_test.cc.o.d"
  "CMakeFiles/sas_summaries_tests.dir/tests/summaries/dyadic_sketch_test.cc.o"
  "CMakeFiles/sas_summaries_tests.dir/tests/summaries/dyadic_sketch_test.cc.o.d"
  "CMakeFiles/sas_summaries_tests.dir/tests/summaries/haar1d_test.cc.o"
  "CMakeFiles/sas_summaries_tests.dir/tests/summaries/haar1d_test.cc.o.d"
  "CMakeFiles/sas_summaries_tests.dir/tests/summaries/qdigest2d_test.cc.o"
  "CMakeFiles/sas_summaries_tests.dir/tests/summaries/qdigest2d_test.cc.o.d"
  "CMakeFiles/sas_summaries_tests.dir/tests/summaries/qdigest_test.cc.o"
  "CMakeFiles/sas_summaries_tests.dir/tests/summaries/qdigest_test.cc.o.d"
  "CMakeFiles/sas_summaries_tests.dir/tests/summaries/wavelet1d_test.cc.o"
  "CMakeFiles/sas_summaries_tests.dir/tests/summaries/wavelet1d_test.cc.o.d"
  "CMakeFiles/sas_summaries_tests.dir/tests/summaries/wavelet2d_test.cc.o"
  "CMakeFiles/sas_summaries_tests.dir/tests/summaries/wavelet2d_test.cc.o.d"
  "sas_summaries_tests"
  "sas_summaries_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sas_summaries_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
