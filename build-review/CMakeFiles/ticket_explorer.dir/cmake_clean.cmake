file(REMOVE_RECURSE
  "CMakeFiles/ticket_explorer.dir/examples/ticket_explorer.cpp.o"
  "CMakeFiles/ticket_explorer.dir/examples/ticket_explorer.cpp.o.d"
  "ticket_explorer"
  "ticket_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ticket_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
