# Empty compiler generated dependencies file for ticket_explorer.
# This may be replaced when dependencies are built.
