# Empty dependencies file for sas_data_tests.
# This may be replaced when dependencies are built.
