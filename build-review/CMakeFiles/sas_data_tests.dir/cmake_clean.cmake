file(REMOVE_RECURSE
  "CMakeFiles/sas_data_tests.dir/tests/data/network_gen_test.cc.o"
  "CMakeFiles/sas_data_tests.dir/tests/data/network_gen_test.cc.o.d"
  "CMakeFiles/sas_data_tests.dir/tests/data/query_gen_test.cc.o"
  "CMakeFiles/sas_data_tests.dir/tests/data/query_gen_test.cc.o.d"
  "CMakeFiles/sas_data_tests.dir/tests/data/techticket_gen_test.cc.o"
  "CMakeFiles/sas_data_tests.dir/tests/data/techticket_gen_test.cc.o.d"
  "CMakeFiles/sas_data_tests.dir/tests/data/trace_reader_test.cc.o"
  "CMakeFiles/sas_data_tests.dir/tests/data/trace_reader_test.cc.o.d"
  "CMakeFiles/sas_data_tests.dir/tests/data/zipf_test.cc.o"
  "CMakeFiles/sas_data_tests.dir/tests/data/zipf_test.cc.o.d"
  "sas_data_tests"
  "sas_data_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sas_data_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
