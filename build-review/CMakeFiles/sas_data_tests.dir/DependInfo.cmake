
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/data/network_gen_test.cc" "CMakeFiles/sas_data_tests.dir/tests/data/network_gen_test.cc.o" "gcc" "CMakeFiles/sas_data_tests.dir/tests/data/network_gen_test.cc.o.d"
  "/root/repo/tests/data/query_gen_test.cc" "CMakeFiles/sas_data_tests.dir/tests/data/query_gen_test.cc.o" "gcc" "CMakeFiles/sas_data_tests.dir/tests/data/query_gen_test.cc.o.d"
  "/root/repo/tests/data/techticket_gen_test.cc" "CMakeFiles/sas_data_tests.dir/tests/data/techticket_gen_test.cc.o" "gcc" "CMakeFiles/sas_data_tests.dir/tests/data/techticket_gen_test.cc.o.d"
  "/root/repo/tests/data/trace_reader_test.cc" "CMakeFiles/sas_data_tests.dir/tests/data/trace_reader_test.cc.o" "gcc" "CMakeFiles/sas_data_tests.dir/tests/data/trace_reader_test.cc.o.d"
  "/root/repo/tests/data/zipf_test.cc" "CMakeFiles/sas_data_tests.dir/tests/data/zipf_test.cc.o" "gcc" "CMakeFiles/sas_data_tests.dir/tests/data/zipf_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/CMakeFiles/sas.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
