file(REMOVE_RECURSE
  "CMakeFiles/sas_structure_tests.dir/tests/structure/dyadic_test.cc.o"
  "CMakeFiles/sas_structure_tests.dir/tests/structure/dyadic_test.cc.o.d"
  "CMakeFiles/sas_structure_tests.dir/tests/structure/hierarchy_test.cc.o"
  "CMakeFiles/sas_structure_tests.dir/tests/structure/hierarchy_test.cc.o.d"
  "CMakeFiles/sas_structure_tests.dir/tests/structure/order_test.cc.o"
  "CMakeFiles/sas_structure_tests.dir/tests/structure/order_test.cc.o.d"
  "CMakeFiles/sas_structure_tests.dir/tests/structure/product_test.cc.o"
  "CMakeFiles/sas_structure_tests.dir/tests/structure/product_test.cc.o.d"
  "sas_structure_tests"
  "sas_structure_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sas_structure_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
