# Empty compiler generated dependencies file for sas_structure_tests.
# This may be replaced when dependencies are built.
