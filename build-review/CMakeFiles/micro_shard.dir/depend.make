# Empty dependencies file for micro_shard.
# This may be replaced when dependencies are built.
