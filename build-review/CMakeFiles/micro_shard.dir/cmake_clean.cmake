file(REMOVE_RECURSE
  "CMakeFiles/micro_shard.dir/bench/micro_shard.cc.o"
  "CMakeFiles/micro_shard.dir/bench/micro_shard.cc.o.d"
  "micro_shard"
  "micro_shard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_shard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
