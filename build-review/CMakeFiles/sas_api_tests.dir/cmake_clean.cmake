file(REMOVE_RECURSE
  "CMakeFiles/sas_api_tests.dir/tests/api/registry_test.cc.o"
  "CMakeFiles/sas_api_tests.dir/tests/api/registry_test.cc.o.d"
  "CMakeFiles/sas_api_tests.dir/tests/api/sharded_test.cc.o"
  "CMakeFiles/sas_api_tests.dir/tests/api/sharded_test.cc.o.d"
  "CMakeFiles/sas_api_tests.dir/tests/api/summarizer_test.cc.o"
  "CMakeFiles/sas_api_tests.dir/tests/api/summarizer_test.cc.o.d"
  "sas_api_tests"
  "sas_api_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sas_api_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
