# Empty compiler generated dependencies file for sas_api_tests.
# This may be replaced when dependencies are built.
