file(REMOVE_RECURSE
  "CMakeFiles/sas_window_tests.dir/tests/window/windowed_test.cc.o"
  "CMakeFiles/sas_window_tests.dir/tests/window/windowed_test.cc.o.d"
  "sas_window_tests"
  "sas_window_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sas_window_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
