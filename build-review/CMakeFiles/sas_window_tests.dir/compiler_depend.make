# Empty compiler generated dependencies file for sas_window_tests.
# This may be replaced when dependencies are built.
