# Empty compiler generated dependencies file for sas_eval_tests.
# This may be replaced when dependencies are built.
