file(REMOVE_RECURSE
  "CMakeFiles/sas_eval_tests.dir/tests/eval/harness_test.cc.o"
  "CMakeFiles/sas_eval_tests.dir/tests/eval/harness_test.cc.o.d"
  "CMakeFiles/sas_eval_tests.dir/tests/eval/metrics_test.cc.o"
  "CMakeFiles/sas_eval_tests.dir/tests/eval/metrics_test.cc.o.d"
  "CMakeFiles/sas_eval_tests.dir/tests/eval/table_test.cc.o"
  "CMakeFiles/sas_eval_tests.dir/tests/eval/table_test.cc.o.d"
  "sas_eval_tests"
  "sas_eval_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sas_eval_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
