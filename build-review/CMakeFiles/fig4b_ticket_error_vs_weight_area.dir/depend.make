# Empty dependencies file for fig4b_ticket_error_vs_weight_area.
# This may be replaced when dependencies are built.
