file(REMOVE_RECURSE
  "CMakeFiles/fig4b_ticket_error_vs_weight_area.dir/bench/fig4b_ticket_error_vs_weight_area.cc.o"
  "CMakeFiles/fig4b_ticket_error_vs_weight_area.dir/bench/fig4b_ticket_error_vs_weight_area.cc.o.d"
  "fig4b_ticket_error_vs_weight_area"
  "fig4b_ticket_error_vs_weight_area.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4b_ticket_error_vs_weight_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
