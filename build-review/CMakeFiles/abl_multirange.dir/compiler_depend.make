# Empty compiler generated dependencies file for abl_multirange.
# This may be replaced when dependencies are built.
