file(REMOVE_RECURSE
  "CMakeFiles/abl_multirange.dir/bench/abl_multirange.cc.o"
  "CMakeFiles/abl_multirange.dir/bench/abl_multirange.cc.o.d"
  "abl_multirange"
  "abl_multirange.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_multirange.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
