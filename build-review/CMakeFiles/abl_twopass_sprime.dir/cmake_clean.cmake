file(REMOVE_RECURSE
  "CMakeFiles/abl_twopass_sprime.dir/bench/abl_twopass_sprime.cc.o"
  "CMakeFiles/abl_twopass_sprime.dir/bench/abl_twopass_sprime.cc.o.d"
  "abl_twopass_sprime"
  "abl_twopass_sprime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_twopass_sprime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
