# Empty dependencies file for abl_twopass_sprime.
# This may be replaced when dependencies are built.
