# Empty dependencies file for fig4c_ticket_error_vs_weight.
# This may be replaced when dependencies are built.
