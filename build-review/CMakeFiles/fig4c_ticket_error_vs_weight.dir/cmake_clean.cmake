file(REMOVE_RECURSE
  "CMakeFiles/fig4c_ticket_error_vs_weight.dir/bench/fig4c_ticket_error_vs_weight.cc.o"
  "CMakeFiles/fig4c_ticket_error_vs_weight.dir/bench/fig4c_ticket_error_vs_weight.cc.o.d"
  "fig4c_ticket_error_vs_weight"
  "fig4c_ticket_error_vs_weight.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4c_ticket_error_vs_weight.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
