# Empty dependencies file for fig3a_build_network.
# This may be replaced when dependencies are built.
