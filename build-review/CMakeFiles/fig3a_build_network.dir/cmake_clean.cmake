file(REMOVE_RECURSE
  "CMakeFiles/fig3a_build_network.dir/bench/fig3a_build_network.cc.o"
  "CMakeFiles/fig3a_build_network.dir/bench/fig3a_build_network.cc.o.d"
  "fig3a_build_network"
  "fig3a_build_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3a_build_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
