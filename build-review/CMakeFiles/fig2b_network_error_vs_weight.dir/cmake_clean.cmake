file(REMOVE_RECURSE
  "CMakeFiles/fig2b_network_error_vs_weight.dir/bench/fig2b_network_error_vs_weight.cc.o"
  "CMakeFiles/fig2b_network_error_vs_weight.dir/bench/fig2b_network_error_vs_weight.cc.o.d"
  "fig2b_network_error_vs_weight"
  "fig2b_network_error_vs_weight.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2b_network_error_vs_weight.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
