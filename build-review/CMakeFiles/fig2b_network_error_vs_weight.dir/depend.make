# Empty dependencies file for fig2b_network_error_vs_weight.
# This may be replaced when dependencies are built.
