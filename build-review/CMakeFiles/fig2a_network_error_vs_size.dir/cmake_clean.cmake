file(REMOVE_RECURSE
  "CMakeFiles/fig2a_network_error_vs_size.dir/bench/fig2a_network_error_vs_size.cc.o"
  "CMakeFiles/fig2a_network_error_vs_size.dir/bench/fig2a_network_error_vs_size.cc.o.d"
  "fig2a_network_error_vs_size"
  "fig2a_network_error_vs_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2a_network_error_vs_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
