# Empty compiler generated dependencies file for fig2a_network_error_vs_size.
# This may be replaced when dependencies are built.
