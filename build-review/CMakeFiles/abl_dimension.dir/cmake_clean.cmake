file(REMOVE_RECURSE
  "CMakeFiles/abl_dimension.dir/bench/abl_dimension.cc.o"
  "CMakeFiles/abl_dimension.dir/bench/abl_dimension.cc.o.d"
  "abl_dimension"
  "abl_dimension.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_dimension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
