# Empty dependencies file for abl_dimension.
# This may be replaced when dependencies are built.
