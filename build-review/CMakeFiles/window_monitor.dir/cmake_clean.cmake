file(REMOVE_RECURSE
  "CMakeFiles/window_monitor.dir/examples/window_monitor.cpp.o"
  "CMakeFiles/window_monitor.dir/examples/window_monitor.cpp.o.d"
  "window_monitor"
  "window_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/window_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
