# Empty dependencies file for window_monitor.
# This may be replaced when dependencies are built.
