file(REMOVE_RECURSE
  "CMakeFiles/sas_integration_tests.dir/tests/integration/edge_cases_test.cc.o"
  "CMakeFiles/sas_integration_tests.dir/tests/integration/edge_cases_test.cc.o.d"
  "CMakeFiles/sas_integration_tests.dir/tests/integration/end_to_end_test.cc.o"
  "CMakeFiles/sas_integration_tests.dir/tests/integration/end_to_end_test.cc.o.d"
  "CMakeFiles/sas_integration_tests.dir/tests/integration/properties_test.cc.o"
  "CMakeFiles/sas_integration_tests.dir/tests/integration/properties_test.cc.o.d"
  "sas_integration_tests"
  "sas_integration_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sas_integration_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
