# Empty compiler generated dependencies file for sas_integration_tests.
# This may be replaced when dependencies are built.
