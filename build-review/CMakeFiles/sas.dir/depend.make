# Empty dependencies file for sas.
# This may be replaced when dependencies are built.
