
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/api/builders.cc" "CMakeFiles/sas.dir/src/api/builders.cc.o" "gcc" "CMakeFiles/sas.dir/src/api/builders.cc.o.d"
  "/root/repo/src/api/registry.cc" "CMakeFiles/sas.dir/src/api/registry.cc.o" "gcc" "CMakeFiles/sas.dir/src/api/registry.cc.o.d"
  "/root/repo/src/api/sharded.cc" "CMakeFiles/sas.dir/src/api/sharded.cc.o" "gcc" "CMakeFiles/sas.dir/src/api/sharded.cc.o.d"
  "/root/repo/src/api/summarizer.cc" "CMakeFiles/sas.dir/src/api/summarizer.cc.o" "gcc" "CMakeFiles/sas.dir/src/api/summarizer.cc.o.d"
  "/root/repo/src/api/summary.cc" "CMakeFiles/sas.dir/src/api/summary.cc.o" "gcc" "CMakeFiles/sas.dir/src/api/summary.cc.o.d"
  "/root/repo/src/aware/disjoint_summarizer.cc" "CMakeFiles/sas.dir/src/aware/disjoint_summarizer.cc.o" "gcc" "CMakeFiles/sas.dir/src/aware/disjoint_summarizer.cc.o.d"
  "/root/repo/src/aware/hierarchy_summarizer.cc" "CMakeFiles/sas.dir/src/aware/hierarchy_summarizer.cc.o" "gcc" "CMakeFiles/sas.dir/src/aware/hierarchy_summarizer.cc.o.d"
  "/root/repo/src/aware/kd_hierarchy.cc" "CMakeFiles/sas.dir/src/aware/kd_hierarchy.cc.o" "gcc" "CMakeFiles/sas.dir/src/aware/kd_hierarchy.cc.o.d"
  "/root/repo/src/aware/kd_nd.cc" "CMakeFiles/sas.dir/src/aware/kd_nd.cc.o" "gcc" "CMakeFiles/sas.dir/src/aware/kd_nd.cc.o.d"
  "/root/repo/src/aware/order_summarizer.cc" "CMakeFiles/sas.dir/src/aware/order_summarizer.cc.o" "gcc" "CMakeFiles/sas.dir/src/aware/order_summarizer.cc.o.d"
  "/root/repo/src/aware/product_summarizer.cc" "CMakeFiles/sas.dir/src/aware/product_summarizer.cc.o" "gcc" "CMakeFiles/sas.dir/src/aware/product_summarizer.cc.o.d"
  "/root/repo/src/aware/two_pass.cc" "CMakeFiles/sas.dir/src/aware/two_pass.cc.o" "gcc" "CMakeFiles/sas.dir/src/aware/two_pass.cc.o.d"
  "/root/repo/src/core/discrepancy.cc" "CMakeFiles/sas.dir/src/core/discrepancy.cc.o" "gcc" "CMakeFiles/sas.dir/src/core/discrepancy.cc.o.d"
  "/root/repo/src/core/ipps.cc" "CMakeFiles/sas.dir/src/core/ipps.cc.o" "gcc" "CMakeFiles/sas.dir/src/core/ipps.cc.o.d"
  "/root/repo/src/core/merge.cc" "CMakeFiles/sas.dir/src/core/merge.cc.o" "gcc" "CMakeFiles/sas.dir/src/core/merge.cc.o.d"
  "/root/repo/src/core/pair_aggregate.cc" "CMakeFiles/sas.dir/src/core/pair_aggregate.cc.o" "gcc" "CMakeFiles/sas.dir/src/core/pair_aggregate.cc.o.d"
  "/root/repo/src/core/prob_vector.cc" "CMakeFiles/sas.dir/src/core/prob_vector.cc.o" "gcc" "CMakeFiles/sas.dir/src/core/prob_vector.cc.o.d"
  "/root/repo/src/core/random.cc" "CMakeFiles/sas.dir/src/core/random.cc.o" "gcc" "CMakeFiles/sas.dir/src/core/random.cc.o.d"
  "/root/repo/src/core/sample.cc" "CMakeFiles/sas.dir/src/core/sample.cc.o" "gcc" "CMakeFiles/sas.dir/src/core/sample.cc.o.d"
  "/root/repo/src/core/sample_queries.cc" "CMakeFiles/sas.dir/src/core/sample_queries.cc.o" "gcc" "CMakeFiles/sas.dir/src/core/sample_queries.cc.o.d"
  "/root/repo/src/core/tail_bounds.cc" "CMakeFiles/sas.dir/src/core/tail_bounds.cc.o" "gcc" "CMakeFiles/sas.dir/src/core/tail_bounds.cc.o.d"
  "/root/repo/src/data/dataset.cc" "CMakeFiles/sas.dir/src/data/dataset.cc.o" "gcc" "CMakeFiles/sas.dir/src/data/dataset.cc.o.d"
  "/root/repo/src/data/network_gen.cc" "CMakeFiles/sas.dir/src/data/network_gen.cc.o" "gcc" "CMakeFiles/sas.dir/src/data/network_gen.cc.o.d"
  "/root/repo/src/data/query_gen.cc" "CMakeFiles/sas.dir/src/data/query_gen.cc.o" "gcc" "CMakeFiles/sas.dir/src/data/query_gen.cc.o.d"
  "/root/repo/src/data/techticket_gen.cc" "CMakeFiles/sas.dir/src/data/techticket_gen.cc.o" "gcc" "CMakeFiles/sas.dir/src/data/techticket_gen.cc.o.d"
  "/root/repo/src/data/trace_reader.cc" "CMakeFiles/sas.dir/src/data/trace_reader.cc.o" "gcc" "CMakeFiles/sas.dir/src/data/trace_reader.cc.o.d"
  "/root/repo/src/data/zipf.cc" "CMakeFiles/sas.dir/src/data/zipf.cc.o" "gcc" "CMakeFiles/sas.dir/src/data/zipf.cc.o.d"
  "/root/repo/src/eval/harness.cc" "CMakeFiles/sas.dir/src/eval/harness.cc.o" "gcc" "CMakeFiles/sas.dir/src/eval/harness.cc.o.d"
  "/root/repo/src/eval/metrics.cc" "CMakeFiles/sas.dir/src/eval/metrics.cc.o" "gcc" "CMakeFiles/sas.dir/src/eval/metrics.cc.o.d"
  "/root/repo/src/eval/table.cc" "CMakeFiles/sas.dir/src/eval/table.cc.o" "gcc" "CMakeFiles/sas.dir/src/eval/table.cc.o.d"
  "/root/repo/src/sampling/poisson.cc" "CMakeFiles/sas.dir/src/sampling/poisson.cc.o" "gcc" "CMakeFiles/sas.dir/src/sampling/poisson.cc.o.d"
  "/root/repo/src/sampling/stream_varopt.cc" "CMakeFiles/sas.dir/src/sampling/stream_varopt.cc.o" "gcc" "CMakeFiles/sas.dir/src/sampling/stream_varopt.cc.o.d"
  "/root/repo/src/sampling/systematic.cc" "CMakeFiles/sas.dir/src/sampling/systematic.cc.o" "gcc" "CMakeFiles/sas.dir/src/sampling/systematic.cc.o.d"
  "/root/repo/src/sampling/varopt_offline.cc" "CMakeFiles/sas.dir/src/sampling/varopt_offline.cc.o" "gcc" "CMakeFiles/sas.dir/src/sampling/varopt_offline.cc.o.d"
  "/root/repo/src/structure/dyadic.cc" "CMakeFiles/sas.dir/src/structure/dyadic.cc.o" "gcc" "CMakeFiles/sas.dir/src/structure/dyadic.cc.o.d"
  "/root/repo/src/structure/hierarchy.cc" "CMakeFiles/sas.dir/src/structure/hierarchy.cc.o" "gcc" "CMakeFiles/sas.dir/src/structure/hierarchy.cc.o.d"
  "/root/repo/src/structure/order.cc" "CMakeFiles/sas.dir/src/structure/order.cc.o" "gcc" "CMakeFiles/sas.dir/src/structure/order.cc.o.d"
  "/root/repo/src/structure/product.cc" "CMakeFiles/sas.dir/src/structure/product.cc.o" "gcc" "CMakeFiles/sas.dir/src/structure/product.cc.o.d"
  "/root/repo/src/summaries/count_sketch.cc" "CMakeFiles/sas.dir/src/summaries/count_sketch.cc.o" "gcc" "CMakeFiles/sas.dir/src/summaries/count_sketch.cc.o.d"
  "/root/repo/src/summaries/dyadic_sketch.cc" "CMakeFiles/sas.dir/src/summaries/dyadic_sketch.cc.o" "gcc" "CMakeFiles/sas.dir/src/summaries/dyadic_sketch.cc.o.d"
  "/root/repo/src/summaries/exact_summary.cc" "CMakeFiles/sas.dir/src/summaries/exact_summary.cc.o" "gcc" "CMakeFiles/sas.dir/src/summaries/exact_summary.cc.o.d"
  "/root/repo/src/summaries/haar1d.cc" "CMakeFiles/sas.dir/src/summaries/haar1d.cc.o" "gcc" "CMakeFiles/sas.dir/src/summaries/haar1d.cc.o.d"
  "/root/repo/src/summaries/qdigest.cc" "CMakeFiles/sas.dir/src/summaries/qdigest.cc.o" "gcc" "CMakeFiles/sas.dir/src/summaries/qdigest.cc.o.d"
  "/root/repo/src/summaries/qdigest2d.cc" "CMakeFiles/sas.dir/src/summaries/qdigest2d.cc.o" "gcc" "CMakeFiles/sas.dir/src/summaries/qdigest2d.cc.o.d"
  "/root/repo/src/summaries/wavelet1d.cc" "CMakeFiles/sas.dir/src/summaries/wavelet1d.cc.o" "gcc" "CMakeFiles/sas.dir/src/summaries/wavelet1d.cc.o.d"
  "/root/repo/src/summaries/wavelet2d.cc" "CMakeFiles/sas.dir/src/summaries/wavelet2d.cc.o" "gcc" "CMakeFiles/sas.dir/src/summaries/wavelet2d.cc.o.d"
  "/root/repo/src/window/windowed.cc" "CMakeFiles/sas.dir/src/window/windowed.cc.o" "gcc" "CMakeFiles/sas.dir/src/window/windowed.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
