file(REMOVE_RECURSE
  "libsas.a"
)
