
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/discrepancy_test.cc" "CMakeFiles/sas_core_tests.dir/tests/core/discrepancy_test.cc.o" "gcc" "CMakeFiles/sas_core_tests.dir/tests/core/discrepancy_test.cc.o.d"
  "/root/repo/tests/core/fastpath_test.cc" "CMakeFiles/sas_core_tests.dir/tests/core/fastpath_test.cc.o" "gcc" "CMakeFiles/sas_core_tests.dir/tests/core/fastpath_test.cc.o.d"
  "/root/repo/tests/core/ipps_test.cc" "CMakeFiles/sas_core_tests.dir/tests/core/ipps_test.cc.o" "gcc" "CMakeFiles/sas_core_tests.dir/tests/core/ipps_test.cc.o.d"
  "/root/repo/tests/core/merge_test.cc" "CMakeFiles/sas_core_tests.dir/tests/core/merge_test.cc.o" "gcc" "CMakeFiles/sas_core_tests.dir/tests/core/merge_test.cc.o.d"
  "/root/repo/tests/core/pair_aggregate_test.cc" "CMakeFiles/sas_core_tests.dir/tests/core/pair_aggregate_test.cc.o" "gcc" "CMakeFiles/sas_core_tests.dir/tests/core/pair_aggregate_test.cc.o.d"
  "/root/repo/tests/core/prob_vector_test.cc" "CMakeFiles/sas_core_tests.dir/tests/core/prob_vector_test.cc.o" "gcc" "CMakeFiles/sas_core_tests.dir/tests/core/prob_vector_test.cc.o.d"
  "/root/repo/tests/core/random_test.cc" "CMakeFiles/sas_core_tests.dir/tests/core/random_test.cc.o" "gcc" "CMakeFiles/sas_core_tests.dir/tests/core/random_test.cc.o.d"
  "/root/repo/tests/core/sample_queries_test.cc" "CMakeFiles/sas_core_tests.dir/tests/core/sample_queries_test.cc.o" "gcc" "CMakeFiles/sas_core_tests.dir/tests/core/sample_queries_test.cc.o.d"
  "/root/repo/tests/core/sample_test.cc" "CMakeFiles/sas_core_tests.dir/tests/core/sample_test.cc.o" "gcc" "CMakeFiles/sas_core_tests.dir/tests/core/sample_test.cc.o.d"
  "/root/repo/tests/core/tail_bounds_test.cc" "CMakeFiles/sas_core_tests.dir/tests/core/tail_bounds_test.cc.o" "gcc" "CMakeFiles/sas_core_tests.dir/tests/core/tail_bounds_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/CMakeFiles/sas.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
