# Empty compiler generated dependencies file for sas_core_tests.
# This may be replaced when dependencies are built.
