file(REMOVE_RECURSE
  "CMakeFiles/sas_core_tests.dir/tests/core/discrepancy_test.cc.o"
  "CMakeFiles/sas_core_tests.dir/tests/core/discrepancy_test.cc.o.d"
  "CMakeFiles/sas_core_tests.dir/tests/core/fastpath_test.cc.o"
  "CMakeFiles/sas_core_tests.dir/tests/core/fastpath_test.cc.o.d"
  "CMakeFiles/sas_core_tests.dir/tests/core/ipps_test.cc.o"
  "CMakeFiles/sas_core_tests.dir/tests/core/ipps_test.cc.o.d"
  "CMakeFiles/sas_core_tests.dir/tests/core/merge_test.cc.o"
  "CMakeFiles/sas_core_tests.dir/tests/core/merge_test.cc.o.d"
  "CMakeFiles/sas_core_tests.dir/tests/core/pair_aggregate_test.cc.o"
  "CMakeFiles/sas_core_tests.dir/tests/core/pair_aggregate_test.cc.o.d"
  "CMakeFiles/sas_core_tests.dir/tests/core/prob_vector_test.cc.o"
  "CMakeFiles/sas_core_tests.dir/tests/core/prob_vector_test.cc.o.d"
  "CMakeFiles/sas_core_tests.dir/tests/core/random_test.cc.o"
  "CMakeFiles/sas_core_tests.dir/tests/core/random_test.cc.o.d"
  "CMakeFiles/sas_core_tests.dir/tests/core/sample_queries_test.cc.o"
  "CMakeFiles/sas_core_tests.dir/tests/core/sample_queries_test.cc.o.d"
  "CMakeFiles/sas_core_tests.dir/tests/core/sample_test.cc.o"
  "CMakeFiles/sas_core_tests.dir/tests/core/sample_test.cc.o.d"
  "CMakeFiles/sas_core_tests.dir/tests/core/tail_bounds_test.cc.o"
  "CMakeFiles/sas_core_tests.dir/tests/core/tail_bounds_test.cc.o.d"
  "sas_core_tests"
  "sas_core_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sas_core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
