# Empty compiler generated dependencies file for abl_product_discrepancy.
# This may be replaced when dependencies are built.
