file(REMOVE_RECURSE
  "CMakeFiles/abl_product_discrepancy.dir/bench/abl_product_discrepancy.cc.o"
  "CMakeFiles/abl_product_discrepancy.dir/bench/abl_product_discrepancy.cc.o.d"
  "abl_product_discrepancy"
  "abl_product_discrepancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_product_discrepancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
