file(REMOVE_RECURSE
  "CMakeFiles/fig3b_build_techticket.dir/bench/fig3b_build_techticket.cc.o"
  "CMakeFiles/fig3b_build_techticket.dir/bench/fig3b_build_techticket.cc.o.d"
  "fig3b_build_techticket"
  "fig3b_build_techticket.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3b_build_techticket.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
