# Empty compiler generated dependencies file for fig3b_build_techticket.
# This may be replaced when dependencies are built.
