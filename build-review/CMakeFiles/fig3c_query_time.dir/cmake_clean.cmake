file(REMOVE_RECURSE
  "CMakeFiles/fig3c_query_time.dir/bench/fig3c_query_time.cc.o"
  "CMakeFiles/fig3c_query_time.dir/bench/fig3c_query_time.cc.o.d"
  "fig3c_query_time"
  "fig3c_query_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3c_query_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
