# Empty compiler generated dependencies file for fig3c_query_time.
# This may be replaced when dependencies are built.
