# Empty compiler generated dependencies file for sas_aware_tests.
# This may be replaced when dependencies are built.
