file(REMOVE_RECURSE
  "CMakeFiles/sas_aware_tests.dir/tests/aware/disjoint_summarizer_test.cc.o"
  "CMakeFiles/sas_aware_tests.dir/tests/aware/disjoint_summarizer_test.cc.o.d"
  "CMakeFiles/sas_aware_tests.dir/tests/aware/hierarchy_summarizer_test.cc.o"
  "CMakeFiles/sas_aware_tests.dir/tests/aware/hierarchy_summarizer_test.cc.o.d"
  "CMakeFiles/sas_aware_tests.dir/tests/aware/kd_hierarchy_test.cc.o"
  "CMakeFiles/sas_aware_tests.dir/tests/aware/kd_hierarchy_test.cc.o.d"
  "CMakeFiles/sas_aware_tests.dir/tests/aware/kd_nd_test.cc.o"
  "CMakeFiles/sas_aware_tests.dir/tests/aware/kd_nd_test.cc.o.d"
  "CMakeFiles/sas_aware_tests.dir/tests/aware/order_summarizer_test.cc.o"
  "CMakeFiles/sas_aware_tests.dir/tests/aware/order_summarizer_test.cc.o.d"
  "CMakeFiles/sas_aware_tests.dir/tests/aware/product_summarizer_test.cc.o"
  "CMakeFiles/sas_aware_tests.dir/tests/aware/product_summarizer_test.cc.o.d"
  "CMakeFiles/sas_aware_tests.dir/tests/aware/two_pass_test.cc.o"
  "CMakeFiles/sas_aware_tests.dir/tests/aware/two_pass_test.cc.o.d"
  "CMakeFiles/sas_aware_tests.dir/tests/aware/two_pass_variants_test.cc.o"
  "CMakeFiles/sas_aware_tests.dir/tests/aware/two_pass_variants_test.cc.o.d"
  "sas_aware_tests"
  "sas_aware_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sas_aware_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
