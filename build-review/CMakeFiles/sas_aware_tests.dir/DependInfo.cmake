
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/aware/disjoint_summarizer_test.cc" "CMakeFiles/sas_aware_tests.dir/tests/aware/disjoint_summarizer_test.cc.o" "gcc" "CMakeFiles/sas_aware_tests.dir/tests/aware/disjoint_summarizer_test.cc.o.d"
  "/root/repo/tests/aware/hierarchy_summarizer_test.cc" "CMakeFiles/sas_aware_tests.dir/tests/aware/hierarchy_summarizer_test.cc.o" "gcc" "CMakeFiles/sas_aware_tests.dir/tests/aware/hierarchy_summarizer_test.cc.o.d"
  "/root/repo/tests/aware/kd_hierarchy_test.cc" "CMakeFiles/sas_aware_tests.dir/tests/aware/kd_hierarchy_test.cc.o" "gcc" "CMakeFiles/sas_aware_tests.dir/tests/aware/kd_hierarchy_test.cc.o.d"
  "/root/repo/tests/aware/kd_nd_test.cc" "CMakeFiles/sas_aware_tests.dir/tests/aware/kd_nd_test.cc.o" "gcc" "CMakeFiles/sas_aware_tests.dir/tests/aware/kd_nd_test.cc.o.d"
  "/root/repo/tests/aware/order_summarizer_test.cc" "CMakeFiles/sas_aware_tests.dir/tests/aware/order_summarizer_test.cc.o" "gcc" "CMakeFiles/sas_aware_tests.dir/tests/aware/order_summarizer_test.cc.o.d"
  "/root/repo/tests/aware/product_summarizer_test.cc" "CMakeFiles/sas_aware_tests.dir/tests/aware/product_summarizer_test.cc.o" "gcc" "CMakeFiles/sas_aware_tests.dir/tests/aware/product_summarizer_test.cc.o.d"
  "/root/repo/tests/aware/two_pass_test.cc" "CMakeFiles/sas_aware_tests.dir/tests/aware/two_pass_test.cc.o" "gcc" "CMakeFiles/sas_aware_tests.dir/tests/aware/two_pass_test.cc.o.d"
  "/root/repo/tests/aware/two_pass_variants_test.cc" "CMakeFiles/sas_aware_tests.dir/tests/aware/two_pass_variants_test.cc.o" "gcc" "CMakeFiles/sas_aware_tests.dir/tests/aware/two_pass_variants_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/CMakeFiles/sas.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
