# Empty dependencies file for figure1_hierarchy.
# This may be replaced when dependencies are built.
