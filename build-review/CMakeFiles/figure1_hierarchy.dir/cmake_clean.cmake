file(REMOVE_RECURSE
  "CMakeFiles/figure1_hierarchy.dir/examples/figure1_hierarchy.cpp.o"
  "CMakeFiles/figure1_hierarchy.dir/examples/figure1_hierarchy.cpp.o.d"
  "figure1_hierarchy"
  "figure1_hierarchy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure1_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
