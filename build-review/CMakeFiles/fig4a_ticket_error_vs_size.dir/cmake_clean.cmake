file(REMOVE_RECURSE
  "CMakeFiles/fig4a_ticket_error_vs_size.dir/bench/fig4a_ticket_error_vs_size.cc.o"
  "CMakeFiles/fig4a_ticket_error_vs_size.dir/bench/fig4a_ticket_error_vs_size.cc.o.d"
  "fig4a_ticket_error_vs_size"
  "fig4a_ticket_error_vs_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4a_ticket_error_vs_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
