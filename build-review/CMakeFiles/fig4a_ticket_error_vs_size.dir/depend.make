# Empty dependencies file for fig4a_ticket_error_vs_size.
# This may be replaced when dependencies are built.
