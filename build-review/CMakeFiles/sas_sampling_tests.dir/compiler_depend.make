# Empty compiler generated dependencies file for sas_sampling_tests.
# This may be replaced when dependencies are built.
