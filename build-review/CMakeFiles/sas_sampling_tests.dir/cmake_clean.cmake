file(REMOVE_RECURSE
  "CMakeFiles/sas_sampling_tests.dir/tests/sampling/poisson_test.cc.o"
  "CMakeFiles/sas_sampling_tests.dir/tests/sampling/poisson_test.cc.o.d"
  "CMakeFiles/sas_sampling_tests.dir/tests/sampling/stream_varopt_test.cc.o"
  "CMakeFiles/sas_sampling_tests.dir/tests/sampling/stream_varopt_test.cc.o.d"
  "CMakeFiles/sas_sampling_tests.dir/tests/sampling/systematic_test.cc.o"
  "CMakeFiles/sas_sampling_tests.dir/tests/sampling/systematic_test.cc.o.d"
  "CMakeFiles/sas_sampling_tests.dir/tests/sampling/varopt_offline_test.cc.o"
  "CMakeFiles/sas_sampling_tests.dir/tests/sampling/varopt_offline_test.cc.o.d"
  "sas_sampling_tests"
  "sas_sampling_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sas_sampling_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
