file(REMOVE_RECURSE
  "CMakeFiles/fig2c_network_error_vs_ranges.dir/bench/fig2c_network_error_vs_ranges.cc.o"
  "CMakeFiles/fig2c_network_error_vs_ranges.dir/bench/fig2c_network_error_vs_ranges.cc.o.d"
  "fig2c_network_error_vs_ranges"
  "fig2c_network_error_vs_ranges.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2c_network_error_vs_ranges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
