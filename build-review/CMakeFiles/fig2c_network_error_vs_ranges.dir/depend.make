# Empty dependencies file for fig2c_network_error_vs_ranges.
# This may be replaced when dependencies are built.
