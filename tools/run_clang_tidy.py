#!/usr/bin/env python3
"""Parallel clang-tidy driver with baseline-diff semantics.

Runs clang-tidy (configuration: the repo's .clang-tidy) over every src/
translation unit in a CMake compile database and diffs the diagnostics
against tools/tidy_baseline.txt:

  * a diagnostic NOT in the baseline is new -> reported, exit 1;
  * a baseline entry that no longer fires is stale -> reported as a note
    (run with --update-baseline to drop it);
  * a clean tree against an empty baseline -> exit 0.

The baseline exists so a check upgrade can land before its last fixes do;
the goal state — and the current state — is an empty file. Entries are
"<path>\t<check>\t<message>" with paths relative to the repo root, so the
file is stable across machines and line-number drift.

Usage:
    tools/run_clang_tidy.py [--build-dir build] [--jobs N]
                            [--baseline tools/tidy_baseline.txt]
                            [--clang-tidy BIN] [--require-tool]
                            [--update-baseline] [paths...]

Positional paths (relative to the repo root) filter which compile-database
entries run; the default is every entry under src/. Without clang-tidy on
PATH (or $CLANG_TIDY) the driver prints a notice and exits 0 — pass
--require-tool (CI does) to make a missing tool fatal. Exit codes: 0 clean,
1 new diagnostics, 2 environment/usage error.

TUs matching a PATH_CHECK_FILTERS prefix (currently src/core/simd*, the
raw-intrinsics home) run with targeted `--checks` exclusions instead of
baseline entries — intentional platform-specific idioms are filtered at
the source rather than grandfathered, so the baseline stays empty.
"""

import argparse
import concurrent.futures
import json
import os
import re
import shutil
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# clang-tidy diagnostic header: "path:line:col: warning: message [check]".
DIAG_RE = re.compile(
    r"^(?P<path>[^\s].*?):(?P<line>\d+):(?P<col>\d+): "
    r"(?P<kind>warning|error): (?P<msg>.*?) \[(?P<check>[^\]]+)\]\s*$")

# Versioned fallbacks searched after plain "clang-tidy" (newest first).
TIDY_CANDIDATES = ["clang-tidy"] + [
    f"clang-tidy-{v}" for v in range(21, 13, -1)]

# Per-path check filters: TUs that are intentionally platform-specific get
# targeted `--checks` exclusions appended to the repo .clang-tidy config
# instead of baseline entries, keeping tools/tidy_baseline.txt empty. Each
# entry is (repo-relative path prefix, checks filter passed for that TU).
PATH_CHECK_FILTERS = (
    # The SIMD kernel TU speaks raw x86 intrinsics by design (see
    # core/simd.h): vector load/store pointer casts and width constants are
    # part of the intrinsics contract, not defects. Everything else goes
    # through the dispatch facade and keeps the full check set.
    ("src/core/simd",
     "-portability-simd-intrinsics,"
     "-cppcoreguidelines-pro-type-reinterpret-cast,"
     "-readability-magic-numbers,"
     "-cppcoreguidelines-avoid-magic-numbers"),
)


def checks_filter_for(path):
    rel = os.path.relpath(path, REPO_ROOT).replace(os.sep, "/")
    for prefix, checks in PATH_CHECK_FILTERS:
        if rel.startswith(prefix):
            return checks
    return None


def find_clang_tidy(explicit):
    if explicit:
        path = shutil.which(explicit)
        return path or (explicit if os.path.isfile(explicit) else None)
    env = os.environ.get("CLANG_TIDY")
    if env:
        return shutil.which(env) or (env if os.path.isfile(env) else None)
    for cand in TIDY_CANDIDATES:
        path = shutil.which(cand)
        if path:
            return path
    return None


def load_compile_db(build_dir):
    db_path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.isfile(db_path):
        sys.stderr.write(
            f"error: {db_path} not found; configure with "
            "`cmake -B build -S .` (CMAKE_EXPORT_COMPILE_COMMANDS is on by "
            "default in this repo)\n")
        sys.exit(2)
    with open(db_path, encoding="utf-8") as f:
        entries = json.load(f)
    files = []
    for entry in entries:
        directory = entry.get("directory", ".")
        if not os.path.isabs(directory):
            directory = os.path.join(os.path.dirname(db_path), directory)
        path = entry["file"]
        if not os.path.isabs(path):
            path = os.path.join(directory, path)
        files.append(os.path.normpath(path))
    return sorted(set(files))


def select_files(files, path_filters):
    selected = []
    for path in files:
        rel = os.path.relpath(path, REPO_ROOT)
        if path_filters:
            if any(rel == flt or rel.startswith(flt.rstrip("/") + "/")
                   for flt in path_filters):
                selected.append(path)
        elif rel.startswith("src" + os.sep):
            selected.append(path)
    return selected


def run_one(clang_tidy, build_dir, path):
    """Runs clang-tidy on one TU; returns (path, diagnostics, hard_error)."""
    cmd = [clang_tidy, "-p", build_dir, "--quiet"]
    checks = checks_filter_for(path)
    if checks:
        cmd.append(f"--checks={checks}")
    cmd.append(path)
    proc = subprocess.run(
        cmd, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
    diags = []
    for line in proc.stdout.splitlines():
        m = DIAG_RE.match(line)
        if not m:
            continue
        diag_path = m.group("path")
        if not os.path.isabs(diag_path):
            diag_path = os.path.join(build_dir, diag_path)
        rel = os.path.relpath(os.path.normpath(diag_path), REPO_ROOT)
        diags.append((rel, int(m.group("line")), m.group("check"),
                      m.group("msg")))
    # Diagnostics make clang-tidy exit nonzero too, so a hard error is
    # "nonzero exit AND nothing parseable" (bad flags, crash, missing DB
    # entry).
    hard_error = proc.returncode != 0 and not diags
    return path, diags, proc.stderr if hard_error else ""


def baseline_key(diag):
    rel, _line, check, msg = diag
    return (rel.replace(os.sep, "/"), check, msg)


def read_baseline(path):
    entries = set()
    if not os.path.isfile(path):
        return entries
    with open(path, encoding="utf-8") as f:
        for line in f:
            line = line.rstrip("\n")
            if not line or line.lstrip().startswith("#"):
                continue
            parts = line.split("\t")
            if len(parts) != 3:
                sys.stderr.write(
                    f"error: malformed baseline line (want 3 tab-separated "
                    f"fields): {line!r}\n")
                sys.exit(2)
            entries.add(tuple(parts))
    return entries


def write_baseline(path, keys):
    with open(path, "w", encoding="utf-8") as f:
        f.write("# clang-tidy grandfathered diagnostics "
                "(tools/run_clang_tidy.py --update-baseline).\n"
                "# Format: path<TAB>check<TAB>message. Keep this file "
                "empty: new entries need a PR-review reason.\n")
        for key in sorted(keys):
            f.write("\t".join(key) + "\n")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--build-dir", default=os.path.join(REPO_ROOT, "build"))
    ap.add_argument("--jobs", type=int, default=os.cpu_count() or 2)
    ap.add_argument("--baseline",
                    default=os.path.join(REPO_ROOT, "tools",
                                         "tidy_baseline.txt"))
    ap.add_argument("--clang-tidy", default=None,
                    help="clang-tidy binary (default: $CLANG_TIDY or PATH "
                         "search)")
    ap.add_argument("--require-tool", action="store_true",
                    help="fail (exit 2) when clang-tidy is not available "
                         "instead of skipping")
    ap.add_argument("--update-baseline", action="store_true",
                    help="rewrite the baseline to exactly the current "
                         "diagnostics")
    ap.add_argument("paths", nargs="*",
                    help="repo-relative files/dirs to check (default: src/)")
    args = ap.parse_args()

    clang_tidy = find_clang_tidy(args.clang_tidy)
    if clang_tidy is None:
        msg = ("clang-tidy not found (checked --clang-tidy, $CLANG_TIDY, "
               f"and PATH candidates {TIDY_CANDIDATES[0]}..-14)")
        if args.require_tool:
            sys.stderr.write(f"error: {msg}\n")
            return 2
        print(f"SKIPPED: {msg}; install clang-tidy to run this check "
              "locally (CI runs it with --require-tool)")
        return 0

    files = select_files(load_compile_db(args.build_dir), args.paths)
    if not files:
        sys.stderr.write("error: no matching translation units in the "
                         "compile database\n")
        return 2

    all_diags = []
    hard_errors = []
    with concurrent.futures.ThreadPoolExecutor(args.jobs) as pool:
        futures = [pool.submit(run_one, clang_tidy, args.build_dir, path)
                   for path in files]
        for fut in concurrent.futures.as_completed(futures):
            path, diags, err = fut.result()
            all_diags.extend(diags)
            if err:
                hard_errors.append((path, err))

    if hard_errors:
        for path, err in hard_errors:
            sys.stderr.write(f"error: clang-tidy failed on {path}:\n{err}\n")
        return 2

    # A header diagnostic repeats once per including TU; dedupe on the
    # baseline key plus line so multi-line instances of one message survive.
    seen = set()
    diags = []
    for diag in sorted(all_diags):
        ident = (baseline_key(diag), diag[1])
        if ident not in seen:
            seen.add(ident)
            diags.append(diag)

    baseline = read_baseline(args.baseline)
    current_keys = {baseline_key(d) for d in diags}

    if args.update_baseline:
        write_baseline(args.baseline, current_keys)
        print(f"baseline updated: {len(current_keys)} entr"
              f"{'y' if len(current_keys) == 1 else 'ies'} -> "
              f"{args.baseline}")
        return 0

    new = [d for d in diags if baseline_key(d) not in baseline]
    stale = baseline - current_keys

    for rel, line, check, msg in new:
        print(f"{rel}:{line}: [{check}] {msg}")
    if stale:
        print(f"note: {len(stale)} stale baseline entr"
              f"{'y' if len(stale) == 1 else 'ies'} no longer fire(s); "
              "run with --update-baseline to drop them:")
        for key in sorted(stale):
            print("  " + "\t".join(key))
    if new:
        print(f"FAIL: {len(new)} clang-tidy diagnostic(s) not in "
              f"{os.path.relpath(args.baseline, REPO_ROOT)} "
              f"({len(files)} TU(s) checked)")
        return 1
    grandfathered = len(diags) - len(new)
    print(f"OK: clang-tidy clean over {len(files)} TU(s) "
          f"({grandfathered} grandfathered, {len(baseline)} baseline "
          "entries)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
