#!/usr/bin/env python3
"""Fail on dead relative links and dead anchors in the repo's markdown docs.

Usage:
    check_doc_links.py [FILE...]       # default: README.md docs/*.md

Checks every inline markdown link `[text](target)` whose target is
relative (no scheme):

  * the referenced file must exist, resolved against the linking file's
    directory;
  * when the target carries a fragment (`path#section` or a pure `#section`
    self-link) and the target is a markdown file, the fragment must resolve
    to a heading anchor (GitHub slug rules: lowercase, punctuation
    stripped, spaces to hyphens, `-N` suffixes for duplicates) or an
    explicit `<a name=...>`/`id=...` anchor in that file.

Absolute URLs and mailto links are skipped. Exits non-zero listing every
dead link or anchor.
"""

import glob
import html
import os
import re
import sys

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.+?)\s*#*\s*$")
EXPLICIT_ANCHOR_RE = re.compile(
    r"<a\s+[^>]*(?:name|id)\s*=\s*[\"']([^\"']+)[\"']", re.IGNORECASE)
CODE_FENCE_RE = re.compile(r"^\s*(```|~~~)")

_anchor_cache = {}


def github_slug(text):
    """Approximates GitHub's heading-to-anchor slug."""
    text = re.sub(r"`([^`]*)`", r"\1", text)                # code spans
    text = re.sub(r"\[([^\]]*)\]\([^)\s]*\)", r"\1", text)  # links -> text
    text = re.sub(r"[*_~]", "", text)                       # emphasis
    text = html.unescape(text).strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path):
    """All valid fragment targets of a markdown file (cached)."""
    path = os.path.normpath(path)
    if path in _anchor_cache:
        return _anchor_cache[path]
    anchors = set()
    slug_counts = {}
    in_fence = False
    with open(path, encoding="utf-8") as f:
        for line in f:
            if CODE_FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            m = HEADING_RE.match(line)
            if m:
                slug = github_slug(m.group(2))
                n = slug_counts.get(slug, 0)
                slug_counts[slug] = n + 1
                anchors.add(slug if n == 0 else f"{slug}-{n}")
            for explicit in EXPLICIT_ANCHOR_RE.findall(line):
                anchors.add(explicit)
    _anchor_cache[path] = anchors
    return anchors


def check_file(path):
    dead = []
    base = os.path.dirname(path)
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            for target in LINK_RE.findall(line):
                if "://" in target or target.startswith("mailto:"):
                    continue
                rel, _, frag = target.partition("#")
                resolved = os.path.join(base, rel) if rel else path
                if rel and not os.path.exists(resolved):
                    dead.append((path, lineno, target, "missing file"))
                    continue
                if not frag:
                    continue
                if not resolved.endswith((".md", ".markdown")):
                    continue  # anchors into non-markdown are not checkable
                if frag.lower() not in anchors_of(resolved):
                    dead.append((path, lineno, target,
                                 f"no anchor '#{frag}' in "
                                 f"{os.path.normpath(resolved)}"))
    return dead


def main():
    files = sys.argv[1:]
    if not files:
        files = ["README.md"] + sorted(glob.glob("docs/*.md"))
    missing_inputs = [f for f in files if not os.path.exists(f)]
    if missing_inputs:
        print(f"error: input file(s) not found: {missing_inputs}",
              file=sys.stderr)
        return 2
    dead = []
    for f in files:
        dead.extend(check_file(f))
    if dead:
        print(f"FAIL: {len(dead)} dead link(s)/anchor(s):", file=sys.stderr)
        for path, lineno, target, why in dead:
            print(f"  {path}:{lineno}: ({target}) — {why}", file=sys.stderr)
        return 1
    print(f"OK: all relative links and anchors resolve across "
          f"{len(files)} file(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
