#!/usr/bin/env python3
"""Fail on dead relative links in the repo's markdown docs.

Usage:
    check_doc_links.py [FILE...]       # default: README.md docs/*.md

Checks every inline markdown link `[text](target)` whose target is
relative (no scheme, no leading #): the referenced file must exist,
resolved against the linking file's directory. Anchors (`path#frag`) are
checked for the path part only; pure-fragment links and absolute URLs are
skipped. Exits non-zero listing every dead link.
"""

import glob
import os
import re
import sys

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def check_file(path):
    dead = []
    base = os.path.dirname(path)
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            for target in LINK_RE.findall(line):
                if "://" in target or target.startswith(("#", "mailto:")):
                    continue
                rel = target.split("#", 1)[0]
                if not rel:
                    continue
                if not os.path.exists(os.path.join(base, rel)):
                    dead.append((path, lineno, target))
    return dead


def main():
    files = sys.argv[1:]
    if not files:
        files = ["README.md"] + sorted(glob.glob("docs/*.md"))
    missing_inputs = [f for f in files if not os.path.exists(f)]
    if missing_inputs:
        print(f"error: input file(s) not found: {missing_inputs}",
              file=sys.stderr)
        return 2
    dead = []
    for f in files:
        dead.extend(check_file(f))
    if dead:
        print(f"FAIL: {len(dead)} dead relative link(s):", file=sys.stderr)
        for path, lineno, target in dead:
            print(f"  {path}:{lineno}: ({target})", file=sys.stderr)
        return 1
    print(f"OK: all relative links resolve across {len(files)} file(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
