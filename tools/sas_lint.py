#!/usr/bin/env python3
"""sas-lint: project-specific invariant checks no generic tool knows.

Rules (each violation prints "path:line: [rule] message"; exit 1 on any):

  key-registered         every canonical key constant in src/api/keys.h is
                         referenced (as keys::kName) by the registry
                         implementation (api/builders.cc, api/registry.cc,
                         api/sharded.cc, api/adapters.h,
                         window/windowed.cc), so no key can exist that
                         MakeSummarizer does not know.
  key-documented         every canonical key's string value appears (in
                         backticks) in docs/keys.md.
  raw-rand               no std::rand/srand/std::random_device in the
                         deterministic core (src/core, src/aware,
                         src/structure, src/window) — all randomness flows
                         from an explicit seed through sas::Rng.
  wall-clock             no steady_clock/system_clock/high_resolution_clock
                         ::now() in the deterministic core — time enters
                         through item timestamps, never ambient clocks
                         (src/core/telemetry* is the sanctioned exception;
                         see timing-confined).
  timing-confined        ambient clock reads (the same ::now() calls) are
                         confined to src/core/telemetry* everywhere else
                         under src/ too — all other code times itself
                         through telemetry::NowNs()/Span, so "who reads the
                         clock" stays a one-file audit.
  unforked-rng           no seedless Rng in the deterministic core (default
                         construction `Rng r;` / `Rng()`): generators are
                         seeded from config or derived via Fork/ForkSeed so
                         runs replay bit-identically.
  reinterpret-cast       no reinterpret_cast under src/ outside the audited
                         files (the flat-coords facade
                         src/aware/flat_coords.h and the SIMD kernel TU
                         src/core/simd.cc, whose vector load/store casts
                         are part of the intrinsics contract).
  simd-intrinsics        x86 intrinsics (immintrin.h, _mm* calls, __m128/
                         __m256/__m512 vector types) appear only under the
                         SIMD facade (src/core/simd*) — everything else
                         calls the dispatched kernels of core/simd.h, so
                         the scalar build stays portable and the
                         SIMD surface auditable.
  catch-all              no bare `catch (...)` under src/ outside audited
                         sites — swallowing unknown exceptions hides
                         poisoned state; the audited sites (worker-thread
                         boundaries, poison-then-rethrow markers) carry a
                         reasoned `// sas-lint: allow(catch-all): <why>`.
  atomic-publication     raw atomic pointer publication (`std::atomic<T*>`)
                         is confined to the serving tier (src/serve/) —
                         hand-rolled lock-free pointer hand-off anywhere
                         else bypasses the epoch-reclamation protocol that
                         makes it safe (docs/serving.md); other code shares
                         state through the serve tier, a mutex, or a
                         reasoned allow.
  allow-syntax           every `// sas-lint: allow(<rule>)` escape names a
                         known rule and carries a `: reason` string.
  header-self-contained  every header under src/ compiles on its own
                         (skipped with a notice when no C++ compiler is
                         available; pass --no-headers to skip explicitly).
  cmake-sources          every src/**/*.cc on disk is listed in
                         CMakeLists.txt, so the explicit source list cannot
                         silently drop a TU from the build (and from every
                         other check here).

Escape hatch: `// sas-lint: allow(<rule>): <reason>` on the flagged line,
or on a comment line directly above it (intervening comment/blank lines are
fine). The reason is mandatory; an allow without one is itself a violation.

Usage:
    tools/sas_lint.py [--root DIR] [--no-headers] [--cxx BIN] [--jobs N]

--root points at a repo-shaped tree (tests/lint/ uses fixture trees);
default is this repo. Exit codes: 0 clean, 1 violations, 2 usage error.
"""

import argparse
import concurrent.futures
import os
import re
import subprocess
import sys
import tempfile

DETERMINISM_DIRS = ("core", "aware", "structure", "window")
REGISTRY_IMPL_FILES = (
    "src/api/builders.cc",
    "src/api/registry.cc",
    "src/api/sharded.cc",
    "src/api/adapters.h",
    "src/window/windowed.cc",
    "src/serve/servable.cc",
)
KEYS_HEADER = "src/api/keys.h"
KEYS_DOC = "docs/keys.md"
AUDITED_REINTERPRET_FILES = (
    "src/aware/flat_coords.h",
    "src/core/simd.cc",
)
# Files allowed to touch x86 intrinsics directly (prefix match).
SIMD_HOME_PREFIX = "src/core/simd"
# The one place ambient clocks may be read (prefix match): everything else
# times itself through telemetry::NowNs()/Span.
TELEMETRY_HOME_PREFIX = "src/core/telemetry"
# The one directory allowed to publish raw atomic pointers (prefix match):
# the serving tier owns the epoch-reclamation protocol that makes the
# pattern safe.
ATOMIC_HOME_PREFIX = "src/serve/"

RULES = (
    "key-registered",
    "key-documented",
    "raw-rand",
    "wall-clock",
    "timing-confined",
    "unforked-rng",
    "reinterpret-cast",
    "simd-intrinsics",
    "catch-all",
    "atomic-publication",
    "allow-syntax",
    "header-self-contained",
    "cmake-sources",
)

# Pattern rules over comment-stripped source lines.
RE_RAW_RAND = re.compile(
    r"\bstd\s*::\s*rand\b|\bstd\s*::\s*srand\b|\bsrand\s*\(|"
    r"\brandom_device\b")
RE_WALL_CLOCK = re.compile(
    r"\b(?:steady_clock|system_clock|high_resolution_clock)\s*::\s*"
    r"now\s*\(")
# Seedless Rng: a plain declaration `Rng name;` (member slots count — the
# escape documents where they are actually seeded) or a default-constructed
# temporary `Rng()` / `Rng{}`. Seeded forms (`Rng r(seed)`, `Rng::Fork`)
# never match: the construction must carry an argument.
RE_UNFORKED_RNG = re.compile(r"\bRng\s+\w+\s*;|\bRng\s*(?:\(\s*\)|\{\s*\})")
RE_REINTERPRET = re.compile(r"\breinterpret_cast\b")
# x86 SIMD surface: the intrinsics header, any _mm*_*() intrinsic call, or
# a __m128/__m256/__m512 vector type.
RE_SIMD = re.compile(
    r"immintrin\.h|\b_mm\w*_\w+\s*\(|\b__m(?:64|128|256|512)[a-z]*\b")
# Bare catch-all handler `catch (...)`.
RE_CATCH_ALL = re.compile(r"\bcatch\s*\(\s*\.\.\.\s*\)")
# Atomic pointer publication: `std::atomic<T*>` (any pointee, cv or not).
RE_ATOMIC_PTR = re.compile(r"\bstd\s*::\s*atomic\s*<[^<>]*\*[^<>]*>")

RE_ALLOW = re.compile(
    r"//\s*sas-lint:\s*allow\(([^)\s]*)\)(?:\s*:\s*(\S.*))?")
RE_KEY_CONST = re.compile(
    r"inline\s+constexpr\s+const\s+char\s+(k\w+)\[\]\s*=\s*\"([^\"]*)\"")
RE_COMMENT_ONLY = re.compile(r"^\s*(//.*)?$")


def strip_comments(text):
    """Blanks out // and /* */ comment bodies, preserving line structure."""
    out = []
    i = 0
    n = len(text)
    in_block = False
    while i < n:
        ch = text[i]
        if in_block:
            if text.startswith("*/", i):
                in_block = False
                i += 2
            else:
                out.append("\n" if ch == "\n" else " ")
                i += 1
        elif text.startswith("//", i):
            while i < n and text[i] != "\n":
                i += 1
        elif text.startswith("/*", i):
            in_block = True
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


class Linter:
    def __init__(self, root):
        self.root = os.path.abspath(root)
        self.violations = []

    def report(self, rel, lineno, rule, message):
        self.violations.append((rel, lineno, rule, message))

    def path(self, rel):
        return os.path.join(self.root, rel)

    def walk(self, top, suffixes):
        found = []
        for dirpath, _dirnames, filenames in os.walk(self.path(top)):
            for name in sorted(filenames):
                if name.endswith(suffixes):
                    full = os.path.join(dirpath, name)
                    found.append(os.path.relpath(full, self.root))
        return sorted(found)

    # -- allow escapes ------------------------------------------------------

    def collect_allows(self, rel, raw_lines):
        """Returns {line_number: set(rules)} of lines covered by an escape.

        A same-line escape covers its own line; an escape on a comment-only
        line covers the next non-comment line (so a multi-line rationale
        can sit between the escape and the code).
        """
        allowed = {}
        for idx, line in enumerate(raw_lines, 1):
            m = RE_ALLOW.search(line)
            if not m:
                continue
            rule, reason = m.group(1), m.group(2)
            if rule not in RULES:
                self.report(rel, idx, "allow-syntax",
                            f"allow names unknown rule '{rule}' "
                            f"(known: {', '.join(RULES)})")
                continue
            if not reason:
                self.report(rel, idx, "allow-syntax",
                            f"allow({rule}) without a reason — write "
                            f"'// sas-lint: allow({rule}): <why>'")
                continue
            target = idx
            if RE_COMMENT_ONLY.match(line):
                nxt = idx
                while nxt < len(raw_lines) and RE_COMMENT_ONLY.match(
                        raw_lines[nxt]):
                    nxt += 1
                target = nxt + 1
            allowed.setdefault(idx, set()).add(rule)
            allowed.setdefault(target, set()).add(rule)
        return allowed

    # -- pattern rules ------------------------------------------------------

    def check_patterns(self):
        src_files = self.walk("src", (".h", ".cc"))
        for rel in src_files:
            relu = rel.replace(os.sep, "/")
            with open(self.path(rel), encoding="utf-8") as f:
                text = f.read()
            raw_lines = text.splitlines()
            allowed = self.collect_allows(rel, raw_lines)
            stripped = strip_comments(text).splitlines()

            in_det_core = any(
                relu.startswith(f"src/{d}/") for d in DETERMINISM_DIRS)
            audited = relu in AUDITED_REINTERPRET_FILES
            timing_home = relu.startswith(TELEMETRY_HOME_PREFIX)

            rules_here = []
            if in_det_core:
                rules_here += [("raw-rand", RE_RAW_RAND),
                               ("unforked-rng", RE_UNFORKED_RNG)]
                if not timing_home:
                    rules_here.append(("wall-clock", RE_WALL_CLOCK))
            elif not timing_home:
                # Outside the deterministic core the clock read is not a
                # determinism bug, but it still belongs in the telemetry
                # facade — one auditable "who reads the clock" surface.
                rules_here.append(("timing-confined", RE_WALL_CLOCK))
            if not audited:
                rules_here.append(("reinterpret-cast", RE_REINTERPRET))
            if not relu.startswith(SIMD_HOME_PREFIX):
                rules_here.append(("simd-intrinsics", RE_SIMD))
            if not relu.startswith(ATOMIC_HOME_PREFIX):
                rules_here.append(("atomic-publication", RE_ATOMIC_PTR))
            rules_here.append(("catch-all", RE_CATCH_ALL))

            for idx, line in enumerate(stripped, 1):
                for rule, pattern in rules_here:
                    if not pattern.search(line):
                        continue
                    if rule in allowed.get(idx, ()):
                        continue
                    snippet = raw_lines[idx - 1].strip()
                    if rule == "reinterpret-cast":
                        msg = ("bare reinterpret_cast outside the audited "
                               "files "
                               f"({', '.join(AUDITED_REINTERPRET_FILES)}) — "
                               "use AsFlatCoords, std::bit_cast, or an "
                               f"allow with rationale: {snippet}")
                    elif rule == "simd-intrinsics":
                        msg = ("x86 intrinsics outside the SIMD facade "
                               f"({SIMD_HOME_PREFIX}*) — add a dispatched "
                               "kernel to core/simd.h instead, or carry a "
                               f"reasoned allow: {snippet}")
                    elif rule == "atomic-publication":
                        msg = ("raw std::atomic<T*> publication outside the "
                               f"serving tier ({ATOMIC_HOME_PREFIX}*) — "
                               "share state through serve/query_service.h "
                               "(epoch-reclaimed) or a mutex, or carry a "
                               f"reasoned allow: {snippet}")
                    elif rule == "catch-all":
                        msg = ("bare catch (...) outside an audited site — "
                               "catch the concrete exception types, or "
                               "carry '// sas-lint: allow(catch-all): "
                               f"<why>' on an audited boundary: {snippet}")
                    elif rule == "timing-confined":
                        msg = ("ambient clock read outside the telemetry "
                               f"facade ({TELEMETRY_HOME_PREFIX}*) — time "
                               "through telemetry::NowNs()/Span, or carry "
                               "a reasoned allow: " + snippet)
                    elif rule == "unforked-rng":
                        msg = ("seedless Rng in the deterministic core — "
                               "seed from config or derive via "
                               f"Fork/ForkSeed: {snippet}")
                    else:
                        msg = ("nondeterministic source in the "
                               f"deterministic core: {snippet}")
                    self.report(rel, idx, rule, msg)

    # -- canonical keys -----------------------------------------------------

    def check_keys(self):
        keys_path = self.path(KEYS_HEADER)
        if not os.path.isfile(keys_path):
            self.report(KEYS_HEADER, 1, "key-registered",
                        "canonical keys header missing")
            return
        with open(keys_path, encoding="utf-8") as f:
            keys_text = f.read()
        consts = [(m.group(1), m.group(2),
                   keys_text[:m.start()].count("\n") + 1)
                  for m in RE_KEY_CONST.finditer(keys_text)]
        if not consts:
            self.report(KEYS_HEADER, 1, "key-registered",
                        "no canonical key constants found (expected "
                        "'inline constexpr const char kX[] = \"...\"')")
            return

        impl_text = ""
        for rel in REGISTRY_IMPL_FILES:
            if os.path.isfile(self.path(rel)):
                with open(self.path(rel), encoding="utf-8") as f:
                    impl_text += f.read()

        doc_text = ""
        doc_path = self.path(KEYS_DOC)
        if os.path.isfile(doc_path):
            with open(doc_path, encoding="utf-8") as f:
                doc_text = f.read()

        for name, value, lineno in consts:
            if f"keys::{name}" not in impl_text:
                self.report(
                    KEYS_HEADER, lineno, "key-registered",
                    f"{name} (\"{value}\") is not referenced by the "
                    "registry implementation "
                    f"({', '.join(REGISTRY_IMPL_FILES)}) — register the "
                    "key or remove the constant")
            if f"`{value}" not in doc_text:
                self.report(
                    KEYS_HEADER, lineno, "key-documented",
                    f"{name} (\"{value}\") is not documented in "
                    f"{KEYS_DOC} — every canonical key needs a reference "
                    "entry")

    # -- CMake source list --------------------------------------------------

    def check_cmake_sources(self):
        cmake_path = self.path("CMakeLists.txt")
        if not os.path.isfile(cmake_path):
            self.report("CMakeLists.txt", 1, "cmake-sources",
                        "CMakeLists.txt missing")
            return
        with open(cmake_path, encoding="utf-8") as f:
            cmake_text = f.read()
        for rel in self.walk("src", (".cc",)):
            relu = rel.replace(os.sep, "/")
            if relu not in cmake_text:
                self.report(
                    rel, 1, "cmake-sources",
                    f"{relu} exists on disk but is not in the explicit "
                    "source list in CMakeLists.txt — it would silently "
                    "drop out of the build and every static check")

    # -- header self-containment -------------------------------------------

    def check_headers(self, cxx, jobs):
        headers = self.walk("src", (".h",))
        if not headers:
            return
        include_dir = self.path("src")

        def compile_one(rel):
            with tempfile.NamedTemporaryFile(
                    "w", suffix=".cc", delete=False) as tu:
                include = rel.replace(os.sep, "/")[len("src/"):]
                tu.write(f'#include "{include}"\n')
                tu_path = tu.name
            try:
                proc = subprocess.run(
                    [cxx, "-std=c++20", "-fsyntax-only",
                     f"-I{include_dir}", tu_path],
                    stdout=subprocess.PIPE, stderr=subprocess.PIPE,
                    text=True)
                return rel, proc.returncode, proc.stderr
            finally:
                os.unlink(tu_path)

        with concurrent.futures.ThreadPoolExecutor(jobs) as pool:
            for rel, code, err in pool.map(compile_one, headers):
                if code != 0:
                    first = err.strip().splitlines()
                    self.report(
                        rel, 1, "header-self-contained",
                        "header does not compile in isolation: "
                        + (first[0] if first else "compiler error"))


def find_cxx(explicit):
    import shutil
    for cand in ([explicit] if explicit else []) + \
            [os.environ.get("CXX"), "c++", "g++", "clang++"]:
        if cand and shutil.which(cand):
            return shutil.which(cand)
    return None


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    ap.add_argument("--no-headers", action="store_true",
                    help="skip the header-self-contained rule")
    ap.add_argument("--cxx", default=None,
                    help="C++ compiler for header checks (default: $CXX, "
                         "c++, g++, clang++)")
    ap.add_argument("--jobs", type=int, default=os.cpu_count() or 2)
    ap.add_argument("--list-rules", action="store_true")
    args = ap.parse_args()

    if args.list_rules:
        print("\n".join(RULES))
        return 0
    if not os.path.isdir(os.path.join(args.root, "src")):
        sys.stderr.write(f"error: no src/ under --root {args.root}\n")
        return 2

    linter = Linter(args.root)
    linter.check_patterns()
    linter.check_keys()
    linter.check_cmake_sources()
    if args.no_headers:
        pass
    else:
        cxx = find_cxx(args.cxx)
        if cxx is None:
            print("note: no C++ compiler found; skipping "
                  "header-self-contained")
        else:
            linter.check_headers(cxx, args.jobs)

    if linter.violations:
        for rel, lineno, rule, msg in sorted(linter.violations):
            print(f"{rel.replace(os.sep, '/')}:{lineno}: [{rule}] {msg}")
        print(f"FAIL: {len(linter.violations)} sas-lint violation(s)")
        return 1
    num_rules = len(RULES) - (1 if args.no_headers else 0)
    print(f"OK: sas-lint clean ({num_rules} rules over {args.root})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
