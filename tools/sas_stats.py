#!/usr/bin/env python3
"""Render and diff telemetry snapshots (core/telemetry.h JSON export).

The C++ side emits one JSON object per snapshot (telemetry::ToJson, also
what `window_monitor --telemetry=json` prints):

    {"counters":   {"<name>": <value>, ...},
     "gauges":     {"<name>": <value>, ...},
     "histograms": {"<name>": {"count": ..., "sum": ..., "max": ...,
                               "p50": ..., "p90": ..., "p99": ...}, ...}}

Usage:
    sas_stats.py [snapshot.json]            # render one snapshot as a table
    sas_stats.py --diff before.json after.json
                                            # per-metric deltas (counters and
                                            # histogram count/sum subtract;
                                            # gauges show the later level)
    sas_stats.py --prom snapshot.json       # re-render as Prometheus text

Reading "-" (or no path) takes the snapshot from stdin; in either case the
first line starting with "{" is parsed, so piping the full window_monitor
output works without a grep.
"""

import argparse
import json
import sys


def load_snapshot(path):
    """Parses the first JSON-object line from `path` ("-" = stdin)."""
    stream = sys.stdin if path in (None, "-") else open(path, encoding="utf-8")
    try:
        for line in stream:
            if line.lstrip().startswith("{"):
                return json.loads(line)
    finally:
        if stream is not sys.stdin:
            stream.close()
    raise SystemExit(f"sas_stats: no JSON object found in {path or 'stdin'}")


def render_table(snap, out=sys.stdout):
    scalars = list(snap.get("counters", {}).items())
    scalars += list(snap.get("gauges", {}).items())
    if scalars:
        width = max(len(name) for name, _ in scalars)
        for name, value in scalars:
            print(f"  {name:<{width}} {value:>14}", file=out)
    hists = snap.get("histograms", {})
    if hists:
        width = max(len(name) for name in hists)
        print(f"  {'histogram':<{width}} {'count':>10} {'p50':>12} "
              f"{'p90':>12} {'p99':>12} {'max':>12}", file=out)
        for name, h in hists.items():
            print(f"  {name:<{width}} {h['count']:>10} "
                  f"{h['p50']:>12.6g} {h['p90']:>12.6g} "
                  f"{h['p99']:>12.6g} {h['max']:>12}", file=out)


def render_diff(before, after, out=sys.stdout):
    """Per-metric deltas; every metric of `after` is listed, delta 0 or not."""
    prev = before.get("counters", {})
    for name, value in after.get("counters", {}).items():
        print(f"  {name:<40} {value:>14} (+{value - prev.get(name, 0)})",
              file=out)
    for name, value in after.get("gauges", {}).items():
        print(f"  {name:<40} {value:>14} (level)", file=out)
    prev = before.get("histograms", {})
    for name, h in after.get("histograms", {}).items():
        p = prev.get(name, {})
        dcount = h["count"] - p.get("count", 0)
        dsum = h["sum"] - p.get("sum", 0)
        mean = dsum / dcount if dcount else 0.0
        print(f"  {name:<40} +{dcount} observations, "
              f"mean {mean:.6g}, max {h['max']}", file=out)


def render_prom(snap, out=sys.stdout):
    def prom_name(name):
        return "".join(c if c.isalnum() or c in "_:" else "_" for c in name)

    for name, value in snap.get("counters", {}).items():
        n = prom_name(name)
        print(f"# TYPE {n} counter\n{n} {value}", file=out)
    for name, value in snap.get("gauges", {}).items():
        n = prom_name(name)
        print(f"# TYPE {n} gauge\n{n} {value}", file=out)
    for name, h in snap.get("histograms", {}).items():
        n = prom_name(name)
        print(f"# TYPE {n} summary", file=out)
        for q, key in (("0.5", "p50"), ("0.9", "p90"), ("0.99", "p99")):
            print(f'{n}{{quantile="{q}"}} {h[key]:.6g}', file=out)
        print(f"{n}_sum {h['sum']}\n{n}_count {h['count']}", file=out)


def main(argv=None):
    ap = argparse.ArgumentParser(
        description="Render/diff core/telemetry.h JSON snapshots.")
    ap.add_argument("paths", nargs="*", default=[],
                    help="snapshot file(s); '-' or none reads stdin")
    ap.add_argument("--diff", action="store_true",
                    help="two snapshots: print per-metric deltas")
    ap.add_argument("--prom", action="store_true",
                    help="re-render the snapshot as Prometheus text")
    args = ap.parse_args(argv)

    if args.diff:
        if len(args.paths) != 2:
            ap.error("--diff needs exactly two snapshot paths")
        render_diff(load_snapshot(args.paths[0]),
                    load_snapshot(args.paths[1]))
        return 0
    if len(args.paths) > 1:
        ap.error("render mode takes at most one snapshot path")
    snap = load_snapshot(args.paths[0] if args.paths else None)
    if args.prom:
        render_prom(snap)
    else:
        render_table(snap)
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Downstream (head, grep -q) closed the pipe early; not an error.
        sys.exit(0)
