#include "aware/product_summarizer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "core/ipps.h"
#include "core/random.h"
#include "sampling/varopt_offline.h"
#include "summaries/exact_summary.h"

namespace sas {
namespace {

std::vector<WeightedKey> RandomItems(std::size_t n, Coord domain, Rng* rng,
                                     double alpha = 1.3) {
  std::set<std::pair<Coord, Coord>> seen;
  while (seen.size() < n) {
    seen.insert({rng->NextBounded(domain), rng->NextBounded(domain)});
  }
  std::vector<WeightedKey> items;
  KeyId id = 0;
  for (const auto& [x, y] : seen) {
    items.push_back({id++, rng->NextPareto(alpha), {x, y}});
  }
  return items;
}

TEST(ProductSummarize, ExactSampleSize) {
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 50 + rng.NextBounded(300);
    const auto items = RandomItems(n, 1 << 16, &rng);
    const std::size_t s = 5 + rng.NextBounded(n / 2);
    const auto result =
        ProductSummarize(items, static_cast<double>(s), &rng);
    EXPECT_EQ(result.sample.size(), s);
  }
}

TEST(ProductSummarize, InclusionFrequencyMatchesIpps) {
  Rng rng(2);
  const auto items = RandomItems(30, 1 << 10, &rng);
  std::vector<Weight> w;
  for (const auto& it : items) w.push_back(it.weight);
  const double s = 8.0;
  const double tau = SolveTau(w, s);
  std::vector<int> hits(items.size(), 0);
  const int trials = 40000;
  for (int t = 0; t < trials; ++t) {
    const SummarizeResult result = ProductSummarize(items, s, &rng);
    for (const auto& e : result.sample.entries()) {
      hits[e.id]++;
    }
  }
  for (std::size_t i = 0; i < items.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(hits[i]) / trials,
                IppsProbability(w[i], tau), 0.015)
        << "key " << i;
  }
}

TEST(ProductSummarize, UnbiasedBoxSum) {
  Rng rng(3);
  const auto items = RandomItems(120, 1 << 12, &rng);
  const Box box{{0, 1 << 11}, {0, 1 << 11}};
  const Weight truth = ExactBoxSum(items, box);
  ASSERT_GT(truth, 0.0);
  double total = 0.0;
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    total += ProductSummarize(items, 20.0, &rng).sample.EstimateBox(box);
  }
  EXPECT_NEAR(total / trials / truth, 1.0, 0.03);
}

TEST(ProductSummarize, BoxDiscrepancyBeatsOblivious) {
  // The Section 4 claim: on box ranges, the structure-aware sample has
  // (much) lower count discrepancy than an oblivious VarOpt sample of the
  // same size. Compare RMS discrepancy over a fixed set of boxes.
  Rng rng(4);
  const auto items = RandomItems(600, 1 << 14, &rng);
  std::vector<Weight> w;
  for (const auto& it : items) w.push_back(it.weight);
  const double s = 60.0;
  const double tau = SolveTau(w, s);
  std::vector<double> probs;
  IppsProbabilities(w, tau, &probs);

  std::vector<Box> boxes;
  for (int i = 0; i < 30; ++i) {
    const Coord x0 = rng.NextBounded(1 << 13);
    const Coord y0 = rng.NextBounded(1 << 13);
    const Coord wx = 1 + rng.NextBounded(1 << 13);
    const Coord wy = 1 + rng.NextBounded(1 << 13);
    boxes.push_back({{x0, x0 + wx}, {y0, y0 + wy}});
  }
  auto rms_disc = [&](auto&& sampler) {
    double total = 0.0;
    const int trials = 300;
    for (int t = 0; t < trials; ++t) {
      const Sample sample = sampler();
      for (const auto& box : boxes) {
        double expected = 0.0;
        for (std::size_t i = 0; i < items.size(); ++i) {
          if (box.Contains(items[i].pt)) expected += probs[i];
        }
        const double d =
            static_cast<double>(sample.CountInBox(box)) - expected;
        total += d * d;
      }
    }
    return std::sqrt(total / (trials * boxes.size()));
  };

  const double aware = rms_disc(
      [&] { return ProductSummarize(items, s, &rng).sample; });
  const double obliv =
      rms_disc([&] { return VarOptOffline(items, s, &rng); });
  EXPECT_LT(aware, 0.8 * obliv)
      << "aware rms=" << aware << " obliv rms=" << obliv;
}

TEST(KdAggregate, AllSetAndMassConserved) {
  Rng rng(5);
  std::vector<Point2D> pts;
  std::vector<double> probs;
  for (int i = 0; i < 64; ++i) {
    pts.push_back({rng.NextBounded(1024), rng.NextBounded(1024)});
    probs.push_back(0.25);
  }
  const KdHierarchy tree = KdHierarchy::Build(pts, probs);
  std::vector<double> work = probs;
  KdAggregate(&work, tree, &rng);
  int ones = 0;
  for (double x : work) {
    EXPECT_TRUE(x == 0.0 || x == 1.0);
    ones += x == 1.0;
  }
  EXPECT_EQ(ones, 16);  // total mass 64 * 0.25
}

TEST(ProductSummarize, HeavyKeysAlwaysIncluded) {
  Rng rng(6);
  auto items = RandomItems(100, 1 << 10, &rng);
  items[7].weight = 1e6;
  for (int t = 0; t < 30; ++t) {
    const auto result = ProductSummarize(items, 10.0, &rng);
    bool found = false;
    for (const auto& e : result.sample.entries()) found |= e.id == 7;
    EXPECT_TRUE(found);
  }
}

}  // namespace
}  // namespace sas
