#include "aware/kd_nd.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "core/ipps.h"
#include "core/pair_aggregate.h"
#include "core/random.h"

namespace sas {
namespace {

struct NdData {
  std::vector<Coord> coords;  // flat, n * dims
  std::vector<Weight> weights;
};

NdData RandomNd(std::size_t n, int dims, Coord domain, Rng* rng) {
  NdData data;
  std::set<std::vector<Coord>> seen;
  while (seen.size() < n) {
    std::vector<Coord> pt(dims);
    for (auto& c : pt) c = rng->NextBounded(domain);
    seen.insert(pt);
  }
  for (const auto& pt : seen) {
    for (Coord c : pt) data.coords.push_back(c);
    data.weights.push_back(rng->NextPareto(1.3));
  }
  return data;
}

TEST(BoxNContains, Works) {
  const BoxN box{{0, 10}, {5, 15}, {2, 3}};
  const Coord in[] = {9, 5, 2};
  const Coord out[] = {10, 5, 2};
  EXPECT_TRUE(BoxNContains(box, in));
  EXPECT_FALSE(BoxNContains(box, out));
}

TEST(KdHierarchyNd, MassConservation3D) {
  Rng rng(1);
  const auto data = RandomNd(300, 3, 1 << 10, &rng);
  std::vector<double> mass(data.weights.begin(), data.weights.end());
  const KdHierarchyNd tree = KdHierarchyNd::Build(data.coords, 3, mass);
  double total = 0.0;
  for (double m : mass) total += m;
  EXPECT_NEAR(tree.nodes()[tree.root()].mass, total, 1e-9);
  for (const auto& node : tree.nodes()) {
    if (!node.IsLeaf()) {
      EXPECT_NEAR(node.mass,
                  tree.nodes()[node.left].mass + tree.nodes()[node.right].mass,
                  1e-9);
    }
  }
}

TEST(KdHierarchyNd, OneLeafPerPoint) {
  Rng rng(2);
  const auto data = RandomNd(200, 4, 1 << 12, &rng);
  std::vector<double> mass(data.weights.size(), 1.0);
  const KdHierarchyNd tree = KdHierarchyNd::Build(data.coords, 4, mass);
  int leaves = 0;
  for (const auto& node : tree.nodes()) leaves += node.IsLeaf();
  EXPECT_EQ(leaves, 200);
}

TEST(ProductSummarizeNd, ExactSampleSize3D) {
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    const auto data = RandomNd(150 + rng.NextBounded(200), 3, 1 << 12, &rng);
    const std::size_t s = 5 + rng.NextBounded(40);
    const ResultNd r = ProductSummarizeNd(data.coords, 3, data.weights,
                                          static_cast<double>(s), &rng);
    EXPECT_EQ(r.chosen.size(), s);
  }
}

TEST(ProductSummarizeNd, MarginalsMatchIpps3D) {
  Rng rng(4);
  const auto data = RandomNd(30, 3, 1 << 8, &rng);
  const double s = 8.0;
  const double tau = SolveTau(data.weights, s);
  std::vector<int> hits(data.weights.size(), 0);
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    const ResultNd r = ProductSummarizeNd(data.coords, 3, data.weights, s,
                                          &rng);
    for (std::size_t i : r.chosen) hits[i]++;
  }
  for (std::size_t i = 0; i < data.weights.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(hits[i]) / trials,
                IppsProbability(data.weights[i], tau), 0.02)
        << "key " << i;
  }
}

TEST(ProductSummarizeNd, BoxDiscrepancyBeatsOblivious3D) {
  // Section 4 in 3-D: the aware sample's box-count discrepancy beats a
  // structure-oblivious aggregation at equal size. The oblivious
  // comparison aggregates the same probabilities in random order.
  Rng rng(5);
  const auto data = RandomNd(800, 3, 1 << 10, &rng);
  const std::size_t n = data.weights.size();
  const double s = 64.0;
  const double tau = SolveTau(data.weights, s);
  std::vector<double> probs;
  IppsProbabilities(data.weights, tau, &probs);

  std::vector<BoxN> boxes;
  for (int b = 0; b < 20; ++b) {
    BoxN box(3);
    for (int a = 0; a < 3; ++a) {
      const Coord lo = rng.NextBounded(1 << 9);
      box[a] = {lo, lo + 1 + rng.NextBounded(1 << 9)};
    }
    boxes.push_back(box);
  }
  std::vector<double> expected(boxes.size(), 0.0);
  for (std::size_t b = 0; b < boxes.size(); ++b) {
    for (std::size_t i = 0; i < n; ++i) {
      if (BoxNContains(boxes[b], &data.coords[i * 3])) {
        expected[b] += probs[i];
      }
    }
  }
  auto rms = [&](auto&& chooser) {
    double sq = 0.0;
    const int trials = 150;
    for (int t = 0; t < trials; ++t) {
      const std::vector<std::size_t> chosen = chooser();
      std::vector<char> in(n, 0);
      for (std::size_t i : chosen) in[i] = 1;
      for (std::size_t b = 0; b < boxes.size(); ++b) {
        double actual = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
          if (in[i] && BoxNContains(boxes[b], &data.coords[i * 3])) {
            actual += 1.0;
          }
        }
        const double d = actual - expected[b];
        sq += d * d;
      }
    }
    return std::sqrt(sq / (trials * boxes.size()));
  };

  const double aware = rms([&] {
    return ProductSummarizeNd(data.coords, 3, data.weights, s, &rng).chosen;
  });
  const double obliv = rms([&] {
    // Oblivious: aggregate the same probabilities in random order.
    std::vector<double> work = probs;
    for (auto& q : work) q = SnapProbability(q);
    std::vector<std::size_t> order(n);
    for (std::size_t i = 0; i < n; ++i) order[i] = i;
    for (std::size_t i = n; i > 1; --i) {
      std::swap(order[i - 1], order[rng.NextBounded(i)]);
    }
    const std::size_t leftover = ChainAggregate(&work, order, kNoEntry, &rng);
    ResolveResidual(&work, leftover, &rng);
    std::vector<std::size_t> chosen;
    for (std::size_t i = 0; i < n; ++i) {
      if (work[i] == 1.0) chosen.push_back(i);
    }
    return chosen;
  });
  EXPECT_LT(aware, 0.95 * obliv) << "aware=" << aware << " obliv=" << obliv;
}

TEST(ProductSummarizeNd, OneDimensionalDegenerate) {
  // dims = 1 reduces to the order structure.
  Rng rng(6);
  const auto data = RandomNd(100, 1, 1 << 14, &rng);
  const ResultNd r = ProductSummarizeNd(data.coords, 1, data.weights, 10.0,
                                        &rng);
  EXPECT_EQ(r.chosen.size(), 10u);
}

}  // namespace
}  // namespace sas
