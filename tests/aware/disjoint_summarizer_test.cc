#include "aware/disjoint_summarizer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/ipps.h"
#include "core/pair_aggregate.h"
#include "core/random.h"

namespace sas {
namespace {

std::vector<WeightedKey> MakeItems(const std::vector<Weight>& w) {
  std::vector<WeightedKey> items(w.size());
  for (std::size_t i = 0; i < w.size(); ++i) {
    items[i] = {static_cast<KeyId>(i), w[i], {static_cast<Coord>(i), 0}};
  }
  return items;
}

TEST(DisjointSummarize, ExactSampleSize) {
  Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 10 + rng.NextBounded(100);
    const int ranges = 2 + static_cast<int>(rng.NextBounded(8));
    std::vector<Weight> w(n);
    std::vector<int> range_of(n);
    for (std::size_t i = 0; i < n; ++i) {
      w[i] = rng.NextPareto(1.3);
      range_of[i] = static_cast<int>(rng.NextBounded(ranges));
    }
    const std::size_t s = 1 + rng.NextBounded(n - 1);
    const auto result = DisjointSummarize(MakeItems(w), range_of, ranges,
                                          static_cast<double>(s), &rng);
    EXPECT_EQ(result.sample.size(), s);
  }
}

TEST(DisjointSummarize, EveryRangeFloorOrCeil) {
  Rng rng(2);
  for (int trial = 0; trial < 300; ++trial) {
    const std::size_t n = 20 + rng.NextBounded(80);
    const int ranges = 2 + static_cast<int>(rng.NextBounded(10));
    std::vector<Weight> w(n);
    std::vector<int> range_of(n);
    for (std::size_t i = 0; i < n; ++i) {
      w[i] = rng.NextPareto(1.2);
      range_of[i] = static_cast<int>(rng.NextBounded(ranges));
    }
    const double s = 2 + static_cast<double>(rng.NextBounded(15));
    const auto result =
        DisjointSummarize(MakeItems(w), range_of, ranges, s, &rng);

    std::vector<double> expected(ranges, 0.0);
    std::vector<int> actual(ranges, 0);
    for (std::size_t i = 0; i < n; ++i) {
      expected[range_of[i]] += result.probs[i];
    }
    for (const auto& e : result.sample.entries()) actual[range_of[e.id]]++;
    for (int r = 0; r < ranges; ++r) {
      ASSERT_TRUE(actual[r] == static_cast<int>(std::floor(expected[r])) ||
                  actual[r] == static_cast<int>(std::ceil(expected[r])))
          << "range " << r << " expected " << expected[r] << " got "
          << actual[r];
    }
  }
}

TEST(DisjointSummarize, InclusionFrequencyMatchesIpps) {
  const std::vector<Weight> w{8.0, 4.0, 2.0, 1.0, 1.0, 1.0, 1.0};
  const std::vector<int> range_of{0, 0, 1, 1, 2, 2, 2};
  const double s = 3.0;
  const double tau = SolveTau(w, s);
  const auto items = MakeItems(w);
  std::vector<int> hits(w.size(), 0);
  const int trials = 60000;
  Rng rng(3);
  for (int t = 0; t < trials; ++t) {
    const auto result = DisjointSummarize(items, range_of, 3, s, &rng);
    for (const auto& e : result.sample.entries()) hits[e.id]++;
  }
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(hits[i]) / trials,
                IppsProbability(w[i], tau), 0.012)
        << "key " << i;
  }
}

TEST(DisjointAggregate, SingleRangeDegeneratesToChain) {
  Rng rng(4);
  std::vector<double> p{0.5, 0.5, 0.5, 0.5};
  DisjointAggregate(&p, {0, 0, 0, 0}, 1, &rng);
  int ones = 0;
  for (double x : p) {
    EXPECT_TRUE(IsSet(x));
    ones += x == 1.0;
  }
  EXPECT_EQ(ones, 2);
}

TEST(DisjointAggregate, EmptyRangesTolerated) {
  Rng rng(5);
  std::vector<double> p{0.5, 0.5};
  DisjointAggregate(&p, {0, 3}, 5, &rng);  // ranges 1,2,4 empty
  EXPECT_TRUE(IsSet(p[0]) && IsSet(p[1]));
}

}  // namespace
}  // namespace sas
