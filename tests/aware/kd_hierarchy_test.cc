#include "aware/kd_hierarchy.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "core/random.h"

namespace sas {
namespace {

std::pair<std::vector<Point2D>, std::vector<double>> RandomPoints(
    std::size_t n, Coord domain, Rng* rng, bool uniform_mass = true) {
  std::set<std::pair<Coord, Coord>> seen;
  while (seen.size() < n) {
    seen.insert({rng->NextBounded(domain), rng->NextBounded(domain)});
  }
  std::vector<Point2D> pts;
  std::vector<double> mass;
  for (const auto& [x, y] : seen) {
    pts.push_back({x, y});
    mass.push_back(uniform_mass ? 1.0 : 0.01 + rng->NextDouble());
  }
  return {pts, mass};
}

TEST(KdHierarchy, EmptyInput) {
  const KdHierarchy t = KdHierarchy::Build({}, {});
  EXPECT_EQ(t.num_nodes(), 0);
  EXPECT_EQ(t.root(), KdHierarchy::kNull);
}

TEST(KdHierarchy, SinglePoint) {
  const KdHierarchy t = KdHierarchy::Build({{5, 7}}, {1.0});
  EXPECT_EQ(t.num_nodes(), 1);
  EXPECT_TRUE(t.nodes()[0].IsLeaf());
  EXPECT_DOUBLE_EQ(t.nodes()[0].mass, 1.0);
}

TEST(KdHierarchy, LeafPerPoint) {
  Rng rng(1);
  const auto [pts, mass] = RandomPoints(200, 1 << 16, &rng);
  const KdHierarchy t = KdHierarchy::Build(pts, mass);
  int leaves = 0;
  for (const auto& n : t.nodes()) leaves += n.IsLeaf();
  EXPECT_EQ(leaves, 200);
  EXPECT_EQ(t.num_nodes(), 2 * 200 - 1);
}

TEST(KdHierarchy, MassConservation) {
  Rng rng(2);
  const auto [pts, mass] = RandomPoints(150, 1 << 12, &rng, false);
  double total = 0.0;
  for (double m : mass) total += m;
  const KdHierarchy t = KdHierarchy::Build(pts, mass);
  EXPECT_NEAR(t.nodes()[t.root()].mass, total, 1e-9);
  // Parent mass = sum of child masses.
  for (const auto& n : t.nodes()) {
    if (!n.IsLeaf()) {
      EXPECT_NEAR(n.mass,
                  t.nodes()[n.left].mass + t.nodes()[n.right].mass, 1e-9);
    }
  }
}

TEST(KdHierarchy, BalancedSplits) {
  // With uniform masses, each split should be nearly even, so depth is
  // O(log n).
  Rng rng(3);
  const auto [pts, mass] = RandomPoints(1024, 1 << 20, &rng);
  const KdHierarchy t = KdHierarchy::Build(pts, mass);
  EXPECT_LE(t.MaxDepth(), 16);  // log2(1024) = 10, generous slack
}

TEST(KdHierarchy, LocateLeafFindsBuildPoints) {
  Rng rng(4);
  const auto [pts, mass] = RandomPoints(300, 1 << 14, &rng);
  const KdHierarchy t = KdHierarchy::Build(pts, mass);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const int leaf = t.LocateLeaf(pts[i]);
    ASSERT_NE(leaf, KdHierarchy::kNull);
    const auto& node = t.nodes()[leaf];
    ASSERT_TRUE(node.IsLeaf());
    // The located leaf's item run must contain point i.
    bool found = false;
    for (std::size_t j = node.begin; j < node.end; ++j) {
      found |= t.item_order()[j] == i;
    }
    EXPECT_TRUE(found) << "point " << i;
  }
}

TEST(KdHierarchy, LocateLeafTotalFunction) {
  // Arbitrary points (not in the build set) must land in exactly one leaf.
  Rng rng(5);
  const auto [pts, mass] = RandomPoints(100, 1 << 10, &rng);
  const KdHierarchy t = KdHierarchy::Build(pts, mass);
  for (int i = 0; i < 1000; ++i) {
    const Point2D q{rng.NextBounded(1 << 10), rng.NextBounded(1 << 10)};
    const int leaf = t.LocateLeaf(q);
    ASSERT_NE(leaf, KdHierarchy::kNull);
    EXPECT_TRUE(t.nodes()[leaf].IsLeaf());
  }
}

TEST(KdHierarchy, SuperLeavesPartitionItems) {
  Rng rng(6);
  const auto [pts, mass] = RandomPoints(500, 1 << 16, &rng);
  const KdHierarchy t = KdHierarchy::Build(pts, mass);
  const auto sleaves = t.SuperLeaves(8.0);
  // Super-leaves cover disjoint item ranges whose union is everything.
  std::vector<char> covered(pts.size(), 0);
  for (int v : sleaves) {
    for (std::size_t i = t.nodes()[v].begin; i < t.nodes()[v].end; ++i) {
      EXPECT_EQ(covered[t.item_order()[i]], 0);
      covered[t.item_order()[i]] = 1;
    }
    EXPECT_LE(t.nodes()[v].mass, 8.0);
  }
  for (char c : covered) EXPECT_EQ(c, 1);
}

TEST(KdHierarchy, SuperLeafCountScales) {
  // With unit masses and limit L, super-leaves hold ~L items each, so
  // there are ~n/L of them (within a factor ~2 because splits halve mass).
  Rng rng(7);
  const auto [pts, mass] = RandomPoints(1024, 1 << 18, &rng);
  const KdHierarchy t = KdHierarchy::Build(pts, mass);
  const auto sleaves = t.SuperLeaves(16.0);
  EXPECT_GE(sleaves.size(), 1024u / 16u);
  EXPECT_LE(sleaves.size(), 4u * 1024u / 16u);
}

TEST(KdHierarchy, DuplicatePointsShareALeaf) {
  std::vector<Point2D> pts{{3, 3}, {3, 3}, {9, 9}};
  std::vector<double> mass{1.0, 1.0, 1.0};
  const KdHierarchy t = KdHierarchy::Build(pts, mass);
  // The duplicate pair cannot be split; one leaf holds both.
  int max_leaf_items = 0;
  for (const auto& n : t.nodes()) {
    if (n.IsLeaf()) {
      max_leaf_items =
          std::max(max_leaf_items, static_cast<int>(n.end - n.begin));
    }
  }
  EXPECT_EQ(max_leaf_items, 2);
}

TEST(KdHierarchy, HyperplaneCrossingBound) {
  // Appendix E, Lemma 6: an axis-parallel line crosses O(sqrt(s))
  // super-leaves of a mass-balanced kd-tree. Empirical check on a uniform
  // grid: count super-leaves whose x-range straddles a vertical line.
  const int grid = 32;  // 1024 points on a grid
  std::vector<Point2D> pts;
  std::vector<double> mass;
  for (int x = 0; x < grid; ++x) {
    for (int y = 0; y < grid; ++y) {
      pts.push_back({static_cast<Coord>(x * 64), static_cast<Coord>(y * 64)});
      mass.push_back(1.0);
    }
  }
  const KdHierarchy t = KdHierarchy::Build(pts, mass);
  const auto sleaves = t.SuperLeaves(1.0);  // unit cells: s = 1024
  // Compute each super-leaf's x-extent from its items.
  const Coord line = 16 * 64 + 1;  // vertical line x = line
  int crossing = 0;
  for (int v : sleaves) {
    Coord lo = ~Coord{0}, hi = 0;
    for (std::size_t i = t.nodes()[v].begin; i < t.nodes()[v].end; ++i) {
      const Coord x = pts[t.item_order()[i]].x;
      lo = std::min(lo, x);
      hi = std::max(hi, x);
    }
    if (lo < line && hi >= line) ++crossing;
  }
  // sqrt(1024) = 32; allow constant slack.
  EXPECT_LE(crossing, 3 * 32);
}

}  // namespace
}  // namespace sas
