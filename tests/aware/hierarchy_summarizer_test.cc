#include "aware/hierarchy_summarizer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/discrepancy.h"
#include "core/ipps.h"
#include "core/random.h"

namespace sas {
namespace {

std::vector<WeightedKey> MakeItems(const std::vector<Weight>& w) {
  std::vector<WeightedKey> items(w.size());
  for (std::size_t i = 0; i < w.size(); ++i) {
    items[i] = {static_cast<KeyId>(i), w[i], {static_cast<Coord>(i), 0}};
  }
  return items;
}

/// Max discrepancy over every node range of the hierarchy.
double MaxNodeDiscrepancy(const Hierarchy& h, const std::vector<double>& probs,
                          const std::vector<char>& flags) {
  double worst = 0.0;
  for (int v = 0; v < h.num_nodes(); ++v) {
    double expected = 0.0, actual = 0.0;
    for (std::size_t r = h.leaf_begin(v); r < h.leaf_end(v); ++r) {
      const KeyId k = h.key_at_rank(r);
      expected += probs[k];
      actual += flags[k];
    }
    worst = std::max(worst, std::fabs(actual - expected));
  }
  return worst;
}

TEST(HierarchySummarize, ExactSampleSize) {
  Rng rng(1);
  for (int trial = 0; trial < 30; ++trial) {
    Rng tree_rng = rng.Split();
    const std::size_t n = 10 + rng.NextBounded(150);
    const Hierarchy h = Hierarchy::Random(n, 5, &tree_rng);
    std::vector<Weight> w(n);
    for (auto& x : w) x = rng.NextPareto(1.2);
    const std::size_t s = 1 + rng.NextBounded(n - 1);
    const auto result =
        HierarchySummarize(MakeItems(w), h, static_cast<double>(s), &rng);
    EXPECT_EQ(result.sample.size(), s);
  }
}

// The headline guarantee of Section 3: every hierarchy node sees a number
// of samples equal to the floor or ceiling of its expectation (Delta < 1).
struct HierCase {
  std::size_t n;
  double s;
  int branching;
};

class HierarchyDiscrepancy : public ::testing::TestWithParam<HierCase> {};

TEST_P(HierarchyDiscrepancy, EveryNodeBelowOne) {
  const auto [n, s, branching] = GetParam();
  Rng rng(static_cast<std::uint64_t>(n * 977 + s * 13 + branching));
  for (int trial = 0; trial < 200; ++trial) {
    Rng tree_rng = rng.Split();
    const Hierarchy h = Hierarchy::Random(n, branching, &tree_rng);
    std::vector<Weight> w(n);
    for (auto& x : w) x = rng.NextPareto(1.2);
    const auto items = MakeItems(w);
    const auto result = HierarchySummarize(items, h, s, &rng);

    std::vector<KeyId> ids;
    for (const auto& e : result.sample.entries()) ids.push_back(e.id);
    const auto flags = SampleFlags(n, ids);
    ASSERT_LT(MaxNodeDiscrepancy(h, result.probs, flags), 1.0 + 1e-9)
        << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, HierarchyDiscrepancy,
                         ::testing::Values(HierCase{10, 4.0, 2},
                                           HierCase{32, 7.0, 2},
                                           HierCase{50, 10.0, 4},
                                           HierCase{100, 5.0, 8},
                                           HierCase{100, 60.0, 3},
                                           HierCase{250, 25.0, 5}));

TEST(HierarchySummarize, PaperFigure1Example) {
  // The worked example of Figure 1: 10 leaves, s = 4, IPPS probabilities
  // 0.3 0.6 0.4 0.7 0.1 0.8 0.4 0.2 0.3 0.2 (sum = 4). With tau = 10 the
  // corresponding weights are p * tau.
  const std::vector<Weight> w{3, 6, 4, 7, 1, 8, 4, 2, 3, 2};
  const double s = 4.0;
  const double tau = SolveTau(w, s);
  EXPECT_NEAR(tau, 10.0, 1e-9);
  const std::vector<double> paper_probs{0.3, 0.6, 0.4, 0.7, 0.1,
                                        0.8, 0.4, 0.2, 0.3, 0.2};
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_NEAR(IppsProbability(w[i], tau), paper_probs[i], 1e-12);
  }
  // Hierarchy matching the figure's pairing order: groups {1,2}, {3,4},
  // leaf 5 under the root, {6,7}, {8,9,10}.
  // Node ids: 0 root; 1 = group A, 2 = group B, 3 = leaf 5, 4 = group C,
  // 5 = group D; then the grouped leaves.
  const std::vector<int> parent{-1, 0, 0, 0, 0, 0, 1, 1, 2, 2, 4, 4, 5, 5, 5};
  const Hierarchy h = Hierarchy::FromParents(parent);
  ASSERT_EQ(h.num_keys(), 10u);

  Rng rng(77);
  for (int trial = 0; trial < 200; ++trial) {
    const auto result = HierarchySummarize(MakeItems(w), h, s, &rng);
    ASSERT_EQ(result.sample.size(), 4u);
    // Every internal node gets floor/ceil of its expectation.
    std::vector<KeyId> ids;
    for (const auto& e : result.sample.entries()) ids.push_back(e.id);
    const auto flags = SampleFlags(10, ids);
    for (int v = 0; v < h.num_nodes(); ++v) {
      double expected = 0.0;
      int actual = 0;
      for (std::size_t r = h.leaf_begin(v); r < h.leaf_end(v); ++r) {
        expected += result.probs[h.key_at_rank(r)];
        actual += flags[h.key_at_rank(r)];
      }
      EXPECT_TRUE(actual == static_cast<int>(std::floor(expected)) ||
                  actual == static_cast<int>(std::ceil(expected)))
          << "node " << v << " expected " << expected << " got " << actual;
    }
  }
}

TEST(HierarchySummarize, InclusionFrequencyMatchesIpps) {
  const std::vector<Weight> w{6, 4, 2, 3, 2, 4, 3, 8, 7, 1};
  const double s = 4.0;
  const double tau = SolveTau(w, s);
  Rng tree_rng(5);
  const Hierarchy h = Hierarchy::Random(w.size(), 3, &tree_rng);
  const auto items = MakeItems(w);
  std::vector<int> hits(w.size(), 0);
  const int trials = 60000;
  Rng rng(6);
  for (int t = 0; t < trials; ++t) {
    const SummarizeResult result = HierarchySummarize(items, h, s, &rng);
    for (const auto& e : result.sample.entries()) {
      hits[e.id]++;
    }
  }
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(hits[i]) / trials,
                IppsProbability(w[i], tau), 0.012)
        << "key " << i;
  }
}

TEST(HierarchySummarize, UnbiasedNodeSum) {
  Rng tree_rng(7);
  const std::size_t n = 60;
  const Hierarchy h = Hierarchy::Random(n, 4, &tree_rng);
  Rng rng(8);
  std::vector<Weight> w(n);
  for (auto& x : w) x = rng.NextPareto(1.4);
  const auto items = MakeItems(w);
  // Pick an internal node covering a few keys.
  int node = -1;
  for (int v = 0; v < h.num_nodes(); ++v) {
    if (!h.is_leaf(v) && h.leaf_end(v) - h.leaf_begin(v) >= 5 &&
        h.leaf_end(v) - h.leaf_begin(v) <= 20) {
      node = v;
      break;
    }
  }
  ASSERT_GE(node, 0);
  Weight truth = 0.0;
  for (std::size_t r = h.leaf_begin(node); r < h.leaf_end(node); ++r) {
    truth += w[h.key_at_rank(r)];
  }

  double total = 0.0;
  const int trials = 30000;
  for (int t = 0; t < trials; ++t) {
    const auto result = HierarchySummarize(items, h, 12.0, &rng);
    total += result.sample.EstimateSubset([&](const WeightedKey& k) {
      const std::size_t r = h.rank_of_key(k.id);
      return r >= h.leaf_begin(node) && r < h.leaf_end(node);
    });
  }
  EXPECT_NEAR(total / trials / truth, 1.0, 0.02);
}

TEST(HierarchyAggregate, BalancedTreeUniformProbs) {
  // 16 leaves at p=1/2 on a complete binary tree: every subtree of 2^k
  // leaves must get exactly 2^(k-1) samples (discrepancy 0 at even masses).
  const Hierarchy h = Hierarchy::Balanced(4, 2);
  Rng rng(9);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<double> p(16, 0.5);
    HierarchyAggregate(&p, h, &rng);
    for (int v = 0; v < h.num_nodes(); ++v) {
      const std::size_t span = h.leaf_end(v) - h.leaf_begin(v);
      if (span >= 2) {
        int ones = 0;
        for (std::size_t r = h.leaf_begin(v); r < h.leaf_end(v); ++r) {
          ones += p[h.key_at_rank(r)] == 1.0;
        }
        EXPECT_EQ(ones, static_cast<int>(span / 2)) << "node " << v;
      }
    }
  }
}

}  // namespace
}  // namespace sas
