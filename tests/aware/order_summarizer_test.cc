#include "aware/order_summarizer.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/discrepancy.h"
#include "core/ipps.h"
#include "core/pair_aggregate.h"
#include "core/random.h"

namespace sas {
namespace {

std::vector<WeightedKey> MakeItems(const std::vector<Weight>& w) {
  std::vector<WeightedKey> items(w.size());
  for (std::size_t i = 0; i < w.size(); ++i) {
    items[i] = {static_cast<KeyId>(i), w[i], {static_cast<Coord>(i), 0}};
  }
  return items;
}

TEST(OrderSummarize, ExactSampleSize) {
  Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 10 + rng.NextBounded(200);
    std::vector<Weight> w(n);
    for (auto& x : w) x = rng.NextPareto(1.2);
    const std::size_t s = 1 + rng.NextBounded(n - 1);
    const auto result =
        OrderSummarize(MakeItems(w), static_cast<double>(s), &rng);
    EXPECT_EQ(result.sample.size(), s);
  }
}

// Theorem 1(i): interval discrepancy < 2, prefix discrepancy < 1.
struct OrderCase {
  std::size_t n;
  double s;
};

class OrderDiscrepancy : public ::testing::TestWithParam<OrderCase> {};

TEST_P(OrderDiscrepancy, PrefixBelowOneIntervalBelowTwo) {
  const auto [n, s] = GetParam();
  Rng rng(static_cast<std::uint64_t>(n * 131 + s));
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<Weight> w(n);
    for (auto& x : w) x = rng.NextPareto(1.2);
    const auto items = MakeItems(w);
    const auto result = OrderSummarize(items, s, &rng);

    std::vector<KeyId> ids;
    for (const auto& e : result.sample.entries()) ids.push_back(e.id);
    const auto flags = SampleFlags(n, ids);
    EXPECT_LT(MaxPrefixDiscrepancy(result.probs, flags), 1.0 + 1e-9);
    EXPECT_LT(MaxIntervalDiscrepancy(result.probs, flags), 2.0 + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, OrderDiscrepancy,
                         ::testing::Values(OrderCase{8, 3.0},
                                           OrderCase{20, 5.0},
                                           OrderCase{50, 7.0},
                                           OrderCase{100, 4.0},
                                           OrderCase{100, 40.0},
                                           OrderCase{200, 13.0}));

TEST(OrderSummarize, InclusionFrequencyMatchesIpps) {
  const std::vector<Weight> w{8.0, 4.0, 2.0, 1.0, 1.0, 1.0, 1.0};
  const double s = 3.0;
  const double tau = SolveTau(w, s);
  const auto items = MakeItems(w);
  std::vector<int> hits(w.size(), 0);
  const int trials = 60000;
  Rng rng(2);
  for (int t = 0; t < trials; ++t) {
    const SummarizeResult result = OrderSummarize(items, s, &rng);
    for (const auto& e : result.sample.entries()) {
      hits[e.id]++;
    }
  }
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(hits[i]) / trials,
                IppsProbability(w[i], tau), 0.012)
        << "key " << i;
  }
}

TEST(OrderSummarize, UnbiasedRangeSum) {
  Rng rng(3);
  std::vector<Weight> w(50);
  for (auto& x : w) x = rng.NextPareto(1.4);
  const auto items = MakeItems(w);
  Weight truth = 0.0;
  for (std::size_t i = 10; i < 30; ++i) truth += w[i];
  const Box range{{10, 30}, {0, 1}};

  double total = 0.0;
  const int trials = 40000;
  for (int t = 0; t < trials; ++t) {
    total += OrderSummarize(items, 10.0, &rng).sample.EstimateBox(range);
  }
  EXPECT_NEAR(total / trials / truth, 1.0, 0.02);
}

TEST(OrderSummarize, UnsortedInputHandled) {
  // Items arrive in scrambled coordinate order; discrepancy is measured in
  // coordinate order and must still satisfy the bound.
  Rng rng(4);
  const std::size_t n = 60;
  std::vector<WeightedKey> items(n);
  for (std::size_t i = 0; i < n; ++i) {
    items[i] = {static_cast<KeyId>(i), rng.NextPareto(1.3),
                {static_cast<Coord>((i * 37) % n), 0}};
  }
  for (int trial = 0; trial < 100; ++trial) {
    const auto result = OrderSummarize(items, 9.0, &rng);
    // Discrepancy in coordinate order: reindex by x.
    std::vector<double> probs_by_x(n);
    std::vector<char> flags_by_x(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      probs_by_x[items[i].pt.x] = result.probs[i];
    }
    for (const auto& e : result.sample.entries()) flags_by_x[e.pt.x] = 1;
    EXPECT_LT(MaxIntervalDiscrepancy(probs_by_x, flags_by_x), 2.0 + 1e-9);
  }
}

TEST(OrderAggregate, SetsEverything) {
  Rng rng(5);
  std::vector<double> p{0.25, 0.5, 0.75, 0.5};
  std::vector<std::size_t> order{0, 1, 2, 3};
  OrderAggregate(&p, order, &rng);
  for (double x : p) EXPECT_TRUE(IsSet(x));
}

}  // namespace
}  // namespace sas
