// Tests for the Section 5 two-pass variants beyond the product structure:
// disjoint ranges and hierarchies (linearized and ancestor partitions).

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "aware/two_pass.h"
#include "core/ipps.h"
#include "core/random.h"

namespace sas {
namespace {

std::vector<WeightedKey> MakeItems(const std::vector<Weight>& w) {
  std::vector<WeightedKey> items(w.size());
  for (std::size_t i = 0; i < w.size(); ++i) {
    items[i] = {static_cast<KeyId>(i), w[i], {static_cast<Coord>(i), 0}};
  }
  return items;
}

TEST(TwoPassDisjoint, ExactSampleSize) {
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 100 + rng.NextBounded(300);
    const int ranges = 3 + static_cast<int>(rng.NextBounded(20));
    std::vector<Weight> w(n);
    std::vector<int> range_of(n);
    for (std::size_t i = 0; i < n; ++i) {
      w[i] = rng.NextPareto(1.3);
      range_of[i] = static_cast<int>(rng.NextBounded(ranges));
    }
    const std::size_t s = 5 + rng.NextBounded(30);
    const Sample sample =
        TwoPassDisjointSample(MakeItems(w), range_of, ranges,
                              static_cast<double>(s), TwoPassConfig{}, &rng);
    EXPECT_EQ(sample.size(), s);
  }
}

TEST(TwoPassDisjoint, PerRangeFloorCeilWhp) {
  // Delta < 1 per range w.h.p. with a generous oversampling factor.
  Rng rng(2);
  int violations = 0;
  const int trials = 100;
  for (int trial = 0; trial < trials; ++trial) {
    const std::size_t n = 500;
    const int ranges = 25;
    std::vector<Weight> w(n);
    std::vector<int> range_of(n);
    for (std::size_t i = 0; i < n; ++i) {
      w[i] = rng.NextPareto(1.3);
      range_of[i] = static_cast<int>(rng.NextBounded(ranges));
    }
    const double s = 25.0;
    TwoPassConfig cfg;
    cfg.sprime_factor = 10.0;
    const Sample sample =
        TwoPassDisjointSample(MakeItems(w), range_of, ranges, s, cfg, &rng);

    const double tau = SolveTau(w, s);
    std::vector<double> probs;
    IppsProbabilities(w, tau, &probs);
    std::vector<double> expected(ranges, 0.0);
    std::vector<int> actual(ranges, 0);
    for (std::size_t i = 0; i < n; ++i) expected[range_of[i]] += probs[i];
    for (const auto& e : sample.entries()) actual[range_of[e.id]]++;
    for (int r = 0; r < ranges; ++r) {
      const bool ok = actual[r] == static_cast<int>(std::floor(expected[r])) ||
                      actual[r] == static_cast<int>(std::ceil(expected[r]));
      if (!ok) {
        ++violations;
        break;
      }
    }
  }
  EXPECT_LE(violations, 10);
}

TEST(TwoPassDisjoint, UnbiasedRangeSum) {
  Rng rng(3);
  const std::size_t n = 200;
  const int ranges = 8;
  std::vector<Weight> w(n);
  std::vector<int> range_of(n);
  for (std::size_t i = 0; i < n; ++i) {
    w[i] = rng.NextPareto(1.4);
    range_of[i] = static_cast<int>(i % ranges);
  }
  const auto items = MakeItems(w);
  Weight truth = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (range_of[i] == 3) truth += w[i];
  }
  double total = 0.0;
  const int trials = 10000;
  for (int t = 0; t < trials; ++t) {
    const Sample sample = TwoPassDisjointSample(items, range_of, ranges,
                                                20.0, TwoPassConfig{}, &rng);
    total += sample.EstimateSubset(
        [&](const WeightedKey& k) { return range_of[k.id] == 3; });
  }
  EXPECT_NEAR(total / trials / truth, 1.0, 0.03);
}

class TwoPassHierarchyTest
    : public ::testing::TestWithParam<HierarchyTwoPassVariant> {};

TEST_P(TwoPassHierarchyTest, ExactSampleSize) {
  Rng rng(4);
  for (int trial = 0; trial < 15; ++trial) {
    Rng tree_rng = rng.Split();
    const std::size_t n = 100 + rng.NextBounded(300);
    const Hierarchy h = Hierarchy::Random(n, 4, &tree_rng);
    std::vector<Weight> w(n);
    for (auto& x : w) x = rng.NextPareto(1.3);
    const std::size_t s = 5 + rng.NextBounded(30);
    const Sample sample =
        TwoPassHierarchySample(MakeItems(w), h, static_cast<double>(s),
                               TwoPassConfig{}, GetParam(), &rng);
    EXPECT_EQ(sample.size(), s);
  }
}

TEST_P(TwoPassHierarchyTest, UnbiasedSubtreeSum) {
  Rng tree_rng(5);
  const std::size_t n = 150;
  const Hierarchy h = Hierarchy::Random(n, 4, &tree_rng);
  Rng rng(6);
  std::vector<Weight> w(n);
  for (auto& x : w) x = rng.NextPareto(1.4);
  const auto items = MakeItems(w);
  int node = -1;
  for (int v = 0; v < h.num_nodes(); ++v) {
    if (!h.is_leaf(v) && h.leaf_end(v) - h.leaf_begin(v) >= 20 &&
        h.leaf_end(v) - h.leaf_begin(v) <= 80) {
      node = v;
      break;
    }
  }
  ASSERT_GE(node, 0);
  Weight truth = 0.0;
  for (std::size_t r = h.leaf_begin(node); r < h.leaf_end(node); ++r) {
    truth += w[h.key_at_rank(r)];
  }
  double total = 0.0;
  const int trials = 8000;
  for (int t = 0; t < trials; ++t) {
    const Sample sample = TwoPassHierarchySample(items, h, 20.0,
                                                 TwoPassConfig{}, GetParam(),
                                                 &rng);
    total += sample.EstimateSubset([&](const WeightedKey& k) {
      const std::size_t r = h.rank_of_key(k.id);
      return r >= h.leaf_begin(node) && r < h.leaf_end(node);
    });
  }
  EXPECT_NEAR(total / trials / truth, 1.0, 0.04);
}

TEST_P(TwoPassHierarchyTest, NodeDiscrepancyBounded) {
  // Linearize: Delta < 2 w.h.p.; ancestors: Delta < 1 w.h.p. Count
  // violations over trials with a generous oversampling factor.
  const double bound =
      GetParam() == HierarchyTwoPassVariant::kAncestors ? 1.0 : 2.0;
  Rng tree_rng(7);
  const std::size_t n = 400;
  const Hierarchy h = Hierarchy::Random(n, 4, &tree_rng);
  Rng rng(8);
  int violations = 0;
  const int trials = 60;
  for (int t = 0; t < trials; ++t) {
    std::vector<Weight> w(n);
    for (auto& x : w) x = rng.NextPareto(1.3);
    const double s = 20.0;
    TwoPassConfig cfg;
    cfg.sprime_factor = 10.0;
    const Sample sample =
        TwoPassHierarchySample(MakeItems(w), h, s, cfg, GetParam(), &rng);
    const double tau = SolveTau(w, s);
    std::vector<double> probs;
    IppsProbabilities(w, tau, &probs);
    std::vector<char> flags(n, 0);
    for (const auto& e : sample.entries()) flags[e.id] = 1;
    double worst = 0.0;
    for (int v = 0; v < h.num_nodes(); ++v) {
      double expected = 0.0, actual = 0.0;
      for (std::size_t r = h.leaf_begin(v); r < h.leaf_end(v); ++r) {
        expected += probs[h.key_at_rank(r)];
        actual += flags[h.key_at_rank(r)];
      }
      worst = std::max(worst, std::fabs(actual - expected));
    }
    if (worst >= bound + 1e-9) ++violations;
  }
  EXPECT_LE(violations, trials / 5) << "bound " << bound;
}

INSTANTIATE_TEST_SUITE_P(
    Variants, TwoPassHierarchyTest,
    ::testing::Values(HierarchyTwoPassVariant::kLinearize,
                      HierarchyTwoPassVariant::kAncestors),
    [](const ::testing::TestParamInfo<HierarchyTwoPassVariant>& info) {
      return info.param == HierarchyTwoPassVariant::kLinearize
                 ? "linearize"
                 : "ancestors";
    });

}  // namespace
}  // namespace sas
