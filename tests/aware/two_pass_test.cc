#include "aware/two_pass.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "core/ipps.h"
#include "core/random.h"
#include "sampling/varopt_offline.h"
#include "summaries/exact_summary.h"

namespace sas {
namespace {

std::vector<WeightedKey> RandomItems(std::size_t n, Coord domain, Rng* rng,
                                     double alpha = 1.3) {
  std::set<std::pair<Coord, Coord>> seen;
  while (seen.size() < n) {
    seen.insert({rng->NextBounded(domain), rng->NextBounded(domain)});
  }
  std::vector<WeightedKey> items;
  KeyId id = 0;
  for (const auto& [x, y] : seen) {
    items.push_back({id++, rng->NextPareto(alpha), {x, y}});
  }
  return items;
}

TEST(TwoPassProduct, ExactSampleSize) {
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 100 + rng.NextBounded(400);
    const auto items = RandomItems(n, 1 << 16, &rng);
    const std::size_t s = 5 + rng.NextBounded(40);
    const Sample sample = TwoPassProductSample(
        items, static_cast<double>(s), TwoPassConfig{}, &rng);
    EXPECT_EQ(sample.size(), s) << "n=" << n << " s=" << s;
  }
}

TEST(TwoPassProduct, ThresholdMatchesOffline) {
  Rng rng(2);
  const auto items = RandomItems(500, 1 << 14, &rng);
  std::vector<Weight> w;
  for (const auto& it : items) w.push_back(it.weight);
  const Sample sample =
      TwoPassProductSample(items, 25.0, TwoPassConfig{}, &rng);
  EXPECT_NEAR(sample.tau(), SolveTau(w, 25.0), 1e-9 * (1 + sample.tau()));
}

TEST(TwoPassProduct, InclusionFrequencyMatchesIpps) {
  Rng rng(3);
  const auto items = RandomItems(40, 1 << 10, &rng);
  std::vector<Weight> w;
  for (const auto& it : items) w.push_back(it.weight);
  const double s = 10.0;
  const double tau = SolveTau(w, s);
  std::vector<int> hits(items.size(), 0);
  const int trials = 30000;
  for (int t = 0; t < trials; ++t) {
    const Sample sample =
        TwoPassProductSample(items, s, TwoPassConfig{}, &rng);
    for (const auto& e : sample.entries()) hits[e.id]++;
  }
  for (std::size_t i = 0; i < items.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(hits[i]) / trials,
                IppsProbability(w[i], tau), 0.015)
        << "key " << i;
  }
}

TEST(TwoPassProduct, UnbiasedBoxSum) {
  Rng rng(4);
  const auto items = RandomItems(300, 1 << 12, &rng);
  const Box box{{0, 1 << 11}, {0, 1 << 12}};
  const Weight truth = ExactBoxSum(items, box);
  ASSERT_GT(truth, 0.0);
  double total = 0.0;
  const int trials = 15000;
  for (int t = 0; t < trials; ++t) {
    total += TwoPassProductSample(items, 30.0, TwoPassConfig{}, &rng)
                 .EstimateBox(box);
  }
  EXPECT_NEAR(total / trials / truth, 1.0, 0.03);
}

TEST(TwoPassProduct, BoxDiscrepancyBeatsOblivious) {
  Rng rng(5);
  const auto items = RandomItems(800, 1 << 14, &rng);
  std::vector<Weight> w;
  for (const auto& it : items) w.push_back(it.weight);
  const double s = 80.0;
  const double tau = SolveTau(w, s);
  std::vector<double> probs;
  IppsProbabilities(w, tau, &probs);

  std::vector<Box> boxes;
  for (int i = 0; i < 25; ++i) {
    const Coord x0 = rng.NextBounded(1 << 13);
    const Coord y0 = rng.NextBounded(1 << 13);
    const Coord wx = 1 + rng.NextBounded(1 << 13);
    const Coord wy = 1 + rng.NextBounded(1 << 13);
    boxes.push_back({{x0, x0 + wx}, {y0, y0 + wy}});
  }
  auto rms_disc = [&](auto&& sampler) {
    double total = 0.0;
    const int trials = 200;
    for (int t = 0; t < trials; ++t) {
      const Sample sample = sampler();
      for (const auto& box : boxes) {
        double expected = 0.0;
        for (std::size_t i = 0; i < items.size(); ++i) {
          if (box.Contains(items[i].pt)) expected += probs[i];
        }
        const double d =
            static_cast<double>(sample.CountInBox(box)) - expected;
        total += d * d;
      }
    }
    return std::sqrt(total / (trials * boxes.size()));
  };

  const double aware = rms_disc([&] {
    return TwoPassProductSample(items, s, TwoPassConfig{}, &rng);
  });
  const double obliv =
      rms_disc([&] { return VarOptOffline(items, s, &rng); });
  EXPECT_LT(aware, 0.9 * obliv)
      << "aware rms=" << aware << " obliv rms=" << obliv;
}

TEST(TwoPassProduct, StreamingInterfaceMatchesWrapper) {
  Rng rng(6);
  const auto items = RandomItems(200, 1 << 12, &rng);
  TwoPassProductSampler sampler(15.0, TwoPassConfig{}, rng.Split());
  for (const auto& it : items) sampler.Pass1(it);
  sampler.BeginPass2();
  EXPECT_GT(sampler.num_cells(), 0u);
  for (const auto& it : items) sampler.Pass2(it);
  const Sample sample = sampler.Finalize();
  EXPECT_EQ(sample.size(), 15u);
}

TEST(TwoPassOrder, ExactSampleSize) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 100 + rng.NextBounded(300);
    const auto items = RandomItems(n, 1 << 16, &rng);
    const std::size_t s = 5 + rng.NextBounded(30);
    const Sample sample = TwoPassOrderSample(
        items, static_cast<double>(s), TwoPassConfig{}, &rng);
    EXPECT_EQ(sample.size(), s);
  }
}

TEST(TwoPassOrder, IntervalDiscrepancyBelowTwoWhp) {
  // Section 5: with s' = Omega(s log s) the two-pass order summary matches
  // the main-memory Delta < 2 bound with high probability. The violation
  // probability must decay with the oversampling factor (measured here:
  // ~36% at 5x, ~10% at 8x, ~2% at 16x on this workload), and even a
  // violating run stays close to 2 (cells have O(1) mass).
  Rng rng(8);
  auto run = [&](double factor) {
    int violations = 0;
    double worst = 0.0;
    for (int trial = 0; trial < 100; ++trial) {
      const std::size_t n = 400;
      std::vector<WeightedKey> items(n);
      for (std::size_t i = 0; i < n; ++i) {
        items[i] = {static_cast<KeyId>(i), rng.NextPareto(1.3),
                    {static_cast<Coord>(i * 7 + rng.NextBounded(7)), 0}};
      }
      const double s = 20.0;
      TwoPassConfig cfg;
      cfg.sprime_factor = factor;
      const Sample sample = TwoPassOrderSample(items, s, cfg, &rng);

      std::vector<Weight> w;
      for (const auto& it : items) w.push_back(it.weight);
      const double tau = SolveTau(w, s);
      std::vector<double> probs;
      IppsProbabilities(w, tau, &probs);
      // Items are already x-sorted by construction here.
      std::vector<char> flags(n, 0);
      for (const auto& e : sample.entries()) flags[e.id] = 1;
      double diff = 0.0, lo = 0.0, hi = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        diff += (flags[i] ? 1.0 : 0.0) - probs[i];
        lo = std::min(lo, diff);
        hi = std::max(hi, diff);
      }
      if (hi - lo >= 2.0 + 1e-9) ++violations;
      worst = std::max(worst, hi - lo);
    }
    return std::make_pair(violations, worst);
  };
  const auto [v16, worst16] = run(16.0);
  EXPECT_LE(v16, 12);       // w.h.p. at a large factor
  EXPECT_LT(worst16, 3.0);  // violations stay near the bound
  const auto [v4, worst4] = run(4.0);
  (void)worst4;
  EXPECT_LE(v16, v4 + 5);  // decays with the factor
}

TEST(TwoPassProduct, TinyStreams) {
  Rng rng(9);
  // Fewer items than s: everything is kept.
  const auto items = RandomItems(5, 64, &rng);
  const Sample sample =
      TwoPassProductSample(items, 10.0, TwoPassConfig{}, &rng);
  EXPECT_EQ(sample.size(), 5u);
  EXPECT_DOUBLE_EQ(sample.tau(), 0.0);
}

}  // namespace
}  // namespace sas
