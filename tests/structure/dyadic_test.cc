#include "structure/dyadic.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/random.h"

namespace sas {
namespace {

TEST(DyadicToInterval, RootAndLeaves) {
  const Interval root = DyadicToInterval({0, 0}, 4);
  EXPECT_EQ(root.lo, 0u);
  EXPECT_EQ(root.hi, 16u);
  const Interval leaf = DyadicToInterval({4, 7}, 4);
  EXPECT_EQ(leaf.lo, 7u);
  EXPECT_EQ(leaf.hi, 8u);
}

TEST(DyadicAncestorIndex, Works) {
  EXPECT_EQ(DyadicAncestorIndex(13, 0, 4), 0u);
  EXPECT_EQ(DyadicAncestorIndex(13, 1, 4), 1u);   // 13 in upper half
  EXPECT_EQ(DyadicAncestorIndex(13, 4, 4), 13u);  // unit level
}

TEST(DyadicDecompose, FullDomainIsOnePiece) {
  const auto parts = DyadicDecompose(0, 16, 4);
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0].level, 0);
}

TEST(DyadicDecompose, EmptyRange) {
  EXPECT_TRUE(DyadicDecompose(5, 5, 4).empty());
}

TEST(DyadicDecompose, KnownCase) {
  // [3, 11) over 16: 3 | 4-7 | 8-10 -> [3,4),[4,8),[8,10),[10,11).
  const auto parts = DyadicDecompose(3, 11, 4);
  Coord covered = 0;
  for (const auto& p : parts) covered += DyadicToInterval(p, 4).Length();
  EXPECT_EQ(covered, 8u);
  EXPECT_LE(parts.size(), 8u);  // 2 * bits
}

TEST(DyadicDecompose, ExactDisjointCover) {
  Rng rng(1);
  const int bits = 10;
  const Coord domain = 1 << bits;
  for (int trial = 0; trial < 200; ++trial) {
    Coord a = rng.NextBounded(domain);
    Coord b = rng.NextBounded(domain + 1);
    if (a > b) std::swap(a, b);
    const auto parts = DyadicDecompose(a, b, bits);
    // Disjoint, sorted, covering exactly [a, b).
    Coord cursor = a;
    for (const auto& p : parts) {
      const Interval iv = DyadicToInterval(p, bits);
      EXPECT_EQ(iv.lo, cursor);
      cursor = iv.hi;
    }
    EXPECT_EQ(cursor, b);
    EXPECT_LE(parts.size(), 2u * bits);
  }
}

TEST(DyadicDecompose, PiecesAreCanonical) {
  // Each piece must be exactly a dyadic interval: aligned to its size.
  Rng rng(2);
  const int bits = 12;
  for (int trial = 0; trial < 100; ++trial) {
    Coord a = rng.NextBounded(1 << bits);
    Coord b = rng.NextBounded((1 << bits) + 1);
    if (a > b) std::swap(a, b);
    for (const auto& p : DyadicDecompose(a, b, bits)) {
      const Interval iv = DyadicToInterval(p, bits);
      const Coord len = iv.Length();
      EXPECT_EQ(len & (len - 1), 0u);
      EXPECT_EQ(iv.lo % len, 0u);
    }
  }
}

TEST(DyadicDecompose, SingleCell) {
  const auto parts = DyadicDecompose(7, 8, 4);
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0].level, 4);
  EXPECT_EQ(parts[0].index, 7u);
}

}  // namespace
}  // namespace sas
