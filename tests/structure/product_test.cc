#include "structure/product.h"

#include <gtest/gtest.h>

namespace sas {
namespace {

TEST(Interval, ContainsAndLength) {
  const Interval iv{10, 20};
  EXPECT_TRUE(iv.Contains(10));
  EXPECT_TRUE(iv.Contains(19));
  EXPECT_FALSE(iv.Contains(20));
  EXPECT_FALSE(iv.Contains(9));
  EXPECT_EQ(iv.Length(), 10u);
  EXPECT_FALSE(iv.Empty());
  EXPECT_TRUE((Interval{5, 5}).Empty());
}

TEST(Box, Contains) {
  const Box b{{0, 10}, {5, 15}};
  EXPECT_TRUE(b.Contains({0, 5}));
  EXPECT_TRUE(b.Contains({9, 14}));
  EXPECT_FALSE(b.Contains({10, 5}));
  EXPECT_FALSE(b.Contains({5, 15}));
}

TEST(IntersectIntervals, Overlapping) {
  const Interval out = IntersectIntervals({0, 10}, {5, 20});
  EXPECT_EQ(out.lo, 5u);
  EXPECT_EQ(out.hi, 10u);
}

TEST(IntersectIntervals, DisjointGivesEmpty) {
  const Interval out = IntersectIntervals({0, 5}, {10, 20});
  EXPECT_TRUE(out.Empty());
}

TEST(IntersectBoxes, Works) {
  const Box out = IntersectBoxes({{0, 10}, {0, 10}}, {{5, 15}, {5, 15}});
  EXPECT_EQ(out.x.lo, 5u);
  EXPECT_EQ(out.x.hi, 10u);
  EXPECT_EQ(out.y.lo, 5u);
  EXPECT_EQ(out.y.hi, 10u);
}

TEST(IntervalOverlapFraction, Cases) {
  EXPECT_DOUBLE_EQ(IntervalOverlapFraction({0, 10}, {0, 10}), 1.0);
  EXPECT_DOUBLE_EQ(IntervalOverlapFraction({0, 10}, {5, 10}), 0.5);
  EXPECT_DOUBLE_EQ(IntervalOverlapFraction({0, 10}, {20, 30}), 0.0);
  EXPECT_DOUBLE_EQ(IntervalOverlapFraction({5, 5}, {0, 10}), 0.0);  // empty a
}

TEST(BoxOverlapFraction, ProductOfAxes) {
  const Box a{{0, 10}, {0, 10}};
  const Box b{{5, 10}, {0, 5}};
  EXPECT_DOUBLE_EQ(BoxOverlapFraction(a, b), 0.25);
  EXPECT_DOUBLE_EQ(BoxOverlapFraction(a, a), 1.0);
}

TEST(BoxesIntersect, Cases) {
  EXPECT_TRUE(BoxesIntersect({{0, 10}, {0, 10}}, {{9, 20}, {9, 20}}));
  EXPECT_FALSE(BoxesIntersect({{0, 10}, {0, 10}}, {{10, 20}, {0, 10}}));
  EXPECT_FALSE(BoxesIntersect({{0, 10}, {0, 10}}, {{0, 10}, {10, 20}}));
}

TEST(AxisDomain, Size) {
  AxisDomain d;
  d.bits = 8;
  EXPECT_EQ(d.size(), 256u);
}

TEST(ProductDomain2D, FullBox) {
  ProductDomain2D dom;
  dom.x.bits = 4;
  dom.y.bits = 5;
  const Box full = dom.FullBox();
  EXPECT_EQ(full.x.hi, 16u);
  EXPECT_EQ(full.y.hi, 32u);
  EXPECT_TRUE(full.Contains({15, 31}));
}

}  // namespace
}  // namespace sas
