#include "structure/order.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace sas {
namespace {

TEST(SortedOrder, SortsByCoord) {
  const std::vector<Coord> coords{30, 10, 20};
  const auto order = SortedOrder(coords);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 1u);
  EXPECT_EQ(order[1], 2u);
  EXPECT_EQ(order[2], 0u);
}

TEST(SortedOrder, StableOnTies) {
  const std::vector<Coord> coords{5, 5, 5};
  const auto order = SortedOrder(coords);
  EXPECT_EQ(order[0], 0u);
  EXPECT_EQ(order[1], 1u);
  EXPECT_EQ(order[2], 2u);
}

TEST(SortedOrder, Empty) { EXPECT_TRUE(SortedOrder({}).empty()); }

TEST(ApplyOrder, Permutes) {
  const std::vector<int> values{10, 20, 30};
  const std::vector<std::size_t> order{2, 0, 1};
  const auto out = ApplyOrder(order, values);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], 30);
  EXPECT_EQ(out[1], 10);
  EXPECT_EQ(out[2], 20);
}

TEST(AllIntervals, CountAndContent) {
  const auto ivs = AllIntervals(3);
  EXPECT_EQ(ivs.size(), 6u);  // 3*4/2
  // Must include [0,3) and all singletons.
  EXPECT_NE(std::find(ivs.begin(), ivs.end(), std::make_pair<std::size_t, std::size_t>(0, 3)), ivs.end());
  EXPECT_NE(std::find(ivs.begin(), ivs.end(), std::make_pair<std::size_t, std::size_t>(1, 2)), ivs.end());
}

TEST(AllIntervals, EmptyDomain) { EXPECT_TRUE(AllIntervals(0).empty()); }

}  // namespace
}  // namespace sas
