#include "structure/hierarchy.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "core/random.h"

namespace sas {
namespace {

TEST(Hierarchy, FromParentsBasicShape) {
  // Root with two children (1, 2); node 1 has two leaf children (3, 4);
  // node 2 is itself a leaf.
  const Hierarchy h = Hierarchy::FromParents({-1, 0, 0, 1, 1});
  EXPECT_EQ(h.num_nodes(), 5);
  EXPECT_EQ(h.num_keys(), 3u);  // leaves: 2, 3, 4
  EXPECT_TRUE(h.is_leaf(2));
  EXPECT_TRUE(h.is_leaf(3));
  EXPECT_TRUE(h.is_leaf(4));
  EXPECT_FALSE(h.is_leaf(0));
  EXPECT_FALSE(h.is_leaf(1));
}

TEST(Hierarchy, DfsLeafRanks) {
  const Hierarchy h = Hierarchy::FromParents({-1, 0, 0, 1, 1});
  // DFS: 0 -> 1 -> 3, 4 -> 2. Leaves in order: 3, 4, 2.
  EXPECT_EQ(h.leaf_begin(0), 0u);
  EXPECT_EQ(h.leaf_end(0), 3u);
  EXPECT_EQ(h.leaf_begin(1), 0u);
  EXPECT_EQ(h.leaf_end(1), 2u);
  EXPECT_EQ(h.leaf_begin(2), 2u);
  EXPECT_EQ(h.leaf_end(2), 3u);
}

TEST(Hierarchy, KeysAssignedByDfs) {
  const Hierarchy h = Hierarchy::FromParents({-1, 0, 0, 1, 1});
  EXPECT_EQ(h.key_of_leaf(3), 0u);
  EXPECT_EQ(h.key_of_leaf(4), 1u);
  EXPECT_EQ(h.key_of_leaf(2), 2u);
  EXPECT_EQ(h.leaf_of_key(0), 3);
  EXPECT_EQ(h.rank_of_key(2), 2u);
  EXPECT_EQ(h.key_at_rank(0), 0u);
}

TEST(Hierarchy, Depths) {
  const Hierarchy h = Hierarchy::FromParents({-1, 0, 0, 1, 1});
  EXPECT_EQ(h.depth(0), 0);
  EXPECT_EQ(h.depth(1), 1);
  EXPECT_EQ(h.depth(3), 2);
}

TEST(Hierarchy, Lca) {
  const Hierarchy h = Hierarchy::FromParents({-1, 0, 0, 1, 1});
  EXPECT_EQ(h.Lca(3, 4), 1);
  EXPECT_EQ(h.Lca(3, 2), 0);
  EXPECT_EQ(h.Lca(4, 4), 4);
  EXPECT_EQ(h.Lca(1, 3), 1);
}

TEST(Hierarchy, BalancedShape) {
  const Hierarchy h = Hierarchy::Balanced(3, 2);
  EXPECT_EQ(h.num_keys(), 8u);
  EXPECT_EQ(h.num_nodes(), 15);
  // Every leaf at depth 3.
  for (int v = 0; v < h.num_nodes(); ++v) {
    if (h.is_leaf(v)) {
      EXPECT_EQ(h.depth(v), 3);
    }
  }
}

TEST(Hierarchy, BalancedBranchingThree) {
  const Hierarchy h = Hierarchy::Balanced(2, 3);
  EXPECT_EQ(h.num_keys(), 9u);
  EXPECT_EQ(h.num_nodes(), 13);
}

TEST(Hierarchy, RandomHasRequestedLeafCount) {
  Rng rng(42);
  for (std::size_t leaves : {1u, 2u, 5u, 100u, 1000u}) {
    Rng local = rng.Split();
    const Hierarchy h = Hierarchy::Random(leaves, 5, &local);
    EXPECT_EQ(h.num_keys(), leaves);
  }
}

TEST(Hierarchy, RandomBranchingBounded) {
  Rng rng(43);
  const Hierarchy h = Hierarchy::Random(500, 4, &rng);
  for (int v = 0; v < h.num_nodes(); ++v) {
    if (!h.is_leaf(v)) {
      EXPECT_GE(h.children(v).size(), 2u);
      EXPECT_LE(h.children(v).size(), 4u);
    }
  }
}

TEST(Hierarchy, NodeIntervalsNest) {
  Rng rng(44);
  const Hierarchy h = Hierarchy::Random(200, 6, &rng);
  for (int v = 1; v < h.num_nodes(); ++v) {
    const int p = h.parent(v);
    EXPECT_GE(h.leaf_begin(v), h.leaf_begin(p));
    EXPECT_LE(h.leaf_end(v), h.leaf_end(p));
  }
}

TEST(Hierarchy, ChildIntervalsPartitionParent) {
  Rng rng(45);
  const Hierarchy h = Hierarchy::Random(300, 5, &rng);
  for (int v = 0; v < h.num_nodes(); ++v) {
    if (h.is_leaf(v)) continue;
    std::size_t cursor = h.leaf_begin(v);
    for (int c : h.children(v)) {
      EXPECT_EQ(h.leaf_begin(c), cursor);
      cursor = h.leaf_end(c);
    }
    EXPECT_EQ(cursor, h.leaf_end(v));
  }
}

TEST(Hierarchy, KeysUnder) {
  const Hierarchy h = Hierarchy::FromParents({-1, 0, 0, 1, 1});
  const auto keys = h.KeysUnder(1);
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], 0u);
  EXPECT_EQ(keys[1], 1u);
}

TEST(CompressedBinaryTrie, SingleKey) {
  const Hierarchy h = Hierarchy::CompressedBinaryTrie({42}, 8);
  EXPECT_EQ(h.num_keys(), 1u);
  EXPECT_EQ(h.num_nodes(), 1);
  EXPECT_EQ(h.coord_of_key(0), 42u);
}

TEST(CompressedBinaryTrie, KeyIdsMatchInputOrder) {
  const std::vector<Coord> coords{200, 10, 100};
  const Hierarchy h = Hierarchy::CompressedBinaryTrie(coords, 8);
  EXPECT_EQ(h.num_keys(), 3u);
  for (KeyId k = 0; k < 3; ++k) {
    EXPECT_EQ(h.coord_of_key(k), coords[k]);
  }
}

TEST(CompressedBinaryTrie, DfsOrderIsCoordinateOrder) {
  Rng rng(46);
  std::set<Coord> coord_set;
  while (coord_set.size() < 300) coord_set.insert(rng.NextBounded(1 << 20));
  std::vector<Coord> coords(coord_set.begin(), coord_set.end());
  // Shuffle input order.
  for (std::size_t i = coords.size(); i > 1; --i) {
    std::swap(coords[i - 1], coords[rng.NextBounded(i)]);
  }
  const Hierarchy h = Hierarchy::CompressedBinaryTrie(coords, 20);
  Coord prev = 0;
  for (std::size_t r = 0; r < h.num_keys(); ++r) {
    const Coord c = h.coord_of_key(h.key_at_rank(r));
    if (r > 0) {
      EXPECT_LT(prev, c);
    }
    prev = c;
  }
}

TEST(CompressedBinaryTrie, NodeRangesAreDyadicAndContainLeaves) {
  Rng rng(47);
  std::set<Coord> coord_set;
  while (coord_set.size() < 200) coord_set.insert(rng.NextBounded(1 << 16));
  std::vector<Coord> coords(coord_set.begin(), coord_set.end());
  const Hierarchy h = Hierarchy::CompressedBinaryTrie(coords, 16);
  for (int v = 0; v < h.num_nodes(); ++v) {
    const Interval r = h.coord_range(v);
    // Power-of-two length, aligned.
    const Coord len = r.Length();
    EXPECT_EQ(len & (len - 1), 0u) << "node " << v;
    EXPECT_EQ(r.lo % len, 0u);
    // Contains exactly its leaf coords.
    for (std::size_t rank = h.leaf_begin(v); rank < h.leaf_end(v); ++rank) {
      EXPECT_TRUE(r.Contains(h.coord_of_key(h.key_at_rank(rank))));
    }
  }
}

TEST(CompressedBinaryTrie, InternalNodesHaveTwoChildren) {
  Rng rng(48);
  std::set<Coord> coord_set;
  while (coord_set.size() < 100) coord_set.insert(rng.NextBounded(1 << 12));
  std::vector<Coord> coords(coord_set.begin(), coord_set.end());
  const Hierarchy h = Hierarchy::CompressedBinaryTrie(coords, 12);
  for (int v = 0; v < h.num_nodes(); ++v) {
    if (!h.is_leaf(v)) {
      EXPECT_EQ(h.children(v).size(), 2u);
    }
  }
  // Path compression: node count is exactly 2*keys - 1.
  EXPECT_EQ(h.num_nodes(), 2 * static_cast<int>(h.num_keys()) - 1);
}

TEST(Hierarchy, SetLeafCoords) {
  Hierarchy h = Hierarchy::FromParents({-1, 0, 0, 1, 1});
  h.SetLeafCoords({10, 20, 30});
  EXPECT_EQ(h.coord_of_key(0), 10u);
  EXPECT_EQ(h.coord_of_key(2), 30u);
  // Internal spans cover children.
  EXPECT_EQ(h.coord_range(1).lo, 10u);
  EXPECT_EQ(h.coord_range(1).hi, 21u);
  EXPECT_EQ(h.coord_range(0).hi, 31u);
}

}  // namespace
}  // namespace sas
