// Cross-cutting property tests: every sampler in the library must satisfy
// the sample-summary contract (IPPS marginals, fixed size for VarOpt
// schemes, unbiased Horvitz-Thompson estimates). Parameterized over the
// sampler implementations.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "api/registry.h"
#include "core/ipps.h"
#include "core/random.h"
#include "sampling/stream_varopt.h"
#include "sampling/systematic.h"
#include "sampling/varopt_offline.h"
#include "summaries/exact_summary.h"

namespace sas {
namespace {

using SamplerFn = std::function<Sample(const std::vector<WeightedKey>&,
                                       double, Rng*)>;

/// Builds one sample through the registry, drawing the config seed from the
/// caller's rng so repeated calls see fresh randomness.
Sample RegistrySample(const char* key, const StructureSpec& spec,
                      const std::vector<WeightedKey>& items, double s,
                      Rng* rng) {
  SummarizerConfig cfg;
  cfg.s = s;
  cfg.seed = rng->Next();
  cfg.structure = spec;
  return BuildSummary(key, cfg, items)->AsSample()->sample();
}

struct SamplerCase {
  std::string name;
  SamplerFn fn;
  bool fixed_size;  // VarOpt schemes give exactly s samples
};

std::vector<SamplerCase> AllSamplers() {
  return {
      {"varopt_offline",
       [](const auto& items, double s, Rng* rng) {
         return VarOptOffline(items, s, rng);
       },
       true},
      {"stream_varopt",
       [](const auto& items, double s, Rng* rng) {
         StreamVarOpt sv(static_cast<std::size_t>(s), rng->Split());
         for (const auto& it : items) sv.Push(it);
         return sv.ToSample();
       },
       true},
      // The structure-aware schemes go through the public registry API so
      // the sampler contract is pinned on the surface users call.
      {"order_aware",
       [](const auto& items, double s, Rng* rng) {
         return RegistrySample(keys::kOrder, StructureSpec::Order(), items,
                               s, rng);
       },
       true},
      {"product_aware",
       [](const auto& items, double s, Rng* rng) {
         return RegistrySample(keys::kProduct, StructureSpec::Product(),
                               items, s, rng);
       },
       true},
      {"two_pass_product",
       [](const auto& items, double s, Rng* rng) {
         return RegistrySample(keys::kAware, StructureSpec::Product(), items,
                               s, rng);
       },
       true},
      {"two_pass_order",
       [](const auto& items, double s, Rng* rng) {
         return RegistrySample(keys::kOrderTwoPass, StructureSpec::Order(),
                               items, s, rng);
       },
       true},
      {"systematic",
       [](const auto& items, double s, Rng* rng) {
         return SystematicSample(items, s, rng);
       },
       false},
  };
}

std::vector<WeightedKey> RandomItems(std::size_t n, Coord domain, Rng* rng) {
  std::set<std::pair<Coord, Coord>> seen;
  while (seen.size() < n) {
    seen.insert({rng->NextBounded(domain), rng->NextBounded(domain)});
  }
  std::vector<WeightedKey> items;
  KeyId id = 0;
  for (const auto& [x, y] : seen) {
    items.push_back({id++, rng->NextPareto(1.3), {x, y}});
  }
  return items;
}

class SamplerContract : public ::testing::TestWithParam<SamplerCase> {};

TEST_P(SamplerContract, FixedSampleSize) {
  const auto& param = GetParam();
  if (!param.fixed_size) GTEST_SKIP() << "not a fixed-size scheme";
  Rng rng(1);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 50 + rng.NextBounded(200);
    const auto items = RandomItems(n, 1 << 14, &rng);
    const std::size_t s = 5 + rng.NextBounded(30);
    const Sample sample = param.fn(items, static_cast<double>(s), &rng);
    EXPECT_EQ(sample.size(), s) << param.name;
  }
}

TEST_P(SamplerContract, ThresholdIsIpps) {
  const auto& param = GetParam();
  Rng rng(2);
  const auto items = RandomItems(150, 1 << 12, &rng);
  std::vector<Weight> w;
  for (const auto& it : items) w.push_back(it.weight);
  const Sample sample = param.fn(items, 20.0, &rng);
  EXPECT_NEAR(sample.tau(), SolveTau(w, 20.0), 1e-6 * (1.0 + sample.tau()))
      << param.name;
}

TEST_P(SamplerContract, HeavyKeysAlwaysSampled) {
  const auto& param = GetParam();
  Rng rng(3);
  auto items = RandomItems(80, 1 << 12, &rng);
  items[11].weight = 1e7;
  items[37].weight = 1e7;
  for (int trial = 0; trial < 20; ++trial) {
    const Sample sample = param.fn(items, 10.0, &rng);
    bool has11 = false, has37 = false;
    for (const auto& e : sample.entries()) {
      has11 |= e.id == 11;
      has37 |= e.id == 37;
    }
    EXPECT_TRUE(has11 && has37) << param.name;
  }
}

TEST_P(SamplerContract, UnbiasedTotal) {
  const auto& param = GetParam();
  Rng rng(4);
  const auto items = RandomItems(100, 1 << 12, &rng);
  const Weight truth = TotalWeight(items);
  double total = 0.0;
  const int trials = 4000;
  for (int t = 0; t < trials; ++t) {
    total += param.fn(items, 15.0, &rng).EstimateTotal();
  }
  EXPECT_NEAR(total / trials / truth, 1.0, 0.05) << param.name;
}

TEST_P(SamplerContract, UnbiasedBoxEstimate) {
  const auto& param = GetParam();
  Rng rng(5);
  const auto items = RandomItems(100, 1 << 12, &rng);
  const Box box{{0, 1 << 11}, {0, 1 << 12}};
  const Weight truth = ExactBoxSum(items, box);
  ASSERT_GT(truth, 0.0);
  double total = 0.0;
  const int trials = 4000;
  for (int t = 0; t < trials; ++t) {
    total += param.fn(items, 15.0, &rng).EstimateBox(box);
  }
  EXPECT_NEAR(total / trials / truth, 1.0, 0.08) << param.name;
}

TEST_P(SamplerContract, MarginalsMatchIpps) {
  const auto& param = GetParam();
  Rng rng(6);
  const auto items = RandomItems(25, 1 << 10, &rng);
  std::vector<Weight> w;
  for (const auto& it : items) w.push_back(it.weight);
  const double s = 8.0;
  const double tau = SolveTau(w, s);
  std::vector<int> hits(items.size(), 0);
  const int trials = 12000;
  for (int t = 0; t < trials; ++t) {
    const Sample sample = param.fn(items, s, &rng);
    for (const auto& e : sample.entries()) hits[e.id]++;
  }
  for (std::size_t i = 0; i < items.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(hits[i]) / trials,
                IppsProbability(w[i], tau), 0.025)
        << param.name << " key " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSamplers, SamplerContract, ::testing::ValuesIn(AllSamplers()),
    [](const ::testing::TestParamInfo<SamplerCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace sas
