// End-to-end integration: generate a dataset, build every summary, run the
// paper's query workloads, and check the qualitative findings of Section 6
// at laptop scale (who wins, and how error scales).

#include <gtest/gtest.h>

#include <cmath>

#include "data/network_gen.h"
#include "data/techticket_gen.h"
#include "eval/harness.h"

namespace sas {
namespace {

Dataset2D TestNetwork() {
  NetworkConfig cfg;
  cfg.num_sources = 1500;
  cfg.num_dests = 1200;
  cfg.num_pairs = 10000;
  cfg.bits = 18;
  cfg.seed = 31;
  return GenerateNetwork(cfg);
}

class EndToEnd : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ds_ = new Dataset2D(TestNetwork());
    part_ = new WeightPartition(ds_->items, ds_->domain);
  }
  static void TearDownTestSuite() {
    delete part_;
    delete ds_;
    ds_ = nullptr;
    part_ = nullptr;
  }
  static Dataset2D* ds_;
  static WeightPartition* part_;
};

Dataset2D* EndToEnd::ds_ = nullptr;
WeightPartition* EndToEnd::part_ = nullptr;

double MeanAbs(const Dataset2D& /*ds*/, const QueryBattery& battery,
               const BuiltSummary& b) {
  return EvaluateOnBattery(b, battery).errors.mean_abs;
}

TEST_F(EndToEnd, AllMethodsProduceFiniteErrors) {
  Rng rng(1);
  const auto battery =
      UniformWeightQueries(ds_->items, *part_, 15, 5, 5, &rng);
  const auto built = BuildMethods(
      *ds_, 300, DefaultMethods(/*include_sketch=*/true), 2);
  for (const auto& b : built) {
    const auto result = EvaluateOnBattery(b, battery);
    EXPECT_TRUE(std::isfinite(result.errors.mean_abs)) << result.method;
    EXPECT_TRUE(std::isfinite(result.errors.sum_squared)) << result.method;
  }
}

TEST_F(EndToEnd, AwareBeatsOblivOnRangeQueries) {
  // The headline result (Fig. 2): at equal size, structure-aware sampling
  // has lower range-query error than oblivious sampling. Averaged over
  // several seeds to keep the test stable.
  Rng rng(3);
  const auto battery =
      UniformWeightQueries(ds_->items, *part_, 25, 5, 5, &rng);
  double aware_total = 0.0, obliv_total = 0.0;
  for (int seed = 0; seed < 5; ++seed) {
    const auto built =
        BuildMethods(*ds_, 400, {keys::kAware, keys::kObliv}, 100 + seed);
    aware_total += MeanAbs(*ds_, battery, built[0]);
    obliv_total += MeanAbs(*ds_, battery, built[1]);
  }
  EXPECT_LT(aware_total, obliv_total)
      << "aware=" << aware_total / 5 << " obliv=" << obliv_total / 5;
}

TEST_F(EndToEnd, SampleErrorShrinksWithSize) {
  Rng rng(4);
  const auto battery =
      UniformWeightQueries(ds_->items, *part_, 20, 5, 4, &rng);
  const std::vector<std::string> methods{keys::kAware, keys::kObliv};
  double err_small = 0.0, err_large = 0.0;
  for (int seed = 0; seed < 3; ++seed) {
    err_small +=
        MeanAbs(*ds_, battery, BuildMethods(*ds_, 50, methods, seed)[0]);
    err_large +=
        MeanAbs(*ds_, battery, BuildMethods(*ds_, 1000, methods, seed)[0]);
  }
  EXPECT_LT(err_large, err_small);
}

TEST_F(EndToEnd, QDigestWorseThanSamplingOnUniformWeightQueries) {
  // Fig. 2(b): on uniform-weight queries the q-digest error is far above
  // the sampling methods.
  Rng rng(5);
  const auto battery =
      UniformWeightQueries(ds_->items, *part_, 20, 10, 6, &rng);
  const auto built = BuildMethods(*ds_, 300, DefaultMethods(), 6);
  const double aware = MeanAbs(*ds_, battery, built[0]);
  const double qdig = MeanAbs(*ds_, battery, built[3]);
  EXPECT_LT(aware, qdig);
}

TEST_F(EndToEnd, TechTicketPipelineRuns) {
  TechTicketConfig cfg;
  cfg.num_codes = 200;
  cfg.num_locations = 1000;
  cfg.num_pairs = 6000;
  cfg.bits = 14;
  cfg.seed = 8;
  const auto ds = GenerateTechTicket(cfg);
  const WeightPartition part(ds.items, ds.domain);
  Rng rng(9);
  const auto battery = UniformWeightQueries(ds.items, part, 10, 5, 4, &rng);
  const auto built = BuildMethods(ds, 200, DefaultMethods(), 10);
  ASSERT_EQ(built.size(), 4u);
  for (const auto& b : built) {
    const auto result = EvaluateOnBattery(b, battery);
    EXPECT_TRUE(std::isfinite(result.errors.mean_abs)) << result.method;
  }
}

TEST_F(EndToEnd, SamplesAnswerArbitrarySubsetQueries) {
  // Flexibility: a sample answers non-range queries (here: "all keys whose
  // source is even") with small relative error; dedicated summaries cannot.
  const std::vector<std::string> methods{keys::kAware, keys::kObliv};
  Weight truth = 0.0;
  for (const auto& it : ds_->items) {
    if (it.pt.x % 2 == 0) truth += it.weight;
  }
  double est_total = 0.0;
  const int seeds = 10;
  for (int seed = 0; seed < seeds; ++seed) {
    const auto built = BuildMethods(*ds_, 500, methods, 200 + seed);
    const SampleSummary* aware = built[0].summary->AsSample();
    ASSERT_NE(aware, nullptr);
    est_total += aware->sample().EstimateSubset(
        [](const WeightedKey& k) { return k.pt.x % 2 == 0; });
  }
  EXPECT_NEAR(est_total / seeds / truth, 1.0, 0.15);
}

}  // namespace
}  // namespace sas
