// Edge-case and failure-injection tests across all samplers: degenerate
// weights, tiny inputs, duplicate coordinates, extreme skew. Every sampler
// must stay well-defined (no crashes, sane samples) on inputs that violate
// the "nice" assumptions of the analysis.

#include <gtest/gtest.h>

#include <vector>

#include "api/registry.h"
#include "aware/two_pass.h"
#include "core/ipps.h"
#include "core/random.h"
#include "structure/hierarchy.h"
#include "sampling/poisson.h"
#include "sampling/stream_varopt.h"
#include "sampling/systematic.h"
#include "sampling/varopt_offline.h"

namespace sas {
namespace {

/// Builds one summary through the registry, drawing the config seed from
/// the caller's rng so repeated calls see fresh randomness.
std::unique_ptr<RangeSummary> BuildVia(const char* key,
                                       const StructureSpec& spec,
                                       const std::vector<WeightedKey>& items,
                                       double s, Rng* rng) {
  SummarizerConfig cfg;
  cfg.s = s;
  cfg.seed = rng->Next();
  cfg.structure = spec;
  return BuildSummary(key, cfg, items);
}

TEST(EdgeCases, SingleKey) {
  Rng rng(1);
  const std::vector<WeightedKey> items{{0, 5.0, {7, 9}}};
  EXPECT_EQ(VarOptOffline(items, 1.0, &rng).size(), 1u);
  EXPECT_EQ(
      BuildVia(keys::kOrder, StructureSpec::Order(), items, 1.0, &rng)
          ->SizeInElements(),
      1u);
  EXPECT_EQ(
      BuildVia(keys::kProduct, StructureSpec::Product(), items, 1.0, &rng)
          ->SizeInElements(),
      1u);
  EXPECT_EQ(
      TwoPassProductSample(items, 1.0, TwoPassConfig{}, &rng).size(), 1u);
}

TEST(EdgeCases, AllZeroWeights) {
  Rng rng(2);
  std::vector<WeightedKey> items;
  for (KeyId i = 0; i < 10; ++i) items.push_back({i, 0.0, {i, i}});
  EXPECT_EQ(PoissonSample(items, 3.0, &rng).size(), 0u);
  EXPECT_EQ(TwoPassProductSample(items, 3.0, TwoPassConfig{}, &rng).size(),
            0u);
  StreamVarOpt sv(3, rng.Split());
  for (const auto& it : items) sv.Push(it);
  EXPECT_EQ(sv.size(), 0u);
}

TEST(EdgeCases, MixedZeroAndPositiveWeights) {
  Rng rng(3);
  std::vector<WeightedKey> items;
  for (KeyId i = 0; i < 40; ++i) {
    items.push_back({i, i % 2 == 0 ? 1.0 : 0.0, {i, i}});
  }
  // 20 positive keys; a sample of 5 must contain only positive-weight keys.
  for (int t = 0; t < 20; ++t) {
    const Sample s = VarOptOffline(items, 5.0, &rng);
    EXPECT_EQ(s.size(), 5u);
    for (const auto& e : s.entries()) EXPECT_GT(e.weight, 0.0);
  }
}

TEST(EdgeCases, IdenticalPoints) {
  // Duplicate 2-D coordinates (distinct keys at the same cell) must not
  // break the kd-based samplers.
  Rng rng(4);
  std::vector<WeightedKey> items;
  for (KeyId i = 0; i < 50; ++i) items.push_back({i, 1.0, {5, 5}});
  for (KeyId i = 50; i < 100; ++i) items.push_back({i, 1.0, {9, 2}});
  const auto result =
      BuildVia(keys::kProduct, StructureSpec::Product(), items, 10.0, &rng);
  EXPECT_EQ(result->SizeInElements(), 10u);
  const Sample tp = TwoPassProductSample(items, 10.0, TwoPassConfig{}, &rng);
  EXPECT_EQ(tp.size(), 10u);
}

TEST(EdgeCases, ExtremeSkewOneGiant) {
  Rng rng(5);
  std::vector<WeightedKey> items;
  for (KeyId i = 0; i < 100; ++i) items.push_back({i, 1e-6, {i, i}});
  items[50].weight = 1e12;
  for (int t = 0; t < 10; ++t) {
    const Sample s = VarOptOffline(items, 4.0, &rng);
    EXPECT_EQ(s.size(), 4u);
    bool has_giant = false;
    for (const auto& e : s.entries()) has_giant |= e.id == 50;
    EXPECT_TRUE(has_giant);
    // HT total stays near the truth (dominated by the giant).
    EXPECT_NEAR(s.EstimateTotal() / 1e12, 1.0, 0.01);
  }
}

TEST(EdgeCases, SampleSizeOne) {
  Rng rng(6);
  std::vector<WeightedKey> items;
  for (KeyId i = 0; i < 30; ++i) {
    items.push_back({i, rng.NextPareto(1.2), {i, 0}});
  }
  for (int t = 0; t < 50; ++t) {
    EXPECT_EQ(
        BuildVia(keys::kOrder, StructureSpec::Order(), items, 1.0, &rng)
            ->SizeInElements(),
        1u);
    EXPECT_EQ(
        BuildVia(keys::kProduct, StructureSpec::Product(), items, 1.0, &rng)
            ->SizeInElements(),
        1u);
  }
}

TEST(EdgeCases, SampleSizeNMinusOne) {
  Rng rng(7);
  std::vector<WeightedKey> items;
  for (KeyId i = 0; i < 20; ++i) {
    items.push_back({i, rng.NextPareto(1.2), {i, 0}});
  }
  for (int t = 0; t < 50; ++t) {
    EXPECT_EQ(
        BuildVia(keys::kOrder, StructureSpec::Order(), items, 19.0, &rng)
            ->SizeInElements(),
        19u);
    EXPECT_EQ(VarOptOffline(items, 19.0, &rng).size(), 19u);
  }
}

TEST(EdgeCases, UniformWeightsReduceToReservoir) {
  // With uniform weights VarOpt degenerates to reservoir sampling (the
  // paper notes reservoir sampling is a special case); every sampler gives
  // a uniform sample of exactly s keys.
  Rng rng(8);
  std::vector<WeightedKey> items;
  for (KeyId i = 0; i < 60; ++i) items.push_back({i, 2.5, {i, 0}});
  const auto result =
      BuildVia(keys::kOrder, StructureSpec::Order(), items, 12.0, &rng);
  EXPECT_EQ(result->SizeInElements(), 12u);
  for (double p : result->AsSample()->probs()) EXPECT_NEAR(p, 0.2, 1e-12);
}

TEST(EdgeCases, HierarchySingleLeaf) {
  Rng rng(9);
  const Hierarchy h = Hierarchy::FromParents({-1});
  const std::vector<WeightedKey> items{{0, 3.0, {0, 0}}};
  const auto result = BuildVia(
      keys::kHierarchy, StructureSpec::OverHierarchy(&h), items, 1.0, &rng);
  EXPECT_EQ(result->SizeInElements(), 1u);
}

TEST(EdgeCases, SystematicWithHeavyKeys) {
  Rng rng(10);
  std::vector<WeightedKey> items;
  for (KeyId i = 0; i < 30; ++i) items.push_back({i, 1.0, {i, 0}});
  items[3].weight = 100.0;
  items[17].weight = 100.0;
  for (int t = 0; t < 30; ++t) {
    const Sample s = SystematicSample(items, 5.0, &rng);
    bool h3 = false, h17 = false;
    for (const auto& e : s.entries()) {
      h3 |= e.id == 3;
      h17 |= e.id == 17;
    }
    EXPECT_TRUE(h3 && h17);
  }
}

TEST(EdgeCases, TwoPassPass2OrderIrrelevantForSize) {
  // The second pass may see items in any order; sample size stays exact.
  Rng rng(11);
  std::vector<WeightedKey> items;
  for (KeyId i = 0; i < 200; ++i) {
    items.push_back(
        {i, rng.NextPareto(1.3), {rng.NextBounded(1000), rng.NextBounded(1000)}});
  }
  TwoPassProductSampler sampler(15.0, TwoPassConfig{}, rng.Split());
  for (const auto& it : items) sampler.Pass1(it);
  sampler.BeginPass2();
  // Reverse order in pass 2.
  for (auto it = items.rbegin(); it != items.rend(); ++it) {
    sampler.Pass2(*it);
  }
  EXPECT_EQ(sampler.Finalize().size(), 15u);
}

TEST(EdgeCases, FractionalSampleSize) {
  // Non-integral s: the sample size is floor(s) or ceil(s).
  Rng rng(12);
  std::vector<WeightedKey> items;
  for (KeyId i = 0; i < 50; ++i) {
    items.push_back({i, rng.NextPareto(1.3), {i, 0}});
  }
  for (int t = 0; t < 100; ++t) {
    const std::size_t got =
        BuildVia(keys::kOrder, StructureSpec::Order(), items, 7.5, &rng)
            ->SizeInElements();
    EXPECT_TRUE(got == 7 || got == 8) << got;
  }
}

TEST(EdgeCases, EqualWeightsTieAtThreshold) {
  // Weights exactly equal to tau (probability exactly 1 for some keys).
  Rng rng(13);
  std::vector<WeightedKey> items;
  for (KeyId i = 0; i < 10; ++i) items.push_back({i, 4.0, {i, 0}});
  items[0].weight = 12.0;  // tau for s=4 is 36/3 = 12 -> p0 = 1 exactly
  const auto result =
      BuildVia(keys::kOrder, StructureSpec::Order(), items, 4.0, &rng);
  EXPECT_EQ(result->SizeInElements(), 4u);
  bool has0 = false;
  for (const auto& e : result->AsSample()->sample().entries()) {
    has0 |= e.id == 0;
  }
  EXPECT_TRUE(has0);
}

}  // namespace
}  // namespace sas
