#include "core/discrepancy.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace sas {
namespace {

TEST(RangeDiscrepancy, Basic) {
  const std::vector<double> probs{0.5, 0.5, 0.5, 0.5};
  const std::vector<char> flags{1, 0, 1, 0};
  EXPECT_DOUBLE_EQ(RangeDiscrepancy(probs, flags, {0, 1}), 0.0);
  EXPECT_DOUBLE_EQ(RangeDiscrepancy(probs, flags, {0, 2}), 1.0);
  EXPECT_DOUBLE_EQ(RangeDiscrepancy(probs, flags, {1, 3}), 1.0);
  EXPECT_DOUBLE_EQ(RangeDiscrepancy(probs, flags, {1, 2}), 0.0);
  EXPECT_DOUBLE_EQ(RangeDiscrepancy(probs, flags, {1}), 0.5);
}

TEST(MaxIntervalDiscrepancy, MatchesBruteForce) {
  const std::vector<double> probs{0.3, 0.7, 0.2, 0.8, 0.5};
  const std::vector<char> flags{0, 1, 1, 0, 1};
  // Brute force over all intervals.
  double best = 0.0;
  const std::size_t n = probs.size();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j <= n; ++j) {
      double e = 0.0, a = 0.0;
      for (std::size_t k = i; k < j; ++k) {
        e += probs[k];
        a += flags[k];
      }
      best = std::max(best, std::abs(a - e));
    }
  }
  EXPECT_NEAR(MaxIntervalDiscrepancy(probs, flags), best, 1e-12);
}

TEST(MaxIntervalDiscrepancy, ZeroForPerfectMatch) {
  const std::vector<double> probs{1.0, 0.0, 1.0};
  const std::vector<char> flags{1, 0, 1};
  EXPECT_DOUBLE_EQ(MaxIntervalDiscrepancy(probs, flags), 0.0);
}

TEST(MaxPrefixDiscrepancy, Basic) {
  const std::vector<double> probs{0.5, 0.5};
  const std::vector<char> flags{1, 1};
  // Prefix [0,1): |1 - 0.5| = 0.5; prefix [0,2): |2 - 1| = 1.
  EXPECT_DOUBLE_EQ(MaxPrefixDiscrepancy(probs, flags), 1.0);
}

TEST(MaxPrefixDiscrepancy, AtMostIntervalDiscrepancy) {
  const std::vector<double> probs{0.2, 0.9, 0.4, 0.6, 0.1};
  const std::vector<char> flags{1, 1, 0, 0, 0};
  EXPECT_LE(MaxPrefixDiscrepancy(probs, flags),
            MaxIntervalDiscrepancy(probs, flags) + 1e-12);
}

TEST(SampleFlags, BuildsCorrectly) {
  const auto flags = SampleFlags(5, {1, 3});
  ASSERT_EQ(flags.size(), 5u);
  EXPECT_EQ(flags[0], 0);
  EXPECT_EQ(flags[1], 1);
  EXPECT_EQ(flags[2], 0);
  EXPECT_EQ(flags[3], 1);
  EXPECT_EQ(flags[4], 0);
}

}  // namespace
}  // namespace sas
