// Golden-seed equivalence suite for the hot-path build engine.
//
// The optimized primitives — selection-based SolveTau over an IppsScratch,
// batched ChainAggregateRange over an RngStream, and the sort-once arena kd
// builds — must behave exactly like the classic implementations they
// replaced. This file carries verbatim copies of those classic
// implementations (namespace ref) and pins, for fixed seeds:
//
//  * RngStream: draw-for-draw identity with Rng::NextDouble, including the
//    repositioning of the source generator on Flush.
//  * ChainAggregateRange: bit-identical probability vectors, leftover
//    entries, and post-call rng state.
//  * Kd builds (2-D and N-d, both thin wrappers over the shared
//    dims-parameterized KdBuildCore since the unification): bit-identical
//    node arrays and item orders on duplicate-free inputs (duplicate
//    handling is property-checked; the tie order inside an all-duplicate
//    leaf is index-based where the classic build inherited std::sort's
//    unspecified tie order). These tests double as the proof that the
//    unified core — including the 2-D path's flat-coords facade over
//    Point2D — reproduces the pre-unification builds exactly, so the
//    golden seeds did not need re-recording.
//  * Aggregation passes of every summarizer family (order / hierarchy /
//    product / disjoint / nd), run against the reference chain given the
//    same inputs.
//
// SolveTau is the one explicitly re-baselined primitive: the selection
// search accumulates suffix sums in a different order than the classic
// descending sort, so tau may differ in the last ulps. Tests therefore pin
// near-equality against the reference plus the exact early-out identities
// on boundary inputs.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <numeric>
#include <vector>

#include "aware/disjoint_summarizer.h"
#include "aware/hierarchy_summarizer.h"
#include "aware/kd_hierarchy.h"
#include "aware/kd_nd.h"
#include "aware/order_summarizer.h"
#include "aware/product_summarizer.h"
#include "core/ipps.h"
#include "core/pair_aggregate.h"
#include "core/random.h"
#include "core/simd.h"
#include "structure/hierarchy.h"

namespace sas {
namespace {
namespace ref {

// --- Classic implementations, copied from the pre-fast-path sources. ------

double SolveTau(const std::vector<Weight>& weights, double s) {
  std::vector<Weight> sorted;
  sorted.reserve(weights.size());
  for (Weight w : weights) {
    if (w > 0.0) sorted.push_back(w);
  }
  const std::size_t n = sorted.size();
  if (static_cast<double>(n) <= s) return 0.0;
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  std::vector<double> rest(n + 1, 0.0);
  for (std::size_t i = n; i-- > 0;) rest[i] = rest[i + 1] + sorted[i];
  const std::size_t t_max =
      std::min(n - 1, static_cast<std::size_t>(std::floor(s)));
  for (std::size_t t = 0; t <= t_max; ++t) {
    const double denom = s - static_cast<double>(t);
    if (denom <= 0.0) break;
    const double tau = rest[t] / denom;
    const bool upper_ok = (t == 0) || (sorted[t - 1] >= tau);
    const bool lower_ok = sorted[t] < tau;
    if (upper_ok && lower_ok) return tau;
  }
  double lo = 0.0, hi = rest[0] / s + 1.0;
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    double f = 0.0;
    for (Weight w : sorted) f += std::min(1.0, w / mid);
    if (f > s) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

void PairAggregate(double* pi, double* pj, Rng* rng) {
  const double a = *pi;
  const double b = *pj;
  const double sum = a + b;
  if (sum < 1.0) {
    if (rng->NextDouble() < a / sum) {
      *pi = SnapProbability(sum);
      *pj = 0.0;
    } else {
      *pj = SnapProbability(sum);
      *pi = 0.0;
    }
  } else {
    const double leftover = SnapProbability(sum - 1.0);
    if (rng->NextDouble() < (1.0 - b) / (2.0 - sum)) {
      *pi = 1.0;
      *pj = leftover;
    } else {
      *pi = leftover;
      *pj = 1.0;
    }
  }
}

std::size_t ChainAggregate(std::vector<double>* probs,
                           const std::vector<std::size_t>& indices,
                           std::size_t carry, Rng* rng) {
  auto& p = *probs;
  std::size_t active = carry;
  if (active != kNoEntry && IsSet(p[active])) active = kNoEntry;
  for (std::size_t i : indices) {
    if (IsSet(p[i])) continue;
    if (active == kNoEntry) {
      active = i;
      continue;
    }
    ref::PairAggregate(&p[active], &p[i], rng);
    if (IsSet(p[active])) {
      active = IsSet(p[i]) ? kNoEntry : i;
    }
  }
  return active;
}

void ResolveResidual(std::vector<double>* probs, std::size_t entry,
                     Rng* rng) {
  if (entry == kNoEntry) return;
  auto& p = *probs;
  if (IsSet(p[entry])) return;
  p[entry] = rng->NextBernoulli(p[entry]) ? 1.0 : 0.0;
}

inline Coord AxisCoord(const Point2D& p, int axis) {
  return axis == 0 ? p.x : p.y;
}

struct KdTree2D {
  std::vector<KdHierarchy::Node> nodes;
  std::vector<std::size_t> item_order;
};

KdTree2D KdBuild(const std::vector<Point2D>& pts,
                 const std::vector<double>& mass) {
  KdTree2D tree;
  const std::size_t n = pts.size();
  if (n == 0) return tree;
  tree.item_order.resize(n);
  std::iota(tree.item_order.begin(), tree.item_order.end(), 0);
  tree.nodes.reserve(2 * n);
  tree.nodes.push_back({});

  struct BuildTask {
    int node;
    std::size_t begin, end;
    int depth;
  };
  std::vector<BuildTask> stack{{0, 0, n, 0}};
  while (!stack.empty()) {
    const BuildTask t = stack.back();
    stack.pop_back();
    auto& order = tree.item_order;
    KdHierarchy::Node& node = tree.nodes[t.node];
    node.begin = t.begin;
    node.end = t.end;
    double total = 0.0;
    for (std::size_t i = t.begin; i < t.end; ++i) total += mass[order[i]];
    node.mass = total;
    if (t.end - t.begin <= 1) continue;

    int axis = t.depth % 2;
    bool split_found = false;
    std::size_t split_pos = 0;
    Coord split_val = 0;
    for (int attempt = 0; attempt < 2 && !split_found; ++attempt, axis ^= 1) {
      std::sort(order.begin() + t.begin, order.begin() + t.end,
                [&](std::size_t a, std::size_t b) {
                  return AxisCoord(pts[a], axis) < AxisCoord(pts[b], axis);
                });
      if (AxisCoord(pts[order[t.begin]], axis) ==
          AxisCoord(pts[order[t.end - 1]], axis)) {
        continue;
      }
      double run = 0.0;
      double best_gap = std::numeric_limits<double>::infinity();
      for (std::size_t i = t.begin; i + 1 < t.end; ++i) {
        run += mass[order[i]];
        if (AxisCoord(pts[order[i]], axis) ==
            AxisCoord(pts[order[i + 1]], axis)) {
          continue;
        }
        const double gap = std::fabs(total - 2.0 * run);
        if (gap < best_gap) {
          best_gap = gap;
          split_pos = i + 1;
          split_val = AxisCoord(pts[order[i + 1]], axis);
        }
      }
      split_found = split_pos > t.begin;
    }
    if (!split_found) continue;
    const int used_axis = axis ^ 1;
    const int left = static_cast<int>(tree.nodes.size());
    tree.nodes.push_back({});
    const int right = static_cast<int>(tree.nodes.size());
    tree.nodes.push_back({});
    KdHierarchy::Node& nd = tree.nodes[t.node];
    nd.axis = used_axis;
    nd.split = split_val;
    nd.left = left;
    nd.right = right;
    tree.nodes[left].parent = t.node;
    tree.nodes[right].parent = t.node;
    stack.push_back({right, split_pos, t.end, t.depth + 1});
    stack.push_back({left, t.begin, split_pos, t.depth + 1});
  }
  return tree;
}

struct KdTreeNd {
  std::vector<KdHierarchyNd::Node> nodes;
  std::vector<std::size_t> item_order;
};

KdTreeNd KdBuildNd(const std::vector<Coord>& coords, int dims,
                   const std::vector<double>& mass) {
  KdTreeNd tree;
  const std::size_t n = mass.size();
  if (n == 0) return tree;
  tree.item_order.resize(n);
  std::iota(tree.item_order.begin(), tree.item_order.end(), 0);
  tree.nodes.reserve(2 * n);
  tree.nodes.push_back({});

  auto axis_coord = [&](std::size_t item, int axis) {
    return coords[item * dims + axis];
  };
  struct Task {
    int node;
    std::size_t begin, end;
    int depth;
  };
  std::vector<Task> stack{{0, 0, n, 0}};
  while (!stack.empty()) {
    const Task t = stack.back();
    stack.pop_back();
    auto& order = tree.item_order;
    {
      KdHierarchyNd::Node& node = tree.nodes[t.node];
      node.begin = t.begin;
      node.end = t.end;
      node.mass = 0.0;
      for (std::size_t i = t.begin; i < t.end; ++i) {
        node.mass += mass[order[i]];
      }
      if (t.end - t.begin <= 1) continue;
    }
    int axis = t.depth % dims;
    bool split_found = false;
    std::size_t split_pos = 0;
    Coord split_val = 0;
    double total = tree.nodes[t.node].mass;
    for (int attempt = 0; attempt < dims && !split_found;
         ++attempt, axis = (axis + 1) % dims) {
      std::sort(order.begin() + t.begin, order.begin() + t.end,
                [&](std::size_t a, std::size_t b) {
                  return axis_coord(a, axis) < axis_coord(b, axis);
                });
      if (axis_coord(order[t.begin], axis) ==
          axis_coord(order[t.end - 1], axis)) {
        continue;
      }
      double run = 0.0;
      double best_gap = std::numeric_limits<double>::infinity();
      for (std::size_t i = t.begin; i + 1 < t.end; ++i) {
        run += mass[order[i]];
        if (axis_coord(order[i], axis) == axis_coord(order[i + 1], axis)) {
          continue;
        }
        const double gap = std::fabs(total - 2.0 * run);
        if (gap < best_gap) {
          best_gap = gap;
          split_pos = i + 1;
          split_val = axis_coord(order[i + 1], axis);
        }
      }
      split_found = split_pos > t.begin;
    }
    if (!split_found) continue;
    const int used_axis = (axis + dims - 1) % dims;
    const int left = static_cast<int>(tree.nodes.size());
    tree.nodes.push_back({});
    const int right = static_cast<int>(tree.nodes.size());
    tree.nodes.push_back({});
    KdHierarchyNd::Node& nd = tree.nodes[t.node];
    nd.axis = used_axis;
    nd.split = split_val;
    nd.left = left;
    nd.right = right;
    stack.push_back({right, split_pos, t.end, t.depth + 1});
    stack.push_back({left, t.begin, split_pos, t.depth + 1});
  }
  return tree;
}

}  // namespace ref

// --- Helpers ---------------------------------------------------------------

std::vector<Weight> ParetoWeights(std::size_t n, double alpha,
                                  std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Weight> w(n);
  for (auto& x : w) x = rng.NextPareto(alpha);
  return w;
}

/// Distinct per-axis coordinates via an odd-multiplier bijection of the
/// item index (so kd equivalence runs on guaranteed duplicate-free data).
std::vector<Point2D> DistinctPoints(std::size_t n) {
  std::vector<Point2D> pts(n);
  for (std::size_t i = 0; i < n; ++i) {
    pts[i] = {static_cast<Coord>((i * 2654435761ULL) & 0xFFFFFFFFULL),
              static_cast<Coord>((i * 2246822519ULL + 7) & 0xFFFFFFFFULL)};
  }
  return pts;
}

std::vector<double> OpenProbs(std::size_t n, std::uint64_t seed,
                              double set_fraction) {
  Rng rng(seed);
  std::vector<double> p(n);
  for (auto& x : p) {
    const double u = rng.NextDouble();
    if (u < set_fraction / 2) {
      x = 0.0;
    } else if (u < set_fraction) {
      x = 1.0;
    } else {
      x = 0.001 + 0.998 * rng.NextDouble();
    }
  }
  return p;
}

void ExpectSameRngState(Rng a, Rng b) {
  for (int i = 0; i < 8; ++i) ASSERT_EQ(a.Next(), b.Next());
}

double ProbSum(const std::vector<Weight>& w, double tau) {
  double sum = 0.0;
  for (Weight x : w) sum += IppsProbability(x, tau);
  return sum;
}

// --- MonotonicArena --------------------------------------------------------

TEST(MonotonicArena, ServesAlignedDisjointAllocations) {
  MonotonicArena arena(64);  // tiny first block to force chaining
  std::vector<std::pair<char*, std::size_t>> allocs;
  for (std::size_t bytes : {8u, 24u, 64u, 8u, 200u, 1000u, 16u}) {
    void* p = arena.Allocate(bytes, 8);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 8, 0u);
    std::memset(p, 0xAB, bytes);  // must be writable
    allocs.emplace_back(static_cast<char*>(p), bytes);
  }
  // No two live allocations overlap.
  for (std::size_t i = 0; i < allocs.size(); ++i) {
    for (std::size_t j = i + 1; j < allocs.size(); ++j) {
      const bool disjoint =
          allocs[i].first + allocs[i].second <= allocs[j].first ||
          allocs[j].first + allocs[j].second <= allocs[i].first;
      EXPECT_TRUE(disjoint) << i << " vs " << j;
    }
  }
}

TEST(MonotonicArena, ResetReusesCapacity) {
  MonotonicArena arena(1 << 12);
  std::size_t warm = 0;  // capacity after the first full round
  for (int round = 0; round < 10; ++round) {
    arena.Reset();
    double* d = arena.AllocateArray<double>(4096);
    d[0] = 1.0;
    d[4095] = 2.0;
    std::uint32_t* u = arena.AllocateArray<std::uint32_t>(100);
    u[99] = 7;
    if (round == 0) {
      warm = arena.CapacityBytes();
    } else {
      // Steady state: repeating the same allocation shape chains no new
      // blocks once the arena is warm.
      EXPECT_EQ(arena.CapacityBytes(), warm) << "round " << round;
    }
  }
}

// --- RngStream -------------------------------------------------------------

TEST(RngStream, MatchesNextDoubleSequenceAndFlushPosition) {
  for (std::size_t draws : {std::size_t{0}, std::size_t{1}, std::size_t{17},
                            std::size_t{255}, std::size_t{256},
                            std::size_t{257}, std::size_t{1000}}) {
    Rng direct(42);
    Rng streamed(42);
    std::vector<double> expect(draws), got(draws);
    for (auto& u : expect) u = direct.NextDouble();
    {
      RngStream stream(&streamed);
      for (auto& u : got) u = stream.NextDouble();
    }
    ASSERT_EQ(expect, got) << "draws=" << draws;
    // Flush must leave the source exactly `draws` positions ahead.
    ExpectSameRngState(direct, streamed);
  }
}

TEST(RngStream, BernoulliConsumptionMatchesRng) {
  Rng direct(7);
  Rng streamed(7);
  const double ps[] = {0.0, 0.5, 1.0, -1.0, 2.0, 0.3, 1e-18, 0.9999};
  std::vector<bool> expect, got;
  for (double p : ps) expect.push_back(direct.NextBernoulli(p));
  {
    RngStream stream(&streamed);
    for (double p : ps) got.push_back(stream.NextBernoulli(p));
  }
  EXPECT_EQ(expect, got);
  ExpectSameRngState(direct, streamed);
}

TEST(RngStream, DirectRngUseBetweenFlushAndNextDrawIsNotReplayed) {
  // Regression: after a Flush the caller may draw from the Rng directly
  // (merge does this with its shuffle); the stream must re-sync instead of
  // replaying the caller's draws from its stale snapshot.
  Rng direct(13);
  Rng streamed(13);
  std::vector<double> expect, got;
  for (int i = 0; i < 3; ++i) expect.push_back(direct.NextDouble());
  expect.push_back(direct.NextDouble());  // the "direct" draw
  for (int i = 0; i < 3; ++i) expect.push_back(direct.NextDouble());

  RngStream stream(&streamed);
  for (int i = 0; i < 3; ++i) got.push_back(stream.NextDouble());
  stream.Flush();
  got.push_back(streamed.NextDouble());  // direct use while no block live
  for (int i = 0; i < 3; ++i) got.push_back(stream.NextDouble());
  stream.Flush();
  EXPECT_EQ(expect, got);
  ExpectSameRngState(direct, streamed);
}

TEST(RngStream, BlockBoundariesMatchUnderEveryDispatchLevel) {
  // RngStream refills in kBlock chunks through Rng::FillDoubles, which now
  // dispatches to the SIMD block converter. The draw-order transparency
  // contract — i-th stream draw == i-th NextDouble, Flush repositions the
  // source — must hold bit-for-bit on every level, especially at counts
  // that straddle block boundaries (partial first block, exact block,
  // block + 1, several blocks).
  const simd::Level saved = simd::ActiveLevel();
  for (simd::Level level : {simd::Level::kScalar, simd::DetectLevel()}) {
    ASSERT_TRUE(simd::SetLevel(level));
    for (std::size_t draws :
         {std::size_t{1}, RngStream::kBlock - 1, RngStream::kBlock,
          RngStream::kBlock + 1, 3 * RngStream::kBlock,
          3 * RngStream::kBlock + 5}) {
      Rng direct(4242);
      Rng streamed(4242);
      std::vector<double> expect(draws), got(draws);
      for (auto& u : expect) u = direct.NextDouble();
      {
        RngStream stream(&streamed);
        for (auto& u : got) u = stream.NextDouble();
      }
      ASSERT_EQ(expect, got)
          << "draws=" << draws << " level=" << simd::LevelName(level);
      ExpectSameRngState(direct, streamed);
    }
  }
  simd::SetLevel(saved);
}

TEST(RngStream, ForkedGeneratorsFillIdenticallyToTheirDrawLoops) {
  // Shard-style usage: per-stream children from Fork feed RngStreams; the
  // forked generators must stay draw-for-draw equal to their own
  // NextDouble loops (block fills do not perturb fork derivation).
  Rng master(31);
  for (std::uint64_t stream : {0ULL, 1ULL, 7ULL}) {
    Rng a = master.Fork(stream);
    Rng b = master.Fork(stream);
    std::vector<double> expect(300), got(300);
    for (auto& u : expect) u = a.NextDouble();
    {
      RngStream s(&b);
      for (auto& u : got) u = s.NextDouble();
    }
    ASSERT_EQ(expect, got) << "stream=" << stream;
    ExpectSameRngState(a, b);
  }
}

TEST(RngStream, ReusableAfterFlush) {
  Rng direct(9);
  Rng streamed(9);
  std::vector<double> expect(40), got(40);
  for (auto& u : expect) u = direct.NextDouble();
  RngStream stream(&streamed);
  for (int i = 0; i < 10; ++i) got[i] = stream.NextDouble();
  stream.Flush();
  for (int i = 10; i < 40; ++i) got[i] = stream.NextDouble();
  stream.Flush();
  EXPECT_EQ(expect, got);
  ExpectSameRngState(direct, streamed);
}

// --- SolveTau --------------------------------------------------------------

TEST(FastSolveTau, MatchesReferenceOnRandomInputs) {
  Rng rng(1234);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = 2 + rng.NextBounded(3000);
    std::vector<Weight> w(n);
    for (auto& x : w) {
      const double u = rng.NextDouble();
      if (u < 0.05) {
        x = 0.0;  // zero weights must be filtered
      } else if (u < 0.35) {
        x = 1.0 + static_cast<double>(rng.NextBounded(4));  // heavy ties
      } else {
        x = rng.NextPareto(1.1);
      }
    }
    const double s =
        0.5 + static_cast<double>(rng.NextBounded(n)) + rng.NextDouble();
    const double expected = ref::SolveTau(w, s);
    const double got = SolveTau(w, s);
    ASSERT_NEAR(got, expected, 1e-12 * (1.0 + expected))
        << "n=" << n << " s=" << s;
    if (got > 0.0) {
      ASSERT_NEAR(ProbSum(w, got), s, 1e-6 * s);
    }
  }
}

TEST(FastSolveTau, ScratchReuseMatchesFreshScratch) {
  IppsScratch reused;
  Rng rng(77);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 1 + rng.NextBounded(500);
    std::vector<Weight> w(n);
    for (auto& x : w) x = rng.NextPareto(1.3);
    const double s = 0.5 + static_cast<double>(rng.NextBounded(n));
    IppsScratch fresh;
    const double a = SolveTau(w.data(), w.size(), s, &reused);
    const double b = SolveTau(w.data(), w.size(), s, &fresh);
    ASSERT_EQ(a, b);
  }
}

// Regression tests for the boundary inputs whose candidate scan used to be
// able to fall through to the 200-iteration bisection: they now hit exact
// early-outs.
TEST(FastSolveTau, AllEqualWeightsExact) {
  for (std::size_t n : {3u, 10u, 1000u}) {
    for (double w : {0.1, 1.0, 3.75}) {
      std::vector<Weight> weights(n, w);
      double total = 0.0;
      for (double x : weights) total += x;
      for (double s : {0.5, 1.0, static_cast<double>(n) - 0.5,
                       static_cast<double>(n) - 1.0}) {
        if (s <= 0.0 || s >= static_cast<double>(n)) continue;
        EXPECT_DOUBLE_EQ(SolveTau(weights, s), total / s)
            << "n=" << n << " w=" << w << " s=" << s;
      }
    }
  }
}

TEST(FastSolveTau, AllEqualWithZerosExact) {
  // s >= the number of *positive* weights after zero-filtering: tau = 0;
  // below it, the all-equal early-out still applies to the positives.
  std::vector<Weight> w{2.0, 0.0, 2.0, 0.0, 2.0};
  EXPECT_DOUBLE_EQ(SolveTau(w, 3.0), 0.0);
  EXPECT_DOUBLE_EQ(SolveTau(w, 4.0), 0.0);
  EXPECT_DOUBLE_EQ(SolveTau(w, 2.0), 6.0 / 2.0);
}

TEST(FastSolveTau, SampleSizeAtLeastPositiveCount) {
  std::vector<Weight> w{3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(SolveTau(w, 3.0), 0.0);
  EXPECT_DOUBLE_EQ(SolveTau(w, 2.9999999), ref::SolveTau(w, 2.9999999));
  EXPECT_DOUBLE_EQ(SolveTau(std::vector<Weight>{}, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(SolveTau(std::vector<Weight>{0.0, 0.0}, 1.0), 0.0);
}

TEST(FastSolveTau, SinglePositiveWeight) {
  std::vector<Weight> w{0.0, 5.0, 0.0};
  EXPECT_DOUBLE_EQ(SolveTau(w, 0.5), 10.0);  // all-equal early-out: 5 / 0.5
  EXPECT_DOUBLE_EQ(SolveTau(w, 1.0), 0.0);
}

TEST(FastSolveTau, LargeInputMatchesReference) {
  const std::vector<Weight> w = ParetoWeights(100000, 1.2, 9);
  for (double s : {10.0, 1000.0, 50000.0, 99999.0}) {
    const double expected = ref::SolveTau(w, s);
    const double got = SolveTau(w, s);
    ASSERT_NEAR(got, expected, 1e-12 * (1.0 + expected)) << "s=" << s;
  }
}

// --- ChainAggregateRange ---------------------------------------------------

TEST(FastChainAggregate, BitIdenticalToReference) {
  Rng meta(555);
  for (int trial = 0; trial < 300; ++trial) {
    const std::size_t n = 1 + meta.NextBounded(400);
    const std::vector<double> init =
        OpenProbs(n, 1000 + trial, trial % 3 == 0 ? 0.3 : 0.0);
    // Random duplicate-free index subset, in random order.
    std::vector<std::size_t> indices(n);
    std::iota(indices.begin(), indices.end(), 0);
    for (std::size_t i = n; i > 1; --i) {
      std::swap(indices[i - 1], indices[meta.NextBounded(i)]);
    }
    const std::size_t keep = 1 + meta.NextBounded(n);
    // Carry must not alias an index in the list (callers never do that, and
    // the classic loop would self-alias PairAggregate); draw it from the
    // dropped tail when one exists.
    const std::size_t carry = (trial % 4 == 0 && keep < n)
                                  ? indices[keep + meta.NextBounded(n - keep)]
                                  : kNoEntry;
    indices.resize(keep);

    const std::uint64_t seed = 9000 + trial;
    std::vector<double> p_ref = init;
    Rng rng_ref(seed);
    const std::size_t left_ref =
        ref::ChainAggregate(&p_ref, indices, carry, &rng_ref);

    std::vector<double> p_new = init;
    Rng rng_new(seed);
    std::size_t left_new;
    {
      RngStream draws(&rng_new);
      left_new = ChainAggregateRange(p_new.data(), indices.data(),
                                     indices.size(), carry, &draws);
    }
    ASSERT_EQ(left_new, left_ref) << "trial=" << trial;
    ASSERT_EQ(0, std::memcmp(p_new.data(), p_ref.data(), n * sizeof(double)))
        << "trial=" << trial;
    ExpectSameRngState(rng_ref, rng_new);
  }
}

TEST(FastChainAggregate, WrapperKeepsClassicBehavior) {
  // The vector-based ChainAggregate now forwards through RngStream; it must
  // still consume draws exactly like the classic loop.
  Rng meta(321);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 2 + meta.NextBounded(600);
    const std::vector<double> init = OpenProbs(n, 40 + trial, 0.1);
    std::vector<std::size_t> indices(n);
    std::iota(indices.begin(), indices.end(), 0);

    std::vector<double> p_ref = init;
    Rng rng_ref(trial);
    const std::size_t left_ref =
        ref::ChainAggregate(&p_ref, indices, kNoEntry, &rng_ref);
    ref::ResolveResidual(&p_ref, left_ref, &rng_ref);

    std::vector<double> p_new = init;
    Rng rng_new(trial);
    const std::size_t left_new =
        ChainAggregate(&p_new, indices, kNoEntry, &rng_new);
    ResolveResidual(&p_new, left_new, &rng_new);

    ASSERT_EQ(p_ref, p_new);
    ExpectSameRngState(rng_ref, rng_new);
  }
}

TEST(FastChainAggregate, SharedStreamAcrossChainsMatchesSequentialRng) {
  // Hierarchy-style usage: many short chains share one stream; the draw
  // sequence must equal running the classic chains back to back.
  Rng meta(888);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n = 30 + meta.NextBounded(300);
    const std::vector<double> init = OpenProbs(n, 70 + trial, 0.05);
    // Random chain partition of [0, n).
    std::vector<std::vector<std::size_t>> chains;
    std::size_t at = 0;
    while (at < n) {
      const std::size_t len = 1 + meta.NextBounded(7);
      std::vector<std::size_t> chain;
      for (std::size_t i = at; i < std::min(n, at + len); ++i) {
        chain.push_back(i);
      }
      at += len;
      chains.push_back(std::move(chain));
    }

    std::vector<double> p_ref = init;
    Rng rng_ref(5000 + trial);
    std::vector<std::size_t> carries_ref;
    for (const auto& chain : chains) {
      carries_ref.push_back(
          ref::ChainAggregate(&p_ref, chain, kNoEntry, &rng_ref));
    }

    std::vector<double> p_new = init;
    Rng rng_new(5000 + trial);
    std::vector<std::size_t> carries_new;
    {
      RngStream draws(&rng_new);
      for (const auto& chain : chains) {
        carries_new.push_back(ChainAggregateRange(
            p_new.data(), chain.data(), chain.size(), kNoEntry, &draws));
      }
    }
    ASSERT_EQ(carries_ref, carries_new);
    ASSERT_EQ(p_ref, p_new);
    ExpectSameRngState(rng_ref, rng_new);
  }
}

// --- Kd builds -------------------------------------------------------------

void ExpectSameTree2D(const KdHierarchy& got, const ref::KdTree2D& want) {
  ASSERT_EQ(got.nodes().size(), want.nodes.size());
  for (std::size_t v = 0; v < want.nodes.size(); ++v) {
    const auto& a = got.nodes()[v];
    const auto& b = want.nodes[v];
    ASSERT_EQ(a.parent, b.parent) << "node " << v;
    ASSERT_EQ(a.left, b.left) << "node " << v;
    ASSERT_EQ(a.right, b.right) << "node " << v;
    ASSERT_EQ(a.axis, b.axis) << "node " << v;
    ASSERT_EQ(a.split, b.split) << "node " << v;
    ASSERT_EQ(a.begin, b.begin) << "node " << v;
    ASSERT_EQ(a.end, b.end) << "node " << v;
    // Bit-identical masses: the fast build sums in the same sequence.
    ASSERT_EQ(a.mass, b.mass) << "node " << v;
  }
  ASSERT_EQ(got.item_order(), want.item_order);
}

TEST(FastKdBuild, BitIdenticalToReferenceOnDistinctPoints) {
  for (std::size_t n : {1u, 2u, 3u, 7u, 64u, 501u, 2000u}) {
    const std::vector<Point2D> pts = DistinctPoints(n);
    Rng rng(n);
    std::vector<double> mass(n);
    for (auto& m : mass) m = 0.01 + 0.98 * rng.NextDouble();
    const KdHierarchy got = KdHierarchy::Build(pts, mass);
    const ref::KdTree2D want = ref::KdBuild(pts, mass);
    ExpectSameTree2D(got, want);
  }
}

TEST(FastKdBuild, UniformMassAndDegenerateAxis) {
  // All x equal: every split must fall back to the y axis.
  const std::size_t n = 200;
  std::vector<Point2D> pts(n);
  for (std::size_t i = 0; i < n; ++i) {
    pts[i] = {42, static_cast<Coord>((i * 2654435761ULL) & 0xFFFFFFFFULL)};
  }
  std::vector<double> mass(n, 1.0);
  const KdHierarchy got = KdHierarchy::Build(pts, mass);
  const ref::KdTree2D want = ref::KdBuild(pts, mass);
  ExpectSameTree2D(got, want);
  for (const auto& nd : got.nodes()) {
    if (!nd.IsLeaf()) EXPECT_EQ(nd.axis, 1);
  }
}

TEST(FastKdBuild, DuplicatePointsShareOneLeafProperty) {
  // Tie order inside an all-duplicate leaf is re-baselined (index order),
  // so duplicates are property-checked rather than compared bitwise.
  std::vector<Point2D> pts;
  std::vector<double> mass;
  for (int c = 0; c < 5; ++c) {
    for (int k = 0; k < 4; ++k) {
      pts.push_back({static_cast<Coord>(10 * c), static_cast<Coord>(3 * c)});
      mass.push_back(0.25);
    }
  }
  const KdHierarchy tree = KdHierarchy::Build(pts, mass);
  // Every item appears exactly once across leaf ranges.
  std::vector<int> seen(pts.size(), 0);
  int leaves = 0;
  for (const auto& nd : tree.nodes()) {
    if (!nd.IsLeaf()) continue;
    ++leaves;
    EXPECT_EQ(nd.end - nd.begin, 4u);  // each duplicate group is one leaf
    for (std::size_t i = nd.begin; i < nd.end; ++i) {
      seen[tree.item_order()[i]]++;
    }
  }
  EXPECT_EQ(leaves, 5);
  for (int c : seen) EXPECT_EQ(c, 1);
  double root_mass = tree.nodes()[0].mass;
  EXPECT_NEAR(root_mass, 5.0, 1e-12);
}

TEST(FastKdBuildNd, BitIdenticalToReferenceOnDistinctPoints) {
  for (int dims : {1, 2, 3, 4}) {
    for (std::size_t n : {1u, 2u, 33u, 500u}) {
      std::vector<Coord> coords(n * dims);
      for (std::size_t i = 0; i < n; ++i) {
        for (int a = 0; a < dims; ++a) {
          coords[i * dims + a] = static_cast<Coord>(
              (i * (2654435761ULL + 2 * a) + a) & 0xFFFFFFFFULL);
        }
      }
      Rng rng(100 + n + dims);
      std::vector<double> mass(n);
      for (auto& m : mass) m = 0.01 + 0.98 * rng.NextDouble();
      const KdHierarchyNd got = KdHierarchyNd::Build(coords, dims, mass);
      const ref::KdTreeNd want = ref::KdBuildNd(coords, dims, mass);
      ASSERT_EQ(got.nodes().size(), want.nodes.size())
          << "dims=" << dims << " n=" << n;
      for (std::size_t v = 0; v < want.nodes.size(); ++v) {
        const auto& a = got.nodes()[v];
        const auto& b = want.nodes[v];
        ASSERT_EQ(a.left, b.left);
        ASSERT_EQ(a.right, b.right);
        ASSERT_EQ(a.axis, b.axis);
        ASSERT_EQ(a.split, b.split);
        ASSERT_EQ(a.begin, b.begin);
        ASSERT_EQ(a.end, b.end);
        ASSERT_EQ(a.mass, b.mass);
      }
      ASSERT_EQ(got.item_order(), want.item_order);
    }
  }
}

// --- End-to-end aggregation passes (golden seeds) --------------------------

struct GoldenData {
  std::vector<WeightedKey> items;
  std::vector<double> probs;  // snapped IPPS probabilities
  double tau = 0.0;
};

GoldenData MakeGolden(std::size_t n, double s, std::uint64_t seed) {
  GoldenData g;
  Rng rng(seed);
  const std::vector<Point2D> pts = DistinctPoints(n);
  std::vector<Weight> weights(n);
  g.items.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    weights[i] = rng.NextPareto(1.15);
    g.items[i] = {static_cast<KeyId>(i), weights[i], pts[i]};
  }
  g.tau = SolveTau(weights, s);
  IppsProbabilities(weights, g.tau, &g.probs);
  for (auto& q : g.probs) q = SnapProbability(q);
  return g;
}

TEST(FastPathEndToEnd, OrderAggregateMatchesReference) {
  const GoldenData g = MakeGolden(4000, 300.0, 2024);
  std::vector<Coord> xs;
  for (const auto& it : g.items) xs.push_back(it.pt.x);
  std::vector<std::size_t> order(g.items.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });

  std::vector<double> p_ref = g.probs;
  Rng rng_ref(31337);
  const std::size_t left = ref::ChainAggregate(&p_ref, order, kNoEntry,
                                               &rng_ref);
  ref::ResolveResidual(&p_ref, left, &rng_ref);

  std::vector<double> p_new = g.probs;
  Rng rng_new(31337);
  OrderAggregate(&p_new, order, &rng_new);

  ASSERT_EQ(p_ref, p_new);
  ExpectSameRngState(rng_ref, rng_new);
}

TEST(FastPathEndToEnd, HierarchyAggregateMatchesReference) {
  const std::size_t n = 3125;  // 5^5 leaves
  const Hierarchy h = Hierarchy::Balanced(5, 5);
  ASSERT_EQ(h.num_keys(), n);
  const GoldenData g = MakeGolden(n, 250.0, 777);

  std::vector<double> p_ref = g.probs;
  {
    Rng rng(4242);
    const int nodes = h.num_nodes();
    std::vector<std::size_t> leftover(nodes, kNoEntry);
    std::vector<std::size_t> entries;
    for (int v = nodes - 1; v >= 0; --v) {
      if (h.is_leaf(v)) {
        const KeyId k = h.key_of_leaf(v);
        leftover[v] =
            IsSet(p_ref[k]) ? kNoEntry : static_cast<std::size_t>(k);
        continue;
      }
      entries.clear();
      for (int c : h.children(v)) {
        if (leftover[c] != kNoEntry) entries.push_back(leftover[c]);
      }
      leftover[v] = ref::ChainAggregate(&p_ref, entries, kNoEntry, &rng);
    }
    ref::ResolveResidual(&p_ref, leftover[h.root()], &rng);
  }

  std::vector<double> p_new = g.probs;
  Rng rng_new(4242);
  HierarchyAggregate(&p_new, h, &rng_new);
  ASSERT_EQ(p_ref, p_new);
}

TEST(FastPathEndToEnd, KdAggregateMatchesReference) {
  const GoldenData g = MakeGolden(3000, 200.0, 99);
  std::vector<Point2D> pts;
  std::vector<double> open_mass;
  std::vector<std::size_t> open;
  for (std::size_t i = 0; i < g.items.size(); ++i) {
    if (!IsSet(g.probs[i])) {
      open.push_back(i);
      pts.push_back(g.items[i].pt);
      open_mass.push_back(g.probs[i]);
    }
  }
  ASSERT_GT(open.size(), 100u);
  const KdHierarchy tree = KdHierarchy::Build(pts, open_mass);

  std::vector<double> p_ref = open_mass;
  {
    Rng rng(606);
    const int nodes = tree.num_nodes();
    std::vector<std::size_t> leftover(nodes, kNoEntry);
    std::vector<std::size_t> entries;
    for (int v = nodes - 1; v >= 0; --v) {
      const auto& node = tree.nodes()[v];
      entries.clear();
      if (node.IsLeaf()) {
        for (std::size_t i = node.begin; i < node.end; ++i) {
          const std::size_t item = tree.item_order()[i];
          if (!IsSet(p_ref[item])) entries.push_back(item);
        }
      } else {
        if (leftover[node.left] != kNoEntry) {
          entries.push_back(leftover[node.left]);
        }
        if (leftover[node.right] != kNoEntry) {
          entries.push_back(leftover[node.right]);
        }
      }
      leftover[v] = ref::ChainAggregate(&p_ref, entries, kNoEntry, &rng);
    }
    ref::ResolveResidual(&p_ref, leftover[tree.root()], &rng);
  }

  std::vector<double> p_new = open_mass;
  Rng rng_new(606);
  KdAggregate(&p_new, tree, &rng_new);
  ASSERT_EQ(p_ref, p_new);
}

TEST(FastPathEndToEnd, DisjointAggregateMatchesReference) {
  const GoldenData g = MakeGolden(2500, 150.0, 11);
  const int num_ranges = 40;
  std::vector<int> range_of(g.items.size());
  for (std::size_t i = 0; i < range_of.size(); ++i) {
    range_of[i] = static_cast<int>(i % num_ranges);
  }

  std::vector<double> p_ref = g.probs;
  {
    Rng rng(2718);
    std::vector<std::vector<std::size_t>> buckets(num_ranges);
    for (std::size_t i = 0; i < p_ref.size(); ++i) {
      if (!IsSet(p_ref[i])) buckets[range_of[i]].push_back(i);
    }
    std::vector<std::size_t> leftovers;
    for (const auto& bucket : buckets) {
      const std::size_t l = ref::ChainAggregate(&p_ref, bucket, kNoEntry,
                                                &rng);
      if (l != kNoEntry) leftovers.push_back(l);
    }
    const std::size_t fin = ref::ChainAggregate(&p_ref, leftovers, kNoEntry,
                                                &rng);
    ref::ResolveResidual(&p_ref, fin, &rng);
  }

  std::vector<double> p_new = g.probs;
  Rng rng_new(2718);
  DisjointAggregate(&p_new, range_of, num_ranges, &rng_new);
  ASSERT_EQ(p_ref, p_new);
}

TEST(FastPathEndToEnd, SummarizersAreDeterministicAndExact) {
  // The public summarizer entry points over the fast paths: two identical
  // builds agree key-for-key, and certain inclusions obey p == 1.
  const GoldenData g = MakeGolden(2000, 120.0, 5150);
  for (int round = 0; round < 2; ++round) {
    Rng r1(round + 1), r2(round + 1);
    const SummarizeResult a = OrderSummarize(g.items, 120.0, &r1);
    const SummarizeResult b = OrderSummarize(g.items, 120.0, &r2);
    ASSERT_EQ(a.sample.size(), b.sample.size());
    for (std::size_t i = 0; i < a.sample.size(); ++i) {
      ASSERT_EQ(a.sample.entries()[i].id, b.sample.entries()[i].id);
    }
    Rng r3(round + 1), r4(round + 1);
    const SummarizeResult c = ProductSummarize(g.items, 120.0, &r3);
    const SummarizeResult d = ProductSummarize(g.items, 120.0, &r4);
    ASSERT_EQ(c.sample.size(), d.sample.size());
    for (std::size_t i = 0; i < c.sample.size(); ++i) {
      ASSERT_EQ(c.sample.entries()[i].id, d.sample.entries()[i].id);
    }
  }
}

}  // namespace
}  // namespace sas
