#include "core/prob_vector.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/random.h"

namespace sas {
namespace {

TEST(ProbVector, ConstructTracksOpenAndSum) {
  ProbVector pv({0.0, 0.5, 1.0, 0.25});
  EXPECT_EQ(pv.size(), 4u);
  EXPECT_EQ(pv.open_count(), 2u);
  EXPECT_NEAR(pv.sum(), 1.75, 1e-12);
  EXPECT_TRUE(pv.IsSetAt(0));
  EXPECT_FALSE(pv.IsSetAt(1));
  EXPECT_TRUE(pv.IsSetAt(2));
}

TEST(ProbVector, SnapsNearBoundaryInputs) {
  ProbVector pv({1e-14, 1.0 - 1e-14});
  EXPECT_EQ(pv.open_count(), 0u);
  EXPECT_DOUBLE_EQ(pv[0], 0.0);
  EXPECT_DOUBLE_EQ(pv[1], 1.0);
}

TEST(ProbVector, AggregateReducesOpenCount) {
  Rng rng(1);
  ProbVector pv({0.5, 0.5, 0.5, 0.5});
  pv.Aggregate(0, 1, &rng);
  EXPECT_LE(pv.open_count(), 3u);
  EXPECT_GE(pv.open_count(), 2u);
}

TEST(ProbVector, AggregateToCompletion) {
  Rng rng(2);
  for (int trial = 0; trial < 100; ++trial) {
    ProbVector pv({0.5, 0.5, 0.5, 0.5});
    // Aggregate any open pair until at most one open entry remains.
    while (pv.open_count() >= 2) {
      std::vector<std::size_t> open;
      for (std::size_t i = 0; i < pv.size(); ++i) {
        if (!pv.IsSetAt(i)) open.push_back(i);
      }
      pv.Aggregate(open[0], open[1], &rng);
    }
    if (pv.open_count() == 1) {
      for (std::size_t i = 0; i < pv.size(); ++i) {
        if (!pv.IsSetAt(i)) pv.ResolveResidual(i, &rng);
      }
    }
    EXPECT_EQ(pv.open_count(), 0u);
    // Initial mass 2.0 -> exactly 2 ones.
    EXPECT_EQ(pv.OnesIndices().size(), 2u);
  }
}

TEST(ProbVector, OnesIndices) {
  ProbVector pv({1.0, 0.0, 1.0, 0.5});
  const auto ones = pv.OnesIndices();
  ASSERT_EQ(ones.size(), 2u);
  EXPECT_EQ(ones[0], 0u);
  EXPECT_EQ(ones[1], 2u);
}

TEST(ProbVector, ResolveResidualFrequency) {
  Rng rng(3);
  int ones = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    ProbVector pv({0.7});
    pv.ResolveResidual(0, &rng);
    ones += pv[0] == 1.0;
  }
  EXPECT_NEAR(static_cast<double>(ones) / n, 0.7, 0.01);
}

}  // namespace
}  // namespace sas
