#include "core/fault.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace sas {
namespace {

TEST(FaultInjector, StartsDisarmedAndCostsNothing) {
  FaultInjector fi;
  EXPECT_FALSE(fi.armed());
  // Hit/Poll on a disarmed injector are no-ops (the FaultPoint probe skips
  // them entirely, but calling directly must also be safe).
  fi.Hit("shard.worker.batch");
  EXPECT_FALSE(fi.Poll("shard.worker.batch"));
  EXPECT_EQ(fi.fired(), 0u);
}

TEST(FaultInjector, FailNthFiresExactlyOnce) {
  FaultInjector fi;
  fi.Configure("site.a=fail@3");
  EXPECT_TRUE(fi.armed());
  fi.Hit("site.a");  // hit 1
  fi.Hit("site.a");  // hit 2
  try {
    fi.Hit("site.a");  // hit 3: due
    FAIL() << "expected FaultInjectionError on the 3rd hit";
  } catch (const FaultInjectionError& e) {
    EXPECT_EQ(e.site(), "site.a");
    EXPECT_EQ(e.hit(), 3u);
    EXPECT_NE(std::string(e.what()).find("site.a"), std::string::npos);
  }
  // One-shot without /K: hit 4 passes.
  fi.Hit("site.a");
  EXPECT_EQ(fi.HitCount("site.a"), 4u);
  EXPECT_EQ(fi.fired(), 1u);
}

TEST(FaultInjector, FailEveryKFiresPeriodically) {
  FaultInjector fi;
  fi.Configure("site.b=fail@2/3");
  // Due on hits 2, 5, 8, ...
  int thrown = 0;
  for (int n = 1; n <= 9; ++n) {
    if (fi.Poll("site.b")) ++thrown;
  }
  EXPECT_EQ(thrown, 3);
  EXPECT_EQ(fi.fired(), 3u);
}

TEST(FaultInjector, FailEveryHitIsTheChaosWorkhorse) {
  FaultInjector fi;
  fi.Configure("site.c=fail@1/1");
  for (int n = 0; n < 5; ++n) EXPECT_TRUE(fi.Poll("site.c"));
}

TEST(FaultInjector, LaneNarrowsARuleAndCountsPerRule) {
  FaultInjector fi;
  fi.Configure("shard.worker.batch#1=fail@1/1");
  // Lane 0 and the lane-less probe never match the lane-1 rule.
  EXPECT_FALSE(fi.Poll("shard.worker.batch", 0));
  EXPECT_FALSE(fi.Poll("shard.worker.batch"));
  EXPECT_TRUE(fi.Poll("shard.worker.batch", 1));
  // Hits are counted per matching rule: only the lane-1 probe landed.
  EXPECT_EQ(fi.HitCount("shard.worker.batch"), 1u);
}

TEST(FaultInjector, LanelessRuleMatchesEveryLane) {
  FaultInjector fi;
  fi.Configure("shard.queue.push=fail@2");
  EXPECT_FALSE(fi.Poll("shard.queue.push", 0));  // hit 1
  EXPECT_TRUE(fi.Poll("shard.queue.push", 7));   // hit 2, any lane
}

TEST(FaultInjector, DelayRuleSleepsInsteadOfThrowing) {
  FaultInjector fi;
  fi.Configure("site.d=delay@1/1:1");
  // A delay rule is never "due to fail": Hit does not throw and Poll
  // reports false, but the firing is still counted.
  fi.Hit("site.d");
  EXPECT_FALSE(fi.Poll("site.d"));
  EXPECT_EQ(fi.fired(), 2u);
}

TEST(FaultInjector, MultipleClausesAreIndependent) {
  FaultInjector fi;
  fi.Configure("site.e=fail@1;site.f=fail@2;site.e=delay@1/1:1");
  EXPECT_TRUE(fi.Poll("site.e"));   // fail@1 due (delay also fired)
  EXPECT_FALSE(fi.Poll("site.f"));  // hit 1 of 2
  EXPECT_TRUE(fi.Poll("site.f"));   // hit 2: due
  EXPECT_EQ(fi.HitCount("site.e"), 2u);  // two rules match site.e per probe
}

TEST(FaultInjector, ClearDisarmsAndDropsCounters) {
  FaultInjector fi;
  fi.Configure("site.g=fail@1/1");
  EXPECT_TRUE(fi.Poll("site.g"));
  fi.Clear();
  EXPECT_FALSE(fi.armed());
  EXPECT_FALSE(fi.Poll("site.g"));
  EXPECT_EQ(fi.HitCount("site.g"), 0u);
  EXPECT_EQ(fi.fired(), 0u);
}

TEST(FaultInjector, ReconfigureReplacesTheScheduleAndRestartsCounting) {
  FaultInjector fi;
  fi.Configure("site.h=fail@2");
  fi.Hit("site.h");  // hit 1
  fi.Configure("site.h=fail@2");
  fi.Hit("site.h");  // counting restarted: hit 1 again
  EXPECT_TRUE(fi.Poll("site.h"));
}

TEST(FaultInjector, EmptySpecIsClear) {
  FaultInjector fi;
  fi.Configure("site.i=fail@1/1");
  fi.Configure("");
  EXPECT_FALSE(fi.armed());
}

TEST(FaultInjector, MalformedSpecsThrowNamingTheClause) {
  FaultInjector fi;
  const char* bad[] = {
      "no-equals-sign",            // missing '='
      "site=explode@1",            // unknown verb
      "site=fail",                 // missing '@N'
      "site=fail@",                // empty count
      "site=fail@zero",            // non-numeric count
      "site=fail@0",               // counts are 1-based
      "site=fail@1/0",             // period must be >= 1
      "site=delay@1",              // delay missing ':USEC'
      "site=delay@1:",             // empty delay
      "site#=fail@1",              // empty lane
      "site#x=fail@1",             // non-numeric lane
      "=fail@1",                   // empty site
      "site=fail@1:10",            // ':USEC' is delay-only
  };
  for (const char* spec : bad) {
    EXPECT_THROW(fi.Configure(spec), std::invalid_argument) << spec;
    // A failed Configure must not leave a half-armed injector behind.
    EXPECT_FALSE(fi.armed()) << spec;
  }
}

TEST(FaultInjector, FaultPointRoutesToLocalInjectorWhenGiven) {
  FaultInjector local;
  local.Configure("site.j=fail@1/1");
  EXPECT_THROW(FaultPoint(&local, "site.j"), FaultInjectionError);
}

TEST(FaultInjector, FaultPointFallsBackToGlobal) {
  // The global injector arms from SAS_FAULTS on first use; under the test
  // harness it is disarmed, and configuring it here must reach the
  // null-local probe. Cleared afterwards so no schedule leaks into other
  // tests in this binary.
  FaultInjector& g = FaultInjector::Global();
  EXPECT_EQ(&g, &FaultInjector::Global());  // stable singleton
  g.Configure("site.k=fail@1");
  EXPECT_THROW(FaultPoint(nullptr, "site.k"), FaultInjectionError);
  g.Clear();
  FaultPoint(nullptr, "site.k");  // disarmed again: no-op
}

}  // namespace
}  // namespace sas
