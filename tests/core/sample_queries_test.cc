#include "core/sample_queries.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/random.h"
#include "sampling/varopt_offline.h"

namespace sas {
namespace {

Sample ExactSampleOf(const std::vector<std::pair<Coord, Weight>>& data) {
  // tau = 0: the "sample" is the full data, so query answers are exact.
  std::vector<WeightedKey> entries;
  KeyId id = 0;
  for (const auto& [x, w] : data) entries.push_back({id++, w, {x, 0}});
  return Sample(0.0, std::move(entries));
}

TEST(QuantileX, ExactOnFullData) {
  const Sample s = ExactSampleOf({{10, 1}, {20, 1}, {30, 1}, {40, 1}});
  EXPECT_EQ(EstimateQuantileX(s, 0.25), 10u);
  EXPECT_EQ(EstimateQuantileX(s, 0.5), 20u);
  EXPECT_EQ(EstimateQuantileX(s, 1.0), 40u);
}

TEST(QuantileX, WeightedMedian) {
  const Sample s = ExactSampleOf({{1, 9}, {2, 1}, {3, 1}});
  EXPECT_EQ(EstimateQuantileX(s, 0.5), 1u);  // 9/11 of mass at x=1
}

TEST(QuantileX, EmptySample) {
  const Sample s;
  EXPECT_EQ(EstimateQuantileX(s, 0.5), 0u);
}

TEST(QuantileX, SubsetRestriction) {
  const Sample s = ExactSampleOf({{10, 1}, {20, 1}, {30, 1}, {40, 1}});
  const Coord med = EstimateSubsetQuantileX(
      s, 0.5, [](const WeightedKey& k) { return k.pt.x >= 25; });
  EXPECT_EQ(med, 30u);
}

TEST(QuantileX, AccurateFromSample) {
  // Quantiles from a VarOpt sample approximate the exact quantiles.
  Rng rng(1);
  std::vector<WeightedKey> items;
  std::vector<std::pair<Coord, Weight>> data;
  for (KeyId i = 0; i < 5000; ++i) {
    const Coord x = rng.NextBounded(1 << 20);
    const Weight w = rng.NextPareto(1.5);
    items.push_back({i, w, {x, 0}});
    data.push_back({x, w});
  }
  const Sample exact = ExactSampleOf(data);
  const Sample sampled = VarOptOffline(items, 500.0, &rng);
  for (double q : {0.1, 0.5, 0.9}) {
    const double truth = static_cast<double>(EstimateQuantileX(exact, q));
    const double est = static_cast<double>(EstimateQuantileX(sampled, q));
    EXPECT_NEAR(est / (1 << 20), truth / (1 << 20), 0.05) << "q=" << q;
  }
}

TEST(HeavyHitters, FindsObviousHitter) {
  const Sample s = ExactSampleOf({{1, 100}, {2, 1}, {3, 1}, {4, 1}});
  const auto hh = EstimateHeavyHitters(s, 0.5);
  ASSERT_EQ(hh.size(), 1u);
  EXPECT_EQ(hh[0].key.pt.x, 1u);
  EXPECT_NEAR(hh[0].estimated_fraction, 100.0 / 103.0, 1e-9);
}

TEST(HeavyHitters, SortedByWeight) {
  const Sample s = ExactSampleOf({{1, 30}, {2, 50}, {3, 20}});
  const auto hh = EstimateHeavyHitters(s, 0.15);
  ASSERT_EQ(hh.size(), 3u);
  EXPECT_EQ(hh[0].key.pt.x, 2u);
  EXPECT_EQ(hh[1].key.pt.x, 1u);
  EXPECT_EQ(hh[2].key.pt.x, 3u);
}

TEST(HeavyHitters, NoFalseNegativesFromVarOptSample) {
  // A key with weight >= phi * W is a certain inclusion once tau <= phi*W,
  // so the heavy hitter must always be reported from the sample.
  Rng rng(2);
  std::vector<WeightedKey> items;
  Weight total = 0.0;
  for (KeyId i = 0; i < 1000; ++i) {
    const Weight w = 1.0 + rng.NextDouble();
    items.push_back({i, w, {i, 0}});
    total += w;
  }
  items[123].weight = total;  // ~50% of the new total
  for (int t = 0; t < 20; ++t) {
    const Sample sample = VarOptOffline(items, 50.0, &rng);
    const auto hh = EstimateHeavyHitters(sample, 0.3);
    ASSERT_GE(hh.size(), 1u);
    EXPECT_EQ(hh[0].key.id, 123u);
  }
}

TEST(RangeHeavyHitters, IntervalAggregation) {
  const Sample s =
      ExactSampleOf({{5, 10}, {6, 10}, {100, 1}, {101, 1}, {200, 78}});
  const std::vector<Interval> ranges{{0, 10}, {100, 110}, {200, 201}};
  const auto hh = EstimateRangeHeavyHittersX(s, ranges, 0.2);
  ASSERT_EQ(hh.size(), 2u);
  EXPECT_EQ(hh[0].range.lo, 0u);
  EXPECT_NEAR(hh[0].estimated_weight, 20.0, 1e-9);
  EXPECT_EQ(hh[1].range.lo, 200u);
}

TEST(RangeHeavyHitters, EmptySample) {
  const Sample s;
  EXPECT_TRUE(EstimateRangeHeavyHittersX(s, {{0, 10}}, 0.1).empty());
}

}  // namespace
}  // namespace sas
