#include "core/pair_aggregate.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/random.h"

namespace sas {
namespace {

TEST(SnapProbability, SnapsNearBoundaries) {
  EXPECT_DOUBLE_EQ(SnapProbability(1e-14), 0.0);
  EXPECT_DOUBLE_EQ(SnapProbability(1.0 - 1e-14), 1.0);
  EXPECT_DOUBLE_EQ(SnapProbability(0.5), 0.5);
  EXPECT_DOUBLE_EQ(SnapProbability(0.0), 0.0);
  EXPECT_DOUBLE_EQ(SnapProbability(1.0), 1.0);
}

TEST(PairAggregate, PreservesSum) {
  Rng rng(1);
  for (int trial = 0; trial < 1000; ++trial) {
    double a = 0.001 + 0.998 * rng.NextDouble();
    double b = 0.001 + 0.998 * rng.NextDouble();
    const double sum = a + b;
    PairAggregate(&a, &b, &rng);
    EXPECT_NEAR(a + b, sum, 1e-9);
  }
}

TEST(PairAggregate, SetsAtLeastOneEntry) {
  Rng rng(2);
  for (int trial = 0; trial < 1000; ++trial) {
    double a = 0.001 + 0.998 * rng.NextDouble();
    double b = 0.001 + 0.998 * rng.NextDouble();
    PairAggregate(&a, &b, &rng);
    EXPECT_TRUE(IsSet(a) || IsSet(b));
  }
}

TEST(PairAggregate, OutputsStayInUnitInterval) {
  Rng rng(3);
  for (int trial = 0; trial < 1000; ++trial) {
    double a = 0.001 + 0.998 * rng.NextDouble();
    double b = 0.001 + 0.998 * rng.NextDouble();
    PairAggregate(&a, &b, &rng);
    EXPECT_GE(a, 0.0);
    EXPECT_LE(a, 1.0);
    EXPECT_GE(b, 0.0);
    EXPECT_LE(b, 1.0);
  }
}

TEST(PairAggregate, SmallSumCaseMovesAllMass) {
  Rng rng(4);
  for (int trial = 0; trial < 200; ++trial) {
    double a = 0.2, b = 0.3;
    PairAggregate(&a, &b, &rng);
    // One entry holds 0.5, the other is 0.
    EXPECT_TRUE((std::fabs(a - 0.5) < 1e-12 && b == 0.0) ||
                (std::fabs(b - 0.5) < 1e-12 && a == 0.0));
  }
}

TEST(PairAggregate, LargeSumCaseIncludesOne) {
  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    double a = 0.8, b = 0.7;
    PairAggregate(&a, &b, &rng);
    EXPECT_TRUE(a == 1.0 || b == 1.0);
    const double leftover = a == 1.0 ? b : a;
    EXPECT_NEAR(leftover, 0.5, 1e-12);
  }
}

TEST(PairAggregate, AgreementInExpectationSmallSum) {
  // E[new a] must equal old a (unbiasedness of the aggregation).
  Rng rng(6);
  const double a0 = 0.15, b0 = 0.45;
  double sum_a = 0.0, sum_b = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    double a = a0, b = b0;
    PairAggregate(&a, &b, &rng);
    sum_a += a;
    sum_b += b;
  }
  EXPECT_NEAR(sum_a / n, a0, 0.005);
  EXPECT_NEAR(sum_b / n, b0, 0.005);
}

TEST(PairAggregate, AgreementInExpectationLargeSum) {
  Rng rng(7);
  const double a0 = 0.85, b0 = 0.65;
  double sum_a = 0.0, sum_b = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    double a = a0, b = b0;
    PairAggregate(&a, &b, &rng);
    sum_a += a;
    sum_b += b;
  }
  EXPECT_NEAR(sum_a / n, a0, 0.005);
  EXPECT_NEAR(sum_b / n, b0, 0.005);
}

TEST(PairAggregate, InclusionExclusionBound) {
  // VarOpt condition (iii), pairwise: E[p'_i p'_j] <= p_i p_j and
  // E[(1-p'_i)(1-p'_j)] <= (1-p_i)(1-p_j).
  Rng rng(8);
  for (double a0 : {0.2, 0.5, 0.8}) {
    for (double b0 : {0.3, 0.6, 0.9}) {
      double prod = 0.0, coprod = 0.0;
      const int n = 100000;
      for (int i = 0; i < n; ++i) {
        double a = a0, b = b0;
        PairAggregate(&a, &b, &rng);
        prod += a * b;
        coprod += (1.0 - a) * (1.0 - b);
      }
      EXPECT_LE(prod / n, a0 * b0 + 0.005) << a0 << " " << b0;
      EXPECT_LE(coprod / n, (1.0 - a0) * (1.0 - b0) + 0.005)
          << a0 << " " << b0;
    }
  }
}

TEST(PairAggregate, ExactSumOneResolvesBoth) {
  Rng rng(9);
  for (int trial = 0; trial < 100; ++trial) {
    double a = 0.4, b = 0.6;
    PairAggregate(&a, &b, &rng);
    EXPECT_TRUE(IsSet(a) && IsSet(b));
    EXPECT_NEAR(a + b, 1.0, 1e-12);
  }
}

TEST(ChainAggregate, LeavesAtMostOneOpen) {
  Rng rng(10);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = 2 + rng.NextBounded(50);
    std::vector<double> p(n);
    for (auto& x : p) x = 0.01 + 0.98 * rng.NextDouble();
    std::vector<std::size_t> order(n);
    for (std::size_t i = 0; i < n; ++i) order[i] = i;
    const std::size_t leftover = ChainAggregate(&p, order, kNoEntry, &rng);
    std::size_t open = 0;
    for (double x : p) open += !IsSet(x);
    EXPECT_LE(open, 1u);
    if (open == 1) {
      ASSERT_NE(leftover, kNoEntry);
      EXPECT_FALSE(IsSet(p[leftover]));
    } else {
      EXPECT_EQ(leftover, kNoEntry);
    }
  }
}

TEST(ChainAggregate, PreservesTotalMass) {
  Rng rng(11);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = 2 + rng.NextBounded(50);
    std::vector<double> p(n);
    double total = 0.0;
    for (auto& x : p) {
      x = 0.01 + 0.98 * rng.NextDouble();
      total += x;
    }
    std::vector<std::size_t> order(n);
    for (std::size_t i = 0; i < n; ++i) order[i] = i;
    ChainAggregate(&p, order, kNoEntry, &rng);
    double after = 0.0;
    for (double x : p) after += x;
    EXPECT_NEAR(after, total, 1e-7);
  }
}

TEST(ChainAggregate, SkipsSetEntries) {
  Rng rng(12);
  std::vector<double> p{1.0, 0.5, 0.0, 0.5, 1.0};
  std::vector<std::size_t> order{0, 1, 2, 3, 4};
  ChainAggregate(&p, order, kNoEntry, &rng);
  EXPECT_DOUBLE_EQ(p[0], 1.0);
  EXPECT_DOUBLE_EQ(p[2], 0.0);
  EXPECT_DOUBLE_EQ(p[4], 1.0);
  EXPECT_TRUE(IsSet(p[1]) && IsSet(p[3]));
  EXPECT_NEAR(p[1] + p[3], 1.0, 1e-12);
}

TEST(ChainAggregate, CarryIsUsed) {
  Rng rng(13);
  std::vector<double> p{0.5, 0.5};
  std::vector<std::size_t> order{1};
  const std::size_t leftover = ChainAggregate(&p, order, 0, &rng);
  EXPECT_EQ(leftover, kNoEntry);  // 0.5 + 0.5 = 1 resolves both
  EXPECT_NEAR(p[0] + p[1], 1.0, 1e-12);
}

TEST(ChainAggregate, IntegralMassFullyResolves) {
  // When the open mass is an integer, no leftover remains and exactly that
  // many entries are 1.
  Rng rng(14);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<double> p{0.5, 0.5, 0.25, 0.25, 0.25, 0.25};
    std::vector<std::size_t> order{0, 1, 2, 3, 4, 5};
    const std::size_t leftover = ChainAggregate(&p, order, kNoEntry, &rng);
    EXPECT_EQ(leftover, kNoEntry);
    int ones = 0;
    for (double x : p) {
      EXPECT_TRUE(IsSet(x));
      ones += x == 1.0;
    }
    EXPECT_EQ(ones, 2);
  }
}

TEST(ResolveResidual, BernoulliSemantics) {
  Rng rng(15);
  int ones = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    std::vector<double> p{0.3};
    ResolveResidual(&p, 0, &rng);
    EXPECT_TRUE(IsSet(p[0]));
    ones += p[0] == 1.0;
  }
  EXPECT_NEAR(static_cast<double>(ones) / n, 0.3, 0.01);
}

TEST(ResolveResidual, NoEntryIsNoOp) {
  Rng rng(16);
  std::vector<double> p{0.5};
  ResolveResidual(&p, kNoEntry, &rng);
  EXPECT_DOUBLE_EQ(p[0], 0.5);
}

}  // namespace
}  // namespace sas
