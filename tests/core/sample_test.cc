#include "core/sample.h"

#include <gtest/gtest.h>

#include <vector>

namespace sas {
namespace {

Sample MakeSample() {
  // tau = 2: weights below 2 are adjusted up to 2.
  std::vector<WeightedKey> entries{
      {0, 5.0, {10, 10}},  // heavy: adjusted weight 5
      {1, 1.0, {20, 20}},  // light: adjusted weight 2
      {2, 0.5, {30, 30}},  // light: adjusted weight 2
  };
  return Sample(2.0, std::move(entries));
}

TEST(Sample, AdjustedWeights) {
  const Sample s = MakeSample();
  EXPECT_DOUBLE_EQ(s.AdjustedWeight(s.entries()[0]), 5.0);
  EXPECT_DOUBLE_EQ(s.AdjustedWeight(s.entries()[1]), 2.0);
  EXPECT_DOUBLE_EQ(s.AdjustedWeight(s.entries()[2]), 2.0);
}

TEST(Sample, EstimateTotal) {
  EXPECT_DOUBLE_EQ(MakeSample().EstimateTotal(), 9.0);
}

TEST(Sample, EstimateBox) {
  const Sample s = MakeSample();
  EXPECT_DOUBLE_EQ(s.EstimateBox({{0, 15}, {0, 15}}), 5.0);
  EXPECT_DOUBLE_EQ(s.EstimateBox({{0, 25}, {0, 25}}), 7.0);
  EXPECT_DOUBLE_EQ(s.EstimateBox({{0, 100}, {0, 100}}), 9.0);
  EXPECT_DOUBLE_EQ(s.EstimateBox({{50, 60}, {50, 60}}), 0.0);
}

TEST(Sample, EstimateBoxBoundariesHalfOpen) {
  const Sample s = MakeSample();
  // Point at (10,10): box [10,11)x[10,11) contains it; [0,10)x... does not.
  EXPECT_DOUBLE_EQ(s.EstimateBox({{10, 11}, {10, 11}}), 5.0);
  EXPECT_DOUBLE_EQ(s.EstimateBox({{0, 10}, {0, 10}}), 0.0);
}

TEST(Sample, EstimateQueryDisjointBoxes) {
  const Sample s = MakeSample();
  MultiRangeQuery q;
  q.boxes.push_back({{0, 15}, {0, 15}});
  q.boxes.push_back({{25, 35}, {25, 35}});
  EXPECT_DOUBLE_EQ(s.EstimateQuery(q), 7.0);
}

TEST(Sample, CountInBox) {
  const Sample s = MakeSample();
  EXPECT_EQ(s.CountInBox({{0, 25}, {0, 25}}), 2u);
  EXPECT_EQ(s.CountInBox({{0, 100}, {0, 100}}), 3u);
}

TEST(Sample, EstimateSubsetPredicate) {
  const Sample s = MakeSample();
  const Weight est =
      s.EstimateSubset([](const WeightedKey& k) { return k.id != 1; });
  EXPECT_DOUBLE_EQ(est, 7.0);
}

TEST(Sample, EmptySample) {
  const Sample s;
  EXPECT_EQ(s.size(), 0u);
  EXPECT_DOUBLE_EQ(s.EstimateTotal(), 0.0);
  EXPECT_DOUBLE_EQ(s.EstimateBox({{0, 100}, {0, 100}}), 0.0);
}

TEST(Sample, ZeroTauActsAsExact) {
  std::vector<WeightedKey> entries{{0, 1.5, {1, 1}}, {1, 2.5, {2, 2}}};
  const Sample s(0.0, std::move(entries));
  EXPECT_DOUBLE_EQ(s.EstimateTotal(), 4.0);
}

}  // namespace
}  // namespace sas
