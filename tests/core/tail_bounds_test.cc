#include "core/tail_bounds.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/random.h"

namespace sas {
namespace {

TEST(ChernoffUpper, TrivialRegion) {
  EXPECT_DOUBLE_EQ(ChernoffUpper(5.0, 5.0), 1.0);
  EXPECT_DOUBLE_EQ(ChernoffUpper(5.0, 4.0), 1.0);
}

TEST(ChernoffUpper, DecreasesInA) {
  double prev = 1.0;
  for (double a = 6.0; a <= 20.0; a += 1.0) {
    const double b = ChernoffUpper(5.0, a);
    EXPECT_LE(b, prev);
    prev = b;
  }
  EXPECT_LT(prev, 1e-4);
}

TEST(ChernoffUpper, ZeroMean) {
  EXPECT_DOUBLE_EQ(ChernoffUpper(0.0, 1.0), 0.0);
}

TEST(ChernoffLower, TrivialRegion) {
  EXPECT_DOUBLE_EQ(ChernoffLower(5.0, 5.0), 1.0);
  EXPECT_DOUBLE_EQ(ChernoffLower(5.0, 6.0), 1.0);
}

TEST(ChernoffLower, ZeroA) {
  EXPECT_NEAR(ChernoffLower(5.0, 0.0), std::exp(-5.0), 1e-12);
}

TEST(ChernoffLower, NegativeAImpossible) {
  EXPECT_DOUBLE_EQ(ChernoffLower(5.0, -1.0), 0.0);
}

TEST(ChernoffBounds, DominateBinomialTails) {
  // Empirical check: Binomial(n=100, p=0.1) tail frequencies must be below
  // the Chernoff bounds (Poisson sampling of 100 unit keys, mu = 10).
  Rng rng(123);
  const int n = 100;
  const double p = 0.1;
  const double mu = n * p;
  const int trials = 20000;
  int ge_20 = 0, le_3 = 0;
  for (int t = 0; t < trials; ++t) {
    int x = 0;
    for (int i = 0; i < n; ++i) x += rng.NextBernoulli(p);
    ge_20 += x >= 20;
    le_3 += x <= 3;
  }
  EXPECT_LE(static_cast<double>(ge_20) / trials, ChernoffUpper(mu, 20.0));
  EXPECT_LE(static_cast<double>(le_3) / trials, ChernoffLower(mu, 3.0));
}

TEST(EstimateTailBound, ExactWhenTauZero) {
  EXPECT_DOUBLE_EQ(EstimateTailBound(10.0, 20.0, 0.0), 0.0);
}

TEST(EstimateTailBound, LooseNearTruth) {
  EXPECT_DOUBLE_EQ(EstimateTailBound(10.0, 10.0, 1.0), 1.0);
}

TEST(EstimateTailBound, TightensWithDeviation) {
  const double w = 50.0, tau = 1.0;
  double prev = 1.0;
  for (double h = 55.0; h <= 100.0; h += 5.0) {
    const double b = EstimateTailBound(w, h, tau);
    EXPECT_LE(b, prev);
    prev = b;
  }
  EXPECT_LT(prev, 1e-3);
}

TEST(EstimateTailBound, ScalesWithTau) {
  // Larger tau (smaller sample) means weaker guarantees.
  EXPECT_LT(EstimateTailBound(50.0, 70.0, 1.0),
            EstimateTailBound(50.0, 70.0, 5.0));
}

}  // namespace
}  // namespace sas
