// MergeSamples / MergeAllSamples correctness: exact invariants (everything
// fits, total preservation, output size) and statistical unbiasedness of
// the merged Horvitz-Thompson estimates over order-, hierarchy-, and
// product-structured data (fixed-seed tolerance tests).

#include "core/merge.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "aware/hierarchy_summarizer.h"
#include "aware/order_summarizer.h"
#include "aware/product_summarizer.h"
#include "core/random.h"
#include "sampling/varopt_offline.h"
#include "structure/hierarchy.h"

namespace sas {
namespace {

std::vector<WeightedKey> ParetoItems(std::size_t n, Coord domain, Rng* rng) {
  std::vector<WeightedKey> items(n);
  for (std::size_t i = 0; i < n; ++i) {
    items[i] = {static_cast<KeyId>(i), rng->NextPareto(1.3),
                {rng->NextBounded(domain), rng->NextBounded(domain)}};
  }
  return items;
}

Weight ExactBox(const std::vector<WeightedKey>& items, const Box& box) {
  Weight total = 0.0;
  for (const auto& it : items) {
    if (box.Contains(it.pt)) total += it.weight;
  }
  return total;
}

TEST(MergeSamples, KeepsEverythingWhenItFits) {
  const Sample a(2.0, {{0, 1.0, {0, 0}}, {1, 5.0, {1, 0}}});
  const Sample b(3.0, {{2, 1.5, {2, 0}}, {3, 9.0, {3, 0}}});
  Rng rng(1);
  const Sample merged = MergeSamples(a, b, 100, &rng);
  ASSERT_EQ(merged.size(), 4u);
  EXPECT_DOUBLE_EQ(merged.tau(), 0.0);
  // Entries are carried at their adjusted weights: the light entries (1.0
  // under tau 2.0, 1.5 under tau 3.0) become 2.0 and 3.0; the heavy ones
  // keep their weights. Estimates therefore add exactly.
  EXPECT_DOUBLE_EQ(merged.EstimateTotal(),
                   a.EstimateTotal() + b.EstimateTotal());
  const Box left{{0, 2}, {0, 1}};
  EXPECT_DOUBLE_EQ(merged.EstimateBox(left), a.EstimateBox(left));
}

TEST(MergeSamples, NoRandomnessConsumedWhenItFits) {
  const Sample a(0.0, {{0, 1.0, {0, 0}}});
  const Sample b(0.0, {{1, 2.0, {1, 0}}});
  Rng rng(7), untouched(7);
  (void)MergeSamples(a, b, 10, &rng);
  EXPECT_EQ(rng.Next(), untouched.Next());
}

TEST(MergeSamples, OutputSizeAndTotalPreservation) {
  Rng data_rng(21);
  const auto items = ParetoItems(600, 1 << 12, &data_rng);
  const std::vector<WeightedKey> half_a(items.begin(), items.begin() + 300);
  const std::vector<WeightedKey> half_b(items.begin() + 300, items.end());
  const std::size_t s = 48;

  Rng seeder(22);
  for (int trial = 0; trial < 50; ++trial) {
    Rng rng = seeder.Split();
    const Sample a = VarOptOffline(half_a, static_cast<double>(s), &rng);
    const Sample b = VarOptOffline(half_b, static_cast<double>(s), &rng);
    const Sample merged = MergeSamples(a, b, s, &rng);

    // VarOpt keeps the sample size fixed (floating-point residual may move
    // it by one) and preserves the total estimate deterministically.
    EXPECT_NEAR(static_cast<double>(merged.size()), static_cast<double>(s),
                1.0);
    EXPECT_GE(merged.tau(), std::max(0.0, std::min(a.tau(), b.tau())));
    const Weight total_in = a.EstimateTotal() + b.EstimateTotal();
    EXPECT_NEAR(merged.EstimateTotal() / total_in, 1.0, 1e-9);
  }
}

/// Merges two independently-built samples of the two halves of `items`
/// across `trials` seeds and checks that the mean EstimateBox lands within
/// `rel_tol` of the exact answer — the fixed-seed unbiasedness harness
/// shared by the per-structure tests below.
template <typename SampleHalf>
void CheckMergedBoxUnbiased(const std::vector<WeightedKey>& items,
                            const Box& box, std::size_t s, int trials,
                            double rel_tol, SampleHalf&& sample_half) {
  const Weight exact = ExactBox(items, box);
  ASSERT_GT(exact, 0.0);
  const std::size_t mid = items.size() / 2;
  const std::vector<WeightedKey> half_a(items.begin(), items.begin() + mid);
  const std::vector<WeightedKey> half_b(items.begin() + mid, items.end());

  double sum = 0.0;
  Rng seeder(777);
  for (int t = 0; t < trials; ++t) {
    Rng rng = seeder.Split();
    const Sample a = sample_half(half_a, /*first=*/true, &rng);
    const Sample b = sample_half(half_b, /*first=*/false, &rng);
    const Sample merged = MergeSamples(a, b, s, &rng);
    sum += merged.EstimateBox(box);
  }
  EXPECT_NEAR(sum / trials / exact, 1.0, rel_tol);
}

TEST(MergeSamples, UnbiasedOverOrderData) {
  // 1-D order-structured halves summarized by the order-aware sampler.
  Rng data_rng(31);
  std::vector<WeightedKey> items(400);
  for (std::size_t i = 0; i < items.size(); ++i) {
    items[i] = {static_cast<KeyId>(i), data_rng.NextPareto(1.3),
                {static_cast<Coord>(i % 200), 0}};
  }
  const Box box{{0, 90}, {0, 1}};
  CheckMergedBoxUnbiased(
      items, box, 40, 400, 0.04,
      [](const std::vector<WeightedKey>& half, bool, Rng* rng) {
        return OrderSummarize(half, 32.0, rng).sample;
      });
}

TEST(MergeSamples, UnbiasedOverHierarchyData) {
  // Each half carries its own random hierarchy over its local key ids.
  Rng data_rng(32);
  std::vector<WeightedKey> items(400);
  for (std::size_t i = 0; i < items.size(); ++i) {
    items[i] = {static_cast<KeyId>(i % 200), data_rng.NextPareto(1.3),
                {static_cast<Coord>(i % 200), 0}};
  }
  Rng tree_rng(33);
  const Hierarchy ha = Hierarchy::Random(200, 4, &tree_rng);
  const Hierarchy hb = Hierarchy::Random(200, 4, &tree_rng);
  const Box box{{0, 90}, {0, 1}};
  CheckMergedBoxUnbiased(
      items, box, 40, 400, 0.04,
      [&](const std::vector<WeightedKey>& half, bool first, Rng* rng) {
        return HierarchySummarize(half, first ? ha : hb, 32.0, rng).sample;
      });
}

TEST(MergeSamples, UnbiasedOverProductData) {
  Rng data_rng(34);
  const auto items = ParetoItems(400, 1 << 10, &data_rng);
  const Box box{{0, 1 << 9}, {0, 1 << 10}};
  CheckMergedBoxUnbiased(
      items, box, 40, 400, 0.04,
      [](const std::vector<WeightedKey>& half, bool, Rng* rng) {
        return ProductSummarize(half, 32.0, rng).sample;
      });
}

TEST(MergeAllSamples, NWayMatchesExactTotalAndIsUnbiased) {
  Rng data_rng(35);
  const auto items = ParetoItems(800, 1 << 10, &data_rng);
  Weight exact_total = 0.0;
  for (const auto& it : items) exact_total += it.weight;
  const Box box{{0, 1 << 9}, {0, 1 << 9}};
  const Weight exact_box = ExactBox(items, box);

  const std::size_t parts = 4, s = 64;
  double sum_box = 0.0;
  const int trials = 300;
  Rng seeder(36);
  for (int t = 0; t < trials; ++t) {
    Rng rng = seeder.Split();
    std::vector<Sample> shards;
    for (std::size_t p = 0; p < parts; ++p) {
      const std::vector<WeightedKey> slice(
          items.begin() + p * items.size() / parts,
          items.begin() + (p + 1) * items.size() / parts);
      shards.push_back(VarOptOffline(slice, static_cast<double>(s), &rng));
    }
    const Sample merged = MergeAllSamples(shards, s, &rng);
    EXPECT_NEAR(merged.EstimateTotal() / exact_total, 1.0, 1e-9);
    EXPECT_NEAR(static_cast<double>(merged.size()), static_cast<double>(s),
                1.0);
    sum_box += merged.EstimateBox(box);
  }
  EXPECT_NEAR(sum_box / trials / exact_box, 1.0, 0.04);
}

TEST(MergeSamples, RepeatedMergeStaysUnbiased) {
  // A small aggregation tree: ((a+b)+(c+d)) — intermediate results are
  // themselves samples, so cascaded merges must stay unbiased.
  Rng data_rng(37);
  const auto items = ParetoItems(400, 1 << 10, &data_rng);
  Weight exact_total = 0.0;
  for (const auto& it : items) exact_total += it.weight;

  Rng seeder(38);
  for (int t = 0; t < 100; ++t) {
    Rng rng = seeder.Split();
    std::vector<Sample> leaves;
    for (int p = 0; p < 4; ++p) {
      const std::vector<WeightedKey> slice(items.begin() + p * 100,
                                           items.begin() + (p + 1) * 100);
      leaves.push_back(VarOptOffline(slice, 40.0, &rng));
    }
    const Sample left = MergeSamples(leaves[0], leaves[1], 40, &rng);
    const Sample right = MergeSamples(leaves[2], leaves[3], 40, &rng);
    const Sample root = MergeSamples(left, right, 40, &rng);
    EXPECT_NEAR(root.EstimateTotal() / exact_total, 1.0, 1e-9);
  }
}

TEST(MergeAllSamples, ZeroEntryPartsAreCarriedHarmlessly) {
  // The windowed ring routinely merges buckets whose samples hold no
  // entries (all-zero-weight epochs); they must not disturb the result.
  Rng rng(39);
  std::vector<WeightedKey> items;
  for (KeyId i = 0; i < 300; ++i) {
    items.push_back({i, rng.NextPareto(1.3), {i, i}});
  }
  Weight exact_total = 0.0;
  for (const auto& it : items) exact_total += it.weight;

  std::vector<Sample> parts;
  parts.emplace_back();                              // default: 0 entries
  parts.push_back(VarOptOffline(items, 50.0, &rng));
  parts.push_back(Sample(3.0, {}));                  // tau set, no entries
  const Sample merged = MergeAllSamples(parts, 50, &rng);
  EXPECT_NEAR(merged.EstimateTotal() / exact_total, 1.0, 1e-9);
  EXPECT_NEAR(static_cast<double>(merged.size()), 50.0, 1.0);

  // All parts empty: an empty, zero-threshold sample.
  std::vector<Sample> empties(3);
  const Sample empty = MergeAllSamples(empties, 10, &rng);
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_DOUBLE_EQ(empty.tau(), 0.0);
  EXPECT_DOUBLE_EQ(empty.EstimateTotal(), 0.0);
}

TEST(MergeSampleParts, ScratchReuseMatchesPlainMerge) {
  // The pointer/scratch flavor is the same merge: identical draws from an
  // identically-seeded RNG must give the identical sample, across repeated
  // reuse of one scratch.
  Rng rng(40);
  std::vector<WeightedKey> items;
  for (KeyId i = 0; i < 400; ++i) {
    items.push_back({i, rng.NextPareto(1.2), {i, i}});
  }
  const std::vector<WeightedKey> half_a(items.begin(), items.begin() + 200);
  const std::vector<WeightedKey> half_b(items.begin() + 200, items.end());
  const Sample a = VarOptOffline(half_a, 60.0, &rng);
  const Sample b = VarOptOffline(half_b, 60.0, &rng);

  MergeScratch scratch;
  for (int round = 0; round < 3; ++round) {
    Rng r1(123), r2(123);
    const Sample plain = MergeSamples(a, b, 60, &r1);
    const Sample* parts[2] = {&a, &b};
    const Sample pooled = MergeSampleParts(parts, 2, 60, &r2, &scratch);
    ASSERT_EQ(plain.size(), pooled.size());
    EXPECT_DOUBLE_EQ(plain.tau(), pooled.tau());
    for (std::size_t i = 0; i < plain.size(); ++i) {
      EXPECT_EQ(plain.entries()[i].id, pooled.entries()[i].id);
      EXPECT_DOUBLE_EQ(plain.entries()[i].weight, pooled.entries()[i].weight);
    }
  }
}

}  // namespace
}  // namespace sas
