// Telemetry subsystem tests (core/telemetry.h): instrument correctness
// (counters, gauges, log2-bucketed histograms with percentile extraction),
// span timing and nesting into the trace rings, snapshot capture/diff, and
// exact multi-threaded counter sums (the suite runs under the CI
// ThreadSanitizer job via the `tsan` ctest label).
//
// The registry is process-global and shared with every other test in this
// binary, so tests use their own uniquely named instruments and assert on
// deltas, never on absolute registry state.

#include "core/telemetry.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "api/registry.h"
#include "core/fault.h"

namespace sas {
namespace telemetry {
namespace {

/// Arms (or disarms) telemetry for one test body, restoring the previous
/// state on scope exit so test order never matters.
class ScopedEnabled {
 public:
  explicit ScopedEnabled(bool on) : was_(Enabled()) { SetEnabled(on); }
  ~ScopedEnabled() { SetEnabled(was_); }

 private:
  bool was_;
};

TEST(TelemetryCounter, IncrementsAndReportsExactly) {
  Counter* c = GetCounter("test.counter.basic");
  const std::uint64_t before = c->value();
  c->Inc();
  c->Inc(41);
  EXPECT_EQ(c->value() - before, 42u);
  // Same name resolves to the same instrument (stable pointers).
  EXPECT_EQ(GetCounter("test.counter.basic"), c);
}

TEST(TelemetryGauge, SetAddSubTrackALevel) {
  Gauge* g = GetGauge("test.gauge.basic");
  g->Set(10);
  g->Add(5);
  g->Sub(7);
  EXPECT_EQ(g->value(), 8);
  g->Sub(20);  // signed: transient negative levels are representable
  EXPECT_EQ(g->value(), -12);
}

TEST(TelemetryRegistry, NameReuseAcrossKindsThrows) {
  GetCounter("test.registry.typed-once");
  EXPECT_THROW(GetGauge("test.registry.typed-once"), std::logic_error);
  EXPECT_THROW(GetHistogram("test.registry.typed-once"), std::logic_error);
}

TEST(TelemetryHistogram, BucketBoundariesAreBitWidths) {
  // Bucket 0 holds the value 0; bucket b >= 1 holds [2^(b-1), 2^b).
  EXPECT_EQ(Histogram::BucketOf(0), 0);
  EXPECT_EQ(Histogram::BucketOf(1), 1);
  EXPECT_EQ(Histogram::BucketOf(2), 2);
  EXPECT_EQ(Histogram::BucketOf(3), 2);
  EXPECT_EQ(Histogram::BucketOf(4), 3);
  EXPECT_EQ(Histogram::BucketOf(1023), 10);
  EXPECT_EQ(Histogram::BucketOf(1024), 11);
  EXPECT_EQ(Histogram::BucketOf(~std::uint64_t{0}), 64);
  EXPECT_EQ(Histogram::BucketFloor(0), 0u);
  EXPECT_EQ(Histogram::BucketFloor(1), 1u);
  EXPECT_EQ(Histogram::BucketFloor(11), 1024u);
  for (std::uint64_t v : {std::uint64_t{1}, std::uint64_t{7},
                          std::uint64_t{4096}, std::uint64_t{1} << 40}) {
    const int b = Histogram::BucketOf(v);
    EXPECT_GE(v, Histogram::BucketFloor(b)) << v;
    EXPECT_LT(v, Histogram::BucketFloor(b + 1)) << v;
  }
}

TEST(TelemetryHistogram, ObserveRoutesToTheRightBucketAndTracksMax) {
  Histogram* h = GetHistogram("test.hist.buckets");
  h->Observe(0);    // bucket 0
  h->Observe(1);    // bucket 1
  h->Observe(2);    // bucket 2
  h->Observe(3);    // bucket 2
  h->Observe(600);  // bucket 10: [512, 1024)
  EXPECT_EQ(h->count(), 5u);
  EXPECT_EQ(h->sum(), 606u);
  EXPECT_EQ(h->max(), 600u);
  HistogramSnap snap;
  h->SnapshotTo(&snap);
  EXPECT_EQ(snap.buckets[0], 1u);
  EXPECT_EQ(snap.buckets[1], 1u);
  EXPECT_EQ(snap.buckets[2], 2u);
  EXPECT_EQ(snap.buckets[10], 1u);
}

TEST(TelemetryHistogram, QuantilesBracketTheDistribution) {
  Histogram* h = GetHistogram("test.hist.quantiles");
  // 90 small observations and 10 large ones: p50 sits in the small mass,
  // p99 in the large, and q = 1 is the exact max (not a bucket bound).
  for (int i = 0; i < 90; ++i) h->Observe(1);
  for (int i = 0; i < 10; ++i) h->Observe(1000);
  HistogramSnap snap;
  h->SnapshotTo(&snap);
  EXPECT_GE(snap.Quantile(0.5), 1.0);
  EXPECT_LT(snap.Quantile(0.5), 2.0);  // inside bucket 1 = [1, 2)
  EXPECT_GE(snap.Quantile(0.95), 512.0);  // inside bucket 10 = [512, 1024)
  EXPECT_LE(snap.Quantile(0.95), 1000.0);
  EXPECT_DOUBLE_EQ(snap.Quantile(1.0), 1000.0);
  // Monotone in q.
  EXPECT_LE(snap.Quantile(0.5), snap.Quantile(0.9));
  EXPECT_LE(snap.Quantile(0.9), snap.Quantile(0.99));
  // Empty histogram: all quantiles are 0.
  HistogramSnap empty;
  EXPECT_EQ(empty.Quantile(0.5), 0.0);
}

TEST(TelemetrySpan, FeedsHistogramAndNestsInTrace) {
  ScopedEnabled on(true);
  ClearTraceEvents();
  Histogram* outer_h = GetHistogram("test.span.outer_ns");
  Histogram* inner_h = GetHistogram("test.span.inner_ns");
  const std::uint64_t outer_before = outer_h->count();
  const std::uint64_t inner_before = inner_h->count();
  std::uint64_t inner_elapsed = 0;
  {
    Span outer("test.outer", outer_h);
    {
      Span inner("test.inner", inner_h);
      // Make the inner interval observable.
      while (inner.ElapsedNs() == 0) {
      }
      inner_elapsed = inner.ElapsedNs();
    }
    EXPECT_GE(outer.ElapsedNs(), inner_elapsed);
  }
  EXPECT_EQ(outer_h->count() - outer_before, 1u);
  EXPECT_EQ(inner_h->count() - inner_before, 1u);
  // Both spans land in the thread ring; the export is one JSON object in
  // Chrome trace-event shape.
  const std::string trace = ChromeTraceJson();
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("test.outer"), std::string::npos);
  EXPECT_NE(trace.find("test.inner"), std::string::npos);
  ClearTraceEvents();
  EXPECT_EQ(ChromeTraceJson().find("test.outer"), std::string::npos);
}

TEST(TelemetrySpan, DisarmedSpanObservesNothing) {
  ScopedEnabled off(false);
  Histogram* h = GetHistogram("test.span.disarmed_ns");
  const std::uint64_t before = h->count();
  {
    Span span("test.disarmed", h);
    EXPECT_EQ(span.ElapsedNs(), 0u);
  }
  // The per-builder opt-out (armed = false) disarms even when the global
  // flag is on.
  {
    ScopedEnabled on(true);
    Span span("test.disarmed", h, /*armed=*/false);
    EXPECT_EQ(span.ElapsedNs(), 0u);
  }
  EXPECT_EQ(h->count(), before);
}

TEST(TelemetrySnapshot, DiffSinceSubtractsCountersAndHistograms) {
  Counter* c = GetCounter("test.snap.counter");
  Gauge* g = GetGauge("test.snap.gauge");
  Histogram* h = GetHistogram("test.snap.hist");
  c->Inc(5);
  g->Set(3);
  h->Observe(100);
  const TelemetrySnapshot before = Registry::Global().Capture();
  c->Inc(7);
  g->Set(11);
  h->Observe(200);
  h->Observe(50);
  const TelemetrySnapshot after = Registry::Global().Capture();
  const TelemetrySnapshot diff = after.DiffSince(before);

  const auto counter = [&](const TelemetrySnapshot& s, const char* name)
      -> const CounterSnap* {
    for (const auto& e : s.counters) {
      if (e.name == name) return &e;
    }
    return nullptr;
  };
  ASSERT_NE(counter(diff, "test.snap.counter"), nullptr);
  EXPECT_EQ(counter(diff, "test.snap.counter")->value, 7u);
  for (const auto& e : diff.gauges) {
    if (e.name == "test.snap.gauge") EXPECT_EQ(e.value, 11);  // level, not Δ
  }
  for (const auto& e : diff.histograms) {
    if (e.name == "test.snap.hist") {
      EXPECT_EQ(e.count, 2u);
      EXPECT_EQ(e.sum, 250u);
      EXPECT_EQ(e.max, 200u);  // later max: the instrument keeps no window
    }
  }
  // A name absent from `earlier` keeps its full value.
  GetCounter("test.snap.fresh")->Inc(9);
  const TelemetrySnapshot later = Registry::Global().Capture();
  const TelemetrySnapshot diff2 = later.DiffSince(before);
  ASSERT_NE(counter(diff2, "test.snap.fresh"), nullptr);
  EXPECT_EQ(counter(diff2, "test.snap.fresh")->value, 9u);
}

TEST(TelemetrySnapshot, FaultHitCountsAreReExported) {
  FaultInjector fi;
  fi.Configure("test.site=delay@1000000:1");  // never due; hits still count
  fi.Hit("test.site");
  fi.Hit("test.site");
  const TelemetrySnapshot snap = CaptureSnapshot(&fi);
  bool found = false;
  for (const auto& c : snap.counters) {
    if (c.name == "sas.fault.hits.test.site") {
      EXPECT_EQ(c.value, 2u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(TelemetryExport, PrometheusAndJsonCarryEveryKind) {
  GetCounter("test.export.counter")->Inc(3);
  GetGauge("test.export.gauge")->Set(-4);
  GetHistogram("test.export.hist_ns")->Observe(1000);
  const TelemetrySnapshot snap = Registry::Global().Capture();
  const std::string prom = ToPrometheus(snap);
  EXPECT_NE(prom.find("# TYPE test_export_counter counter"),
            std::string::npos);
  EXPECT_NE(prom.find("test_export_gauge -4"), std::string::npos);
  EXPECT_NE(prom.find("test_export_hist_ns{quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("test_export_hist_ns_count"), std::string::npos);
  const std::string json = ToJson(snap);
  EXPECT_NE(json.find("\"test.export.counter\":3"), std::string::npos);
  EXPECT_NE(json.find("\"test.export.gauge\":-4"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
}

TEST(TelemetryThreading, ConcurrentCounterSumsAreExact) {
  // Relaxed atomic adds are wait-free and lose nothing: N threads times M
  // increments must sum exactly. The CI ThreadSanitizer job re-runs this
  // suite to certify the no-lock claim.
  constexpr int kThreads = 8;
  constexpr int kIncrements = 50000;
  Counter* c = GetCounter("test.mt.counter");
  Histogram* h = GetHistogram("test.mt.hist");
  const std::uint64_t c_before = c->value();
  const std::uint64_t h_before = h->count();
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIncrements; ++i) {
        c->Inc();
        h->Observe(static_cast<std::uint64_t>(t + 1));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c->value() - c_before,
            static_cast<std::uint64_t>(kThreads) * kIncrements);
  EXPECT_EQ(h->count() - h_before,
            static_cast<std::uint64_t>(kThreads) * kIncrements);
}

TEST(TelemetryConfig, BuilderOptOutStopsIngestMirroring) {
  ScopedEnabled on(true);
  Counter* accepted = GetCounter("sas.ingest.accepted");
  const std::vector<WeightedKey> items = {
      {1, 2.0, {10, 20}}, {2, 3.0, {30, 40}}, {3, 4.0, {50, 60}}};

  SummarizerConfig cfg;
  cfg.s = 2.0;
  cfg.seed = 1;
  cfg.telemetry = false;
  auto opted_out = MakeSummarizer("obliv", cfg);
  const std::uint64_t before = accepted->value();
  opted_out->AddBatch(items);
  EXPECT_EQ(accepted->value(), before);  // stats_ only, no mirroring
  EXPECT_EQ(opted_out->Describe().accepted, items.size());

  cfg.telemetry = true;
  auto mirrored = MakeSummarizer("obliv", cfg);
  mirrored->AddBatch(items);
  EXPECT_EQ(accepted->value() - before, items.size());
}

TEST(TelemetryConfig, GlobalDisableIsTheDefaultOffSwitch) {
  ScopedEnabled off(false);
  Counter* accepted = GetCounter("sas.ingest.accepted");
  const std::uint64_t before = accepted->value();
  SummarizerConfig cfg;
  cfg.s = 2.0;
  cfg.seed = 1;
  auto builder = MakeSummarizer("obliv", cfg);  // telemetry = true (default)
  builder->AddBatch(
      std::vector<WeightedKey>{{1, 2.0, {10, 20}}, {2, 3.0, {30, 40}}});
  EXPECT_EQ(accepted->value(), before);
}

}  // namespace
}  // namespace telemetry
}  // namespace sas
