#include "core/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <set>
#include <vector>

namespace sas {
namespace {

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.NextDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, DoubleMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BoundedInRange) {
  Rng rng(3);
  for (std::uint64_t bound : {1ULL, 2ULL, 7ULL, 100ULL, 1000000007ULL}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(Rng, BoundedRoughlyUniform) {
  Rng rng(5);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) counts[rng.NextBounded(10)]++;
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.01);
  }
}

TEST(Rng, BernoulliEdges) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
    EXPECT_FALSE(rng.NextBernoulli(-0.5));
    EXPECT_TRUE(rng.NextBernoulli(1.5));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(13);
  const double p = 0.3;
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.NextBernoulli(p);
  EXPECT_NEAR(static_cast<double>(hits) / n, p, 0.01);
}

TEST(Rng, ExpMeanOne) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextExp();
  EXPECT_NEAR(sum / n, 1.0, 0.03);
}

TEST(Rng, ParetoAtLeastOne) {
  Rng rng(19);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(rng.NextPareto(1.5), 1.0);
  }
}

TEST(Rng, ParetoMedianMatchesTheory) {
  // Median of Pareto(alpha, scale 1) is 2^(1/alpha).
  Rng rng(23);
  const double alpha = 2.0;
  std::vector<double> xs(100001);
  for (auto& x : xs) x = rng.NextPareto(alpha);
  std::nth_element(xs.begin(), xs.begin() + xs.size() / 2, xs.end());
  EXPECT_NEAR(xs[xs.size() / 2], std::pow(2.0, 1.0 / alpha), 0.03);
}

TEST(Rng, SplitProducesIndependentStreams) {
  Rng parent(31);
  Rng child = parent.Split();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.Next() == child.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, SplitsDistinct) {
  Rng parent(37);
  Rng c1 = parent.Split();
  Rng c2 = parent.Split();
  EXPECT_NE(c1.Next(), c2.Next());
}

TEST(Rng, ForkIsDeterministicAndDoesNotAdvanceParent) {
  Rng parent(41);
  Rng c1 = parent.Fork(3);
  Rng c2 = parent.Fork(3);
  // Same stream index twice: identical children, parent untouched.
  for (int i = 0; i < 32; ++i) EXPECT_EQ(c1.Next(), c2.Next());
  Rng fresh(41);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(parent.Next(), fresh.Next());
}

TEST(Rng, ForkStreamsAreIndependent) {
  Rng parent(43);
  Rng a = parent.Fork(0);
  Rng b = parent.Fork(1);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ForkManyStreamsDistinct) {
  Rng parent(47);
  std::set<std::uint64_t> firsts;
  for (std::uint64_t i = 0; i < 256; ++i) {
    firsts.insert(parent.Fork(i).Next());
  }
  EXPECT_EQ(firsts.size(), 256u);
}

TEST(ForkSeed, DeterministicAndSpread) {
  EXPECT_EQ(ForkSeed(1, 0), ForkSeed(1, 0));
  std::set<std::uint64_t> seeds;
  for (std::uint64_t stream = 0; stream < 1000; ++stream) {
    seeds.insert(ForkSeed(12345, stream));
  }
  EXPECT_EQ(seeds.size(), 1000u);
  EXPECT_NE(ForkSeed(1, 7), ForkSeed(2, 7));
}

TEST(SplitMix, KnownAvalanche) {
  // Mix64 should change about half the bits for a 1-bit input change.
  int total = 0;
  for (std::uint64_t x = 1; x < 100; ++x) {
    total += std::popcount(Mix64(x) ^ Mix64(x + 1));
  }
  EXPECT_NEAR(total / 99.0, 32.0, 4.0);
}

}  // namespace
}  // namespace sas
