// Scalar-vs-AVX2 equivalence suite for the dispatched kernels in
// core/simd.h, pinning the contracts the header documents:
//
//  * per-lane kernels (FillIppsProbabilities elements, MinGapScan,
//    U64ToUnitDoubles, Rng::FillDoubles) are bit-identical on every level;
//  * float reductions (the FillIppsProbabilities *sum*, SuffixSum) agree
//    within a 1e-12 relative tolerance, with the scalar result fixed as the
//    golden-seed reference;
//  * the dispatch override (SetLevel) honors DetectLevel as a ceiling.
//
// With SAS_SIMD=OFF — or on a host without AVX2 — DetectLevel() is kScalar
// and the cross-level comparisons degenerate to scalar-vs-scalar, which
// keeps the suite runnable (and the scalar contracts still checked) on
// every build configuration.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "core/random.h"
#include "core/simd.h"
#include "core/types.h"

namespace sas {
namespace {

/// Restores the dispatch level on scope exit so one test's override cannot
/// leak into another (or into other suites in this binary).
class LevelGuard {
 public:
  LevelGuard() : saved_(simd::ActiveLevel()) {}
  ~LevelGuard() { simd::SetLevel(saved_); }

 private:
  simd::Level saved_;
};

std::vector<double> ParetoWeights(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> w(n);
  for (auto& x : w) x = rng.NextPareto(1.15);
  return w;
}

// The sizes below straddle the AVX2 width (4 doubles) and the FillDoubles
// block size (RngStream::kBlock = 256) so remainders of every phase run.
const std::size_t kSizes[] = {0, 1, 2, 3, 4, 5, 7, 8, 15, 63,
                              255, 256, 257, 1000, 4096};

// --- Dispatch plumbing -----------------------------------------------------

TEST(SimdDispatch, ActiveDefaultsToDetectAndOverrideIsCapped) {
  LevelGuard guard;
  const simd::Level best = simd::DetectLevel();
  EXPECT_EQ(simd::ActiveLevel(), best);

  // Scalar is always accepted.
  EXPECT_TRUE(simd::SetLevel(simd::Level::kScalar));
  EXPECT_EQ(simd::ActiveLevel(), simd::Level::kScalar);

  if (best == simd::Level::kAvx2) {
    EXPECT_TRUE(simd::SetLevel(simd::Level::kAvx2));
    EXPECT_EQ(simd::ActiveLevel(), simd::Level::kAvx2);
  } else {
    // Requesting an unsupported level fails and changes nothing.
    EXPECT_FALSE(simd::SetLevel(simd::Level::kAvx2));
    EXPECT_EQ(simd::ActiveLevel(), simd::Level::kScalar);
  }
}

TEST(SimdDispatch, LevelNames) {
  EXPECT_STREQ(simd::LevelName(simd::Level::kScalar), "scalar");
  EXPECT_STREQ(simd::LevelName(simd::Level::kAvx2), "avx2");
}

// --- FillIppsProbabilities -------------------------------------------------

TEST(SimdFillIppsProbabilities, ScalarMatchesClassicLoop) {
  LevelGuard guard;
  ASSERT_TRUE(simd::SetLevel(simd::Level::kScalar));
  for (std::size_t n : kSizes) {
    const std::vector<double> w = ParetoWeights(n, 100 + n);
    const double tau = 2.5;
    std::vector<double> probs(n, -1.0);
    const double sum = simd::FillIppsProbabilities(w.data(), n, tau,
                                                   probs.data());
    double want_sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double want = std::min(1.0, w[i] / tau);
      ASSERT_EQ(probs[i], want) << "n=" << n << " i=" << i;
      want_sum += want;
    }
    ASSERT_EQ(sum, want_sum) << "n=" << n;
  }
}

TEST(SimdFillIppsProbabilities, ElementsBitIdenticalAcrossLevels) {
  LevelGuard guard;
  for (std::size_t n : kSizes) {
    const std::vector<double> w = ParetoWeights(n, 200 + n);
    for (double tau : {0.3, 1.0, 17.25}) {
      ASSERT_TRUE(simd::SetLevel(simd::Level::kScalar));
      std::vector<double> scalar(n, -1.0);
      const double scalar_sum =
          simd::FillIppsProbabilities(w.data(), n, tau, scalar.data());

      simd::SetLevel(simd::DetectLevel());
      std::vector<double> best(n, -1.0);
      const double best_sum =
          simd::FillIppsProbabilities(w.data(), n, tau, best.data());

      ASSERT_EQ(scalar, best) << "n=" << n << " tau=" << tau;
      ASSERT_NEAR(best_sum, scalar_sum,
                  1e-12 * (1.0 + std::fabs(scalar_sum)))
          << "n=" << n << " tau=" << tau;
    }
  }
}

TEST(SimdFillIppsProbabilities, QuotientsExactOverWideDynamicRange) {
  // The AVX2 path computes w/tau via Markstein's corrected-reciprocal
  // sequence; this stresses its bit-identity against the hardware divide
  // across many magnitude combinations (quotients from ~1e-250 to ~1e250,
  // all normal), not just the Pareto weights the other tests use.
  if (simd::DetectLevel() == simd::Level::kScalar) {
    GTEST_SKIP() << "no vector level available in this build/host";
  }
  LevelGuard guard;
  Rng rng(271828);
  const std::size_t n = 4096;
  std::vector<double> w(n), scalar(n), best(n);
  for (int trial = 0; trial < 50; ++trial) {
    for (auto& x : w) {
      const int mag = static_cast<int>(rng.NextBounded(500)) - 250;
      x = (1.0 + rng.NextDouble()) * std::pow(10.0, mag);
    }
    const int tau_mag = static_cast<int>(rng.NextBounded(200)) - 100;
    const double tau = (1.0 + rng.NextDouble()) * std::pow(10.0, tau_mag);
    ASSERT_TRUE(simd::SetLevel(simd::Level::kScalar));
    simd::FillIppsProbabilities(w.data(), n, tau, scalar.data());
    ASSERT_TRUE(simd::SetLevel(simd::Level::kAvx2));
    simd::FillIppsProbabilities(w.data(), n, tau, best.data());
    ASSERT_EQ(scalar, best) << "trial=" << trial << " tau=" << tau;
  }
}

// --- SuffixSum -------------------------------------------------------------

TEST(SimdSuffixSum, ScalarMatchesReverseAccumulate) {
  LevelGuard guard;
  ASSERT_TRUE(simd::SetLevel(simd::Level::kScalar));
  const std::vector<double> buf = ParetoWeights(1000, 7);
  Rng rng(8);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t begin = rng.NextBounded(buf.size());
    const std::size_t end = begin + rng.NextBounded(buf.size() - begin + 1);
    const double init = rng.NextDouble();
    double want = init;
    for (std::size_t i = end; i-- > begin;) want += buf[i];
    ASSERT_EQ(simd::SuffixSum(buf.data(), begin, end, init), want)
        << "begin=" << begin << " end=" << end;
  }
}

TEST(SimdSuffixSum, LevelsAgreeWithinReductionTolerance) {
  LevelGuard guard;
  const std::vector<double> buf = ParetoWeights(4096, 21);
  for (std::size_t n : kSizes) {
    if (n > buf.size()) continue;
    ASSERT_TRUE(simd::SetLevel(simd::Level::kScalar));
    const double scalar = simd::SuffixSum(buf.data(), 0, n, 0.5);
    simd::SetLevel(simd::DetectLevel());
    const double best = simd::SuffixSum(buf.data(), 0, n, 0.5);
    ASSERT_NEAR(best, scalar, 1e-12 * (1.0 + std::fabs(scalar)))
        << "n=" << n;
  }
}

// --- MinGapScan ------------------------------------------------------------

// Reference argmin scan, copied from the classic weighted-median loop: the
// first strictly-smaller gap wins; boundaries inside a duplicate run are
// not eligible.
std::size_t RefMinGapScan(const std::vector<double>& prefix,
                          const std::vector<Coord>& vals, double total) {
  std::size_t best = simd::kNoSplit;
  double best_gap = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i + 1 < vals.size(); ++i) {
    if (vals[i] == vals[i + 1]) continue;
    const double gap = std::fabs(total - 2.0 * prefix[i]);
    if (gap < best_gap) {
      best_gap = gap;
      best = i;
    }
  }
  return best;
}

TEST(SimdMinGapScan, BitIdenticalToReferenceOnEveryLevel) {
  LevelGuard guard;
  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t len = 1 + rng.NextBounded(600);
    std::vector<Coord> vals(len);
    Coord v = rng.NextBounded(5);
    for (auto& x : vals) {
      // Sorted values with duplicate runs (real kd inputs are sorted).
      v += rng.NextBounded(3);  // step 0 creates duplicates
      x = v;
    }
    std::vector<double> prefix(len);
    double run = 0.0;
    for (std::size_t i = 0; i < len; ++i) {
      run += 0.01 + 0.98 * rng.NextDouble();
      prefix[i] = run;
    }
    const double total = run;
    const std::size_t want = RefMinGapScan(prefix, vals, total);
    for (simd::Level level : {simd::Level::kScalar, simd::DetectLevel()}) {
      ASSERT_TRUE(simd::SetLevel(level));
      ASSERT_EQ(simd::MinGapScan(prefix.data(), vals.data(), len, total),
                want)
          << "trial=" << trial << " level=" << simd::LevelName(level);
    }
  }
}

TEST(SimdMinGapScan, AllDuplicatesYieldNoSplit) {
  LevelGuard guard;
  for (std::size_t len : {1u, 2u, 5u, 64u, 257u}) {
    std::vector<Coord> vals(len, 42);
    std::vector<double> prefix(len);
    for (std::size_t i = 0; i < len; ++i) {
      prefix[i] = static_cast<double>(i + 1);
    }
    for (simd::Level level : {simd::Level::kScalar, simd::DetectLevel()}) {
      ASSERT_TRUE(simd::SetLevel(level));
      EXPECT_EQ(simd::MinGapScan(prefix.data(), vals.data(), len,
                                 static_cast<double>(len)),
                simd::kNoSplit)
          << "len=" << len << " level=" << simd::LevelName(level);
    }
  }
}

TEST(SimdMinGapScan, ExactGapTiesKeepTheFirstBoundary) {
  LevelGuard guard;
  // Symmetric masses make |total - 2*prefix| tie exactly at two
  // boundaries; the strict-less update keeps the first.
  const std::vector<Coord> vals = {0, 1, 2, 3};
  const std::vector<double> prefix = {1.0, 2.0, 3.0, 4.0};
  const double total = 4.0;  // gaps: |4-2|=2, |4-4|=0, |4-6|=2
  for (simd::Level level : {simd::Level::kScalar, simd::DetectLevel()}) {
    ASSERT_TRUE(simd::SetLevel(level));
    EXPECT_EQ(simd::MinGapScan(prefix.data(), vals.data(), vals.size(),
                               total),
              1u)
        << simd::LevelName(level);
  }
  // Make boundary 1 ineligible via a duplicate run: the tie winner must
  // move to the first remaining minimum (boundary 0 and 2 tie at 2.0).
  const std::vector<Coord> dup_vals = {0, 1, 1, 3};
  for (simd::Level level : {simd::Level::kScalar, simd::DetectLevel()}) {
    ASSERT_TRUE(simd::SetLevel(level));
    EXPECT_EQ(simd::MinGapScan(prefix.data(), dup_vals.data(),
                               dup_vals.size(), total),
              0u)
        << simd::LevelName(level);
  }
}

// --- U64ToUnitDoubles ------------------------------------------------------

TEST(SimdU64ToUnitDoubles, BitIdenticalAcrossLevelsAndToTheMapping) {
  LevelGuard guard;
  Rng rng(3131);
  for (std::size_t n : kSizes) {
    std::vector<std::uint64_t> raw(n);
    for (auto& x : raw) x = rng.Next();
    // Seed the extremes through the front lanes.
    if (n > 0) raw[0] = 0;
    if (n > 1) raw[1] = ~std::uint64_t{0};

    ASSERT_TRUE(simd::SetLevel(simd::Level::kScalar));
    std::vector<double> scalar(n, -1.0);
    simd::U64ToUnitDoubles(raw.data(), scalar.data(), n);

    simd::SetLevel(simd::DetectLevel());
    std::vector<double> best(n, -1.0);
    simd::U64ToUnitDoubles(raw.data(), best.data(), n);

    ASSERT_EQ(scalar, best) << "n=" << n;
    for (std::size_t i = 0; i < n; ++i) {
      const double want =
          static_cast<double>(raw[i] >> 11) * 0x1.0p-53;
      ASSERT_EQ(scalar[i], want) << "n=" << n << " i=" << i;
      ASSERT_GE(scalar[i], 0.0);
      ASSERT_LT(scalar[i], 1.0);
    }
  }
}

// --- Rng::FillDoubles through the dispatcher -------------------------------

TEST(SimdFillDoubles, BitIdenticalAcrossLevelsAndToNextDouble) {
  LevelGuard guard;
  for (std::size_t n : kSizes) {
    Rng loop_rng(500 + n);
    std::vector<double> loop(n);
    for (auto& u : loop) u = loop_rng.NextDouble();

    ASSERT_TRUE(simd::SetLevel(simd::Level::kScalar));
    Rng scalar_rng(500 + n);
    std::vector<double> scalar(n);
    scalar_rng.FillDoubles(scalar.data(), n);

    simd::SetLevel(simd::DetectLevel());
    Rng best_rng(500 + n);
    std::vector<double> best(n);
    best_rng.FillDoubles(best.data(), n);

    ASSERT_EQ(loop, scalar) << "n=" << n;
    ASSERT_EQ(scalar, best) << "n=" << n;
    // The generators must land in the same state as the draw loop.
    for (int i = 0; i < 4; ++i) {
      const std::uint64_t want = loop_rng.Next();
      ASSERT_EQ(scalar_rng.Next(), want);
      ASSERT_EQ(best_rng.Next(), want);
    }
  }
}

}  // namespace
}  // namespace sas
