#include "core/ipps.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "core/random.h"

namespace sas {
namespace {

double ProbSum(const std::vector<Weight>& w, double tau) {
  double sum = 0.0;
  for (Weight x : w) sum += IppsProbability(x, tau);
  return sum;
}

TEST(IppsProbability, Basics) {
  EXPECT_DOUBLE_EQ(IppsProbability(2.0, 4.0), 0.5);
  EXPECT_DOUBLE_EQ(IppsProbability(4.0, 4.0), 1.0);
  EXPECT_DOUBLE_EQ(IppsProbability(8.0, 4.0), 1.0);
  EXPECT_DOUBLE_EQ(IppsProbability(0.0, 4.0), 0.0);
}

TEST(IppsProbability, ZeroThresholdMeansCertain) {
  EXPECT_DOUBLE_EQ(IppsProbability(0.5, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(IppsProbability(0.0, 0.0), 0.0);
}

TEST(SolveTau, UniformWeights) {
  // n uniform weights, target s: tau = n*w/s.
  std::vector<Weight> w(10, 2.0);
  const double tau = SolveTau(w, 4.0);
  EXPECT_NEAR(tau, 10 * 2.0 / 4.0, 1e-12);
  EXPECT_NEAR(ProbSum(w, tau), 4.0, 1e-9);
}

TEST(SolveTau, MixedHeavyLight) {
  std::vector<Weight> w{100.0, 1.0, 1.0, 1.0, 1.0};
  const double tau = SolveTau(w, 3.0);
  // The 100 is certain; remaining 4 unit weights share s - 1 = 2: tau = 2.
  EXPECT_NEAR(tau, 2.0, 1e-12);
  EXPECT_NEAR(ProbSum(w, tau), 3.0, 1e-9);
}

TEST(SolveTau, SampleSizeAtLeastN) {
  std::vector<Weight> w{3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(SolveTau(w, 3.0), 0.0);
  EXPECT_DOUBLE_EQ(SolveTau(w, 10.0), 0.0);
}

TEST(SolveTau, IgnoresZeroWeights) {
  std::vector<Weight> w{1.0, 0.0, 1.0, 0.0};
  EXPECT_DOUBLE_EQ(SolveTau(w, 2.0), 0.0);  // only 2 positive keys
  const double tau = SolveTau(w, 1.0);
  EXPECT_NEAR(ProbSum(w, tau), 1.0, 1e-9);
}

TEST(SolveTau, RandomInputsSatisfyConstraint) {
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 5 + rng.NextBounded(200);
    std::vector<Weight> w(n);
    for (auto& x : w) x = rng.NextPareto(1.1);
    const double s = 1 + static_cast<double>(rng.NextBounded(n - 1));
    const double tau = SolveTau(w, s);
    ASSERT_GT(tau, 0.0);
    EXPECT_NEAR(ProbSum(w, tau), s, 1e-6 * s);
  }
}

TEST(SolveTau, FractionalTarget) {
  std::vector<Weight> w{5.0, 4.0, 3.0, 2.0, 1.0};
  const double s = 2.5;
  const double tau = SolveTau(w, s);
  EXPECT_NEAR(ProbSum(w, tau), s, 1e-9);
}

TEST(SolveTau, AllEqualWeightsAreExact) {
  // Regression: all-equal inputs used to rely on the candidate scan (and
  // could drift into the bisection fallback near the s ~ n boundary); they
  // now hit an exact early-out tau = total/s.
  std::vector<Weight> w(1000, 0.1);
  double total = 0.0;
  for (Weight x : w) total += x;
  EXPECT_DOUBLE_EQ(SolveTau(w, 999.5), total / 999.5);
  EXPECT_DOUBLE_EQ(SolveTau(w, 1.0), total);
  EXPECT_DOUBLE_EQ(SolveTau(w, 1000.0), 0.0);
}

TEST(SolveTau, ZeroFilteredBoundary) {
  // s >= the positive count after zero-filtering must return exactly 0,
  // regardless of how many zero weights pad the input.
  std::vector<Weight> w{0.0, 7.0, 0.0, 7.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(SolveTau(w, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(SolveTau(w, 5.0), 0.0);
  EXPECT_DOUBLE_EQ(SolveTau(w, 1.5), 14.0 / 1.5);
}

TEST(SolveTau, ScratchOverloadMatchesWrapper) {
  IppsScratch scratch;
  Rng rng(31);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 2 + rng.NextBounded(300);
    std::vector<Weight> w(n);
    for (auto& x : w) x = rng.NextPareto(1.2);
    const double s = 1 + static_cast<double>(rng.NextBounded(n - 1));
    EXPECT_EQ(SolveTau(w, s), SolveTau(w.data(), w.size(), s, &scratch));
  }
}

TEST(IppsProbabilities, FillsAndSums) {
  std::vector<Weight> w{4.0, 2.0, 1.0, 1.0};
  std::vector<double> probs;
  const double sum = IppsProbabilities(w, 2.0, &probs);
  ASSERT_EQ(probs.size(), 4u);
  EXPECT_DOUBLE_EQ(probs[0], 1.0);
  EXPECT_DOUBLE_EQ(probs[1], 1.0);
  EXPECT_DOUBLE_EQ(probs[2], 0.5);
  EXPECT_DOUBLE_EQ(probs[3], 0.5);
  EXPECT_DOUBLE_EQ(sum, 3.0);
}

TEST(StreamTau, MatchesOfflineUniform) {
  StreamTau st(3.0);
  std::vector<Weight> w(4, 1.0);
  for (Weight x : w) st.Push(x);
  EXPECT_NEAR(st.tau(), SolveTau(w, 3.0), 1e-12);
}

TEST(StreamTau, MatchesOfflineOnRandomStreams) {
  Rng rng(4242);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = 10 + rng.NextBounded(500);
    const double s = 2 + static_cast<double>(rng.NextBounded(20));
    std::vector<Weight> w(n);
    for (auto& x : w) x = rng.NextPareto(1.2);
    StreamTau st(s);
    for (Weight x : w) st.Push(x);
    const double offline = SolveTau(w, s);
    EXPECT_NEAR(st.tau(), offline, 1e-9 * (1.0 + offline))
        << "n=" << n << " s=" << s;
  }
}

TEST(StreamTau, PrefixExactness) {
  // After each push beyond s items, the tracker's tau must solve the
  // prefix equation (below s items the solution set is an interval and the
  // offline solver's 0 convention need not match; every key still has
  // inclusion probability 1 either way).
  Rng rng(777);
  const double s = 5.0;
  StreamTau st(s);
  std::vector<Weight> prefix;
  for (int i = 0; i < 200; ++i) {
    const Weight w = rng.NextPareto(1.5);
    prefix.push_back(w);
    st.Push(w);
    if (prefix.size() > static_cast<std::size_t>(s)) {
      const double expected = SolveTau(prefix, s);
      ASSERT_NEAR(st.tau(), expected, 1e-9 * (1.0 + expected)) << "i=" << i;
    } else {
      // All keys must be certain inclusions under the tracker's threshold.
      for (Weight x : prefix) {
        ASSERT_DOUBLE_EQ(IppsProbability(x, st.tau()), 1.0);
      }
    }
  }
}

TEST(StreamTau, ZeroWeightsIgnored) {
  StreamTau st(2.0);
  st.Push(0.0);
  st.Push(1.0);
  st.Push(0.0);
  st.Push(1.0);
  // Exactly s positive keys: both must be certain inclusions.
  EXPECT_DOUBLE_EQ(IppsProbability(1.0, st.tau()), 1.0);
  st.Push(1.0);
  EXPECT_NEAR(st.tau(), 1.5, 1e-12);  // 3 unit keys, s = 2
  EXPECT_EQ(st.count(), 5u);
}

TEST(StreamTau, HeapBounded) {
  StreamTau st(8.0);
  Rng rng(55);
  for (int i = 0; i < 10000; ++i) st.Push(rng.NextPareto(1.1));
  EXPECT_LE(st.heap_size(), 8u);
}

TEST(StreamTau, OrderInvariance) {
  // tau depends only on the multiset of weights.
  Rng rng(66);
  std::vector<Weight> w(300);
  for (auto& x : w) x = rng.NextPareto(1.3);
  StreamTau fwd(7.0), rev(7.0);
  for (Weight x : w) fwd.Push(x);
  for (auto it = w.rbegin(); it != w.rend(); ++it) rev.Push(*it);
  EXPECT_NEAR(fwd.tau(), rev.tau(), 1e-9 * (1.0 + fwd.tau()));
}

}  // namespace
}  // namespace sas
