#include "summaries/wavelet1d.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/random.h"

namespace sas {
namespace {

TEST(Wavelet1D, ExactWithAllCoefficients) {
  Rng rng(1);
  std::vector<std::pair<Coord, Weight>> data;
  for (int i = 0; i < 100; ++i) {
    data.push_back({rng.NextBounded(256), rng.NextPareto(1.3)});
  }
  const Wavelet1D wv(data, 1 << 20, 8);
  for (int trial = 0; trial < 100; ++trial) {
    Coord a = rng.NextBounded(256), b = rng.NextBounded(257);
    if (a > b) std::swap(a, b);
    double exact = 0.0;
    for (const auto& [x, w] : data) exact += (x >= a && x < b) ? w : 0.0;
    EXPECT_NEAR(wv.RangeSum(a, b), exact, 1e-8);
  }
}

TEST(Wavelet1D, ExactPointReconstruction) {
  std::vector<std::pair<Coord, Weight>> data{{3, 5.0}, {10, 2.0}, {3, 1.0}};
  const Wavelet1D wv(data, 1 << 10, 4);
  EXPECT_NEAR(wv.EstimatePoint(3), 6.0, 1e-9);
  EXPECT_NEAR(wv.EstimatePoint(10), 2.0, 1e-9);
  EXPECT_NEAR(wv.EstimatePoint(7), 0.0, 1e-9);
}

TEST(Wavelet1D, SizeRespectsBudget) {
  Rng rng(2);
  std::vector<std::pair<Coord, Weight>> data;
  for (int i = 0; i < 500; ++i) {
    data.push_back({rng.NextBounded(1 << 12), rng.NextPareto(1.2)});
  }
  for (std::size_t s : {5u, 20u, 100u}) {
    EXPECT_LE(Wavelet1D(data, s, 12).size(), s);
  }
}

TEST(Wavelet1D, TotalMassKeptEvenAtTinySize) {
  // The influence ranking must keep the coarse (scaling) coefficient, so
  // the full-domain query stays near-exact even with few coefficients.
  Rng rng(3);
  std::vector<std::pair<Coord, Weight>> data;
  double total = 0.0;
  for (int i = 0; i < 2000; ++i) {
    const Weight w = rng.NextPareto(1.2);
    data.push_back({rng.NextBounded(1 << 14), w});
    total += w;
  }
  const Wavelet1D wv(data, 10, 14);
  EXPECT_NEAR(wv.RangeSum(0, 1 << 14) / total, 1.0, 0.05);
}

TEST(Wavelet1D, ErrorShrinksWithSize) {
  Rng rng(4);
  std::vector<std::pair<Coord, Weight>> data;
  double total = 0.0;
  for (int i = 0; i < 3000; ++i) {
    const Weight w = rng.NextPareto(1.1);
    data.push_back({rng.NextBounded(1 << 12), w});
    total += w;
  }
  auto mean_err = [&](std::size_t s) {
    const Wavelet1D wv(data, s, 12);
    Rng qrng(7);
    double err = 0.0;
    const int trials = 60;
    for (int t = 0; t < trials; ++t) {
      Coord a = qrng.NextBounded(1 << 12), b = qrng.NextBounded((1 << 12) + 1);
      if (a > b) std::swap(a, b);
      double exact = 0.0;
      for (const auto& [x, w] : data) exact += (x >= a && x < b) ? w : 0.0;
      err += std::fabs(wv.RangeSum(a, b) - exact);
    }
    return err / (trials * total);
  };
  EXPECT_LT(mean_err(1000), mean_err(20));
}

}  // namespace
}  // namespace sas
