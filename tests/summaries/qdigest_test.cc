#include "summaries/qdigest.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/random.h"

namespace sas {
namespace {

TEST(QDigest, TotalWeightConserved) {
  Rng rng(1);
  std::vector<std::pair<Coord, Weight>> data;
  double total = 0.0;
  for (int i = 0; i < 500; ++i) {
    const Weight w = rng.NextPareto(1.3);
    data.push_back({rng.NextBounded(1 << 16), w});
    total += w;
  }
  const QDigest qd(data, 64.0, 16);
  EXPECT_NEAR(qd.total_weight(), total, 1e-9);
  // All materialized mass sums to the total.
  double mat = 0.0;
  for (const auto& e : qd.nodes()) mat += e.weight;
  EXPECT_NEAR(mat, total, 1e-9);
  // Full-range query returns the total.
  EXPECT_NEAR(qd.RangeSum(0, 1 << 16), total, 1e-6);
}

TEST(QDigest, SizeBoundedByCompression) {
  Rng rng(2);
  std::vector<std::pair<Coord, Weight>> data;
  for (int i = 0; i < 2000; ++i) {
    data.push_back({rng.NextBounded(1 << 20), rng.NextPareto(1.2)});
  }
  for (double k : {16.0, 64.0, 256.0}) {
    const QDigest qd(data, k, 20);
    // <= k materialized heavy nodes plus <= 1 root residual per level path;
    // the construction guarantees <= k + 1.
    EXPECT_LE(qd.size(), static_cast<std::size_t>(k) + 1);
  }
}

TEST(QDigest, LargerKIsMoreAccurate) {
  Rng rng(3);
  std::vector<std::pair<Coord, Weight>> data;
  double total = 0.0;
  for (int i = 0; i < 3000; ++i) {
    const Weight w = rng.NextPareto(1.1);
    data.push_back({rng.NextBounded(1 << 14), w});
    total += w;
  }
  auto mean_err = [&](double k) {
    const QDigest qd(data, k, 14);
    Rng qrng(99);
    double err = 0.0;
    const int trials = 100;
    for (int t = 0; t < trials; ++t) {
      Coord a = qrng.NextBounded(1 << 14), b = qrng.NextBounded((1 << 14) + 1);
      if (a > b) std::swap(a, b);
      double exact = 0.0;
      for (const auto& [c, w] : data) exact += (c >= a && c < b) ? w : 0.0;
      err += std::fabs(qd.RangeSum(a, b) - exact);
    }
    return err / (trials * total);
  };
  EXPECT_LT(mean_err(512.0), mean_err(8.0));
}

TEST(QDigest, PointMassExact) {
  // One huge key: it must be materialized at a deep (precise) node.
  std::vector<std::pair<Coord, Weight>> data{{100, 1000.0}};
  for (Coord c = 0; c < 50; ++c) data.push_back({c, 0.01});
  const QDigest qd(data, 32.0, 10);
  EXPECT_NEAR(qd.RangeSum(100, 101), 1000.0, 1.0);
  EXPECT_NEAR(qd.RangeSum(0, 100), 0.5, 0.5);
}

TEST(QDigest, RankMonotone) {
  Rng rng(4);
  std::vector<std::pair<Coord, Weight>> data;
  for (int i = 0; i < 1000; ++i) {
    data.push_back({rng.NextBounded(1 << 12), 1.0});
  }
  const QDigest qd(data, 64.0, 12);
  double prev = -1.0;
  for (Coord x = 0; x <= (1 << 12); x += 64) {
    const double r = qd.Rank(x);
    EXPECT_GE(r, prev - 1e-9);
    prev = r;
  }
}

TEST(QDigest, EmptyData) {
  const QDigest qd({}, 16.0, 8);
  EXPECT_EQ(qd.size(), 0u);
  EXPECT_DOUBLE_EQ(qd.RangeSum(0, 256), 0.0);
}

}  // namespace
}  // namespace sas
