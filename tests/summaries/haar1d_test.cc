#include "summaries/haar1d.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/random.h"

namespace sas {
namespace {

TEST(Haar1D, ScalingFunctionConstant) {
  const Haar1D h(3);  // domain 8
  const double expect = 1.0 / std::sqrt(8.0);
  for (Coord x = 0; x < 8; ++x) {
    EXPECT_DOUBLE_EQ(h.Value(0, x), expect);
  }
}

TEST(Haar1D, WaveletSignsAndSupport) {
  const Haar1D h(3);
  // Code 1 = psi_{0,0}: support [0,8), + on [0,4), - on [4,8).
  for (Coord x = 0; x < 4; ++x) EXPECT_GT(h.Value(1, x), 0.0);
  for (Coord x = 4; x < 8; ++x) EXPECT_LT(h.Value(1, x), 0.0);
  // Code 5 = psi_{2,1}: support [2,4).
  EXPECT_DOUBLE_EQ(h.Value(5, 0), 0.0);
  EXPECT_GT(h.Value(5, 2), 0.0);
  EXPECT_LT(h.Value(5, 3), 0.0);
  EXPECT_DOUBLE_EQ(h.Value(5, 4), 0.0);
}

TEST(Haar1D, Orthonormal) {
  const int bits = 4;
  const Haar1D h(bits);
  const Coord u = h.domain();
  for (HaarCode a = 0; a < u; ++a) {
    for (HaarCode b = a; b < u; ++b) {
      double dot = 0.0;
      for (Coord x = 0; x < u; ++x) dot += h.Value(a, x) * h.Value(b, x);
      EXPECT_NEAR(dot, a == b ? 1.0 : 0.0, 1e-9) << a << "," << b;
    }
  }
}

TEST(Haar1D, PointCodesMatchValues) {
  const Haar1D h(5);
  std::vector<std::pair<HaarCode, double>> codes;
  for (Coord x : {0u, 7u, 31u, 16u}) {
    codes.clear();
    h.PointCodes(x, &codes);
    EXPECT_EQ(codes.size(), 6u);  // bits + 1
    for (const auto& [code, val] : codes) {
      EXPECT_DOUBLE_EQ(val, h.Value(code, x)) << "code " << code;
      EXPECT_NE(val, 0.0);
    }
  }
}

TEST(Haar1D, PointCodesCoverAllNonzeroFunctions) {
  const Haar1D h(4);
  for (Coord x = 0; x < 16; ++x) {
    std::vector<std::pair<HaarCode, double>> codes;
    h.PointCodes(x, &codes);
    std::vector<char> listed(16, 0);
    for (const auto& [code, val] : codes) {
      (void)val;
      listed[code] = 1;
    }
    for (HaarCode c = 0; c < 16; ++c) {
      if (h.Value(c, x) != 0.0) {
        EXPECT_TRUE(listed[c]) << "x=" << x << " code=" << c;
      } else {
        EXPECT_FALSE(listed[c]);
      }
    }
  }
}

TEST(Haar1D, IntegralMatchesBruteForce) {
  const int bits = 5;
  const Haar1D h(bits);
  Rng rng(1);
  for (int trial = 0; trial < 500; ++trial) {
    const HaarCode code = rng.NextBounded(32);
    Coord a = rng.NextBounded(33);
    Coord b = rng.NextBounded(33);
    if (a > b) std::swap(a, b);
    double brute = 0.0;
    for (Coord x = a; x < b; ++x) brute += h.Value(code, x);
    EXPECT_NEAR(h.Integral(code, a, b), brute, 1e-9)
        << "code=" << code << " [" << a << "," << b << ")";
  }
}

TEST(Haar1D, IntegralOverSupportIsZeroForWavelets) {
  const Haar1D h(6);
  for (HaarCode code = 1; code < 64; ++code) {
    const Interval sup = h.Support(code);
    EXPECT_NEAR(h.Integral(code, sup.lo, sup.hi), 0.0, 1e-12);
  }
}

TEST(Haar1D, SupportSizes) {
  const Haar1D h(4);
  EXPECT_EQ(h.Support(0).Length(), 16u);
  EXPECT_EQ(h.Support(1).Length(), 16u);  // level 0 wavelet
  EXPECT_EQ(h.Support(2).Length(), 8u);   // level 1
  EXPECT_EQ(h.Support(8).Length(), 2u);   // level 3
}

TEST(Haar1D, ReconstructionFromAllCoefficients) {
  // f(x) -> coefficients -> f(x) must be exact.
  const int bits = 4;
  const Haar1D h(bits);
  Rng rng(2);
  std::vector<double> f(16);
  for (auto& v : f) v = rng.NextDouble() * 10.0;
  std::vector<double> coeff(16, 0.0);
  for (HaarCode c = 0; c < 16; ++c) {
    for (Coord x = 0; x < 16; ++x) coeff[c] += f[x] * h.Value(c, x);
  }
  for (Coord x = 0; x < 16; ++x) {
    double rec = 0.0;
    for (HaarCode c = 0; c < 16; ++c) rec += coeff[c] * h.Value(c, x);
    EXPECT_NEAR(rec, f[x], 1e-9);
  }
}

}  // namespace
}  // namespace sas
