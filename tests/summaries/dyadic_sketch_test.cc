#include "summaries/dyadic_sketch.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "core/random.h"
#include "summaries/exact_summary.h"

namespace sas {
namespace {

std::vector<WeightedKey> RandomItems(std::size_t n, Coord domain, Rng* rng) {
  std::set<std::pair<Coord, Coord>> seen;
  while (seen.size() < n) {
    seen.insert({rng->NextBounded(domain), rng->NextBounded(domain)});
  }
  std::vector<WeightedKey> items;
  KeyId id = 0;
  for (const auto& [x, y] : seen) {
    items.push_back({id++, rng->NextPareto(1.3), {x, y}});
  }
  return items;
}

TEST(DyadicSketch, SizeWithinBudgetOrder) {
  const DyadicSketch ds(8, 8, 10000, 3, 1);
  // (8+1)^2 = 81 level pairs, 3 rows each; width = 10000/(81*3) = 41.
  EXPECT_EQ(ds.size(), 81u * 3u * 41u);
}

TEST(DyadicSketch, FullDomainQueryIsTotal) {
  // The (0,0) level-pair sketch holds the single root rectangle: the whole
  // domain decomposes into exactly one dyadic product, so the estimate of
  // the full box is exact.
  Rng rng(1);
  const auto items = RandomItems(200, 1 << 8, &rng);
  DyadicSketch ds(8, 8, 50000, 3, 2);
  for (const auto& it : items) ds.Update(it.pt, it.weight);
  const Box full{{0, 1 << 8}, {0, 1 << 8}};
  EXPECT_NEAR(ds.EstimateBox(full), TotalWeight(items), 1e-6);
}

TEST(DyadicSketch, SingleCellQuery) {
  DyadicSketch ds(6, 6, 100000, 5, 3);
  ds.Update({13, 27}, 5.0);
  EXPECT_NEAR(ds.EstimateBox({{13, 14}, {27, 28}}), 5.0, 1e-9);
  EXPECT_NEAR(ds.EstimateBox({{14, 15}, {27, 28}}), 0.0, 1e-9);
}

TEST(DyadicSketch, ReasonableAccuracyWithLargeBudget) {
  Rng rng(2);
  const auto items = RandomItems(300, 1 << 6, &rng);
  DyadicSketch ds(6, 6, 200000, 5, 4);
  for (const auto& it : items) ds.Update(it.pt, it.weight);
  const Weight total = TotalWeight(items);
  double err = 0.0;
  const int trials = 50;
  for (int t = 0; t < trials; ++t) {
    Coord x0 = rng.NextBounded(64), x1 = rng.NextBounded(65);
    Coord y0 = rng.NextBounded(64), y1 = rng.NextBounded(65);
    if (x0 > x1) std::swap(x0, x1);
    if (y0 > y1) std::swap(y0, y1);
    const Box box{{x0, x1}, {y0, y1}};
    err += std::fabs(ds.EstimateBox(box) - ExactBoxSum(items, box));
  }
  EXPECT_LT(err / (trials * total), 0.05);
}

TEST(DyadicSketch, SmallBudgetIsInaccurate) {
  // The paper's observation: 2-D dyadic sketches need a lot of space
  // before they are accurate. With a tiny budget the error is large.
  Rng rng(3);
  const auto items = RandomItems(500, 1 << 10, &rng);
  DyadicSketch small(10, 10, 500, 3, 5);
  DyadicSketch large(10, 10, 500000, 3, 5);
  for (const auto& it : items) {
    small.Update(it.pt, it.weight);
    large.Update(it.pt, it.weight);
  }
  const Weight total = TotalWeight(items);
  double err_small = 0.0, err_large = 0.0;
  const int trials = 30;
  Rng qrng(6);
  for (int t = 0; t < trials; ++t) {
    Coord x0 = qrng.NextBounded(1 << 10), x1 = qrng.NextBounded((1 << 10) + 1);
    Coord y0 = qrng.NextBounded(1 << 10), y1 = qrng.NextBounded((1 << 10) + 1);
    if (x0 > x1) std::swap(x0, x1);
    if (y0 > y1) std::swap(y0, y1);
    const Box box{{x0, x1}, {y0, y1}};
    const Weight exact = ExactBoxSum(items, box);
    err_small += std::fabs(small.EstimateBox(box) - exact);
    err_large += std::fabs(large.EstimateBox(box) - exact);
  }
  EXPECT_LT(err_large / (trials * total), err_small / (trials * total));
}

TEST(DyadicSketch, QuerySumsBoxes) {
  DyadicSketch ds(5, 5, 100000, 5, 7);
  ds.Update({3, 3}, 2.0);
  ds.Update({20, 20}, 3.0);
  MultiRangeQuery q;
  q.boxes.push_back({{0, 8}, {0, 8}});
  q.boxes.push_back({{16, 24}, {16, 24}});
  EXPECT_NEAR(ds.EstimateQuery(q), 5.0, 1e-6);
}

}  // namespace
}  // namespace sas
