#include "summaries/count_sketch.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/random.h"

namespace sas {
namespace {

TEST(CountSketch, SizeIsRowsTimesWidth) {
  const CountSketch cs(5, 128, 1);
  EXPECT_EQ(cs.size(), 5u * 128u);
  EXPECT_EQ(cs.rows(), 5u);
  EXPECT_EQ(cs.width(), 128u);
}

TEST(CountSketch, SingleItemExact) {
  CountSketch cs(5, 64, 2);
  cs.Update(42, 7.5);
  EXPECT_DOUBLE_EQ(cs.Estimate(42), 7.5);
}

TEST(CountSketch, AbsentItemNearZero) {
  CountSketch cs(5, 256, 3);
  Rng rng(1);
  for (int i = 0; i < 100; ++i) cs.Update(i, 1.0);
  // Median estimate of an absent item should be small.
  double err = 0.0;
  for (std::uint64_t q = 1000; q < 1100; ++q) {
    err += std::fabs(cs.Estimate(q));
  }
  EXPECT_LT(err / 100.0, 1.0);
}

TEST(CountSketch, HeavyHitterAccurate) {
  CountSketch cs(5, 256, 4);
  Rng rng(2);
  cs.Update(7, 1000.0);
  for (int i = 0; i < 500; ++i) cs.Update(100 + rng.NextBounded(1000), 1.0);
  EXPECT_NEAR(cs.Estimate(7), 1000.0, 50.0);
}

TEST(CountSketch, AccumulatesUpdates) {
  CountSketch cs(3, 64, 5);
  cs.Update(9, 1.0);
  cs.Update(9, 2.0);
  cs.Update(9, 3.5);
  EXPECT_DOUBLE_EQ(cs.Estimate(9), 6.5);
}

TEST(CountSketch, NegativeUpdatesSupported) {
  CountSketch cs(3, 64, 6);
  cs.Update(9, 5.0);
  cs.Update(9, -2.0);
  EXPECT_DOUBLE_EQ(cs.Estimate(9), 3.0);
}

TEST(CountSketch, UnbiasedOverSeeds) {
  // Averaged over independent sketches, the estimate of an item is its
  // true weight (Count-Sketch is unbiased).
  Rng rng(3);
  std::vector<std::pair<std::uint64_t, Weight>> data;
  for (std::uint64_t i = 0; i < 200; ++i) {
    data.push_back({i, rng.NextPareto(1.3)});
  }
  const std::uint64_t target = 17;
  const Weight truth = data[17].second;
  double total = 0.0;
  const int trials = 600;
  for (int t = 0; t < trials; ++t) {
    CountSketch cs(1, 32, 1000 + t);  // single row: plainly unbiased
    for (const auto& [k, w] : data) cs.Update(k, w);
    total += cs.Estimate(target);
  }
  EXPECT_NEAR(total / trials, truth, 0.5);
}

TEST(CountSketch, WiderIsMoreAccurate) {
  Rng rng(4);
  std::vector<std::pair<std::uint64_t, Weight>> data;
  for (std::uint64_t i = 0; i < 2000; ++i) {
    data.push_back({i, rng.NextPareto(1.2)});
  }
  auto mean_err = [&](std::size_t width) {
    CountSketch cs(5, width, 12345);
    for (const auto& [k, w] : data) cs.Update(k, w);
    double err = 0.0;
    for (std::uint64_t q = 0; q < 200; ++q) {
      err += std::fabs(cs.Estimate(q) - data[q].second);
    }
    return err / 200.0;
  };
  EXPECT_LT(mean_err(4096), mean_err(16));
}

}  // namespace
}  // namespace sas
