#include "summaries/qdigest2d.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "core/random.h"
#include "summaries/exact_summary.h"

namespace sas {
namespace {

std::vector<WeightedKey> RandomItems(std::size_t n, Coord domain, Rng* rng) {
  std::set<std::pair<Coord, Coord>> seen;
  while (seen.size() < n) {
    seen.insert({rng->NextBounded(domain), rng->NextBounded(domain)});
  }
  std::vector<WeightedKey> items;
  KeyId id = 0;
  for (const auto& [x, y] : seen) {
    items.push_back({id++, rng->NextPareto(1.3), {x, y}});
  }
  return items;
}

TEST(QDigest2D, TotalWeightConserved) {
  Rng rng(1);
  const auto items = RandomItems(500, 1 << 10, &rng);
  const Weight total = TotalWeight(items);
  const QDigest2D qd(items, 64.0, 10, 10);
  double mat = 0.0;
  for (const auto& e : qd.nodes()) mat += e.weight;
  EXPECT_NEAR(mat, total, 1e-9);
  const Box full{{0, 1 << 10}, {0, 1 << 10}};
  EXPECT_NEAR(qd.EstimateBox(full), total, 1e-6);
}

TEST(QDigest2D, SizeBoundedByCompression) {
  Rng rng(2);
  const auto items = RandomItems(2000, 1 << 12, &rng);
  for (double k : {32.0, 128.0, 512.0}) {
    const QDigest2D qd(items, k, 12, 12);
    EXPECT_LE(qd.size(), static_cast<std::size_t>(k) + 1);
    EXPECT_GE(qd.size(), 1u);
  }
}

TEST(QDigest2D, NodesAreValidBoxes) {
  Rng rng(3);
  const auto items = RandomItems(300, 1 << 8, &rng);
  const QDigest2D qd(items, 64.0, 8, 8);
  for (const auto& e : qd.nodes()) {
    EXPECT_FALSE(e.cell.Empty());
    EXPECT_GT(e.weight, 0.0);
    // Dyadic cells: power-of-two side lengths, aligned.
    const Coord lx = e.cell.x.Length(), ly = e.cell.y.Length();
    EXPECT_EQ(lx & (lx - 1), 0u);
    EXPECT_EQ(ly & (ly - 1), 0u);
    EXPECT_EQ(e.cell.x.lo % lx, 0u);
    EXPECT_EQ(e.cell.y.lo % ly, 0u);
  }
}

TEST(QDigest2D, HeavyPointLocalized) {
  std::vector<WeightedKey> items{{0, 1000.0, {100, 200}}};
  Rng rng(4);
  for (KeyId i = 1; i <= 50; ++i) {
    items.push_back({i, 0.01, {rng.NextBounded(256), rng.NextBounded(256)}});
  }
  const QDigest2D qd(items, 32.0, 8, 8);
  EXPECT_NEAR(qd.EstimateBox({{100, 101}, {200, 201}}), 1000.0, 1.0);
}

TEST(QDigest2D, LargerKIsMoreAccurate) {
  Rng rng(5);
  const auto items = RandomItems(2000, 1 << 9, &rng);
  const Weight total = TotalWeight(items);
  Rng qrng(77);
  std::vector<Box> boxes;
  for (int i = 0; i < 50; ++i) {
    Coord x0 = qrng.NextBounded(512), x1 = qrng.NextBounded(513);
    Coord y0 = qrng.NextBounded(512), y1 = qrng.NextBounded(513);
    if (x0 > x1) std::swap(x0, x1);
    if (y0 > y1) std::swap(y0, y1);
    boxes.push_back({{x0, x1}, {y0, y1}});
  }
  auto mean_err = [&](double k) {
    const QDigest2D qd(items, k, 9, 9);
    double err = 0.0;
    for (const auto& b : boxes) {
      err += std::fabs(qd.EstimateBox(b) - ExactBoxSum(items, b));
    }
    return err / (boxes.size() * total);
  };
  EXPECT_LT(mean_err(1024.0), mean_err(16.0));
}

TEST(QDigest2D, EmptyData) {
  const QDigest2D qd({}, 16.0, 8, 8);
  EXPECT_EQ(qd.size(), 0u);
  EXPECT_DOUBLE_EQ(qd.EstimateBox({{0, 256}, {0, 256}}), 0.0);
}

TEST(QDigest2D, UnequalAxisBits) {
  Rng rng(6);
  std::vector<WeightedKey> items;
  for (KeyId i = 0; i < 200; ++i) {
    items.push_back({i, 1.0, {rng.NextBounded(1 << 10), rng.NextBounded(1 << 4)}});
  }
  const QDigest2D qd(items, 64.0, 10, 4);
  const Box full{{0, 1 << 10}, {0, 1 << 4}};
  EXPECT_NEAR(qd.EstimateBox(full), 200.0, 1e-6);
}

}  // namespace
}  // namespace sas
