#include "summaries/wavelet2d.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/random.h"
#include "summaries/exact_summary.h"

namespace sas {
namespace {

std::vector<WeightedKey> RandomItems(std::size_t n, Coord domain, Rng* rng) {
  std::set<std::pair<Coord, Coord>> seen;
  while (seen.size() < n) {
    seen.insert({rng->NextBounded(domain), rng->NextBounded(domain)});
  }
  std::vector<WeightedKey> items;
  KeyId id = 0;
  for (const auto& [x, y] : seen) {
    items.push_back({id++, rng->NextPareto(1.3), {x, y}});
  }
  return items;
}

TEST(Wavelet2D, ExactWithAllCoefficients) {
  // Keeping every coefficient makes range queries exact.
  Rng rng(1);
  const auto items = RandomItems(40, 1 << 5, &rng);
  const Wavelet2D wv(items, 1 << 20, 5, 5);  // keep everything
  for (int trial = 0; trial < 100; ++trial) {
    Coord x0 = rng.NextBounded(32), x1 = rng.NextBounded(33);
    Coord y0 = rng.NextBounded(32), y1 = rng.NextBounded(33);
    if (x0 > x1) std::swap(x0, x1);
    if (y0 > y1) std::swap(y0, y1);
    const Box box{{x0, x1}, {y0, y1}};
    EXPECT_NEAR(wv.EstimateBox(box), ExactBoxSum(items, box), 1e-6);
  }
}

TEST(Wavelet2D, ExactPointReconstruction) {
  Rng rng(2);
  const auto items = RandomItems(20, 1 << 4, &rng);
  const Wavelet2D wv(items, 1 << 20, 4, 4);
  for (const auto& it : items) {
    EXPECT_NEAR(wv.EstimatePoint(it.pt), it.weight, 1e-8);
  }
  EXPECT_NEAR(wv.EstimatePoint({0, 0}), ExactBoxSum(items, {{0, 1}, {0, 1}}),
              1e-8);
}

TEST(Wavelet2D, SizeRespectsBudget) {
  Rng rng(3);
  const auto items = RandomItems(100, 1 << 10, &rng);
  for (std::size_t s : {10u, 50u, 200u}) {
    const Wavelet2D wv(items, s, 10, 10);
    EXPECT_LE(wv.size(), s);
  }
}

TEST(Wavelet2D, DenseCoefficientCount) {
  // Each point contributes to (bits+1)^2 coefficients; with few points and
  // little overlap the dense count is near n * (bits+1)^2.
  Rng rng(4);
  const auto items = RandomItems(10, 1 << 12, &rng);
  const Wavelet2D wv(items, 100, 12, 12);
  EXPECT_LE(wv.dense_coefficients(), 10u * 13u * 13u);
  EXPECT_GE(wv.dense_coefficients(), 13u * 13u);
}

TEST(Wavelet2D, ErrorShrinksWithMoreCoefficients) {
  Rng rng(5);
  const auto items = RandomItems(300, 1 << 8, &rng);
  const Weight total = TotalWeight(items);
  std::vector<Box> boxes;
  for (int i = 0; i < 40; ++i) {
    Coord x0 = rng.NextBounded(256), x1 = rng.NextBounded(257);
    Coord y0 = rng.NextBounded(256), y1 = rng.NextBounded(257);
    if (x0 > x1) std::swap(x0, x1);
    if (y0 > y1) std::swap(y0, y1);
    boxes.push_back({{x0, x1}, {y0, y1}});
  }
  auto mean_err = [&](std::size_t s) {
    const Wavelet2D wv(items, s, 8, 8);
    double err = 0.0;
    for (const auto& b : boxes) {
      err += std::abs(wv.EstimateBox(b) - ExactBoxSum(items, b));
    }
    return err / (boxes.size() * total);
  };
  const double e_small = mean_err(50);
  const double e_large = mean_err(2000);
  EXPECT_LT(e_large, e_small);
  EXPECT_LT(e_large, 0.05);
}

TEST(Wavelet2D, KeepsLargestCoefficients) {
  // A single huge point must survive aggressive thresholding.
  std::vector<WeightedKey> items{{0, 1000.0, {3, 5}}, {1, 0.001, {10, 12}}};
  const Wavelet2D wv(items, 30, 4, 4);
  EXPECT_NEAR(wv.EstimatePoint({3, 5}), 1000.0, 1.0);
}

TEST(Wavelet2D, QuerySumsBoxes) {
  Rng rng(6);
  const auto items = RandomItems(50, 1 << 6, &rng);
  const Wavelet2D wv(items, 1 << 20, 6, 6);
  MultiRangeQuery q;
  q.boxes.push_back({{0, 16}, {0, 16}});
  q.boxes.push_back({{32, 64}, {32, 64}});
  EXPECT_NEAR(wv.EstimateQuery(q), ExactQuerySum(items, q), 1e-6);
}

}  // namespace
}  // namespace sas
