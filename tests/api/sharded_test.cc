// Sharded backend tests: "sharded:<N>:<inner>" must agree with the
// unsharded method within Horvitz-Thompson tolerance, reproduce exactly for
// a fixed (seed, shard count), and reject malformed keys and non-mergeable
// inner methods with std::invalid_argument.

#include "api/sharded.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/registry.h"
#include "core/fault.h"
#include "core/random.h"
#include "core/telemetry.h"
#include "test_util.h"

namespace sas {
namespace {

using test::RandomItems;

Weight ExactBox(const std::vector<WeightedKey>& items, const Box& box) {
  Weight total = 0.0;
  for (const auto& it : items) {
    if (box.Contains(it.pt)) total += it.weight;
  }
  return total;
}

std::unique_ptr<RangeSummary> Build(const std::string& key,
                                    const SummarizerConfig& cfg,
                                    const std::vector<WeightedKey>& items) {
  auto builder = MakeSummarizer(key, cfg);
  builder->AddBatch(items);
  return builder->Finalize();
}

TEST(ShardedKey, ParsesWellFormedKeys) {
  const ShardedKeySpec spec = ParseShardedKey("sharded:4:obliv");
  EXPECT_EQ(spec.shards, 4);
  EXPECT_EQ(spec.inner, "obliv");
  // Nested composition parses one level at a time.
  const ShardedKeySpec nested = ParseShardedKey("sharded:2:sharded:3:aware");
  EXPECT_EQ(nested.shards, 2);
  EXPECT_EQ(nested.inner, "sharded:3:aware");
}

TEST(ShardedKey, MalformedKeysThrow) {
  SummarizerConfig cfg;
  cfg.s = 50.0;
  for (const char* bad :
       {"sharded:", "sharded:4", "sharded::obliv", "sharded:0:obliv",
        "sharded:-1:obliv", "sharded:abc:obliv", "sharded:4:",
        "sharded:65:obliv", "sharded:99999999999999999999:obliv",
        "sharded:4:no-such-method"}) {
    EXPECT_THROW(MakeSummarizer(bad, cfg), std::invalid_argument) << bad;
    EXPECT_FALSE(IsRegisteredSummarizer(bad)) << bad;
  }
}

TEST(ShardedKey, NonMergeableInnerRejected) {
  SummarizerConfig cfg;
  cfg.s = 50.0;
  // Deterministic baselines cannot be VarOpt-merged; positional-config
  // samplers (hierarchy/disjoint) do not survive hash partitioning.
  for (const char* inner : {"wavelet", "qdigest", "sketch", "exact"}) {
    EXPECT_THROW(MakeSummarizer("sharded:2:" + std::string(inner), cfg),
                 std::invalid_argument)
        << inner;
  }
  cfg.structure = StructureSpec::Disjoint({0, 1}, 2);
  EXPECT_THROW(MakeSummarizer("sharded:2:disjoint", cfg),
               std::invalid_argument);
}

TEST(ShardedKey, RegisteredWhenInnerIs) {
  EXPECT_TRUE(IsShardedKey("sharded:4:obliv"));
  EXPECT_FALSE(IsShardedKey("obliv"));
  EXPECT_TRUE(IsRegisteredSummarizer("sharded:4:obliv"));
  EXPECT_TRUE(IsRegisteredSummarizer("sharded:2:sharded:2:product"));
  EXPECT_FALSE(IsRegisteredSummarizer("sharded:2:nope"));
}

TEST(Sharded, TotalPreservedExactlyAndSizeIsS) {
  Rng data_rng(41);
  const auto items = RandomItems(20000, 1 << 14, &data_rng);
  Weight exact_total = 0.0;
  for (const auto& it : items) exact_total += it.weight;

  for (const std::string key :
       {std::string("sharded:4:obliv"), std::string("sharded:3:product"),
        std::string("sharded:2:aware"), std::string("sharded:2:order")}) {
    SummarizerConfig cfg;
    cfg.s = 500.0;
    cfg.seed = 9001;
    const auto summary = Build(key, cfg, items);
    EXPECT_EQ(summary->Name(), key);
    ASSERT_NE(summary->AsSample(), nullptr) << key;
    // VarOpt merge preserves the total estimate deterministically and
    // keeps the sample size at s (+-1 for floating-point residue).
    EXPECT_NEAR(summary->AsSample()->sample().EstimateTotal() / exact_total,
                1.0, 1e-9)
        << key;
    EXPECT_NEAR(static_cast<double>(summary->SizeInElements()), 500.0, 1.0)
        << key;
  }
}

TEST(Sharded, BoxEstimatesWithinHtToleranceOfUnsharded) {
  Rng data_rng(42);
  const auto items = RandomItems(20000, 1 << 14, &data_rng);
  const Box box{{0, 1 << 13}, {0, 1 << 14}};  // ~half the domain
  const Weight exact = ExactBox(items, box);
  ASSERT_GT(exact, 0.0);

  // Both the sharded and the unsharded builds are unbiased HT estimators
  // of `exact`; averaged over seeds their means must both land within a
  // few standard errors. With s=1000 a single estimate is already within a
  // few percent, so a 10-seed mean at 3% is a comfortable HT bound.
  for (const std::string inner : {std::string("obliv"),
                                  std::string("product"),
                                  std::string("aware")}) {
    double sharded_mean = 0.0, unsharded_mean = 0.0;
    const int seeds = 10;
    for (int t = 0; t < seeds; ++t) {
      SummarizerConfig cfg;
      cfg.s = 1000.0;
      cfg.seed = 1234 + static_cast<std::uint64_t>(t);
      sharded_mean +=
          Build("sharded:4:" + inner, cfg, items)->EstimateBox(box);
      unsharded_mean += Build(inner, cfg, items)->EstimateBox(box);
    }
    sharded_mean /= seeds;
    unsharded_mean /= seeds;
    EXPECT_NEAR(sharded_mean / exact, 1.0, 0.03) << inner;
    EXPECT_NEAR(unsharded_mean / exact, 1.0, 0.03) << inner;
    EXPECT_NEAR(sharded_mean / unsharded_mean, 1.0, 0.05) << inner;
  }
}

TEST(Sharded, DeterministicForFixedSeedAndShardCount) {
  Rng data_rng(43);
  const auto items = RandomItems(30000, 1 << 14, &data_rng);
  SummarizerConfig cfg;
  cfg.s = 400.0;
  cfg.seed = 77;

  const auto r1 = Build("sharded:4:obliv", cfg, items);
  const auto r2 = Build("sharded:4:obliv", cfg, items);
  const Sample& s1 = r1->AsSample()->sample();
  const Sample& s2 = r2->AsSample()->sample();
  ASSERT_EQ(s1.size(), s2.size());
  EXPECT_DOUBLE_EQ(s1.tau(), s2.tau());
  for (std::size_t i = 0; i < s1.size(); ++i) {
    EXPECT_EQ(s1.entries()[i].id, s2.entries()[i].id) << i;
    EXPECT_DOUBLE_EQ(s1.entries()[i].weight, s2.entries()[i].weight) << i;
  }

  // A different shard count is a different (still unbiased) scheme.
  const auto r3 = Build("sharded:2:obliv", cfg, items);
  EXPECT_NE(r3->AsSample()->sample().tau(), s1.tau());
}

TEST(Sharded, PerItemAddMatchesAddBatch) {
  Rng data_rng(44);
  const auto items = RandomItems(9000, 1 << 12, &data_rng);
  SummarizerConfig cfg;
  cfg.s = 200.0;
  cfg.seed = 5;

  auto one = MakeSummarizer("sharded:3:obliv", cfg);
  for (const auto& it : items) one->Add(it);
  auto batch = MakeSummarizer("sharded:3:obliv", cfg);
  batch->AddBatch(items);

  const auto ra = one->Finalize();
  const auto rb = batch->Finalize();
  const Sample& sa = ra->AsSample()->sample();
  const Sample& sb = rb->AsSample()->sample();
  ASSERT_EQ(sa.size(), sb.size());
  EXPECT_DOUBLE_EQ(sa.tau(), sb.tau());
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa.entries()[i].id, sb.entries()[i].id);
  }
}

TEST(Sharded, SingleShardStillGoesThroughWorker) {
  Rng data_rng(45);
  const auto items = RandomItems(5000, 1 << 12, &data_rng);
  SummarizerConfig cfg;
  cfg.s = 100.0;
  const auto summary = Build("sharded:1:obliv", cfg, items);
  EXPECT_EQ(summary->SizeInElements(), 100u);
  EXPECT_EQ(summary->Name(), "sharded:1:obliv");
}

TEST(Sharded, NestedShardingComposes) {
  Rng data_rng(46);
  const auto items = RandomItems(12000, 1 << 12, &data_rng);
  Weight exact_total = 0.0;
  for (const auto& it : items) exact_total += it.weight;
  SummarizerConfig cfg;
  cfg.s = 300.0;
  const auto summary = Build("sharded:2:sharded:2:obliv", cfg, items);
  EXPECT_NEAR(summary->AsSample()->sample().EstimateTotal() / exact_total,
              1.0, 1e-9);
}

TEST(Sharded, NestedPartitionsAreIndependent) {
  // The partition hash is seed-salted, so an inner wrapper (whose seed is
  // forked from the outer one) spreads an outer shard's items across all
  // of its shards even when the shard counts share a factor. With an
  // unsalted Mix64(id) % N this degenerates: every id an outer 2-way
  // partition routes to shard b would land on inner shard b again, and
  // the other inner shard would receive nothing.
  const std::uint64_t outer_seed = 11;
  for (int outer_shard = 0; outer_shard < 2; ++outer_shard) {
    const std::uint64_t inner_seed =
        ForkSeed(outer_seed, static_cast<std::uint64_t>(outer_shard));
    int inner_counts[2] = {0, 0};
    for (KeyId id = 0; id < 20000; ++id) {
      if (ShardIndex(id, outer_seed, 2) !=
          static_cast<std::size_t>(outer_shard)) {
        continue;
      }
      ++inner_counts[ShardIndex(id, inner_seed, 2)];
    }
    const int total = inner_counts[0] + inner_counts[1];
    ASSERT_GT(total, 8000);
    // Roughly balanced spread, not all-or-nothing.
    EXPECT_GT(inner_counts[0], total / 3) << "outer shard " << outer_shard;
    EXPECT_GT(inner_counts[1], total / 3) << "outer shard " << outer_shard;
  }
}

TEST(Sharded, AddCoordsRoutesKeyedPointsAcrossShards) {
  // The wrapper numbers AddCoords points with a wrapper-global insertion
  // counter and replays them into the shard builders through
  // AddCoordsKeyed, so "sharded:<N>:nd" supports d > 2 ingest: ids are
  // unique across shards and index the original stream, the total is
  // preserved exactly, and a fixed (seed, shard count) reproduces the
  // summary.
  constexpr int kDims = 3;
  constexpr std::size_t kN = 20000;
  Rng gen(77);
  std::vector<Coord> coords(kN * kDims);
  std::vector<Weight> weights(kN);
  Weight total = 0.0;
  for (std::size_t i = 0; i < kN; ++i) {
    for (int a = 0; a < kDims; ++a) {
      coords[i * kDims + static_cast<std::size_t>(a)] = gen.Next() & 0x3FFF;
    }
    weights[i] = 1.0 + static_cast<double>(gen.Next() & 0xFF);
    total += weights[i];
  }
  SummarizerConfig cfg;
  cfg.s = 500.0;
  cfg.seed = 4242;
  cfg.structure = StructureSpec::Nd(kDims);
  auto build = [&] {
    auto builder = MakeSummarizer("sharded:2:nd", cfg);
    for (std::size_t i = 0; i < kN; ++i) {
      builder->AddCoords(coords.data() + i * kDims, kDims, weights[i]);
    }
    return builder->Finalize();
  };
  const auto summary = build();
  ASSERT_NE(summary->AsSample(), nullptr);
  const Sample& sample = summary->AsSample()->sample();
  EXPECT_NEAR(sample.EstimateTotal() / total, 1.0, 1e-9);
  EXPECT_NEAR(static_cast<double>(summary->SizeInElements()), 500.0, 1.0);
  // Every sampled entry carries the global stream index as its id and the
  // first two axes of its point; VarOpt sampling/merging only ever raises
  // a kept entry's weight (to the inclusion threshold), never lowers it.
  std::set<KeyId> seen;
  for (const auto& e : sample.entries()) {
    ASSERT_LT(e.id, kN);
    EXPECT_TRUE(seen.insert(e.id).second) << "duplicate id " << e.id;
    EXPECT_GE(e.weight, weights[e.id]);
    EXPECT_EQ(e.pt.x, coords[e.id * kDims]);
    EXPECT_EQ(e.pt.y, coords[e.id * kDims + 1]);
  }
  // Both shards must have contributed (the partition hash spreads ids).
  int in_shard[2] = {0, 0};
  for (const auto& e : sample.entries()) {
    ++in_shard[ShardIndex(e.id, cfg.seed, 2)];
  }
  EXPECT_GT(in_shard[0], 0);
  EXPECT_GT(in_shard[1], 0);
  // Deterministic reproduction: same (seed, shards, stream) -> same sample.
  const auto again = build();
  const auto& a = sample.entries();
  const auto& b = again->AsSample()->sample().entries();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].weight, b[i].weight);
  }
}

TEST(Sharded, FractionalSizeRejected) {
  SummarizerConfig cfg;
  cfg.s = 0.5;  // merged budget is integral
  EXPECT_THROW(MakeSummarizer("sharded:2:product", cfg),
               std::invalid_argument);
}

TEST(Sharded, InnerFinalizeErrorPropagates) {
  // The nd inner method rejects mixing dims at Add time inside the worker;
  // the error must surface from Finalize, not crash a thread — and when
  // the bad input reaches several shards, Finalize must report all of
  // them, with the shard index and inner key in each message.
  SummarizerConfig cfg;
  cfg.s = 10.0;
  cfg.structure = StructureSpec::Nd(3);  // dims > 2: Add throws in worker
  auto builder = MakeSummarizer("sharded:2:nd", cfg);
  std::vector<WeightedKey> items;
  for (KeyId i = 0; i < 20000; ++i) items.push_back({i, 1.0, {i, i}});
  try {
    builder->AddBatch(items);
  } catch (const std::runtime_error&) {
    // The producer may observe the poisoned state mid-batch (which shards
    // already received a batch by then is scheduling-dependent); Finalize
    // below still reports every shard that did fail.
  }
  try {
    builder->Finalize();
    FAIL() << "Finalize did not throw";
  } catch (const ShardedIngestError& e) {
    ASSERT_GE(e.failures().size(), 1u);
    for (const ShardFailure& f : e.failures()) {
      EXPECT_NE(f.message.find("inner \"nd\""), std::string::npos)
          << f.message;
      EXPECT_NE(f.message.find("shard "), std::string::npos) << f.message;
    }
    // The deterministic both-shards case (fault injection at the finalize
    // site, where every worker is guaranteed to arrive) lives in
    // tests/chaos/chaos_test.cc.
  }
}

TEST(Sharded, AddAfterFinalizeThrows) {
  // A finalized builder is spent; Add must fail fast instead of queueing
  // into (or blocking on) closed worker queues.
  SummarizerConfig cfg;
  cfg.s = 10.0;
  auto builder = MakeSummarizer("sharded:2:obliv", cfg);
  builder->Add({0, 1.0, {0, 0}});
  (void)builder->Finalize();
  EXPECT_THROW(builder->Add({1, 1.0, {1, 0}}), std::logic_error);
}

TEST(Sharded, FinalizeAfterFinalizeThrows) {
  // Coverage gap found in audit: a second Finalize on a spent builder used
  // to silently merge moved-from shard samples into a bogus summary. The
  // contract is fail-fast, like Add-after-Finalize.
  SummarizerConfig cfg;
  cfg.s = 10.0;
  auto builder = MakeSummarizer("sharded:2:obliv", cfg);
  builder->Add({0, 1.0, {0, 0}});
  (void)builder->Finalize();
  EXPECT_THROW(builder->Finalize(), std::logic_error);
}

TEST(Sharded, ResetAfterFinalizeAllowsSecondBuild) {
  Rng rng(73);
  const auto items = RandomItems(400, 1 << 10, &rng);
  SummarizerConfig cfg;
  cfg.s = 40.0;
  cfg.seed = 515;

  auto builder = MakeSummarizer("sharded:2:obliv", cfg);
  builder->AddBatch(items);
  (void)builder->Finalize();

  // Reset un-spends the builder: the recycled build must match a fresh
  // builder with the same config and seed exactly.
  ASSERT_TRUE(builder->Reset(515));
  builder->AddBatch(items);
  const auto recycled = builder->Finalize();

  auto fresh = MakeSummarizer("sharded:2:obliv", cfg);
  fresh->AddBatch(items);
  const auto expected = fresh->Finalize();

  const Sample& a = recycled->AsSample()->sample();
  const Sample& b = expected->AsSample()->sample();
  ASSERT_EQ(a.size(), b.size());
  EXPECT_DOUBLE_EQ(a.tau(), b.tau());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.entries()[i].id, b.entries()[i].id) << i;
  }
}

TEST(Sharded, BackPressureWaitLandsInTelemetryHistogram) {
  // One shard with a delay schedule on the worker's batch drain: the
  // bounded hand-off queue fills, the producer blocks in Enqueue, and the
  // blocked wall time must land in sas.shard.backpressure_wait_ns (the
  // histogram records only genuine blocking, never the uncontended path).
  telemetry::Histogram* wait_hist =
      telemetry::GetHistogram("sas.shard.backpressure_wait_ns");
  const std::uint64_t waits_before = wait_hist->count();
  const bool was_enabled = telemetry::Enabled();
  telemetry::SetEnabled(true);

  Rng data_rng(48);
  const auto items = RandomItems(40000, 1 << 12, &data_rng);
  SummarizerConfig cfg;
  cfg.s = 200.0;
  cfg.seed = 5;
  cfg.faults = std::make_shared<FaultInjector>();
  cfg.faults->Configure("shard.worker.batch=delay@1/1:1500");
  {
    auto builder = MakeSummarizer("sharded:1:obliv", cfg);
    builder->AddBatch(items);
    (void)builder->Finalize();
  }
  telemetry::SetEnabled(was_enabled);
  EXPECT_GT(wait_hist->count(), waits_before);
}

TEST(Sharded, DestructionWithoutFinalizeJoinsWorkers) {
  Rng data_rng(47);
  const auto items = RandomItems(20000, 1 << 12, &data_rng);
  SummarizerConfig cfg;
  cfg.s = 100.0;
  {
    auto builder = MakeSummarizer("sharded:4:obliv", cfg);
    builder->AddBatch(items);
    // No Finalize: the destructor must close queues and join cleanly.
  }
  SUCCEED();
}

}  // namespace
}  // namespace sas
