// Summarizer/RangeSummary surface tests: Add vs AddBatch equivalence, the
// baseline adapters (wavelet / q-digest / sketch / exact), Describe()
// metadata, and the streaming two-pass builders.

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <vector>

#include "api/adapters.h"
#include "api/registry.h"
#include "core/random.h"
#include "structure/hierarchy.h"
#include "summaries/exact_summary.h"
#include "summaries/wavelet2d.h"
#include "test_util.h"

namespace sas {
namespace {

using test::RandomItems;

MultiRangeQuery BoxQuery(Coord hi) {
  MultiRangeQuery q;
  q.boxes.push_back({{0, hi}, {0, hi}});
  return q;
}

TEST(Summarizer, AddBatchEqualsAddLoop) {
  Rng rng(1);
  const auto items = RandomItems(200, 1 << 10, &rng);

  SummarizerConfig cfg;
  cfg.s = 30.0;
  cfg.seed = 99;
  cfg.structure = StructureSpec::Product();

  auto one = MakeSummarizer(keys::kProduct, cfg);
  for (const auto& it : items) one->Add(it);
  const auto via_add = one->Finalize();

  auto batch = MakeSummarizer(keys::kProduct, cfg);
  batch->AddBatch(items);
  const auto via_batch = batch->Finalize();

  const auto q = BoxQuery(1 << 9);
  EXPECT_DOUBLE_EQ(via_add->EstimateQuery(q), via_batch->EstimateQuery(q));
  EXPECT_EQ(via_add->SizeInElements(), via_batch->SizeInElements());
}

TEST(Summarizer, ExactAdapterMatchesBruteForce) {
  Rng rng(2);
  const auto items = RandomItems(150, 1 << 10, &rng);
  SummarizerConfig cfg;
  cfg.s = 1.0;  // ignored by exact
  auto builder = MakeSummarizer(keys::kExact, cfg);
  builder->AddBatch(items);
  const auto summary = builder->Finalize();
  EXPECT_EQ(summary->Name(), keys::kExact);
  EXPECT_EQ(summary->SizeInElements(), items.size());
  const auto q = BoxQuery(1 << 9);
  EXPECT_DOUBLE_EQ(summary->EstimateQuery(q), ExactQuerySum(items, q));
}

TEST(Summarizer, WaveletAdapterMatchesDirectConstruction) {
  Rng rng(3);
  const auto items = RandomItems(200, 1 << 10, &rng);
  SummarizerConfig cfg;
  cfg.s = 64.0;
  cfg.bits_x = 10;
  cfg.bits_y = 10;
  auto builder = MakeSummarizer(keys::kWavelet, cfg);
  builder->AddBatch(items);
  const auto summary = builder->Finalize();
  EXPECT_EQ(summary->Name(), keys::kWavelet);

  const Wavelet2D direct(items, 64, 10, 10);
  const auto q = BoxQuery(1 << 8);
  EXPECT_DOUBLE_EQ(summary->EstimateQuery(q), direct.EstimateQuery(q));
  EXPECT_EQ(summary->SizeInElements(), direct.size());
}

TEST(Summarizer, SketchAdapterIsDeterministicPerSeed) {
  Rng rng(4);
  const auto items = RandomItems(200, 1 << 10, &rng);
  SummarizerConfig cfg;
  cfg.s = 512.0;
  cfg.seed = 1234;
  cfg.bits_x = 10;
  cfg.bits_y = 10;
  const auto q = BoxQuery(1 << 9);

  auto build = [&] {
    auto builder = MakeSummarizer(keys::kSketch, cfg);
    builder->AddBatch(items);
    return builder->Finalize();
  };
  const auto a = build();
  const auto b = build();
  EXPECT_EQ(a->Name(), keys::kSketch);
  EXPECT_DOUBLE_EQ(a->EstimateQuery(q), b->EstimateQuery(q));
}

TEST(Summarizer, TwoPassBuildersGiveExactSizes) {
  Rng rng(5);
  const auto items = RandomItems(400, 1 << 12, &rng);
  Rng tree_rng(6);
  const Hierarchy h = Hierarchy::Random(items.size(), 4, &tree_rng);
  std::vector<WeightedKey> hier_items;
  for (KeyId k = 0; k < items.size(); ++k) {
    hier_items.push_back({k, items[k].weight, {k, 0}});
  }
  std::vector<int> range_of(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    range_of[i] = static_cast<int>(i % 7);
  }

  struct Case {
    const char* key;
    StructureSpec spec;
    const std::vector<WeightedKey>* data;
  };
  const std::vector<Case> cases{
      {keys::kAware, StructureSpec::Product(), &items},
      {keys::kOrderTwoPass, StructureSpec::Order(), &items},
      {keys::kHierarchyTwoPass, StructureSpec::OverHierarchy(&h),
       &hier_items},
      {keys::kDisjointTwoPass, StructureSpec::Disjoint(range_of, 7),
       &items},
  };
  for (const auto& c : cases) {
    SummarizerConfig cfg;
    cfg.s = 40.0;
    cfg.seed = 77;
    cfg.structure = c.spec;
    auto builder = MakeSummarizer(c.key, cfg);
    builder->AddBatch(*c.data);
    const auto summary = builder->Finalize();
    EXPECT_EQ(summary->SizeInElements(), 40u) << c.key;
    EXPECT_EQ(summary->Name(), c.key);
    ASSERT_NE(summary->AsSample(), nullptr) << c.key;
  }
}

TEST(Summarizer, AddCoordsOnlySupportedByNd) {
  SummarizerConfig cfg;
  cfg.s = 5.0;
  auto product = MakeSummarizer(keys::kProduct, cfg);
  const Coord pt[2] = {1, 2};
  EXPECT_THROW(product->AddCoords(pt, 2, 1.0), std::logic_error);

  cfg.structure = StructureSpec::Nd(3);
  auto nd = MakeSummarizer(keys::kNd, cfg);
  const Coord pt3[3] = {1, 2, 3};
  for (int i = 0; i < 30; ++i) {
    const Coord p[3] = {pt3[0] + i, pt3[1] + 2 * i, pt3[2] + 3 * i};
    nd->AddCoords(p, 3, 1.0 + i);
  }
  const auto summary = nd->Finalize();
  EXPECT_EQ(summary->SizeInElements(), 5u);
}

TEST(Summarizer, NdRejectsMixingAddAndAddCoordsEitherOrder) {
  SummarizerConfig cfg;
  cfg.s = 5.0;
  cfg.structure = StructureSpec::Nd(2);
  const Coord p[2] = {1, 2};

  auto coords_first = MakeSummarizer(keys::kNd, cfg);
  coords_first->AddCoords(p, 2, 1.0);
  EXPECT_THROW(coords_first->Add({0, 1.0, {3, 4}}), std::logic_error);

  auto add_first = MakeSummarizer(keys::kNd, cfg);
  add_first->Add({0, 1.0, {3, 4}});
  EXPECT_THROW(add_first->AddCoords(p, 2, 1.0), std::logic_error);
}

TEST(RangeSummary, DescribeReportsMethodAndFamily) {
  Rng rng(7);
  const auto items = RandomItems(100, 1 << 10, &rng);

  SummarizerConfig cfg;
  cfg.s = 20.0;
  cfg.bits_x = 10;
  cfg.bits_y = 10;

  auto build = [&](const char* key) {
    auto builder = MakeSummarizer(key, cfg);
    builder->AddBatch(items);
    return builder->Finalize();
  };

  const auto sample = build(keys::kProduct);
  const SummaryInfo sample_info = sample->Describe();
  EXPECT_EQ(sample_info.method, keys::kProduct);
  EXPECT_EQ(sample_info.family, "sample");
  EXPECT_EQ(sample_info.size_elements, sample->SizeInElements());
  bool has_tau = false;
  for (const auto& [k, v] : sample_info.params) has_tau |= k == "tau";
  EXPECT_TRUE(has_tau);

  EXPECT_EQ(build(keys::kWavelet)->Describe().family, "deterministic");
  EXPECT_EQ(build(keys::kSketch)->Describe().family, "sketch");
  EXPECT_EQ(build(keys::kExact)->Describe().family, "exact");
}

}  // namespace
}  // namespace sas
