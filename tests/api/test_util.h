// Shared helpers for the api test suites.

#ifndef SAS_TESTS_API_TEST_UTIL_H_
#define SAS_TESTS_API_TEST_UTIL_H_

#include <set>
#include <utility>
#include <vector>

#include "core/random.h"
#include "core/types.h"

namespace sas::test {

/// n distinct 2-D points with Pareto(1.3) weights and sequential key ids.
inline std::vector<WeightedKey> RandomItems(std::size_t n, Coord domain,
                                            Rng* rng) {
  std::set<std::pair<Coord, Coord>> seen;
  while (seen.size() < n) {
    seen.insert({rng->NextBounded(domain), rng->NextBounded(domain)});
  }
  std::vector<WeightedKey> items;
  KeyId id = 0;
  for (const auto& [x, y] : seen) {
    items.push_back({id++, rng->NextPareto(1.3), {x, y}});
  }
  return items;
}

}  // namespace sas::test

#endif  // SAS_TESTS_API_TEST_UTIL_H_
