// Registry round-trip tests: for a fixed seed, MakeSummarizer must produce
// summaries identical to direct calls of the legacy free functions in
// src/aware/ (the adapters are thin and deterministic), plus error-path
// coverage for unknown keys and invalid configs.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>
#include <vector>

#include "api/registry.h"
#include "aware/disjoint_summarizer.h"
#include "aware/hierarchy_summarizer.h"
#include "aware/kd_nd.h"
#include "aware/order_summarizer.h"
#include "aware/product_summarizer.h"
#include "core/random.h"
#include "structure/hierarchy.h"
#include "test_util.h"

namespace sas {
namespace {

using test::RandomItems;

std::vector<KeyId> SortedIds(const Sample& sample) {
  std::vector<KeyId> ids;
  for (const auto& e : sample.entries()) ids.push_back(e.id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

const SampleSummary& BuildSample(const char* key,
                                 const SummarizerConfig& cfg,
                                 const std::vector<WeightedKey>& items,
                                 std::unique_ptr<RangeSummary>* holder) {
  auto builder = MakeSummarizer(key, cfg);
  builder->AddBatch(items);
  *holder = builder->Finalize();
  const SampleSummary* sample = (*holder)->AsSample();
  EXPECT_NE(sample, nullptr);
  return *sample;
}

void ExpectSameSummary(const SampleSummary& got, const SummarizeResult& want,
                       const std::vector<WeightedKey>& items) {
  EXPECT_DOUBLE_EQ(got.tau(), want.tau);
  EXPECT_EQ(SortedIds(got.sample()), SortedIds(want.sample));
  ASSERT_EQ(got.probs().size(), want.probs.size());
  for (std::size_t i = 0; i < want.probs.size(); ++i) {
    EXPECT_DOUBLE_EQ(got.probs()[i], want.probs[i]) << "prob " << i;
  }
  // Estimates agree exactly on a spread of boxes.
  for (Coord hi : {Coord{1} << 8, Coord{1} << 10, Coord{1} << 12}) {
    const Box box{{0, hi}, {0, hi}};
    MultiRangeQuery q;
    q.boxes.push_back(box);
    EXPECT_DOUBLE_EQ(got.EstimateQuery(q), want.sample.EstimateQuery(q));
  }
  EXPECT_EQ(got.SizeInElements(), want.sample.size());
  (void)items;
}

TEST(RegistryEquivalence, OrderMatchesLegacyFreeFunction) {
  Rng data_rng(11);
  const auto items = RandomItems(300, 1 << 12, &data_rng);
  for (std::uint64_t seed : {1u, 7u, 42u}) {
    SummarizerConfig cfg;
    cfg.s = 40.0;
    cfg.seed = seed;
    cfg.structure = StructureSpec::Order();
    std::unique_ptr<RangeSummary> holder;
    const SampleSummary& got = BuildSample(keys::kOrder, cfg, items, &holder);

    Rng rng(seed);
    const SummarizeResult want = OrderSummarize(items, 40.0, &rng);
    ExpectSameSummary(got, want, items);
    EXPECT_EQ(got.Name(), keys::kOrder);
  }
}

TEST(RegistryEquivalence, ProductMatchesLegacyFreeFunction) {
  Rng data_rng(12);
  const auto items = RandomItems(300, 1 << 12, &data_rng);
  for (std::uint64_t seed : {2u, 9u, 77u}) {
    SummarizerConfig cfg;
    cfg.s = 50.0;
    cfg.seed = seed;
    cfg.structure = StructureSpec::Product();
    std::unique_ptr<RangeSummary> holder;
    const SampleSummary& got =
        BuildSample(keys::kProduct, cfg, items, &holder);

    Rng rng(seed);
    const SummarizeResult want = ProductSummarize(items, 50.0, &rng);
    ExpectSameSummary(got, want, items);
    EXPECT_EQ(got.Name(), keys::kProduct);
  }
}

TEST(RegistryEquivalence, HierarchyMatchesLegacyFreeFunction) {
  Rng data_rng(13);
  const std::size_t n = 200;
  Rng tree_rng(5);
  const Hierarchy h = Hierarchy::Random(n, 4, &tree_rng);
  std::vector<WeightedKey> items;
  for (KeyId k = 0; k < n; ++k) {
    items.push_back({k, data_rng.NextPareto(1.2), {k, 0}});
  }
  for (std::uint64_t seed : {3u, 21u}) {
    SummarizerConfig cfg;
    cfg.s = 25.0;
    cfg.seed = seed;
    cfg.structure = StructureSpec::OverHierarchy(&h);
    std::unique_ptr<RangeSummary> holder;
    const SampleSummary& got =
        BuildSample(keys::kHierarchy, cfg, items, &holder);

    Rng rng(seed);
    const SummarizeResult want = HierarchySummarize(items, h, 25.0, &rng);
    ExpectSameSummary(got, want, items);
    EXPECT_EQ(got.Name(), keys::kHierarchy);
  }
}

TEST(RegistryEquivalence, DisjointMatchesLegacyFreeFunction) {
  Rng data_rng(14);
  const std::size_t n = 240;
  const int num_ranges = 8;
  std::vector<WeightedKey> items;
  std::vector<int> range_of(n);
  for (KeyId k = 0; k < n; ++k) {
    items.push_back({k, data_rng.NextPareto(1.2), {k, 0}});
    range_of[k] = static_cast<int>(k) % num_ranges;
  }
  for (std::uint64_t seed : {4u, 33u}) {
    SummarizerConfig cfg;
    cfg.s = 30.0;
    cfg.seed = seed;
    cfg.structure = StructureSpec::Disjoint(range_of, num_ranges);
    std::unique_ptr<RangeSummary> holder;
    const SampleSummary& got =
        BuildSample(keys::kDisjoint, cfg, items, &holder);

    Rng rng(seed);
    const SummarizeResult want =
        DisjointSummarize(items, range_of, num_ranges, 30.0, &rng);
    ExpectSameSummary(got, want, items);
    EXPECT_EQ(got.Name(), keys::kDisjoint);
  }
}

TEST(RegistryEquivalence, NdMatchesLegacyFreeFunction) {
  Rng data_rng(15);
  const auto items = RandomItems(250, 1 << 10, &data_rng);
  // Flatten exactly as the adapter's Add does: x then y per item.
  std::vector<Coord> coords;
  std::vector<Weight> weights;
  for (const auto& it : items) {
    coords.push_back(it.pt.x);
    coords.push_back(it.pt.y);
    weights.push_back(it.weight);
  }
  for (std::uint64_t seed : {5u, 55u}) {
    SummarizerConfig cfg;
    cfg.s = 35.0;
    cfg.seed = seed;
    cfg.structure = StructureSpec::Nd(2);
    std::unique_ptr<RangeSummary> holder;
    const SampleSummary& got = BuildSample(keys::kNd, cfg, items, &holder);

    Rng rng(seed);
    const ResultNd want = ProductSummarizeNd(coords, 2, weights, 35.0, &rng);
    EXPECT_DOUBLE_EQ(got.tau(), want.tau);
    std::vector<KeyId> want_ids;
    for (std::size_t i : want.chosen) {
      want_ids.push_back(items[i].id);
    }
    std::sort(want_ids.begin(), want_ids.end());
    EXPECT_EQ(SortedIds(got.sample()), want_ids);
    ASSERT_EQ(got.probs().size(), want.probs.size());
    for (std::size_t i = 0; i < want.probs.size(); ++i) {
      EXPECT_DOUBLE_EQ(got.probs()[i], want.probs[i]);
    }
    EXPECT_EQ(got.Name(), keys::kNd);
  }
}

TEST(RegistryErrors, UnknownKeyThrows) {
  SummarizerConfig cfg;
  EXPECT_THROW(MakeSummarizer("no-such-method", cfg), std::invalid_argument);
  EXPECT_FALSE(IsRegisteredSummarizer("no-such-method"));
}

TEST(RegistryErrors, InvalidConfigThrows) {
  SummarizerConfig cfg;
  cfg.s = 0.0;  // size must be positive
  EXPECT_THROW(MakeSummarizer(keys::kProduct, cfg), std::invalid_argument);

  cfg = SummarizerConfig{};
  cfg.sprime_factor = 0.5;  // oversampling below 1
  EXPECT_THROW(MakeSummarizer(keys::kAware, cfg), std::invalid_argument);

  cfg = SummarizerConfig{};  // hierarchy method without a hierarchy
  EXPECT_THROW(MakeSummarizer(keys::kHierarchy, cfg), std::invalid_argument);
  EXPECT_THROW(MakeSummarizer(keys::kHierarchyTwoPass, cfg),
               std::invalid_argument);

  cfg = SummarizerConfig{};  // disjoint method without ranges
  EXPECT_THROW(MakeSummarizer(keys::kDisjoint, cfg), std::invalid_argument);

  cfg = SummarizerConfig{};
  cfg.structure = StructureSpec::Nd(0);  // bad dimension
  EXPECT_THROW(MakeSummarizer(keys::kNd, cfg), std::invalid_argument);

  cfg = SummarizerConfig{};
  cfg.bits_x = 0;  // bad domain bits for the deterministic baselines
  EXPECT_THROW(MakeSummarizer(keys::kWavelet, cfg), std::invalid_argument);
  EXPECT_THROW(MakeSummarizer(keys::kQDigest, cfg), std::invalid_argument);
  EXPECT_THROW(MakeSummarizer(keys::kSketch, cfg), std::invalid_argument);

  // Fractional s is legal for the samplers (floor/ceil sample sizes) but
  // would truncate to a zero budget for the integral-budget methods.
  cfg = SummarizerConfig{};
  cfg.s = 0.5;
  EXPECT_THROW(MakeSummarizer(keys::kObliv, cfg), std::invalid_argument);
  EXPECT_THROW(MakeSummarizer(keys::kWavelet, cfg), std::invalid_argument);
  EXPECT_THROW(MakeSummarizer(keys::kSketch, cfg), std::invalid_argument);
  EXPECT_NO_THROW(MakeSummarizer(keys::kProduct, cfg));
}

TEST(RegistryErrors, MalformedNdConfigsThrow) {
  // Dimension bounds are validated eagerly at MakeSummarizer time.
  for (int dims : {-1, 0, 17, 100}) {
    SummarizerConfig cfg;
    cfg.structure = StructureSpec::Nd(dims);
    EXPECT_THROW(MakeSummarizer(keys::kNd, cfg), std::invalid_argument)
        << "dims=" << dims;
  }
  // Every dims inside [1, 16] constructs.
  for (int dims : {1, 2, 3, 16}) {
    SummarizerConfig cfg;
    cfg.structure = StructureSpec::Nd(dims);
    EXPECT_NO_THROW(MakeSummarizer(keys::kNd, cfg)) << "dims=" << dims;
  }
}

TEST(RegistryErrors, NdIngestContractViolationsThrow) {
  SummarizerConfig cfg;
  cfg.structure = StructureSpec::Nd(3);

  // AddCoords with a dims that does not match the structure descriptor.
  {
    auto builder = MakeSummarizer(keys::kNd, cfg);
    const Coord pt[4] = {1, 2, 3, 4};
    EXPECT_THROW(builder->AddCoords(pt, 4, 1.0), std::invalid_argument);
  }
  // Add carries only two coordinates; dims > 2 must use AddCoords.
  {
    auto builder = MakeSummarizer(keys::kNd, cfg);
    EXPECT_THROW(builder->Add({0, 1.0, {5, 6}}), std::logic_error);
  }
  // Mixing the keyed and coordinate ingest paths is rejected either way.
  {
    SummarizerConfig cfg2d;
    cfg2d.structure = StructureSpec::Nd(2);
    auto builder = MakeSummarizer(keys::kNd, cfg2d);
    builder->Add({0, 1.0, {5, 6}});
    const Coord pt[2] = {1, 2};
    EXPECT_THROW(builder->AddCoords(pt, 2, 1.0), std::logic_error);

    auto builder2 = MakeSummarizer(keys::kNd, cfg2d);
    builder2->AddCoords(pt, 2, 1.0);
    EXPECT_THROW(builder2->Add({0, 1.0, {5, 6}}), std::logic_error);
  }
  // Non-nd methods have no coordinate ingest path at all.
  {
    SummarizerConfig plain;
    auto builder = MakeSummarizer(keys::kObliv, plain);
    const Coord pt[3] = {1, 2, 3};
    EXPECT_THROW(builder->AddCoords(pt, 3, 1.0), std::logic_error);
  }
}

TEST(Registry, ListsAllCanonicalKeys) {
  const auto registered = RegisteredSummarizers();
  for (const char* key :
       {keys::kOrder, keys::kHierarchy, keys::kDisjoint, keys::kProduct,
        keys::kNd, keys::kAware, keys::kOrderTwoPass,
        keys::kHierarchyTwoPass, keys::kDisjointTwoPass, keys::kObliv,
        keys::kWavelet, keys::kQDigest, keys::kSketch, keys::kExact}) {
    EXPECT_TRUE(std::count(registered.begin(), registered.end(), key))
        << key;
    EXPECT_TRUE(IsRegisteredSummarizer(key)) << key;
  }
}

TEST(Registry, CustomRegistrationRoundTrips) {
  // A user-registered method becomes constructible; duplicate keys are
  // rejected without clobbering the registered factory.
  static int builds = 0;
  class TrivialBuilder : public Summarizer {
   public:
    using Summarizer::Summarizer;
    void Add(const WeightedKey& item) override { items_.push_back(item); }
    std::unique_ptr<RangeSummary> Finalize() override {
      ++builds;
      return std::make_unique<SampleSummary>("custom-test",
                                             Sample(0.0, items_));
    }

   private:
    std::vector<WeightedKey> items_;
  };

  ASSERT_TRUE(RegisterSummarizer(
      "custom-test", [](const SummarizerConfig& cfg) {
        return std::unique_ptr<Summarizer>(new TrivialBuilder(cfg));
      }));
  EXPECT_FALSE(RegisterSummarizer(
      "custom-test",
      [](const SummarizerConfig&) -> std::unique_ptr<Summarizer> {
        return nullptr;
      }));
  EXPECT_FALSE(RegisterSummarizer(
      keys::kProduct,
      [](const SummarizerConfig&) -> std::unique_ptr<Summarizer> {
        return nullptr;
      }));

  SummarizerConfig cfg;
  auto builder = MakeSummarizer("custom-test", cfg);
  builder->Add({0, 1.0, {0, 0}});
  const auto summary = builder->Finalize();
  EXPECT_EQ(summary->Name(), "custom-test");
  EXPECT_EQ(summary->SizeInElements(), 1u);
  EXPECT_EQ(builds, 1);
}

}  // namespace
}  // namespace sas
