// Ingest-boundary validation across every registry key family: strict
// builds reject non-finite/negative weights with std::invalid_argument
// before any state changes; quarantine builds drop and count them in
// Describe() and produce a summary bit-identical to the clean build.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/registry.h"
#include "core/random.h"
#include "structure/hierarchy.h"
#include "test_util.h"
#include "window/windowed.h"

namespace sas {
namespace {

using test::RandomItems;

constexpr Coord kDomain = 1 << 10;
constexpr std::size_t kN = 120;

/// An id no generated item uses, so a rejected record can never collide
/// with (or reorder) the accepted id sequence of the id-ordered methods.
constexpr KeyId kBadId = 999983;

const double kBadWeights[] = {
    std::numeric_limits<double>::quiet_NaN(),
    std::numeric_limits<double>::infinity(),
    -std::numeric_limits<double>::infinity(),
    -1.0,
};

/// One registry key family plus the input/structure it needs.
struct MethodCase {
  std::string key;
  const std::vector<WeightedKey>* items;
  StructureSpec structure;
};

/// Shared inputs for the case table: generic 2-D items, plus the id-ordered
/// variant the hierarchy methods require (item k at hierarchy leaf k), plus
/// the flat-range assignment of the disjoint methods.
struct Inputs {
  std::vector<WeightedKey> items;
  std::vector<WeightedKey> hier_items;
  Hierarchy hierarchy;
  std::vector<int> range_of;

  Inputs() : hierarchy(MakeTree()) {
    Rng rng(11);
    items = RandomItems(kN, kDomain, &rng);
    for (KeyId k = 0; k < kN; ++k) {
      hier_items.push_back({k, items[k].weight, {k, 0}});
    }
    for (std::size_t i = 0; i < kN; ++i) {
      range_of.push_back(static_cast<int>(i % 7));
    }
  }

  static Hierarchy MakeTree() {
    Rng tree_rng(12);
    return Hierarchy::Random(kN, 4, &tree_rng);
  }
};

std::vector<MethodCase> AllCases(const Inputs& in) {
  return {
      {"order", &in.items, StructureSpec::Order()},
      {"hierarchy", &in.hier_items, StructureSpec::OverHierarchy(&in.hierarchy)},
      {"disjoint", &in.items, StructureSpec::Disjoint(in.range_of, 7)},
      {"product", &in.items, StructureSpec::Product()},
      {"nd", &in.items, StructureSpec::Nd(2)},
      {"aware", &in.items, StructureSpec::Product()},
      {"order-2p", &in.items, StructureSpec::Order()},
      {"hierarchy-2p", &in.hier_items,
       StructureSpec::OverHierarchy(&in.hierarchy)},
      {"disjoint-2p", &in.items, StructureSpec::Disjoint(in.range_of, 7)},
      {"obliv", &in.items, StructureSpec::Product()},
      {"wavelet", &in.items, StructureSpec::Product()},
      {"qdigest", &in.items, StructureSpec::Product()},
      {"sketch", &in.items, StructureSpec::Product()},
      {"exact", &in.items, StructureSpec::Product()},
      {"sharded:2:obliv", &in.items, StructureSpec::Product()},
      {"windowed:10:2:obliv", &in.items, StructureSpec::Product()},
  };
}

SummarizerConfig BaseConfig(const MethodCase& c) {
  SummarizerConfig cfg;
  cfg.s = 32.0;
  cfg.seed = 4242;
  cfg.bits_x = 10;
  cfg.bits_y = 10;
  cfg.structure = c.structure;
  return cfg;
}

MultiRangeQuery FullDomain() {
  MultiRangeQuery q;
  q.boxes.push_back({{0, kDomain}, {0, kDomain}});
  return q;
}

TEST(IngestValidation, StrictThrowsOnEveryBadWeightAndStaysUsable) {
  const Inputs in;
  for (const MethodCase& c : AllCases(in)) {
    SCOPED_TRACE(c.key);
    auto builder = MakeSummarizer(c.key, BaseConfig(c));
    for (const WeightedKey& it : *c.items) builder->Add(it);
    for (double w : kBadWeights) {
      EXPECT_THROW(builder->Add({kBadId, w, {1, 1}}), std::invalid_argument)
          << "weight " << w;
    }
    // Strict rejection happens before any state changes: nothing was
    // counted as quarantined and the build completes as if the bad Adds
    // never happened.
    EXPECT_EQ(builder->Describe().accepted, kN);
    EXPECT_EQ(builder->Describe().rejected_weight, 0u);
    EXPECT_NO_THROW(builder->Finalize());
  }
}

TEST(IngestValidation, QuarantineCountsAndLeavesTheSummaryUntouched) {
  const Inputs in;
  const MultiRangeQuery q = FullDomain();
  for (const MethodCase& c : AllCases(in)) {
    SCOPED_TRACE(c.key);

    auto clean = MakeSummarizer(c.key, BaseConfig(c));
    for (const WeightedKey& it : *c.items) clean->Add(it);
    const auto clean_summary = clean->Finalize();

    SummarizerConfig cfg = BaseConfig(c);
    cfg.ingest_policy = IngestPolicy::kQuarantine;
    auto dirty = MakeSummarizer(c.key, cfg);
    std::size_t injected = 0;
    for (std::size_t i = 0; i < c.items->size(); ++i) {
      if (i % 10 == 0) {
        dirty->Add({kBadId, kBadWeights[injected % 4], {1, 1}});
        ++injected;
      }
      dirty->Add((*c.items)[i]);
    }
    EXPECT_EQ(dirty->Describe().accepted, kN);
    EXPECT_EQ(dirty->Describe().rejected_weight, injected);
    const auto dirty_summary = dirty->Finalize();

    // The quarantined records left no trace: with the same seed and the
    // same accepted sequence, the summaries estimate identically (the
    // randomized methods are bit-identical, the deterministic ones equal).
    EXPECT_DOUBLE_EQ(dirty_summary->EstimateQuery(q),
                     clean_summary->EstimateQuery(q));
    EXPECT_EQ(dirty_summary->SizeInElements(),
              clean_summary->SizeInElements());
  }
}

TEST(IngestValidation, AddBatchQuarantinesMidBatch) {
  const Inputs in;
  for (const char* key : {"obliv", "product", "sharded:2:obliv",
                          "windowed:10:2:obliv"}) {
    SCOPED_TRACE(key);
    SummarizerConfig cfg;
    cfg.s = 32.0;
    cfg.ingest_policy = IngestPolicy::kQuarantine;
    auto builder = MakeSummarizer(key, cfg);
    std::vector<WeightedKey> batch = in.items;
    batch[kN / 2].weight = std::numeric_limits<double>::quiet_NaN();
    batch[kN - 1].weight = -2.0;
    builder->AddBatch(batch);
    // The AllFinite fast path must have bailed to per-record admission.
    EXPECT_EQ(builder->Describe().accepted, kN - 2);
    EXPECT_EQ(builder->Describe().rejected_weight, 2u);
    EXPECT_NO_THROW(builder->Finalize());
  }
}

TEST(IngestValidation, AddCoordsValidatesWeightsToo) {
  SummarizerConfig cfg;
  cfg.s = 16.0;
  cfg.structure = StructureSpec::Nd(3);
  const Coord p[3] = {1, 2, 3};

  auto strict = MakeSummarizer("nd", cfg);
  strict->AddCoords(p, 3, 1.0);
  EXPECT_THROW(
      strict->AddCoords(p, 3, std::numeric_limits<double>::quiet_NaN()),
      std::invalid_argument);
  EXPECT_EQ(strict->Describe().accepted, 1u);

  cfg.ingest_policy = IngestPolicy::kQuarantine;
  auto lax = MakeSummarizer("nd", cfg);
  lax->AddCoords(p, 3, 1.0);
  lax->AddCoords(p, 3, -std::numeric_limits<double>::infinity());
  EXPECT_EQ(lax->Describe().accepted, 1u);
  EXPECT_EQ(lax->Describe().rejected_weight, 1u);
  EXPECT_NO_THROW(lax->Finalize());
}

TEST(IngestValidation, NonFiniteTimestampsHitTheCoordCounter) {
  SummarizerConfig cfg;
  cfg.s = 16.0;
  const WeightedKey item{1, 1.0, {1, 1}};

  auto strict = MakeSummarizer("windowed:10:2:obliv", cfg);
  auto* win = strict->AsWindowed();
  ASSERT_NE(win, nullptr);
  win->AddTimed(1.0, item);
  EXPECT_THROW(
      win->AddTimed(std::numeric_limits<double>::quiet_NaN(), item),
      std::invalid_argument);
  EXPECT_THROW(win->Advance(std::numeric_limits<double>::infinity()),
               std::invalid_argument);

  cfg.ingest_policy = IngestPolicy::kQuarantine;
  auto lax = MakeSummarizer("windowed:10:2:obliv", cfg);
  auto* lax_win = lax->AsWindowed();
  lax_win->AddTimed(1.0, item);
  lax_win->AddTimed(std::numeric_limits<double>::infinity(), item);
  EXPECT_EQ(lax_win->Describe().accepted, 1u);
  EXPECT_EQ(lax_win->Describe().rejected_coord, 1u);
  // A quarantined timestamp dropped the whole record, not just the time.
  EXPECT_EQ(lax->Finalize()->SizeInElements(), 1u);
}

}  // namespace
}  // namespace sas
