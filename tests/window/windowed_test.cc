// Windowed backend tests: "windowed:<W>:<B>:<inner>" must cover exactly the
// last W time units at bucket granularity (items exactly W old are out),
// agree with a batch build of the inner method over the live window's items
// within Horvitz-Thompson tolerance, reproduce bit-identically for a fixed
// (seed, W, B, timestamped input), serve repeated queries from the cached
// merged sample, handle empty/partial rings and zero-entry bucket samples,
// compose with the sharded wrapper in either order, and reject malformed
// keys and non-mergeable inner methods.

#include "window/windowed.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/registry.h"
#include "core/random.h"
#include "../api/test_util.h"

namespace sas {
namespace {

using test::RandomItems;

Weight ExactBox(const std::vector<WeightedKey>& items, const Box& box) {
  Weight total = 0.0;
  for (const auto& it : items) {
    if (box.Contains(it.pt)) total += it.weight;
  }
  return total;
}

Weight ExactTotal(const std::vector<WeightedKey>& items) {
  Weight total = 0.0;
  for (const auto& it : items) total += it.weight;
  return total;
}

/// Builds the windowed wrapper and returns the WindowedSummarizer surface.
struct WindowedBuild {
  std::unique_ptr<Summarizer> builder;
  WindowedSummarizer* win = nullptr;
};

WindowedBuild MakeWindowed(const std::string& key,
                           const SummarizerConfig& cfg) {
  WindowedBuild b;
  b.builder = MakeSummarizer(key, cfg);
  b.win = b.builder->AsWindowed();
  EXPECT_NE(b.win, nullptr) << key;
  return b;
}

/// Timestamps items deterministically over [0, horizon) in item order.
std::vector<double> SpreadTimestamps(std::size_t n, double horizon) {
  std::vector<double> ts(n);
  for (std::size_t i = 0; i < n; ++i) {
    ts[i] = horizon * static_cast<double>(i) / static_cast<double>(n);
  }
  return ts;
}

TEST(WindowedKey, ParsesWellFormedKeys) {
  const WindowedKeySpec spec = ParseWindowedKey("windowed:3600:60:obliv");
  EXPECT_DOUBLE_EQ(spec.window, 3600.0);
  EXPECT_EQ(spec.buckets, 60);
  EXPECT_EQ(spec.inner, "obliv");

  // Decimal window spans and composed inner keys parse.
  const WindowedKeySpec decimal = ParseWindowedKey("windowed:2.5:5:product");
  EXPECT_DOUBLE_EQ(decimal.window, 2.5);
  const WindowedKeySpec nested =
      ParseWindowedKey("windowed:60:4:sharded:2:obliv");
  EXPECT_EQ(nested.inner, "sharded:2:obliv");
  const WindowedKeySpec windowed_in_windowed =
      ParseWindowedKey("windowed:60:4:windowed:10:2:obliv");
  EXPECT_EQ(windowed_in_windowed.inner, "windowed:10:2:obliv");
}

TEST(WindowedKey, MalformedKeysThrow) {
  SummarizerConfig cfg;
  cfg.s = 50.0;
  for (const char* bad :
       {"windowed:", "windowed:60", "windowed:60:4", "windowed::4:obliv",
        "windowed:0:4:obliv", "windowed:-1:4:obliv", "windowed:1e3:4:obliv",
        "windowed:abc:4:obliv", "windowed:6.0.0:4:obliv",
        "windowed:60:0:obliv", "windowed:60:-2:obliv",
        "windowed:60:abc:obliv", "windowed:60:4097:obliv",
        "windowed:60:99999999999999999999:obliv", "windowed:60:4:",
        "windowed:60:4:no-such-method"}) {
    EXPECT_THROW(MakeSummarizer(bad, cfg), std::invalid_argument) << bad;
    EXPECT_FALSE(IsRegisteredSummarizer(bad)) << bad;
  }
  // A window span overflowing double's range must fail with the documented
  // exception type (std::stod alone would throw std::out_of_range).
  const std::string huge_w = "windowed:" + std::string(310, '9') + ":8:obliv";
  EXPECT_THROW(MakeSummarizer(huge_w, cfg), std::invalid_argument);
  EXPECT_FALSE(IsRegisteredSummarizer(huge_w));
  const std::string tiny_w =
      "windowed:0." + std::string(330, '0') + "1:8:obliv";
  EXPECT_THROW(MakeSummarizer(tiny_w, cfg), std::invalid_argument);
}

TEST(WindowedKey, RegisteredWhenInnerIs) {
  EXPECT_TRUE(IsWindowedKey("windowed:60:4:obliv"));
  EXPECT_FALSE(IsWindowedKey("obliv"));
  EXPECT_TRUE(IsRegisteredSummarizer("windowed:60:4:obliv"));
  // The composed wrappers nest in either order.
  EXPECT_TRUE(IsRegisteredSummarizer("windowed:60:4:sharded:2:obliv"));
  EXPECT_TRUE(IsRegisteredSummarizer("sharded:2:windowed:60:4:obliv"));
  EXPECT_FALSE(IsRegisteredSummarizer("windowed:60:4:nope"));
  EXPECT_FALSE(IsRegisteredSummarizer("sharded:2:windowed:60:4:nope"));
}

TEST(WindowedKey, NonMergeableInnerRejected) {
  SummarizerConfig cfg;
  cfg.s = 50.0;
  for (const char* inner : {"wavelet", "qdigest", "sketch", "exact"}) {
    EXPECT_THROW(MakeSummarizer("windowed:60:4:" + std::string(inner), cfg),
                 std::invalid_argument)
        << inner;
  }
  cfg.structure = StructureSpec::Disjoint({0, 1}, 2);
  EXPECT_THROW(MakeSummarizer("windowed:60:4:disjoint", cfg),
               std::invalid_argument);
}

TEST(Windowed, FractionalSizeRejected) {
  SummarizerConfig cfg;
  cfg.s = 0.5;  // merged window budget is integral
  EXPECT_THROW(MakeSummarizer("windowed:60:4:product", cfg),
               std::invalid_argument);
}

TEST(Windowed, UntimedUseActsAsOneBucket) {
  // Without Advance the wrapper is a single bucket at time 0: generic call
  // sites (harness, sharded workers) can treat the key like any other.
  Rng data_rng(51);
  const auto items = RandomItems(20000, 1 << 14, &data_rng);
  SummarizerConfig cfg;
  cfg.s = 500.0;
  cfg.seed = 9001;
  auto builder = MakeSummarizer("windowed:3600:60:obliv", cfg);
  builder->AddBatch(items);
  const auto summary = builder->Finalize();
  EXPECT_EQ(summary->Name(), "windowed:3600:60:obliv");
  ASSERT_NE(summary->AsSample(), nullptr);
  EXPECT_NEAR(summary->AsSample()->sample().EstimateTotal() /
                  ExactTotal(items),
              1.0, 1e-9);
  EXPECT_NEAR(static_cast<double>(summary->SizeInElements()), 500.0, 1.0);
}

TEST(Windowed, MatchesBatchBuildOverWindowWithinHtTolerance) {
  // The acceptance bar: a windowed build queried at time T and a batch
  // build of the inner method over exactly the live window's items are both
  // unbiased HT estimators of the same sub-stream; their seed-averaged box
  // estimates must agree with the exact value and each other (same bounds
  // as api/sharded_test's sharded-vs-unsharded comparison).
  Rng data_rng(52);
  const auto items = RandomItems(20000, 1 << 14, &data_rng);
  const double horizon = 10.0;
  const auto ts = SpreadTimestamps(items.size(), horizon);

  const double W = 8.0;
  const int B = 4;
  SummarizerConfig probe_cfg;
  probe_cfg.s = 1000.0;
  auto probe = MakeWindowed("windowed:8:4:obliv", probe_cfg);
  // Live window at `horizon`: items whose epoch survives the ring rule.
  const std::int64_t cur = probe.win->EpochOf(horizon);
  std::vector<WeightedKey> window_items;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (probe.win->EpochOf(ts[i]) > cur - B) window_items.push_back(items[i]);
  }
  ASSERT_GT(window_items.size(), items.size() / 3);
  ASSERT_LT(window_items.size(), items.size());
  (void)W;

  const Box box{{0, 1 << 13}, {0, 1 << 14}};  // ~half the domain
  const Weight exact = ExactBox(window_items, box);
  ASSERT_GT(exact, 0.0);

  for (const std::string inner :
       {std::string("obliv"), std::string("product"), std::string("aware")}) {
    double windowed_mean = 0.0, batch_mean = 0.0;
    const int seeds = 10;
    for (int t = 0; t < seeds; ++t) {
      SummarizerConfig cfg;
      cfg.s = 1000.0;
      cfg.seed = 1234 + static_cast<std::uint64_t>(t);
      auto wb = MakeWindowed("windowed:8:4:" + inner, cfg);
      for (std::size_t i = 0; i < items.size(); ++i) {
        wb.win->AddTimed(ts[i], items[i]);
      }
      windowed_mean += wb.win->QueryAt(horizon).EstimateBox(box);

      auto batch = MakeSummarizer(inner, cfg);
      batch->AddBatch(window_items);
      batch_mean += batch->Finalize()->EstimateBox(box);
    }
    windowed_mean /= seeds;
    batch_mean /= seeds;
    EXPECT_NEAR(windowed_mean / exact, 1.0, 0.03) << inner;
    EXPECT_NEAR(batch_mean / exact, 1.0, 0.03) << inner;
    EXPECT_NEAR(windowed_mean / batch_mean, 1.0, 0.05) << inner;
  }
}

TEST(Windowed, WindowTotalIsExactForLiveItems) {
  // Every bucket sample preserves its bucket's total and the merge
  // preserves totals exactly, so the window-total estimate equals the sum
  // of live items' weights up to floating point.
  Rng data_rng(53);
  const auto items = RandomItems(8000, 1 << 12, &data_rng);
  const auto ts = SpreadTimestamps(items.size(), 16.0);
  SummarizerConfig cfg;
  cfg.s = 300.0;
  auto wb = MakeWindowed("windowed:8:4:obliv", cfg);
  for (std::size_t i = 0; i < items.size(); ++i) {
    wb.win->AddTimed(ts[i], items[i]);
  }
  const std::int64_t cur = wb.win->EpochOf(16.0);
  Weight live = 0.0;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (wb.win->EpochOf(ts[i]) > cur - 4) live += items[i].weight;
  }
  const Sample& window = wb.win->QueryAt(16.0);
  EXPECT_NEAR(window.EstimateTotal() / live, 1.0, 1e-9);
}

TEST(Windowed, BucketExpiryBoundary) {
  // W=8, B=4 => span 2 (exact in floating point). An item exactly W old is
  // always outside the window; one inside the oldest live bucket survives
  // until its whole bucket leaves.
  SummarizerConfig cfg;
  cfg.s = 50.0;
  auto wb = MakeWindowed("windowed:8:4:obliv", cfg);
  wb.win->AddTimed(0.0, {0, 5.0, {1, 1}});
  wb.win->AddTimed(2.0, {1, 7.0, {2, 2}});

  // Just before the boundary both items are live.
  EXPECT_DOUBLE_EQ(wb.win->QueryAt(7.5).EstimateTotal(), 12.0);
  // At now=8 the ts=0 item is exactly W old: its epoch (0) has left the
  // ring (live epochs are 1..4); the ts=2 item remains.
  EXPECT_DOUBLE_EQ(wb.win->QueryAt(8.0).EstimateTotal(), 7.0);
  EXPECT_EQ(wb.win->live_buckets(), 1);
  // The ts=2 bucket (epoch 1) expires once the clock reaches 10.
  EXPECT_DOUBLE_EQ(wb.win->QueryAt(10.0).EstimateTotal(), 0.0);
  EXPECT_EQ(wb.win->live_buckets(), 0);
}

TEST(Windowed, LateItemsJoinCurrentBucketOrDrop) {
  SummarizerConfig cfg;
  cfg.s = 50.0;
  auto wb = MakeWindowed("windowed:8:4:obliv", cfg);
  wb.win->Advance(9.0);  // current epoch 4, live epochs 1..4

  // ts=3 (epoch 1) is late but inside the window: kept, in the current
  // bucket.
  wb.win->AddTimed(3.0, {0, 5.0, {1, 1}});
  EXPECT_EQ(wb.win->late_items(), 1u);
  EXPECT_DOUBLE_EQ(wb.win->QueryAt(9.0).EstimateTotal(), 5.0);

  // ts=1 (epoch 0) has left the window: dropped.
  wb.win->AddTimed(1.0, {1, 7.0, {2, 2}});
  EXPECT_EQ(wb.win->dropped_items(), 1u);
  EXPECT_DOUBLE_EQ(wb.win->QueryAt(9.0).EstimateTotal(), 5.0);

  // Because the late item sits in the epoch-4 bucket, it outlives its
  // timestamp's own bucket (documented: up to one span late).
  EXPECT_DOUBLE_EQ(wb.win->QueryAt(11.5).EstimateTotal(), 5.0);
  EXPECT_DOUBLE_EQ(wb.win->QueryAt(18.0).EstimateTotal(), 0.0);
}

TEST(Windowed, EmptyAndPartialRings) {
  SummarizerConfig cfg;
  cfg.s = 100.0;
  auto wb = MakeWindowed("windowed:8:4:obliv", cfg);

  // Query over a never-fed ring.
  const Sample& empty = wb.win->QueryAt(100.0);
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_DOUBLE_EQ(empty.EstimateTotal(), 0.0);
  EXPECT_EQ(wb.win->live_buckets(), 0);

  // One mid-epoch bucket only (partial ring): the few items fit in the
  // budget, so the estimate is exact.
  wb.win->AddTimed(100.5, {0, 3.0, {1, 1}});
  wb.win->AddTimed(100.6, {1, 4.0, {5, 5}});
  EXPECT_DOUBLE_EQ(wb.win->QueryAt(100.7).EstimateTotal(), 7.0);
  EXPECT_EQ(wb.win->live_buckets(), 1);

  // Sealed + current buckets with gaps (empty epochs in between).
  wb.win->AddTimed(104.5, {2, 10.0, {9, 9}});
  EXPECT_DOUBLE_EQ(wb.win->QueryAt(104.5).EstimateTotal(), 17.0);
  EXPECT_EQ(wb.win->live_buckets(), 2);

  // Advancing far past everything empties the ring again.
  EXPECT_DOUBLE_EQ(wb.win->QueryAt(1000.0).EstimateTotal(), 0.0);
  EXPECT_EQ(wb.win->live_buckets(), 0);
}

TEST(Windowed, ZeroEntryBucketSamplesMerge) {
  // Buckets fed only non-positive weights finalize to zero-entry samples;
  // the window merge must carry them without disturbing live mass.
  SummarizerConfig cfg;
  cfg.s = 50.0;
  auto wb = MakeWindowed("windowed:8:4:obliv", cfg);
  wb.win->AddTimed(0.5, {0, 0.0, {1, 1}});   // zero-weight bucket
  wb.win->AddTimed(2.5, {1, 6.0, {2, 2}});   // real bucket
  wb.win->AddTimed(4.5, {2, 0.0, {3, 3}});   // zero-weight bucket
  const Sample& window = wb.win->QueryAt(6.0);
  EXPECT_DOUBLE_EQ(window.EstimateTotal(), 6.0);
  EXPECT_EQ(window.size(), 1u);
  // All three buckets are live (their buffers were non-empty), two of them
  // with zero-entry samples.
  EXPECT_EQ(wb.win->live_buckets(), 3);
}

TEST(Windowed, QueryAtReusesCachedMergeUntilRingAdvances) {
  Rng data_rng(54);
  const auto items = RandomItems(4000, 1 << 12, &data_rng);
  const auto ts = SpreadTimestamps(items.size(), 6.0);
  SummarizerConfig cfg;
  cfg.s = 200.0;
  auto wb = MakeWindowed("windowed:8:4:obliv", cfg);
  for (std::size_t i = 0; i < items.size(); ++i) {
    wb.win->AddTimed(ts[i], items[i]);
  }

  const Sample& first = wb.win->QueryAt(6.0);
  const std::size_t merges = wb.win->merges_performed();
  const double tau = first.tau();
  const std::vector<WeightedKey> entries = first.entries();

  // Repeated queries — including advances that stay inside the current
  // epoch — return the identical sample without re-merging.
  for (double t : {6.0, 6.2, 6.9, 7.999}) {
    const Sample& again = wb.win->QueryAt(t);
    EXPECT_EQ(wb.win->merges_performed(), merges) << t;
    EXPECT_DOUBLE_EQ(again.tau(), tau) << t;
    ASSERT_EQ(again.entries().size(), entries.size()) << t;
    for (std::size_t i = 0; i < entries.size(); ++i) {
      EXPECT_EQ(again.entries()[i].id, entries[i].id);
    }
  }

  // New items invalidate the cache...
  wb.win->AddTimed(7.999, {99999, 1.0, {1, 1}});
  (void)wb.win->QueryAt(7.999);
  EXPECT_EQ(wb.win->merges_performed(), merges + 1);
  // ...and so does crossing an epoch boundary.
  (void)wb.win->QueryAt(8.0);
  EXPECT_EQ(wb.win->merges_performed(), merges + 2);
}

TEST(Windowed, DirectAdvanceAcrossEpochsInvalidatesCachedMerge) {
  // Coverage gap found in audit: the cache tests above invalidate via new
  // items or via QueryAt's own implicit advance — a *direct* Advance()
  // crossing an epoch (the ingest-thread path) must also invalidate, or a
  // subsequent query would serve expired buckets from the stale cache.
  Rng data_rng(61);
  const auto items = RandomItems(3000, 1 << 12, &data_rng);
  const auto ts = SpreadTimestamps(items.size(), 6.0);
  SummarizerConfig cfg;
  cfg.s = 150.0;
  auto wb = MakeWindowed("windowed:8:4:obliv", cfg);
  for (std::size_t i = 0; i < items.size(); ++i) {
    wb.win->AddTimed(ts[i], items[i]);
  }

  const Sample& first = wb.win->QueryAt(6.0);
  const std::size_t merges = wb.win->merges_performed();
  const double total_before = first.EstimateTotal();
  EXPECT_GT(total_before, 0.0);

  // Direct advance across an epoch boundary, no new items: the next query
  // must re-merge (one bucket started expiring from the ring).
  wb.win->Advance(10.0);
  const Sample& after = wb.win->QueryAt(10.0);
  EXPECT_EQ(wb.win->merges_performed(), merges + 1);
  EXPECT_LT(after.EstimateTotal(), total_before);

  // Full expiry: an advance far past the horizon leaves an empty window,
  // not a stale cached one.
  wb.win->Advance(1000.0);
  const Sample& empty = wb.win->QueryAt(1000.0);
  EXPECT_EQ(wb.win->merges_performed(), merges + 2);
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_DOUBLE_EQ(empty.EstimateTotal(), 0.0);
}

TEST(Windowed, PublishHookFiresPerRingAdvanceWithTheMergedWindow) {
  Rng data_rng(62);
  const auto items = RandomItems(2000, 1 << 12, &data_rng);
  const auto ts = SpreadTimestamps(items.size(), 12.0);
  SummarizerConfig cfg;
  cfg.s = 100.0;

  // Without a hook the ring merges lazily: streaming alone performs none.
  auto plain = MakeWindowed("windowed:8:4:obliv", cfg);
  for (std::size_t i = 0; i < items.size(); ++i) {
    plain.win->AddTimed(ts[i], items[i]);
  }
  EXPECT_EQ(plain.win->merges_performed(), 0u);

  // With a hook, every ring advance publishes the merged window eagerly.
  auto wb = MakeWindowed("windowed:8:4:obliv", cfg);
  std::size_t fires = 0;
  double last_total = -1.0;
  std::size_t last_size = 0;
  wb.win->SetPublishHook([&](const Sample& merged) {
    ++fires;
    last_total = merged.EstimateTotal();
    last_size = merged.size();
  });
  for (std::size_t i = 0; i < items.size(); ++i) {
    wb.win->AddTimed(ts[i], items[i]);
  }
  // Bucket width 2, timestamps in [0, 12): epochs 1..5 were crossed.
  EXPECT_EQ(fires, 5u);

  // An advance with no trailing items: the hook's view IS the cached
  // merge, so querying at the same clock returns it bit-identically
  // without re-merging.
  wb.win->Advance(12.0);
  EXPECT_EQ(fires, 6u);
  const std::size_t merges = wb.win->merges_performed();
  const Sample& q = wb.win->QueryAt(12.0);
  EXPECT_EQ(wb.win->merges_performed(), merges);
  EXPECT_EQ(q.EstimateTotal(), last_total);
  EXPECT_EQ(q.size(), last_size);

  // A null hook uninstalls: further advances go back to lazy merging.
  wb.win->SetPublishHook(nullptr);
  wb.win->Advance(14.0);
  EXPECT_EQ(fires, 6u);
}

TEST(Windowed, DeterministicForFixedSeedWindowAndBuckets) {
  Rng data_rng(55);
  const auto items = RandomItems(12000, 1 << 13, &data_rng);
  const auto ts = SpreadTimestamps(items.size(), 20.0);

  auto run = [&](std::uint64_t seed) {
    SummarizerConfig cfg;
    cfg.s = 400.0;
    cfg.seed = seed;
    auto wb = MakeWindowed("windowed:8:4:obliv", cfg);
    for (std::size_t i = 0; i < items.size(); ++i) {
      wb.win->AddTimed(ts[i], items[i]);
      // Interleave queries: cache rebuilds must not perturb determinism.
      if (i % 3000 == 0) (void)wb.win->QueryAt(ts[i]);
    }
    // Many epochs were sealed, so the recycling path was exercised.
    EXPECT_GT(wb.win->recycled_builders(), 0u);
    Sample out = wb.win->QueryAt(20.0);
    return out;
  };

  const Sample a = run(77);
  const Sample b = run(77);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_DOUBLE_EQ(a.tau(), b.tau());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.entries()[i].id, b.entries()[i].id) << i;
    EXPECT_DOUBLE_EQ(a.entries()[i].weight, b.entries()[i].weight) << i;
  }

  // A different seed is a different (still unbiased) draw.
  const Sample c = run(78);
  bool same = a.size() == c.size() && a.tau() == c.tau();
  if (same) {
    for (std::size_t i = 0; i < a.size(); ++i) {
      same = same && a.entries()[i].id == c.entries()[i].id;
    }
  }
  EXPECT_FALSE(same);
}

TEST(Windowed, RecycledBuilderMatchesFreshBuilder) {
  // The Reset capability contract: a spent-then-Reset builder must behave
  // exactly like a fresh one with the same seed. (The windowed ring relies
  // on this for bucket-rebuild determinism.)
  Rng data_rng(56);
  const auto items = RandomItems(6000, 1 << 12, &data_rng);
  const std::vector<WeightedKey> first_half(items.begin(),
                                            items.begin() + 3000);
  const std::vector<WeightedKey> second_half(items.begin() + 3000,
                                             items.end());

  for (const std::string inner : {std::string("obliv"), std::string("order"),
                                  std::string("product"), std::string("nd")}) {
    SummarizerConfig cfg;
    cfg.s = 100.0;
    cfg.seed = 5;
    if (inner == "nd") cfg.structure = StructureSpec::Nd(2);

    auto recycled = MakeSummarizer(inner, cfg);
    recycled->AddBatch(first_half);
    (void)recycled->Finalize();
    ASSERT_TRUE(recycled->Reset(4242)) << inner;
    recycled->AddBatch(second_half);
    const auto ra = recycled->Finalize();

    SummarizerConfig fresh_cfg = cfg;
    fresh_cfg.seed = 4242;
    auto fresh = MakeSummarizer(inner, fresh_cfg);
    fresh->AddBatch(second_half);
    const auto rb = fresh->Finalize();

    const Sample& sa = ra->AsSample()->sample();
    const Sample& sb = rb->AsSample()->sample();
    ASSERT_EQ(sa.size(), sb.size()) << inner;
    EXPECT_DOUBLE_EQ(sa.tau(), sb.tau()) << inner;
    for (std::size_t i = 0; i < sa.size(); ++i) {
      EXPECT_EQ(sa.entries()[i].id, sb.entries()[i].id) << inner << " " << i;
    }
  }

  // Methods without the capability report false from Reset.
  SummarizerConfig cfg;
  cfg.s = 100.0;
  auto aware = MakeSummarizer("aware", cfg);
  EXPECT_FALSE(aware->Reset(1));
}

TEST(Windowed, ComposesWithShardedInEitherOrder) {
  Rng data_rng(57);
  const auto items = RandomItems(12000, 1 << 12, &data_rng);
  const Weight exact_total = ExactTotal(items);

  // Outer sharded, inner windowed: worker threads each own a (untimed)
  // window ring; totals survive the two merge layers exactly.
  {
    SummarizerConfig cfg;
    cfg.s = 300.0;
    auto builder = MakeSummarizer("sharded:2:windowed:60:4:obliv", cfg);
    builder->AddBatch(items);
    const auto summary = builder->Finalize();
    EXPECT_EQ(summary->Name(), "sharded:2:windowed:60:4:obliv");
    EXPECT_NEAR(summary->AsSample()->sample().EstimateTotal() / exact_total,
                1.0, 1e-9);
  }

  // Outer windowed, inner sharded: every bucket rebuild runs the
  // worker-pool ingest; timed expiry still applies.
  {
    const auto ts = SpreadTimestamps(items.size(), 16.0);
    SummarizerConfig cfg;
    cfg.s = 300.0;
    auto wb = MakeWindowed("windowed:8:4:sharded:2:obliv", cfg);
    for (std::size_t i = 0; i < items.size(); ++i) {
      wb.win->AddTimed(ts[i], items[i]);
    }
    const std::int64_t cur = wb.win->EpochOf(16.0);
    Weight live = 0.0;
    for (std::size_t i = 0; i < items.size(); ++i) {
      if (wb.win->EpochOf(ts[i]) > cur - 4) live += items[i].weight;
    }
    const Sample& window = wb.win->QueryAt(16.0);
    EXPECT_NEAR(window.EstimateTotal() / live, 1.0, 1e-9);
    EXPECT_LT(window.EstimateTotal(), exact_total);  // expiry really happened
  }
}

TEST(Windowed, SpentBuilderThrows) {
  SummarizerConfig cfg;
  cfg.s = 10.0;
  auto wb = MakeWindowed("windowed:8:4:obliv", cfg);
  wb.win->AddTimed(0.5, {0, 1.0, {0, 0}});
  (void)wb.builder->Finalize();
  EXPECT_THROW(wb.builder->Add({1, 1.0, {1, 0}}), std::logic_error);
  EXPECT_THROW(wb.win->AddTimed(1.0, {1, 1.0, {1, 0}}), std::logic_error);
  EXPECT_THROW(wb.win->Advance(2.0), std::logic_error);
  EXPECT_THROW(wb.win->QueryAt(2.0), std::logic_error);
  EXPECT_THROW(wb.builder->Finalize(), std::logic_error);
}

TEST(Windowed, NonFiniteTimesRejected) {
  SummarizerConfig cfg;
  cfg.s = 10.0;
  auto wb = MakeWindowed("windowed:8:4:obliv", cfg);
  const double nan = std::nan("");
  EXPECT_THROW(wb.win->Advance(nan), std::invalid_argument);
  EXPECT_THROW(wb.win->AddTimed(nan, {0, 1.0, {0, 0}}),
               std::invalid_argument);
  // The clock is monotone: a past time is a no-op, not an error.
  wb.win->Advance(5.0);
  wb.win->Advance(1.0);
  EXPECT_DOUBLE_EQ(wb.win->now(), 5.0);
}

TEST(Windowed, AstronomicalTimestampsClampInsteadOfOverflowing) {
  // Nanosecond-scale epoch timestamps against a sub-second bucket span push
  // ts/span past the int64 range; the epoch must clamp (keeping the wrapper
  // functional in the extreme regime) rather than hit undefined behavior.
  SummarizerConfig cfg;
  cfg.s = 10.0;
  auto wb = MakeWindowed("windowed:1:4096:obliv", cfg);
  const double ns_epoch = 1.7e18;
  wb.win->AddTimed(ns_epoch, {0, 3.0, {1, 1}});
  EXPECT_DOUBLE_EQ(wb.win->QueryAt(ns_epoch).EstimateTotal(), 3.0);
  // All clamped times share the extreme epoch, so the item stays current.
  EXPECT_DOUBLE_EQ(wb.win->QueryAt(1.8e18).EstimateTotal(), 3.0);
  EXPECT_GT(wb.win->EpochOf(ns_epoch), 0);
  EXPECT_LT(wb.win->EpochOf(-ns_epoch), 0);
}

TEST(Windowed, AddCoordsUnsupported) {
  SummarizerConfig cfg;
  cfg.s = 50.0;
  cfg.structure = StructureSpec::Nd(2);
  auto builder = MakeSummarizer("windowed:8:4:nd", cfg);
  const Coord coords[2] = {1, 2};
  EXPECT_THROW(builder->AddCoords(coords, 2, 1.0), std::logic_error);
  builder->Add({0, 1.0, {1, 2}});  // the Add path works
  EXPECT_EQ(builder->Finalize()->SizeInElements(), 1u);
}

}  // namespace
}  // namespace sas
