// Clean-fixture deterministic core. Exercises the allow escape: the
// wall-clock call below is suppressed by a reasoned annotation, and the
// negative test asserts it does NOT fire.
#include "core/engine.h"

#include <atomic>
#include <chrono>

namespace fixture {

std::uint64_t Checksum(const std::vector<std::uint64_t>& values) {
  std::uint64_t acc = 0;
  for (std::uint64_t v : values) acc = acc * 31 + v;
  return acc;
}

std::int64_t LogStampNs() {
  // sas-lint: allow(wall-clock): fixture exercises the reasoned escape;
  // this value feeds a log line, never a sampling decision.
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

void SpinPause() {
  // sas-lint: allow(simd-intrinsics): fixture exercises the reasoned
  // escape for the intrinsics rule; a spin-wait hint is not vector math.
  _mm_pause();
}

namespace {
// sas-lint: allow(atomic-publication): fixture exercises the reasoned
// escape — a write-once lazy-init pointer with nothing to reclaim.
std::atomic<int*> g_lazy_table{nullptr};
}  // namespace

int* LazyTable() { return g_lazy_table.load(std::memory_order_acquire); }

std::uint64_t ChecksumNoThrow(const std::vector<std::uint64_t>& values) {
  try {
    return Checksum(values);
    // sas-lint: allow(catch-all): fixture exercises the reasoned escape
    // at an audited thread-boundary-style site.
  } catch (...) {
    return 0;
  }
}

}  // namespace fixture
