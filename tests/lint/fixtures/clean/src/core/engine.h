// Self-contained fixture header: includes everything it needs, so the
// header-self-contained rule compiles it in isolation without errors.
#ifndef FIXTURE_CLEAN_CORE_ENGINE_H_
#define FIXTURE_CLEAN_CORE_ENGINE_H_

#include <cstdint>
#include <vector>

namespace fixture {

std::uint64_t Checksum(const std::vector<std::uint64_t>& values);

}  // namespace fixture

#endif  // FIXTURE_CLEAN_CORE_ENGINE_H_
