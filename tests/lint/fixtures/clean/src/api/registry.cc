// Clean-fixture registry: references every canonical key constant.
#include "api/keys.h"

namespace fixture {

const char* AlphaKey() { return keys::kAlpha; }
const char* BetaKey() { return keys::kBeta; }

}  // namespace fixture
