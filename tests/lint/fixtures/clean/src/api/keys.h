// Canonical keys of the clean fixture: both are registered (registry.cc)
// and documented (docs/keys.md), so key-registered/key-documented pass.
#ifndef FIXTURE_CLEAN_API_KEYS_H_
#define FIXTURE_CLEAN_API_KEYS_H_

namespace fixture::keys {

inline constexpr const char kAlpha[] = "alpha";
inline constexpr const char kBeta[] = "beta";

}  // namespace fixture::keys

#endif  // FIXTURE_CLEAN_API_KEYS_H_
