// Fixture TU for the run_clang_tidy.py baseline-diff tests; the "fake
// clang-tidy" emits a canned diagnostic against this file, so its contents
// never matter.
int FixtureAnswer() { return 42; }
