#!/usr/bin/env python3
"""Stand-in clang-tidy for the run_clang_tidy.py self-tests.

Emits one canned diagnostic (exit 1) against the translation unit it was
handed, exactly in clang-tidy's output format — or nothing (exit 0) when
FAKE_TIDY_CLEAN=1, so the driver's new/grandfathered/stale paths can all be
exercised without a real clang-tidy install.
"""

import os
import sys


def main():
    # The TU is the last non-flag argument, as the driver passes it.
    files = [a for a in sys.argv[1:] if not a.startswith("-")
             and a != sys.argv[sys.argv.index("-p") + 1]]
    if os.environ.get("FAKE_TIDY_ECHO_CHECKS") == "1":
        # Reflect the per-path --checks filter (or its absence) back as a
        # diagnostic so the driver's PATH_CHECK_FILTERS plumbing is
        # observable without a real clang-tidy.
        checks = [a[len("--checks="):] for a in sys.argv[1:]
                  if a.startswith("--checks=")]
        for path in files:
            print(f"{path}:1:1: warning: checks "
                  f"{checks[0] if checks else 'none'} [fixture-echo]")
        return 1
    if os.environ.get("FAKE_TIDY_CLEAN") == "1":
        return 0
    for path in files:
        print(f"{path}:3:7: warning: fixture diagnostic [bugprone-fixture]")
    return 1


if __name__ == "__main__":
    sys.exit(main())
