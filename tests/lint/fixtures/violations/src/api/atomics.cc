// Seeded violation: a raw atomic pointer published outside src/serve/ —
// [atomic-publication] must fire (lock-free pointer hand-off belongs to
// the serving tier's epoch-reclamation protocol).
#include <atomic>

namespace fixture {

struct Blob {
  int payload = 0;
};

std::atomic<Blob*> g_latest{nullptr};

void PublishBlob(Blob* b) { g_latest.store(b, std::memory_order_release); }

}  // namespace fixture
