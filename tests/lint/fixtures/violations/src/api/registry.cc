// Violation-fixture registry: references kAlpha only, leaving kGamma
// unregistered.
#include "api/keys.h"

namespace fixture {

const char* AlphaKey() { return keys::kAlpha; }

}  // namespace fixture
