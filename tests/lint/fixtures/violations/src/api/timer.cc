// Seeded violation: an ambient clock read outside the deterministic core
// AND outside the telemetry facade — [timing-confined] must fire (the
// core-dir variant of the same pattern is [wall-clock], seeded in
// src/core/rogue.cc).
#include <chrono>

namespace fixture {

double ElapsedSeconds() {
  const auto t0 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace fixture
