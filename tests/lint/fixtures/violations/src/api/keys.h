// Violation fixture keys: kGamma is neither referenced by the registry
// implementation (key-registered) nor documented (key-documented).
#ifndef FIXTURE_VIOLATIONS_API_KEYS_H_
#define FIXTURE_VIOLATIONS_API_KEYS_H_

namespace fixture::keys {

inline constexpr const char kAlpha[] = "alpha";
inline constexpr const char kGamma[] = "gamma";

}  // namespace fixture::keys

#endif  // FIXTURE_VIOLATIONS_API_KEYS_H_
