// Deliberately NOT self-contained: UndeclaredThing has no definition and
// no include supplies one, so compiling this header in isolation fails and
// the header-self-contained rule fires.
#ifndef FIXTURE_VIOLATIONS_CORE_ROGUE_H_
#define FIXTURE_VIOLATIONS_CORE_ROGUE_H_

namespace fixture {

UndeclaredThing MakeThing();

}  // namespace fixture

#endif  // FIXTURE_VIOLATIONS_CORE_ROGUE_H_
