// Seeded determinism violations, one per line, each asserted by the
// self-test: raw-rand, wall-clock, unforked-rng, a bare catch-all, and two
// malformed allow escapes (missing reason; unknown rule).
#include <chrono>
#include <cstdlib>

namespace fixture {

struct Rng {
  explicit Rng(unsigned long seed = 0) : state(seed) {}
  unsigned long state;
};

int RawRand() { return std::rand(); }

long WallClock() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

unsigned long SeedlessRng() {
  Rng generator;
  return generator.state;
}

int SwallowEverything() {
  try {
    return RawRand();
  } catch (...) {
    return -1;
  }
}

// sas-lint: allow(raw-rand)
int AllowWithoutReason() { return 7; }

// sas-lint: allow(bogus-rule): the rule name does not exist
int AllowUnknownRule() { return 8; }

}  // namespace fixture
