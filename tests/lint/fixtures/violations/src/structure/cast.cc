// Seeded reinterpret-cast violation: a bare cast outside the audited
// facade, with no allow annotation.
#include <cstdint>

namespace fixture {

const std::uint64_t* ViewBits(const double* values) {
  return reinterpret_cast<const std::uint64_t*>(values);
}

}  // namespace fixture
