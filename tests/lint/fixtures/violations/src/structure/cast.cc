// Seeded reinterpret-cast and simd-intrinsics violations: a bare cast and
// a raw intrinsic call outside their audited homes, with no allow
// annotation.
#include <cstdint>

namespace fixture {

const std::uint64_t* ViewBits(const double* values) {
  return reinterpret_cast<const std::uint64_t*>(values);
}

double RogueIntrinsic(const double* values) {
  __m256d v = _mm256_loadu_pd(values);
  return _mm256_cvtsd_f64(v);
}

}  // namespace fixture
