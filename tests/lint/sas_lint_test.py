#!/usr/bin/env python3
"""Self-tests for the static-analysis tools (ctest suite `lint_selftest`).

Covers tools/sas_lint.py against the checked-in fixture trees — every rule
fires on the seeded violations, none fires on the clean tree, the reasoned
allow escape suppresses — and tools/run_clang_tidy.py's baseline-diff
logic through a fake clang-tidy (no real install needed).
"""

import json
import os
import shutil
import subprocess
import sys
import tempfile
import unittest

HERE = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(os.path.dirname(HERE))
SAS_LINT = os.path.join(REPO_ROOT, "tools", "sas_lint.py")
RUN_TIDY = os.path.join(REPO_ROOT, "tools", "run_clang_tidy.py")
FIXTURES = os.path.join(HERE, "fixtures")
TIDY_FIXTURE = os.path.join(FIXTURES, "tidy")
FAKE_TIDY = os.path.join(TIDY_FIXTURE, "fake_clang_tidy.py")


def run(argv, env=None):
    merged = dict(os.environ)
    if env:
        merged.update(env)
    return subprocess.run([sys.executable] + argv, text=True, env=merged,
                          stdout=subprocess.PIPE, stderr=subprocess.STDOUT)


class SasLintTest(unittest.TestCase):
    def lint(self, fixture):
        return run([SAS_LINT, "--root", os.path.join(FIXTURES, fixture)])

    def test_clean_fixture_passes(self):
        proc = self.lint("clean")
        self.assertEqual(proc.returncode, 0, proc.stdout)
        self.assertIn("OK", proc.stdout)

    def test_reasoned_allow_suppresses(self):
        # The clean fixture contains a wall-clock call behind a reasoned
        # escape; it must not fire.
        proc = self.lint("clean")
        self.assertNotIn("wall-clock", proc.stdout.replace(
            "[wall-clock]", "HIT"), proc.stdout)
        self.assertNotIn("HIT", proc.stdout, proc.stdout)

    def test_every_rule_fires_on_seeded_violations(self):
        proc = self.lint("violations")
        self.assertEqual(proc.returncode, 1, proc.stdout)
        for rule in ("key-registered", "key-documented", "raw-rand",
                     "wall-clock", "timing-confined", "unforked-rng",
                     "reinterpret-cast", "simd-intrinsics", "catch-all",
                     "atomic-publication", "allow-syntax",
                     "header-self-contained", "cmake-sources"):
            self.assertIn(f"[{rule}]", proc.stdout,
                          f"rule {rule} did not fire:\n{proc.stdout}")

    def test_violation_lines_name_the_seeded_files(self):
        proc = self.lint("violations")
        out = proc.stdout
        self.assertIn("src/core/rogue.cc", out)
        self.assertIn("src/structure/cast.cc", out)
        self.assertIn("src/core/rogue.h", out)
        self.assertIn("src/api/keys.h", out)
        self.assertIn("src/api/timer.cc", out)
        self.assertIn("src/api/atomics.cc", out)

    def test_allow_without_reason_is_flagged_not_honored(self):
        proc = self.lint("violations")
        self.assertIn("without a reason", proc.stdout)
        self.assertIn("unknown rule 'bogus-rule'", proc.stdout)

    def test_real_tree_is_clean(self):
        # The repo itself must lint clean (headers are covered by the
        # separate `lint` ctest suite; skip them here for speed).
        proc = run([SAS_LINT, "--root", REPO_ROOT, "--no-headers"])
        self.assertEqual(proc.returncode, 0, proc.stdout)


class RunClangTidyTest(unittest.TestCase):
    def tidy(self, baseline, clean=False, extra=None):
        env = {"FAKE_TIDY_CLEAN": "1"} if clean else {"FAKE_TIDY_CLEAN": "0"}
        argv = [RUN_TIDY, "--build-dir", TIDY_FIXTURE,
                "--clang-tidy", FAKE_TIDY,
                "--baseline", os.path.join(TIDY_FIXTURE, baseline),
                "tests/lint/fixtures/tidy/src"]
        return run(argv + (extra or []), env=env)

    def test_new_diagnostic_fails_against_empty_baseline(self):
        proc = self.tidy("baseline_empty.txt")
        self.assertEqual(proc.returncode, 1, proc.stdout)
        self.assertIn("[bugprone-fixture]", proc.stdout)
        self.assertIn("FAIL", proc.stdout)

    def test_grandfathered_diagnostic_passes(self):
        proc = self.tidy("baseline_grandfathered.txt")
        self.assertEqual(proc.returncode, 0, proc.stdout)
        self.assertIn("grandfathered", proc.stdout)

    def test_clean_run_passes_empty_baseline(self):
        proc = self.tidy("baseline_empty.txt", clean=True)
        self.assertEqual(proc.returncode, 0, proc.stdout)

    def test_stale_baseline_entry_is_reported_not_fatal(self):
        proc = self.tidy("baseline_grandfathered.txt", clean=True)
        self.assertEqual(proc.returncode, 0, proc.stdout)
        self.assertIn("stale", proc.stdout)

    def test_update_baseline_writes_current_diagnostics(self):
        with tempfile.TemporaryDirectory() as tmp:
            baseline = os.path.join(tmp, "baseline.txt")
            shutil.copy(os.path.join(TIDY_FIXTURE, "baseline_empty.txt"),
                        baseline)
            env = {"FAKE_TIDY_CLEAN": "0"}
            proc = run([RUN_TIDY, "--build-dir", TIDY_FIXTURE,
                        "--clang-tidy", FAKE_TIDY, "--baseline", baseline,
                        "--update-baseline",
                        "tests/lint/fixtures/tidy/src"], env=env)
            self.assertEqual(proc.returncode, 0, proc.stdout)
            with open(baseline, encoding="utf-8") as f:
                content = f.read()
            self.assertIn("bugprone-fixture", content)
            # The updated baseline now grandfathers the diagnostic.
            proc = run([RUN_TIDY, "--build-dir", TIDY_FIXTURE,
                        "--clang-tidy", FAKE_TIDY, "--baseline", baseline,
                        "tests/lint/fixtures/tidy/src"], env=env)
            self.assertEqual(proc.returncode, 0, proc.stdout)

    def test_per_path_check_filters_reach_the_tool(self):
        # TUs under src/core/simd* get targeted --checks exclusions (the
        # intrinsics TU is exempt from portability/cast/magic-number checks
        # by design, keeping the baseline file empty); every other TU runs
        # with the unmodified repo config. The fake tidy echoes the filter
        # it received back as a diagnostic so both cases are observable.
        with tempfile.TemporaryDirectory() as tmp:
            db = [{"directory": REPO_ROOT,
                   "command": f"c++ -c src/core/{name}",
                   "file": f"src/core/{name}"}
                  for name in ("simd.cc", "ipps.cc")]
            with open(os.path.join(tmp, "compile_commands.json"), "w",
                      encoding="utf-8") as f:
                json.dump(db, f)
            proc = run([RUN_TIDY, "--build-dir", tmp,
                        "--clang-tidy", FAKE_TIDY,
                        "--baseline",
                        os.path.join(TIDY_FIXTURE, "baseline_empty.txt"),
                        "src/core/simd.cc", "src/core/ipps.cc"],
                       env={"FAKE_TIDY_ECHO_CHECKS": "1"})
            # The echoed diagnostics are "new" against the empty baseline.
            self.assertEqual(proc.returncode, 1, proc.stdout)
            simd_lines = [ln for ln in proc.stdout.splitlines()
                          if ln.startswith("src/core/simd.cc")]
            ipps_lines = [ln for ln in proc.stdout.splitlines()
                          if ln.startswith("src/core/ipps.cc")]
            self.assertTrue(simd_lines and ipps_lines, proc.stdout)
            self.assertIn("-cppcoreguidelines-pro-type-reinterpret-cast",
                          simd_lines[0])
            self.assertIn("-portability-simd-intrinsics", simd_lines[0])
            self.assertIn("checks none", ipps_lines[0])

    def test_missing_tool_skips_by_default_fails_when_required(self):
        argv = [RUN_TIDY, "--build-dir", TIDY_FIXTURE,
                "--clang-tidy", "/nonexistent/clang-tidy",
                "--baseline",
                os.path.join(TIDY_FIXTURE, "baseline_empty.txt"),
                "tests/lint/fixtures/tidy/src"]
        proc = run(argv)
        self.assertEqual(proc.returncode, 0, proc.stdout)
        self.assertIn("SKIPPED", proc.stdout)
        proc = run(argv + ["--require-tool"])
        self.assertEqual(proc.returncode, 2, proc.stdout)


if __name__ == "__main__":
    unittest.main(verbosity=2)
