#include "eval/metrics.h"

#include <gtest/gtest.h>

namespace sas {
namespace {

TEST(ComputeErrors, Basic) {
  const std::vector<Weight> est{10.0, 20.0};
  const std::vector<Weight> exact{12.0, 16.0};
  const auto stats = ComputeErrors(est, exact, 100.0);
  EXPECT_EQ(stats.count, 2u);
  EXPECT_NEAR(stats.mean_abs, (0.02 + 0.04) / 2, 1e-12);
  EXPECT_NEAR(stats.max_abs, 0.04, 1e-12);
  EXPECT_NEAR(stats.sum_squared, 0.02 * 0.02 + 0.04 * 0.04, 1e-12);
  EXPECT_NEAR(stats.mean_rel, (2.0 / 12 + 4.0 / 16) / 2, 1e-12);
}

TEST(ComputeErrors, PerfectEstimates) {
  const std::vector<Weight> v{5.0, 7.0, 9.0};
  const auto stats = ComputeErrors(v, v, 10.0);
  EXPECT_DOUBLE_EQ(stats.mean_abs, 0.0);
  EXPECT_DOUBLE_EQ(stats.max_abs, 0.0);
  EXPECT_DOUBLE_EQ(stats.sum_squared, 0.0);
}

TEST(ComputeErrors, EmptyInput) {
  const auto stats = ComputeErrors({}, {}, 10.0);
  EXPECT_EQ(stats.count, 0u);
  EXPECT_DOUBLE_EQ(stats.mean_abs, 0.0);
}

TEST(ComputeErrors, ZeroTotalGuarded) {
  const auto stats = ComputeErrors({1.0}, {2.0}, 0.0);
  EXPECT_DOUBLE_EQ(stats.mean_abs, 0.0);
}

TEST(ComputeErrors, ZeroExactUsesEpsilonForRelative) {
  const auto stats = ComputeErrors({0.5}, {0.0}, 1.0);
  EXPECT_GT(stats.mean_rel, 1.0);  // huge but finite
  EXPECT_DOUBLE_EQ(stats.mean_abs, 0.5);
}

}  // namespace
}  // namespace sas
