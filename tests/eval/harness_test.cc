#include "eval/harness.h"

#include <gtest/gtest.h>

#include "data/network_gen.h"

namespace sas {
namespace {

Dataset2D SmallDataset() {
  NetworkConfig cfg;
  cfg.num_sources = 200;
  cfg.num_dests = 200;
  cfg.num_pairs = 1500;
  cfg.bits = 16;
  cfg.seed = 5;
  return GenerateNetwork(cfg);
}

TEST(BuildMethods, BuildsAllRequested) {
  const auto ds = SmallDataset();
  const auto built =
      BuildMethods(ds, 100, DefaultMethods(/*include_sketch=*/true), 123);
  ASSERT_EQ(built.size(), 5u);
  EXPECT_EQ(built[0].summary->Name(), "aware");
  EXPECT_EQ(built[1].summary->Name(), "obliv");
  EXPECT_EQ(built[2].summary->Name(), "wavelet");
  EXPECT_EQ(built[3].summary->Name(), "qdigest");
  EXPECT_EQ(built[4].summary->Name(), "sketch");
  for (const auto& b : built) {
    EXPECT_GE(b.build_seconds, 0.0);
    EXPECT_GT(b.summary->SizeInElements(), 0u);
  }
}

TEST(BuildMethods, SampleSizesExact) {
  const auto ds = SmallDataset();
  const auto built =
      BuildMethods(ds, 64, {keys::kAware, keys::kObliv}, 7);
  ASSERT_EQ(built.size(), 2u);
  EXPECT_EQ(built[0].summary->SizeInElements(), 64u);  // aware
  EXPECT_EQ(built[1].summary->SizeInElements(), 64u);  // obliv
}

TEST(BuildMethods, AcceptsShardedKeys) {
  // Composed sharded keys flow through the harness like any other method
  // key: built via worker threads, evaluated over the same batteries.
  const auto ds = SmallDataset();
  const auto built =
      BuildMethods(ds, 100, {"sharded:2:obliv", "sharded:4:aware"}, 99);
  ASSERT_EQ(built.size(), 2u);
  EXPECT_EQ(built[0].summary->Name(), "sharded:2:obliv");
  EXPECT_EQ(built[1].summary->Name(), "sharded:4:aware");
  // Merged VarOpt size is s up to a +-1 floating-point residual.
  EXPECT_NEAR(static_cast<double>(built[0].summary->SizeInElements()), 100.0,
              1.0);
  EXPECT_NEAR(static_cast<double>(built[1].summary->SizeInElements()), 100.0,
              1.0);

  Rng rng(3);
  const auto battery =
      UniformAreaQueries(ds.items, ds.domain, 8, 5, 0.4, &rng);
  for (const auto& b : built) {
    const auto result = EvaluateOnBattery(b, battery);
    EXPECT_EQ(result.errors.count, 8u);
    EXPECT_LT(result.errors.mean_abs, 0.5);
  }
}

TEST(BuildMethods, AcceptsWindowedKeys) {
  // Composed windowed keys flow through the harness like any other method
  // key: without timed ingest the ring is a single bucket at time 0, so
  // the harness's batch datasets evaluate normally — and the wrappers
  // nest with sharded: in either order.
  const auto ds = SmallDataset();
  const auto built = BuildMethods(ds, 100,
                                  {"windowed:3600:6:obliv",
                                   "windowed:3600:6:sharded:2:obliv",
                                   "sharded:2:windowed:3600:6:obliv"},
                                  42);
  ASSERT_EQ(built.size(), 3u);
  EXPECT_EQ(built[0].summary->Name(), "windowed:3600:6:obliv");
  EXPECT_EQ(built[1].summary->Name(), "windowed:3600:6:sharded:2:obliv");
  EXPECT_EQ(built[2].summary->Name(), "sharded:2:windowed:3600:6:obliv");
  for (const auto& b : built) {
    // Merged VarOpt size is s up to a +-1 floating-point residual.
    EXPECT_NEAR(static_cast<double>(b.summary->SizeInElements()), 100.0, 1.0);
  }

  Rng rng(4);
  const auto battery =
      UniformAreaQueries(ds.items, ds.domain, 8, 5, 0.4, &rng);
  for (const auto& b : built) {
    const auto result = EvaluateOnBattery(b, battery);
    EXPECT_EQ(result.errors.count, 8u);
    EXPECT_LT(result.errors.mean_abs, 0.5);
  }
}

TEST(EvaluateOnBattery, ErrorsAreFiniteAndSmallForSamples) {
  const auto ds = SmallDataset();
  Rng rng(9);
  const auto battery =
      UniformAreaQueries(ds.items, ds.domain, 10, 5, 0.4, &rng);
  const auto built = BuildMethods(ds, 200, {keys::kAware, keys::kObliv}, 11);
  for (const auto& b : built) {
    const auto result = EvaluateOnBattery(b, battery);
    EXPECT_EQ(result.errors.count, 10u);
    EXPECT_GE(result.query_seconds, 0.0);
    EXPECT_LT(result.errors.mean_abs, 0.5);
  }
}

TEST(Stopwatch, MeasuresElapsed) {
  Stopwatch sw;
  double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  ::testing::Test::RecordProperty("sink", static_cast<int>(sink / 1e9));
  EXPECT_GE(sw.Seconds(), 0.0);
  const double t1 = sw.Seconds();
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GE(sw.Seconds(), t1);
}

}  // namespace
}  // namespace sas
