#include "eval/harness.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "data/network_gen.h"

namespace sas {
namespace {

Dataset2D SmallDataset() {
  NetworkConfig cfg;
  cfg.num_sources = 200;
  cfg.num_dests = 200;
  cfg.num_pairs = 1500;
  cfg.bits = 16;
  cfg.seed = 5;
  return GenerateNetwork(cfg);
}

TEST(BuildMethods, BuildsAllRequested) {
  const auto ds = SmallDataset();
  const auto built =
      BuildMethods(ds, 100, DefaultMethods(/*include_sketch=*/true), 123);
  ASSERT_EQ(built.size(), 5u);
  EXPECT_EQ(built[0].summary->Name(), "aware");
  EXPECT_EQ(built[1].summary->Name(), "obliv");
  EXPECT_EQ(built[2].summary->Name(), "wavelet");
  EXPECT_EQ(built[3].summary->Name(), "qdigest");
  EXPECT_EQ(built[4].summary->Name(), "sketch");
  for (const auto& b : built) {
    EXPECT_GE(b.build_seconds, 0.0);
    EXPECT_GT(b.summary->SizeInElements(), 0u);
  }
}

TEST(BuildMethods, SampleSizesExact) {
  const auto ds = SmallDataset();
  const auto built =
      BuildMethods(ds, 64, {keys::kAware, keys::kObliv}, 7);
  ASSERT_EQ(built.size(), 2u);
  EXPECT_EQ(built[0].summary->SizeInElements(), 64u);  // aware
  EXPECT_EQ(built[1].summary->SizeInElements(), 64u);  // obliv
}

TEST(BuildMethods, AcceptsShardedKeys) {
  // Composed sharded keys flow through the harness like any other method
  // key: built via worker threads, evaluated over the same batteries.
  const auto ds = SmallDataset();
  const auto built =
      BuildMethods(ds, 100, {"sharded:2:obliv", "sharded:4:aware"}, 99);
  ASSERT_EQ(built.size(), 2u);
  EXPECT_EQ(built[0].summary->Name(), "sharded:2:obliv");
  EXPECT_EQ(built[1].summary->Name(), "sharded:4:aware");
  // Merged VarOpt size is s up to a +-1 floating-point residual.
  EXPECT_NEAR(static_cast<double>(built[0].summary->SizeInElements()), 100.0,
              1.0);
  EXPECT_NEAR(static_cast<double>(built[1].summary->SizeInElements()), 100.0,
              1.0);

  Rng rng(3);
  const auto battery =
      UniformAreaQueries(ds.items, ds.domain, 8, 5, 0.4, &rng);
  for (const auto& b : built) {
    const auto result = EvaluateOnBattery(b, battery);
    EXPECT_EQ(result.errors.count, 8u);
    EXPECT_LT(result.errors.mean_abs, 0.5);
  }
}

TEST(BuildMethods, AcceptsWindowedKeys) {
  // Composed windowed keys flow through the harness like any other method
  // key: without timed ingest the ring is a single bucket at time 0, so
  // the harness's batch datasets evaluate normally — and the wrappers
  // nest with sharded: in either order.
  const auto ds = SmallDataset();
  const auto built = BuildMethods(ds, 100,
                                  {"windowed:3600:6:obliv",
                                   "windowed:3600:6:sharded:2:obliv",
                                   "sharded:2:windowed:3600:6:obliv"},
                                  42);
  ASSERT_EQ(built.size(), 3u);
  EXPECT_EQ(built[0].summary->Name(), "windowed:3600:6:obliv");
  EXPECT_EQ(built[1].summary->Name(), "windowed:3600:6:sharded:2:obliv");
  EXPECT_EQ(built[2].summary->Name(), "sharded:2:windowed:3600:6:obliv");
  for (const auto& b : built) {
    // Merged VarOpt size is s up to a +-1 floating-point residual.
    EXPECT_NEAR(static_cast<double>(b.summary->SizeInElements()), 100.0, 1.0);
  }

  Rng rng(4);
  const auto battery =
      UniformAreaQueries(ds.items, ds.domain, 8, 5, 0.4, &rng);
  for (const auto& b : built) {
    const auto result = EvaluateOnBattery(b, battery);
    EXPECT_EQ(result.errors.count, 8u);
    EXPECT_LT(result.errors.mean_abs, 0.5);
  }
}

TEST(BuildMethodsNd, NdKeyWithD3DataMatchesDirectBuild) {
  // d = 3 data flows end to end through the harness under the "nd" key,
  // and the harness-built sample is exactly the one a direct
  // ProductSummarizeNd call produces with the harness's derived seed (the
  // registry determinism contract), so HT estimates agree to the bit.
  NdCloudConfig gen;
  gen.num_points = 3000;
  gen.dims = 3;
  gen.seed = 11;
  const DatasetNd ds = GenerateNdCloud(gen);

  const auto built = BuildMethodsNd(ds, 200, {keys::kNd}, 555);
  ASSERT_EQ(built.size(), 1u);
  EXPECT_EQ(built[0].summary->Name(), "nd");
  const SampleSummary* got = built[0].summary->AsSample();
  ASSERT_NE(got, nullptr);

  Rng seed_rng(555);  // BuildMethodsNd derives method seeds from Rng(seed)
  Rng rng(seed_rng.Next());
  const ResultNd want = ProductSummarizeNd(ds.coords, 3, ds.weights, 200.0,
                                           &rng);
  ASSERT_EQ(got->sample().size(), want.chosen.size());
  std::vector<KeyId> got_ids, want_ids;
  for (const auto& e : got->sample().entries()) got_ids.push_back(e.id);
  for (std::size_t i : want.chosen) {
    want_ids.push_back(static_cast<KeyId>(i));
  }
  std::sort(got_ids.begin(), got_ids.end());
  std::sort(want_ids.begin(), want_ids.end());
  EXPECT_EQ(got_ids, want_ids);
  EXPECT_DOUBLE_EQ(got->tau(), want.tau);

  // HT tolerance on real 3-d box queries.
  Rng qrng(7);
  const NdQueryBattery battery =
      UniformVolumeQueriesNd(ds, 12, 0.5, &qrng);
  const BatteryResult r = EvaluateOnBatteryNd(built[0], battery, ds);
  EXPECT_EQ(r.errors.count, 12u);
  EXPECT_LT(r.errors.mean_abs, 0.05);
}

TEST(BuildMethodsNd, WeightOnlyMethodsFallBackToKeyedIngest) {
  // Methods without a coordinate path (obliv) ingest d = 3 data as keyed
  // items; id-keyed subset evaluation stays valid.
  NdCloudConfig gen;
  gen.num_points = 2000;
  gen.dims = 3;
  gen.seed = 21;
  const DatasetNd ds = GenerateNdCloud(gen);
  const auto built = BuildMethodsNd(ds, 150, {keys::kNd, keys::kObliv}, 99);
  ASSERT_EQ(built.size(), 2u);
  EXPECT_EQ(built[1].summary->Name(), "obliv");
  EXPECT_EQ(built[1].summary->SizeInElements(), 150u);

  Rng qrng(8);
  const NdQueryBattery battery =
      UniformVolumeQueriesNd(ds, 10, 0.5, &qrng);
  for (const auto& b : built) {
    const BatteryResult r = EvaluateOnBatteryNd(b, battery, ds);
    EXPECT_EQ(r.errors.count, 10u);
    EXPECT_LT(r.errors.mean_abs, 0.1);
  }
}

TEST(EvaluateOnBatteryNd, RejectsNonSampleSummaries) {
  // The deterministic baselines build over the 2-D projection but cannot
  // answer d-dimensional subset queries; the evaluator says so eagerly.
  NdCloudConfig gen;
  gen.num_points = 500;
  gen.dims = 3;
  gen.seed = 31;
  const DatasetNd ds = GenerateNdCloud(gen);
  const auto built = BuildMethodsNd(ds, 64, {keys::kWavelet}, 5);
  Rng qrng(9);
  const NdQueryBattery battery = UniformVolumeQueriesNd(ds, 3, 0.4, &qrng);
  EXPECT_THROW(EvaluateOnBatteryNd(built[0], battery, ds),
               std::invalid_argument);
}

TEST(EvaluateOnBattery, ErrorsAreFiniteAndSmallForSamples) {
  const auto ds = SmallDataset();
  Rng rng(9);
  const auto battery =
      UniformAreaQueries(ds.items, ds.domain, 10, 5, 0.4, &rng);
  const auto built = BuildMethods(ds, 200, {keys::kAware, keys::kObliv}, 11);
  for (const auto& b : built) {
    const auto result = EvaluateOnBattery(b, battery);
    EXPECT_EQ(result.errors.count, 10u);
    EXPECT_GE(result.query_seconds, 0.0);
    EXPECT_LT(result.errors.mean_abs, 0.5);
  }
}

TEST(Stopwatch, MeasuresElapsed) {
  Stopwatch sw;
  double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  ::testing::Test::RecordProperty("sink", static_cast<int>(sink / 1e9));
  EXPECT_GE(sw.Seconds(), 0.0);
  const double t1 = sw.Seconds();
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GE(sw.Seconds(), t1);
}

}  // namespace
}  // namespace sas
