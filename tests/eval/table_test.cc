#include "eval/table.h"

#include <gtest/gtest.h>

namespace sas {
namespace {

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::Num(0.5), "0.50000");
  EXPECT_EQ(Table::Num(0.0), "0.00000");
  EXPECT_EQ(Table::Num(1.5e-5), "1.500e-05");
  EXPECT_EQ(Table::Num(2.5e7), "2.500e+07");
}

TEST(Table, IntFormatting) {
  EXPECT_EQ(Table::Int(0), "0");
  EXPECT_EQ(Table::Int(123456), "123456");
}

TEST(Table, PrintDoesNotCrash) {
  Table t({"a", "bb"});
  t.AddRow({"1", "2"});
  t.AddRow({"longer", "x"});
  t.Print();  // smoke: aligned output to stdout
}

TEST(Table, RaggedRowsTolerated) {
  Table t({"a", "b", "c"});
  t.AddRow({"1"});
  t.AddRow({"1", "2", "3"});
  t.Print();
}

}  // namespace
}  // namespace sas
