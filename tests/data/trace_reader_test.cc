#include "data/trace_reader.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/fault.h"

namespace sas {
namespace {

TEST(TraceReader, ParsesMinimalThreeColumnLines) {
  std::istringstream in("0.5,7,12.25\n1.75,9,3\n");
  TraceReader reader(in);
  std::vector<TimedItem> batch;
  ASSERT_TRUE(reader.NextBatch(&batch));
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_DOUBLE_EQ(batch[0].ts, 0.5);
  EXPECT_EQ(batch[0].item.id, 7u);
  EXPECT_DOUBLE_EQ(batch[0].item.weight, 12.25);
  // Without x/y columns the key doubles as the x coordinate.
  EXPECT_EQ(batch[0].item.pt.x, 7u);
  EXPECT_EQ(batch[0].item.pt.y, 0u);
  EXPECT_DOUBLE_EQ(batch[1].ts, 1.75);
  EXPECT_FALSE(reader.NextBatch(&batch));
  EXPECT_EQ(reader.records_read(), 2u);
  EXPECT_EQ(reader.lines_skipped(), 0u);
}

TEST(TraceReader, ParsesOptionalCoordinateColumns) {
  std::istringstream in("1,42,2.5,1000\n2,43,3.5,2000,3000\n");
  TraceReader reader(in);
  std::vector<TimedItem> batch;
  ASSERT_TRUE(reader.NextBatch(&batch));
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].item.pt.x, 1000u);
  EXPECT_EQ(batch[0].item.pt.y, 0u);
  EXPECT_EQ(batch[1].item.pt.x, 2000u);
  EXPECT_EQ(batch[1].item.pt.y, 3000u);
}

TEST(TraceReader, BatchSizeBoundsEachCall) {
  std::string csv;
  for (int i = 0; i < 10; ++i) csv += std::to_string(i) + ",1,1\n";
  std::istringstream in(csv);
  TraceReader::Options opt;
  opt.batch_size = 4;
  TraceReader reader(in, opt);
  std::vector<TimedItem> batch;
  std::vector<std::size_t> sizes;
  while (reader.NextBatch(&batch)) sizes.push_back(batch.size());
  ASSERT_EQ(sizes.size(), 3u);
  EXPECT_EQ(sizes[0], 4u);
  EXPECT_EQ(sizes[1], 4u);
  EXPECT_EQ(sizes[2], 2u);
  EXPECT_EQ(reader.records_read(), 10u);
}

TEST(TraceReader, SkipsHeaderCommentsBlanksAndMalformedLines) {
  const std::string csv =
      "timestamp,key,weight\n"       // header: skipped silently
      "# collector v2 export\n"      // comment
      "\n"                           // blank
      "   \t\n"                      // whitespace-only
      "1.0,1,2.0\n"                  // good
      "not,a,record\n"               // malformed: counted
      "2.0,-3,1.0\n"                 // negative key: malformed
      "3.0,2\n"                      // too few fields: malformed
      "4.0,3,inf\n"                  // non-finite weight: malformed
      "5.0,4,4.0\r\n";               // CRLF line endings parse
  std::istringstream in(csv);
  TraceReader reader(in);
  std::vector<TimedItem> batch;
  std::vector<TimedItem> all;
  while (reader.NextBatch(&batch)) {
    all.insert(all.end(), batch.begin(), batch.end());
  }
  ASSERT_EQ(all.size(), 2u);
  EXPECT_DOUBLE_EQ(all[0].ts, 1.0);
  EXPECT_DOUBLE_EQ(all[1].ts, 5.0);
  EXPECT_DOUBLE_EQ(all[1].item.weight, 4.0);
  EXPECT_EQ(reader.records_read(), 2u);
  EXPECT_EQ(reader.lines_skipped(), 4u);
}

TEST(TraceReader, EmptyStream) {
  std::istringstream in("");
  TraceReader reader(in);
  std::vector<TimedItem> batch{{1.0, {0, 1.0, {0, 0}}}};
  EXPECT_FALSE(reader.NextBatch(&batch));
  EXPECT_TRUE(batch.empty());  // cleared even at EOF
  EXPECT_EQ(reader.records_read(), 0u);
}

TEST(TraceReader, StatsClassifyEveryMalformedRowClass) {
  // One row per malformed/non-finite class, bracketed by good rows (the
  // leading good row claims the silent header-skip slot, so every bad row
  // below is counted). lines_skipped() stays the sum of both counters.
  const std::string csv =
      "1.0,1,2.0\n"        // good
      "2.0,2\n"            // too few fields: malformed
      "x,3,1.0\n"          // unparseable timestamp: malformed
      "3.0,-4,1.0\n"       // negative key: malformed
      "4.0,5,1.0,zz\n"     // unparseable x coordinate: malformed
      "5.0,6,inf\n"        // infinite weight: non-finite
      "6.0,7,nan\n"        // NaN weight: non-finite
      "inf,8,1.0\n"        // infinite timestamp: non-finite
      "7.0,9,3.0\n";       // good
  std::istringstream in(csv);
  TraceReader reader(in);
  std::vector<TimedItem> batch;
  std::vector<TimedItem> all;
  while (reader.NextBatch(&batch)) {
    all.insert(all.end(), batch.begin(), batch.end());
  }
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(reader.stats().parsed, 2u);
  EXPECT_EQ(reader.stats().malformed, 4u);
  EXPECT_EQ(reader.stats().nonfinite, 3u);
  EXPECT_EQ(reader.records_read(), 2u);
  EXPECT_EQ(reader.lines_skipped(), 7u);
}

TEST(TraceReader, HeaderLineIsNotCountedAgainstStats) {
  std::istringstream in("ts,key,weight\n1.0,1,2.0\n");
  TraceReader reader(in);
  std::vector<TimedItem> batch;
  ASSERT_TRUE(reader.NextBatch(&batch));
  EXPECT_EQ(reader.stats().parsed, 1u);
  EXPECT_EQ(reader.stats().malformed, 0u);
  EXPECT_EQ(reader.stats().nonfinite, 0u);
}

TEST(TraceReader, TraceRowFaultCorruptsGoodRowsDeterministically) {
  // The trace.row fault site drops otherwise-good rows as if mangled on
  // the wire: schedule fail@2/2 corrupts every even good row. Bad rows
  // never reach the site (only parsed rows count as hits).
  std::string csv;
  for (int i = 0; i < 6; ++i) {
    csv += std::to_string(i) + ",1,1.0\n";
    csv += "bad,row\n";
  }
  FaultInjector faults;
  faults.Configure("trace.row=fail@2/2");
  TraceReader::Options opt;
  opt.faults = &faults;
  std::istringstream in(csv);
  TraceReader reader(in, opt);
  std::vector<TimedItem> batch;
  std::vector<TimedItem> all;
  while (reader.NextBatch(&batch)) {
    all.insert(all.end(), batch.begin(), batch.end());
  }
  // Good rows 2, 4, 6 corrupted; 1, 3, 5 survive. The leading good row
  // claimed the header-skip slot, so all six "bad,row" lines count as
  // malformed, plus the three corrupted rows.
  ASSERT_EQ(all.size(), 3u);
  EXPECT_DOUBLE_EQ(all[0].ts, 0.0);
  EXPECT_DOUBLE_EQ(all[1].ts, 2.0);
  EXPECT_DOUBLE_EQ(all[2].ts, 4.0);
  EXPECT_EQ(reader.stats().parsed, 3u);
  EXPECT_EQ(reader.stats().malformed, 9u);
  EXPECT_EQ(faults.HitCount("trace.row"), 6u);
}

TEST(TraceReader, SpacePaddingAndCustomDelimiter) {
  std::istringstream in(" 1.5 ;\t8 ; 2.5 \n");
  TraceReader::Options opt;
  opt.delimiter = ';';
  TraceReader reader(in, opt);
  std::vector<TimedItem> batch;
  ASSERT_TRUE(reader.NextBatch(&batch));
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_DOUBLE_EQ(batch[0].ts, 1.5);
  EXPECT_EQ(batch[0].item.id, 8u);
  EXPECT_DOUBLE_EQ(batch[0].item.weight, 2.5);
}

}  // namespace
}  // namespace sas
