#include "data/nd_gen.h"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <vector>

namespace sas {
namespace {

TEST(GenerateNdCloud, PointsAreDistinctAndInDomain) {
  for (int dims : {1, 2, 3, 4}) {
    NdCloudConfig cfg;
    cfg.num_points = 2000;
    cfg.dims = dims;
    cfg.seed = 7 + dims;
    const DatasetNd ds = GenerateNdCloud(cfg);
    ASSERT_EQ(ds.dims, dims);
    ASSERT_EQ(ds.num_points(), 2000u);
    ASSERT_EQ(ds.coords.size(), 2000u * dims);
    ASSERT_EQ(ds.weights.size(), 2000u);
    const Coord domain = ds.axis_domain();
    std::set<std::vector<Coord>> seen;
    for (std::size_t i = 0; i < ds.num_points(); ++i) {
      std::vector<Coord> pt(ds.point(i), ds.point(i) + dims);
      for (Coord c : pt) EXPECT_LT(c, domain);
      EXPECT_TRUE(seen.insert(pt).second) << "duplicate point " << i;
      EXPECT_GT(ds.weights[i], 0.0);
    }
  }
}

TEST(GenerateNdCloud, DeterministicForFixedSeed) {
  NdCloudConfig cfg;
  cfg.num_points = 500;
  cfg.dims = 3;
  cfg.seed = 99;
  const DatasetNd a = GenerateNdCloud(cfg);
  const DatasetNd b = GenerateNdCloud(cfg);
  EXPECT_EQ(a.coords, b.coords);
  EXPECT_EQ(a.weights, b.weights);
}

TEST(GenerateNdCloud, RejectsImpossibleConfigs) {
  // Bad dimension counts fail eagerly (no SIGFPE from 24 / 0).
  for (int dims : {-1, 0, 17}) {
    NdCloudConfig cfg;
    cfg.dims = dims;
    EXPECT_THROW(GenerateNdCloud(cfg), std::invalid_argument)
        << "dims=" << dims;
  }
  // A domain too small for the requested distinct points fails eagerly
  // instead of spinning forever in the redraw loop.
  NdCloudConfig tiny;
  tiny.num_points = 20000;
  tiny.dims = 1;
  tiny.axis_bits = 10;  // only 1024 distinct coordinates
  EXPECT_THROW(GenerateNdCloud(tiny), std::invalid_argument);
}

TEST(UniformVolumeQueriesNd, ExactAnswersMatchBruteForce) {
  NdCloudConfig cfg;
  cfg.num_points = 800;
  cfg.dims = 3;
  cfg.seed = 5;
  const DatasetNd ds = GenerateNdCloud(cfg);
  Rng rng(11);
  const NdQueryBattery battery = UniformVolumeQueriesNd(ds, 20, 0.5, &rng);
  ASSERT_EQ(battery.queries.size(), 20u);
  EXPECT_DOUBLE_EQ(battery.data_total, ds.total_weight());
  for (const NdQuery& q : battery.queries) {
    ASSERT_EQ(q.box.size(), static_cast<std::size_t>(ds.dims));
    Weight brute = 0.0;
    for (std::size_t i = 0; i < ds.num_points(); ++i) {
      if (BoxNContains(q.box, ds.point(i))) brute += ds.weights[i];
    }
    EXPECT_DOUBLE_EQ(q.exact, brute);
  }
}

}  // namespace
}  // namespace sas
