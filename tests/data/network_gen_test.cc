#include "data/network_gen.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <unordered_set>

namespace sas {
namespace {

NetworkConfig SmallConfig() {
  NetworkConfig cfg;
  cfg.num_sources = 800;
  cfg.num_dests = 600;
  cfg.num_pairs = 3000;
  cfg.bits = 20;
  cfg.seed = 11;
  return cfg;
}

TEST(ClusteredAddresses, CountAndDistinct) {
  Rng rng(1);
  const auto addrs = GenerateClusteredAddresses(5000, 24, &rng);
  EXPECT_EQ(addrs.size(), 5000u);
  std::set<Coord> distinct(addrs.begin(), addrs.end());
  EXPECT_EQ(distinct.size(), 5000u);
  for (Coord a : addrs) EXPECT_LT(a, Coord{1} << 24);
}

TEST(ClusteredAddresses, ActuallyClustered) {
  // Compare the number of distinct /12 prefixes against a uniform draw:
  // clustering must concentrate addresses into fewer prefixes.
  Rng rng(2);
  const int bits = 24;
  const auto addrs = GenerateClusteredAddresses(4096, bits, &rng);
  std::set<Coord> prefixes;
  for (Coord a : addrs) prefixes.insert(a >> 12);
  // Uniform: ~min(4096, 2^12) ≈ 2589 distinct prefixes (coupon-collector);
  // clustered: far fewer.
  EXPECT_LT(prefixes.size(), 1500u);
  EXPECT_GE(prefixes.size(), 2u);
}

TEST(GenerateNetwork, CardinalitiesMatchConfig) {
  const auto ds = GenerateNetwork(SmallConfig());
  EXPECT_EQ(ds.items.size(), 3000u);
  EXPECT_EQ(ds.name, "network");
  std::unordered_set<std::uint64_t> pairs;
  std::set<Coord> srcs, dsts;
  for (const auto& it : ds.items) {
    pairs.insert((it.pt.x << 20) | it.pt.y);
    srcs.insert(it.pt.x);
    dsts.insert(it.pt.y);
    EXPECT_GT(it.weight, 0.0);
  }
  EXPECT_EQ(pairs.size(), 3000u);  // pairs distinct
  EXPECT_LE(srcs.size(), 800u);
  EXPECT_LE(dsts.size(), 600u);
}

TEST(GenerateNetwork, Deterministic) {
  const auto a = GenerateNetwork(SmallConfig());
  const auto b = GenerateNetwork(SmallConfig());
  ASSERT_EQ(a.items.size(), b.items.size());
  for (std::size_t i = 0; i < a.items.size(); ++i) {
    EXPECT_EQ(a.items[i].pt, b.items[i].pt);
    EXPECT_DOUBLE_EQ(a.items[i].weight, b.items[i].weight);
  }
}

TEST(GenerateNetwork, SeedChangesData) {
  auto cfg = SmallConfig();
  const auto a = GenerateNetwork(cfg);
  cfg.seed = 999;
  const auto b = GenerateNetwork(cfg);
  bool any_diff = false;
  for (std::size_t i = 0; i < std::min(a.items.size(), b.items.size()); ++i) {
    any_diff |= !(a.items[i].pt == b.items[i].pt);
  }
  EXPECT_TRUE(any_diff);
}

TEST(GenerateNetwork, HierarchiesPresent) {
  const auto ds = GenerateNetwork(SmallConfig());
  ASSERT_NE(ds.hx, nullptr);
  ASSERT_NE(ds.hy, nullptr);
  EXPECT_EQ(ds.domain.x.hierarchy, ds.hx.get());
  EXPECT_EQ(ds.domain.x.kind, AxisKind::kHierarchy);
  // Hierarchy covers the distinct x-coordinates.
  std::set<Coord> xs;
  for (const auto& it : ds.items) xs.insert(it.pt.x);
  EXPECT_EQ(ds.hx->num_keys(), xs.size());
}

TEST(GenerateNetwork, WeightsHeavyTailed) {
  const auto ds = GenerateNetwork(SmallConfig());
  Weight total = 0.0, max_w = 0.0;
  for (const auto& it : ds.items) {
    total += it.weight;
    max_w = std::max(max_w, it.weight);
  }
  EXPECT_GT(max_w / total, 1e-4);
}

}  // namespace
}  // namespace sas
