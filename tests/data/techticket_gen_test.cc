#include "data/techticket_gen.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <unordered_set>

namespace sas {
namespace {

TechTicketConfig SmallConfig() {
  TechTicketConfig cfg;
  cfg.num_codes = 300;
  cfg.num_locations = 2000;
  cfg.num_pairs = 8000;
  cfg.bits = 16;
  cfg.seed = 21;
  return cfg;
}

TEST(GenerateTechTicket, CardinalitiesMatchConfig) {
  const auto ds = GenerateTechTicket(SmallConfig());
  EXPECT_EQ(ds.items.size(), 8000u);
  EXPECT_EQ(ds.name, "techticket");
  std::unordered_set<std::uint64_t> pairs;
  for (const auto& it : ds.items) {
    pairs.insert((it.pt.x << 16) | it.pt.y);
    EXPECT_GT(it.weight, 0.0);
    EXPECT_LT(it.pt.x, Coord{1} << 16);
    EXPECT_LT(it.pt.y, Coord{1} << 16);
  }
  EXPECT_EQ(pairs.size(), 8000u);
}

TEST(GenerateTechTicket, HierarchyLeafCounts) {
  const auto ds = GenerateTechTicket(SmallConfig());
  ASSERT_NE(ds.hx, nullptr);
  ASSERT_NE(ds.hy, nullptr);
  EXPECT_EQ(ds.hx->num_keys(), 300u);
  EXPECT_EQ(ds.hy->num_keys(), 2000u);
}

TEST(GenerateTechTicket, CoordsConsistentWithHierarchies) {
  // Every item x-coordinate must be a leaf coordinate of hx, and the
  // hierarchy leaf coordinates are strictly increasing in DFS rank.
  const auto ds = GenerateTechTicket(SmallConfig());
  std::set<Coord> leaf_coords;
  for (std::size_t r = 0; r < ds.hx->num_keys(); ++r) {
    leaf_coords.insert(ds.hx->coord_of_key(ds.hx->key_at_rank(r)));
  }
  for (const auto& it : ds.items) {
    EXPECT_TRUE(leaf_coords.count(it.pt.x)) << "x=" << it.pt.x;
  }
  Coord prev = 0;
  bool first = true;
  for (std::size_t r = 0; r < ds.hx->num_keys(); ++r) {
    const Coord c = ds.hx->coord_of_key(ds.hx->key_at_rank(r));
    if (!first) {
      EXPECT_LT(prev, c);
    }
    prev = c;
    first = false;
  }
}

TEST(GenerateTechTicket, Deterministic) {
  const auto a = GenerateTechTicket(SmallConfig());
  const auto b = GenerateTechTicket(SmallConfig());
  ASSERT_EQ(a.items.size(), b.items.size());
  for (std::size_t i = 0; i < a.items.size(); ++i) {
    EXPECT_EQ(a.items[i].pt, b.items[i].pt);
    EXPECT_DOUBLE_EQ(a.items[i].weight, b.items[i].weight);
  }
}

TEST(GenerateTechTicket, HeavyHeadExists) {
  // Section 6.4: the dataset must contain many keys heavy enough to be
  // certain inclusions at moderate sample sizes.
  const auto ds = GenerateTechTicket(SmallConfig());
  std::vector<Weight> w = ds.Weights();
  std::sort(w.begin(), w.end(), std::greater<>());
  // Top 1% of keys hold a large share of the mass.
  Weight total = 0.0, head = 0.0;
  for (std::size_t i = 0; i < w.size(); ++i) {
    total += w[i];
    if (i < w.size() / 100) head += w[i];
  }
  EXPECT_GT(head / total, 0.1);
}

}  // namespace
}  // namespace sas
