#include "data/query_gen.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/random.h"
#include "summaries/exact_summary.h"

namespace sas {
namespace {

std::vector<WeightedKey> GridItems(Coord side, Coord spacing) {
  std::vector<WeightedKey> items;
  KeyId id = 0;
  for (Coord x = 0; x < side; ++x) {
    for (Coord y = 0; y < side; ++y) {
      items.push_back({id++, 1.0, {x * spacing, y * spacing}});
    }
  }
  return items;
}

ProductDomain2D MakeDomain(int bits) {
  ProductDomain2D d;
  d.x.bits = bits;
  d.y.bits = bits;
  return d;
}

TEST(UniformAreaQueries, ShapeAndExactness) {
  Rng rng(1);
  const auto items = GridItems(32, 8);  // domain 256
  const auto domain = MakeDomain(8);
  const auto battery = UniformAreaQueries(items, domain, 20, 5, 0.5, &rng);
  EXPECT_EQ(battery.queries.size(), 20u);
  EXPECT_DOUBLE_EQ(battery.data_total, 1024.0);
  for (const auto& q : battery.queries) {
    EXPECT_EQ(q.boxes.size(), 5u);
    EXPECT_DOUBLE_EQ(q.exact, ExactQuerySum(items, q));
    for (const auto& b : q.boxes) {
      EXPECT_LE(b.x.hi, domain.x.size());
      EXPECT_LE(b.y.hi, domain.y.size());
      EXPECT_FALSE(b.Empty());
    }
  }
}

TEST(UniformAreaQueries, RectanglesDisjoint) {
  Rng rng(2);
  const auto items = GridItems(16, 16);
  const auto domain = MakeDomain(8);
  const auto battery = UniformAreaQueries(items, domain, 10, 8, 0.3, &rng);
  for (const auto& q : battery.queries) {
    for (std::size_t i = 0; i < q.boxes.size(); ++i) {
      for (std::size_t j = i + 1; j < q.boxes.size(); ++j) {
        EXPECT_FALSE(BoxesIntersect(q.boxes[i], q.boxes[j]));
      }
    }
  }
}

TEST(WeightPartition, CellsCoverData) {
  Rng rng(3);
  const auto items = GridItems(32, 4);
  const WeightPartition part(items, MakeDomain(7));
  for (int depth : {1, 3, 5}) {
    const auto cells = part.CellsAtDepth(depth);
    EXPECT_GE(cells.size(), 1u);
    // Every item lies in exactly one cell.
    for (const auto& it : items) {
      int hits = 0;
      for (const auto& c : cells) hits += c.Contains(it.pt);
      EXPECT_EQ(hits, 1) << "item at " << it.pt.x << "," << it.pt.y;
    }
  }
}

TEST(WeightPartition, CellsAtDepthBalanceWeight) {
  Rng rng(4);
  std::vector<WeightedKey> items;
  for (KeyId i = 0; i < 4096; ++i) {
    items.push_back({i, 1.0, {rng.NextBounded(1 << 16), rng.NextBounded(1 << 16)}});
  }
  const WeightPartition part(items, MakeDomain(16));
  const auto cells = part.CellsAtDepth(4);
  EXPECT_EQ(cells.size(), 16u);
  for (const auto& c : cells) {
    const Weight w = ExactBoxSum(items, c);
    EXPECT_NEAR(w, 4096.0 / 16.0, 16.0);  // near-equal split
  }
}

TEST(UniformWeightQueries, ShapeAndExactness) {
  Rng rng(5);
  const auto items = GridItems(32, 8);
  const WeightPartition part(items, MakeDomain(8));
  const auto battery = UniformWeightQueries(items, part, 15, 4, 5, &rng);
  EXPECT_EQ(battery.queries.size(), 15u);
  for (const auto& q : battery.queries) {
    EXPECT_EQ(q.boxes.size(), 4u);
    EXPECT_DOUBLE_EQ(q.exact, ExactQuerySum(items, q));
    // Distinct cells at one depth are disjoint.
    for (std::size_t i = 0; i < q.boxes.size(); ++i) {
      for (std::size_t j = i + 1; j < q.boxes.size(); ++j) {
        EXPECT_FALSE(BoxesIntersect(q.boxes[i], q.boxes[j]));
      }
    }
  }
}

TEST(UniformWeightQueries, QueryWeightTracksDepth) {
  Rng rng(6);
  const auto items = GridItems(64, 4);
  const WeightPartition part(items, MakeDomain(8));
  // One cell at depth d holds ~ total / 2^d.
  const auto shallow = UniformWeightQueries(items, part, 10, 1, 2, &rng);
  const auto deep = UniformWeightQueries(items, part, 10, 1, 6, &rng);
  double mean_shallow = 0.0, mean_deep = 0.0;
  for (const auto& q : shallow.queries) mean_shallow += q.exact;
  for (const auto& q : deep.queries) mean_deep += q.exact;
  mean_shallow /= 10;
  mean_deep /= 10;
  EXPECT_GT(mean_shallow, 3.0 * mean_deep);
}

}  // namespace
}  // namespace sas
