#include "data/zipf.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace sas {
namespace {

TEST(Zipf, SamplesInRange) {
  ZipfDistribution z(100, 1.0);
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(z.Sample(&rng), 100u);
  }
}

TEST(Zipf, RankZeroMostPopular) {
  ZipfDistribution z(1000, 1.0);
  Rng rng(2);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 100000; ++i) counts[z.Sample(&rng)]++;
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], counts[100]);
  EXPECT_GT(counts[10], counts[500]);
}

TEST(Zipf, FrequencyMatchesLaw) {
  // With theta=1, Pr[0]/Pr[1] = 2.
  ZipfDistribution z(50, 1.0);
  Rng rng(3);
  int c0 = 0, c1 = 0;
  for (int i = 0; i < 200000; ++i) {
    const std::size_t s = z.Sample(&rng);
    c0 += s == 0;
    c1 += s == 1;
  }
  EXPECT_NEAR(static_cast<double>(c0) / c1, 2.0, 0.15);
}

TEST(Zipf, ThetaZeroIsUniform) {
  ZipfDistribution z(10, 0.0);
  Rng rng(4);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) counts[z.Sample(&rng)]++;
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.01);
  }
}

TEST(Zipf, SingleElement) {
  ZipfDistribution z(1, 2.0);
  Rng rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(z.Sample(&rng), 0u);
}

TEST(ParetoWeights, AllAtLeastOne) {
  Rng rng(6);
  const auto w = ParetoWeights(1000, 1.5, &rng);
  ASSERT_EQ(w.size(), 1000u);
  for (Weight x : w) EXPECT_GE(x, 1.0);
}

TEST(ParetoWeights, HeavyTailed) {
  Rng rng(7);
  const auto w = ParetoWeights(100000, 1.1, &rng);
  Weight max_w = 0.0, total = 0.0;
  for (Weight x : w) {
    max_w = std::max(max_w, x);
    total += x;
  }
  // A heavy tail puts a noticeable fraction of the mass on the max element.
  EXPECT_GT(max_w / total, 0.005);
}

}  // namespace
}  // namespace sas
