// ServingSnapshot differential tests: the accelerated estimate paths must
// be BIT-IDENTICAL (EXPECT_EQ on doubles, not near) to the linear Sample
// scans across every sample-backed registry key family — the accelerated
// path reproduces the linear scan's addition order exactly. The *Fast
// prefix-difference paths are re-associated and are held to ulp-level
// relative tolerance instead (the SIMD reduction contract). Plus: alias
// table draw frequencies pass a chi-square test at fixed seed, and
// degenerate snapshots (empty, duplicate ids, zero weights) behave.

#include "serve/snapshot.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/registry.h"
#include "api/summary.h"
#include "core/random.h"
#include "structure/hierarchy.h"
#include "../api/test_util.h"

namespace sas {
namespace {

using test::RandomItems;

constexpr Coord kDomain = 1 << 10;
constexpr std::size_t kN = 120;

/// One registry key family plus the input/structure it needs (the
/// ingest_validation_test.cc case table, restricted to the sample-backed
/// methods the serving tier snapshots).
struct MethodCase {
  std::string key;
  const std::vector<WeightedKey>* items;
  StructureSpec structure;
};

struct Inputs {
  std::vector<WeightedKey> items;
  std::vector<WeightedKey> hier_items;
  Hierarchy hierarchy;
  std::vector<int> range_of;

  Inputs() : hierarchy(MakeTree()) {
    Rng rng(11);
    items = RandomItems(kN, kDomain, &rng);
    for (KeyId k = 0; k < kN; ++k) {
      hier_items.push_back({k, items[k].weight, {k, 0}});
    }
    for (std::size_t i = 0; i < kN; ++i) {
      range_of.push_back(static_cast<int>(i % 7));
    }
  }

  static Hierarchy MakeTree() {
    Rng tree_rng(12);
    return Hierarchy::Random(kN, 4, &tree_rng);
  }
};

std::vector<MethodCase> SampleBackedCases(const Inputs& in) {
  return {
      {"order", &in.items, StructureSpec::Order()},
      {"hierarchy", &in.hier_items,
       StructureSpec::OverHierarchy(&in.hierarchy)},
      {"disjoint", &in.items, StructureSpec::Disjoint(in.range_of, 7)},
      {"product", &in.items, StructureSpec::Product()},
      {"nd", &in.items, StructureSpec::Nd(2)},
      {"aware", &in.items, StructureSpec::Product()},
      {"order-2p", &in.items, StructureSpec::Order()},
      {"hierarchy-2p", &in.hier_items,
       StructureSpec::OverHierarchy(&in.hierarchy)},
      {"disjoint-2p", &in.items, StructureSpec::Disjoint(in.range_of, 7)},
      {"obliv", &in.items, StructureSpec::Product()},
      {"sharded:2:obliv", &in.items, StructureSpec::Product()},
      {"windowed:10:2:obliv", &in.items, StructureSpec::Product()},
      {"serve:obliv", &in.items, StructureSpec::Product()},
  };
}

SummarizerConfig BaseConfig(const MethodCase& c) {
  SummarizerConfig cfg;
  cfg.s = 32.0;
  cfg.seed = 4242;
  cfg.structure = c.structure;
  return cfg;
}

/// Deterministic battery of boxes covering empty, sliver, half-plane, and
/// full-domain shapes.
std::vector<Box> QueryBoxes(Rng* rng) {
  std::vector<Box> boxes = {
      {{0, kDomain}, {0, kDomain}},          // everything
      {{0, 0}, {0, kDomain}},                // empty x
      {{5, 6}, {0, kDomain}},                // x sliver
      {{0, kDomain / 2}, {0, kDomain}},      // half plane
      {{0, kDomain}, {kDomain / 2, kDomain}},
  };
  for (int i = 0; i < 40; ++i) {
    const Coord x1 = rng->NextBounded(kDomain);
    const Coord x2 = rng->NextBounded(kDomain);
    const Coord y1 = rng->NextBounded(kDomain);
    const Coord y2 = rng->NextBounded(kDomain);
    boxes.push_back({{std::min(x1, x2), std::max(x1, x2) + 1},
                     {std::min(y1, y2), std::max(y1, y2) + 1}});
  }
  return boxes;
}

TEST(ServingSnapshotDifferential, BoxEstimatesBitIdenticalAcrossFamilies) {
  const Inputs in;
  Rng box_rng(77);
  const auto boxes = QueryBoxes(&box_rng);
  QueryScratch scratch;
  for (const MethodCase& c : SampleBackedCases(in)) {
    SCOPED_TRACE(c.key);
    auto builder = MakeSummarizer(c.key, BaseConfig(c));
    builder->AddBatch(*c.items);
    const auto summary = builder->Finalize();
    const SampleSummary* ss = summary->AsSample();
    ASSERT_NE(ss, nullptr);
    const Sample& sample = ss->sample();
    const ServingSnapshot snap(sample);

    EXPECT_EQ(snap.TotalWeight(), sample.EstimateTotal());
    for (const Box& box : boxes) {
      // EXPECT_EQ, not NEAR: the accelerated path must reproduce the
      // linear scan's floating-point result bit for bit.
      EXPECT_EQ(snap.EstimateBox(box, &scratch), sample.EstimateBox(box));
      EXPECT_EQ(snap.CountInBox(box), sample.CountInBox(box));
    }
  }
}

TEST(ServingSnapshotDifferential, MultiBoxQueriesBitIdentical) {
  const Inputs in;
  Rng box_rng(78);
  const auto boxes = QueryBoxes(&box_rng);
  QueryScratch scratch;
  for (const MethodCase& c : SampleBackedCases(in)) {
    SCOPED_TRACE(c.key);
    auto builder = MakeSummarizer(c.key, BaseConfig(c));
    builder->AddBatch(*c.items);
    const auto summary = builder->Finalize();
    const Sample& sample = summary->AsSample()->sample();
    const ServingSnapshot snap(sample);

    // Disjoint-by-construction rectangle pairs: split the domain on x.
    for (std::size_t i = 0; i + 1 < boxes.size(); i += 2) {
      MultiRangeQuery q;
      q.boxes.push_back({{0, kDomain / 2}, boxes[i].y});
      q.boxes.push_back({{kDomain / 2, kDomain}, boxes[i + 1].y});
      EXPECT_EQ(snap.EstimateQuery(q, &scratch), sample.EstimateQuery(q));
    }
  }
}

TEST(ServingSnapshotDifferential, IdRangeSubsetsBitIdentical) {
  const Inputs in;
  QueryScratch scratch;
  for (const MethodCase& c : SampleBackedCases(in)) {
    SCOPED_TRACE(c.key);
    auto builder = MakeSummarizer(c.key, BaseConfig(c));
    builder->AddBatch(*c.items);
    const auto summary = builder->Finalize();
    const Sample& sample = summary->AsSample()->sample();
    const ServingSnapshot snap(sample);

    Rng range_rng(99);
    for (int i = 0; i < 50; ++i) {
      const KeyId a = static_cast<KeyId>(range_rng.NextBounded(kN + 10));
      const KeyId b = static_cast<KeyId>(range_rng.NextBounded(kN + 10));
      const KeyId lo = std::min(a, b);
      const KeyId hi = std::max(a, b);
      const Weight linear = sample.EstimateSubset(
          [&](const WeightedKey& k) { return k.id >= lo && k.id < hi; });
      EXPECT_EQ(snap.EstimateIdRange(lo, hi, &scratch), linear)
          << "[" << lo << ", " << hi << ")";
    }
  }
}

TEST(ServingSnapshotDifferential, FastPathsMatchToUlpLevel) {
  const Inputs in;
  Rng box_rng(79);
  const auto boxes = QueryBoxes(&box_rng);
  for (const MethodCase& c : SampleBackedCases(in)) {
    SCOPED_TRACE(c.key);
    auto builder = MakeSummarizer(c.key, BaseConfig(c));
    builder->AddBatch(*c.items);
    const auto summary = builder->Finalize();
    const Sample& sample = summary->AsSample()->sample();
    const ServingSnapshot snap(sample);

    // The prefix-difference paths re-associate the additions: near-equality
    // only, the same contract as the SIMD reductions (docs/simd.md).
    const Weight total = sample.EstimateTotal();
    EXPECT_NEAR(snap.EstimateIdRangeFast(0, kN + 1), total,
                1e-9 * std::max(1.0, std::abs(total)));
    for (const Box& box : boxes) {
      const Weight linear = sample.EstimateBox(box);
      EXPECT_NEAR(snap.EstimateBoxFast(box), linear,
                  1e-9 * std::max(1.0, std::abs(linear)));
    }
  }
}

TEST(ServingSnapshot, DuplicateIdsFromMergedWindowsAreHandled) {
  // Merged windows can carry one key id twice (the same flow sampled in
  // two buckets). The position indexes order duplicates by position, so
  // the bit-identity contract must hold verbatim.
  std::vector<WeightedKey> entries = {
      {7, 3.0, {1, 1}}, {3, 1.0, {2, 2}}, {7, 2.0, {3, 3}},
      {3, 5.0, {4, 4}}, {9, 1.5, {5, 5}},
  };
  const Sample sample(2.0, entries);
  const ServingSnapshot snap(sample);
  QueryScratch scratch;

  EXPECT_EQ(snap.EstimateIdRange(3, 8, &scratch),
            sample.EstimateSubset(
                [](const WeightedKey& k) { return k.id >= 3 && k.id < 8; }));
  EXPECT_EQ(snap.EstimateIdRange(7, 8, &scratch),
            sample.EstimateSubset(
                [](const WeightedKey& k) { return k.id == 7; }));
  const Box all{{0, 10}, {0, 10}};
  EXPECT_EQ(snap.EstimateBox(all, &scratch), sample.EstimateBox(all));
  EXPECT_EQ(snap.TotalWeight(), sample.EstimateTotal());
}

TEST(ServingSnapshot, EmptySnapshot) {
  const Sample empty;
  const ServingSnapshot snap(empty);
  QueryScratch scratch;
  EXPECT_EQ(snap.size(), 0u);
  EXPECT_EQ(snap.TotalWeight(), 0.0);
  EXPECT_EQ(snap.EstimateBox({{0, 10}, {0, 10}}, &scratch), 0.0);
  EXPECT_EQ(snap.EstimateIdRange(0, 100, &scratch), 0.0);
  EXPECT_EQ(snap.EstimateIdRangeFast(0, 100), 0.0);
  Rng rng(1);
  EXPECT_THROW(snap.DrawIndex(&rng), std::logic_error);
}

TEST(ServingSnapshot, AliasTableDrawFrequenciesPassChiSquare) {
  // Adjusted weights under tau = 2: {2, 2, 3, 4, 5, 6, 7, 8} (the first
  // two entries sit below the threshold). 200k draws at a fixed seed; the
  // chi-square statistic against the proportional expectation must stay
  // under the 99.9% quantile for df = 7 (24.32) with margin.
  std::vector<WeightedKey> entries;
  const double weights[] = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0};
  for (KeyId i = 0; i < 8; ++i) {
    entries.push_back({i, weights[i], {i, i}});
  }
  const Sample sample(2.0, entries);
  const ServingSnapshot snap(sample);

  constexpr std::size_t kDraws = 200000;
  Rng rng(123456);
  std::vector<std::uint64_t> observed(8, 0);
  for (std::size_t d = 0; d < kDraws; ++d) {
    const std::size_t idx = snap.DrawIndex(&rng);
    ASSERT_LT(idx, observed.size());
    ++observed[idx];
  }

  const double total = sample.EstimateTotal();  // 37
  double chi2 = 0.0;
  for (std::size_t i = 0; i < 8; ++i) {
    const double adjusted = sample.AdjustedWeight(entries[i]);
    const double expected = static_cast<double>(kDraws) * adjusted / total;
    const double delta = static_cast<double>(observed[i]) - expected;
    chi2 += delta * delta / expected;
  }
  EXPECT_LT(chi2, 24.32) << "draw frequencies are off proportional";
}

TEST(ServingSnapshot, ZeroWeightSampleDegeneratesToUniformDraws) {
  std::vector<WeightedKey> entries = {
      {0, 0.0, {0, 0}}, {1, 0.0, {1, 1}}, {2, 0.0, {2, 2}}};
  const Sample sample(0.0, entries);
  const ServingSnapshot snap(sample);
  Rng rng(7);
  std::vector<std::uint64_t> seen(3, 0);
  for (int i = 0; i < 3000; ++i) ++seen[snap.DrawIndex(&rng)];
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_GT(seen[i], 800u) << "column " << i;  // ~1000 expected each
  }
}

}  // namespace
}  // namespace sas
