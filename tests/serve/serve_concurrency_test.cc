// Serving-tier concurrency tests (tsan-labeled suite): N reader threads
// against one publisher, every reader must observe fully consistent
// snapshots (total-weight invariant — a torn read would break the
// entries/prefix/total agreement), a handle held across republishes stays
// valid and bit-stable, retired snapshots are reclaimed only after the
// last reader leaves, and the epoch domain's pin/advance protocol holds
// under direct unit drive. The suite's ctest TIMEOUT is the no-livelock
// assertion for the lock-free read path.

#include "serve/query_service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "api/registry.h"
#include "core/epoch.h"
#include "serve/servable.h"
#include "window/windowed.h"
#include "../api/test_util.h"

namespace sas {
namespace {

using test::RandomItems;

/// A sample whose internal consistency is checkable from any thread: n
/// entries of weight 1 under tau 0, so TotalWeight == size == n exactly
/// (integer-valued doubles; no rounding).
Sample CountingSample(std::uint32_t n) {
  std::vector<WeightedKey> entries;
  entries.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    entries.push_back({i, 1.0, {i, i}});
  }
  return Sample(0.0, std::move(entries));
}

TEST(EpochDomain, PinAdvanceReclaimProtocol) {
  EpochDomain ed;
  EXPECT_EQ(ed.current_epoch(), 0u);
  EXPECT_EQ(ed.MinActiveEpoch(), EpochDomain::kIdle);

  const int slot = ed.RegisterReader();
  EXPECT_EQ(ed.Pin(slot), 0u);
  EXPECT_EQ(ed.MinActiveEpoch(), 0u);
  EXPECT_EQ(ed.PinnedReaders(), 1);

  // State retired under tag 0 is NOT reclaimable while the pin holds...
  EXPECT_EQ(ed.Advance(), 1u);
  EXPECT_FALSE(ed.MinActiveEpoch() > 0u);

  // ...and becomes reclaimable the moment the reader unpins.
  ed.Unpin(slot);
  EXPECT_EQ(ed.MinActiveEpoch(), EpochDomain::kIdle);
  EXPECT_GT(EpochDomain::kIdle, 0u);

  // A re-pin after the advance advertises the new epoch.
  EXPECT_EQ(ed.Pin(slot), 1u);
  ed.Unpin(slot);
  ed.UnregisterReader(slot);
  EXPECT_EQ(ed.RegisteredReaders(), 0);
}

TEST(EpochDomain, SlotExhaustionThrows) {
  EpochDomain ed;
  std::vector<int> slots;
  for (int i = 0; i < EpochDomain::kMaxReaders; ++i) {
    slots.push_back(ed.RegisterReader());
  }
  EXPECT_THROW(ed.RegisterReader(), std::runtime_error);
  ed.UnregisterReader(slots.back());
  EXPECT_NO_THROW(ed.UnregisterReader(ed.RegisterReader()));
  for (std::size_t i = 0; i + 1 < slots.size(); ++i) {
    ed.UnregisterReader(slots[i]);
  }
}

TEST(QueryService, AcquireBeforeAnyPublishThrows) {
  QueryService svc;
  QueryService::Reader reader(svc);
  EXPECT_FALSE(svc.has_snapshot());
  EXPECT_THROW(reader.Acquire(), std::logic_error);
  EXPECT_FALSE(reader.TryAcquire());
  // The failed acquires left no pin behind.
  EXPECT_EQ(svc.pinned_readers(), 0);
}

TEST(QueryService, DoubledAcquireThrows) {
  QueryService svc;
  svc.Publish(CountingSample(3));
  QueryService::Reader reader(svc);
  SnapshotHandle h = reader.Acquire();
  EXPECT_THROW(reader.Acquire(), std::logic_error);
  h.Release();
  EXPECT_NO_THROW(reader.Acquire());
}

TEST(QueryService, HandleHeldAcrossRepublishStaysValidAndBitStable) {
  QueryService svc;
  svc.Publish(CountingSample(10));

  QueryService::Reader reader(svc);
  SnapshotHandle held = reader.Acquire();
  ASSERT_TRUE(held);
  EXPECT_EQ(held->TotalWeight(), 10.0);

  // Republished ten times while the handle pins the original epoch: the
  // displaced snapshots queue up un-reclaimed (the held one is the oldest).
  for (std::uint32_t n = 11; n <= 20; ++n) svc.Publish(CountingSample(n));
  EXPECT_EQ(svc.publishes(), 11u);
  EXPECT_GE(svc.retired_pending(), 1u);

  // The held snapshot is untouched, bit-stable, fully queryable.
  EXPECT_EQ(held->TotalWeight(), 10.0);
  EXPECT_EQ(held->size(), 10u);
  EXPECT_EQ(held->EstimateIdRange(0, 5, &reader.scratch()), 5.0);
  EXPECT_EQ(held->sample().EstimateTotal(), 10.0);

  // Release, republish once more: with no reader pinned, that publish's
  // reclamation pass frees everything — including the just-displaced
  // snapshot (min active epoch is "idle" = unbounded).
  held.Release();
  svc.Publish(CountingSample(21));
  EXPECT_EQ(svc.retired_pending(), 0u);
  EXPECT_EQ(svc.reclaimed(), 11u);

  SnapshotHandle fresh = reader.Acquire();
  EXPECT_EQ(fresh->TotalWeight(), 21.0);
}

TEST(QueryService, ConcurrentReadersSeeOnlyConsistentSnapshots) {
  constexpr int kReaders = 4;
  constexpr std::uint32_t kPublishes = 150;

  QueryService svc;
  svc.Publish(CountingSample(1));

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> total_reads{0};
  std::atomic<bool> torn{false};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      QueryService::Reader reader(svc);
      while (!stop.load(std::memory_order_acquire)) {
        SnapshotHandle snap = reader.Acquire();
        // Consistency invariant of CountingSample(n): every view of the
        // snapshot agrees on n. A torn snapshot (entries from one publish,
        // prefix array or total from another) breaks at least one
        // equality.
        const double total = snap->TotalWeight();
        const double n = static_cast<double>(snap->size());
        const bool consistent =
            total == n && total >= 1.0 &&
            total <= static_cast<double>(kPublishes) &&
            snap->EstimateIdRangeFast(0, ~KeyId{0}) == total &&
            snap->EstimateIdRange(0, ~KeyId{0}, &reader.scratch()) == total &&
            snap->sample().EstimateTotal() == total;
        if (!consistent) torn.store(true, std::memory_order_release);
        total_reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  for (std::uint32_t n = 2; n <= kPublishes; ++n) {
    svc.Publish(CountingSample(n));
    if (n % 16 == 0) std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  EXPECT_FALSE(torn.load());
  EXPECT_GT(total_reads.load(), 0u);
  EXPECT_EQ(svc.publishes(), kPublishes);

  // With every reader gone, one more publish drains all pending garbage:
  // every snapshot ever displaced (one per publish) has been freed.
  svc.Publish(CountingSample(1));
  EXPECT_EQ(svc.retired_pending(), 0u);
  EXPECT_EQ(svc.reclaimed(), kPublishes);
}

TEST(Servable, ServeKeyParsesAndRegisters) {
  EXPECT_TRUE(IsServeKey("serve:obliv"));
  EXPECT_FALSE(IsServeKey("obliv"));
  EXPECT_EQ(ParseServeKey("serve:windowed:10:2:obliv"), "windowed:10:2:obliv");
  EXPECT_THROW(ParseServeKey("serve:"), std::invalid_argument);

  EXPECT_TRUE(IsRegisteredSummarizer("serve:obliv"));
  EXPECT_TRUE(IsRegisteredSummarizer("serve:sharded:2:obliv"));
  EXPECT_FALSE(IsRegisteredSummarizer("serve:"));
  EXPECT_FALSE(IsRegisteredSummarizer("serve:no-such-method"));

  SummarizerConfig cfg;
  cfg.s = 16.0;
  EXPECT_THROW(MakeSummarizer("serve:", cfg), std::invalid_argument);
  EXPECT_THROW(MakeSummarizer("serve:no-such-method", cfg),
               std::invalid_argument);
}

TEST(Servable, ServeIsOutermostOnly) {
  // Not mergeable, so the sharded wrapper rejects it as an inner method —
  // exactly like any other non-mergeable key.
  SummarizerConfig cfg;
  cfg.s = 16.0;
  auto builder = MakeSummarizer("serve:obliv", cfg);
  EXPECT_FALSE(builder->Mergeable());
  EXPECT_THROW(MakeSummarizer("sharded:2:serve:obliv", cfg),
               std::invalid_argument);
}

TEST(Servable, FinalizePublishesAndSummaryKeepsComposedKey) {
  Rng rng(21);
  const auto items = RandomItems(200, 1 << 10, &rng);
  SummarizerConfig cfg;
  cfg.s = 48.0;
  cfg.seed = 99;

  auto builder = MakeSummarizer("serve:obliv", cfg);
  ServableSummarizer* servable = builder->AsServable();
  ASSERT_NE(servable, nullptr);
  auto service = servable->service();
  EXPECT_FALSE(service->has_snapshot());

  builder->AddBatch(items);
  const auto summary = builder->Finalize();
  EXPECT_EQ(summary->Name(), "serve:obliv");
  ASSERT_TRUE(service->has_snapshot());

  // The published snapshot is the finalized sample, bit for bit.
  QueryService::Reader reader(*service);
  SnapshotHandle snap = reader.Acquire();
  const Sample& finalized = summary->AsSample()->sample();
  EXPECT_EQ(snap->TotalWeight(), finalized.EstimateTotal());
  ASSERT_EQ(snap->size(), finalized.size());
  for (std::size_t i = 0; i < finalized.size(); ++i) {
    EXPECT_EQ(snap->sample().entries()[i].id, finalized.entries()[i].id);
  }

  // The build is bit-identical to the unwrapped method under the same
  // seed: serving is pure observation.
  auto plain = MakeSummarizer("obliv", cfg);
  plain->AddBatch(items);
  const auto plain_summary = plain->Finalize();
  EXPECT_EQ(snap->TotalWeight(),
            plain_summary->AsSample()->sample().EstimateTotal());
}

TEST(Servable, NonSampleBackedInnerRejectedAtFinalize) {
  SummarizerConfig cfg;
  cfg.s = 16.0;
  cfg.bits_x = 8;
  cfg.bits_y = 8;
  auto builder = MakeSummarizer("serve:wavelet", cfg);
  builder->Add({0, 1.0, {1, 1}});
  auto service = builder->AsServable()->service();
  EXPECT_THROW(builder->Finalize(), std::invalid_argument);
  // Nothing was published by the failed finalize.
  EXPECT_FALSE(service->has_snapshot());
}

TEST(Servable, WindowedInnerRepublishesOnRingAdvance) {
  Rng rng(31);
  const auto items = RandomItems(600, 1 << 10, &rng);
  SummarizerConfig cfg;
  cfg.s = 64.0;

  auto builder = MakeSummarizer("serve:windowed:8:4:obliv", cfg);
  auto service = builder->AsServable()->service();
  WindowedSummarizer* win = builder->AsWindowed();
  ASSERT_NE(win, nullptr);

  // Stream across epoch boundaries (bucket width 2, so epochs 1..5 are
  // crossed): every ring advance republishes the merged window. Then one
  // explicit advance publishes the final, complete window.
  for (std::size_t i = 0; i < items.size(); ++i) {
    const double ts = 12.0 * static_cast<double>(i) /
                      static_cast<double>(items.size());
    win->AddTimed(ts, items[i]);
  }
  win->Advance(12.0);
  const std::uint64_t mid_publishes = service->publishes();
  EXPECT_GE(mid_publishes, 6u);
  ASSERT_TRUE(service->has_snapshot());

  // The published view is the merged window of that last advance: QueryAt
  // at the current clock reuses the same cached merge, bit-identically.
  QueryService::Reader reader(*service);
  {
    SnapshotHandle snap = reader.Acquire();
    const Sample& merged = win->QueryAt(win->now());
    EXPECT_EQ(service->publishes(), mid_publishes);  // no ring advance
    EXPECT_EQ(snap->TotalWeight(), merged.EstimateTotal());
    ASSERT_EQ(snap->size(), merged.size());
  }

  // An explicit advance far past the window republishes an empty view.
  win->Advance(1000.0);
  EXPECT_EQ(service->publishes(), mid_publishes + 1);
  SnapshotHandle empty = reader.Acquire();
  EXPECT_EQ(empty->size(), 0u);
}

TEST(Servable, IngestValidationAtTheWrapperSurface) {
  SummarizerConfig cfg;
  cfg.s = 16.0;
  auto strict = MakeSummarizer("serve:obliv", cfg);
  strict->Add({0, 1.0, {0, 0}});
  EXPECT_THROW(strict->Add({1, -1.0, {1, 1}}), std::invalid_argument);
  EXPECT_EQ(strict->Describe().accepted, 1u);

  cfg.ingest_policy = IngestPolicy::kQuarantine;
  auto lax = MakeSummarizer("serve:obliv", cfg);
  lax->Add({0, 1.0, {0, 0}});
  lax->Add({1, -1.0, {1, 1}});
  EXPECT_EQ(lax->Describe().accepted, 1u);
  EXPECT_EQ(lax->Describe().rejected_weight, 1u);
  EXPECT_EQ(lax->Finalize()->SizeInElements(), 1u);
}

TEST(Servable, ResetRecyclesBuilderAndKeepsServing) {
  Rng rng(41);
  const auto items = RandomItems(100, 1 << 10, &rng);
  SummarizerConfig cfg;
  cfg.s = 24.0;
  cfg.seed = 7;

  auto builder = MakeSummarizer("serve:obliv", cfg);
  auto service = builder->AsServable()->service();
  builder->AddBatch(items);
  (void)builder->Finalize();
  const std::uint64_t first_publishes = service->publishes();

  // Reset recycles the builder; the last snapshot keeps serving meanwhile.
  ASSERT_TRUE(builder->Reset(7));
  EXPECT_TRUE(service->has_snapshot());
  EXPECT_EQ(service->publishes(), first_publishes);

  // The recycled build republishes and matches a fresh build bit for bit.
  builder->AddBatch(items);
  const auto again = builder->Finalize();
  EXPECT_EQ(service->publishes(), first_publishes + 1);

  auto fresh = MakeSummarizer("serve:obliv", cfg);
  fresh->AddBatch(items);
  const auto fresh_summary = fresh->Finalize();
  EXPECT_EQ(again->AsSample()->sample().EstimateTotal(),
            fresh_summary->AsSample()->sample().EstimateTotal());
}

}  // namespace
}  // namespace sas
