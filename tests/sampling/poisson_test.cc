#include "sampling/poisson.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/ipps.h"
#include "core/random.h"

namespace sas {
namespace {

std::vector<WeightedKey> MakeItems(const std::vector<Weight>& w) {
  std::vector<WeightedKey> items(w.size());
  for (std::size_t i = 0; i < w.size(); ++i) {
    items[i] = {static_cast<KeyId>(i), w[i], {static_cast<Coord>(i), 0}};
  }
  return items;
}

TEST(Poisson, ExpectedSizeMatches) {
  Rng rng(1);
  const auto items = MakeItems(std::vector<Weight>(100, 1.0));
  double total = 0.0;
  const int trials = 2000;
  for (int t = 0; t < trials; ++t) {
    total += PoissonSample(items, 10.0, &rng).size();
  }
  EXPECT_NEAR(total / trials, 10.0, 0.3);
}

TEST(Poisson, HeavyKeysAlwaysIncluded) {
  Rng rng(2);
  std::vector<Weight> w(20, 1.0);
  w[0] = 1000.0;
  const auto items = MakeItems(w);
  for (int t = 0; t < 50; ++t) {
    const Sample s = PoissonSample(items, 5.0, &rng);
    bool found = false;
    for (const auto& e : s.entries()) found |= e.id == 0;
    EXPECT_TRUE(found);
  }
}

TEST(Poisson, InclusionFrequencyMatchesIpps) {
  Rng rng(3);
  const std::vector<Weight> w{8.0, 4.0, 2.0, 1.0, 1.0, 1.0, 1.0};
  const auto items = MakeItems(w);
  const double s = 3.0;
  const double tau = SolveTau(w, s);
  std::vector<int> hits(w.size(), 0);
  const int trials = 50000;
  for (int t = 0; t < trials; ++t) {
    const Sample sample = PoissonSample(items, s, &rng);
    for (const auto& e : sample.entries()) {
      hits[e.id]++;
    }
  }
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(hits[i]) / trials,
                IppsProbability(w[i], tau), 0.01)
        << "key " << i;
  }
}

TEST(Poisson, UnbiasedSubsetSum) {
  Rng rng(4);
  const std::vector<Weight> w{5.0, 3.0, 2.0, 2.0, 1.0, 1.0, 0.5, 0.5};
  const auto items = MakeItems(w);
  const Box subset{{0, 4}, {0, 1}};  // keys 0..3, true weight 12
  double total = 0.0;
  const int trials = 50000;
  for (int t = 0; t < trials; ++t) {
    total += PoissonSample(items, 4.0, &rng).EstimateBox(subset);
  }
  EXPECT_NEAR(total / trials, 12.0, 0.1);
}

TEST(Poisson, ZeroWeightNeverSampled) {
  Rng rng(5);
  std::vector<Weight> w(10, 1.0);
  w[3] = 0.0;
  const auto items = MakeItems(w);
  for (int t = 0; t < 100; ++t) {
    const Sample sample = PoissonSample(items, 5.0, &rng);
    for (const auto& e : sample.entries()) {
      EXPECT_NE(e.id, 3u);
    }
  }
}

}  // namespace
}  // namespace sas
