#include "sampling/stream_varopt.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/ipps.h"
#include "core/random.h"

namespace sas {
namespace {

std::vector<WeightedKey> MakeItems(const std::vector<Weight>& w) {
  std::vector<WeightedKey> items(w.size());
  for (std::size_t i = 0; i < w.size(); ++i) {
    items[i] = {static_cast<KeyId>(i), w[i], {static_cast<Coord>(i), 0}};
  }
  return items;
}

TEST(StreamVarOpt, WarmupKeepsEverything) {
  StreamVarOpt sv(10, Rng(1));
  for (const auto& it : MakeItems({1, 2, 3, 4, 5})) sv.Push(it);
  EXPECT_EQ(sv.size(), 5u);
  EXPECT_DOUBLE_EQ(sv.tau(), 0.0);
  EXPECT_DOUBLE_EQ(sv.ToSample().EstimateTotal(), 15.0);
}

TEST(StreamVarOpt, ExactSizeAfterOverflow) {
  Rng rng(2);
  StreamVarOpt sv(16, Rng(3));
  for (int i = 0; i < 1000; ++i) {
    sv.Push({static_cast<KeyId>(i), rng.NextPareto(1.2),
             {static_cast<Coord>(i), 0}});
    if (i >= 16) {
      EXPECT_EQ(sv.size(), 16u);
    }
  }
}

TEST(StreamVarOpt, ThresholdMatchesOfflineTau) {
  Rng rng(4);
  std::vector<Weight> w(500);
  for (auto& x : w) x = rng.NextPareto(1.3);
  StreamVarOpt sv(20, Rng(5));
  for (const auto& it : MakeItems(w)) sv.Push(it);
  // The final VarOpt threshold solves the same IPPS equation.
  EXPECT_NEAR(sv.tau(), SolveTau(w, 20.0), 1e-9 * (1.0 + sv.tau()));
}

TEST(StreamVarOpt, ZeroWeightIgnored) {
  StreamVarOpt sv(4, Rng(6));
  sv.Push({0, 0.0, {0, 0}});
  EXPECT_EQ(sv.size(), 0u);
  EXPECT_EQ(sv.items_seen(), 0u);
}

TEST(StreamVarOpt, InclusionFrequencyMatchesIpps) {
  const std::vector<Weight> w{8.0, 4.0, 2.0, 1.0, 1.0, 1.0, 1.0};
  const double s = 3.0;
  const double tau = SolveTau(w, s);
  const auto items = MakeItems(w);
  std::vector<int> hits(w.size(), 0);
  const int trials = 60000;
  Rng seeder(7);
  for (int t = 0; t < trials; ++t) {
    StreamVarOpt sv(3, seeder.Split());
    for (const auto& it : items) sv.Push(it);
    const Sample sample = sv.ToSample();
    for (const auto& e : sample.entries()) hits[e.id]++;
  }
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(hits[i]) / trials,
                IppsProbability(w[i], tau), 0.012)
        << "key " << i;
  }
}

TEST(StreamVarOpt, InclusionFrequencyUniformWeights) {
  // Uniform weights reduce to reservoir sampling: every key kept with
  // probability s/n.
  const std::size_t n = 50, s = 10;
  const auto items = MakeItems(std::vector<Weight>(n, 1.0));
  std::vector<int> hits(n, 0);
  const int trials = 40000;
  Rng seeder(8);
  for (int t = 0; t < trials; ++t) {
    StreamVarOpt sv(s, seeder.Split());
    for (const auto& it : items) sv.Push(it);
    const Sample sample = sv.ToSample();
    for (const auto& e : sample.entries()) hits[e.id]++;
  }
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(static_cast<double>(hits[i]) / trials, 0.2, 0.012)
        << "key " << i;
  }
}

TEST(StreamVarOpt, UnbiasedSubsetSum) {
  Rng rng(9);
  std::vector<Weight> w(60);
  for (auto& x : w) x = rng.NextPareto(1.5);
  const auto items = MakeItems(w);
  Weight truth = 0.0;
  for (std::size_t i = 0; i < 30; ++i) truth += w[i];
  const Box subset{{0, 30}, {0, 1}};

  double total = 0.0;
  const int trials = 40000;
  Rng seeder(10);
  for (int t = 0; t < trials; ++t) {
    StreamVarOpt sv(12, seeder.Split());
    for (const auto& it : items) sv.Push(it);
    total += sv.ToSample().EstimateBox(subset);
  }
  EXPECT_NEAR(total / trials / truth, 1.0, 0.02);
}

TEST(StreamVarOpt, HeavyKeysAlwaysKept) {
  Rng rng(11);
  std::vector<Weight> w(100, 1.0);
  w[42] = 500.0;
  const auto items = MakeItems(w);
  for (int t = 0; t < 50; ++t) {
    StreamVarOpt sv(8, Rng(1000 + t));
    for (const auto& it : items) sv.Push(it);
    bool found = false;
    const Sample sample = sv.ToSample();
    for (const auto& e : sample.entries()) found |= e.id == 42;
    EXPECT_TRUE(found);
  }
}

TEST(StreamVarOpt, TotalEstimateUnbiased) {
  Rng rng(12);
  std::vector<Weight> w(200);
  double truth = 0.0;
  for (auto& x : w) {
    x = rng.NextPareto(1.1);
    truth += x;
  }
  const auto items = MakeItems(w);
  double total = 0.0;
  const int trials = 20000;
  Rng seeder(13);
  for (int t = 0; t < trials; ++t) {
    StreamVarOpt sv(25, seeder.Split());
    for (const auto& it : items) sv.Push(it);
    total += sv.ToSample().EstimateTotal();
  }
  EXPECT_NEAR(total / trials / truth, 1.0, 0.01);
}

TEST(StreamVarOpt, PushBatchMatchesPush) {
  Rng rng(15);
  std::vector<Weight> w(300);
  for (auto& x : w) x = rng.NextPareto(1.2);
  const auto items = MakeItems(w);
  StreamVarOpt one(20, Rng(16));
  for (const auto& it : items) one.Push(it);
  StreamVarOpt batch(20, Rng(16));
  batch.PushBatch(items);
  EXPECT_DOUBLE_EQ(one.tau(), batch.tau());
  EXPECT_EQ(one.ToSample().EstimateTotal(), batch.ToSample().EstimateTotal());
}

TEST(StreamVarOpt, TakeSampleMatchesToSampleAndResets) {
  Rng rng(17);
  std::vector<Weight> w(200);
  for (auto& x : w) x = rng.NextPareto(1.2);
  const auto items = MakeItems(w);
  StreamVarOpt sv(16, Rng(18));
  for (const auto& it : items) sv.Push(it);

  const Sample copied = sv.ToSample();
  const Sample taken = sv.TakeSample();
  ASSERT_EQ(copied.size(), taken.size());
  EXPECT_DOUBLE_EQ(copied.tau(), taken.tau());
  for (std::size_t i = 0; i < copied.size(); ++i) {
    EXPECT_EQ(copied.entries()[i].id, taken.entries()[i].id);
  }
  // The sketch is reset: it warms up again from scratch.
  EXPECT_EQ(sv.size(), 0u);
  EXPECT_EQ(sv.items_seen(), 0u);
  EXPECT_DOUBLE_EQ(sv.tau(), 0.0);
  sv.Push({0, 1.0, {0, 0}});
  EXPECT_EQ(sv.size(), 1u);
  EXPECT_DOUBLE_EQ(sv.ToSample().EstimateTotal(), 1.0);
}

TEST(StreamVarOpt, AbsorbPreservesTotalEstimate) {
  // A combiner absorbing shard samples at their adjusted weights keeps the
  // exact-total invariant of VarOpt.
  Rng rng(19);
  std::vector<Weight> w(400);
  double truth = 0.0;
  for (auto& x : w) {
    x = rng.NextPareto(1.2);
    truth += x;
  }
  const auto items = MakeItems(w);

  StreamVarOpt shard_a(50, Rng(20)), shard_b(50, Rng(21));
  for (std::size_t i = 0; i < 200; ++i) shard_a.Push(items[i]);
  for (std::size_t i = 200; i < 400; ++i) shard_b.Push(items[i]);

  StreamVarOpt combiner(40, Rng(22));
  combiner.Absorb(shard_a.ToSample());
  combiner.Absorb(shard_b.ToSample());
  EXPECT_EQ(combiner.size(), 40u);
  EXPECT_NEAR(combiner.ToSample().EstimateTotal() / truth, 1.0, 1e-9);
}

TEST(StreamVarOpt, AbsorbUnbiasedSubsetSum) {
  Rng rng(23);
  std::vector<Weight> w(200);
  for (auto& x : w) x = rng.NextPareto(1.4);
  const auto items = MakeItems(w);
  Weight truth = 0.0;
  for (std::size_t i = 0; i < 100; ++i) truth += w[i];
  const Box subset{{0, 100}, {0, 1}};

  double total = 0.0;
  const int trials = 20000;
  Rng seeder(24);
  for (int t = 0; t < trials; ++t) {
    StreamVarOpt a(30, seeder.Split()), b(30, seeder.Split());
    for (std::size_t i = 0; i < 100; ++i) a.Push(items[i]);
    for (std::size_t i = 100; i < 200; ++i) b.Push(items[i]);
    StreamVarOpt combiner(25, seeder.Split());
    combiner.Absorb(a.ToSample());
    combiner.Absorb(b.ToSample());
    total += combiner.ToSample().EstimateBox(subset);
  }
  EXPECT_NEAR(total / trials / truth, 1.0, 0.02);
}

TEST(StreamVarOpt, SampleSizeOneWorks) {
  Rng seeder(14);
  std::vector<int> hits(4, 0);
  const auto items = MakeItems({1.0, 1.0, 1.0, 1.0});
  const int trials = 40000;
  for (int t = 0; t < trials; ++t) {
    StreamVarOpt sv(1, seeder.Split());
    for (const auto& it : items) sv.Push(it);
    ASSERT_EQ(sv.size(), 1u);
    hits[sv.ToSample().entries()[0].id]++;
  }
  for (int h : hits) {
    EXPECT_NEAR(static_cast<double>(h) / trials, 0.25, 0.01);
  }
}

}  // namespace
}  // namespace sas
