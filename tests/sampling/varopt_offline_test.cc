#include "sampling/varopt_offline.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/ipps.h"
#include "core/pair_aggregate.h"
#include "core/random.h"

namespace sas {
namespace {

std::vector<WeightedKey> MakeItems(const std::vector<Weight>& w) {
  std::vector<WeightedKey> items(w.size());
  for (std::size_t i = 0; i < w.size(); ++i) {
    items[i] = {static_cast<KeyId>(i), w[i], {static_cast<Coord>(i), 0}};
  }
  return items;
}

TEST(VarOptOffline, ExactSampleSize) {
  Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 10 + rng.NextBounded(200);
    std::vector<Weight> w(n);
    for (auto& x : w) x = rng.NextPareto(1.2);
    const std::size_t s = 1 + rng.NextBounded(n - 1);
    const Sample sample =
        VarOptOffline(MakeItems(w), static_cast<double>(s), &rng);
    EXPECT_EQ(sample.size(), s) << "n=" << n;
  }
}

TEST(VarOptOffline, InclusionFrequencyMatchesIpps) {
  Rng rng(2);
  const std::vector<Weight> w{8.0, 4.0, 2.0, 1.0, 1.0, 1.0, 1.0};
  const double s = 3.0;
  const double tau = SolveTau(w, s);
  const auto items = MakeItems(w);
  std::vector<int> hits(w.size(), 0);
  const int trials = 50000;
  for (int t = 0; t < trials; ++t) {
    const Sample sample = VarOptOffline(items, s, &rng);
    for (const auto& e : sample.entries()) {
      hits[e.id]++;
    }
  }
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(hits[i]) / trials,
                IppsProbability(w[i], tau), 0.01)
        << "key " << i;
  }
}

TEST(VarOptOffline, UnbiasedSubsetSum) {
  Rng rng(3);
  const std::vector<Weight> w{5.0, 3.0, 2.0, 2.0, 1.0, 1.0, 0.5, 0.5};
  const auto items = MakeItems(w);
  const Box subset{{2, 6}, {0, 1}};  // keys 2..5, true weight 6
  double total = 0.0;
  const int trials = 50000;
  for (int t = 0; t < trials; ++t) {
    total += VarOptOffline(items, 4.0, &rng).EstimateBox(subset);
  }
  EXPECT_NEAR(total / trials, 6.0, 0.05);
}

TEST(VarOptOffline, VarianceAtMostPoisson) {
  // VarOpt subset-sum variance must not exceed Poisson's for the same s.
  Rng rng(4);
  const std::size_t n = 40;
  std::vector<Weight> w(n);
  for (auto& x : w) x = rng.NextPareto(1.3);
  const auto items = MakeItems(w);
  const double s = 8.0;
  const Box subset{{0, 20}, {0, 1}};
  Weight truth = 0.0;
  for (std::size_t i = 0; i < 20; ++i) truth += w[i];

  const int trials = 20000;
  double var_vo = 0.0;
  for (int t = 0; t < trials; ++t) {
    const double est = VarOptOffline(items, s, &rng).EstimateBox(subset);
    var_vo += (est - truth) * (est - truth);
  }
  var_vo /= trials;

  // Poisson variance computed in closed form: sum w_i (tau - w_i) over
  // subset keys with w < tau.
  const double tau = SolveTau(w, s);
  double var_poisson = 0.0;
  for (std::size_t i = 0; i < 20; ++i) {
    if (w[i] < tau) var_poisson += w[i] * (tau - w[i]);
  }
  EXPECT_LE(var_vo, var_poisson * 1.10);  // 10% statistical slack
}

TEST(VarOptOffline, AllKeysWhenSampleIsLarge) {
  Rng rng(5);
  const auto items = MakeItems({1.0, 2.0, 3.0});
  const Sample sample = VarOptOffline(items, 3.0, &rng);
  EXPECT_EQ(sample.size(), 3u);
  EXPECT_DOUBLE_EQ(sample.tau(), 0.0);
  EXPECT_DOUBLE_EQ(sample.EstimateTotal(), 6.0);
}

TEST(AggregateInOrder, AllEntriesSet) {
  Rng rng(6);
  std::vector<double> p{0.3, 0.7, 0.4, 0.6, 0.5, 0.5};
  std::vector<std::size_t> order{0, 1, 2, 3, 4, 5};
  AggregateInOrder(&p, order, &rng);
  int ones = 0;
  for (double x : p) {
    EXPECT_TRUE(IsSet(x));
    ones += x == 1.0;
  }
  EXPECT_EQ(ones, 3);  // total mass 3.0
}

}  // namespace
}  // namespace sas
