#include "sampling/systematic.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/discrepancy.h"
#include "core/ipps.h"
#include "core/random.h"
#include "structure/order.h"

namespace sas {
namespace {

std::vector<WeightedKey> MakeItems(const std::vector<Weight>& w) {
  std::vector<WeightedKey> items(w.size());
  for (std::size_t i = 0; i < w.size(); ++i) {
    items[i] = {static_cast<KeyId>(i), w[i], {static_cast<Coord>(i), 0}};
  }
  return items;
}

TEST(Systematic, SampleSizeFloorOrCeil) {
  Rng rng(1);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t n = 10 + rng.NextBounded(100);
    std::vector<Weight> w(n);
    for (auto& x : w) x = rng.NextPareto(1.3);
    const double s = 1 + static_cast<double>(rng.NextBounded(n - 1));
    const Sample sample = SystematicSample(MakeItems(w), s, &rng);
    EXPECT_GE(sample.size(), static_cast<std::size_t>(s) - 0u);
    EXPECT_LE(sample.size(), static_cast<std::size_t>(s) + 1u);
  }
}

TEST(Systematic, IntervalDiscrepancyBelowOne) {
  // The defining property of systematic sampling (Appendix D).
  Rng rng(2);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = 10 + rng.NextBounded(60);
    std::vector<Weight> w(n);
    for (auto& x : w) x = rng.NextPareto(1.2);
    const double s = 2 + static_cast<double>(rng.NextBounded(8));
    const auto items = MakeItems(w);
    const double tau = SolveTau(w, s);
    std::vector<double> probs;
    IppsProbabilities(w, tau, &probs);

    const Sample sample = SystematicSample(items, s, &rng);
    std::vector<KeyId> ids;
    for (const auto& e : sample.entries()) ids.push_back(e.id);
    const auto flags = SampleFlags(n, ids);
    EXPECT_LT(MaxIntervalDiscrepancy(probs, flags), 1.0 + 1e-9)
        << "n=" << n << " s=" << s;
  }
}

TEST(Systematic, InclusionFrequencyMatchesIpps) {
  const std::vector<Weight> w{8.0, 4.0, 2.0, 1.0, 1.0, 1.0, 1.0};
  const double s = 3.0;
  const double tau = SolveTau(w, s);
  const auto items = MakeItems(w);
  std::vector<int> hits(w.size(), 0);
  const int trials = 60000;
  Rng rng(3);
  for (int t = 0; t < trials; ++t) {
    const Sample sample = SystematicSample(items, s, &rng);
    for (const auto& e : sample.entries()) {
      hits[e.id]++;
    }
  }
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(hits[i]) / trials,
                IppsProbability(w[i], tau), 0.012)
        << "key " << i;
  }
}

TEST(Systematic, PositiveCorrelationsExist) {
  // Systematic sampling is NOT VarOpt: distant keys can be positively
  // correlated. With 4 keys of probability 1/2 and s=2, keys 0 and 2 are
  // included together with probability 1/2 > p0*p2 = 1/4.
  const auto items = MakeItems({1.0, 1.0, 1.0, 1.0});
  Rng rng(4);
  int both = 0;
  const int trials = 40000;
  for (int t = 0; t < trials; ++t) {
    const Sample sample = SystematicSample(items, 2.0, &rng);
    bool has0 = false, has2 = false;
    for (const auto& e : sample.entries()) {
      has0 |= e.id == 0;
      has2 |= e.id == 2;
    }
    both += has0 && has2;
  }
  EXPECT_GT(static_cast<double>(both) / trials, 0.4);  // ~0.5 >> 0.25
}

}  // namespace
}  // namespace sas
