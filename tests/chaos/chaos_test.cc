// Chaos suite: deterministic fault schedules (core/fault.h) driven through
// the sharded and windowed engines, run in CI under TSan and ASan
// (`ctest -L chaos`). The suite's ctest TIMEOUT is the no-deadlock
// assertion for worker death under full back-pressure queues: a hang here
// is a regression even if every EXPECT passes.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/registry.h"
#include "api/sharded.h"
#include "core/fault.h"
#include "core/random.h"
#include "core/sample.h"
#include "window/windowed.h"
#include "../api/test_util.h"

namespace sas {
namespace {

using test::RandomItems;

SummarizerConfig FaultyConfig(const char* spec, double s = 64.0,
                              std::uint64_t seed = 7777) {
  SummarizerConfig cfg;
  cfg.s = s;
  cfg.seed = seed;
  cfg.faults = std::make_shared<FaultInjector>();
  cfg.faults->Configure(spec);
  return cfg;
}

void ExpectSameSample(const Sample& a, const Sample& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_DOUBLE_EQ(a.tau(), b.tau());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.entries()[i].id, b.entries()[i].id) << i;
    EXPECT_DOUBLE_EQ(a.entries()[i].weight, b.entries()[i].weight) << i;
  }
}

/// Feeds `items` until the builder observes the poison (or the stream
/// runs out); reports whether the poisoned throw was seen.
bool FeedUntilPoisoned(Summarizer* builder,
                       const std::vector<WeightedKey>& items) {
  try {
    for (const WeightedKey& it : items) builder->Add(it);
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("poisoned"), std::string::npos)
        << e.what();
    return true;
  }
  return false;
}

TEST(Chaos, FinalizeReportsEveryFailedShard) {
  Rng rng(1);
  const auto items = RandomItems(2000, 1 << 12, &rng);
  // Every worker deterministically reaches its finalize site once, so
  // fail@1/1 kills all shards regardless of scheduling or partition.
  SummarizerConfig cfg = FaultyConfig("shard.worker.finalize=fail@1/1");
  auto builder = MakeSummarizer("sharded:2:obliv", cfg);
  try {
    builder->AddBatch(items);
  } catch (const std::runtime_error&) {
    // A worker may already have died and poisoned the producer mid-batch;
    // either way Finalize below must report both shards.
  }
  try {
    builder->Finalize();
    FAIL() << "expected ShardedIngestError";
  } catch (const ShardedIngestError& e) {
    ASSERT_EQ(e.failures().size(), 2u);
    std::set<int> shards;
    for (const ShardFailure& f : e.failures()) {
      shards.insert(f.shard);
      EXPECT_NE(f.message.find("inner \"obliv\""), std::string::npos)
          << f.message;
      EXPECT_NE(f.message.find("shard " + std::to_string(f.shard)),
                std::string::npos)
          << f.message;
    }
    EXPECT_EQ(shards, (std::set<int>{0, 1}));
    EXPECT_NE(std::string(e.what()).find("2 of 2 shard(s)"),
              std::string::npos)
        << e.what();
  }
}

TEST(Chaos, WorkerDeathUnderFullQueuesDoesNotDeadlock) {
  Rng rng(2);
  const auto items = RandomItems(120000, 1 << 16, &rng);
  // The worker stalls on its first batch long enough for the producer to
  // fill the bounded queue and block on back-pressure, then dies on the
  // second; RecordWorkerError must unblock the producer. A single shard
  // makes the fill deterministic (every item routes to lane 0). The suite
  // TIMEOUT is the real assertion — a deadlock shows up as a hang.
  SummarizerConfig cfg = FaultyConfig(
      "shard.worker.batch=delay@1:50000;shard.worker.batch=fail@2/1");
  auto builder = MakeSummarizer("sharded:1:obliv", cfg);
  auto* sharded = static_cast<ShardedSummarizer*>(builder.get());
  FeedUntilPoisoned(builder.get(), items);
  EXPECT_TRUE(sharded->poisoned());
  // A poisoned builder fails fast on every ingest surface.
  EXPECT_THROW(builder->Add(items[0]), std::runtime_error);
  const Coord p[2] = {1, 2};
  EXPECT_THROW(builder->AddCoords(p, 2, 1.0), std::runtime_error);
  try {
    builder->Finalize();
    FAIL() << "expected ShardedIngestError";
  } catch (const ShardedIngestError& e) {
    ASSERT_EQ(e.failures().size(), 1u);
    EXPECT_EQ(e.failures()[0].shard, 0);
  }
}

TEST(Chaos, ResetAfterPoisonReproducesAFreshBuilderBitIdentically) {
  Rng rng(3);
  const auto items = RandomItems(30000, 1 << 14, &rng);
  const std::uint64_t recovery_seed = 1234;

  SummarizerConfig cfg = FaultyConfig("shard.worker.batch=fail@1/1");
  auto builder = MakeSummarizer("sharded:4:obliv", cfg);
  auto* sharded = static_cast<ShardedSummarizer*>(builder.get());
  FeedUntilPoisoned(builder.get(), items);
  // Joining the workers makes the poison deterministic: every shard had at
  // least one batch to drain, and each drain dies on the armed schedule.
  EXPECT_THROW(builder->Finalize(), ShardedIngestError);
  EXPECT_TRUE(sharded->poisoned());

  // Recovery: disarm the schedule, reseed, replay. The rebuilt summary
  // must match a never-poisoned builder bit for bit.
  cfg.faults->Clear();
  ASSERT_TRUE(builder->Reset(recovery_seed));
  EXPECT_FALSE(sharded->poisoned());
  builder->AddBatch(items);
  const auto recovered = builder->Finalize();

  SummarizerConfig fresh_cfg;
  fresh_cfg.s = cfg.s;
  fresh_cfg.seed = recovery_seed;
  auto fresh = MakeSummarizer("sharded:4:obliv", fresh_cfg);
  fresh->AddBatch(items);
  const auto baseline = fresh->Finalize();

  ExpectSameSample(recovered->AsSample()->sample(),
                   baseline->AsSample()->sample());
}

TEST(Chaos, ProducerSideQueueFaultIsCallerVisibleAndNonPoisoning) {
  Rng rng(4);
  const auto items = RandomItems(30000, 1 << 14, &rng);
  // shard.queue.push fires on the producer thread, inside the caller's own
  // Add stack: the enqueue fails loudly but no worker died, so the builder
  // stays healthy and the build completes (minus the dropped batch).
  SummarizerConfig cfg = FaultyConfig("shard.queue.push=fail@1");
  auto builder = MakeSummarizer("sharded:2:obliv", cfg);
  auto* sharded = static_cast<ShardedSummarizer*>(builder.get());
  bool saw_fault = false;
  for (const WeightedKey& it : items) {
    try {
      builder->Add(it);
    } catch (const FaultInjectionError& e) {
      EXPECT_EQ(e.site(), std::string(fault_sites::kShardQueuePush));
      saw_fault = true;
    }
  }
  EXPECT_TRUE(saw_fault);
  EXPECT_FALSE(sharded->poisoned());
  const auto summary = builder->Finalize();
  EXPECT_GT(summary->SizeInElements(), 0u);
}

TEST(Chaos, BucketSealFaultPoisonsTheRingAndResetRecovers) {
  Rng rng(5);
  const auto items = RandomItems(4000, 1 << 12, &rng);
  const std::uint64_t recovery_seed = 4321;
  SummarizerConfig cfg = FaultyConfig("window.bucket.seal=fail@1", 32.0);
  auto builder = MakeSummarizer("windowed:100:4:obliv", cfg);
  auto* win = builder->AsWindowed();
  ASSERT_NE(win, nullptr);

  auto feed = [&](WindowedSummarizer* w) {
    for (std::size_t i = 0; i < items.size(); ++i) {
      w->AddTimed(static_cast<double>(i % 90), items[i]);
    }
  };
  EXPECT_THROW(feed(win), FaultInjectionError);  // first seal dies
  EXPECT_TRUE(win->poisoned());
  EXPECT_THROW(win->QueryAt(90.0), std::runtime_error);
  EXPECT_THROW(builder->Add(items[0]), std::runtime_error);
  EXPECT_THROW(builder->Finalize(), std::runtime_error);

  cfg.faults->Clear();
  ASSERT_TRUE(builder->Reset(recovery_seed));
  EXPECT_FALSE(win->poisoned());
  feed(win);
  const Sample& recovered = win->QueryAt(95.0);

  SummarizerConfig fresh_cfg;
  fresh_cfg.s = cfg.s;
  fresh_cfg.seed = recovery_seed;
  auto fresh = MakeSummarizer("windowed:100:4:obliv", fresh_cfg);
  auto* fresh_win = fresh->AsWindowed();
  feed(fresh_win);
  ExpectSameSample(recovered, fresh_win->QueryAt(95.0));
}

TEST(Chaos, QueryMergeFaultPoisonsAndResetRecovers) {
  Rng rng(6);
  const auto items = RandomItems(2000, 1 << 12, &rng);
  SummarizerConfig cfg = FaultyConfig("window.query.merge=fail@1", 32.0);
  auto builder = MakeSummarizer("windowed:100:4:obliv", cfg);
  auto* win = builder->AsWindowed();
  builder->AddBatch(items);
  EXPECT_THROW(win->QueryAt(1.0), FaultInjectionError);
  EXPECT_TRUE(win->poisoned());
  EXPECT_THROW(builder->Finalize(), std::runtime_error);

  cfg.faults->Clear();
  ASSERT_TRUE(builder->Reset(cfg.seed));
  builder->AddBatch(items);
  EXPECT_GT(builder->Finalize()->SizeInElements(), 0u);
}

TEST(Chaos, NestedWrappersSurfaceInnerWindowFailuresPerShard) {
  Rng rng(7);
  const auto items = RandomItems(2000, 1 << 12, &rng);
  // The fault injector propagates through composed keys: each shard worker
  // finalizes its own windowed inner, whose merge dies, and the sharded
  // Finalize aggregates both failures with the composed inner key named.
  SummarizerConfig cfg = FaultyConfig("window.query.merge=fail@1/1");
  auto builder = MakeSummarizer("sharded:2:windowed:50:4:obliv", cfg);
  try {
    builder->AddBatch(items);
  } catch (const std::runtime_error&) {
    // Merge faults only fire at finalize here, but stay tolerant.
  }
  try {
    builder->Finalize();
    FAIL() << "expected ShardedIngestError";
  } catch (const ShardedIngestError& e) {
    ASSERT_EQ(e.failures().size(), 2u);
    for (const ShardFailure& f : e.failures()) {
      EXPECT_NE(f.message.find("inner \"windowed:50:4:obliv\""),
                std::string::npos)
          << f.message;
    }
  }
}

TEST(Chaos, MaxBytesDegradesShardedInnersAtConstruction) {
  Rng rng(8);
  const auto items = RandomItems(20000, 1 << 14, &rng);
  SummarizerConfig cfg;
  cfg.s = 1024.0;
  cfg.seed = 99;
  // 4 shards * s entries * 64 bytes = 256 KiB; a 64 KiB budget forces two
  // halvings (1024 -> 512 -> 256) at construction time.
  cfg.max_bytes = 64 * 1024;
  auto builder = MakeSummarizer("sharded:4:obliv", cfg);
  EXPECT_EQ(builder->Describe().degradations, 2u);
  builder->AddBatch(items);
  const auto summary = builder->Finalize();
  // A degraded build is a valid build at a smaller s: still unbiased.
  double total = 0.0;
  for (const WeightedKey& it : items) total += it.weight;
  MultiRangeQuery q;
  q.boxes.push_back({{0, 1 << 14}, {0, 1 << 14}});
  EXPECT_NEAR(summary->EstimateQuery(q) / total, 1.0, 0.25);
}

TEST(Chaos, MaxBytesDegradesWindowedBucketsAsTheRingFills) {
  Rng rng(9);
  const auto items = RandomItems(8000, 1 << 12, &rng);
  SummarizerConfig cfg;
  cfg.s = 512.0;
  cfg.seed = 100;
  // One bucket at s=512 already estimates 32 KiB; a 16 KiB budget halves
  // immediately and keeps halving as more sealed buckets go live.
  cfg.max_bytes = 16 * 1024;
  auto builder = MakeSummarizer("windowed:100:4:obliv", cfg);
  auto* win = builder->AsWindowed();
  for (std::size_t i = 0; i < items.size(); ++i) {
    win->AddTimed(static_cast<double>(i % 100), items[i]);
  }
  const Sample& merged = win->QueryAt(100.0);
  EXPECT_LT(win->effective_s(), 512.0);
  EXPECT_GE(builder->Describe().degradations, 2u);
  EXPECT_GT(merged.size(), 0u);
  // The merged window shrank with the budget instead of growing past it.
  EXPECT_LE(merged.size(), static_cast<std::size_t>(win->effective_s()));
}

TEST(Chaos, DelayScheduleWidensRaceWindowsWithoutFailing) {
  Rng rng(10);
  const auto items = RandomItems(30000, 1 << 14, &rng);
  // Pure-delay schedules must never alter results, only timing: the build
  // completes and matches the no-fault build bit for bit.
  SummarizerConfig cfg = FaultyConfig("shard.worker.batch=delay@1/2:200");
  auto builder = MakeSummarizer("sharded:2:obliv", cfg);
  builder->AddBatch(items);
  const auto delayed = builder->Finalize();

  SummarizerConfig plain;
  plain.s = cfg.s;
  plain.seed = cfg.seed;
  auto baseline = MakeSummarizer("sharded:2:obliv", plain);
  baseline->AddBatch(items);
  ExpectSameSample(delayed->AsSample()->sample(),
                   baseline->Finalize()->AsSample()->sample());
  EXPECT_GT(cfg.faults->fired(), 0u);
}

}  // namespace
}  // namespace sas
