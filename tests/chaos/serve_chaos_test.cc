// Chaos tests for the serving tier's fault sites (runs in the chaos
// suite, `ctest -L chaos`, under TSan and ASan in CI):
//
//   * serve.publish (throwing, fires before the pointer swap) — a failed
//     publish must leave the previous snapshot serving, bit-stable, with
//     publish counters untouched: the strong guarantee of
//     QueryService::Publish.
//   * serve.reclaim (degrading, non-throwing) — a fired rule skips one
//     reclamation pass; the retired snapshots stay pending and the next
//     un-faulted publish drains them. Reclamation failure never fails a
//     publish.
//
// Schedules are deterministic (counter-based), so every scenario replays
// bit-for-bit; delay schedules widen the publish/acquire race window for
// the sanitizer jobs without changing semantics.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "api/registry.h"
#include "core/fault.h"
#include "core/sample.h"
#include "serve/query_service.h"
#include "serve/servable.h"
#include "../api/test_util.h"

namespace sas {
namespace {

using test::RandomItems;

std::shared_ptr<FaultInjector> Injector(const char* spec) {
  auto fi = std::make_shared<FaultInjector>();
  fi->Configure(spec);
  return fi;
}

Sample UnitSample(std::uint32_t n) {
  std::vector<WeightedKey> entries;
  entries.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) entries.push_back({i, 1.0, {i, i}});
  return Sample(0.0, std::move(entries));
}

TEST(ServeChaos, FailedPublishLeavesOldSnapshotServing) {
  // The 2nd publish dies before the swap; the 1st snapshot keeps serving.
  QueryService svc(
      QueryService::Options{Injector("serve.publish=fail@2"), true});
  svc.Publish(UnitSample(5));

  QueryService::Reader reader(svc);
  EXPECT_THROW(svc.Publish(UnitSample(9)), FaultInjectionError);

  EXPECT_EQ(svc.publishes(), 1u);  // the failed attempt never counted
  SnapshotHandle snap = reader.Acquire();
  EXPECT_EQ(snap->TotalWeight(), 5.0);
  EXPECT_EQ(snap->size(), 5u);
  snap.Release();

  // The service is not poisoned: the next publish succeeds and replaces
  // the view as if the faulted attempt never happened.
  svc.Publish(UnitSample(7));
  EXPECT_EQ(svc.publishes(), 2u);
  EXPECT_EQ(reader.Acquire()->TotalWeight(), 7.0);
}

TEST(ServeChaos, FailedPublishWithHeldHandleKeepsItValid) {
  QueryService svc(
      QueryService::Options{Injector("serve.publish=fail@2"), true});
  svc.Publish(UnitSample(5));

  QueryService::Reader reader(svc);
  SnapshotHandle held = reader.Acquire();
  EXPECT_THROW(svc.Publish(UnitSample(9)), FaultInjectionError);
  // Neither the swap nor the epoch advance happened: the held snapshot is
  // the published one, untouched.
  EXPECT_EQ(held->TotalWeight(), 5.0);
  EXPECT_EQ(svc.epoch(), 1u);
  EXPECT_EQ(svc.retired_pending(), 0u);
}

TEST(ServeChaos, PublishLaneNarrowsTheFaultToOneOrdinal) {
  // Lane = 0-based publish ordinal: fail only the 3rd publish (lane 2).
  QueryService svc(
      QueryService::Options{Injector("serve.publish#2=fail@1"), true});
  svc.Publish(UnitSample(1));
  svc.Publish(UnitSample(2));
  EXPECT_THROW(svc.Publish(UnitSample(3)), FaultInjectionError);
  // The ordinal did not move — the retry is still lane 2 and its rule
  // already fired once, so it goes through.
  svc.Publish(UnitSample(3));
  EXPECT_EQ(svc.publishes(), 3u);
}

TEST(ServeChaos, SkippedReclamationDegradesAndRecovers) {
  // Every reclamation pass from the 1st on is skipped... at first.
  QueryService svc(
      QueryService::Options{Injector("serve.reclaim=fail@1/1"), true});
  svc.Publish(UnitSample(1));  // nothing retired yet: no pass, no skip
  EXPECT_EQ(svc.reclaim_skipped(), 0u);

  for (std::uint32_t n = 2; n <= 5; ++n) svc.Publish(UnitSample(n));
  // Four passes all skipped: every displaced snapshot is still pending
  // even though no reader pins anything.
  EXPECT_EQ(svc.reclaim_skipped(), 4u);
  EXPECT_EQ(svc.retired_pending(), 4u);
  EXPECT_EQ(svc.reclaimed(), 0u);

  // Readers never noticed: the live snapshot is the last published one,
  // and skipped reclamation degrades memory, never correctness.
  QueryService::Reader reader(svc);
  EXPECT_EQ(reader.Acquire()->TotalWeight(), 5.0);
  svc.Publish(UnitSample(6));
  EXPECT_EQ(svc.reclaim_skipped(), 5u);  // the periodic rule keeps firing
  EXPECT_EQ(reader.Acquire()->TotalWeight(), 6.0);

  // A bounded schedule (fires once, then the schedule is exhausted) shows
  // the recovery half: one skipped pass, then the next publish's pass
  // drains the whole backlog (tags are monotone; with no reader pinned
  // everything is below min-active).
  QueryService bounded(
      QueryService::Options{Injector("serve.reclaim=fail@1"), true});
  bounded.Publish(UnitSample(1));
  bounded.Publish(UnitSample(2));  // first pass: skipped (the one firing)
  EXPECT_EQ(bounded.reclaim_skipped(), 1u);
  EXPECT_EQ(bounded.retired_pending(), 1u);
  bounded.Publish(UnitSample(3));  // next pass runs: backlog drains
  EXPECT_EQ(bounded.reclaim_skipped(), 1u);
  EXPECT_EQ(bounded.retired_pending(), 0u);
  EXPECT_EQ(bounded.reclaimed(), 2u);
}

TEST(ServeChaos, DelayedPublishWidensTheRaceWindowSafely) {
  // A 200us stall inside every publish (between build and swap) while four
  // readers hammer Acquire: the delay widens exactly the window the epoch
  // protocol must protect. Correctness assertions are the readers'
  // consistency checks; TSan (this suite runs under `-L chaos` in the
  // sanitizer matrix) turns any torn publication into a hard failure.
  QueryService svc(QueryService::Options{
      Injector("serve.publish=delay@1/1:200"), true});
  svc.Publish(UnitSample(1));

  std::atomic<bool> stop{false};
  std::atomic<bool> torn{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      QueryService::Reader reader(svc);
      while (!stop.load(std::memory_order_acquire)) {
        SnapshotHandle snap = reader.Acquire();
        if (snap->TotalWeight() != static_cast<double>(snap->size())) {
          torn.store(true, std::memory_order_release);
        }
      }
    });
  }
  for (std::uint32_t n = 2; n <= 40; ++n) svc.Publish(UnitSample(n));
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  EXPECT_FALSE(torn.load());
  EXPECT_EQ(svc.publishes(), 40u);
}

TEST(ServeChaos, ServableFinalizeSurfacesPublishFault) {
  // Through the registry surface: a serve-wrapped builder whose publish
  // site is armed fails Finalize, and the service stays unpublished — the
  // inner build succeeded, only publication was interrupted.
  Rng rng(99);
  const auto items = RandomItems(150, 1 << 10, &rng);
  SummarizerConfig cfg;
  cfg.s = 32.0;
  cfg.faults = Injector("serve.publish=fail@1");

  auto builder = MakeSummarizer("serve:obliv", cfg);
  auto service = builder->AsServable()->service();
  builder->AddBatch(items);
  EXPECT_THROW(builder->Finalize(), FaultInjectionError);
  EXPECT_FALSE(service->has_snapshot());
  EXPECT_EQ(service->publishes(), 0u);
}

}  // namespace
}  // namespace sas
