// ServingSnapshot: an immutable, query-accelerated view of one finalized
// Sample, built once at publish time and shared read-only by any number of
// concurrent readers (src/serve/query_service.h owns publication and
// reclamation; this type is just the data).
//
// Acceleration structures, all built in the constructor:
//
//   * A position index sorted by key id and one sorted by x coordinate,
//     each with a prefix array of Horvitz-Thompson adjusted weights — so
//     subset estimates over an id range and box estimates localize their
//     candidates with binary search instead of scanning all s entries.
//   * A Vose alias table over the adjusted weights — one O(1) lookup per
//     sample-proportional entry draw (cf. the alias-table samplers in
//     SNIPPETS.md), for serving-side drawdowns such as "give me k
//     representative flows".
//
// Bit-identity contract: the default estimate paths (EstimateIdRange /
// EstimateBox / EstimateQuery) return bit-identical doubles to the linear
// Sample scans (Sample::EstimateSubset / EstimateBox / EstimateQuery).
// Floating-point addition is not associative, so this is only possible by
// preserving the linear scan's addition order: the accelerated path binary-
// searches the sorted index to find the matching positions (O(log s + k)
// for k matches), then sorts those positions back into original entry
// order in caller-provided scratch and sums sequentially from zero —
// O(log s + k log k), output-sensitive instead of O(s), and exactly the
// same additions in exactly the same order. The *Fast variants skip the
// re-ordering and difference prefix sums instead — true O(log s), but
// re-associated: equal to the linear scan only up to ulp-level error (the
// same contract as the SIMD reductions, docs/simd.md).
//
// Thread-safety: every method is const and the object is deeply immutable
// after construction; any number of threads may query one snapshot
// concurrently, each with its own QueryScratch (scratch is the only
// mutable state, and it is caller-owned).

#ifndef SAS_SERVE_SNAPSHOT_H_
#define SAS_SERVE_SNAPSHOT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/random.h"
#include "core/sample.h"
#include "core/types.h"

namespace sas {

/// Per-reader reusable scratch for the bit-identical estimate paths (the
/// position re-ordering buffer). One per reader thread; queries allocate
/// nothing once the buffer has warmed up to the working-set size.
struct QueryScratch {
  std::vector<std::uint32_t> positions;
};

class ServingSnapshot {
 public:
  /// Deep-copies `sample` and builds every acceleration structure.
  /// O(s log s) once per publish.
  explicit ServingSnapshot(const Sample& sample);

  ServingSnapshot(const ServingSnapshot&) = delete;
  ServingSnapshot& operator=(const ServingSnapshot&) = delete;

  const Sample& sample() const { return sample_; }
  std::size_t size() const { return sample_.size(); }
  double tau() const { return sample_.tau(); }

  /// Total adjusted weight, precomputed at build with the sequential scan —
  /// bit-identical to sample().EstimateTotal().
  Weight TotalWeight() const { return total_weight_; }

  // --- Bit-identical accelerated estimates -------------------------------

  /// HT estimate of the keys with id in [lo, hi). Bit-identical to
  /// sample().EstimateSubset(id in [lo, hi)); O(log s + k log k).
  Weight EstimateIdRange(KeyId lo, KeyId hi, QueryScratch* scratch) const;

  /// HT estimate inside an axis-parallel box. Bit-identical to
  /// sample().EstimateBox(box); candidates are localized by the x-sorted
  /// index, so the cost is O(log s + kx log kx) for kx entries matching the
  /// x interval.
  Weight EstimateBox(const Box& box, QueryScratch* scratch) const;

  /// HT estimate of a disjoint multi-rectangle query. Bit-identical to
  /// sample().EstimateQuery(q).
  Weight EstimateQuery(const MultiRangeQuery& q, QueryScratch* scratch) const;

  /// Sampled keys inside the box (exact count, accelerated like
  /// EstimateBox; no scratch needed — counting is order-free).
  std::size_t CountInBox(const Box& box) const;

  // --- O(log s) prefix-difference estimates (re-associated) --------------

  /// Prefix-sum difference over the id-sorted index: O(log s) flat, but the
  /// additions are re-associated — agrees with EstimateIdRange only to
  /// ulp-level accuracy.
  Weight EstimateIdRangeFast(KeyId lo, KeyId hi) const;

  /// x-localized box estimate summed in x-sorted order (no position
  /// re-sort): O(log s + kx), re-associated like EstimateIdRangeFast.
  Weight EstimateBoxFast(const Box& box) const;

  // --- Alias-table drawdowns ---------------------------------------------

  /// One sample-proportional draw: entry index distributed proportionally
  /// to the adjusted weights, O(1) per draw (Vose alias method). Throws
  /// std::logic_error on an empty snapshot.
  std::size_t DrawIndex(Rng* rng) const;

  /// Convenience: the drawn entry itself.
  const WeightedKey& Draw(Rng* rng) const {
    return sample_.entries()[DrawIndex(rng)];
  }

 private:
  /// Adjusted weight of the entry at position `p` (original sample order).
  Weight AdjustedAt(std::uint32_t p) const {
    return sample_.AdjustedWeight(sample_.entries()[p]);
  }

  /// Collects the positions matching the x interval of `box` and passing
  /// the y filter into *out (x-sorted order, unsorted by position).
  void CollectBox(const Box& box, std::vector<std::uint32_t>* out) const;

  /// Sums adjusted weights over *positions after sorting it ascending —
  /// the shared tail of every bit-identical path.
  Weight SumInEntryOrder(std::vector<std::uint32_t>* positions) const;

  Sample sample_;
  Weight total_weight_ = 0.0;

  // Position indexes: by_id_[r] / by_x_[r] is the entry position of rank r
  // under (id, position) / (x, position) order; id_keys_ / x_keys_ mirror
  // the sort keys for cache-friendly binary search; prefix_id_[r] is the
  // adjusted-weight prefix sum over by_id_[0..r) (the *Fast paths).
  std::vector<std::uint32_t> by_id_;
  std::vector<KeyId> id_keys_;
  std::vector<double> prefix_id_;
  std::vector<std::uint32_t> by_x_;
  std::vector<Coord> x_keys_;

  // Vose alias table over the adjusted weights: a draw picks column c
  // uniformly, then returns c with probability accept_[c], alias_[c]
  // otherwise.
  std::vector<double> accept_;
  std::vector<std::uint32_t> alias_;
};

}  // namespace sas

#endif  // SAS_SERVE_SNAPSHOT_H_
