#include "serve/query_service.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "core/telemetry.h"

namespace sas {

// --- SnapshotHandle ----------------------------------------------------------

SnapshotHandle::SnapshotHandle(SnapshotHandle&& other) noexcept
    : snap_(std::exchange(other.snap_, nullptr)),
      epochs_(std::exchange(other.epochs_, nullptr)),
      slot_(std::exchange(other.slot_, -1)),
      live_flag_(std::exchange(other.live_flag_, nullptr)) {}

SnapshotHandle& SnapshotHandle::operator=(SnapshotHandle&& other) noexcept {
  if (this != &other) {
    Release();
    snap_ = std::exchange(other.snap_, nullptr);
    epochs_ = std::exchange(other.epochs_, nullptr);
    slot_ = std::exchange(other.slot_, -1);
    live_flag_ = std::exchange(other.live_flag_, nullptr);
  }
  return *this;
}

SnapshotHandle::~SnapshotHandle() { Release(); }

void SnapshotHandle::Release() {
  if (epochs_ != nullptr && slot_ >= 0) {
    epochs_->Unpin(slot_);
    if (live_flag_ != nullptr) *live_flag_ = false;
  }
  snap_ = nullptr;
  epochs_ = nullptr;
  slot_ = -1;
  live_flag_ = nullptr;
}

// --- QueryService::Reader ----------------------------------------------------

QueryService::Reader::Reader(QueryService& svc) : svc_(svc) {
  slot_ = svc_.epochs_.RegisterReader();
  if (svc_.telemetry_on()) svc_.active_readers_->Add(1);
}

QueryService::Reader::~Reader() {
  svc_.epochs_.UnregisterReader(slot_);
  if (svc_.telemetry_on()) svc_.active_readers_->Sub(1);
}

SnapshotHandle QueryService::Reader::TryAcquire() {
  if (handle_live_) {
    throw std::logic_error(
        "QueryService::Reader: Acquire with a live handle (pins are "
        "single-depth; drop the previous SnapshotHandle first)");
  }
  // Pin first, then load: any snapshot displaced after the pin is tagged
  // with an epoch >= ours, so it cannot be reclaimed under our feet.
  svc_.epochs_.Pin(slot_);
  const ServingSnapshot* snap =
      svc_.current_.load(std::memory_order_seq_cst);
  if (snap == nullptr) {
    svc_.epochs_.Unpin(slot_);
    return SnapshotHandle{};
  }
  handle_live_ = true;
  return SnapshotHandle(snap, &svc_.epochs_, slot_, &handle_live_);
}

SnapshotHandle QueryService::Reader::Acquire() {
  SnapshotHandle handle = TryAcquire();
  if (!handle) {
    throw std::logic_error(
        "QueryService: no snapshot published yet (publish — e.g. Finalize "
        "the serve-wrapped builder — before querying)");
  }
  return handle;
}

// --- QueryService ------------------------------------------------------------

QueryService::QueryService() : QueryService(Options{}) {}

QueryService::QueryService(Options opts)
    : opts_(std::move(opts)),
      publishes_(telemetry::GetCounter("sas.serve.publishes")),
      reclaimed_(telemetry::GetCounter("sas.serve.reclaimed")),
      reclaim_skipped_(telemetry::GetCounter("sas.serve.reclaim_skipped")),
      epoch_gauge_(telemetry::GetGauge("sas.serve.epoch")),
      active_readers_(telemetry::GetGauge("sas.serve.active_readers")),
      publish_ns_(telemetry::GetHistogram("sas.serve.publish_ns")),
      query_ns_(telemetry::GetHistogram("sas.serve.query_ns")) {}

QueryService::~QueryService() {
  // The Reader contract guarantees no pins remain; everything is writer-
  // owned garbage now.
  delete current_.exchange(nullptr, std::memory_order_seq_cst);
  for (const Retired& r : retired_) delete r.snap;
}

bool QueryService::telemetry_on() const {
  return opts_.telemetry && telemetry::Enabled();
}

void QueryService::Publish(const Sample& sample) {
  std::lock_guard<std::mutex> lock(publish_mu_);
  telemetry::Span span("serve.publish", publish_ns_, opts_.telemetry);

  // Step 1: build off to the side. A throw here (allocation, or the armed
  // serve.publish fault below) leaves current_ untouched — the previous
  // snapshot keeps serving.
  auto built = std::make_unique<ServingSnapshot>(sample);
  FaultPoint(opts_.faults.get(), fault_sites::kServePublish,
             static_cast<std::int64_t>(
                 publishes_count_.load(std::memory_order_relaxed)));

  // Step 2: swap the published pointer and tag the displaced snapshot with
  // the pre-advance epoch — any reader that could have loaded it pinned an
  // epoch <= this tag.
  const ServingSnapshot* old =
      current_.exchange(built.release(), std::memory_order_seq_cst);
  const std::uint64_t tag = epochs_.current_epoch();
  if (old != nullptr) retired_.push_back({old, tag});

  // Step 3: advance, then collect whatever no reader can reference.
  const std::uint64_t now_epoch = epochs_.Advance();
  publishes_count_.fetch_add(1, std::memory_order_acq_rel);
  if (telemetry_on()) {
    publishes_->Inc();
    epoch_gauge_->Set(static_cast<std::int64_t>(now_epoch));
  }
  ReclaimLocked();
}

void QueryService::ReclaimLocked() {
  if (retired_.empty()) return;
  // Degrading fault site: a fired serve.reclaim rule skips this pass. The
  // retired snapshots stay pending (memory, not correctness) and the next
  // publish retries — reclamation failure must never fail a publish.
  FaultInjector& fi =
      opts_.faults != nullptr ? *opts_.faults : FaultInjector::Global();
  if (fi.armed() && fi.Poll(fault_sites::kServeReclaim,
                            static_cast<std::int64_t>(retired_.size()))) {
    reclaim_skipped_count_.fetch_add(1, std::memory_order_acq_rel);
    if (telemetry_on()) reclaim_skipped_->Inc();
    return;
  }
  const std::uint64_t min_pinned = epochs_.MinActiveEpoch();
  auto it = retired_.begin();
  std::uint64_t freed = 0;
  while (it != retired_.end() && it->tag < min_pinned) {
    delete it->snap;
    ++it;
    ++freed;
  }
  retired_.erase(retired_.begin(), it);
  if (freed > 0) {
    reclaimed_count_.fetch_add(freed, std::memory_order_acq_rel);
    if (telemetry_on()) reclaimed_->Inc(freed);
  }
}

std::size_t QueryService::retired_pending() const {
  std::lock_guard<std::mutex> lock(publish_mu_);
  return retired_.size();
}

}  // namespace sas
