#include "serve/servable.h"

#include <stdexcept>
#include <utility>
#include <vector>

#include "api/keys.h"
#include "api/registry.h"
#include "api/summary.h"
#include "window/windowed.h"

namespace sas {

namespace {
constexpr std::size_t kServePrefixLen = 6;  // strlen("serve:")
}  // namespace

bool IsServeKey(const std::string& key) {
  return key.rfind(keys::kServePrefix, 0) == 0;
}

std::string ParseServeKey(const std::string& key) {
  std::string inner = key.substr(kServePrefixLen);
  if (inner.empty()) {
    throw std::invalid_argument("serve key \"" + key +
                                "\": missing inner method key (grammar: "
                                "serve:<inner-key>)");
  }
  return inner;
}

std::unique_ptr<Summarizer> MakeServableSummarizer(
    const std::string& key, const SummarizerConfig& cfg) {
  return std::make_unique<ServableSummarizer>(key, ParseServeKey(key), cfg);
}

ServableSummarizer::ServableSummarizer(std::string key,
                                       const std::string& inner_key,
                                       const SummarizerConfig& cfg)
    : Summarizer(cfg),
      key_(std::move(key)),
      inner_(MakeSummarizer(inner_key, cfg)),
      service_(std::make_shared<QueryService>(
          QueryService::Options{cfg.faults, cfg.telemetry})) {
  if (WindowedSummarizer* win = inner_->AsWindowed()) {
    // Ring advances republish the merged window; the hook keeps a strong
    // reference so the service survives even if this wrapper is destroyed
    // first (readers hold their own shared_ptr).
    win->SetPublishHook([svc = service_](const Sample& window) {
      svc->Publish(window);
    });
  }
}

void ServableSummarizer::Add(const WeightedKey& item) {
  if (!AdmitWeight(item.weight)) return;
  inner_->Add(item);
}

void ServableSummarizer::AddBatch(std::span<const WeightedKey> items) {
  if (AllFinite(items)) {
    CountAccepted(items.size());
    inner_->AddBatch(items);
    return;
  }
  for (const WeightedKey& it : items) Add(it);
}

void ServableSummarizer::AddCoords(const Coord* coords, int dims, Weight w) {
  if (!AdmitWeight(w)) return;
  inner_->AddCoords(coords, dims, w);
}

void ServableSummarizer::AddCoordsKeyed(KeyId id, const Coord* coords,
                                        int dims, Weight w) {
  if (!AdmitWeight(w)) return;
  inner_->AddCoordsKeyed(id, coords, dims, w);
}

std::unique_ptr<RangeSummary> ServableSummarizer::Finalize() {
  std::unique_ptr<RangeSummary> summary = inner_->Finalize();
  auto* sample_summary = dynamic_cast<SampleSummary*>(summary.get());
  if (sample_summary == nullptr) {
    throw std::invalid_argument(
        "serve wrapper \"" + key_ + "\": inner summary \"" + summary->Name() +
        "\" is not sample-backed — the serving tier snapshots samples; wrap "
        "a sampling method (order/hierarchy/obliv/..., or a sharded:/"
        "windowed: composition over one)");
  }
  service_->Publish(sample_summary->sample());
  std::vector<double> probs = sample_summary->probs();
  return std::make_unique<SampleSummary>(key_, sample_summary->TakeSample(),
                                         std::move(probs));
}

bool ServableSummarizer::Reset(std::uint64_t seed) {
  if (!inner_->Reset(seed)) return false;
  cfg_.seed = seed;
  stats_ = IngestStats{};
  return true;
}

}  // namespace sas
