// QueryService: the lock-free serving tier. One ingest/publisher thread
// streams into a builder and republishes finalized snapshots; any number of
// reader threads answer queries against the latest ServingSnapshot without
// ever taking a lock, blocking the publisher, or seeing a torn snapshot.
//
//   QueryService svc;
//   // publisher thread:
//   svc.Publish(sample);                   // atomically replaces the view
//   // each reader thread:
//   QueryService::Reader reader(svc);      // registers an epoch slot once
//   {
//     SnapshotHandle snap = reader.Acquire();           // pin, no lock
//     Weight w = snap->EstimateBox(box, &reader.scratch());
//   }                                      // handle drops -> unpin
//
// Publication protocol (docs/serving.md walks through the memory-ordering
// argument):
//
//   1. Build the new ServingSnapshot outside any reader-visible state — a
//      build failure (or an armed `serve.publish` fault) leaves the old
//      snapshot serving, untouched.
//   2. seq_cst-exchange the published pointer; tag the displaced snapshot
//      with the current epoch and push it on the retired list.
//   3. Advance the epoch domain, then reclaim every retired snapshot whose
//      tag is below the minimum epoch any reader still pins.
//
// Readers pin an epoch (core/epoch.h) before loading the pointer and unpin
// when the handle drops; a handle held across any number of republishes
// stays valid and bit-stable, because its snapshot cannot be reclaimed
// while the epoch it was loaded under is still pinned.
//
// The read path is lock-free end to end: Acquire is one epoch pin (two
// seq_cst accesses and a validation load) plus one atomic pointer load.
// The publisher side serializes Publish calls with a mutex — publishing is
// single-writer by contract, the mutex just makes misuse safe — and that
// mutex is never touched by readers. This is the only file outside
// src/serve/ infrastructure allowed to publish raw std::atomic pointers
// (sas-lint rule `atomic-publication` enforces the confinement).
//
// Fault sites: `serve.publish` (throwing — a failed publish aborts step 2
// before the swap, old snapshot keeps serving) and `serve.reclaim`
// (degrading — a fired rule skips one reclamation pass; the garbage stays
// pending and the next publish retries).
//
// Telemetry (when armed): sas.serve.publishes / reclaimed /
// reclaim_skipped counters, sas.serve.epoch + sas.serve.active_readers
// gauges, sas.serve.publish_ns + sas.serve.query_ns histograms (the query
// histogram is exposed for reader-side spans).

#ifndef SAS_SERVE_QUERY_SERVICE_H_
#define SAS_SERVE_QUERY_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/epoch.h"
#include "core/fault.h"
#include "core/sample.h"
#include "serve/snapshot.h"

namespace sas {

namespace telemetry {
class Counter;
class Gauge;
class Histogram;
}  // namespace telemetry

class QueryService;

/// RAII read-side pin over one published snapshot. Obtained from
/// QueryService::Reader; while alive, the snapshot it points at is
/// guaranteed not to be reclaimed — across any number of republishes.
/// Movable, not copyable; at most one live handle per Reader.
class SnapshotHandle {
 public:
  SnapshotHandle() = default;
  SnapshotHandle(SnapshotHandle&& other) noexcept;
  SnapshotHandle& operator=(SnapshotHandle&& other) noexcept;
  SnapshotHandle(const SnapshotHandle&) = delete;
  SnapshotHandle& operator=(const SnapshotHandle&) = delete;
  ~SnapshotHandle();

  /// True when a snapshot is held (TryAcquire before any publish yields an
  /// empty handle).
  explicit operator bool() const { return snap_ != nullptr; }

  const ServingSnapshot* get() const { return snap_; }
  const ServingSnapshot* operator->() const { return snap_; }
  const ServingSnapshot& operator*() const { return *snap_; }

  /// Drops the pin early (idempotent; the destructor calls it).
  void Release();

 private:
  friend class QueryService;
  SnapshotHandle(const ServingSnapshot* snap, EpochDomain* epochs, int slot,
                 bool* live_flag)
      : snap_(snap), epochs_(epochs), slot_(slot), live_flag_(live_flag) {}

  const ServingSnapshot* snap_ = nullptr;
  EpochDomain* epochs_ = nullptr;
  int slot_ = -1;
  bool* live_flag_ = nullptr;  // Reader's "a handle is live" latch
};

class QueryService {
 public:
  struct Options {
    /// Fault injector for the serve.* sites; null falls back to the global
    /// injector (the FaultPoint resolution rule).
    std::shared_ptr<FaultInjector> faults;
    /// Participates in process telemetry when armed (the
    /// SummarizerConfig::telemetry contract).
    bool telemetry = true;
  };

  QueryService();  // default Options
  explicit QueryService(Options opts);
  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Frees the published snapshot and all retired ones. Every Reader (and
  /// handle) must be destroyed first — the epoch domain cannot outlive its
  /// readers' pins.
  ~QueryService();

  /// Per-reader-thread registration: claims an epoch slot for the thread's
  /// lifetime (throws std::runtime_error past EpochDomain::kMaxReaders)
  /// and carries the thread's QueryScratch. One Reader per thread; a
  /// Reader must not outlive its QueryService.
  class Reader {
   public:
    explicit Reader(QueryService& svc);
    Reader(const Reader&) = delete;
    Reader& operator=(const Reader&) = delete;
    ~Reader();

    /// Pins the current epoch and returns a handle on the latest published
    /// snapshot. Lock-free; never blocks the publisher. Throws
    /// std::logic_error when nothing has been published yet, or when this
    /// Reader already holds a live handle (pins are single-depth — drop
    /// the old handle first).
    SnapshotHandle Acquire();

    /// Like Acquire, but an unpublished service yields an empty handle
    /// instead of throwing. Still throws on a doubled Acquire.
    SnapshotHandle TryAcquire();

    /// This reader's reusable scratch for the bit-identical estimate paths.
    QueryScratch& scratch() { return scratch_; }

   private:
    friend class QueryService;
    QueryService& svc_;
    int slot_ = -1;
    bool handle_live_ = false;
    QueryScratch scratch_;
  };

  /// Publishes a snapshot of `sample` (single publisher; concurrent calls
  /// are serialized by an internal writer-side mutex that readers never
  /// touch). Strong guarantee: on any throw — snapshot build failure or an
  /// armed `serve.publish` fault — the previously published snapshot keeps
  /// serving and no state is lost.
  void Publish(const Sample& sample);

  /// True once any snapshot has been published.
  bool has_snapshot() const {
    return current_.load(std::memory_order_acquire) != nullptr;
  }

  /// Successful publishes so far.
  std::uint64_t publishes() const {
    return publishes_count_.load(std::memory_order_acquire);
  }

  /// Retired snapshots actually freed / reclamation passes skipped by an
  /// armed `serve.reclaim` fault.
  std::uint64_t reclaimed() const {
    return reclaimed_count_.load(std::memory_order_acquire);
  }
  std::uint64_t reclaim_skipped() const {
    return reclaim_skipped_count_.load(std::memory_order_acquire);
  }

  /// Retired snapshots not yet freed (waiting on readers or on a skipped
  /// pass). Writer-side bookkeeping; takes the publish mutex.
  std::size_t retired_pending() const;

  /// The epoch domain's current global epoch (one bump per publish).
  std::uint64_t epoch() const { return epochs_.current_epoch(); }

  /// Readers currently inside a read-side critical section (diagnostic).
  int pinned_readers() const { return epochs_.PinnedReaders(); }

  /// The sas.serve.query_ns histogram, for reader-side latency spans (null
  /// never — the instrument always resolves; gate observations on
  /// telemetry_on()).
  telemetry::Histogram* query_latency_histogram() const { return query_ns_; }

  /// True when this service feeds armed process telemetry.
  bool telemetry_on() const;

 private:
  struct Retired {
    const ServingSnapshot* snap = nullptr;
    std::uint64_t tag = 0;  // epoch at retirement; free when min pinned > tag
  };

  /// Frees every retired snapshot no pinned reader can still reference.
  /// Caller holds publish_mu_.
  void ReclaimLocked();

  Options opts_;
  EpochDomain epochs_;
  std::atomic<const ServingSnapshot*> current_{nullptr};

  // Writer-side state: the publish mutex serializes Publish/reclaim and
  // guards retired_; readers never acquire it.
  mutable std::mutex publish_mu_;
  std::vector<Retired> retired_;

  std::atomic<std::uint64_t> publishes_count_{0};
  std::atomic<std::uint64_t> reclaimed_count_{0};
  std::atomic<std::uint64_t> reclaim_skipped_count_{0};

  // Telemetry instruments (core/telemetry.h), resolved once at
  // construction.
  telemetry::Counter* publishes_ = nullptr;
  telemetry::Counter* reclaimed_ = nullptr;
  telemetry::Counter* reclaim_skipped_ = nullptr;
  telemetry::Gauge* epoch_gauge_ = nullptr;
  telemetry::Gauge* active_readers_ = nullptr;
  telemetry::Histogram* publish_ns_ = nullptr;
  telemetry::Histogram* query_ns_ = nullptr;
};

}  // namespace sas

#endif  // SAS_SERVE_QUERY_SERVICE_H_
