// The serving capability behind the registry: the composed key
// "serve:<inner-key>" wraps any sample-backed registered method (including
// the sharded: and windowed: wrappers) in a QueryService. Finalize
// publishes the finalized sample as an immutable ServingSnapshot; when the
// inner method is windowed, every ring advance republishes the merged
// window too — so reader threads keep answering against a fresh,
// consistent view while one ingest thread streams:
//
//   auto builder = MakeSummarizer("serve:windowed:3600:60:obliv", cfg);
//   auto service = builder->AsServable()->service();  // shared_ptr: readers
//                                                     // outlive the builder
//   std::thread reader([service] {
//     QueryService::Reader r(*service);
//     auto snap = r.Acquire();
//     Weight w = snap->EstimateBox(box, &r.scratch());
//   });
//   builder->AsWindowed()->AddTimed(ts, item);        // ingest + republish
//
// Layering: the wrapper validates records at its own surface (the
// IngestStats contract of composed wrappers) and forwards to the inner
// builder; the inner method never knows it is being served. The windowed
// republish rides the generic WindowedSummarizer::SetPublishHook — the
// window layer has no serve dependency.
//
// Capability rules: the wrapper is not Mergeable (serving is an outermost
// concern — "sharded:2:serve:obliv" is rejected exactly like any other
// non-mergeable inner). Reset(seed) recycles the *builder* (forwarding to
// the inner method's Reset) but deliberately does not unpublish: readers
// keep the last published snapshot until the recycled builder publishes a
// new one.

#ifndef SAS_SERVE_SERVABLE_H_
#define SAS_SERVE_SERVABLE_H_

#include <memory>
#include <string>

#include "api/summarizer.h"
#include "serve/query_service.h"

namespace sas {

/// True when `key` starts with the serve prefix (it may still be
/// malformed; ParseServeKey reports why).
bool IsServeKey(const std::string& key);

/// Parses "serve:<inner-key>" and returns the inner key. Throws
/// std::invalid_argument on an empty inner key. Does not check that the
/// inner key is registered — MakeSummarizer does.
std::string ParseServeKey(const std::string& key);

/// Factory used by MakeSummarizer for serve keys: parses the key and
/// builds the inner summarizer eagerly (unknown/invalid inner keys throw
/// std::invalid_argument from here). Sample-backedness of the inner
/// *summary* is an instance property, checked at Finalize.
std::unique_ptr<Summarizer> MakeServableSummarizer(
    const std::string& key, const SummarizerConfig& cfg);

/// The wrapper itself. Construct through MakeSummarizer; reach it via
/// Summarizer::AsServable().
class ServableSummarizer : public Summarizer {
 public:
  ServableSummarizer(std::string key, const std::string& inner_key,
                     const SummarizerConfig& cfg);

  void Add(const WeightedKey& item) override;
  void AddBatch(std::span<const WeightedKey> items) override;
  void AddCoords(const Coord* coords, int dims, Weight w) override;
  void AddCoordsKeyed(KeyId id, const Coord* coords, int dims,
                      Weight w) override;

  /// Finalizes the inner builder, publishes its sample to the service, and
  /// returns the summary under the composed key. Throws
  /// std::invalid_argument when the inner summary is not sample-backed
  /// (the deterministic baselines) — nothing is published then.
  std::unique_ptr<RangeSummary> Finalize() override;

  /// Serving is an outermost concern; the wrapper does not merge.
  bool Mergeable() const override { return false; }

  /// Forwards to the inner builder's Reset. The service keeps serving the
  /// last published snapshot (readers are not torn down by a builder
  /// recycle); the next Finalize/ring advance republishes.
  bool Reset(std::uint64_t seed) override;

  /// Passes through to the inner windowed wrapper (when the inner key is
  /// windowed:), whose ring advances republish through this wrapper's
  /// service.
  WindowedSummarizer* AsWindowed() override { return inner_->AsWindowed(); }

  ServableSummarizer* AsServable() override { return this; }

  /// The query service reader threads share. A shared_ptr so readers can
  /// outlive the builder that spawned the service.
  std::shared_ptr<QueryService> service() { return service_; }

 private:
  std::string key_;
  std::unique_ptr<Summarizer> inner_;
  std::shared_ptr<QueryService> service_;
};

}  // namespace sas

#endif  // SAS_SERVE_SERVABLE_H_
