#include "serve/snapshot.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace sas {

namespace {

/// Ranks [0, n) sorted by (key_of(position), position). The secondary
/// position key makes the order total and deterministic under duplicate
/// sort keys (merged windows can legitimately carry one id twice).
template <typename KeyFn>
std::vector<std::uint32_t> SortedPositions(std::size_t n, KeyFn key_of) {
  std::vector<std::uint32_t> pos(n);
  std::iota(pos.begin(), pos.end(), 0u);
  std::sort(pos.begin(), pos.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              const auto ka = key_of(a);
              const auto kb = key_of(b);
              if (ka != kb) return ka < kb;
              return a < b;
            });
  return pos;
}

}  // namespace

ServingSnapshot::ServingSnapshot(const Sample& sample) : sample_(sample) {
  const auto& entries = sample_.entries();
  const std::size_t n = entries.size();

  total_weight_ = sample_.EstimateTotal();

  by_id_ = SortedPositions(n, [&](std::uint32_t p) { return entries[p].id; });
  id_keys_.resize(n);
  prefix_id_.resize(n + 1);
  prefix_id_[0] = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    id_keys_[r] = entries[by_id_[r]].id;
    prefix_id_[r + 1] = prefix_id_[r] + AdjustedAt(by_id_[r]);
  }

  by_x_ = SortedPositions(n, [&](std::uint32_t p) { return entries[p].pt.x; });
  x_keys_.resize(n);
  for (std::size_t r = 0; r < n; ++r) x_keys_[r] = entries[by_x_[r]].pt.x;

  // Vose alias table over the adjusted weights. Scaled so column c carries
  // adjusted(c) * n / total; columns below 1 are topped up by columns above
  // 1. A zero-total sample (possible only when tau and every weight are 0)
  // degenerates to a uniform table.
  if (n > 0) {
    accept_.assign(n, 1.0);
    alias_.resize(n);
    std::iota(alias_.begin(), alias_.end(), 0u);
    if (total_weight_ > 0.0) {
      std::vector<double> scaled(n);
      for (std::size_t p = 0; p < n; ++p) {
        scaled[p] = AdjustedAt(static_cast<std::uint32_t>(p)) *
                    static_cast<double>(n) / total_weight_;
      }
      std::vector<std::uint32_t> small;
      std::vector<std::uint32_t> large;
      for (std::size_t p = 0; p < n; ++p) {
        (scaled[p] < 1.0 ? small : large).push_back(
            static_cast<std::uint32_t>(p));
      }
      while (!small.empty() && !large.empty()) {
        const std::uint32_t s = small.back();
        const std::uint32_t l = large.back();
        small.pop_back();
        accept_[s] = scaled[s];
        alias_[s] = l;
        scaled[l] -= 1.0 - scaled[s];
        if (scaled[l] < 1.0) {
          large.pop_back();
          small.push_back(l);
        }
      }
      // Residual columns sit at (numerically) exactly 1: they keep
      // accept = 1 / alias = self from the initialization above.
    }
  }
}

Weight ServingSnapshot::SumInEntryOrder(
    std::vector<std::uint32_t>* positions) const {
  std::sort(positions->begin(), positions->end());
  Weight total = 0.0;
  for (const std::uint32_t p : *positions) total += AdjustedAt(p);
  return total;
}

Weight ServingSnapshot::EstimateIdRange(KeyId lo, KeyId hi,
                                        QueryScratch* scratch) const {
  if (hi <= lo) return 0.0;
  const auto b = std::lower_bound(id_keys_.begin(), id_keys_.end(), lo);
  const auto e = std::lower_bound(b, id_keys_.end(), hi);
  auto& pos = scratch->positions;
  pos.clear();
  pos.insert(pos.end(), by_id_.begin() + (b - id_keys_.begin()),
             by_id_.begin() + (e - id_keys_.begin()));
  return SumInEntryOrder(&pos);
}

void ServingSnapshot::CollectBox(const Box& box,
                                 std::vector<std::uint32_t>* out) const {
  if (box.Empty()) return;
  const auto b = std::lower_bound(x_keys_.begin(), x_keys_.end(), box.x.lo);
  const auto e = std::lower_bound(b, x_keys_.end(), box.x.hi);
  const auto& entries = sample_.entries();
  for (auto it = b; it != e; ++it) {
    const std::uint32_t p = by_x_[static_cast<std::size_t>(it - x_keys_.begin())];
    if (box.y.Contains(entries[p].pt.y)) out->push_back(p);
  }
}

Weight ServingSnapshot::EstimateBox(const Box& box,
                                    QueryScratch* scratch) const {
  auto& pos = scratch->positions;
  pos.clear();
  CollectBox(box, &pos);
  return SumInEntryOrder(&pos);
}

Weight ServingSnapshot::EstimateQuery(const MultiRangeQuery& q,
                                      QueryScratch* scratch) const {
  auto& pos = scratch->positions;
  pos.clear();
  // Rectangles are disjoint (the MultiRangeQuery contract), so the per-box
  // position sets are too — the union needs no dedup and the final
  // entry-order sort reproduces the linear scan's addition order exactly.
  for (const Box& box : q.boxes) CollectBox(box, &pos);
  return SumInEntryOrder(&pos);
}

std::size_t ServingSnapshot::CountInBox(const Box& box) const {
  if (box.Empty()) return 0;
  const auto b = std::lower_bound(x_keys_.begin(), x_keys_.end(), box.x.lo);
  const auto e = std::lower_bound(b, x_keys_.end(), box.x.hi);
  const auto& entries = sample_.entries();
  std::size_t count = 0;
  for (auto it = b; it != e; ++it) {
    const std::uint32_t p = by_x_[static_cast<std::size_t>(it - x_keys_.begin())];
    if (box.y.Contains(entries[p].pt.y)) ++count;
  }
  return count;
}

Weight ServingSnapshot::EstimateIdRangeFast(KeyId lo, KeyId hi) const {
  if (hi <= lo) return 0.0;
  const auto b = std::lower_bound(id_keys_.begin(), id_keys_.end(), lo);
  const auto e = std::lower_bound(b, id_keys_.end(), hi);
  return prefix_id_[static_cast<std::size_t>(e - id_keys_.begin())] -
         prefix_id_[static_cast<std::size_t>(b - id_keys_.begin())];
}

Weight ServingSnapshot::EstimateBoxFast(const Box& box) const {
  if (box.Empty()) return 0.0;
  const auto b = std::lower_bound(x_keys_.begin(), x_keys_.end(), box.x.lo);
  const auto e = std::lower_bound(b, x_keys_.end(), box.x.hi);
  const auto& entries = sample_.entries();
  Weight total = 0.0;
  for (auto it = b; it != e; ++it) {
    const std::uint32_t p = by_x_[static_cast<std::size_t>(it - x_keys_.begin())];
    if (box.y.Contains(entries[p].pt.y)) total += AdjustedAt(p);
  }
  return total;
}

std::size_t ServingSnapshot::DrawIndex(Rng* rng) const {
  if (accept_.empty()) {
    throw std::logic_error("ServingSnapshot::DrawIndex on an empty snapshot");
  }
  const std::size_t c = rng->NextBounded(accept_.size());
  const double u = rng->NextDouble();
  return u < accept_[c] ? c : alias_[c];
}

}  // namespace sas
