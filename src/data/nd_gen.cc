#include "data/nd_gen.h"

#include <algorithm>
#include <set>
#include <stdexcept>
#include <string>

namespace sas {

Weight DatasetNd::total_weight() const {
  Weight total = 0.0;
  for (Weight w : weights) total += w;
  return total;
}

std::vector<WeightedKey> DatasetNd::AsWeightedKeys() const {
  std::vector<WeightedKey> items(num_points());
  for (std::size_t i = 0; i < items.size(); ++i) {
    items[i].id = static_cast<KeyId>(i);
    items[i].weight = weights[i];
    items[i].pt.x = coords[i * dims];
    items[i].pt.y = dims > 1 ? coords[i * dims + 1] : 0;
  }
  return items;
}

namespace {

/// One clustered coordinate: descend axis_bits levels, branching right with
/// the axis/level-specific bias so mass concentrates in a few subtrees at
/// every prefix level (the same trie-clustering idea as the network
/// generator's addresses).
Coord ClusteredCoord(int axis_bits, const std::vector<double>& bias,
                     Rng* rng) {
  Coord c = 0;
  for (int b = 0; b < axis_bits; ++b) {
    c <<= 1;
    if (rng->NextDouble() < bias[b]) c |= 1;
  }
  return c;
}

}  // namespace

DatasetNd GenerateNdCloud(const NdCloudConfig& cfg) {
  if (cfg.dims < 1 || cfg.dims > 16) {
    throw std::invalid_argument("GenerateNdCloud: dims must be in [1, 16], "
                                "got " + std::to_string(cfg.dims));
  }
  DatasetNd ds;
  ds.dims = cfg.dims;
  ds.axis_bits =
      cfg.axis_bits > 0 ? cfg.axis_bits : std::max(6, 24 / cfg.dims);
  if (ds.axis_bits > 62) {
    throw std::invalid_argument("GenerateNdCloud: axis_bits must be <= 62");
  }
  // Fail fast when the domain cannot hold num_points distinct points — the
  // redraw loop below would otherwise spin forever.
  const int total_bits = ds.axis_bits * cfg.dims;
  if (total_bits < 63 &&
      (std::uint64_t{1} << total_bits) < cfg.num_points) {
    throw std::invalid_argument(
        "GenerateNdCloud: domain 2^" + std::to_string(total_bits) +
        " cannot hold " + std::to_string(cfg.num_points) +
        " distinct points; raise axis_bits or lower num_points");
  }
  ds.name = "ndcloud-d" + std::to_string(cfg.dims);
  Rng rng(cfg.seed);

  // Per-axis, per-level branch biases: each level prefers one side with
  // strength cluster_bias, the preferred side chosen at random, so the
  // clusters differ per axis.
  std::vector<std::vector<double>> bias(cfg.dims);
  for (auto& axis_bias : bias) {
    axis_bias.resize(ds.axis_bits);
    for (auto& p : axis_bias) {
      p = rng.NextDouble() < 0.5 ? cfg.cluster_bias : 1.0 - cfg.cluster_bias;
    }
  }

  std::set<std::vector<Coord>> seen;
  ds.coords.reserve(cfg.num_points * cfg.dims);
  ds.weights.reserve(cfg.num_points);
  std::vector<Coord> pt(cfg.dims);
  while (seen.size() < cfg.num_points) {
    for (int a = 0; a < cfg.dims; ++a) {
      pt[a] = ClusteredCoord(ds.axis_bits, bias[a], &rng);
    }
    if (!seen.insert(pt).second) continue;  // duplicate; redraw
    for (Coord c : pt) ds.coords.push_back(c);
    ds.weights.push_back(rng.NextPareto(cfg.pareto_alpha));
  }
  return ds;
}

NdQueryBattery UniformVolumeQueriesNd(const DatasetNd& ds, int num_queries,
                                      double max_frac, Rng* rng) {
  NdQueryBattery battery;
  battery.data_total = ds.total_weight();
  const Coord domain = ds.axis_domain();
  const Coord max_side = std::max<Coord>(
      1, static_cast<Coord>(max_frac * static_cast<double>(domain)));
  battery.queries.reserve(num_queries);
  for (int q = 0; q < num_queries; ++q) {
    NdQuery query;
    query.box.resize(ds.dims);
    for (int a = 0; a < ds.dims; ++a) {
      const Coord side = 1 + rng->NextBounded(max_side);
      const Coord lo = rng->NextBounded(domain - std::min(domain - 1, side));
      query.box[a] = {lo, std::min(domain, lo + side)};
    }
    for (std::size_t i = 0; i < ds.num_points(); ++i) {
      if (BoxNContains(query.box, ds.point(i))) {
        query.exact += ds.weights[i];
      }
    }
    battery.queries.push_back(std::move(query));
  }
  return battery;
}

}  // namespace sas
