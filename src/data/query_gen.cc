#include "data/query_gen.h"

#include <algorithm>
#include <cassert>

#include "summaries/exact_summary.h"

namespace sas {

WeightPartition::WeightPartition(const std::vector<WeightedKey>& items,
                                 const ProductDomain2D& domain) {
  std::vector<Point2D> pts;
  std::vector<double> mass;
  pts.reserve(items.size());
  mass.reserve(items.size());
  for (const auto& it : items) {
    pts.push_back(it.pt);
    mass.push_back(it.weight);
  }
  tree_ = KdHierarchy::Build(pts, mass);

  // Boxes and depths top-down; children follow parents in node order.
  const int n = tree_.num_nodes();
  node_box_.assign(std::max(n, 1), domain.FullBox());
  node_depth_.assign(std::max(n, 1), 0);
  for (int v = 0; v < n; ++v) {
    const auto& node = tree_.nodes()[v];
    if (node.IsLeaf()) {
      max_depth_ = std::max(max_depth_, node_depth_[v]);
      continue;
    }
    Box left = node_box_[v];
    Box right = node_box_[v];
    if (node.axis == 0) {
      left.x.hi = node.split;
      right.x.lo = node.split;
    } else {
      left.y.hi = node.split;
      right.y.lo = node.split;
    }
    node_box_[node.left] = left;
    node_box_[node.right] = right;
    node_depth_[node.left] = node_depth_[v] + 1;
    node_depth_[node.right] = node_depth_[v] + 1;
  }
}

std::vector<Box> WeightPartition::CellsAtDepth(int depth) const {
  std::vector<Box> out;
  for (int v = 0; v < tree_.num_nodes(); ++v) {
    const bool at_depth = node_depth_[v] == depth;
    const bool shallow_leaf =
        tree_.nodes()[v].IsLeaf() && node_depth_[v] < depth;
    if (at_depth || shallow_leaf) out.push_back(node_box_[v]);
  }
  return out;
}

QueryBattery UniformAreaQueries(const std::vector<WeightedKey>& items,
                                const ProductDomain2D& domain,
                                int num_queries, int ranges, double max_frac,
                                Rng* rng) {
  QueryBattery battery;
  battery.data_total = TotalWeight(items);
  const double dx = static_cast<double>(domain.x.size());
  const double dy = static_cast<double>(domain.y.size());
  for (int q = 0; q < num_queries; ++q) {
    MultiRangeQuery query;
    int attempts = 0;
    double frac = max_frac;
    while (static_cast<int>(query.boxes.size()) < ranges) {
      if (++attempts > 200) {
        // Crowded: shrink the rectangles and keep trying.
        frac *= 0.5;
        attempts = 0;
        if (frac < 1e-9) break;
      }
      const double w = rng->NextDouble() * frac * dx;
      const double h = rng->NextDouble() * frac * dy;
      const Coord wi = std::max<Coord>(1, static_cast<Coord>(w));
      const Coord hi = std::max<Coord>(1, static_cast<Coord>(h));
      const Coord x0 = rng->NextBounded(domain.x.size() - wi + 1);
      const Coord y0 = rng->NextBounded(domain.y.size() - hi + 1);
      const Box box{{x0, x0 + wi}, {y0, y0 + hi}};
      bool overlaps = false;
      for (const auto& other : query.boxes) {
        if (BoxesIntersect(box, other)) {
          overlaps = true;
          break;
        }
      }
      if (!overlaps) query.boxes.push_back(box);
    }
    query.exact = ExactQuerySum(items, query);
    battery.queries.push_back(std::move(query));
  }
  return battery;
}

QueryBattery UniformWeightQueries(const std::vector<WeightedKey>& items,
                                  const WeightPartition& partition,
                                  int num_queries, int ranges, int depth,
                                  Rng* rng) {
  QueryBattery battery;
  battery.data_total = TotalWeight(items);
  const std::vector<Box> cells = partition.CellsAtDepth(depth);
  assert(!cells.empty());
  for (int q = 0; q < num_queries; ++q) {
    MultiRangeQuery query;
    // Draw `ranges` distinct cells (or all of them if fewer exist).
    const int take = std::min<int>(ranges, static_cast<int>(cells.size()));
    std::vector<std::size_t> picked;
    while (static_cast<int>(picked.size()) < take) {
      const std::size_t c = rng->NextBounded(cells.size());
      if (std::find(picked.begin(), picked.end(), c) == picked.end()) {
        picked.push_back(c);
      }
    }
    for (std::size_t c : picked) query.boxes.push_back(cells[c]);
    query.exact = ExactQuerySum(items, query);
    battery.queries.push_back(std::move(query));
  }
  return battery;
}

}  // namespace sas
