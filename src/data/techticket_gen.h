// Synthetic Technical Ticket dataset (Section 6.1 substitution; see
// DESIGN.md).
//
// Keys are (trouble code, network location) pairs. Both attributes are
// hierarchies with varying branching factor over 2^bits domains; leaf
// coordinates are spread over the domain in DFS order. Pair popularity has
// a heavy head (many high-weight keys that every sample must include — the
// property the paper calls out in Section 6.4).

#ifndef SAS_DATA_TECHTICKET_GEN_H_
#define SAS_DATA_TECHTICKET_GEN_H_

#include <cstdint>

#include "data/dataset.h"

namespace sas {

struct TechTicketConfig {
  std::size_t num_codes = 4800;        // distinct trouble codes
  std::size_t num_locations = 80000;   // distinct network locations
  std::size_t num_pairs = 500000;      // observed combinations
  int bits = 24;                       // per-axis domain = 2^bits
  int max_branching = 8;               // hierarchy fan-out bound
  double zipf_theta = 1.1;             // popularity skew (heavy head)
  std::uint64_t seed = 7;
};

Dataset2D GenerateTechTicket(const TechTicketConfig& cfg);

}  // namespace sas

#endif  // SAS_DATA_TECHTICKET_GEN_H_
