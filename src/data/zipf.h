// Heavy-tailed distributions for synthetic workloads: a bounded discrete
// Zipf sampler (popularity ranks) built on an explicit CDF, plus Pareto
// weight generation helpers.

#ifndef SAS_DATA_ZIPF_H_
#define SAS_DATA_ZIPF_H_

#include <cstddef>
#include <vector>

#include "core/random.h"
#include "core/types.h"

namespace sas {

/// Discrete Zipf over ranks 0..n-1: Pr[rank r] proportional to
/// (r+1)^(-theta).
class ZipfDistribution {
 public:
  ZipfDistribution(std::size_t n, double theta);

  std::size_t Sample(Rng* rng) const;

  std::size_t n() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

/// n independent Pareto(alpha) weights (scale 1), the flow-size model of
/// the Network dataset.
std::vector<Weight> ParetoWeights(std::size_t n, double alpha, Rng* rng);

}  // namespace sas

#endif  // SAS_DATA_ZIPF_H_
