#include "data/trace_reader.h"

#include <cmath>
#include <cstdlib>

#include "core/fault.h"
#include "core/telemetry.h"

namespace sas {

namespace {

/// Splits `line` on `delim` into at most `max_fields` trimmed views stored
/// in `fields`; returns the field count. Surrounding spaces/tabs and a
/// trailing '\r' (CRLF input) are trimmed.
std::size_t SplitFields(const std::string& line, char delim,
                        std::string* fields, std::size_t max_fields) {
  std::size_t count = 0;
  std::size_t begin = 0;
  while (count < max_fields) {
    std::size_t end = line.find(delim, begin);
    if (end == std::string::npos) end = line.size();
    std::size_t lo = begin, hi = end;
    while (lo < hi && (line[lo] == ' ' || line[lo] == '\t')) ++lo;
    while (hi > lo && (line[hi - 1] == ' ' || line[hi - 1] == '\t' ||
                       line[hi - 1] == '\r')) {
      --hi;
    }
    fields[count++] = line.substr(lo, hi - lo);
    if (end == line.size()) return count;
    begin = end + 1;
  }
  return count;
}

/// Numeric parse only — "inf"/"nan" are accepted here (strtod parses
/// them); the caller classifies non-finite values separately so the stats
/// can tell wire corruption from poisoned-but-well-formed rows.
bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

bool ParseCoord(const std::string& s, Coord* out) {
  if (s.empty() || s[0] == '-') return false;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size()) return false;
  *out = static_cast<Coord>(v);
  return true;
}

}  // namespace

TraceReader::TraceReader(std::istream& in, Options opt)
    : in_(in), opt_(opt) {
  if (opt_.batch_size == 0) opt_.batch_size = 1;
}

TraceReader::RowStatus TraceReader::ParseLine(const std::string& line,
                                              TimedItem* out) const {
  std::string fields[5];
  const std::size_t n = SplitFields(line, opt_.delimiter, fields, 5);
  if (n < 3) return RowStatus::kMalformed;
  double ts = 0.0, weight = 0.0;
  Coord key = 0;
  if (!ParseDouble(fields[0], &ts) || !ParseCoord(fields[1], &key) ||
      !ParseDouble(fields[2], &weight)) {
    return RowStatus::kMalformed;
  }
  if (!std::isfinite(ts) || !std::isfinite(weight)) {
    return RowStatus::kNonFinite;
  }
  out->ts = ts;
  out->item.id = static_cast<KeyId>(key);  // ids are dense 32-bit indices
  out->item.weight = weight;
  out->item.pt = {key, 0};
  if (n >= 4 && !ParseCoord(fields[3], &out->item.pt.x)) {
    return RowStatus::kMalformed;
  }
  if (n >= 5 && !ParseCoord(fields[4], &out->item.pt.y)) {
    return RowStatus::kMalformed;
  }
  return RowStatus::kOk;
}

bool TraceReader::NextBatch(std::vector<TimedItem>* out) {
  out->clear();
  FaultInjector& faults =
      opt_.faults != nullptr ? *opt_.faults : FaultInjector::Global();
  // Telemetry mirrors of TraceStats, bumped once per batch (not per row)
  // from the stats deltas below, so an armed process pays no per-row cost.
  const TraceStats before = stats_;
  std::string line;
  TimedItem record;
  while (out->size() < opt_.batch_size && std::getline(in_, line)) {
    // Skip blanks and comments cheaply (before any field parsing).
    std::size_t first = 0;
    while (first < line.size() &&
           (line[first] == ' ' || line[first] == '\t' ||
            line[first] == '\r')) {
      ++first;
    }
    if (first == line.size() || line[first] == '#') continue;

    const RowStatus status = ParseLine(line, &record);
    if (status == RowStatus::kOk) {
      first_data_line_ = false;
      // The trace.row fault site corrupts this (otherwise good) row: it is
      // dropped and counted as malformed, like a row mangled on the wire.
      if (faults.armed() && faults.Poll(fault_sites::kTraceRow)) {
        ++stats_.malformed;
        continue;
      }
      ++stats_.parsed;
      out->push_back(record);
    } else if (first_data_line_) {
      // A non-parsing first data line is a header; skip it silently.
      first_data_line_ = false;
    } else if (status == RowStatus::kNonFinite) {
      ++stats_.nonfinite;
    } else {
      ++stats_.malformed;
    }
  }
  if (telemetry::Enabled()) {
    static telemetry::Counter* const rows =
        telemetry::GetCounter("sas.trace.rows");
    static telemetry::Counter* const malformed =
        telemetry::GetCounter("sas.trace.malformed");
    static telemetry::Counter* const nonfinite =
        telemetry::GetCounter("sas.trace.nonfinite");
    rows->Inc(stats_.parsed - before.parsed);
    malformed->Inc(stats_.malformed - before.malformed);
    nonfinite->Inc(stats_.nonfinite - before.nonfinite);
  }
  return !out->empty();
}

}  // namespace sas
