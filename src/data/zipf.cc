#include "data/zipf.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace sas {

ZipfDistribution::ZipfDistribution(std::size_t n, double theta) {
  assert(n >= 1);
  cdf_.resize(n);
  double run = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    run += std::pow(static_cast<double>(r + 1), -theta);
    cdf_[r] = run;
  }
  for (auto& c : cdf_) c /= run;
  cdf_.back() = 1.0;
}

std::size_t ZipfDistribution::Sample(Rng* rng) const {
  const double u = rng->NextDouble();
  return std::lower_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin();
}

std::vector<Weight> ParetoWeights(std::size_t n, double alpha, Rng* rng) {
  std::vector<Weight> out(n);
  for (auto& w : out) w = rng->NextPareto(alpha);
  return out;
}

}  // namespace sas
