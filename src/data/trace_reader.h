// Minimal CSV trace reader for timestamped weighted-key streams, the ingest
// side of the time-windowed backend (window/windowed.h):
//
//   timestamp,key,weight[,x[,y]]
//
// One record per line. `timestamp` is a decimal time in the caller's units,
// `key` the integer key id, `weight` the item weight; the optional `x`/`y`
// columns place the key in the 2-D domain (default: x = key, y = 0). Blank
// lines and lines starting with '#' are skipped; a leading header line is
// detected (first field not numeric) and skipped; malformed lines are
// counted and skipped rather than aborting a long ingest.
//
// The reader emits batches sized for Summarizer::AddBatch hand-off, so a
// driver loop is:
//
//   TraceReader reader(file);
//   std::vector<TimedItem> batch;
//   while (reader.NextBatch(&batch)) {
//     for (const TimedItem& r : batch) win->AddTimed(r.ts, r.item);
//   }

#ifndef SAS_DATA_TRACE_READER_H_
#define SAS_DATA_TRACE_READER_H_

#include <cstddef>
#include <istream>
#include <string>
#include <vector>

#include "core/types.h"

namespace sas {

class FaultInjector;

/// One parsed trace record: arrival time plus the weighted key.
struct TimedItem {
  double ts = 0.0;
  WeightedKey item;
};

/// Per-class ingest counters: every data line lands in exactly one bucket
/// (comments, blanks, and the detected header line land in none). A
/// monitor that prints parsed/malformed/nonfinite sees every drop a long
/// ingest made — nothing is skipped silently.
struct TraceStats {
  /// Lines parsed into a TimedItem and emitted.
  std::size_t parsed = 0;
  /// Lines dropped because they do not parse: too few fields, non-numeric
  /// timestamp/key/weight, bad coordinate columns (also counts rows
  /// corrupted by the `trace.row` fault site).
  std::size_t malformed = 0;
  /// Lines dropped because they parse numerically but carry a non-finite
  /// timestamp or weight ("inf"/"nan" are valid strtod inputs).
  std::size_t nonfinite = 0;
};

class TraceReader {
 public:
  struct Options {
    /// Records per NextBatch call (matches the sharded wrapper's hand-off
    /// batch size by default).
    std::size_t batch_size = 4096;
    char delimiter = ',';
    /// Fault injector driving the `trace.row` site (borrowed; must outlive
    /// the reader). Null falls back to FaultInjector::Global(). A firing
    /// `fail` rule corrupts that row — it is dropped and counted as
    /// malformed — rather than throwing, mimicking wire corruption.
    FaultInjector* faults = nullptr;
  };

  /// The stream must outlive the reader.
  explicit TraceReader(std::istream& in) : TraceReader(in, Options()) {}
  TraceReader(std::istream& in, Options opt);

  /// Fills `*out` (cleared first) with up to batch_size records. Returns
  /// true when at least one record was read; false at end of input.
  bool NextBatch(std::vector<TimedItem>* out);

  /// Per-class ingest counters so far.
  const TraceStats& stats() const { return stats_; }

  /// Records successfully parsed so far (== stats().parsed).
  std::size_t records_read() const { return stats_.parsed; }
  /// Data lines dropped so far, all classes (comments, blanks, and the
  /// header do not count); == stats().malformed + stats().nonfinite.
  std::size_t lines_skipped() const {
    return stats_.malformed + stats_.nonfinite;
  }

 private:
  /// How ParseLine classified one data line.
  enum class RowStatus { kOk, kMalformed, kNonFinite };

  RowStatus ParseLine(const std::string& line, TimedItem* out) const;

  std::istream& in_;
  Options opt_;
  TraceStats stats_;
  bool first_data_line_ = true;
};

}  // namespace sas

#endif  // SAS_DATA_TRACE_READER_H_
