// Minimal CSV trace reader for timestamped weighted-key streams, the ingest
// side of the time-windowed backend (window/windowed.h):
//
//   timestamp,key,weight[,x[,y]]
//
// One record per line. `timestamp` is a decimal time in the caller's units,
// `key` the integer key id, `weight` the item weight; the optional `x`/`y`
// columns place the key in the 2-D domain (default: x = key, y = 0). Blank
// lines and lines starting with '#' are skipped; a leading header line is
// detected (first field not numeric) and skipped; malformed lines are
// counted and skipped rather than aborting a long ingest.
//
// The reader emits batches sized for Summarizer::AddBatch hand-off, so a
// driver loop is:
//
//   TraceReader reader(file);
//   std::vector<TimedItem> batch;
//   while (reader.NextBatch(&batch)) {
//     for (const TimedItem& r : batch) win->AddTimed(r.ts, r.item);
//   }

#ifndef SAS_DATA_TRACE_READER_H_
#define SAS_DATA_TRACE_READER_H_

#include <cstddef>
#include <istream>
#include <string>
#include <vector>

#include "core/types.h"

namespace sas {

/// One parsed trace record: arrival time plus the weighted key.
struct TimedItem {
  double ts = 0.0;
  WeightedKey item;
};

class TraceReader {
 public:
  struct Options {
    /// Records per NextBatch call (matches the sharded wrapper's hand-off
    /// batch size by default).
    std::size_t batch_size = 4096;
    char delimiter = ',';
  };

  /// The stream must outlive the reader.
  explicit TraceReader(std::istream& in) : TraceReader(in, Options()) {}
  TraceReader(std::istream& in, Options opt);

  /// Fills `*out` (cleared first) with up to batch_size records. Returns
  /// true when at least one record was read; false at end of input.
  bool NextBatch(std::vector<TimedItem>* out);

  /// Records successfully parsed so far.
  std::size_t records_read() const { return records_; }
  /// Malformed data lines skipped so far (comments, blanks, and the header
  /// do not count).
  std::size_t lines_skipped() const { return skipped_; }

 private:
  bool ParseLine(const std::string& line, TimedItem* out) const;

  std::istream& in_;
  Options opt_;
  std::size_t records_ = 0;
  std::size_t skipped_ = 0;
  bool first_data_line_ = true;
};

}  // namespace sas

#endif  // SAS_DATA_TRACE_READER_H_
