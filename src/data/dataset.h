// Dataset container for 2-D evaluation workloads: the weighted keys plus
// the per-axis structure (hierarchies with coordinate layouts).

#ifndef SAS_DATA_DATASET_H_
#define SAS_DATA_DATASET_H_

#include <memory>
#include <string>
#include <vector>

#include "core/types.h"
#include "structure/hierarchy.h"
#include "structure/product.h"

namespace sas {

struct Dataset2D {
  std::string name;
  std::vector<WeightedKey> items;
  ProductDomain2D domain;
  // Per-axis hierarchies (owned; domain.x/y.hierarchy point into these).
  std::unique_ptr<Hierarchy> hx;
  std::unique_ptr<Hierarchy> hy;

  Weight total_weight() const;

  /// Weight vector in item order (convenience for threshold computations).
  std::vector<Weight> Weights() const;
};

}  // namespace sas

#endif  // SAS_DATA_DATASET_H_
