#include "data/techticket_gen.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_set>

#include "core/random.h"
#include "data/zipf.h"

namespace sas {

namespace {

/// Spreads `n` leaf coordinates over [0, 2^bits) preserving DFS order,
/// with deterministic jitter so coordinates are not perfectly regular.
std::vector<Coord> SpreadCoords(std::size_t n, int bits, Rng* rng) {
  const Coord domain = Coord{1} << bits;
  const Coord stride = domain / n;
  assert(stride >= 1);
  std::vector<Coord> out(n);
  for (std::size_t r = 0; r < n; ++r) {
    const Coord jitter = stride > 1 ? rng->NextBounded(stride) : 0;
    out[r] = r * stride + jitter;
  }
  return out;
}

}  // namespace

Dataset2D GenerateTechTicket(const TechTicketConfig& cfg) {
  Rng rng(cfg.seed);
  Dataset2D ds;
  ds.name = "techticket";

  Rng rx = rng.Split();
  Rng ry = rng.Split();
  ds.hx = std::make_unique<Hierarchy>(
      Hierarchy::Random(cfg.num_codes, cfg.max_branching, &rx));
  ds.hy = std::make_unique<Hierarchy>(
      Hierarchy::Random(cfg.num_locations, cfg.max_branching, &ry));
  const std::vector<Coord> code_coords =
      SpreadCoords(cfg.num_codes, cfg.bits, &rng);
  const std::vector<Coord> loc_coords =
      SpreadCoords(cfg.num_locations, cfg.bits, &rng);
  ds.hx->SetLeafCoords(code_coords);
  ds.hy->SetLeafCoords(loc_coords);

  // Observed (code, location) combinations with Zipf popularity on both
  // attributes; the weight of a pair is its (skewed) ticket count.
  const ZipfDistribution zcode(cfg.num_codes, cfg.zipf_theta);
  const ZipfDistribution zloc(cfg.num_locations, cfg.zipf_theta);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(cfg.num_pairs * 2);
  ds.items.reserve(cfg.num_pairs);
  KeyId next_id = 0;
  std::size_t attempts = 0;
  const std::size_t max_attempts = cfg.num_pairs * 400 + 1000;
  while (ds.items.size() < cfg.num_pairs && attempts < max_attempts) {
    ++attempts;
    const std::size_t ci = zcode.Sample(&rng);
    const std::size_t li = zloc.Sample(&rng);
    const std::uint64_t code = (static_cast<std::uint64_t>(ci) << 32) | li;
    if (!seen.insert(code).second) continue;
    WeightedKey k;
    k.id = next_id++;
    k.pt = {code_coords[ci], loc_coords[li]};
    // Heavy head: popular combinations also have large ticket counts, so a
    // sizable set of keys is forced into every IPPS sample (Section 6.4).
    const double popularity =
        1000.0 / std::sqrt(static_cast<double>((ci + 1) * (li + 1)));
    k.weight = 1.0 + popularity + rng.NextPareto(1.1);
    ds.items.push_back(k);
  }

  ds.domain.x = {AxisKind::kHierarchy, cfg.bits, ds.hx.get()};
  ds.domain.y = {AxisKind::kHierarchy, cfg.bits, ds.hy.get()};
  return ds;
}

}  // namespace sas
