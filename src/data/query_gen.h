// Query workloads (Section 6.1): every query is a collection of
// non-overlapping rectangles in the 2-D data space.
//
//  * Uniform-area queries: each rectangle is placed uniformly at random with
//    width/height uniform in [0, max_frac * domain]; rectangles within a
//    query are kept disjoint by rejection.
//  * Uniform-weight queries: a kd-tree is built over the *full* data (this
//    is workload machinery, independent of any kd-tree used by the sampling
//    methods); the cells at one level split the weight approximately
//    equally, and a query unions `ranges` random cells from that level.
//
// Exact answers are computed against the full data and stored with each
// query.

#ifndef SAS_DATA_QUERY_GEN_H_
#define SAS_DATA_QUERY_GEN_H_

#include <vector>

#include "aware/kd_hierarchy.h"
#include "core/random.h"
#include "core/types.h"
#include "structure/product.h"

namespace sas {

struct QueryBattery {
  std::vector<MultiRangeQuery> queries;
  Weight data_total = 0.0;  // total data weight (error normalizer)
};

/// Equal-weight cell machinery for uniform-weight queries: the kd-tree over
/// the full data plus the bounding box of every node. Build once per
/// dataset and reuse across batteries.
class WeightPartition {
 public:
  WeightPartition(const std::vector<WeightedKey>& items,
                  const ProductDomain2D& domain);

  /// All node boxes at tree depth `depth` (cells of weight ~ W / 2^depth).
  /// Leaves shallower than `depth` are included, so the boxes always cover
  /// all data.
  std::vector<Box> CellsAtDepth(int depth) const;

  int max_depth() const { return max_depth_; }
  const KdHierarchy& tree() const { return tree_; }

 private:
  KdHierarchy tree_;
  std::vector<Box> node_box_;
  std::vector<int> node_depth_;
  int max_depth_ = 0;
};

/// Battery of `num_queries` uniform-area queries with `ranges` disjoint
/// rectangles each; rectangle sides are uniform in [0, max_frac * domain].
QueryBattery UniformAreaQueries(const std::vector<WeightedKey>& items,
                                const ProductDomain2D& domain,
                                int num_queries, int ranges, double max_frac,
                                Rng* rng);

/// Battery of uniform-weight queries: each query unions `ranges` distinct
/// cells at `depth` of the weight partition (each cell ~ W / 2^depth).
QueryBattery UniformWeightQueries(const std::vector<WeightedKey>& items,
                                  const WeightPartition& partition,
                                  int num_queries, int ranges, int depth,
                                  Rng* rng);

}  // namespace sas

#endif  // SAS_DATA_QUERY_GEN_H_
