// Synthetic d-dimensional workloads for the general "nd" method: clustered
// point clouds in a d-dimensional product domain (d >= 1), plus box-query
// batteries with exact answers.
//
// Coordinates cluster the way the 2-D network generator's addresses do:
// each axis coordinate is built by descending its bit levels with a biased
// branch probability, so probability mass concentrates in a few subtrees at
// every prefix level. Weights are Pareto. Points are distinct.

#ifndef SAS_DATA_ND_GEN_H_
#define SAS_DATA_ND_GEN_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "aware/kd_nd.h"
#include "core/random.h"
#include "core/types.h"

namespace sas {

/// A d-dimensional evaluation dataset: flat coordinates (point i occupies
/// coords[i*dims .. i*dims+dims)) with one weight per point.
struct DatasetNd {
  std::string name;
  int dims = 2;
  int axis_bits = 20;  // per-axis domain = 2^axis_bits
  std::vector<Coord> coords;
  std::vector<Weight> weights;

  std::size_t num_points() const { return weights.size(); }
  const Coord* point(std::size_t i) const { return &coords[i * dims]; }
  Coord axis_domain() const { return Coord{1} << axis_bits; }
  Weight total_weight() const;

  /// The same points as weighted keys: id = point index, pt = the first two
  /// axes (0 beyond dims). Lets weight-only methods (obliv, order over ids)
  /// ingest d-dimensional data through the ordinary Add path; evaluation
  /// stays id-keyed, so their estimates remain valid for any d.
  std::vector<WeightedKey> AsWeightedKeys() const;
};

struct NdCloudConfig {
  std::size_t num_points = 20000;
  int dims = 3;
  /// Per-axis domain bits; 0 picks max(6, 24 / dims) so the total space
  /// stays large enough for num_points distinct points at any d.
  int axis_bits = 0;
  double pareto_alpha = 1.2;  // weight tail
  /// Branch bias of the bit-level clustering in [0.5, 1): 0.5 is uniform,
  /// larger concentrates mass into fewer subtrees per level.
  double cluster_bias = 0.75;
  std::uint64_t seed = 42;
};

/// Generates a clustered d-dimensional cloud of distinct points.
DatasetNd GenerateNdCloud(const NdCloudConfig& cfg);

/// One d-dimensional box query with its exact answer over the full data.
struct NdQuery {
  BoxN box;
  Weight exact = 0.0;
};

struct NdQueryBattery {
  std::vector<NdQuery> queries;
  Weight data_total = 0.0;  // error normalizer
};

/// Battery of `num_queries` axis-parallel boxes placed uniformly at random,
/// side lengths uniform in [1, max_frac * axis domain]; exact answers are
/// computed against the full data.
NdQueryBattery UniformVolumeQueriesNd(const DatasetNd& ds, int num_queries,
                                      double max_frac, Rng* rng);

}  // namespace sas

#endif  // SAS_DATA_ND_GEN_H_
