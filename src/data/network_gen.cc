#include "data/network_gen.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_set>

#include "data/zipf.h"

namespace sas {

namespace {

/// Recursively places `count` distinct addresses into the block
/// [base, base + 2^b), concentrating mass in few subtrees: with high
/// probability the whole count collapses into one child block, otherwise
/// it splits with a skewed fraction.
void PlaceAddresses(std::size_t count, Coord base, int b, Rng* rng,
                    std::vector<Coord>* out) {
  if (count == 0) return;
  if (b == 0) {
    assert(count == 1);
    out->push_back(base);
    return;
  }
  const Coord half = Coord{1} << (b - 1);
  const std::size_t cap =
      b - 1 >= 63 ? ~std::size_t{0} : static_cast<std::size_t>(half);
  if (count == 1) {
    // Single address: descend into a uniformly random child.
    const Coord child = rng->NextBounded(2);
    PlaceAddresses(1, base + child * half, b - 1, rng, out);
    return;
  }
  const std::size_t min_left = count > cap ? count - cap : 0;
  const std::size_t max_left = std::min(count, cap);
  std::size_t left;
  if (min_left == 0 && rng->NextBernoulli(0.55)) {
    // Collapse: the whole cluster goes to one side (this is what creates
    // prefix locality). min_left == 0 implies count <= cap, so it fits.
    left = rng->NextBounded(2) ? count : 0;
  } else {
    // Skewed split.
    const double f = std::pow(rng->NextDouble(), 2.0);
    left = min_left +
           static_cast<std::size_t>(f * static_cast<double>(max_left - min_left));
    left = std::clamp(left, min_left, max_left);
  }
  PlaceAddresses(left, base, b - 1, rng, out);
  PlaceAddresses(count - left, base + half, b - 1, rng, out);
}

}  // namespace

std::vector<Coord> GenerateClusteredAddresses(std::size_t count, int bits,
                                              Rng* rng) {
  assert(bits >= 1 && bits < 63);
  assert(count <= (std::size_t{1} << std::min(bits, 62)));
  std::vector<Coord> out;
  out.reserve(count);
  PlaceAddresses(count, 0, bits, rng, &out);
  // Distinctness holds by construction (each unit block holds one address).
  return out;
}

Dataset2D GenerateNetwork(const NetworkConfig& cfg) {
  Rng rng(cfg.seed);
  Dataset2D ds;
  ds.name = "network";

  const std::vector<Coord> sources =
      GenerateClusteredAddresses(cfg.num_sources, cfg.bits, &rng);
  const std::vector<Coord> dests =
      GenerateClusteredAddresses(cfg.num_dests, cfg.bits, &rng);

  // Distinct (source, dest) pairs with Zipf endpoint popularity.
  const ZipfDistribution zsrc(sources.size(), cfg.zipf_theta);
  const ZipfDistribution zdst(dests.size(), cfg.zipf_theta);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(cfg.num_pairs * 2);
  ds.items.reserve(cfg.num_pairs);
  KeyId next_id = 0;
  std::size_t attempts = 0;
  const std::size_t max_attempts = cfg.num_pairs * 200 + 1000;
  while (ds.items.size() < cfg.num_pairs && attempts < max_attempts) {
    ++attempts;
    const std::size_t si = zsrc.Sample(&rng);
    const std::size_t di = zdst.Sample(&rng);
    const std::uint64_t code =
        (static_cast<std::uint64_t>(si) << 32) | di;
    if (!seen.insert(code).second) continue;
    WeightedKey k;
    k.id = next_id++;
    k.pt = {sources[si], dests[di]};
    k.weight = rng.NextPareto(cfg.pareto_alpha);
    ds.items.push_back(k);
  }

  // Per-axis IP-prefix hierarchies over the coordinates actually present.
  std::vector<Coord> xs, ys;
  {
    std::unordered_set<Coord> sx, sy;
    for (const auto& it : ds.items) {
      sx.insert(it.pt.x);
      sy.insert(it.pt.y);
    }
    xs.assign(sx.begin(), sx.end());
    ys.assign(sy.begin(), sy.end());
    std::sort(xs.begin(), xs.end());
    std::sort(ys.begin(), ys.end());
  }
  ds.hx = std::make_unique<Hierarchy>(
      Hierarchy::CompressedBinaryTrie(xs, cfg.bits));
  ds.hy = std::make_unique<Hierarchy>(
      Hierarchy::CompressedBinaryTrie(ys, cfg.bits));
  ds.domain.x = {AxisKind::kHierarchy, cfg.bits, ds.hx.get()};
  ds.domain.y = {AxisKind::kHierarchy, cfg.bits, ds.hy.get()};
  return ds;
}

}  // namespace sas
