#include "data/dataset.h"

namespace sas {

Weight Dataset2D::total_weight() const {
  Weight total = 0.0;
  for (const auto& it : items) total += it.weight;
  return total;
}

std::vector<Weight> Dataset2D::Weights() const {
  std::vector<Weight> out;
  out.reserve(items.size());
  for (const auto& it : items) out.push_back(it.weight);
  return out;
}

}  // namespace sas
