#include "summaries/exact_summary.h"

namespace sas {

Weight ExactBoxSum(const std::vector<WeightedKey>& items, const Box& box) {
  Weight total = 0.0;
  for (const auto& it : items) {
    if (box.Contains(it.pt)) total += it.weight;
  }
  return total;
}

Weight ExactQuerySum(const std::vector<WeightedKey>& items,
                     const MultiRangeQuery& q) {
  Weight total = 0.0;
  for (const auto& it : items) {
    for (const auto& box : q.boxes) {
      if (box.Contains(it.pt)) {
        total += it.weight;
        break;
      }
    }
  }
  return total;
}

Weight TotalWeight(const std::vector<WeightedKey>& items) {
  Weight total = 0.0;
  for (const auto& it : items) total += it.weight;
  return total;
}

}  // namespace sas
