#include "summaries/qdigest2d.h"

#include <cassert>
#include <unordered_map>

#include "structure/product.h"

namespace sas {

namespace {

/// Axis split sequence: alternate x,y while both axes have bits left, then
/// finish the longer axis. Returns axis index (0=x, 1=y) per depth.
std::vector<int> AxisSequence(int bits_x, int bits_y) {
  std::vector<int> axes;
  axes.reserve(bits_x + bits_y);
  int rx = bits_x, ry = bits_y;
  bool turn_x = true;
  while (rx > 0 || ry > 0) {
    if ((turn_x && rx > 0) || ry == 0) {
      axes.push_back(0);
      --rx;
    } else {
      axes.push_back(1);
      --ry;
    }
    turn_x = !turn_x;
  }
  return axes;
}

/// Interleaved full-depth path of a point (x bit first).
std::uint64_t EncodePath(const Point2D& pt, const std::vector<int>& axes,
                         int bits_x, int bits_y) {
  std::uint64_t path = 0;
  int used_x = 0, used_y = 0;
  for (int axis : axes) {
    std::uint64_t bit;
    if (axis == 0) {
      bit = (pt.x >> (bits_x - 1 - used_x)) & 1;
      ++used_x;
    } else {
      bit = (pt.y >> (bits_y - 1 - used_y)) & 1;
      ++used_y;
    }
    path = (path << 1) | bit;
  }
  return path;
}

}  // namespace

QDigest2D::QDigest2D(const std::vector<WeightedKey>& items, double k,
                     int bits_x, int bits_y)
    : bits_x_(bits_x), bits_y_(bits_y) {
  assert(bits_x >= 1 && bits_y >= 1 && bits_x + bits_y <= 64);
  for (const auto& it : items) total_ += it.weight;
  if (items.empty() || total_ <= 0.0) return;
  const double threshold = total_ / k;
  const std::vector<int> axes = AxisSequence(bits_x, bits_y);
  const int max_depth = bits_x + bits_y;

  std::unordered_map<std::uint64_t, Weight> level;
  level.reserve(items.size());
  for (const auto& it : items) {
    level[EncodePath(it.pt, axes, bits_x, bits_y)] += it.weight;
  }
  for (int depth = max_depth; depth >= 1; --depth) {
    std::unordered_map<std::uint64_t, Weight> parent_level;
    parent_level.reserve(level.size() / 2 + 1);
    for (const auto& [path, w] : level) {
      if (w < threshold) {
        parent_level[path >> 1] += w;
      } else {
        nodes_.push_back({DecodeBox(depth, path), w});
      }
    }
    level = std::move(parent_level);
  }
  for (const auto& [path, w] : level) {
    if (w > 0.0) nodes_.push_back({DecodeBox(0, path), w});
  }
}

Box QDigest2D::DecodeBox(int depth, std::uint64_t path) const {
  const std::vector<int> axes = AxisSequence(bits_x_, bits_y_);
  Coord x_lo = 0, y_lo = 0;
  int used_x = 0, used_y = 0;
  for (int d = 0; d < depth; ++d) {
    const std::uint64_t bit = (path >> (depth - 1 - d)) & 1;
    if (axes[d] == 0) {
      x_lo |= bit << (bits_x_ - 1 - used_x);
      ++used_x;
    } else {
      y_lo |= bit << (bits_y_ - 1 - used_y);
      ++used_y;
    }
  }
  const Coord x_span = Coord{1} << (bits_x_ - used_x);
  const Coord y_span = Coord{1} << (bits_y_ - used_y);
  return Box{{x_lo, x_lo + x_span}, {y_lo, y_lo + y_span}};
}

Weight QDigest2D::EstimateBox(const Box& box) const {
  double total = 0.0;
  for (const auto& e : nodes_) {
    total += e.weight * BoxOverlapFraction(e.cell, box);
  }
  return total;
}

Weight QDigest2D::EstimateQuery(const MultiRangeQuery& q) const {
  double total = 0.0;
  for (const auto& box : q.boxes) total += EstimateBox(box);
  return total;
}

}  // namespace sas
