// Count-Sketch (Charikar, Chen, Farach-Colton [4]): an unbiased randomized
// frequency summary. Each of `rows` rows hashes an item to one of `width`
// counters with a random +-1 sign; the estimate is the median of the signed
// counters. Used by the dyadic range sketch (the *Sketch* baseline).

#ifndef SAS_SUMMARIES_COUNT_SKETCH_H_
#define SAS_SUMMARIES_COUNT_SKETCH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/types.h"

namespace sas {

class CountSketch {
 public:
  CountSketch(std::size_t rows, std::size_t width, std::uint64_t seed);

  void Update(std::uint64_t item, Weight w);

  /// Median-of-rows estimate of the total weight of `item`.
  Weight Estimate(std::uint64_t item) const;

  std::size_t rows() const { return rows_; }
  std::size_t width() const { return width_; }
  /// Total number of counters (summary size in elements).
  std::size_t size() const { return table_.size(); }

 private:
  /// Row-r bucket and sign for an item.
  std::pair<std::size_t, double> Locate(std::size_t r,
                                        std::uint64_t item) const;

  std::size_t rows_;
  std::size_t width_;
  std::vector<std::uint64_t> row_seed_;
  std::vector<double> table_;  // rows_ x width_
};

}  // namespace sas

#endif  // SAS_SUMMARIES_COUNT_SKETCH_H_
