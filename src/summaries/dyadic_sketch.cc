#include "summaries/dyadic_sketch.h"

#include <algorithm>

#include "core/random.h"
#include "structure/dyadic.h"

namespace sas {

namespace {
inline std::uint64_t CellId(Coord ix, Coord iy) {
  return (ix << 32) | iy;
}
}  // namespace

DyadicSketch::DyadicSketch(int bits_x, int bits_y,
                           std::size_t total_counters, std::size_t rows,
                           std::uint64_t seed)
    : bits_x_(bits_x), bits_y_(bits_y) {
  const std::size_t pairs =
      static_cast<std::size_t>(bits_x + 1) * (bits_y + 1);
  const std::size_t width =
      std::max<std::size_t>(1, total_counters / (pairs * rows));
  std::uint64_t sm = seed;
  sketches_.reserve(pairs);
  for (std::size_t p = 0; p < pairs; ++p) {
    sketches_.emplace_back(rows, width, SplitMix64(&sm));
  }
}

void DyadicSketch::Update(const Point2D& pt, Weight w) {
  for (int jx = 0; jx <= bits_x_; ++jx) {
    const Coord ix = DyadicAncestorIndex(pt.x, jx, bits_x_);
    for (int jy = 0; jy <= bits_y_; ++jy) {
      const Coord iy = DyadicAncestorIndex(pt.y, jy, bits_y_);
      SketchAt(jx, jy).Update(CellId(ix, iy), w);
    }
  }
}

Weight DyadicSketch::EstimateBox(const Box& box) const {
  const auto dx = DyadicDecompose(box.x.lo, box.x.hi, bits_x_);
  const auto dy = DyadicDecompose(box.y.lo, box.y.hi, bits_y_);
  double total = 0.0;
  for (const auto& a : dx) {
    for (const auto& b : dy) {
      total += SketchAt(a.level, b.level).Estimate(CellId(a.index, b.index));
    }
  }
  return total;
}

Weight DyadicSketch::EstimateQuery(const MultiRangeQuery& q) const {
  double total = 0.0;
  for (const auto& box : q.boxes) total += EstimateBox(box);
  return total;
}

std::size_t DyadicSketch::size() const {
  std::size_t total = 0;
  for (const auto& s : sketches_) total += s.size();
  return total;
}

}  // namespace sas
