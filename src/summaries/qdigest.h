// Classic one-dimensional q-digest (Shrivastava et al. [22]).
//
// Counts (here: weights) live on the nodes of the dyadic tree over a
// domain of 2^bits coordinates. Nodes whose subtree is light relative to
// W/k are merged upward, so the materialized size is O(k log u). Range
// sums are answered by summing materialized node weights scaled by the
// overlap fraction of the node's dyadic interval with the query.

#ifndef SAS_SUMMARIES_QDIGEST_H_
#define SAS_SUMMARIES_QDIGEST_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/types.h"
#include "structure/dyadic.h"

namespace sas {

class QDigest {
 public:
  /// Builds a digest over weighted coordinates with compression parameter
  /// k (larger k = larger, more accurate digest).
  QDigest(const std::vector<std::pair<Coord, Weight>>& data, double k,
          int bits);

  /// Estimated total weight in [lo, hi) (uniform-within-node assumption for
  /// partially overlapped nodes).
  Weight RangeSum(Coord lo, Coord hi) const;

  /// Estimated rank: total weight strictly below x.
  Weight Rank(Coord x) const { return RangeSum(0, x); }

  /// Number of materialized nodes (summary size in elements).
  std::size_t size() const { return nodes_.size(); }

  Weight total_weight() const { return total_; }

  /// Materialized node: dyadic interval + retained weight.
  struct NodeEntry {
    DyadicInterval cell;
    Weight weight;
  };
  const std::vector<NodeEntry>& nodes() const { return nodes_; }

 private:
  int bits_;
  Weight total_ = 0.0;
  std::vector<NodeEntry> nodes_;
};

}  // namespace sas

#endif  // SAS_SUMMARIES_QDIGEST_H_
