#include "summaries/wavelet1d.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace sas {

Wavelet1D::Wavelet1D(const std::vector<std::pair<Coord, Weight>>& data,
                     std::size_t s, int bits)
    : basis_(bits) {
  std::unordered_map<HaarCode, double> acc;
  acc.reserve(data.size() * 2);
  std::vector<std::pair<HaarCode, double>> codes;
  for (const auto& [x, w] : data) {
    codes.clear();
    basis_.PointCodes(x, &codes);
    for (const auto& [code, v] : codes) acc[code] += w * v;
  }
  std::vector<Coefficient> all;
  all.reserve(acc.size());
  for (const auto& [code, v] : acc) {
    if (v != 0.0) all.push_back({code, v});
  }
  auto influence = [this](const Coefficient& c) {
    return std::fabs(c.value) *
           std::sqrt(static_cast<double>(basis_.Support(c.code).Length()));
  };
  if (all.size() > s) {
    std::nth_element(all.begin(), all.begin() + s, all.end(),
                     [&](const Coefficient& a, const Coefficient& b) {
                       return influence(a) > influence(b);
                     });
    all.resize(s);
  }
  coeffs_ = std::move(all);
}

Weight Wavelet1D::RangeSum(Coord lo, Coord hi) const {
  double total = 0.0;
  for (const auto& c : coeffs_) {
    total += c.value * basis_.Integral(c.code, lo, hi);
  }
  return total;
}

Weight Wavelet1D::EstimatePoint(Coord x) const {
  double total = 0.0;
  for (const auto& c : coeffs_) {
    total += c.value * basis_.Value(c.code, x);
  }
  return total;
}

}  // namespace sas
