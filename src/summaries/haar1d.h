// One-dimensional normalized Haar wavelet basis over a domain of 2^bits
// coordinates. Building block of the 2-D wavelet baseline (tensor
// products). Everything here is sparse: a point touches bits+1 basis
// functions, and the integral of a basis function over an interval is O(1).

#ifndef SAS_SUMMARIES_HAAR1D_H_
#define SAS_SUMMARIES_HAAR1D_H_

#include <cstdint>
#include <vector>

#include "core/types.h"

namespace sas {

/// Identifier of a 1-D Haar basis function using the standard heap
/// numbering: code 0 is the scaling function (constant 1/sqrt(u)); code
/// 2^j + k (for level j in [0, bits), offset k in [0, 2^j)) is the wavelet
/// psi_{j,k} supported on [k*2^(bits-j), (k+1)*2^(bits-j)), positive on the
/// left half and negative on the right, normalized to unit L2 norm.
using HaarCode = std::uint64_t;

class Haar1D {
 public:
  explicit Haar1D(int bits);

  int bits() const { return bits_; }
  Coord domain() const { return Coord{1} << bits_; }
  /// Number of basis functions = domain size.
  std::uint64_t num_functions() const { return domain(); }

  /// Value of basis function `code` at coordinate x.
  double Value(HaarCode code, Coord x) const;

  /// The bits+1 codes whose basis functions are nonzero at x, together with
  /// their values there. Appends (code, value) pairs to *out.
  void PointCodes(Coord x,
                  std::vector<std::pair<HaarCode, double>>* out) const;

  /// Sum of the basis function over the interval [lo, hi) in O(1).
  double Integral(HaarCode code, Coord lo, Coord hi) const;

  /// Support of the basis function (whole domain for the scaling function).
  Interval Support(HaarCode code) const;

 private:
  int bits_;
};

}  // namespace sas

#endif  // SAS_SUMMARIES_HAAR1D_H_
