// Two-dimensional q-digest (the *Qdigest* baseline of Section 6, after the
// adaptive spatial partitioning of Hershberger et al. [14]).
//
// The space is refined by a dyadic kd hierarchy that splits the x and y
// axes alternately; a node at depth d is identified by the first d bits of
// the interleaved (x, y) bit string. Nodes lighter than W/k push their
// mass to their parent; the rest are materialized ("heavy rectangles").
// Box queries sum materialized weights scaled by area overlap. The summary
// size is the number of materialized nodes, as in the paper.

#ifndef SAS_SUMMARIES_QDIGEST2D_H_
#define SAS_SUMMARIES_QDIGEST2D_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/types.h"

namespace sas {

class QDigest2D {
 public:
  /// Builds a digest over 2-D weighted points with compression parameter k
  /// (expected materialized size <= k + O(1)).
  QDigest2D(const std::vector<WeightedKey>& items, double k, int bits_x,
            int bits_y);

  Weight EstimateBox(const Box& box) const;
  Weight EstimateQuery(const MultiRangeQuery& q) const;

  /// Number of materialized nodes (summary size in elements).
  std::size_t size() const { return nodes_.size(); }

  Weight total_weight() const { return total_; }

  struct NodeEntry {
    Box cell;
    Weight weight;
  };
  const std::vector<NodeEntry>& nodes() const { return nodes_; }

 private:
  /// Decodes the box of a node at `depth` whose interleaved-bit path is
  /// `path` (x bit first).
  Box DecodeBox(int depth, std::uint64_t path) const;

  int bits_x_;
  int bits_y_;
  Weight total_ = 0.0;
  std::vector<NodeEntry> nodes_;
};

}  // namespace sas

#endif  // SAS_SUMMARIES_QDIGEST2D_H_
