// Dyadic range sketch (the *Sketch* baseline of Section 6): one
// Count-Sketch per pair of dyadic levels (jx, jy). Every input point
// updates all (bitsX+1)(bitsY+1) level-pair sketches with its dyadic
// ancestor rectangle at that granularity — the (log X * log Y) per-item
// cost the paper measures. A box query decomposes each axis range into
// canonical dyadic intervals and sums the sketch estimates of all product
// rectangles.

#ifndef SAS_SUMMARIES_DYADIC_SKETCH_H_
#define SAS_SUMMARIES_DYADIC_SKETCH_H_

#include <cstddef>
#include <vector>

#include "core/types.h"
#include "summaries/count_sketch.h"

namespace sas {

class DyadicSketch {
 public:
  /// `total_counters` is the space budget (number of counters across all
  /// level pairs); rows is the number of sketch rows per level pair.
  DyadicSketch(int bits_x, int bits_y, std::size_t total_counters,
               std::size_t rows, std::uint64_t seed);

  void Update(const Point2D& pt, Weight w);

  Weight EstimateBox(const Box& box) const;
  Weight EstimateQuery(const MultiRangeQuery& q) const;

  /// Total counters allocated (summary size in elements).
  std::size_t size() const;

 private:
  const CountSketch& SketchAt(int jx, int jy) const {
    return sketches_[static_cast<std::size_t>(jx) * (bits_y_ + 1) + jy];
  }
  CountSketch& SketchAt(int jx, int jy) {
    return sketches_[static_cast<std::size_t>(jx) * (bits_y_ + 1) + jy];
  }

  int bits_x_;
  int bits_y_;
  std::vector<CountSketch> sketches_;
};

}  // namespace sas

#endif  // SAS_SUMMARIES_DYADIC_SKETCH_H_
