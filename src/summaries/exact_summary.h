// Exact "summary": brute force over the raw data. Ground truth for the
// evaluation harness and the tests.

#ifndef SAS_SUMMARIES_EXACT_SUMMARY_H_
#define SAS_SUMMARIES_EXACT_SUMMARY_H_

#include <vector>

#include "core/types.h"

namespace sas {

/// Exact total weight of items inside the box.
Weight ExactBoxSum(const std::vector<WeightedKey>& items, const Box& box);

/// Exact total for a multi-rectangle query (rectangles disjoint).
Weight ExactQuerySum(const std::vector<WeightedKey>& items,
                     const MultiRangeQuery& q);

/// Total weight of the whole dataset.
Weight TotalWeight(const std::vector<WeightedKey>& items);

}  // namespace sas

#endif  // SAS_SUMMARIES_EXACT_SUMMARY_H_
