#include "summaries/count_sketch.h"

#include <algorithm>
#include <cassert>

#include "core/random.h"

namespace sas {

CountSketch::CountSketch(std::size_t rows, std::size_t width,
                         std::uint64_t seed)
    : rows_(rows), width_(width) {
  assert(rows >= 1 && width >= 1);
  table_.assign(rows_ * width_, 0.0);
  row_seed_.resize(rows_);
  std::uint64_t sm = seed;
  for (auto& s : row_seed_) s = SplitMix64(&sm);
}

std::pair<std::size_t, double> CountSketch::Locate(
    std::size_t r, std::uint64_t item) const {
  const std::uint64_t h = Mix64(item ^ row_seed_[r]);
  const std::size_t bucket = static_cast<std::size_t>(
      (static_cast<__uint128_t>(h >> 1) * width_) >> 63);
  const double sign = (h & 1) ? 1.0 : -1.0;
  return {bucket, sign};
}

void CountSketch::Update(std::uint64_t item, Weight w) {
  for (std::size_t r = 0; r < rows_; ++r) {
    const auto [bucket, sign] = Locate(r, item);
    table_[r * width_ + bucket] += sign * w;
  }
}

Weight CountSketch::Estimate(std::uint64_t item) const {
  std::vector<double> ests(rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    const auto [bucket, sign] = Locate(r, item);
    ests[r] = sign * table_[r * width_ + bucket];
  }
  std::nth_element(ests.begin(), ests.begin() + rows_ / 2, ests.end());
  double med = ests[rows_ / 2];
  if (rows_ % 2 == 0) {
    // Even number of rows: average the two central order statistics.
    const double hi = med;
    std::nth_element(ests.begin(), ests.begin() + rows_ / 2 - 1, ests.end());
    med = 0.5 * (hi + ests[rows_ / 2 - 1]);
  }
  return med;
}

}  // namespace sas
