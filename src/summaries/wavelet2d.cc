#include "summaries/wavelet2d.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace sas {

Wavelet2D::Wavelet2D(const std::vector<WeightedKey>& items, std::size_t s,
                     int bits_x, int bits_y)
    : hx_(bits_x), hy_(bits_y) {
  // Sparse transform: accumulate every coefficient touched by any point.
  std::unordered_map<std::uint64_t, double> acc;
  acc.reserve(items.size() * (bits_x + 1));
  std::vector<std::pair<HaarCode, double>> xs, ys;
  for (const auto& it : items) {
    xs.clear();
    ys.clear();
    hx_.PointCodes(it.pt.x, &xs);
    hy_.PointCodes(it.pt.y, &ys);
    for (const auto& [cx, vx] : xs) {
      const double wx = it.weight * vx;
      for (const auto& [cy, vy] : ys) {
        acc[(static_cast<std::uint64_t>(cx) << 32) | cy] += wx * vy;
      }
    }
  }
  dense_count_ = acc.size();

  // Threshold: keep the s coefficients with the largest influence on
  // range sums. In the orthonormal basis a coefficient's contribution to a
  // box sum scales with |c| * sqrt(support_x * support_y) (the integral of
  // the basis function over half its support), so ranking by that product
  // keeps the coarse mass carriers that range queries depend on; ranking
  // by raw |c| alone would keep only the finest (point-localized)
  // coefficients, which integrate to ~0 over any large range.
  auto influence = [this](const Coefficient& c) {
    const double sx = static_cast<double>(hx_.Support(c.cx).Length());
    const double sy = static_cast<double>(hy_.Support(c.cy).Length());
    return std::fabs(c.value) * std::sqrt(sx * sy);
  };
  std::vector<Coefficient> all;
  all.reserve(acc.size());
  for (const auto& [code, v] : acc) {
    if (v != 0.0) {
      all.push_back({code >> 32, code & 0xFFFFFFFFULL, v});
    }
  }
  if (all.size() > s) {
    std::nth_element(all.begin(), all.begin() + s, all.end(),
                     [&](const Coefficient& a, const Coefficient& b) {
                       return influence(a) > influence(b);
                     });
    all.resize(s);
  }
  coeffs_ = std::move(all);
}

Weight Wavelet2D::EstimateBox(const Box& box) const {
  double total = 0.0;
  for (const auto& c : coeffs_) {
    const double ix = hx_.Integral(c.cx, box.x.lo, box.x.hi);
    if (ix == 0.0) continue;
    const double iy = hy_.Integral(c.cy, box.y.lo, box.y.hi);
    total += c.value * ix * iy;
  }
  return total;
}

Weight Wavelet2D::EstimateQuery(const MultiRangeQuery& q) const {
  double total = 0.0;
  for (const auto& box : q.boxes) total += EstimateBox(box);
  return total;
}

Weight Wavelet2D::EstimatePoint(const Point2D& pt) const {
  double total = 0.0;
  for (const auto& c : coeffs_) {
    const double vx = hx_.Value(c.cx, pt.x);
    if (vx == 0.0) continue;
    total += c.value * vx * hy_.Value(c.cy, pt.y);
  }
  return total;
}

}  // namespace sas
