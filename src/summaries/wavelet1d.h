// One-dimensional Haar wavelet summary: the classic range-sum summary of
// Matias-Vitter-Wang [17] / Vitter-Wang-Iyer [28], kept for completeness
// (the paper's evaluation uses the 2-D tensor construction in wavelet2d.h).
// Coefficients are thresholded by their influence on range sums,
// |c| * sqrt(support), as in the 2-D version.

#ifndef SAS_SUMMARIES_WAVELET1D_H_
#define SAS_SUMMARIES_WAVELET1D_H_

#include <cstddef>
#include <vector>

#include "core/types.h"
#include "summaries/haar1d.h"

namespace sas {

class Wavelet1D {
 public:
  Wavelet1D(const std::vector<std::pair<Coord, Weight>>& data, std::size_t s,
            int bits);

  /// Estimated total weight in [lo, hi).
  Weight RangeSum(Coord lo, Coord hi) const;

  /// Reconstructed value at one coordinate.
  Weight EstimatePoint(Coord x) const;

  std::size_t size() const { return coeffs_.size(); }

 private:
  struct Coefficient {
    HaarCode code;
    double value;
  };

  Haar1D basis_;
  std::vector<Coefficient> coeffs_;
};

}  // namespace sas

#endif  // SAS_SUMMARIES_WAVELET1D_H_
