// Two-dimensional standard Haar wavelet summary (the *Wavelet* baseline of
// Section 6, after [28]).
//
// The basis is the tensor product of two 1-D Haar bases: each input point
// contributes to (bitsX+1)(bitsY+1) coefficients, computed sparsely into a
// hash map (the paper: "when the domain is large and the data sparse, it is
// more efficient to generate the transform of each key"). After the build,
// only the s largest (normalized) coefficients are retained. A box query
// sums coeff * Integral_x * Integral_y over the retained coefficients in
// O(s).

#ifndef SAS_SUMMARIES_WAVELET2D_H_
#define SAS_SUMMARIES_WAVELET2D_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/types.h"
#include "summaries/haar1d.h"

namespace sas {

class Wavelet2D {
 public:
  /// Builds the full (sparse) transform of `items` and keeps the `s`
  /// largest coefficients by absolute value.
  Wavelet2D(const std::vector<WeightedKey>& items, std::size_t s, int bits_x,
            int bits_y);

  /// Estimate of the total weight inside the box.
  Weight EstimateBox(const Box& box) const;

  /// Estimate for a multi-rectangle query (sums box estimates; rectangles
  /// are disjoint).
  Weight EstimateQuery(const MultiRangeQuery& q) const;

  /// Reconstructed value at a single cell.
  Weight EstimatePoint(const Point2D& pt) const;

  /// Retained coefficients (summary size in elements).
  std::size_t size() const { return coeffs_.size(); }

  /// Number of nonzero coefficients before thresholding (cost metric).
  std::size_t dense_coefficients() const { return dense_count_; }

 private:
  struct Coefficient {
    HaarCode cx;
    HaarCode cy;
    double value;
  };

  Haar1D hx_;
  Haar1D hy_;
  std::vector<Coefficient> coeffs_;
  std::size_t dense_count_ = 0;
};

}  // namespace sas

#endif  // SAS_SUMMARIES_WAVELET2D_H_
