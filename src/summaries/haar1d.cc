#include "summaries/haar1d.h"

#include <bit>
#include <cassert>
#include <cmath>

namespace sas {

namespace {

/// Clamped length of the intersection of [lo, hi) with [a, b).
inline double OverlapLen(Coord lo, Coord hi, Coord a, Coord b) {
  const Coord l = lo > a ? lo : a;
  const Coord h = hi < b ? hi : b;
  return h > l ? static_cast<double>(h - l) : 0.0;
}

}  // namespace

Haar1D::Haar1D(int bits) : bits_(bits) { assert(bits >= 0 && bits < 63); }

double Haar1D::Value(HaarCode code, Coord x) const {
  if (code == 0) {
    return 1.0 / std::sqrt(static_cast<double>(domain()));
  }
  const int level = 63 - std::countl_zero(code);  // j (code != 0 here)
  const Coord k = code - (Coord{1} << level);     // offset within level
  const int span_bits = bits_ - level;            // support = 2^span_bits
  if ((x >> span_bits) != k) return 0.0;
  const double norm =
      1.0 / std::sqrt(static_cast<double>(Coord{1} << span_bits));
  const bool right_half = (x >> (span_bits - 1)) & 1;
  return right_half ? -norm : norm;
}

void Haar1D::PointCodes(Coord x,
                        std::vector<std::pair<HaarCode, double>>* out) const {
  out->emplace_back(0, 1.0 / std::sqrt(static_cast<double>(domain())));
  for (int level = 0; level < bits_; ++level) {
    const int span_bits = bits_ - level;
    const Coord k = x >> span_bits;
    const HaarCode code = (Coord{1} << level) + k;
    const double norm =
        1.0 / std::sqrt(static_cast<double>(Coord{1} << span_bits));
    const bool right_half = (x >> (span_bits - 1)) & 1;
    out->emplace_back(code, right_half ? -norm : norm);
  }
}

double Haar1D::Integral(HaarCode code, Coord lo, Coord hi) const {
  if (hi <= lo) return 0.0;
  if (code == 0) {
    return static_cast<double>(hi - lo) /
           std::sqrt(static_cast<double>(domain()));
  }
  const int level = 63 - std::countl_zero(code);
  const Coord k = code - (Coord{1} << level);
  const int span_bits = bits_ - level;
  const Coord a = k << span_bits;
  const Coord mid = a + (Coord{1} << (span_bits - 1));
  const Coord b = a + (Coord{1} << span_bits);
  const double norm =
      1.0 / std::sqrt(static_cast<double>(Coord{1} << span_bits));
  return norm * (OverlapLen(lo, hi, a, mid) - OverlapLen(lo, hi, mid, b));
}

Interval Haar1D::Support(HaarCode code) const {
  if (code == 0) return {0, domain()};
  const int level = 63 - std::countl_zero(code);
  const Coord k = code - (Coord{1} << level);
  const int span_bits = bits_ - level;
  return {k << span_bits, (k + 1) << span_bits};
}

}  // namespace sas
