#include "summaries/qdigest.h"

#include <unordered_map>

#include "structure/product.h"

namespace sas {

QDigest::QDigest(const std::vector<std::pair<Coord, Weight>>& data, double k,
                 int bits)
    : bits_(bits) {
  for (const auto& [c, w] : data) total_ += w;
  if (data.empty() || total_ <= 0.0) return;
  const double threshold = total_ / k;

  // Level-by-level bottom-up compression: a node lighter than W/k pushes
  // its mass to its parent; otherwise it is materialized.
  std::unordered_map<Coord, Weight> level;
  level.reserve(data.size());
  for (const auto& [c, w] : data) level[c] += w;
  for (int depth = bits_; depth >= 1; --depth) {
    std::unordered_map<Coord, Weight> parent_level;
    parent_level.reserve(level.size() / 2 + 1);
    for (const auto& [idx, w] : level) {
      if (w < threshold) {
        parent_level[idx >> 1] += w;
      } else {
        nodes_.push_back({{depth, idx}, w});
      }
    }
    level = std::move(parent_level);
  }
  // Whatever reaches the root is materialized there.
  for (const auto& [idx, w] : level) {
    if (w > 0.0) nodes_.push_back({{0, idx}, w});
  }
}

Weight QDigest::RangeSum(Coord lo, Coord hi) const {
  const Interval q{lo, hi};
  double total = 0.0;
  for (const auto& e : nodes_) {
    const Interval cell = DyadicToInterval(e.cell, bits_);
    total += e.weight * IntervalOverlapFraction(cell, q);
  }
  return total;
}

}  // namespace sas
