#include "eval/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>

namespace sas {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void Table::Print() const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::printf("%-*s ", static_cast<int>(widths[c]), row[c].c_str());
    }
    std::printf("\n");
  };
  print_row(headers_);
  for (const auto& row : rows_) print_row(row);
  std::fflush(stdout);
}

std::string Table::Num(double v) {
  char buf[32];
  if (v != 0.0 && (std::fabs(v) < 1e-3 || std::fabs(v) >= 1e6)) {
    std::snprintf(buf, sizeof(buf), "%.3e", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.5f", v);
  }
  return buf;
}

std::string Table::Int(std::size_t v) { return std::to_string(v); }

}  // namespace sas
