#include "eval/metrics.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace sas {

ErrorStats ComputeErrors(const std::vector<Weight>& estimates,
                         const std::vector<Weight>& exacts,
                         Weight data_total) {
  assert(estimates.size() == exacts.size());
  ErrorStats stats;
  stats.count = estimates.size();
  if (stats.count == 0 || data_total <= 0.0) return stats;
  for (std::size_t i = 0; i < estimates.size(); ++i) {
    const double abs_err = std::fabs(estimates[i] - exacts[i]);
    const double norm = abs_err / data_total;
    stats.mean_abs += norm;
    stats.sum_squared += norm * norm;
    stats.max_abs = std::max(stats.max_abs, norm);
    stats.mean_rel += abs_err / std::max(exacts[i], 1e-12);
  }
  stats.mean_abs /= static_cast<double>(stats.count);
  stats.mean_rel /= static_cast<double>(stats.count);
  return stats;
}

}  // namespace sas
