// Experiment harness: builds each summary method at a target size over a
// dataset (with wall-clock timing) and evaluates it on query batteries.
// Every per-figure bench binary is a thin driver over these helpers.
//
// All summaries are constructed through the registry (api/registry.h);
// methods are named by their canonical keys, so adding a method to a bench
// is adding one string.

#ifndef SAS_EVAL_HARNESS_H_
#define SAS_EVAL_HARNESS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "api/registry.h"
#include "api/summary.h"
#include "core/telemetry.h"
#include "data/dataset.h"
#include "data/nd_gen.h"
#include "data/query_gen.h"
#include "eval/metrics.h"

namespace sas {

/// Simple wall-clock stopwatch over the telemetry monotonic clock (the
/// library's single sanctioned ambient-clock call site — sas-lint rule
/// timing-confined).
class Stopwatch {
 public:
  Stopwatch() : start_ns_(telemetry::NowNs()) {}
  void Reset() { start_ns_ = telemetry::NowNs(); }
  double Seconds() const {
    return static_cast<double>(telemetry::NowNs() - start_ns_) * 1e-9;
  }

 private:
  std::uint64_t start_ns_;
};

/// A summary plus how long it took to build.
struct BuiltSummary {
  std::unique_ptr<RangeSummary> summary;
  double build_seconds = 0.0;
};

/// The methods the paper's figures compare: aware (two-pass product
/// sampler), obliv (streaming VarOpt), wavelet, qdigest, and optionally the
/// dyadic sketch (off by default in accuracy figures, matching the paper
/// which drops it as "off the scale").
std::vector<std::string> DefaultMethods(bool include_sketch = false);

/// Builds every listed method (canonical registry keys, including the
/// composed "sharded:<N>:<key>" and "windowed:<W>:<B>:<key>" wrapper keys,
/// nested in either order) at summary size `s` over the dataset, in order,
/// deriving one deterministic sub-seed per method from `seed`. Windowed
/// keys ingest the batch dataset untimed (a single bucket at time 0).
std::vector<BuiltSummary> BuildMethods(const Dataset2D& ds, std::size_t s,
                                       const std::vector<std::string>& methods,
                                       std::uint64_t seed);

/// d-dimensional counterpart of BuildMethods: builds every listed method
/// over a DatasetNd with structure = StructureSpec::Nd(ds.dims). Methods
/// that ingest coordinates (the "nd" key's AddCoords) receive all dims
/// axes; methods without an AddCoords path fall back to the ordinary Add
/// path over ds.AsWeightedKeys() (id = point index, pt = the first two
/// axes) — valid for weight-only methods like "obliv", whose estimates are
/// id-keyed, while 2-D structure methods would see only a projection.
std::vector<BuiltSummary> BuildMethodsNd(
    const DatasetNd& ds, std::size_t s,
    const std::vector<std::string>& methods, std::uint64_t seed);

/// Evaluates one summary over a battery; also reports query time.
struct BatteryResult {
  std::string method;
  std::size_t size_elements = 0;
  ErrorStats errors;
  double build_seconds = 0.0;
  double query_seconds = 0.0;
};

BatteryResult EvaluateOnBattery(const BuiltSummary& built,
                                const QueryBattery& battery);

/// Evaluates one summary over a d-dimensional box battery. Queries run as
/// id-keyed subset estimates against the dataset's coordinates, so the
/// summary must be sample-backed (AsSample() != nullptr); throws
/// std::invalid_argument otherwise.
BatteryResult EvaluateOnBatteryNd(const BuiltSummary& built,
                                  const NdQueryBattery& battery,
                                  const DatasetNd& ds);

}  // namespace sas

#endif  // SAS_EVAL_HARNESS_H_
