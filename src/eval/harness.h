// Experiment harness: builds each summary method at a target size over a
// dataset (with wall-clock timing) and evaluates it on query batteries.
// Every per-figure bench binary is a thin driver over these helpers.

#ifndef SAS_EVAL_HARNESS_H_
#define SAS_EVAL_HARNESS_H_

#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/query_gen.h"
#include "eval/metrics.h"
#include "eval/summary_iface.h"

namespace sas {

/// Simple wall-clock stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}
  void Reset() { start_ = Clock::now(); }
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// A summary plus how long it took to build.
struct BuiltSummary {
  std::unique_ptr<RangeSummary> summary;
  double build_seconds = 0.0;
};

/// Which methods to build (sketch is off by default in accuracy figures,
/// matching the paper which drops it as "off the scale").
struct MethodSet {
  bool aware = true;
  bool obliv = true;
  bool wavelet = true;
  bool qdigest = true;
  bool sketch = false;
};

/// Builds all enabled methods at summary size `s` over the dataset.
/// The aware method is the two-pass product sampler (the configuration the
/// paper evaluates); obliv is streaming VarOpt.
std::vector<BuiltSummary> BuildMethods(const Dataset2D& ds, std::size_t s,
                                       const MethodSet& methods,
                                       std::uint64_t seed);

/// Evaluates one summary over a battery; also reports query time.
struct BatteryResult {
  std::string method;
  std::size_t size_elements = 0;
  ErrorStats errors;
  double build_seconds = 0.0;
  double query_seconds = 0.0;
};

BatteryResult EvaluateOnBattery(const BuiltSummary& built,
                                const QueryBattery& battery);

}  // namespace sas

#endif  // SAS_EVAL_HARNESS_H_
