// Common interface over all summary types so the evaluation harness and
// the per-figure benches can treat them uniformly, plus thin adapters.

#ifndef SAS_EVAL_SUMMARY_IFACE_H_
#define SAS_EVAL_SUMMARY_IFACE_H_

#include <memory>
#include <string>
#include <utility>

#include "core/sample.h"
#include "core/types.h"
#include "summaries/dyadic_sketch.h"
#include "summaries/qdigest2d.h"
#include "summaries/wavelet2d.h"

namespace sas {

class RangeSummary {
 public:
  virtual ~RangeSummary() = default;

  /// Estimated total weight of a multi-rectangle query.
  virtual Weight EstimateQuery(const MultiRangeQuery& q) const = 0;

  /// Size in "elements of the original data" (paper's space accounting).
  virtual std::size_t SizeInElements() const = 0;

  virtual std::string Name() const = 0;
};

class SampleSummary : public RangeSummary {
 public:
  SampleSummary(std::string name, Sample sample)
      : name_(std::move(name)), sample_(std::move(sample)) {}

  Weight EstimateQuery(const MultiRangeQuery& q) const override {
    return sample_.EstimateQuery(q);
  }
  std::size_t SizeInElements() const override { return sample_.size(); }
  std::string Name() const override { return name_; }
  const Sample& sample() const { return sample_; }

 private:
  std::string name_;
  Sample sample_;
};

class WaveletSummary : public RangeSummary {
 public:
  explicit WaveletSummary(Wavelet2D wavelet) : wavelet_(std::move(wavelet)) {}

  Weight EstimateQuery(const MultiRangeQuery& q) const override {
    return wavelet_.EstimateQuery(q);
  }
  std::size_t SizeInElements() const override { return wavelet_.size(); }
  std::string Name() const override { return "wavelet"; }

 private:
  Wavelet2D wavelet_;
};

class QDigest2DSummary : public RangeSummary {
 public:
  explicit QDigest2DSummary(QDigest2D digest) : digest_(std::move(digest)) {}

  Weight EstimateQuery(const MultiRangeQuery& q) const override {
    return digest_.EstimateQuery(q);
  }
  std::size_t SizeInElements() const override { return digest_.size(); }
  std::string Name() const override { return "qdigest"; }

 private:
  QDigest2D digest_;
};

class DyadicSketchSummary : public RangeSummary {
 public:
  explicit DyadicSketchSummary(DyadicSketch sketch)
      : sketch_(std::move(sketch)) {}

  Weight EstimateQuery(const MultiRangeQuery& q) const override {
    return sketch_.EstimateQuery(q);
  }
  std::size_t SizeInElements() const override { return sketch_.size(); }
  std::string Name() const override { return "sketch"; }

 private:
  DyadicSketch sketch_;
};

}  // namespace sas

#endif  // SAS_EVAL_SUMMARY_IFACE_H_
