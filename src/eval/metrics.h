// Error metrics of the evaluation section: absolute error normalized by
// the total data weight (the paper's y-axis), plus sum-squared and relative
// error aggregates over a query battery.

#ifndef SAS_EVAL_METRICS_H_
#define SAS_EVAL_METRICS_H_

#include <cstddef>
#include <vector>

#include "core/types.h"

namespace sas {

struct ErrorStats {
  double mean_abs = 0.0;     // mean |est - exact| / data_total
  double mean_rel = 0.0;     // mean |est - exact| / max(exact, eps)
  double sum_squared = 0.0;  // sum of squared normalized errors
  double max_abs = 0.0;      // worst normalized absolute error
  std::size_t count = 0;
};

/// Aggregates errors over aligned vectors of estimates and exact answers.
ErrorStats ComputeErrors(const std::vector<Weight>& estimates,
                         const std::vector<Weight>& exacts,
                         Weight data_total);

}  // namespace sas

#endif  // SAS_EVAL_METRICS_H_
