// Aligned-column table printing for the bench binaries: every figure bench
// emits the same rows/series the paper plots, in a form that is easy to
// read and to grep into a plotting tool.

#ifndef SAS_EVAL_TABLE_H_
#define SAS_EVAL_TABLE_H_

#include <cstddef>
#include <string>
#include <vector>

namespace sas {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  /// Renders with aligned columns to stdout.
  void Print() const;

  /// Formats a double compactly (scientific for small magnitudes).
  static std::string Num(double v);
  static std::string Int(std::size_t v);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sas

#endif  // SAS_EVAL_TABLE_H_
