#include "eval/harness.h"

#include <stdexcept>

#include "api/keys.h"
#include "core/random.h"

namespace sas {

std::vector<std::string> DefaultMethods(bool include_sketch) {
  std::vector<std::string> methods{keys::kAware, keys::kObliv,
                                   keys::kWavelet, keys::kQDigest};
  if (include_sketch) methods.push_back(keys::kSketch);
  return methods;
}

std::vector<BuiltSummary> BuildMethods(const Dataset2D& ds, std::size_t s,
                                       const std::vector<std::string>& methods,
                                       std::uint64_t seed) {
  std::vector<BuiltSummary> out;
  out.reserve(methods.size());
  Rng rng(seed);

  for (const std::string& method : methods) {
    SummarizerConfig cfg;
    cfg.s = static_cast<double>(s);
    cfg.seed = rng.Next();
    cfg.structure = StructureSpec::Product();
    cfg.bits_x = ds.domain.x.bits;
    cfg.bits_y = ds.domain.y.bits;

    Stopwatch sw;
    BuiltSummary b;
    b.summary = BuildSummary(method, cfg, ds.items);
    b.build_seconds = sw.Seconds();
    out.push_back(std::move(b));
  }
  return out;
}

std::vector<BuiltSummary> BuildMethodsNd(
    const DatasetNd& ds, std::size_t s,
    const std::vector<std::string>& methods, std::uint64_t seed) {
  std::vector<BuiltSummary> out;
  out.reserve(methods.size());
  Rng rng(seed);
  // Keyed view of the dataset, materialized once on the first method that
  // needs the fallback path — outside the per-method stopwatch, so the
  // O(n) copy does not inflate fallback methods' build times.
  std::vector<WeightedKey> keyed;

  for (const std::string& method : methods) {
    SummarizerConfig cfg;
    cfg.s = static_cast<double>(s);
    cfg.seed = rng.Next();
    cfg.structure = StructureSpec::Nd(ds.dims);
    cfg.bits_x = ds.axis_bits;
    cfg.bits_y = ds.axis_bits;

    Stopwatch sw;
    BuiltSummary b;
    auto builder = MakeSummarizer(method, cfg);
    // Prefer the coordinate path (all dims axes reach the method); builders
    // without one throw std::logic_error on the first point, before any
    // state changes, and take the keyed Add path instead.
    bool coords_path = ds.num_points() > 0;
    if (coords_path) {
      try {
        builder->AddCoords(ds.point(0), ds.dims, ds.weights[0]);
      } catch (const std::logic_error&) {
        coords_path = false;
      }
    }
    if (coords_path) {
      for (std::size_t i = 1; i < ds.num_points(); ++i) {
        builder->AddCoords(ds.point(i), ds.dims, ds.weights[i]);
      }
    } else {
      if (keyed.size() != ds.num_points()) {
        keyed = ds.AsWeightedKeys();
        sw.Reset();
      }
      builder->AddBatch(keyed);
    }
    b.summary = builder->Finalize();
    b.build_seconds = sw.Seconds();
    out.push_back(std::move(b));
  }
  return out;
}

BatteryResult EvaluateOnBattery(const BuiltSummary& built,
                                const QueryBattery& battery) {
  BatteryResult result;
  result.method = built.summary->Name();
  result.size_elements = built.summary->SizeInElements();
  result.build_seconds = built.build_seconds;

  std::vector<Weight> estimates, exacts;
  estimates.reserve(battery.queries.size());
  exacts.reserve(battery.queries.size());
  Stopwatch sw;
  for (const auto& q : battery.queries) {
    estimates.push_back(built.summary->EstimateQuery(q));
  }
  result.query_seconds = sw.Seconds();
  for (const auto& q : battery.queries) exacts.push_back(q.exact);
  result.errors = ComputeErrors(estimates, exacts, battery.data_total);
  return result;
}

BatteryResult EvaluateOnBatteryNd(const BuiltSummary& built,
                                  const NdQueryBattery& battery,
                                  const DatasetNd& ds) {
  const SampleSummary* sample = built.summary->AsSample();
  if (sample == nullptr) {
    throw std::invalid_argument(
        "EvaluateOnBatteryNd: method \"" + built.summary->Name() +
        "\" is not sample-backed; d-dimensional box queries run as subset "
        "estimates over the sample entries");
  }
  BatteryResult result;
  result.method = built.summary->Name();
  result.size_elements = built.summary->SizeInElements();
  result.build_seconds = built.build_seconds;

  std::vector<Weight> estimates, exacts;
  estimates.reserve(battery.queries.size());
  exacts.reserve(battery.queries.size());
  Stopwatch sw;
  for (const auto& q : battery.queries) {
    estimates.push_back(
        sample->sample().EstimateSubset([&](const WeightedKey& k) {
          return k.id < ds.num_points() &&
                 BoxNContains(q.box, ds.point(k.id));
        }));
  }
  result.query_seconds = sw.Seconds();
  for (const auto& q : battery.queries) exacts.push_back(q.exact);
  result.errors = ComputeErrors(estimates, exacts, battery.data_total);
  return result;
}

}  // namespace sas
