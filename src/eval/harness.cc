#include "eval/harness.h"

#include "aware/two_pass.h"
#include "core/random.h"
#include "sampling/stream_varopt.h"

namespace sas {

std::vector<BuiltSummary> BuildMethods(const Dataset2D& ds, std::size_t s,
                                       const MethodSet& methods,
                                       std::uint64_t seed) {
  std::vector<BuiltSummary> out;
  Rng rng(seed);

  if (methods.aware) {
    Stopwatch sw;
    Rng local = rng.Split();
    Sample sample = TwoPassProductSample(ds.items, static_cast<double>(s),
                                         TwoPassConfig{}, &local);
    BuiltSummary b;
    b.build_seconds = sw.Seconds();
    b.summary = std::make_unique<SampleSummary>("aware", std::move(sample));
    out.push_back(std::move(b));
  }
  if (methods.obliv) {
    Stopwatch sw;
    StreamVarOpt sketch(s, rng.Split());
    for (const auto& it : ds.items) sketch.Push(it);
    BuiltSummary b;
    b.build_seconds = sw.Seconds();
    b.summary =
        std::make_unique<SampleSummary>("obliv", sketch.ToSample());
    out.push_back(std::move(b));
  }
  if (methods.wavelet) {
    Stopwatch sw;
    Wavelet2D wavelet(ds.items, s, ds.domain.x.bits, ds.domain.y.bits);
    BuiltSummary b;
    b.build_seconds = sw.Seconds();
    b.summary = std::make_unique<WaveletSummary>(std::move(wavelet));
    out.push_back(std::move(b));
  }
  if (methods.qdigest) {
    Stopwatch sw;
    QDigest2D digest(ds.items, static_cast<double>(s), ds.domain.x.bits,
                     ds.domain.y.bits);
    BuiltSummary b;
    b.build_seconds = sw.Seconds();
    b.summary = std::make_unique<QDigest2DSummary>(std::move(digest));
    out.push_back(std::move(b));
  }
  if (methods.sketch) {
    Stopwatch sw;
    DyadicSketch sketch(ds.domain.x.bits, ds.domain.y.bits, s,
                        /*rows=*/3, rng.Next());
    for (const auto& it : ds.items) sketch.Update(it.pt, it.weight);
    BuiltSummary b;
    b.build_seconds = sw.Seconds();
    b.summary = std::make_unique<DyadicSketchSummary>(std::move(sketch));
    out.push_back(std::move(b));
  }
  return out;
}

BatteryResult EvaluateOnBattery(const BuiltSummary& built,
                                const QueryBattery& battery) {
  BatteryResult result;
  result.method = built.summary->Name();
  result.size_elements = built.summary->SizeInElements();
  result.build_seconds = built.build_seconds;

  std::vector<Weight> estimates, exacts;
  estimates.reserve(battery.queries.size());
  exacts.reserve(battery.queries.size());
  Stopwatch sw;
  for (const auto& q : battery.queries) {
    estimates.push_back(built.summary->EstimateQuery(q));
  }
  result.query_seconds = sw.Seconds();
  for (const auto& q : battery.queries) exacts.push_back(q.exact);
  result.errors = ComputeErrors(estimates, exacts, battery.data_total);
  return result;
}

}  // namespace sas
