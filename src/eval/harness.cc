#include "eval/harness.h"

#include "api/keys.h"
#include "core/random.h"

namespace sas {

std::vector<std::string> DefaultMethods(bool include_sketch) {
  std::vector<std::string> methods{keys::kAware, keys::kObliv,
                                   keys::kWavelet, keys::kQDigest};
  if (include_sketch) methods.push_back(keys::kSketch);
  return methods;
}

std::vector<BuiltSummary> BuildMethods(const Dataset2D& ds, std::size_t s,
                                       const std::vector<std::string>& methods,
                                       std::uint64_t seed) {
  std::vector<BuiltSummary> out;
  out.reserve(methods.size());
  Rng rng(seed);

  for (const std::string& method : methods) {
    SummarizerConfig cfg;
    cfg.s = static_cast<double>(s);
    cfg.seed = rng.Next();
    cfg.structure = StructureSpec::Product();
    cfg.bits_x = ds.domain.x.bits;
    cfg.bits_y = ds.domain.y.bits;

    Stopwatch sw;
    BuiltSummary b;
    b.summary = BuildSummary(method, cfg, ds.items);
    b.build_seconds = sw.Seconds();
    out.push_back(std::move(b));
  }
  return out;
}

BatteryResult EvaluateOnBattery(const BuiltSummary& built,
                                const QueryBattery& battery) {
  BatteryResult result;
  result.method = built.summary->Name();
  result.size_elements = built.summary->SizeInElements();
  result.build_seconds = built.build_seconds;

  std::vector<Weight> estimates, exacts;
  estimates.reserve(battery.queries.size());
  exacts.reserve(battery.queries.size());
  Stopwatch sw;
  for (const auto& q : battery.queries) {
    estimates.push_back(built.summary->EstimateQuery(q));
  }
  result.query_seconds = sw.Seconds();
  for (const auto& q : battery.queries) exacts.push_back(q.exact);
  result.errors = ComputeErrors(estimates, exacts, battery.data_total);
  return result;
}

}  // namespace sas
