#include "window/windowed.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "api/keys.h"
#include "api/registry.h"
#include "core/fault.h"
#include "core/telemetry.h"

namespace sas {

namespace {

constexpr int kMaxBuckets = 4096;
/// Spent inner builders kept around for Reset recycling. One builder is
/// live at a time (seal or query rebuild), so a small cap suffices.
constexpr std::size_t kMaxFreeBuilders = 2;

// Distinct salts keep the bucket-seed and merge-seed streams independent of
// each other and of the sharded wrapper's partition salt.
constexpr std::uint64_t kBucketSeedTag = 0x5EA1B0C4E7B0C4E7ULL;
constexpr std::uint64_t kMergeSeedTag = 0x3E6E5A1AD3A9F0B5ULL;

/// Rough bytes one retained sample entry costs (entry + reservoir
/// bookkeeping); the same coarse constant the sharded wrapper budgets with.
constexpr std::size_t kBytesPerSampleEntry = 64;

[[noreturn]] void BadKey(const std::string& key, const std::string& why) {
  throw std::invalid_argument("MakeSummarizer(\"" + key + "\"): " + why);
}

/// True for a non-empty string of digits with at most one interior '.'
/// (the restricted decimal grammar of the <W> field).
bool IsDecimalNumber(const std::string& s) {
  if (s.empty()) return false;
  bool seen_dot = false, seen_digit = false;
  for (char c : s) {
    if (c == '.') {
      if (seen_dot) return false;
      seen_dot = true;
    } else if (c >= '0' && c <= '9') {
      seen_digit = true;
    } else {
      return false;
    }
  }
  return seen_digit;
}

}  // namespace

bool IsWindowedKey(const std::string& key) {
  return key.rfind(keys::kWindowedPrefix, 0) == 0;
}

WindowedKeySpec ParseWindowedKey(const std::string& key) {
  if (!IsWindowedKey(key)) {
    BadKey(key,
           "not a windowed key (expected \"windowed:<W>:<B>:<inner-key>\")");
  }
  const std::size_t w_begin = std::string(keys::kWindowedPrefix).size();
  const std::size_t w_end = key.find(':', w_begin);
  if (w_end == std::string::npos) {
    BadKey(key, "missing bucket count and inner key (expected "
                "\"windowed:<W>:<B>:<inner-key>\")");
  }
  const std::size_t b_begin = w_end + 1;
  const std::size_t b_end = key.find(':', b_begin);
  if (b_end == std::string::npos) {
    BadKey(key, "missing inner key (expected "
                "\"windowed:<W>:<B>:<inner-key>\")");
  }

  const std::string w_str = key.substr(w_begin, w_end - w_begin);
  if (!IsDecimalNumber(w_str)) {
    BadKey(key, "window span \"" + w_str + "\" is not a positive number");
  }
  double window = 0.0;
  try {
    window = std::stod(w_str);
  } catch (const std::out_of_range&) {
    window = 0.0;  // over-/underflowing spans fail the positivity check
  }
  if (!(window > 0.0) || !std::isfinite(window)) {
    BadKey(key, "window span must be positive and finite, got \"" + w_str +
                    "\"");
  }

  const std::string b_str = key.substr(b_begin, b_end - b_begin);
  if (b_str.empty() ||
      b_str.find_first_not_of("0123456789") != std::string::npos) {
    BadKey(key, "bucket count \"" + b_str + "\" is not a positive integer");
  }
  long buckets = 0;
  try {
    buckets = std::stol(b_str);
  } catch (const std::out_of_range&) {
    buckets = kMaxBuckets + 1L;
  }
  if (buckets < 1 || buckets > kMaxBuckets) {
    BadKey(key, "bucket count must be in [1, " + std::to_string(kMaxBuckets) +
                    "], got \"" + b_str + "\"");
  }

  WindowedKeySpec spec;
  spec.window = window;
  spec.buckets = static_cast<int>(buckets);
  spec.inner = key.substr(b_end + 1);
  if (spec.inner.empty()) {
    BadKey(key,
           "empty inner key (expected \"windowed:<W>:<B>:<inner-key>\")");
  }
  return spec;
}

// ---------------------------------------------------------------------------

WindowedSummarizer::WindowedSummarizer(std::string key,
                                       const WindowedKeySpec& spec,
                                       const SummarizerConfig& cfg)
    : Summarizer(cfg), key_(std::move(key)), inner_key_(spec.inner) {
  if (cfg.s < 1.0) {
    BadKey(key_, "summary size s must be >= 1 for the windowed wrapper "
                 "(the merged window budget is integral)");
  }
  window_ = spec.window;
  span_ = window_ / static_cast<double>(spec.buckets);
  if (!(span_ > 0.0)) {
    BadKey(key_, "window span / bucket count underflows to a zero-length "
                 "bucket");
  }
  bucket_seed_base_ = Mix64(cfg.seed ^ kBucketSeedTag);
  merge_seed_base_ = Mix64(cfg.seed ^ kMergeSeedTag);
  effective_s_ = cfg.s;
  free_builder_s_ = cfg.s;
  ring_.resize(static_cast<std::size_t>(spec.buckets));
  // Cold registry lookups; the hot paths only touch the cached pointers.
  seal_ns_ = telemetry::GetHistogram("sas.window.seal_ns");
  bucket_items_ = telemetry::GetHistogram("sas.window.bucket_items");
  merge_fanin_ = telemetry::GetHistogram("sas.window.merge_fanin");
  query_ns_ = telemetry::GetHistogram("sas.window.query_ns");
  expired_buckets_ = telemetry::GetCounter("sas.window.expired_buckets");
  cache_hits_ = telemetry::GetCounter("sas.window.cache_hits");
  cache_misses_ = telemetry::GetCounter("sas.window.cache_misses");

  // Probe the inner method eagerly: unknown keys, invalid configs, and
  // non-mergeable methods must throw at MakeSummarizer time, not at the
  // first bucket seal.
  auto probe = AcquireInner(/*epoch=*/0);
  if (!probe->Mergeable()) {
    BadKey(key_, "inner method \"" + inner_key_ +
                     "\" is not mergeable (its summary is not a "
                     "partition-tolerant VarOpt sample)");
  }
  // Probe the Reset capability too (a no-op on the fresh builder): a
  // recyclable probe seeds the free list, a non-recyclable one — e.g. a
  // sharded inner with its worker pool — is destroyed right away rather
  // than cached until the first bucket seal.
  inner_recyclable_ =
      probe->Reset(ForkSeed(bucket_seed_base_, /*stream=*/0));
  ReleaseInner(std::move(probe));
}

void WindowedSummarizer::RequireLive(const char* what) const {
  if (finalized_) {
    throw std::logic_error(std::string("windowed summarizer: ") + what +
                           " after Finalize (builders are spent once "
                           "finalized)");
  }
  if (poisoned_) {
    throw std::runtime_error(
        std::string("windowed summarizer: ") + what +
        " on a poisoned builder (a bucket seal or window merge failed "
        "mid-update, so the ring may be inconsistent; Reset(seed) "
        "recovers)");
  }
}

std::int64_t WindowedSummarizer::EpochOf(double ts) const {
  const double q = std::floor(ts / span_);
  // Clamp epochs outside the int64 range (finite but astronomically large
  // timestamps relative to the span): the cast below would otherwise be
  // undefined behavior. Clamped times all share an extreme epoch, which
  // degrades ordering only beyond +-2^63 buckets; the min clamp stays one
  // above kNoEpoch so a clamped epoch can still occupy a ring slot.
  constexpr double kEpochLimit = 9.2e18;  // safely below INT64_MAX (~9.22e18)
  if (q >= kEpochLimit) return static_cast<std::int64_t>(kEpochLimit);
  if (q <= -kEpochLimit) return -static_cast<std::int64_t>(kEpochLimit);
  return static_cast<std::int64_t>(q);
}

int WindowedSummarizer::live_buckets() const {
  int live = cur_items_.empty() ? 0 : 1;
  for (const Slot& slot : ring_) {
    if (slot.epoch != kNoEpoch && slot.epoch > cur_epoch_ - buckets()) {
      ++live;
    }
  }
  return live;
}

std::unique_ptr<Summarizer> WindowedSummarizer::AcquireInner(
    std::int64_t epoch) {
  const std::uint64_t seed =
      ForkSeed(bucket_seed_base_, static_cast<std::uint64_t>(epoch));
  if (free_builder_s_ != effective_s_) {
    // A budget degradation changed the bucket sample size; cached builders
    // are pinned to the old s (Reset reseeds but cannot resize), so the
    // free list is rebuilt at the new size.
    free_builders_.clear();
    free_builder_s_ = effective_s_;
  }
  if (!free_builders_.empty()) {
    auto builder = std::move(free_builders_.back());
    free_builders_.pop_back();
    if (builder->Reset(seed)) {
      ++recycled_builders_;
      return builder;
    }
    // Unreachable while the capability probe below holds, but a custom
    // method whose Reset support is state-dependent just falls through to
    // a fresh construction.
    inner_recyclable_ = false;
    free_builders_.clear();
  }
  SummarizerConfig inner_cfg = cfg_;
  inner_cfg.seed = seed;
  inner_cfg.s = effective_s_;
  // The wrapper already budgets the whole ring; the inner build must not
  // degrade again on its own.
  inner_cfg.max_bytes = 0;
  // Items reaching a bucket builder were already admitted (and counted into
  // telemetry) at this wrapper's ingest boundary; a telemetry-on inner
  // builder would mirror every item into sas.ingest.* a second time.
  inner_cfg.telemetry = false;
  return MakeSummarizer(inner_key_, inner_cfg);
}

void WindowedSummarizer::ReleaseInner(std::unique_ptr<Summarizer> spent) {
  if (inner_recyclable_ && free_builders_.size() < kMaxFreeBuilders) {
    free_builders_.push_back(std::move(spent));
  }
}

void WindowedSummarizer::MaybeDegrade() {
  if (cfg_.max_bytes == 0) return;
  std::size_t live_sealed = 0;
  for (const Slot& slot : ring_) {
    if (slot.epoch != kNoEpoch) ++live_sealed;
  }
  // The ring retains one expected-size-s sample per live sealed bucket
  // plus the one about to be built.
  const auto estimate = [&](double s) {
    return (live_sealed + 1) * static_cast<std::size_t>(s) *
           kBytesPerSampleEntry;
  };
  const double before = effective_s_;
  while (estimate(effective_s_) > cfg_.max_bytes && effective_s_ >= 2.0) {
    effective_s_ = effective_s_ / 2.0;
    CountDegradation();
  }
  if (effective_s_ != before) {
    std::fprintf(stderr,
                 "sas: %s: max_bytes=%zu: degraded bucket s %g -> %g "
                 "(%zu live buckets)\n",
                 key_.c_str(), cfg_.max_bytes, before, effective_s_,
                 live_sealed + 1);
  }
}

Sample WindowedSummarizer::BuildBucketSample(
    std::int64_t epoch, std::span<const WeightedKey> items) {
  MaybeDegrade();
  auto builder = AcquireInner(epoch);
  builder->AddBatch(items);
  auto summary = builder->Finalize();
  auto* sample = dynamic_cast<SampleSummary*>(summary.get());
  if (sample == nullptr) {
    // Mergeable() promised a sample-backed summary; a custom method that
    // lies about the capability is a programming error.
    throw std::logic_error("windowed wrapper: inner summary \"" +
                           summary->Name() + "\" is not sample-backed");
  }
  Sample out = sample->TakeSample();
  ReleaseInner(std::move(builder));
  return out;
}

void WindowedSummarizer::SealCurrentBucket(std::int64_t next_epoch) {
  if (cur_items_.empty()) return;
  if (cur_epoch_ <= next_epoch - buckets()) {
    // The bucket would be born expired (the clock jumped past the whole
    // window); skip the build and just recycle the buffer.
    cur_items_.clear();
    return;
  }
  Slot& slot = ring_[static_cast<std::size_t>(
      ((cur_epoch_ % buckets()) + buckets()) % buckets())];
  try {
    FaultPoint(cfg_.faults.get(), fault_sites::kWindowBucketSeal,
               cur_epoch_);
    const bool telemetry_on = TelemetryOn();
    if (telemetry_on) bucket_items_->Observe(cur_items_.size());
    telemetry::Span seal_span("window.seal", seal_ns_, telemetry_on);
    slot.epoch = cur_epoch_;
    slot.sample = BuildBucketSample(cur_epoch_, cur_items_);
    // sas-lint: allow(catch-all): a failed seal leaves the slot and buffer
    // half-updated; mark the ring poisoned before the error propagates so
    // later calls fail fast instead of merging an inconsistent window.
  } catch (...) {
    poisoned_ = true;
    throw;
  }
  cur_items_.clear();  // keeps capacity: the next bucket reuses it
}

void WindowedSummarizer::RetireExpired(std::int64_t current_epoch) {
  std::uint64_t expired = 0;
  for (Slot& slot : ring_) {
    if (slot.epoch != kNoEpoch && slot.epoch <= current_epoch - buckets()) {
      slot.epoch = kNoEpoch;
      slot.sample = Sample();  // frees the retired bucket's entries
      ++expired;
    }
  }
  if (expired > 0 && TelemetryOn()) expired_buckets_->Inc(expired);
}

void WindowedSummarizer::Advance(double now) {
  RequireLive("Advance");
  if (!std::isfinite(now)) {
    throw std::invalid_argument("windowed summarizer: Advance to a "
                                "non-finite time");
  }
  if (now <= now_) return;  // the clock is monotone
  now_ = now;
  const std::int64_t epoch = EpochOf(now);
  if (epoch == cur_epoch_) return;
  SealCurrentBucket(epoch);
  RetireExpired(epoch);
  cur_epoch_ = epoch;
  InvalidateCache();
  // Publish-on-ring-advance (the serving tier installs this hook): the ring
  // is consistent at this point, so a hook failure — including a merge
  // fault below — propagates without poisoning only when the merge itself
  // stayed healthy (MergedWindow poisons on its own faults, as for any
  // query). No hook, no merge: untimed and unserved windows keep their
  // lazy merge-on-query behavior (and merges_performed() counts).
  if (publish_hook_) publish_hook_(MergedWindow());
}

void WindowedSummarizer::Add(const WeightedKey& item) {
  RequireLive("Add");
  if (!AdmitWeight(item.weight)) return;
  cur_items_.push_back(item);
  InvalidateCache();
}

void WindowedSummarizer::AddBatch(std::span<const WeightedKey> items) {
  RequireLive("AddBatch");
  if (items.empty()) return;
  if (AllFinite(items)) {
    CountAccepted(items.size());
    cur_items_.insert(cur_items_.end(), items.begin(), items.end());
  } else {
    for (const WeightedKey& it : items) {
      if (AdmitWeight(it.weight)) cur_items_.push_back(it);
    }
  }
  InvalidateCache();
}

void WindowedSummarizer::AddTimed(double ts, const WeightedKey& item) {
  RequireLive("AddTimed");
  if (!std::isfinite(ts)) {
    if (cfg_.ingest_policy == IngestPolicy::kQuarantine) {
      // A record without a real position on the time axis cannot be
      // bucketed; quarantine it like a non-finite coordinate.
      CountRejectedCoord();
      return;
    }
    throw std::invalid_argument("windowed summarizer: AddTimed with a "
                                "non-finite timestamp");
  }
  if (ts > now_) Advance(ts);
  if (ts < now_) {
    // Late arrival: the stream is not reordered. Items whose epoch has
    // already left the window are dropped; the rest join the current
    // bucket (expiring up to one bucket span later than their timestamp
    // alone would suggest).
    if (EpochOf(ts) <= cur_epoch_ - buckets()) {
      ++dropped_items_;
      return;
    }
    ++late_items_;
  }
  Add(item);
}

const Sample& WindowedSummarizer::MergedWindow() {
  const bool telemetry_on = TelemetryOn();
  if (cache_valid_) {
    if (telemetry_on) cache_hits_->Inc();
    return cached_window_;
  }
  if (telemetry_on) cache_misses_->Inc();
  try {
    FaultPoint(cfg_.faults.get(), fault_sites::kWindowQueryMerge,
               cur_epoch_);
    merge_parts_.clear();
    // Oldest to newest, so the part order (and with it the merge) is a
    // deterministic function of the ring state.
    for (int back = buckets() - 1; back >= 1; --back) {
      const std::int64_t epoch = cur_epoch_ - back;
      const Slot& slot = ring_[static_cast<std::size_t>(
          ((epoch % buckets()) + buckets()) % buckets())];
      if (slot.epoch == epoch) merge_parts_.push_back(&slot.sample);
    }
    Sample partial;
    if (!cur_items_.empty()) {
      partial = BuildBucketSample(cur_epoch_, cur_items_);
      merge_parts_.push_back(&partial);
    }
    // The merge seed is a deterministic function of (config seed, epoch,
    // items in the current bucket), so replaying a timestamped input
    // reproduces every queried sample bit-identically. The target size is
    // effective_s_, which tracks cfg.s until the max_bytes budget steps it
    // down.
    if (telemetry_on) merge_fanin_->Observe(merge_parts_.size());
    Rng merge_rng(ForkSeed(
        merge_seed_base_,
        Mix64(static_cast<std::uint64_t>(cur_epoch_)) ^ cur_items_.size()));
    cached_window_ =
        MergeSampleParts(merge_parts_.data(), merge_parts_.size(),
                         static_cast<std::size_t>(effective_s_), &merge_rng,
                         &merge_scratch_);
    // sas-lint: allow(catch-all): a failed merge can leave the shared
    // merge scratch and cache mid-update; mark the ring poisoned before
    // the error propagates so later queries fail fast.
  } catch (...) {
    poisoned_ = true;
    throw;
  }
  ++merges_;
  cache_valid_ = true;
  return cached_window_;
}

const Sample& WindowedSummarizer::QueryAt(double now) {
  RequireLive("QueryAt");
  telemetry::Span query_span("window.query", query_ns_, TelemetryOn());
  Advance(now);
  return MergedWindow();
}

std::unique_ptr<RangeSummary> WindowedSummarizer::Finalize() {
  RequireLive("Finalize");
  MergedWindow();
  finalized_ = true;
  return std::make_unique<SampleSummary>(key_, std::move(cached_window_));
}

bool WindowedSummarizer::Reset(std::uint64_t seed) {
  for (Slot& slot : ring_) {
    slot.epoch = kNoEpoch;
    slot.sample = Sample();
  }
  cur_items_.clear();
  now_ = 0.0;
  cur_epoch_ = 0;
  cached_window_ = Sample();
  cache_valid_ = false;
  finalized_ = false;
  poisoned_ = false;
  merges_ = 0;
  late_items_ = 0;
  dropped_items_ = 0;
  recycled_builders_ = 0;
  stats_ = IngestStats{};
  effective_s_ = cfg_.s;
  cfg_.seed = seed;
  bucket_seed_base_ = Mix64(seed ^ kBucketSeedTag);
  merge_seed_base_ = Mix64(seed ^ kMergeSeedTag);
  // Free-list builders survive the reset: AcquireInner reseeds them per
  // bucket anyway, and a stale effective_s_ is caught by the
  // free_builder_s_ check there.
  return true;
}

std::unique_ptr<Summarizer> MakeWindowedSummarizer(
    const std::string& key, const SummarizerConfig& cfg) {
  const WindowedKeySpec spec = ParseWindowedKey(key);
  return std::make_unique<WindowedSummarizer>(key, spec, cfg);
}

}  // namespace sas
