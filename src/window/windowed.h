// Time-windowed streaming behind the registry: the composed key
// "windowed:<W>:<B>:<inner-key>" maintains a sliding window of the last W
// time units as a ring of B time buckets, each summarized by an
// <inner-key> summarizer built through the registry. Ingest is timestamped;
// a query merges the live buckets' VarOpt samples (core/merge.h) into one
// sample of expected size cfg.s covering the window:
//
//   auto builder = MakeSummarizer("windowed:3600:60:obliv", cfg);
//   auto* win = builder->AsWindowed();
//   for (const auto& [ts, item] : trace) win->AddTimed(ts, item);
//   const Sample& last_hour = win->QueryAt(now);     // merged live buckets
//
// Bucketing: time is split into epochs of span W/B; epoch e covers
// [e*span, (e+1)*span). The ring holds the current epoch (an item buffer
// still accepting ingest) plus the most recent B-1 sealed epochs (each a
// finished VarOpt sample of expected size s). An epoch expires — its slot
// is retired and the memory recycled — as soon as its *start* is W old,
// i.e. expiry snaps to bucket boundaries from below: an item exactly W old
// is always outside the window, and items as young as W - W/B may already
// be out, so the effective coverage lies between W - W/B and W. More
// buckets track the trailing edge more tightly (less in-window data
// expired early) at the cost of more samples to merge and more rebuilds.
//
// Bucket rebuilds: the current bucket buffers raw items; it is built into a
// sample when it seals (time advances past its epoch) and, on demand, when
// a query arrives mid-epoch. Spent inner builders are recycled through the
// Summarizer::Reset capability (falling back to a fresh MakeSummarizer for
// methods that do not support it), and the merge reuses one MergeScratch,
// so steady-state window maintenance allocates only the output samples.
//
// Determinism: the bucket for epoch e is seeded ForkSeed(seed', e) and the
// merge RNG is derived from (seed', epoch, items in the current bucket), so
// a fixed (seed, W, B, timestamped input) reproduces every sample
// bit-identically — including across builder recycling.
//
// Untimed use: plain Add/AddBatch ingest at the current clock (initially
// time 0), so a windowed key behaves like its inner method wrapped in one
// bucket when no caller advances time. This is what makes the key safe to
// hand to generic call sites (the eval harness, the sharded wrapper —
// "sharded:<N>:windowed:..." and "windowed:<W>:<B>:sharded:<N>:..." both
// compose).

#ifndef SAS_WINDOW_WINDOWED_H_
#define SAS_WINDOW_WINDOWED_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "api/summarizer.h"
#include "api/summary.h"
#include "core/merge.h"
#include "core/random.h"
#include "core/sample.h"

namespace sas {

namespace telemetry {
class Counter;
class Histogram;
}  // namespace telemetry

/// Parsed form of a composed "windowed:<W>:<B>:<inner-key>" key.
struct WindowedKeySpec {
  double window = 0.0;  // W: window span in time units
  int buckets = 0;      // B: ring size
  std::string inner;
};

/// True when `key` starts with the windowed prefix (it may still be
/// malformed; ParseWindowedKey reports why).
bool IsWindowedKey(const std::string& key);

/// Parses "windowed:<W>:<B>:<inner-key>". W is a positive decimal number
/// (time units are the caller's; "60", "2.5"); B is an integer in
/// [1, 4096]. Throws std::invalid_argument with a specific reason for
/// malformed keys. Does not check that the inner key is registered —
/// MakeSummarizer does.
WindowedKeySpec ParseWindowedKey(const std::string& key);

/// Factory used by MakeSummarizer for windowed keys: parses the key,
/// validates the inner method eagerly (unknown/invalid/non-mergeable inner
/// keys throw std::invalid_argument).
std::unique_ptr<Summarizer> MakeWindowedSummarizer(const std::string& key,
                                                   const SummarizerConfig& cfg);

/// The wrapper itself. Construct through MakeSummarizer; exposed for tests
/// and for the timestamped surface (reach it via Summarizer::AsWindowed).
class WindowedSummarizer : public Summarizer {
 public:
  /// `key` is the composed key reported by the finalized summary's Name().
  WindowedSummarizer(std::string key, const WindowedKeySpec& spec,
                     const SummarizerConfig& cfg);

  // --- Generic builder surface (untimed: ingests at the current clock) ---

  void Add(const WeightedKey& item) override;
  void AddBatch(std::span<const WeightedKey> items) override;

  /// Merges the live buckets into the window summary and spends the
  /// builder, like every Summarizer.
  std::unique_ptr<RangeSummary> Finalize() override;

  /// The merged output is a plain VarOpt sample, so windowed summarizers
  /// can sit under the sharded wrapper (and under another merge).
  bool Mergeable() const override { return true; }

  /// Full recovery, including from the poisoned and finalized states:
  /// empties the ring and the current bucket, rewinds the clock to 0,
  /// clears every counter, and re-derives the bucket/merge seed streams
  /// from `seed`. A reset builder is bit-identical to a freshly
  /// constructed one with cfg.seed = seed. Always recyclable (the ring
  /// state is plain buffers; inner builders are re-acquired per bucket).
  bool Reset(std::uint64_t seed) override;

  WindowedSummarizer* AsWindowed() override { return this; }

  // --- Timestamped surface ---

  /// Moves the clock forward to `now` (the clock is monotone: a `now` in
  /// the past is a no-op). Crossing an epoch boundary seals the current
  /// bucket into its sample and retires every bucket whose span has fully
  /// left the window, recycling its builder and buffers. Throws
  /// std::invalid_argument for non-finite times.
  void Advance(double now);

  /// Advance(ts) + Add. Late items (ts earlier than the clock) are not
  /// reordered: if ts's bucket is still live they join the *current*
  /// bucket (they will expire up to W/B late; late_items() counts them),
  /// and items whose bucket has left the window — age above W - W/B at
  /// bucket granularity, which includes everything exactly W old — are
  /// dropped (dropped_items()).
  void AddTimed(double ts, const WeightedKey& item);

  /// The merged VarOpt sample over the live window at `now` (advances the
  /// clock first). Repeated queries reuse a cached merged sample: the merge
  /// re-runs only after the ring advances past an epoch boundary or new
  /// items arrive (merges_performed() observes this). The reference is
  /// valid until the next non-const call.
  const Sample& QueryAt(double now);

  /// Installs a publish hook invoked with the merged window sample every
  /// time the ring advances past an epoch boundary (the serving tier —
  /// serve/servable.h — republishes through this; the window layer itself
  /// has no serve dependency). The hook runs on the ingest thread after the
  /// ring is consistent; its exceptions propagate to the Advance caller
  /// without poisoning the ring. Installing a hook makes every epoch
  /// crossing merge eagerly (merges_performed() counts those merges too).
  /// Pass nullptr to uninstall. Not called for the degenerate "no advance"
  /// untimed use.
  void SetPublishHook(std::function<void(const Sample&)> hook) {
    publish_hook_ = std::move(hook);
  }

  // --- Introspection (tests, benches, monitoring) ---

  double now() const { return now_; }
  double window() const { return window_; }
  int buckets() const { return static_cast<int>(ring_.size()); }
  double bucket_span() const { return span_; }
  /// Epoch index of time `ts` under this wrapper's bucketing.
  std::int64_t EpochOf(double ts) const;
  /// Live sealed buckets plus the current bucket when it holds items.
  int live_buckets() const;
  std::size_t merges_performed() const { return merges_; }
  std::size_t late_items() const { return late_items_; }
  std::size_t dropped_items() const { return dropped_items_; }
  /// Builders reused via the Reset capability instead of reconstruction.
  std::size_t recycled_builders() const { return recycled_builders_; }
  /// True once a bucket seal or window merge failed mid-update: the ring
  /// may be inconsistent, so every call but Reset throws. Reset(seed)
  /// recovers.
  bool poisoned() const { return poisoned_; }
  /// The sample size buckets are currently built at: cfg.s until the
  /// max_bytes budget forces stepwise halvings (IngestStats::degradations
  /// counts them).
  double effective_s() const { return effective_s_; }

 private:
  struct Slot {
    std::int64_t epoch = kNoEpoch;  // kNoEpoch marks an empty slot
    Sample sample;
  };
  static constexpr std::int64_t kNoEpoch = INT64_MIN;

  void RequireLive(const char* what) const;
  /// A fresh inner builder for the bucket of `epoch` (recycled when the
  /// inner method supports Reset).
  std::unique_ptr<Summarizer> AcquireInner(std::int64_t epoch);
  void ReleaseInner(std::unique_ptr<Summarizer> spent);
  /// Builds the inner summary over `items` under the bucket seed of
  /// `epoch` and returns its sample.
  Sample BuildBucketSample(std::int64_t epoch,
                           std::span<const WeightedKey> items);
  /// Seals the current bucket's buffer into its ring slot (no-op when the
  /// buffer is empty or the bucket would already be expired at
  /// `next_epoch`).
  void SealCurrentBucket(std::int64_t next_epoch);
  /// Retires every slot whose epoch has left the window of `epoch`.
  void RetireExpired(std::int64_t current_epoch);
  /// Applies the max_bytes budget before a bucket build: halves
  /// effective_s_ until the estimated retained bytes of the live ring fit
  /// (floor 1), counting each step in IngestStats::degradations.
  void MaybeDegrade();
  void InvalidateCache() { cache_valid_ = false; }
  const Sample& MergedWindow();

  std::string key_;
  std::string inner_key_;
  double window_ = 0.0;
  double span_ = 0.0;
  std::uint64_t bucket_seed_base_ = 0;
  std::uint64_t merge_seed_base_ = 0;

  double now_ = 0.0;
  std::int64_t cur_epoch_ = 0;
  std::vector<WeightedKey> cur_items_;   // current bucket's raw buffer
  std::vector<Slot> ring_;               // sealed buckets, slot = epoch % B

  // Inner-builder free list (spent builders awaiting Reset) and merge
  // scratch: the "memory recycled" of bucket retirement. The free list is
  // only kept while the inner method supports the Reset capability
  // (probed at construction) — spent non-recyclable builders are destroyed
  // immediately instead of cached.
  bool inner_recyclable_ = false;
  std::vector<std::unique_ptr<Summarizer>> free_builders_;
  /// The s the free-list builders were constructed with: a budget
  /// degradation changes effective_s_, and builders cannot resize through
  /// Reset, so a mismatch invalidates the whole free list.
  double free_builder_s_ = 0.0;
  MergeScratch merge_scratch_;
  std::vector<const Sample*> merge_parts_;

  std::function<void(const Sample&)> publish_hook_;
  Sample cached_window_;
  bool cache_valid_ = false;
  bool finalized_ = false;
  bool poisoned_ = false;
  double effective_s_ = 0.0;

  std::size_t merges_ = 0;
  std::size_t late_items_ = 0;
  std::size_t dropped_items_ = 0;
  std::size_t recycled_builders_ = 0;

  // Telemetry instruments (core/telemetry.h), resolved once at
  // construction; hot-path updates are guarded by TelemetryOn().
  telemetry::Histogram* seal_ns_ = nullptr;
  telemetry::Histogram* bucket_items_ = nullptr;
  telemetry::Histogram* merge_fanin_ = nullptr;
  telemetry::Histogram* query_ns_ = nullptr;
  telemetry::Counter* expired_buckets_ = nullptr;
  telemetry::Counter* cache_hits_ = nullptr;
  telemetry::Counter* cache_misses_ = nullptr;
};

}  // namespace sas

#endif  // SAS_WINDOW_WINDOWED_H_
