#include "api/registry.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "api/sharded.h"
#include "serve/servable.h"
#include "window/windowed.h"

namespace sas {

namespace internal {
// Defined in api/builders.cc; the factories of every built-in method.
std::vector<std::pair<std::string, SummarizerFactory>> BuiltinSummarizers();
}  // namespace internal

namespace {

std::map<std::string, SummarizerFactory>& Registry() {
  static std::map<std::string, SummarizerFactory> registry;
  return registry;
}

std::mutex& RegistryMutex() {
  static std::mutex mu;
  return mu;
}

void EnsureBuiltins() {
  static std::once_flag once;
  std::call_once(once, [] {
    std::lock_guard<std::mutex> lock(RegistryMutex());
    for (auto& [key, factory] : internal::BuiltinSummarizers()) {
      Registry().emplace(key, std::move(factory));
    }
  });
}

/// Checks the method-independent part of the config.
void ValidateCommon(const std::string& key, const SummarizerConfig& cfg) {
  if (!(cfg.s > 0.0) || !std::isfinite(cfg.s)) {
    throw std::invalid_argument("MakeSummarizer(\"" + key +
                                "\"): summary size s must be positive and "
                                "finite");
  }
  if (!(cfg.sprime_factor >= 1.0) || !std::isfinite(cfg.sprime_factor)) {
    throw std::invalid_argument("MakeSummarizer(\"" + key +
                                "\"): sprime_factor must be >= 1");
  }
}

}  // namespace

bool RegisterSummarizer(const std::string& key, SummarizerFactory factory) {
  EnsureBuiltins();
  std::lock_guard<std::mutex> lock(RegistryMutex());
  return Registry().emplace(key, std::move(factory)).second;
}

std::unique_ptr<Summarizer> MakeSummarizer(const std::string& key,
                                           const SummarizerConfig& cfg) {
  EnsureBuiltins();
  // Composed keys: "sharded:<N>:<inner-key>" wraps any mergeable registered
  // method in the shard-parallel ingest backend (api/sharded.h);
  // "windowed:<W>:<B>:<inner-key>" wraps it in the sliding-window ring
  // (window/windowed.h). The wrappers nest through this same entry point,
  // so they compose with each other in either order.
  if (IsShardedKey(key)) {
    ValidateCommon(key, cfg);
    return MakeShardedSummarizer(key, cfg);
  }
  if (IsWindowedKey(key)) {
    ValidateCommon(key, cfg);
    return MakeWindowedSummarizer(key, cfg);
  }
  // "serve:<inner-key>" wraps any sample-backed method in the lock-free
  // serving tier (serve/servable.h): outermost-only (not mergeable), so it
  // wraps the other composed keys but never nests under them.
  if (IsServeKey(key)) {
    ValidateCommon(key, cfg);
    return MakeServableSummarizer(key, cfg);
  }
  SummarizerFactory factory;
  {
    std::lock_guard<std::mutex> lock(RegistryMutex());
    const auto it = Registry().find(key);
    if (it == Registry().end()) {
      throw std::invalid_argument("MakeSummarizer: unknown method key \"" +
                                  key + "\"");
    }
    factory = it->second;
  }
  ValidateCommon(key, cfg);
  return factory(cfg);
}

std::unique_ptr<RangeSummary> BuildSummary(const std::string& key,
                                           const SummarizerConfig& cfg,
                                           std::span<const WeightedKey> items) {
  auto builder = MakeSummarizer(key, cfg);
  builder->AddBatch(items);
  return builder->Finalize();
}

std::vector<std::string> RegisteredSummarizers() {
  EnsureBuiltins();
  std::lock_guard<std::mutex> lock(RegistryMutex());
  std::vector<std::string> out;
  out.reserve(Registry().size());
  for (const auto& [key, factory] : Registry()) out.push_back(key);
  return out;
}

bool IsRegisteredSummarizer(const std::string& key) {
  EnsureBuiltins();
  if (IsShardedKey(key)) {
    // A composed key is "registered" when it parses and its inner key is.
    // As with any registered key, MakeSummarizer can still reject it for
    // config-dependent reasons — a non-mergeable inner method here, just
    // like "hierarchy" without cfg.structure.hierarchy set (mergeability
    // is an instance capability, only known once a builder exists).
    try {
      return IsRegisteredSummarizer(ParseShardedKey(key).inner);
    } catch (const std::invalid_argument&) {
      return false;
    }
  }
  if (IsWindowedKey(key)) {
    try {
      return IsRegisteredSummarizer(ParseWindowedKey(key).inner);
    } catch (const std::invalid_argument&) {
      return false;
    }
  }
  if (IsServeKey(key)) {
    try {
      return IsRegisteredSummarizer(ParseServeKey(key));
    } catch (const std::invalid_argument&) {
      return false;
    }
  }
  std::lock_guard<std::mutex> lock(RegistryMutex());
  return Registry().contains(key);
}

}  // namespace sas
