// Built-in Summarizer implementations: adapters that put every method in
// the library — the in-memory structure-aware samplers, the streaming
// two-pass constructions, and the Section 6 baselines — behind the uniform
// Add/AddBatch/Finalize surface of api/summarizer.h. The registry
// (api/registry.cc) pulls its built-in factory table from here.
//
// Determinism contract: a builder seeded with cfg.seed produces exactly the
// sample a direct call of the underlying function produces with
// Rng rng(cfg.seed) — the registry equivalence tests pin this.

#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "api/adapters.h"
#include "api/keys.h"
#include "api/registry.h"
#include "api/summarizer.h"
#include "aware/disjoint_summarizer.h"
#include "aware/hierarchy_summarizer.h"
#include "aware/kd_nd.h"
#include "aware/order_summarizer.h"
#include "aware/product_summarizer.h"
#include "aware/summarize_scratch.h"
#include "aware/two_pass.h"
#include "core/random.h"
#include "sampling/stream_varopt.h"
#include "structure/hierarchy.h"

namespace sas {
namespace {

[[noreturn]] void InvalidConfig(const char* key, const std::string& why) {
  throw std::invalid_argument(std::string("MakeSummarizer(\"") + key +
                              "\"): " + why);
}

/// Base for methods that need the whole input before building.
class BufferingSummarizer : public Summarizer {
 public:
  using Summarizer::Summarizer;

  void Add(const WeightedKey& item) override {
    if (!AdmitWeight(item.weight)) return;
    items_.push_back(item);
  }
  void AddBatch(std::span<const WeightedKey> items) override {
    if (AllFinite(items)) {
      CountAccepted(items.size());
      items_.insert(items_.end(), items.begin(), items.end());
      return;
    }
    for (const WeightedKey& it : items) {
      if (AdmitWeight(it.weight)) items_.push_back(it);
    }
  }

  /// Buffering methods recycle trivially: drop the buffer (keeping its
  /// capacity) and reseed. All of their randomness is drawn at Finalize
  /// from Rng(cfg_.seed), so a recycled builder is indistinguishable from
  /// a fresh one.
  bool Reset(std::uint64_t seed) override {
    items_.clear();
    stats_ = IngestStats{};
    cfg_.seed = seed;
    return true;
  }

 protected:
  std::vector<WeightedKey> items_;
};

/// Converts an index-based SummarizeOutput into the SampleSummary the
/// builder returns. The probs vector is moved into the summary (the summary
/// owns its storage); the scratch and the rest of `out` keep their capacity
/// for the next Reset cycle.
std::unique_ptr<SampleSummary> TakeSampleSummary(
    const char* key, const std::vector<WeightedKey>& items,
    SummarizeOutput* out) {
  std::vector<WeightedKey> entries;
  entries.reserve(out->chosen.size());
  for (std::uint32_t i : out->chosen) entries.push_back(items[i]);
  return std::make_unique<SampleSummary>(
      key, Sample(out->tau, std::move(entries)), std::move(out->probs));
}

// ---------------------------------------------------------------------------
// In-memory structure-aware samplers (Sections 3 and 4).

class OrderBuilder : public BufferingSummarizer {
 public:
  using BufferingSummarizer::BufferingSummarizer;
  bool Mergeable() const override { return true; }
  std::unique_ptr<RangeSummary> Finalize() override {
    Rng rng(cfg_.seed);
    OrderSummarizeInto(items_, cfg_.s, &rng, &scratch_, &out_);
    return TakeSampleSummary(keys::kOrder, items_, &out_);
  }

 private:
  SummarizeScratch scratch_;
  SummarizeOutput out_;
};

class HierarchyBuilder : public BufferingSummarizer {
 public:
  using BufferingSummarizer::BufferingSummarizer;
  std::unique_ptr<RangeSummary> Finalize() override {
    const Hierarchy* h = cfg_.structure.hierarchy;
    if (h->num_keys() != items_.size()) {
      InvalidConfig(keys::kHierarchy,
                    "hierarchy has " + std::to_string(h->num_keys()) +
                        " keys but " + std::to_string(items_.size()) +
                        " items were added");
    }
    Rng rng(cfg_.seed);
    HierarchySummarizeInto(items_, *h, cfg_.s, &rng, &scratch_, &out_);
    return TakeSampleSummary(keys::kHierarchy, items_, &out_);
  }

 private:
  SummarizeScratch scratch_;
  SummarizeOutput out_;
};

class DisjointBuilder : public BufferingSummarizer {
 public:
  using BufferingSummarizer::BufferingSummarizer;
  std::unique_ptr<RangeSummary> Finalize() override {
    if (cfg_.structure.range_of.size() != items_.size()) {
      InvalidConfig(keys::kDisjoint,
                    "range_of must have exactly one entry per added item");
    }
    Rng rng(cfg_.seed);
    DisjointSummarizeInto(items_, cfg_.structure.range_of,
                          cfg_.structure.num_ranges, cfg_.s, &rng, &scratch_,
                          &out_);
    return TakeSampleSummary(keys::kDisjoint, items_, &out_);
  }

 private:
  SummarizeScratch scratch_;
  SummarizeOutput out_;
};

class ProductBuilder : public BufferingSummarizer {
 public:
  using BufferingSummarizer::BufferingSummarizer;
  bool Mergeable() const override { return true; }
  std::unique_ptr<RangeSummary> Finalize() override {
    Rng rng(cfg_.seed);
    ProductSummarizeInto(items_, cfg_.s, &rng, &scratch_, &out_);
    return TakeSampleSummary(keys::kProduct, items_, &out_);
  }

 private:
  SummarizeScratch scratch_;
  SummarizeOutput out_;
};

/// d-dimensional product sampler. Points enter via AddCoords (any d) or via
/// Add (d <= 2, coordinates taken from the item's Point2D).
class NdBuilder : public Summarizer {
 public:
  explicit NdBuilder(SummarizerConfig cfg) : Summarizer(std::move(cfg)) {}

  void Add(const WeightedKey& item) override {
    const int dims = cfg_.structure.dims;
    if (dims > 2) {
      throw std::logic_error(
          "nd summarizer: Add carries only 2 coordinates; use AddCoords "
          "for dims > 2");
    }
    if (used_coords_) {
      throw std::logic_error("nd summarizer: do not mix Add and AddCoords");
    }
    if (!AdmitWeight(item.weight)) return;
    coords_.push_back(item.pt.x);
    if (dims == 2) coords_.push_back(item.pt.y);
    weights_.push_back(item.weight);
    originals_.push_back(item);
  }

  void AddBatch(std::span<const WeightedKey> items) override {
    coords_.reserve(coords_.size() +
                    items.size() * (cfg_.structure.dims == 2 ? 2 : 1));
    weights_.reserve(weights_.size() + items.size());
    originals_.reserve(originals_.size() + items.size());
    for (const WeightedKey& it : items) Add(it);
  }

  /// Mergeable via Add and AddCoordsKeyed, whose ids are caller-stable
  /// across a partition. Plain AddCoords synthesizes ids from the builder's
  /// own insertion index, which a hash partition would collide across
  /// shards — the sharded wrapper therefore assigns global ids itself and
  /// routes through AddCoordsKeyed.
  bool Mergeable() const override { return true; }

  bool Reset(std::uint64_t seed) override {
    coords_.clear();
    weights_.clear();
    coord_ids_.clear();
    originals_.clear();
    used_coords_ = false;
    stats_ = IngestStats{};
    cfg_.seed = seed;
    return true;
  }

  void AddCoords(const Coord* coords, int dims, Weight w) override {
    if (dims != cfg_.structure.dims) {
      InvalidConfig(keys::kNd, "AddCoords dims does not match structure");
    }
    if (!originals_.empty()) {
      throw std::logic_error("nd summarizer: do not mix Add and AddCoords");
    }
    if (!coord_ids_.empty()) {
      throw std::logic_error(
          "nd summarizer: do not mix AddCoords and AddCoordsKeyed");
    }
    if (!AdmitWeight(w)) return;
    used_coords_ = true;
    coords_.insert(coords_.end(), coords, coords + dims);
    weights_.push_back(w);
  }

  void AddCoordsKeyed(KeyId id, const Coord* coords, int dims,
                      Weight w) override {
    if (dims != cfg_.structure.dims) {
      InvalidConfig(keys::kNd, "AddCoords dims does not match structure");
    }
    if (!originals_.empty()) {
      throw std::logic_error("nd summarizer: do not mix Add and AddCoords");
    }
    if (coord_ids_.size() != weights_.size()) {
      throw std::logic_error(
          "nd summarizer: do not mix AddCoords and AddCoordsKeyed");
    }
    if (!AdmitWeight(w)) return;
    used_coords_ = true;
    coord_ids_.push_back(id);
    coords_.insert(coords_.end(), coords, coords + dims);
    weights_.push_back(w);
  }

  std::unique_ptr<RangeSummary> Finalize() override {
    const int dims = cfg_.structure.dims;
    Rng rng(cfg_.seed);
    ProductSummarizeNdInto(coords_, dims, weights_, cfg_.s, &rng, &scratch_,
                           &out_);
    std::vector<WeightedKey> entries;
    entries.reserve(out_.chosen.size());
    for (std::size_t i : out_.chosen) {
      if (i < originals_.size()) {
        entries.push_back(originals_[i]);
      } else {
        // Synthesized key for AddCoords input: id = caller-provided (keyed
        // path) or insertion index, point from the first two axes (queries
        // beyond 2-D go through sample()).
        WeightedKey k;
        k.id = coord_ids_.empty() ? static_cast<KeyId>(i) : coord_ids_[i];
        k.weight = weights_[i];
        k.pt.x = coords_[i * static_cast<std::size_t>(dims)];
        k.pt.y = dims > 1 ? coords_[i * static_cast<std::size_t>(dims) + 1]
                          : 0;
        entries.push_back(k);
      }
    }
    return std::make_unique<SampleSummary>(
        keys::kNd, Sample(out_.tau, std::move(entries)),
        std::move(out_.probs));
  }

 private:
  std::vector<Coord> coords_;
  std::vector<Weight> weights_;
  std::vector<KeyId> coord_ids_;        // empty unless fed via AddCoordsKeyed
  std::vector<WeightedKey> originals_;  // empty when fed via AddCoords
  bool used_coords_ = false;
  SummarizeScratch scratch_;
  ResultNd out_;
};

// ---------------------------------------------------------------------------
// Streaming constructions (Section 5). The product two-pass builder drives
// the TwoPassProductSampler pass structure directly: pass 1 runs during
// Add, pass 2 replays the (buffered) stream at Finalize.

class TwoPassProductBuilder : public Summarizer {
 public:
  explicit TwoPassProductBuilder(SummarizerConfig cfg)
      : Summarizer(std::move(cfg)),
        rng_(cfg_.seed),
        sampler_(cfg_.s, TwoPassConfig{cfg_.sprime_factor}, rng_.Split()) {}

  void Add(const WeightedKey& item) override {
    if (!AdmitWeight(item.weight)) return;
    sampler_.Pass1(item);
    buffer_.push_back(item);
  }

  void AddBatch(std::span<const WeightedKey> items) override {
    if (AllFinite(items)) {
      CountAccepted(items.size());
      for (const WeightedKey& it : items) sampler_.Pass1(it);
      buffer_.insert(buffer_.end(), items.begin(), items.end());
      return;
    }
    for (const WeightedKey& it : items) Add(it);
  }

  bool Mergeable() const override { return true; }

  std::unique_ptr<RangeSummary> Finalize() override {
    sampler_.BeginPass2();
    for (const WeightedKey& it : buffer_) sampler_.Pass2(it);
    return std::make_unique<SampleSummary>(keys::kAware,
                                           sampler_.Finalize());
  }

 private:
  Rng rng_;
  TwoPassProductSampler sampler_;
  std::vector<WeightedKey> buffer_;
};

class TwoPassOrderBuilder : public BufferingSummarizer {
 public:
  using BufferingSummarizer::BufferingSummarizer;
  bool Mergeable() const override { return true; }
  std::unique_ptr<RangeSummary> Finalize() override {
    Rng rng(cfg_.seed);
    Sample sample = TwoPassOrderSample(
        items_, cfg_.s, TwoPassConfig{cfg_.sprime_factor}, &rng);
    return std::make_unique<SampleSummary>(keys::kOrderTwoPass,
                                           std::move(sample));
  }
};

class TwoPassHierarchyBuilder : public BufferingSummarizer {
 public:
  using BufferingSummarizer::BufferingSummarizer;
  std::unique_ptr<RangeSummary> Finalize() override {
    const Hierarchy* h = cfg_.structure.hierarchy;
    if (h->num_keys() != items_.size()) {
      InvalidConfig(keys::kHierarchyTwoPass,
                    "hierarchy key count does not match items added");
    }
    const HierarchyTwoPassVariant variant =
        cfg_.hierarchy_partition == HierarchyPartition::kAncestors
            ? HierarchyTwoPassVariant::kAncestors
            : HierarchyTwoPassVariant::kLinearize;
    Rng rng(cfg_.seed);
    Sample sample = TwoPassHierarchySample(
        items_, *h, cfg_.s, TwoPassConfig{cfg_.sprime_factor}, variant,
        &rng);
    return std::make_unique<SampleSummary>(keys::kHierarchyTwoPass,
                                           std::move(sample));
  }
};

class TwoPassDisjointBuilder : public BufferingSummarizer {
 public:
  using BufferingSummarizer::BufferingSummarizer;
  std::unique_ptr<RangeSummary> Finalize() override {
    if (cfg_.structure.range_of.size() != items_.size()) {
      InvalidConfig(keys::kDisjointTwoPass,
                    "range_of must have exactly one entry per added item");
    }
    Rng rng(cfg_.seed);
    Sample sample = TwoPassDisjointSample(
        items_, cfg_.structure.range_of, cfg_.structure.num_ranges, cfg_.s,
        TwoPassConfig{cfg_.sprime_factor}, &rng);
    return std::make_unique<SampleSummary>(keys::kDisjointTwoPass,
                                           std::move(sample));
  }
};

// ---------------------------------------------------------------------------
// Baselines (Section 6).

class OblivBuilder : public Summarizer {
 public:
  explicit OblivBuilder(SummarizerConfig cfg)
      : Summarizer(std::move(cfg)),
        sketch_(static_cast<std::size_t>(cfg_.s), Rng(cfg_.seed)) {}

  void Add(const WeightedKey& item) override {
    if (!AdmitWeight(item.weight)) return;
    sketch_.Push(item);
  }

  /// Batched ingest fast path: one virtual dispatch per batch, then the
  /// sketch's non-virtual per-item loop. Falls back to per-record
  /// validation only when the batch pre-scan finds an invalid weight.
  void AddBatch(std::span<const WeightedKey> items) override {
    if (AllFinite(items)) {
      CountAccepted(items.size());
      sketch_.PushBatch(items);
      return;
    }
    for (const WeightedKey& it : items) Add(it);
  }

  bool Mergeable() const override { return true; }

  bool Reset(std::uint64_t seed) override {
    sketch_.Reset(Rng(seed));
    stats_ = IngestStats{};
    cfg_.seed = seed;
    return true;
  }

  std::unique_ptr<RangeSummary> Finalize() override {
    return std::make_unique<SampleSummary>(keys::kObliv,
                                           sketch_.TakeSample());
  }

 private:
  StreamVarOpt sketch_;
};

class WaveletBuilder : public BufferingSummarizer {
 public:
  using BufferingSummarizer::BufferingSummarizer;
  std::unique_ptr<RangeSummary> Finalize() override {
    Wavelet2D wavelet(items_, static_cast<std::size_t>(cfg_.s), cfg_.bits_x,
                      cfg_.bits_y);
    return std::make_unique<WaveletSummary>(std::move(wavelet));
  }
};

class QDigestBuilder : public BufferingSummarizer {
 public:
  using BufferingSummarizer::BufferingSummarizer;
  std::unique_ptr<RangeSummary> Finalize() override {
    QDigest2D digest(items_, cfg_.s, cfg_.bits_x, cfg_.bits_y);
    return std::make_unique<QDigest2DSummary>(std::move(digest));
  }
};

class SketchBuilder : public Summarizer {
 public:
  explicit SketchBuilder(SummarizerConfig cfg)
      : Summarizer(std::move(cfg)),
        sketch_(cfg_.bits_x, cfg_.bits_y, static_cast<std::size_t>(cfg_.s),
                cfg_.sketch_rows, Rng(cfg_.seed).Next()) {}

  void Add(const WeightedKey& item) override {
    if (!AdmitWeight(item.weight)) return;
    sketch_.Update(item.pt, item.weight);
  }

  void AddBatch(std::span<const WeightedKey> items) override {
    if (AllFinite(items)) {
      CountAccepted(items.size());
      for (const WeightedKey& it : items) sketch_.Update(it.pt, it.weight);
      return;
    }
    for (const WeightedKey& it : items) Add(it);
  }

  std::unique_ptr<RangeSummary> Finalize() override {
    return std::make_unique<DyadicSketchSummary>(std::move(sketch_));
  }

 private:
  DyadicSketch sketch_;
};

class ExactBuilder : public BufferingSummarizer {
 public:
  using BufferingSummarizer::BufferingSummarizer;
  std::unique_ptr<RangeSummary> Finalize() override {
    return std::make_unique<ExactSummary>(std::move(items_));
  }
};

// ---------------------------------------------------------------------------
// Config validation helpers (run at MakeSummarizer time, before building).

void RequireHierarchy(const char* key, const SummarizerConfig& cfg) {
  if (cfg.structure.hierarchy == nullptr) {
    InvalidConfig(key, "structure.hierarchy must be set");
  }
}

void RequireDisjoint(const char* key, const SummarizerConfig& cfg) {
  if (cfg.structure.num_ranges <= 0 || cfg.structure.range_of.empty()) {
    InvalidConfig(key, "structure.range_of / num_ranges must describe the "
                       "disjoint ranges");
  }
}

void RequireDims(const char* key, const SummarizerConfig& cfg) {
  if (cfg.structure.dims < 1 || cfg.structure.dims > 16) {
    InvalidConfig(key, "structure.dims must be in [1, 16]");
  }
}

/// Methods whose budget is an integral count (reservoir slots, retained
/// coefficients, counters): fractional s below 1 truncates to a zero
/// budget, which the underlying classes do not support.
void RequireWholeBudget(const char* key, const SummarizerConfig& cfg) {
  if (cfg.s < 1.0) {
    InvalidConfig(key, "summary size s must be >= 1 for this method");
  }
}

void RequireBits(const char* key, const SummarizerConfig& cfg) {
  if (cfg.bits_x < 1 || cfg.bits_x > 63 || cfg.bits_y < 1 ||
      cfg.bits_y > 63) {
    InvalidConfig(key, "bits_x / bits_y must be in [1, 63]");
  }
}

template <typename Builder>
SummarizerFactory Plain() {
  return [](const SummarizerConfig& cfg) -> std::unique_ptr<Summarizer> {
    return std::make_unique<Builder>(cfg);
  };
}

}  // namespace

namespace internal {

std::vector<std::pair<std::string, SummarizerFactory>> BuiltinSummarizers() {
  std::vector<std::pair<std::string, SummarizerFactory>> builtins;
  builtins.emplace_back(keys::kOrder, Plain<OrderBuilder>());
  builtins.emplace_back(keys::kProduct, Plain<ProductBuilder>());
  builtins.emplace_back(
      keys::kHierarchy, [](const SummarizerConfig& cfg) {
        RequireHierarchy(keys::kHierarchy, cfg);
        return std::unique_ptr<Summarizer>(new HierarchyBuilder(cfg));
      });
  builtins.emplace_back(
      keys::kDisjoint, [](const SummarizerConfig& cfg) {
        RequireDisjoint(keys::kDisjoint, cfg);
        return std::unique_ptr<Summarizer>(new DisjointBuilder(cfg));
      });
  builtins.emplace_back(keys::kNd, [](const SummarizerConfig& cfg) {
    RequireDims(keys::kNd, cfg);
    return std::unique_ptr<Summarizer>(new NdBuilder(cfg));
  });
  builtins.emplace_back(keys::kAware, Plain<TwoPassProductBuilder>());
  builtins.emplace_back(keys::kOrderTwoPass, Plain<TwoPassOrderBuilder>());
  builtins.emplace_back(
      keys::kHierarchyTwoPass, [](const SummarizerConfig& cfg) {
        RequireHierarchy(keys::kHierarchyTwoPass, cfg);
        return std::unique_ptr<Summarizer>(new TwoPassHierarchyBuilder(cfg));
      });
  builtins.emplace_back(
      keys::kDisjointTwoPass, [](const SummarizerConfig& cfg) {
        RequireDisjoint(keys::kDisjointTwoPass, cfg);
        return std::unique_ptr<Summarizer>(new TwoPassDisjointBuilder(cfg));
      });
  builtins.emplace_back(keys::kObliv, [](const SummarizerConfig& cfg) {
    RequireWholeBudget(keys::kObliv, cfg);
    return std::unique_ptr<Summarizer>(new OblivBuilder(cfg));
  });
  builtins.emplace_back(keys::kWavelet, [](const SummarizerConfig& cfg) {
    RequireBits(keys::kWavelet, cfg);
    RequireWholeBudget(keys::kWavelet, cfg);
    return std::unique_ptr<Summarizer>(new WaveletBuilder(cfg));
  });
  builtins.emplace_back(keys::kQDigest, [](const SummarizerConfig& cfg) {
    RequireBits(keys::kQDigest, cfg);
    return std::unique_ptr<Summarizer>(new QDigestBuilder(cfg));
  });
  builtins.emplace_back(keys::kSketch, [](const SummarizerConfig& cfg) {
    RequireBits(keys::kSketch, cfg);
    RequireWholeBudget(keys::kSketch, cfg);
    return std::unique_ptr<Summarizer>(new SketchBuilder(cfg));
  });
  builtins.emplace_back(keys::kExact, Plain<ExactBuilder>());
  return builtins;
}

}  // namespace internal

}  // namespace sas
