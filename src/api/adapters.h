// RangeSummary adapters over the baseline summaries (Section 6): wavelet,
// q-digest, dyadic Count-Sketch, and the brute-force exact "summary".
// These used to live in eval/summary_iface.h with hardcoded name strings;
// naming is now routed through the registry's canonical keys (api/keys.h)
// so eval tables and bench CSVs agree on labels.

#ifndef SAS_API_ADAPTERS_H_
#define SAS_API_ADAPTERS_H_

#include <string>
#include <utility>
#include <vector>

#include "api/keys.h"
#include "api/summary.h"
#include "core/types.h"
#include "summaries/dyadic_sketch.h"
#include "summaries/exact_summary.h"
#include "summaries/qdigest2d.h"
#include "summaries/wavelet2d.h"

namespace sas {

class WaveletSummary : public RangeSummary {
 public:
  explicit WaveletSummary(Wavelet2D wavelet) : wavelet_(std::move(wavelet)) {}

  Weight EstimateQuery(const MultiRangeQuery& q) const override {
    return wavelet_.EstimateQuery(q);
  }
  std::size_t SizeInElements() const override { return wavelet_.size(); }
  std::string Name() const override { return keys::kWavelet; }

  const Wavelet2D& wavelet() const { return wavelet_; }

 private:
  Wavelet2D wavelet_;
};

class QDigest2DSummary : public RangeSummary {
 public:
  explicit QDigest2DSummary(QDigest2D digest) : digest_(std::move(digest)) {}

  Weight EstimateQuery(const MultiRangeQuery& q) const override {
    return digest_.EstimateQuery(q);
  }
  std::size_t SizeInElements() const override { return digest_.size(); }
  std::string Name() const override { return keys::kQDigest; }

  const QDigest2D& digest() const { return digest_; }

 private:
  QDigest2D digest_;
};

class DyadicSketchSummary : public RangeSummary {
 public:
  explicit DyadicSketchSummary(DyadicSketch sketch)
      : sketch_(std::move(sketch)) {}

  Weight EstimateQuery(const MultiRangeQuery& q) const override {
    return sketch_.EstimateQuery(q);
  }
  std::size_t SizeInElements() const override { return sketch_.size(); }
  std::string Name() const override { return keys::kSketch; }
  SummaryInfo Describe() const override {
    SummaryInfo info = RangeSummary::Describe();
    info.family = "sketch";
    return info;
  }

 private:
  DyadicSketch sketch_;
};

/// Brute force over the retained raw data: ground truth for equivalence
/// tests and a degenerate point of the size/accuracy tradeoff.
class ExactSummary : public RangeSummary {
 public:
  explicit ExactSummary(std::vector<WeightedKey> items)
      : items_(std::move(items)) {}

  Weight EstimateQuery(const MultiRangeQuery& q) const override {
    return ExactQuerySum(items_, q);
  }
  std::size_t SizeInElements() const override { return items_.size(); }
  std::string Name() const override { return keys::kExact; }
  SummaryInfo Describe() const override {
    SummaryInfo info = RangeSummary::Describe();
    info.family = "exact";
    return info;
  }

 private:
  std::vector<WeightedKey> items_;
};

}  // namespace sas

#endif  // SAS_API_ADAPTERS_H_
