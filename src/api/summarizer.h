// Summarizer: the uniform builder behind the public API. Every summary in
// the library — the in-memory structure-aware samplers (src/aware/), the
// streaming two-pass constructions, and the baseline summaries — is built
// by feeding weighted keys into a Summarizer obtained from the registry
// (api/registry.h) and calling Finalize():
//
//   SummarizerConfig cfg;
//   cfg.s = 500;
//   auto builder = MakeSummarizer(keys::kProduct, cfg);
//   for (const WeightedKey& k : data) builder->Add(k);
//   std::unique_ptr<RangeSummary> summary = builder->Finalize();
//   Weight est = summary->EstimateBox(box);
//
// Because every method hides behind the same Add/Finalize surface, scale-out
// wrappers (sharded or async backends) can compose in front of any method
// without touching call sites.
//
// Thread-safety: a Summarizer is single-caller — drive each builder from
// one thread at a time (no internal synchronization on the ingest path).
// Distinct builders are fully independent and may run on distinct threads
// concurrently; the "sharded:" wrapper spawns its worker threads behind
// this same single-caller surface. SummarizerConfig and StructureSpec are
// plain value types, freely copyable across threads (the hierarchy pointer
// in StructureSpec is borrowed — the caller keeps it alive and immutable
// for the builder's lifetime).

#ifndef SAS_API_SUMMARIZER_H_
#define SAS_API_SUMMARIZER_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "api/summary.h"
#include "core/types.h"

namespace sas {

class FaultInjector;
class Hierarchy;
class ServableSummarizer;
class WindowedSummarizer;

namespace telemetry {
struct TelemetrySnapshot;
}  // namespace telemetry

/// What a builder does with an invalid record (non-finite or negative
/// weight, non-finite coordinate or timestamp at the parse boundary).
enum class IngestPolicy {
  /// Reject loudly: Add/AddBatch throw std::invalid_argument before any
  /// state changes. The default — corrupt input is a caller bug.
  kStrict,
  /// Quarantine quietly: drop the record, count it in IngestStats, keep
  /// ingesting. For pipelines fed by untrusted traces that must not stall.
  kQuarantine,
};

/// Ingest-boundary counters surfaced by Summarizer::Describe(). Wrappers
/// (sharded/windowed) report their own producer-side counters, not their
/// inner builders' (records a wrapper accepts are never re-validated
/// downstream).
struct IngestStats {
  /// Records admitted into the build.
  std::uint64_t accepted = 0;
  /// Records quarantined for a non-finite or negative weight.
  std::uint64_t rejected_weight = 0;
  /// Records quarantined for a non-finite coordinate/timestamp (only
  /// reachable through boundaries that ingest floating-point positions,
  /// e.g. the windowed wrapper's timestamps; API coords are integral).
  std::uint64_t rejected_coord = 0;
  /// Memory-budget degradation events (see SummarizerConfig::max_bytes):
  /// number of times an engine stepped its effective sample size down.
  std::uint64_t degradations = 0;
};

/// Describes the structure on the key domain that a structure-aware method
/// should preserve (Section 2 of the paper). Baseline methods ignore it.
struct StructureSpec {
  /// Which structure family the method should preserve; selects which of
  /// the fields below are read.
  enum class Kind { kOrder, kHierarchy, kDisjoint, kProduct, kNd };

  Kind kind = Kind::kProduct;
  /// For kHierarchy: the key hierarchy (not owned; must outlive the
  /// summarizer). Keys must be added in key-id order, item k at hierarchy
  /// leaf leaf_of_key(k).
  const Hierarchy* hierarchy = nullptr;
  /// For kDisjoint: range_of[i] is the range (in [0, num_ranges)) of the
  /// i-th item *added*, so it must have exactly one entry per item.
  /// Add items in key-id order if you want id-keyed semantics.
  std::vector<int> range_of;
  int num_ranges = 0;
  /// For kNd: number of axes (points fed via AddCoords, or via Add when
  /// dims <= 2).
  int dims = 2;

  /// 1-D total order over the key ids.
  static StructureSpec Order() { return {Kind::kOrder, nullptr, {}, 0, 1}; }
  /// Key hierarchy; `h` is borrowed and must outlive the summarizer.
  static StructureSpec OverHierarchy(const Hierarchy* h) {
    return {Kind::kHierarchy, h, {}, 0, 1};
  }
  /// Disjoint flat ranges: range_of[i] is the range of the i-th item added.
  static StructureSpec Disjoint(std::vector<int> range_of, int num_ranges) {
    return {Kind::kDisjoint, nullptr, std::move(range_of), num_ranges, 1};
  }
  /// 2-D product domain (the default).
  static StructureSpec Product() { return {}; }
  /// d-dimensional product domain, dims in [1, 16] (validated by the
  /// registry at MakeSummarizer time).
  static StructureSpec Nd(int dims) {
    return {Kind::kNd, nullptr, {}, 0, dims};
  }
};

/// Which Section 5 partition the two-pass hierarchy construction uses.
enum class HierarchyPartition {
  kLinearize,  // totally order keys by DFS rank; Delta < 2 w.h.p.
  kAncestors,  // cells = lowest guide-selected ancestors; Delta < 1 w.h.p.
};

/// One configuration struct for every method: target size, seed, structure
/// descriptor, and per-method options. Unused fields are ignored by methods
/// they do not apply to.
struct SummarizerConfig {
  /// Target summary size s: expected sample size for the samplers, retained
  /// coefficients for the wavelet, compression parameter for the q-digest,
  /// counter budget for the sketch.
  double s = 100.0;

  /// Seed for every random draw of the build; identical (config, input)
  /// pairs produce identical summaries.
  std::uint64_t seed = 0x5EEDF00DULL;

  StructureSpec structure;

  /// Two-pass constructions: oversampling factor s' = factor * s for the
  /// pass-1 guide sample (the paper uses 5).
  double sprime_factor = 5.0;

  /// Two-pass hierarchy construction: which partition to use.
  HierarchyPartition hierarchy_partition = HierarchyPartition::kLinearize;

  /// Domain bits per axis, required by the wavelet / q-digest / sketch
  /// baselines (domain size = 2^bits).
  int bits_x = 32;
  int bits_y = 32;

  /// Count-Sketch rows per dyadic level pair (sketch baseline).
  std::size_t sketch_rows = 3;

  /// What to do with invalid records at the ingest boundary (see
  /// IngestPolicy). Composed wrappers validate at their outer surface and
  /// hand inner builders pre-validated batches.
  IngestPolicy ingest_policy = IngestPolicy::kStrict;

  /// Soft memory budget in bytes; 0 = unbounded (the default). Engines
  /// that buffer per-epoch or per-shard state (windowed buckets, sharded
  /// inners) respond to pressure against this budget by stepwise halving
  /// their effective sample size s instead of growing without bound; each
  /// step is counted in IngestStats::degradations and logged to stderr.
  /// Estimates remain unbiased — a degraded build is a valid build at a
  /// smaller s.
  std::size_t max_bytes = 0;

  /// Fault injector driving this builder's fault sites; null (the default)
  /// falls back to FaultInjector::Global(), which arms itself from the
  /// SAS_FAULTS environment variable. Tests install their own injector
  /// here for isolation; composed wrappers propagate it to inner builders.
  std::shared_ptr<FaultInjector> faults;

  /// Whether this builder participates in process telemetry
  /// (core/telemetry.h) when it is armed globally. Telemetry is off until
  /// armed via SetEnabled()/SAS_TELEMETRY regardless of this flag, so the
  /// default build pays one relaxed atomic load per instrumented site;
  /// setting this false opts a builder out even of an armed process
  /// (wrappers propagate it to inner builders like `faults`).
  bool telemetry = true;
};

/// Uniform builder: feed items with Add/AddBatch (or AddCoords for the
/// d-dimensional method), then call Finalize() exactly once. A finalized
/// summarizer is spent; build a new one for the next summary (or recycle
/// it through Reset() when the method supports that). Single-caller: one
/// thread drives a given builder at a time.
class Summarizer {
 public:
  /// Takes the validated config by value; the registry factories call this
  /// after eager validation, so cfg is well-formed for the method.
  explicit Summarizer(SummarizerConfig cfg) : cfg_(std::move(cfg)) {}
  virtual ~Summarizer() = default;

  /// Feeds one weighted key. Must not be called after Finalize().
  virtual void Add(const WeightedKey& item) = 0;

  /// Adds a contiguous batch; the default loops over Add. Overrides give
  /// the hot ingest path a single virtual dispatch per batch.
  virtual void AddBatch(std::span<const WeightedKey> items) {
    for (const WeightedKey& it : items) Add(it);
  }

  /// Adds one d-dimensional point (dims coordinates). Only the "nd" method
  /// supports general d; the default throws std::logic_error, before any
  /// state changes, so callers may probe and fall back to Add. The "nd"
  /// builder rejects a dims mismatch with std::invalid_argument and
  /// mixing Add/AddCoords on one builder with std::logic_error.
  virtual void AddCoords(const Coord* coords, int dims, Weight w);

  /// Adds one d-dimensional point under a caller-chosen key id. Methods
  /// that key their samples (the "nd" builder) store the id with the point,
  /// so ids stay stable when the stream is partitioned across builders —
  /// this is what lets the sharded wrapper route AddCoords input. The
  /// default forwards to AddCoords, dropping the id (methods that
  /// synthesize ids ignore it). Same support/mixing rules as AddCoords.
  virtual void AddCoordsKeyed(KeyId id, const Coord* coords, int dims,
                              Weight w);

  /// Builds the summary from everything added. Call exactly once; the
  /// builder is spent afterwards (unless recycled via Reset). Input-
  /// dependent config mismatches (hierarchy/range_of counts) throw
  /// std::invalid_argument from here.
  virtual std::unique_ptr<RangeSummary> Finalize() = 0;

  /// Mergeable capability: true when (a) Finalize() produces a sample-backed
  /// summary whose Sample can be combined with others via MergeSamples
  /// (core/merge.h), and (b) the method's semantics survive feeding it an
  /// arbitrary subset of the input (so a hash-partitioned shard sees a valid
  /// input). Methods with positional config (hierarchy/disjoint, whose
  /// structure descriptors index "the i-th item added") and the
  /// non-sample baselines report false; the sharded wrapper
  /// (api/sharded.h) only composes over mergeable methods.
  virtual bool Mergeable() const { return false; }

  /// Recycling capability: returns the builder to its freshly-constructed
  /// state under `seed`, retaining allocated capacity, and reports true.
  /// A recycled builder must behave exactly like a fresh builder
  /// constructed with the same config and that seed. Wrappers that rebuild
  /// repeatedly (the windowed ring retiring time buckets) recycle spent
  /// builders through this instead of reconstructing them. The default
  /// reports false ("not recyclable"); callers must then build a fresh one.
  virtual bool Reset(std::uint64_t seed) {
    (void)seed;
    return false;
  }

  /// Windowed capability: downcast to the time-windowed wrapper
  /// (window/windowed.h), or nullptr for every non-windowed method. The
  /// windowed wrapper extends the builder surface with the timestamped
  /// ingest/query calls (AddTimed / Advance / QueryAt) that generic
  /// summarizers do not have; callers that never downcast can keep using
  /// the plain Add/Finalize surface (the ring degenerates to one bucket
  /// at time 0).
  virtual WindowedSummarizer* AsWindowed() { return nullptr; }

  /// Serving capability: downcast to the lock-free serving wrapper
  /// (serve/servable.h), or nullptr for every non-serve method. The serve
  /// wrapper exposes the QueryService that concurrent reader threads share
  /// while this builder keeps ingesting and republishing; callers that
  /// never downcast use the plain Add/Finalize surface unchanged.
  virtual ServableSummarizer* AsServable() { return nullptr; }

  /// The validated config this builder was constructed with (Reset updates
  /// its seed in place).
  const SummarizerConfig& config() const { return cfg_; }

  /// Ingest-boundary counters for this builder (see IngestStats). Read
  /// from the ingest thread, or after workers have joined — reading while
  /// another thread ingests is a race by the single-caller contract.
  const IngestStats& Describe() const { return stats_; }

  /// Process-wide telemetry snapshot (core/telemetry.h) with this builder's
  /// fault injector's per-site hit counters re-exported — the metrics
  /// counterpart of Describe(). Unlike Describe(), the snapshot spans every
  /// instrumented builder in the process, not just this one.
  telemetry::TelemetrySnapshot DescribeTelemetry() const;

 protected:
  /// Validates one weight at the ingest boundary: accepts finite
  /// non-negative weights (counted in stats_.accepted) and handles the rest
  /// per cfg_.ingest_policy — kStrict throws std::invalid_argument naming
  /// the offending value; kQuarantine counts it in stats_.rejected_weight
  /// and returns false ("drop this record"). Implementations call this
  /// before any state changes so strict rejection leaves the builder
  /// untouched.
  bool AdmitWeight(Weight w);

  /// Batch fast path: true when every weight in `items` is finite and
  /// non-negative, so AddBatch overrides can skip per-record AdmitWeight
  /// calls (bulk-count into stats_.accepted) on clean input.
  static bool AllFinite(std::span<const WeightedKey> items);

  /// True when this builder feeds the armed process telemetry: one relaxed
  /// atomic load plus the config flag. The guard for every instrumented
  /// site, in the style of FaultPoint.
  bool TelemetryOn() const;

  /// IngestStats bumpers that mirror into the process telemetry counters
  /// (`sas.ingest.*`) when armed. Engines route every stats_ mutation
  /// through these so Describe() and the registry can never disagree.
  void CountAccepted(std::uint64_t n = 1);
  void CountRejectedWeight(std::uint64_t n = 1);
  void CountRejectedCoord(std::uint64_t n = 1);
  void CountDegradation(std::uint64_t n = 1);

  SummarizerConfig cfg_;
  IngestStats stats_;
};

}  // namespace sas

#endif  // SAS_API_SUMMARIZER_H_
