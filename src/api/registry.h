// String-keyed factory over every summarization method in the library.
//
// MakeSummarizer(key, cfg) returns a fresh builder for the method
// registered under `key` (canonical keys in api/keys.h; full reference in
// docs/keys.md), validating the configuration eagerly — unknown keys and
// invalid configs throw std::invalid_argument at construction. Errors only
// detectable once the input is known (e.g. an item count that does not
// match the hierarchy or range_of) throw std::invalid_argument from
// Finalize.
//
// The registry is the single place summaries are constructed: the eval
// harness, every bench driver, and the examples go through it, so new
// methods (or scale-out wrappers around existing ones) become available to
// all of them by registering one factory.
//
// Thread-safety: the registry itself is internally synchronized — all five
// functions below may be called concurrently from any thread (built-ins
// are registered once, lazily). The *builders* they return are not: a
// Summarizer must be driven by one thread at a time (see
// api/summarizer.h); wrappers like "sharded:" thread internally behind
// that single-caller surface.

#ifndef SAS_API_REGISTRY_H_
#define SAS_API_REGISTRY_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "api/keys.h"
#include "api/summarizer.h"

namespace sas {

/// Factory signature of a registered method: builds a fresh Summarizer for
/// a validated config. Factories must be safe to invoke concurrently (they
/// are called outside the registry lock and may be copied per call site).
using SummarizerFactory =
    std::function<std::unique_ptr<Summarizer>(const SummarizerConfig&)>;

/// Registers a method under `key`. Returns false (and leaves the registry
/// unchanged) if the key is already taken — built-ins cannot be clobbered.
/// Built-in methods are registered on first use of the registry.
/// Thread-safe.
bool RegisterSummarizer(const std::string& key, SummarizerFactory factory);

/// Creates a builder for the method registered under `key`.
/// Throws std::invalid_argument for an unknown key or an invalid config
/// (non-positive size, missing hierarchy, bad dimension/bits, ...).
/// Composed keys "sharded:<N>:<inner-key>" wrap any mergeable method in the
/// shard-parallel ingest backend (api/sharded.h): N worker threads, one
/// inner summarizer each, VarOpt merge at Finalize. Composed keys
/// "windowed:<W>:<B>:<inner-key>" wrap any mergeable method in the
/// time-windowed ring (window/windowed.h): B time buckets of W/B time
/// units each, timestamped ingest via Summarizer::AsWindowed, live buckets
/// VarOpt-merged at query/Finalize. The wrappers nest in either order.
/// Thread-safe; the returned builder is single-caller (api/summarizer.h).
std::unique_ptr<Summarizer> MakeSummarizer(const std::string& key,
                                           const SummarizerConfig& cfg);

/// Convenience one-shot build: MakeSummarizer + AddBatch + Finalize.
/// Thread-safe (each call uses its own builder); throws exactly as
/// MakeSummarizer/Finalize do.
std::unique_ptr<RangeSummary> BuildSummary(const std::string& key,
                                           const SummarizerConfig& cfg,
                                           std::span<const WeightedKey> items);

/// All registered keys, sorted (a snapshot; concurrent registrations may
/// land after it is taken). Composed wrapper keys are a grammar, not
/// entries, so they do not appear here. Thread-safe.
std::vector<std::string> RegisteredSummarizers();

/// True when `key` would resolve in MakeSummarizer's lookup: a registered
/// plain key, or a composed key that parses and whose innermost key is
/// registered. A registered key can still be rejected at MakeSummarizer
/// time for config-dependent reasons (missing structure descriptor,
/// non-mergeable inner method). Thread-safe.
bool IsRegisteredSummarizer(const std::string& key);

}  // namespace sas

#endif  // SAS_API_REGISTRY_H_
