// String-keyed factory over every summarization method in the library.
//
// MakeSummarizer(key, cfg) returns a fresh builder for the method
// registered under `key` (canonical keys in api/keys.h), validating the
// configuration eagerly — unknown keys and invalid configs throw
// std::invalid_argument at construction. Errors only detectable once the
// input is known (e.g. an item count that does not match the hierarchy or
// range_of) throw std::invalid_argument from Finalize.
//
// The registry is the single place summaries are constructed: the eval
// harness, every bench driver, and the examples go through it, so new
// methods (or scale-out wrappers around existing ones) become available to
// all of them by registering one factory.

#ifndef SAS_API_REGISTRY_H_
#define SAS_API_REGISTRY_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "api/keys.h"
#include "api/summarizer.h"

namespace sas {

using SummarizerFactory =
    std::function<std::unique_ptr<Summarizer>(const SummarizerConfig&)>;

/// Registers a method under `key`. Returns false (and leaves the registry
/// unchanged) if the key is already taken. Built-in methods are registered
/// on first use of the registry.
bool RegisterSummarizer(const std::string& key, SummarizerFactory factory);

/// Creates a builder for the method registered under `key`.
/// Throws std::invalid_argument for an unknown key or an invalid config
/// (non-positive size, missing hierarchy, bad dimension/bits, ...).
/// Composed keys "sharded:<N>:<inner-key>" wrap any mergeable method in the
/// shard-parallel ingest backend (api/sharded.h): N worker threads, one
/// inner summarizer each, VarOpt merge at Finalize. Composed keys
/// "windowed:<W>:<B>:<inner-key>" wrap any mergeable method in the
/// time-windowed ring (window/windowed.h): B time buckets of W/B time
/// units each, timestamped ingest via Summarizer::AsWindowed, live buckets
/// VarOpt-merged at query/Finalize. The wrappers nest in either order.
std::unique_ptr<Summarizer> MakeSummarizer(const std::string& key,
                                           const SummarizerConfig& cfg);

/// Convenience one-shot build: MakeSummarizer + AddBatch + Finalize.
std::unique_ptr<RangeSummary> BuildSummary(const std::string& key,
                                           const SummarizerConfig& cfg,
                                           std::span<const WeightedKey> items);

/// All registered keys, sorted.
std::vector<std::string> RegisteredSummarizers();

bool IsRegisteredSummarizer(const std::string& key);

}  // namespace sas

#endif  // SAS_API_REGISTRY_H_
