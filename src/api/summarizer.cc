#include "api/summarizer.h"

#include <cmath>
#include <stdexcept>
#include <string>

#include "core/telemetry.h"

namespace sas {

namespace {

// The process-wide ingest-boundary counters every builder mirrors its
// IngestStats into. Resolved once (cold registry lookup), shared across
// builders — the registry aggregates where Describe() stays per-builder.
struct IngestInstruments {
  telemetry::Counter* accepted;
  telemetry::Counter* rejected_weight;
  telemetry::Counter* rejected_coord;
  telemetry::Counter* degradations;
};

const IngestInstruments& IngestCounters() {
  static const IngestInstruments instruments = {
      telemetry::GetCounter("sas.ingest.accepted"),
      telemetry::GetCounter("sas.ingest.rejected_weight"),
      telemetry::GetCounter("sas.ingest.rejected_coord"),
      telemetry::GetCounter("sas.ingest.degradations"),
  };
  return instruments;
}

}  // namespace

bool Summarizer::TelemetryOn() const {
  return cfg_.telemetry && telemetry::Enabled();
}

void Summarizer::CountAccepted(std::uint64_t n) {
  stats_.accepted += n;
  if (TelemetryOn()) IngestCounters().accepted->Inc(n);
}

void Summarizer::CountRejectedWeight(std::uint64_t n) {
  stats_.rejected_weight += n;
  if (TelemetryOn()) IngestCounters().rejected_weight->Inc(n);
}

void Summarizer::CountRejectedCoord(std::uint64_t n) {
  stats_.rejected_coord += n;
  if (TelemetryOn()) IngestCounters().rejected_coord->Inc(n);
}

void Summarizer::CountDegradation(std::uint64_t n) {
  stats_.degradations += n;
  if (TelemetryOn()) IngestCounters().degradations->Inc(n);
}

telemetry::TelemetrySnapshot Summarizer::DescribeTelemetry() const {
  return telemetry::CaptureSnapshot(cfg_.faults.get());
}

void Summarizer::AddCoords(const Coord* /*coords*/, int /*dims*/,
                           Weight /*w*/) {
  throw std::logic_error(
      "AddCoords is only supported by the \"nd\" summarizer; use Add for "
      "2-D methods");
}

void Summarizer::AddCoordsKeyed(KeyId /*id*/, const Coord* coords, int dims,
                                Weight w) {
  AddCoords(coords, dims, w);
}

bool Summarizer::AdmitWeight(Weight w) {
  if (std::isfinite(w) && w >= 0.0) {
    CountAccepted();
    return true;
  }
  if (cfg_.ingest_policy == IngestPolicy::kStrict) {
    throw std::invalid_argument(
        "ingest rejected: weight must be finite and non-negative, got " +
        std::to_string(w));
  }
  CountRejectedWeight();
  return false;
}

bool Summarizer::AllFinite(std::span<const WeightedKey> items) {
  // Summing is branch-free per element: any NaN/Inf poisons the total, and
  // a negative weight can only drag a non-negative running minimum below
  // zero. One pass, no early exits to mispredict on clean input.
  Weight sum = 0.0;
  Weight min = 0.0;
  for (const WeightedKey& it : items) {
    sum += it.weight;
    min = it.weight < min ? it.weight : min;
  }
  return std::isfinite(sum) && min >= 0.0;
}

}  // namespace sas
