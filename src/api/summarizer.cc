#include "api/summarizer.h"

#include <stdexcept>

namespace sas {

void Summarizer::AddCoords(const Coord* /*coords*/, int /*dims*/,
                           Weight /*w*/) {
  throw std::logic_error(
      "AddCoords is only supported by the \"nd\" summarizer; use Add for "
      "2-D methods");
}

void Summarizer::AddCoordsKeyed(KeyId /*id*/, const Coord* coords, int dims,
                                Weight w) {
  AddCoords(coords, dims, w);
}

}  // namespace sas
