#include "api/summarizer.h"

#include <cmath>
#include <stdexcept>
#include <string>

namespace sas {

void Summarizer::AddCoords(const Coord* /*coords*/, int /*dims*/,
                           Weight /*w*/) {
  throw std::logic_error(
      "AddCoords is only supported by the \"nd\" summarizer; use Add for "
      "2-D methods");
}

void Summarizer::AddCoordsKeyed(KeyId /*id*/, const Coord* coords, int dims,
                                Weight w) {
  AddCoords(coords, dims, w);
}

bool Summarizer::AdmitWeight(Weight w) {
  if (std::isfinite(w) && w >= 0.0) {
    ++stats_.accepted;
    return true;
  }
  if (cfg_.ingest_policy == IngestPolicy::kStrict) {
    throw std::invalid_argument(
        "ingest rejected: weight must be finite and non-negative, got " +
        std::to_string(w));
  }
  ++stats_.rejected_weight;
  return false;
}

bool Summarizer::AllFinite(std::span<const WeightedKey> items) {
  // Summing is branch-free per element: any NaN/Inf poisons the total, and
  // a negative weight can only drag a non-negative running minimum below
  // zero. One pass, no early exits to mispredict on clean input.
  Weight sum = 0.0;
  Weight min = 0.0;
  for (const WeightedKey& it : items) {
    sum += it.weight;
    min = it.weight < min ? it.weight : min;
  }
  return std::isfinite(sum) && min >= 0.0;
}

}  // namespace sas
