#include "api/sharded.h"

#include <cstddef>
#include <cstdio>
#include <exception>
#include <stdexcept>
#include <utility>

#include "api/keys.h"
#include "api/registry.h"
#include "api/summary.h"
#include "core/fault.h"
#include "core/merge.h"
#include "core/random.h"
#include "core/telemetry.h"

namespace sas {

namespace {

constexpr int kMaxShards = 64;
/// Items accumulated on the caller thread before hand-off to a worker.
constexpr std::size_t kBatchSize = 4096;
/// Bounded queue depth per shard; a full queue back-pressures the producer.
constexpr std::size_t kMaxQueueDepth = 4;

constexpr std::uint64_t kPartitionSaltTag = 0x5A5DED5A17E1F00DULL;

/// Rough bytes one retained sample entry costs across the build (the entry
/// itself plus reservoir/prob bookkeeping). Deliberately coarse: the
/// max_bytes budget is a soft brake on sample-driven growth, not an
/// allocator audit.
constexpr std::size_t kBytesPerSampleEntry = 64;

[[noreturn]] void BadKey(const std::string& key, const std::string& why) {
  throw std::invalid_argument("MakeSummarizer(\"" + key + "\"): " + why);
}

std::string BuildShardedErrorMessage(
    const std::string& key, const std::vector<ShardFailure>& failures,
    int num_shards) {
  std::string msg = "MakeSummarizer(\"" + key + "\"): ingest failed in " +
                    std::to_string(failures.size()) + " of " +
                    std::to_string(num_shards) + " shard(s): ";
  for (std::size_t i = 0; i < failures.size(); ++i) {
    if (i > 0) msg += "; ";
    msg += "[" + failures[i].message + "]";
  }
  return msg;
}

}  // namespace

ShardedIngestError::ShardedIngestError(const std::string& key,
                                       std::vector<ShardFailure> failures,
                                       int num_shards)
    : std::runtime_error(BuildShardedErrorMessage(key, failures, num_shards)),
      failures_(std::move(failures)) {}

namespace {
std::size_t IndexWithSalt(KeyId id, std::uint64_t salt,
                          std::uint64_t num_shards) {
  return Mix64(static_cast<std::uint64_t>(id) ^ salt) % num_shards;
}
}  // namespace

std::size_t ShardIndex(KeyId id, std::uint64_t seed, int num_shards) {
  return IndexWithSalt(id, Mix64(seed ^ kPartitionSaltTag),
                       static_cast<std::uint64_t>(num_shards));
}

bool IsShardedKey(const std::string& key) {
  return key.rfind(keys::kShardedPrefix, 0) == 0;
}

ShardedKeySpec ParseShardedKey(const std::string& key) {
  if (!IsShardedKey(key)) {
    BadKey(key, "not a sharded key (expected \"sharded:<N>:<inner-key>\")");
  }
  const std::size_t count_begin = std::string(keys::kShardedPrefix).size();
  const std::size_t colon = key.find(':', count_begin);
  if (colon == std::string::npos) {
    BadKey(key, "missing inner key (expected \"sharded:<N>:<inner-key>\")");
  }
  const std::string count_str = key.substr(count_begin, colon - count_begin);
  if (count_str.empty() ||
      count_str.find_first_not_of("0123456789") != std::string::npos) {
    BadKey(key, "shard count \"" + count_str + "\" is not a positive integer");
  }
  long count = 0;
  try {
    count = std::stol(count_str);
  } catch (const std::out_of_range&) {
    count = kMaxShards + 1L;
  }
  if (count < 1 || count > kMaxShards) {
    BadKey(key, "shard count must be in [1, " + std::to_string(kMaxShards) +
                    "], got \"" + count_str + "\"");
  }
  ShardedKeySpec spec;
  spec.shards = static_cast<int>(count);
  spec.inner = key.substr(colon + 1);
  if (spec.inner.empty()) {
    BadKey(key, "empty inner key (expected \"sharded:<N>:<inner-key>\")");
  }
  return spec;
}

// ---------------------------------------------------------------------------

/// One hand-off unit: 2-D items plus keyed d-dimensional points (the two
/// ingest surfaces share the queue so per-shard arrival order is
/// preserved). Points are flat and aligned: point j occupies
/// coords[j*dims .. j*dims+dims) with id coord_ids[j] and weight
/// coord_weights[j].
struct ShardedSummarizer::Batch {
  std::vector<WeightedKey> items;
  std::vector<Coord> coords;
  std::vector<KeyId> coord_ids;
  std::vector<Weight> coord_weights;
  int dims = 0;

  std::size_t size() const { return items.size() + coord_ids.size(); }
  bool empty() const { return items.empty() && coord_ids.empty(); }
  void clear() {
    items.clear();
    coords.clear();
    coord_ids.clear();
    coord_weights.clear();
    dims = 0;
  }
};

struct ShardedSummarizer::Shard {
  int index = 0;
  std::unique_ptr<Summarizer> inner;

  // Producer side: accumulation buffer filled by the caller thread.
  Batch pending;

  // Hand-off queue (guarded by mu). `spare` recycles drained buffers back
  // to the producer so steady-state ingest allocates nothing.
  std::mutex mu;
  std::condition_variable can_push;
  std::condition_variable can_pop;
  std::deque<Batch> queue;
  std::vector<Batch> spare;
  bool closed = false;
  std::exception_ptr error;
  std::string error_what;  // shard-index-prefixed message for aggregation

  // Worker side.
  std::thread worker;
  std::unique_ptr<RangeSummary> result;

  // Telemetry instruments for this shard lane (resolved at construction;
  // updates are guarded by the builder's TelemetryOn()).
  telemetry::Gauge* queue_depth = nullptr;
  telemetry::Counter* batches = nullptr;
  telemetry::Counter* items = nullptr;
};

ShardedSummarizer::ShardedSummarizer(std::string key,
                                     const ShardedKeySpec& spec,
                                     const SummarizerConfig& cfg)
    : Summarizer(cfg), key_(std::move(key)), inner_key_(spec.inner) {
  if (cfg.s < 1.0) {
    BadKey(key_, "summary size s must be >= 1 for the sharded wrapper "
                 "(the merged sample budget is integral)");
  }
  // Memory-budget degradation (SummarizerConfig::max_bytes): each worker
  // retains a sample of expected size inner s, so N shards cost roughly
  // N * s * kBytesPerSampleEntry across the build. Step the inner s down
  // by halving until the estimate fits (floor s = 1); estimates stay
  // unbiased at the smaller s. Counted in IngestStats::degradations.
  double inner_s = cfg.s;
  if (cfg.max_bytes > 0) {
    const auto estimate = [&](double s) {
      return static_cast<std::size_t>(s) * kBytesPerSampleEntry *
             static_cast<std::size_t>(spec.shards);
    };
    while (estimate(inner_s) > cfg.max_bytes && inner_s >= 2.0) {
      inner_s = inner_s / 2.0;
      ++degrade_steps_;
    }
    if (degrade_steps_ > 0) {
      std::fprintf(stderr,
                   "sas: %s: max_bytes=%zu: degraded inner s %g -> %g "
                   "(%u halvings)\n",
                   key_.c_str(), cfg.max_bytes, cfg.s, inner_s,
                   degrade_steps_);
    }
  }
  CountDegradation(degrade_steps_);
  // Cached salt of the ShardIndex partition hash (see its doc for why the
  // partition is seed-salted).
  salt_ = Mix64(cfg.seed ^ kPartitionSaltTag);
  // Cold registry lookups; the hot paths only touch the cached pointers.
  backpressure_wait_ns_ =
      telemetry::GetHistogram("sas.shard.backpressure_wait_ns");
  merge_ns_ = telemetry::GetHistogram("sas.shard.merge_ns");
  shards_.reserve(static_cast<std::size_t>(spec.shards));
  for (int i = 0; i < spec.shards; ++i) {
    SummarizerConfig inner_cfg = cfg;
    inner_cfg.seed = ForkSeed(cfg.seed, static_cast<std::uint64_t>(i));
    inner_cfg.s = inner_s;
    auto sh = std::make_unique<Shard>();
    sh->index = i;
    const std::string lane = std::to_string(i);
    sh->queue_depth = telemetry::GetGauge("sas.shard.queue_depth." + lane);
    sh->batches = telemetry::GetCounter("sas.shard.batches." + lane);
    sh->items = telemetry::GetCounter("sas.shard.items." + lane);
    sh->inner = MakeSummarizer(spec.inner, inner_cfg);
    if (i == 0 && !sh->inner->Mergeable()) {
      BadKey(key_, "inner method \"" + spec.inner +
                       "\" is not mergeable (its summary is not a "
                       "partition-tolerant VarOpt sample)");
    }
    sh->pending.items.reserve(kBatchSize);
    shards_.push_back(std::move(sh));
  }
  SpawnWorkers();
}

ShardedSummarizer::~ShardedSummarizer() { CloseAndJoin(); }

void ShardedSummarizer::SpawnWorkers() {
  try {
    for (auto& sh : shards_) {
      sh->worker = std::thread(&ShardedSummarizer::WorkerLoop, this,
                               sh.get());
    }
    // sas-lint: allow(catch-all): thread spawn can fail with non-standard
    // exceptions; workers already running must be joined before the Shard
    // structs are destroyed, then the original error propagates.
  } catch (...) {
    // Thread creation failed partway (e.g. RLIMIT_NPROC): close and join
    // the workers already running before the Shard structs are destroyed.
    CloseAndJoin();
    throw;
  }
}

ShardedSummarizer::Shard& ShardedSummarizer::ShardOf(KeyId id) {
  return *shards_[IndexWithSalt(id, salt_, shards_.size())];
}

void ShardedSummarizer::RequireHealthy(const char* call) const {
  if (joined_) {
    throw std::logic_error(std::string("sharded summarizer: ") + call +
                           " after Finalize (builders are spent once "
                           "finalized)");
  }
  if (poisoned()) {
    throw std::runtime_error(
        std::string("sharded summarizer: ") + call +
        " on a poisoned builder (a shard worker failed; call Finalize() "
        "for the full failure list, or Reset(seed) to recover)");
  }
}

void ShardedSummarizer::Add(const WeightedKey& item) {
  RequireHealthy("Add");
  if (!AdmitWeight(item.weight)) return;
  Shard& sh = ShardOf(item.id);
  sh.pending.items.push_back(item);
  if (sh.pending.size() >= kBatchSize) FlushPending(sh);
}

void ShardedSummarizer::AddCoords(const Coord* coords, int dims, Weight w) {
  AddCoordsKeyed(next_coord_id_++, coords, dims, w);
}

void ShardedSummarizer::AddCoordsKeyed(KeyId id, const Coord* coords,
                                       int dims, Weight w) {
  RequireHealthy("AddCoords");
  if (!AdmitWeight(w)) return;
  Shard& sh = ShardOf(id);
  // The flat coord layout needs one dims per batch; a (pathological) dims
  // change mid-stream just cuts the current batch short. The inner builder
  // is the one that validates dims against the structure.
  if (sh.pending.dims != 0 && sh.pending.dims != dims) FlushPending(sh);
  sh.pending.dims = dims;
  sh.pending.coord_ids.push_back(id);
  sh.pending.coord_weights.push_back(w);
  sh.pending.coords.insert(sh.pending.coords.end(), coords, coords + dims);
  if (sh.pending.size() >= kBatchSize) FlushPending(sh);
}

void ShardedSummarizer::FlushPending(Shard& sh) {
  if (sh.pending.empty()) return;
  Batch next;
  {
    std::lock_guard<std::mutex> lock(sh.mu);
    if (!sh.spare.empty()) {
      next = std::move(sh.spare.back());
      sh.spare.pop_back();
    }
  }
  next.items.reserve(kBatchSize);
  Enqueue(sh, std::exchange(sh.pending, std::move(next)));
}

void ShardedSummarizer::Enqueue(Shard& sh, Batch batch) {
  // shard.queue.push fires only on producer-path pushes, not on the final
  // flush inside CloseAndJoin — a throw there would escape Finalize (or
  // the destructor) after teardown already began.
  if (!joined_) {
    FaultPoint(cfg_.faults.get(), fault_sites::kShardQueuePush, sh.index);
  }
  std::unique_lock<std::mutex> lock(sh.mu);
  const auto can_proceed = [&] {
    return sh.queue.size() < kMaxQueueDepth || sh.error != nullptr ||
           sh.closed;
  };
  // Back-pressure visibility: when the producer actually blocks on a full
  // queue, the wall time spent waiting lands in the wait histogram —
  // unblocked pushes record nothing, so the metric measures stalls only.
  if (!can_proceed() && TelemetryOn()) {
    const std::uint64_t t0 = telemetry::NowNs();
    sh.can_push.wait(lock, can_proceed);
    backpressure_wait_ns_->Observe(telemetry::NowNs() - t0);
  } else {
    sh.can_push.wait(lock, can_proceed);
  }
  // A dead worker (error) or a closed queue drains nothing; drop the batch
  // rather than blocking forever — Finalize rethrows worker errors.
  if (sh.error != nullptr || sh.closed) return;
  sh.queue.push_back(std::move(batch));
  if (TelemetryOn()) {
    sh.queue_depth->Set(static_cast<std::int64_t>(sh.queue.size()));
  }
  sh.can_pop.notify_one();
}

void ShardedSummarizer::WorkerLoop(Shard* sh) {
  try {
    for (;;) {
      Batch batch;
      {
        std::unique_lock<std::mutex> lock(sh->mu);
        sh->can_pop.wait(lock,
                         [&] { return !sh->queue.empty() || sh->closed; });
        if (sh->queue.empty()) break;  // closed and fully drained
        batch = std::move(sh->queue.front());
        sh->queue.pop_front();
        if (TelemetryOn()) {
          sh->queue_depth->Set(static_cast<std::int64_t>(sh->queue.size()));
        }
        sh->can_push.notify_one();
      }
      FaultPoint(cfg_.faults.get(), fault_sites::kShardWorkerBatch,
                 sh->index);
      if (TelemetryOn()) {
        sh->batches->Inc();
        sh->items->Inc(batch.size());
      }
      if (!batch.items.empty()) sh->inner->AddBatch(batch.items);
      const std::size_t ud = static_cast<std::size_t>(batch.dims);
      for (std::size_t j = 0; j < batch.coord_ids.size(); ++j) {
        sh->inner->AddCoordsKeyed(batch.coord_ids[j],
                                  batch.coords.data() + j * ud, batch.dims,
                                  batch.coord_weights[j]);
      }
      batch.clear();
      {
        std::lock_guard<std::mutex> lock(sh->mu);
        if (sh->spare.size() < kMaxQueueDepth) {
          sh->spare.push_back(std::move(batch));
        }
      }
    }
    FaultPoint(cfg_.faults.get(), fault_sites::kShardWorkerFinalize,
               sh->index);
    sh->result = sh->inner->Finalize();
  } catch (const std::exception& e) {
    RecordWorkerError(sh, e.what());
    // sas-lint: allow(catch-all): worker threads must never let an
    // exception escape (std::terminate); non-standard exceptions are
    // recorded with a placeholder message and reported from Finalize.
  } catch (...) {
    RecordWorkerError(sh, "non-standard exception");
  }
}

void ShardedSummarizer::RecordWorkerError(Shard* sh,
                                          const std::string& what) {
  // Poison first (release pairs with the acquire in poisoned()) so a
  // producer seeing an unblocked queue also sees the failure.
  poisoned_.store(true, std::memory_order_release);
  std::lock_guard<std::mutex> lock(sh->mu);
  sh->error = std::current_exception();
  sh->error_what = "shard " + std::to_string(sh->index) + " (inner \"" +
                   inner_key_ + "\"): " + what;
  // A dead worker drains nothing more: drop queued batches and unblock a
  // producer waiting on back-pressure (Enqueue rechecks error and bails).
  sh->queue.clear();
  sh->can_push.notify_all();
}

void ShardedSummarizer::CloseAndJoin() {
  if (joined_) return;
  joined_ = true;
  for (auto& sh : shards_) FlushPending(*sh);
  for (auto& sh : shards_) {
    std::lock_guard<std::mutex> lock(sh->mu);
    sh->closed = true;
    sh->can_pop.notify_one();
  }
  for (auto& sh : shards_) {
    if (sh->worker.joinable()) sh->worker.join();
  }
}

std::unique_ptr<RangeSummary> ShardedSummarizer::Finalize() {
  // Re-entry guard: a successful Finalize moves the shard samples into the
  // merge, so a second call would silently merge moved-from (empty) shards.
  // A *failed* Finalize (poisoned builder) stays callable — its contract is
  // to report the full failure list on every call until Reset.
  if (finalized_) {
    throw std::logic_error(
        "sharded summarizer: Finalize after Finalize (the builder already "
        "produced its summary; Reset(seed) to build another)");
  }
  CloseAndJoin();
  std::vector<ShardFailure> failures;
  for (auto& sh : shards_) {
    if (sh->error != nullptr) {
      failures.push_back({sh->index, sh->error_what});
    }
  }
  if (!failures.empty()) {
    throw ShardedIngestError(key_, std::move(failures), num_shards());
  }

  std::vector<Sample> parts;
  parts.reserve(shards_.size());
  for (auto& sh : shards_) {
    auto* sample = dynamic_cast<SampleSummary*>(sh->result.get());
    if (sample == nullptr) {
      // Mergeable() promised a sample-backed summary; a custom method that
      // lies about the capability is a programming error.
      throw std::logic_error("sharded wrapper: inner summary \"" +
                             sh->result->Name() + "\" is not sample-backed");
    }
    parts.push_back(sample->TakeSample());  // we own the result: move, not copy
  }

  Rng merge_rng(ForkSeed(cfg_.seed, shards_.size()));
  telemetry::Span merge_span("shard.merge", merge_ns_, TelemetryOn());
  Sample merged =
      MergeAllSamples(parts, static_cast<std::size_t>(cfg_.s), &merge_rng);
  finalized_ = true;
  return std::make_unique<SampleSummary>(key_, std::move(merged));
}

bool ShardedSummarizer::Reset(std::uint64_t seed) {
  CloseAndJoin();
  // All-or-nothing probe: shard inners are instances of one method, so the
  // first refusal means none of them recycle — bail before touching state
  // (the builder stays spent, as after any Finalize).
  for (auto& sh : shards_) {
    if (!sh->inner->Reset(ForkSeed(seed, static_cast<std::uint64_t>(
                                             sh->index)))) {
      return false;
    }
  }
  for (auto& sh : shards_) {
    sh->pending.clear();
    sh->queue.clear();
    sh->closed = false;
    sh->error = nullptr;
    sh->error_what.clear();
    sh->result.reset();
  }
  cfg_.seed = seed;
  salt_ = Mix64(seed ^ kPartitionSaltTag);
  next_coord_id_ = 0;
  stats_ = IngestStats{};
  stats_.degradations = degrade_steps_;
  poisoned_.store(false, std::memory_order_release);
  joined_ = false;
  finalized_ = false;
  SpawnWorkers();
  return true;
}

std::unique_ptr<Summarizer> MakeShardedSummarizer(
    const std::string& key, const SummarizerConfig& cfg) {
  const ShardedKeySpec spec = ParseShardedKey(key);
  return std::make_unique<ShardedSummarizer>(key, spec, cfg);
}

}  // namespace sas
