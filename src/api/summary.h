// Public summary interface: every summary the library can build — the
// structure-aware samples, the streaming constructions, and the baseline
// deterministic summaries — is finalized into a RangeSummary. The eval
// harness, the per-figure benches, and the examples are written against
// this interface only.

#ifndef SAS_API_SUMMARY_H_
#define SAS_API_SUMMARY_H_

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "core/sample.h"
#include "core/types.h"

namespace sas {

class SampleSummary;

/// Metadata describing a finalized summary (method key, family, size, and
/// free-form parameters such as tau or the oversampling factor).
struct SummaryInfo {
  std::string method;  // canonical registry key (api/keys.h)
  std::string family;  // "sample" | "deterministic" | "sketch" | "exact"
  std::size_t size_elements = 0;
  std::vector<std::pair<std::string, std::string>> params;
};

class RangeSummary {
 public:
  virtual ~RangeSummary() = default;

  /// Estimated total weight of a multi-rectangle query.
  virtual Weight EstimateQuery(const MultiRangeQuery& q) const = 0;

  /// Convenience: estimate over a single axis-parallel box.
  Weight EstimateBox(const Box& box) const {
    MultiRangeQuery q;
    q.boxes.push_back(box);
    return EstimateQuery(q);
  }

  /// Size in "elements of the original data" (paper's space accounting).
  virtual std::size_t SizeInElements() const = 0;

  /// Canonical method key this summary was built under (api/keys.h).
  virtual std::string Name() const = 0;

  /// Structured metadata; the default reports Name()/SizeInElements() with
  /// family "deterministic". Overrides add method-specific parameters.
  virtual SummaryInfo Describe() const;

  /// Downcast to the sample-backed summary, or nullptr for deterministic
  /// summaries. Samples expose entries, IPPS probabilities, and subset
  /// queries that rectangle-only summaries cannot answer.
  virtual const SampleSummary* AsSample() const { return nullptr; }
};

/// A summary backed by a (structure-aware or oblivious) VarOpt sample,
/// optionally carrying the initial IPPS probabilities of the build items
/// (indexed like the items fed to the summarizer; used by discrepancy
/// evaluation and the Figure 1 example).
class SampleSummary : public RangeSummary {
 public:
  SampleSummary(std::string name, Sample sample)
      : name_(std::move(name)), sample_(std::move(sample)) {}
  SampleSummary(std::string name, Sample sample, std::vector<double> probs)
      : name_(std::move(name)),
        sample_(std::move(sample)),
        probs_(std::move(probs)) {}

  /// Out of line (api/summary.cc): the query latency feeds the
  /// `sas.query.estimate_ns` telemetry histogram when armed.
  Weight EstimateQuery(const MultiRangeQuery& q) const override;
  std::size_t SizeInElements() const override { return sample_.size(); }
  std::string Name() const override { return name_; }
  SummaryInfo Describe() const override;
  const SampleSummary* AsSample() const override { return this; }

  const Sample& sample() const { return sample_; }
  /// Moves the sample out (for owners consuming the summary, e.g. the
  /// sharded wrapper handing shard samples to the merge). The summary is
  /// left with an empty sample.
  Sample TakeSample() { return std::move(sample_); }
  double tau() const { return sample_.tau(); }
  /// Initial IPPS probabilities, or empty when the construction does not
  /// retain them (the streaming builders).
  const std::vector<double>& probs() const { return probs_; }

 private:
  std::string name_;
  Sample sample_;
  std::vector<double> probs_;
};

}  // namespace sas

#endif  // SAS_API_SUMMARY_H_
