#include "api/summary.h"

#include <cstdio>

namespace sas {

namespace {

std::string FormatDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

SummaryInfo RangeSummary::Describe() const {
  SummaryInfo info;
  info.method = Name();
  info.family = "deterministic";
  info.size_elements = SizeInElements();
  return info;
}

SummaryInfo SampleSummary::Describe() const {
  SummaryInfo info;
  info.method = Name();
  info.family = "sample";
  info.size_elements = SizeInElements();
  info.params.emplace_back("tau", FormatDouble(tau()));
  info.params.emplace_back("has_probs", probs_.empty() ? "false" : "true");
  return info;
}

}  // namespace sas
