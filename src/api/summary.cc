#include "api/summary.h"

#include <cstdio>

#include "core/telemetry.h"

namespace sas {

namespace {

std::string FormatDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

SummaryInfo RangeSummary::Describe() const {
  SummaryInfo info;
  info.method = Name();
  info.family = "deterministic";
  info.size_elements = SizeInElements();
  return info;
}

Weight SampleSummary::EstimateQuery(const MultiRangeQuery& q) const {
  // A finalized summary no longer carries its builder's config, so the
  // query-path guard is the process arming alone (one relaxed load).
  static telemetry::Histogram* const estimate_ns =
      telemetry::GetHistogram("sas.query.estimate_ns");
  telemetry::Span span("query.estimate", estimate_ns, telemetry::Enabled());
  return sample_.EstimateQuery(q);
}

SummaryInfo SampleSummary::Describe() const {
  SummaryInfo info;
  info.method = Name();
  info.family = "sample";
  info.size_elements = SizeInElements();
  info.params.emplace_back("tau", FormatDouble(tau()));
  info.params.emplace_back("has_probs", probs_.empty() ? "false" : "true");
  return info;
}

}  // namespace sas
