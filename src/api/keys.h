// Canonical method keys of the summarizer registry. Every summary built
// through the public API reports one of these strings from Name(), so eval
// tables, bench CSVs, and logs agree on labels. Register custom methods
// under new keys with RegisterSummarizer() (see api/registry.h); the full
// per-key reference (config requirements, mergeability, composed-key
// grammars, error behavior) is docs/keys.md.
//
// Thread-safety: every symbol here is a constexpr string constant; all are
// freely shareable across threads.

#ifndef SAS_API_KEYS_H_
#define SAS_API_KEYS_H_

namespace sas::keys {

// Structure-aware samplers (Sections 3-5 of the paper).

/// In-memory sampler preserving a 1-D total order. Mergeable.
inline constexpr const char kOrder[] = "order";
/// In-memory sampler over a key hierarchy (cfg.structure.hierarchy
/// required; positional config, so not mergeable).
inline constexpr const char kHierarchy[] = "hierarchy";
/// In-memory sampler over disjoint flat ranges (cfg.structure.range_of /
/// num_ranges required; positional config, so not mergeable).
inline constexpr const char kDisjoint[] = "disjoint";
/// In-memory sampler over a 2-D product domain (kd hierarchy). Mergeable.
inline constexpr const char kProduct[] = "product";
/// In-memory sampler over a d-dimensional product domain,
/// cfg.structure.dims in [1, 16]; points enter via AddCoords (any d) or
/// Add (d <= 2). Mergeable through the Add path only.
inline constexpr const char kNd[] = "nd";

// Streaming two-pass constructions (Section 5). "aware" is the two-pass
// product sampler — the configuration the paper's evaluation calls Aware.

/// Two-pass streaming product sampler (the paper's Aware). Mergeable.
inline constexpr const char kAware[] = "aware";
/// Two-pass order construction. Mergeable.
inline constexpr const char kOrderTwoPass[] = "order-2p";
/// Two-pass hierarchy construction (cfg.hierarchy_partition selects the
/// Section 5 partition variant). Not mergeable (positional config).
inline constexpr const char kHierarchyTwoPass[] = "hierarchy-2p";
/// Two-pass disjoint-ranges construction. Not mergeable (positional
/// config).
inline constexpr const char kDisjointTwoPass[] = "disjoint-2p";

// Baselines of the Section 6 evaluation.

/// One-pass streaming VarOpt, structure-oblivious. Mergeable; also
/// recyclable via Summarizer::Reset.
inline constexpr const char kObliv[] = "obliv";
/// 2-D Haar wavelet keeping the top-s coefficients (cfg.bits_x/bits_y
/// required). Deterministic; not mergeable.
inline constexpr const char kWavelet[] = "wavelet";
/// 2-D q-digest (cfg.bits_x/bits_y required). Deterministic; not
/// mergeable.
inline constexpr const char kQDigest[] = "qdigest";
/// Dyadic Count-Sketch (cfg.bits_x/bits_y, sketch_rows). Not mergeable.
inline constexpr const char kSketch[] = "sketch";
/// Brute force over all retained data — testing/debug reference.
inline constexpr const char kExact[] = "exact";

/// Composed-key prefix of the shard-parallel ingest wrapper: the key
/// "sharded:<N>:<inner-key>" (N in [1, 64]) hash-partitions the stream
/// across N worker threads each feeding one <inner-key> summarizer, and
/// VarOpt-merges the shard samples at Finalize. Parsed by MakeSummarizer
/// (api/registry.cc); the inner method must be Mergeable
/// (api/summarizer.h). Nests with itself and with "windowed:".
inline constexpr const char kShardedPrefix[] = "sharded:";

/// Composed-key prefix of the time-windowed streaming wrapper: the key
/// "windowed:<W>:<B>:<inner-key>" (W a positive decimal, B in [1, 4096])
/// maintains a ring of B time buckets, each an <inner-key> summarizer over
/// one span of W/B time units, and merges the live buckets' samples into a
/// summary of the last W time units (timestamped surface via
/// Summarizer::AsWindowed). Parsed by MakeSummarizer (api/registry.cc);
/// the inner method must be Mergeable. Composes with "sharded:" in either
/// order.
inline constexpr const char kWindowedPrefix[] = "windowed:";

/// Composed-key prefix of the lock-free serving wrapper: the key
/// "serve:<inner-key>" wraps any sample-backed method in a QueryService
/// (src/serve/query_service.h) — Finalize (and, for a windowed inner,
/// every ring advance) publishes the sample as an immutable accelerated
/// snapshot that any number of reader threads query concurrently without
/// locks. Parsed by MakeSummarizer (api/registry.cc); reach the service via
/// Summarizer::AsServable(). Outermost-only: the wrapper is not mergeable,
/// so it cannot sit under "sharded:"/"windowed:".
inline constexpr const char kServePrefix[] = "serve:";

}  // namespace sas::keys

#endif  // SAS_API_KEYS_H_
