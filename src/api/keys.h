// Canonical method keys of the summarizer registry. Every summary built
// through the public API reports one of these strings from Name(), so eval
// tables, bench CSVs, and logs agree on labels. Register custom methods
// under new keys with RegisterSummarizer() (see api/registry.h).

#ifndef SAS_API_KEYS_H_
#define SAS_API_KEYS_H_

namespace sas::keys {

// Structure-aware samplers (Sections 3-5 of the paper).
inline constexpr const char kOrder[] = "order";          // in-memory, 1-D order
inline constexpr const char kHierarchy[] = "hierarchy";  // in-memory, tree
inline constexpr const char kDisjoint[] = "disjoint";    // in-memory, flat ranges
inline constexpr const char kProduct[] = "product";      // in-memory, 2-D kd
inline constexpr const char kNd[] = "nd";                // in-memory, d-dim kd

// Streaming two-pass constructions (Section 5). "aware" is the two-pass
// product sampler — the configuration the paper's evaluation calls Aware.
inline constexpr const char kAware[] = "aware";
inline constexpr const char kOrderTwoPass[] = "order-2p";
inline constexpr const char kHierarchyTwoPass[] = "hierarchy-2p";
inline constexpr const char kDisjointTwoPass[] = "disjoint-2p";

// Baselines of the Section 6 evaluation.
inline constexpr const char kObliv[] = "obliv";      // streaming VarOpt
inline constexpr const char kWavelet[] = "wavelet";  // 2-D Haar wavelet
inline constexpr const char kQDigest[] = "qdigest";  // 2-D q-digest
inline constexpr const char kSketch[] = "sketch";    // dyadic Count-Sketch
inline constexpr const char kExact[] = "exact";      // brute force (testing)

// Composed-key prefix of the shard-parallel ingest wrapper: the key
// "sharded:<N>:<inner-key>" hash-partitions the stream across N worker
// threads each feeding one <inner-key> summarizer, and VarOpt-merges the
// shard samples at Finalize. Parsed by MakeSummarizer (api/registry.cc);
// the inner method must be Mergeable (api/summarizer.h).
inline constexpr const char kShardedPrefix[] = "sharded:";

// Composed-key prefix of the time-windowed streaming wrapper: the key
// "windowed:<W>:<B>:<inner-key>" maintains a ring of B time buckets, each
// an <inner-key> summarizer over one span of W/B time units, and merges the
// live buckets' samples into a summary of the last W time units. Parsed by
// MakeSummarizer (api/registry.cc); the inner method must be Mergeable.
// Composes with "sharded:" in either order.
inline constexpr const char kWindowedPrefix[] = "windowed:";

}  // namespace sas::keys

#endif  // SAS_API_KEYS_H_
