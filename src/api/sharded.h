// Shard-parallel ingest behind the registry: the composed key
// "sharded:<N>:<inner-key>" wraps N independent <inner-key> summarizers,
// hash-partitions the stream across them by key id, feeds each from its own
// worker thread, and VarOpt-merges the N shard samples (core/merge.h) into
// one summary at Finalize. Because it hides behind the uniform
// Add/AddBatch/Finalize surface, every mergeable sample-backed method gains
// a parallel backend with zero call-site changes:
//
//   auto builder = MakeSummarizer("sharded:4:obliv", cfg);
//   builder->AddBatch(items);                 // workers ingest in parallel
//   auto summary = builder->Finalize();       // shards merged to size s
//
// Ingest path: the caller thread only hashes ids and appends to per-shard
// accumulation buffers; full buffers are handed to the shard's bounded
// queue (double-buffered — drained buffers are recycled back to the
// producer, and a full queue applies back-pressure). Each worker drains its
// queue with the inner summarizer's batched AddBatch fast path and
// finalizes its shard in parallel.
//
// Determinism: the partition is a seed-salted hash of the key id (the salt
// keeps nested wrappers' partitions independent), shard i's summarizer is
// seeded with ForkSeed(cfg.seed, i), and the merge RNG with
// ForkSeed(cfg.seed, N) — so a fixed (seed, N, input) triple reproduces the
// summary exactly, regardless of thread scheduling.

#ifndef SAS_API_SHARDED_H_
#define SAS_API_SHARDED_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "api/summarizer.h"

namespace sas {

namespace telemetry {
class Histogram;
}  // namespace telemetry

/// One failed shard, as reported by ShardedIngestError: the shard index and
/// the worker's error message (already prefixed with the shard index and
/// inner key).
struct ShardFailure {
  int shard = 0;
  std::string message;
};

/// What ShardedSummarizer::Finalize throws when workers failed: every
/// failed shard is listed (index + inner key + message), not just the first
/// one — under back-pressure several workers can die independently, and
/// retry logic needs to see all of them.
class ShardedIngestError : public std::runtime_error {
 public:
  ShardedIngestError(const std::string& key,
                     std::vector<ShardFailure> failures, int num_shards);

  const std::vector<ShardFailure>& failures() const { return failures_; }

 private:
  std::vector<ShardFailure> failures_;
};

/// Parsed form of a composed "sharded:<N>:<inner-key>" key.
struct ShardedKeySpec {
  int shards = 0;
  std::string inner;
};

/// True when `key` starts with the sharded prefix (it may still be
/// malformed; ParseShardedKey reports why).
bool IsShardedKey(const std::string& key);

/// Parses "sharded:<N>:<inner-key>". Throws std::invalid_argument with a
/// specific reason for malformed keys: missing/non-numeric/out-of-range
/// shard count (valid range [1, 64]) or an empty inner key. Does not check
/// that the inner key is registered — MakeSummarizer does.
ShardedKeySpec ParseShardedKey(const std::string& key);

/// The wrapper's partition policy: the shard (in [0, num_shards)) that key
/// `id` is routed to under config seed `seed`. The hash is salted with the
/// seed so that nested wrappers — whose inner seeds are forked from the
/// outer one — partition independently even when their shard counts share
/// a factor. Exposed so tests (and external routers) can pin the policy.
std::size_t ShardIndex(KeyId id, std::uint64_t seed, int num_shards);

/// Factory used by MakeSummarizer for sharded keys: parses the key, builds
/// the N inner summarizers (validating the inner config), and rejects
/// non-mergeable inner methods with std::invalid_argument.
std::unique_ptr<Summarizer> MakeShardedSummarizer(const std::string& key,
                                                  const SummarizerConfig& cfg);

/// The wrapper itself. Construct through MakeSummarizer; exposed for tests.
class ShardedSummarizer : public Summarizer {
 public:
  /// `key` is the composed key reported by the finalized summary's Name().
  /// Spawns one worker thread per shard. Throws std::invalid_argument if
  /// the inner method is unknown, its config invalid, or it is not
  /// Mergeable.
  ShardedSummarizer(std::string key, const ShardedKeySpec& spec,
                    const SummarizerConfig& cfg);
  ~ShardedSummarizer() override;

  /// Routes the item to its shard's buffer (throws std::logic_error once
  /// the builder is finalized/spent). Batches go through the inherited
  /// AddBatch, which loops Add — the caller-side work is just the hash and
  /// a buffer append; the heavy lifting happens on the workers.
  void Add(const WeightedKey& item) override;

  /// Routes one d-dimensional point. AddCoords assigns the point an id
  /// from a wrapper-global insertion counter (so ids are unique across
  /// shards, exactly as an unsharded "nd" builder would number the whole
  /// stream) and forwards to AddCoordsKeyed, which hash-routes on the id
  /// like Add and replays into the shard's builder via its AddCoordsKeyed.
  /// Inner methods without coordinate support throw on the worker thread;
  /// Finalize rethrows.
  void AddCoords(const Coord* coords, int dims, Weight w) override;
  void AddCoordsKeyed(KeyId id, const Coord* coords, int dims,
                      Weight w) override;

  /// Flushes, joins the workers, finalizes every shard, and merges the
  /// shard samples into one of (expected) size cfg.s. If any workers
  /// failed, throws one ShardedIngestError listing every failed shard
  /// (index, inner key, message).
  std::unique_ptr<RangeSummary> Finalize() override;

  /// The merged output is itself a VarOpt sample, so sharded summarizers
  /// nest ("sharded:2:sharded:2:obliv" type compositions).
  bool Mergeable() const override { return true; }

  /// Full recovery, including from the poisoned and finalized states:
  /// joins any workers, resets every inner builder under ForkSeed(seed, i),
  /// clears errors/results/counters, and respawns the worker pool. After a
  /// successful Reset the builder is bit-identical to a freshly constructed
  /// one with cfg.seed = seed. Returns false (leaving the builder spent)
  /// when the inner method is not recyclable.
  bool Reset(std::uint64_t seed) override;

  int num_shards() const { return static_cast<int>(shards_.size()); }

  /// True once any worker has failed: Add/AddCoords throw immediately (the
  /// already-ingested input can no longer produce a complete summary);
  /// Finalize() reports the failures; Reset(seed) recovers.
  bool poisoned() const {
    return poisoned_.load(std::memory_order_acquire);
  }

 private:
  struct Shard;
  struct Batch;

  Shard& ShardOf(KeyId id);
  void RequireHealthy(const char* call) const;
  void FlushPending(Shard& sh);
  void Enqueue(Shard& sh, Batch batch);
  void WorkerLoop(Shard* sh);
  void RecordWorkerError(Shard* sh, const std::string& what);
  void SpawnWorkers();
  void CloseAndJoin();

  std::string key_;
  std::string inner_key_;   // inner method key, for error messages
  std::uint64_t salt_ = 0;  // partition-hash salt derived from cfg.seed
  std::vector<std::unique_ptr<Shard>> shards_;
  KeyId next_coord_id_ = 0;  // global ids handed out by AddCoords
  bool joined_ = false;
  bool finalized_ = false;  // a summary was produced; Finalize re-entry throws
  std::uint32_t degrade_steps_ = 0;  // max_bytes halvings of the inner s
  std::atomic<bool> poisoned_{false};

  // Telemetry instruments (core/telemetry.h), resolved once at
  // construction (registry pointers are process-stable). Per-shard
  // instruments live on the Shard structs.
  telemetry::Histogram* backpressure_wait_ns_ = nullptr;
  telemetry::Histogram* merge_ns_ = nullptr;
};

}  // namespace sas

#endif  // SAS_API_SHARDED_H_
