// Poisson IPPS sampling (Appendix A): every key is included independently
// with probability min{1, w_i / tau_s}. Expected sample size s, but the
// actual size varies — the baseline that VarOpt improves on.

#ifndef SAS_SAMPLING_POISSON_H_
#define SAS_SAMPLING_POISSON_H_

#include <vector>

#include "core/random.h"
#include "core/sample.h"
#include "core/types.h"

namespace sas {

/// Draws a Poisson IPPS sample of expected size s from `items`.
Sample PoissonSample(const std::vector<WeightedKey>& items, double s,
                     Rng* rng);

}  // namespace sas

#endif  // SAS_SAMPLING_POISSON_H_
