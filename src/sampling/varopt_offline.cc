#include "sampling/varopt_offline.h"

#include <numeric>

#include "core/ipps.h"
#include "core/pair_aggregate.h"

namespace sas {

void AggregateInOrder(std::vector<double>* probs,
                      const std::vector<std::size_t>& order, Rng* rng) {
  const std::size_t leftover = ChainAggregate(probs, order, kNoEntry, rng);
  ResolveResidual(probs, leftover, rng);
}

Sample VarOptOffline(const std::vector<WeightedKey>& items, double s,
                     Rng* rng) {
  std::vector<Weight> weights;
  weights.reserve(items.size());
  for (const auto& it : items) weights.push_back(it.weight);
  const double tau = SolveTau(weights, s);

  std::vector<double> probs;
  IppsProbabilities(weights, tau, &probs);
  for (auto& q : probs) q = SnapProbability(q);

  // Random aggregation order = structure-oblivious pair selection.
  std::vector<std::size_t> order(items.size());
  std::iota(order.begin(), order.end(), 0);
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng->NextBounded(i)]);
  }
  AggregateInOrder(&probs, order, rng);

  std::vector<WeightedKey> chosen;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (probs[i] == 1.0) chosen.push_back(items[i]);
  }
  return Sample(tau, std::move(chosen));
}

}  // namespace sas
