#include "sampling/poisson.h"

#include "core/ipps.h"

namespace sas {

Sample PoissonSample(const std::vector<WeightedKey>& items, double s,
                     Rng* rng) {
  std::vector<Weight> weights;
  weights.reserve(items.size());
  for (const auto& it : items) weights.push_back(it.weight);
  const double tau = SolveTau(weights, s);

  std::vector<WeightedKey> chosen;
  for (const auto& it : items) {
    if (rng->NextBernoulli(IppsProbability(it.weight, tau))) {
      chosen.push_back(it);
    }
  }
  return Sample(tau, std::move(chosen));
}

}  // namespace sas
