// One-pass streaming VarOpt_s sampling (Cohen, Duffield, Kaplan, Lund,
// Thorup, SODA 2009 — the algorithm behind Apache DataSketches' VarOpt
// sketch). This is the "Obliv" method of the paper's evaluation and the
// first-pass guide sample of the I/O-efficient constructions (Section 5).
//
// State: a min-heap H of "heavy" items kept with their exact weights
// (w > tau) and a pool L of "light" items that all share the adjusted
// weight tau. The invariant is tau = (total weight of every stream item
// that is not currently heavy) / |L|; processing an item costs amortized
// O(log s).

#ifndef SAS_SAMPLING_STREAM_VAROPT_H_
#define SAS_SAMPLING_STREAM_VAROPT_H_

#include <cstddef>
#include <span>
#include <vector>

#include "core/random.h"
#include "core/sample.h"
#include "core/types.h"

namespace sas {

class StreamVarOpt {
 public:
  /// Reservoir capacity s >= 1.
  StreamVarOpt(std::size_t s, Rng rng);

  /// Processes one stream item. Items with weight <= 0 are ignored.
  void Push(const WeightedKey& item);

  /// Processes a contiguous batch (the non-virtual hot-loop entry point of
  /// the registry's batched ingest fast path).
  void PushBatch(std::span<const WeightedKey> items) {
    for (const WeightedKey& it : items) Push(it);
  }

  /// Merge entry point: feeds every entry of a finished VarOpt sample at
  /// its *adjusted* weight, so a combiner sketch absorbing shard samples
  /// stays unbiased for the union of the shards' data (law of total
  /// expectation). This is the streaming counterpart of MergeSamples
  /// (core/merge.h).
  void Absorb(const Sample& sample);

  /// Current threshold (0 while fewer than s items have been seen).
  double tau() const { return tau_; }

  /// Number of items currently retained (== min(s, items seen)).
  std::size_t size() const { return heavy_.size() + light_.size(); }

  std::size_t items_seen() const { return seen_; }

  /// Extracts the sample (threshold + retained items). The sketch remains
  /// usable afterwards.
  Sample ToSample() const;

  /// Extracts the sample by moving the retained items out; the sketch is
  /// reset to its freshly-constructed state (same capacity, same RNG
  /// position). Use this at Finalize time to avoid copying the reservoir.
  Sample TakeSample();

  /// Returns the sketch to its freshly-constructed state under a new RNG,
  /// retaining the allocated reservoir capacity. The windowed backend
  /// (window/windowed.h) recycles retired bucket sketches through this
  /// instead of reallocating them: a Reset sketch behaves bit-identically
  /// to StreamVarOpt(s, rng) fed the same stream.
  void Reset(Rng rng);

 private:
  /// Restores the heap property after appending to heavy_.
  void HeavyPush(const WeightedKey& item);
  WeightedKey HeavyPopMin();

  std::size_t s_;
  Rng rng_;
  double tau_ = 0.0;
  // Total original weight of all stream items not currently heavy
  // (including items already evicted from the reservoir).
  double light_mass_ = 0.0;
  std::size_t seen_ = 0;
  std::vector<WeightedKey> heavy_;  // min-heap by weight
  std::vector<WeightedKey> light_;  // uniform pool, adjusted weight tau_
  std::vector<WeightedKey> popped_scratch_;
};

}  // namespace sas

#endif  // SAS_SAMPLING_STREAM_VAROPT_H_
