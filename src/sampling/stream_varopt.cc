#include "sampling/stream_varopt.h"

#include <algorithm>
#include <cassert>

namespace sas {

namespace {
struct WeightGreater {
  bool operator()(const WeightedKey& a, const WeightedKey& b) const {
    return a.weight > b.weight;  // min-heap
  }
};
}  // namespace

StreamVarOpt::StreamVarOpt(std::size_t s, Rng rng) : s_(s), rng_(rng) {
  assert(s >= 1);
  heavy_.reserve(s + 1);
}

void StreamVarOpt::HeavyPush(const WeightedKey& item) {
  heavy_.push_back(item);
  std::push_heap(heavy_.begin(), heavy_.end(), WeightGreater{});
}

WeightedKey StreamVarOpt::HeavyPopMin() {
  std::pop_heap(heavy_.begin(), heavy_.end(), WeightGreater{});
  WeightedKey out = heavy_.back();
  heavy_.pop_back();
  return out;
}

void StreamVarOpt::Push(const WeightedKey& item) {
  if (item.weight <= 0.0) return;
  ++seen_;
  if (heavy_.size() + light_.size() < s_) {
    // Warmup: the first s items are kept exactly.
    HeavyPush(item);
    return;
  }

  // General step: s retained items plus the new one make s+1 candidates;
  // exactly one must be evicted with probability 1 - min(1, w/tau').
  const double tau_old = tau_;
  HeavyPush(item);

  // Determine the new threshold tau' by popping heap minima that fall on
  // the light side. Invariant: tau' = W / (#light candidates - 1) where W is
  // the total light stream mass including popped weights.
  auto& popped = popped_scratch_;
  popped.clear();
  double w_light = light_mass_;
  double tau_new = 0.0;
  for (;;) {
    const double denom =
        static_cast<double>(light_.size() + popped.size()) - 1.0;
    if (denom <= 0.0) {
      WeightedKey p = HeavyPopMin();
      w_light += p.weight;
      popped.push_back(p);
      continue;
    }
    tau_new = w_light / denom;
    if (!heavy_.empty() && heavy_.front().weight <= tau_new) {
      WeightedKey p = HeavyPopMin();
      w_light += p.weight;
      popped.push_back(p);
      continue;
    }
    break;
  }

  // Evict one light candidate. Old pool items are exchangeable with shared
  // adjusted weight tau_old, so their total eviction probability is
  // |L| * (1 - tau_old/tau'); popped items carry individual weights.
  const double u = rng_.NextDouble();
  double acc = static_cast<double>(light_.size()) *
               (1.0 - (tau_new > 0.0 ? tau_old / tau_new : 0.0));
  bool evicted = false;
  if (u < acc) {
    // Evict a uniform member of the pool (swap with last, pop).
    const std::size_t victim = rng_.NextBounded(light_.size());
    light_[victim] = light_.back();
    light_.pop_back();
    evicted = true;
  } else {
    for (std::size_t i = 0; i < popped.size(); ++i) {
      acc += 1.0 - popped[i].weight / tau_new;
      if (u < acc) {
        popped[i] = popped.back();
        popped.pop_back();
        evicted = true;
        break;
      }
    }
  }
  if (!evicted) {
    // Floating-point slack: the eviction probabilities sum to 1 exactly in
    // real arithmetic; fall back to evicting the last popped candidate (or
    // a pool member when nothing was popped).
    if (!popped.empty()) {
      popped.pop_back();
    } else {
      const std::size_t victim = rng_.NextBounded(light_.size());
      light_[victim] = light_.back();
      light_.pop_back();
    }
  }

  // Surviving popped candidates join the uniform pool at threshold tau'.
  for (const auto& p : popped) light_.push_back(p);
  light_mass_ = w_light;
  tau_ = tau_new;
  assert(heavy_.size() + light_.size() == s_);
}

void StreamVarOpt::Absorb(const Sample& sample) {
  for (const WeightedKey& e : sample.entries()) {
    Push({e.id, sample.AdjustedWeight(e), e.pt});
  }
}

Sample StreamVarOpt::TakeSample() {
  std::vector<WeightedKey> entries = std::move(heavy_);
  entries.insert(entries.end(), light_.begin(), light_.end());
  Sample out(tau_, std::move(entries));
  heavy_.clear();
  heavy_.reserve(s_ + 1);
  light_.clear();
  tau_ = 0.0;
  light_mass_ = 0.0;
  seen_ = 0;
  return out;
}

void StreamVarOpt::Reset(Rng rng) {
  heavy_.clear();
  heavy_.reserve(s_ + 1);
  light_.clear();
  popped_scratch_.clear();
  tau_ = 0.0;
  light_mass_ = 0.0;
  seen_ = 0;
  rng_ = rng;
}

Sample StreamVarOpt::ToSample() const {
  std::vector<WeightedKey> entries;
  entries.reserve(size());
  entries.insert(entries.end(), heavy_.begin(), heavy_.end());
  entries.insert(entries.end(), light_.begin(), light_.end());
  return Sample(tau_, std::move(entries));
}

}  // namespace sas
