#include "sampling/systematic.h"

#include <algorithm>

#include "core/ipps.h"
#include "structure/order.h"

namespace sas {

Sample SystematicSample(const std::vector<WeightedKey>& items, double s,
                        Rng* rng) {
  std::vector<Weight> weights;
  weights.reserve(items.size());
  for (const auto& it : items) weights.push_back(it.weight);
  const double tau = SolveTau(weights, s);

  std::vector<Coord> xs;
  xs.reserve(items.size());
  for (const auto& it : items) xs.push_back(it.pt.x);
  const std::vector<std::size_t> order = SortedOrder(xs);

  const double alpha = rng->NextDouble();
  std::vector<WeightedKey> chosen;
  double cum = 0.0;
  double next_tick = alpha;
  for (std::size_t idx : order) {
    const double p = IppsProbability(items[idx].weight, tau);
    const double hi = cum + p;
    // Include the key once per tick inside (cum, hi]; IPPS probabilities are
    // at most 1 so at most one tick can fall inside.
    if (next_tick > cum - 1e-15 && next_tick <= hi) {
      chosen.push_back(items[idx]);
      next_tick += 1.0;
    }
    cum = hi;
  }
  return Sample(tau, std::move(chosen));
}

}  // namespace sas
