// Systematic sampling on an ordered domain (Appendix D).
//
// Associate key i (in sorted order) with the interval
// H_i = (sum_{j<i} p_j, sum_{j<=i} p_j] on the positive axis; draw a single
// uniform offset alpha in [0,1) and include every key whose interval
// contains h + alpha for some integer h. The result has maximum interval
// discrepancy Delta < 1 and satisfies the VarOpt conditions (i) and (ii)
// but *not* (iii): positive correlations make some subset-sum estimates
// high-variance and break Chernoff bounds — the trade-off the paper's
// Appendix D discusses against the Delta < 2 VarOpt order summarizer.

#ifndef SAS_SAMPLING_SYSTEMATIC_H_
#define SAS_SAMPLING_SYSTEMATIC_H_

#include <vector>

#include "core/random.h"
#include "core/sample.h"
#include "core/types.h"

namespace sas {

/// Draws a systematic IPPS sample of expected size s. Keys are processed in
/// increasing x-coordinate order (the linear order of the structure).
Sample SystematicSample(const std::vector<WeightedKey>& items, double s,
                        Rng* rng);

}  // namespace sas

#endif  // SAS_SAMPLING_SYSTEMATIC_H_
