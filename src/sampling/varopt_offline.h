// Offline structure-oblivious VarOpt sampling via probabilistic aggregation.
//
// This is the paper's own framing of VarOpt (Section 2): compute IPPS
// probabilities for the exact threshold tau_s, then repeatedly
// PAIR-AGGREGATE entries until all are set. Aggregating pairs in *random*
// order ignores structure, producing the classic structure-oblivious VarOpt
// distribution with sample size exactly s.

#ifndef SAS_SAMPLING_VAROPT_OFFLINE_H_
#define SAS_SAMPLING_VAROPT_OFFLINE_H_

#include <vector>

#include "core/random.h"
#include "core/sample.h"
#include "core/types.h"

namespace sas {

/// Draws a VarOpt sample of size exactly floor/ceil of s (exactly s when the
/// IPPS probabilities sum to the integer s, which holds for the exact
/// offline threshold).
Sample VarOptOffline(const std::vector<WeightedKey>& items, double s,
                     Rng* rng);

/// Core routine shared with the structure-aware summarizers: given open
/// probabilities, aggregates them in the (possibly shuffled) order given by
/// `order`, maintaining one active entry, and resolves any final residual.
/// On return every probs entry is 0 or 1.
void AggregateInOrder(std::vector<double>* probs,
                      const std::vector<std::size_t>& order, Rng* rng);

}  // namespace sas

#endif  // SAS_SAMPLING_VAROPT_OFFLINE_H_
