#include "core/discrepancy.h"

#include <algorithm>
#include <cmath>

namespace sas {

double RangeDiscrepancy(const std::vector<double>& probs,
                        const std::vector<char>& in_sample,
                        const std::vector<KeyId>& range_members) {
  double expected = 0.0;
  double actual = 0.0;
  for (KeyId id : range_members) {
    expected += probs[id];
    if (in_sample[id]) actual += 1.0;
  }
  return std::fabs(actual - expected);
}

double MaxIntervalDiscrepancy(const std::vector<double>& probs,
                              const std::vector<char>& in_sample) {
  // Interval [i, j) discrepancy = |(A_j - A_i) - (P_j - P_i)| where A is the
  // running sample count and P the running probability mass. The maximum
  // over intervals is max(D) - min(D) of the running difference D_i = A_i -
  // P_i, computable in one pass.
  const std::size_t n = probs.size();
  double diff = 0.0;
  double max_diff = 0.0;
  double min_diff = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    diff += (in_sample[i] ? 1.0 : 0.0) - probs[i];
    max_diff = std::max(max_diff, diff);
    min_diff = std::min(min_diff, diff);
  }
  return max_diff - min_diff;
}

double MaxPrefixDiscrepancy(const std::vector<double>& probs,
                            const std::vector<char>& in_sample) {
  const std::size_t n = probs.size();
  double diff = 0.0;
  double worst = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    diff += (in_sample[i] ? 1.0 : 0.0) - probs[i];
    worst = std::max(worst, std::fabs(diff));
  }
  return worst;
}

std::vector<char> SampleFlags(std::size_t n, const std::vector<KeyId>& ids) {
  std::vector<char> flags(n, 0);
  for (KeyId id : ids) flags[id] = 1;
  return flags;
}

}  // namespace sas
