// Range discrepancy (Section 2 / Appendix A).
//
// The discrepancy of a sample S on a range R is | |S ∩ R| − p(R) | where
// p(R) is the expected number of sampled keys in R under the IPPS
// probabilities. The maximum range discrepancy Delta over a range family
// bounds the error of range-sum queries by Delta * tau. These helpers are
// used by the property tests and the discrepancy ablation benches.

#ifndef SAS_CORE_DISCREPANCY_H_
#define SAS_CORE_DISCREPANCY_H_

#include <cstddef>
#include <vector>

#include "core/types.h"

namespace sas {

/// Discrepancy of one range, given per-key inclusion probabilities, a
/// membership flag per key (in the sample or not), and the member keys of
/// the range.
double RangeDiscrepancy(const std::vector<double>& probs,
                        const std::vector<char>& in_sample,
                        const std::vector<KeyId>& range_members);

/// Maximum discrepancy over all O(n^2) contiguous intervals of keys
/// 0..n-1 in index order (the order structure's range family). O(n^2).
double MaxIntervalDiscrepancy(const std::vector<double>& probs,
                              const std::vector<char>& in_sample);

/// Maximum discrepancy over all n prefixes [0, i) of keys in index order.
double MaxPrefixDiscrepancy(const std::vector<double>& probs,
                            const std::vector<char>& in_sample);

/// Builds the in-sample flag vector for n keys from a list of sampled ids.
std::vector<char> SampleFlags(std::size_t n, const std::vector<KeyId>& ids);

}  // namespace sas

#endif  // SAS_CORE_DISCREPANCY_H_
