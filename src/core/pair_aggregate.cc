#include "core/pair_aggregate.h"

#include <cassert>

namespace sas {

double SnapProbability(double p) {
  if (p <= kProbEps) return 0.0;
  if (p >= 1.0 - kProbEps) return 1.0;
  return p;
}

void PairAggregate(double* pi, double* pj, Rng* rng) {
  const double a = *pi;
  const double b = *pj;
  assert(a > 0.0 && a < 1.0 && b > 0.0 && b < 1.0);
  const double sum = a + b;
  if (sum < 1.0) {
    // Move all mass onto one of the two keys; exclude the other.
    if (rng->NextDouble() < a / sum) {
      *pi = SnapProbability(sum);
      *pj = 0.0;
    } else {
      *pj = SnapProbability(sum);
      *pi = 0.0;
    }
  } else {
    // Include one key outright; the other keeps the leftover mass sum - 1.
    const double leftover = SnapProbability(sum - 1.0);
    if (rng->NextDouble() < (1.0 - b) / (2.0 - sum)) {
      *pi = 1.0;
      *pj = leftover;
    } else {
      *pi = leftover;
      *pj = 1.0;
    }
  }
}

std::size_t ChainAggregate(std::vector<double>* probs,
                           const std::vector<std::size_t>& indices,
                           std::size_t carry, Rng* rng) {
  RngStream draws(rng);
  return ChainAggregateRange(probs->data(), indices.data(), indices.size(),
                             carry, &draws);
}

std::size_t ChainAggregateRange(double* p, const std::size_t* indices,
                                std::size_t count, std::size_t carry,
                                RngStream* draws) {
  // The carry probability lives in `pa`; p[active] is written only when the
  // carry settles or the chain ends. Each merge performs the PairAggregate
  // arithmetic in registers, consumes exactly one draw, and issues a single
  // store for the entry that settled; the open side continues as the carry.
  std::size_t active = kNoEntry;
  double pa = 0.0;
  if (carry != kNoEntry && !IsSet(p[carry])) {
    active = carry;
    pa = p[carry];
  }
  for (std::size_t k = 0; k < count; ++k) {
    const std::size_t i = indices[k];
    const double pi = p[i];
    if (IsSet(pi)) continue;
    if (active == kNoEntry) {
      active = i;
      pa = pi;
      continue;
    }
    const double u = draws->NextDouble();
    const double sum = pa + pi;
    if (sum < 1.0) {
      // All mass moves onto one of the two keys; the other is excluded.
      const double v = SnapProbability(sum);  // can snap up to 1
      const bool keep_active = u < pa / sum;
      const std::size_t winner = keep_active ? active : i;
      const std::size_t loser = keep_active ? i : active;
      p[loser] = 0.0;
      if (IsSet(v)) {
        p[winner] = v;
        active = kNoEntry;
      } else {
        active = winner;
        pa = v;
      }
    } else {
      // One key is included outright; the other keeps sum - 1.
      const double leftover = SnapProbability(sum - 1.0);  // can snap to 0
      const bool active_is_one = u < (1.0 - pi) / (2.0 - sum);
      const std::size_t one = active_is_one ? active : i;
      const std::size_t rest = active_is_one ? i : active;
      p[one] = 1.0;
      if (IsSet(leftover)) {
        p[rest] = leftover;
        active = kNoEntry;
      } else {
        active = rest;
        pa = leftover;
      }
    }
  }
  if (active != kNoEntry) p[active] = pa;
  return active;
}

void ResolveResidual(std::vector<double>* probs, std::size_t entry,
                     Rng* rng) {
  if (entry == kNoEntry) return;
  auto& p = *probs;
  if (IsSet(p[entry])) return;
  p[entry] = rng->NextBernoulli(p[entry]) ? 1.0 : 0.0;
}

void ResolveResidual(double* probs, std::size_t entry, RngStream* draws) {
  if (entry == kNoEntry) return;
  if (IsSet(probs[entry])) return;
  probs[entry] = draws->NextBernoulli(probs[entry]) ? 1.0 : 0.0;
}

}  // namespace sas
