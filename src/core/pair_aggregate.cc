#include "core/pair_aggregate.h"

#include <cassert>

namespace sas {

double SnapProbability(double p) {
  if (p <= kProbEps) return 0.0;
  if (p >= 1.0 - kProbEps) return 1.0;
  return p;
}

void PairAggregate(double* pi, double* pj, Rng* rng) {
  const double a = *pi;
  const double b = *pj;
  assert(a > 0.0 && a < 1.0 && b > 0.0 && b < 1.0);
  const double sum = a + b;
  if (sum < 1.0) {
    // Move all mass onto one of the two keys; exclude the other.
    if (rng->NextDouble() < a / sum) {
      *pi = SnapProbability(sum);
      *pj = 0.0;
    } else {
      *pj = SnapProbability(sum);
      *pi = 0.0;
    }
  } else {
    // Include one key outright; the other keeps the leftover mass sum - 1.
    const double leftover = SnapProbability(sum - 1.0);
    if (rng->NextDouble() < (1.0 - b) / (2.0 - sum)) {
      *pi = 1.0;
      *pj = leftover;
    } else {
      *pi = leftover;
      *pj = 1.0;
    }
  }
}

std::size_t ChainAggregate(std::vector<double>* probs,
                           const std::vector<std::size_t>& indices,
                           std::size_t carry, Rng* rng) {
  auto& p = *probs;
  std::size_t active = carry;
  if (active != kNoEntry && IsSet(p[active])) active = kNoEntry;
  for (std::size_t i : indices) {
    if (IsSet(p[i])) continue;
    if (active == kNoEntry) {
      active = i;
      continue;
    }
    PairAggregate(&p[active], &p[i], rng);
    if (IsSet(p[active])) {
      active = IsSet(p[i]) ? kNoEntry : i;
    }
    // else: active keeps the leftover mass and i was set.
  }
  return active;
}

void ResolveResidual(std::vector<double>* probs, std::size_t entry,
                     Rng* rng) {
  if (entry == kNoEntry) return;
  auto& p = *probs;
  if (IsSet(p[entry])) return;
  p[entry] = rng->NextBernoulli(p[entry]) ? 1.0 : 0.0;
}

}  // namespace sas
