#include "core/sample.h"

namespace sas {

Weight Sample::EstimateBox(const Box& box) const {
  Weight total = 0.0;
  for (const auto& k : entries_) {
    if (box.Contains(k.pt)) total += AdjustedWeight(k);
  }
  return total;
}

Weight Sample::EstimateQuery(const MultiRangeQuery& q) const {
  Weight total = 0.0;
  for (const auto& k : entries_) {
    for (const auto& box : q.boxes) {
      if (box.Contains(k.pt)) {
        total += AdjustedWeight(k);
        break;  // rectangles are disjoint
      }
    }
  }
  return total;
}

Weight Sample::EstimateTotal() const {
  Weight total = 0.0;
  for (const auto& k : entries_) total += AdjustedWeight(k);
  return total;
}

std::size_t Sample::CountInBox(const Box& box) const {
  std::size_t c = 0;
  for (const auto& k : entries_) {
    if (box.Contains(k.pt)) ++c;
  }
  return c;
}

}  // namespace sas
