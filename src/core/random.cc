#include "core/random.h"

#include <cmath>

#include "core/simd.h"

namespace sas {

std::uint64_t SplitMix64(std::uint64_t* state) {
  std::uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t Mix64(std::uint64_t x) {
  std::uint64_t s = x;
  return SplitMix64(&s);
}

namespace {
inline std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& w : s_) w = SplitMix64(&sm);
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

void Rng::FillDoubles(double* out, std::size_t n) {
  // The state recurrence is inherently serial; the unit-interval mapping is
  // not. Batch the raw outputs through the dispatched conversion kernel,
  // which is bit-identical to the per-draw cast on every SIMD level.
  constexpr std::size_t kChunk = 256;
  std::uint64_t raw[kChunk];
  while (n > 0) {
    const std::size_t m = n < kChunk ? n : kChunk;
    for (std::size_t i = 0; i < m; ++i) raw[i] = Next();
    simd::U64ToUnitDoubles(raw, out, m);
    out += m;
    n -= m;
  }
}

void RngStream::Refill() {
  if (filled_ > 0) {
    // The previous block was fully consumed: advance the sync point past it.
    synced_ = next_;
  } else {
    // First block since construction or Flush: re-sync from the source, so
    // draws the caller made directly on the Rng while no block was live
    // (legal after a Flush) are not replayed.
    synced_ = *src_;
  }
  next_ = synced_;
  next_.FillDoubles(buf_, kBlock);
  filled_ = kBlock;
  pos_ = 0;
}

void RngStream::Flush() {
  if (filled_ == 0) {
    // Nothing buffered; the source was never touched. Re-sync in case the
    // caller used it directly between streams.
    synced_ = *src_;
    return;
  }
  if (pos_ == filled_) {
    *src_ = next_;
  } else {
    // Replay the consumed prefix of the current block (< kBlock draws).
    Rng r = synced_;
    for (std::size_t i = 0; i < pos_; ++i) (void)r.Next();
    *src_ = r;
  }
  synced_ = *src_;
  filled_ = 0;
  pos_ = 0;
}

std::uint64_t Rng::NextBounded(std::uint64_t bound) {
  // Lemire's nearly-divisionless unbiased bounded generation.
  std::uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextExp() {
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -std::log(u);
}

double Rng::NextPareto(double alpha) {
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return std::pow(u, -1.0 / alpha);
}

std::uint64_t ForkSeed(std::uint64_t seed, std::uint64_t stream) {
  // One SplitMix64 step from `seed`, then mix the stream index through a
  // second finalizer so that consecutive streams land far apart.
  std::uint64_t s = seed;
  return Mix64(SplitMix64(&s) ^ Mix64(stream + 0xD1B54A32D192ED03ULL));
}

Rng Rng::Fork(std::uint64_t stream) const {
  const std::uint64_t digest =
      s_[0] ^ Rotl(s_[1], 13) ^ Rotl(s_[2], 29) ^ Rotl(s_[3], 43);
  return Rng(ForkSeed(digest, stream));
}

Rng Rng::Split() {
  std::uint64_t derive = s_[0] ^ Rotl(s_[2], 29);
  // Advance self so successive Split() calls give distinct children.
  (void)Next();
  return Rng(Mix64(derive));
}

}  // namespace sas
