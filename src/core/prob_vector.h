// ProbVector: the mutable probability-vector state that probabilistic
// aggregation operates on (Section 2).
//
// It tracks which entries are still "open" (strictly between 0 and 1) and
// verifies the invariants that every probabilistic aggregate must keep:
// the sum of entries is preserved and entries that are set stay set.

#ifndef SAS_CORE_PROB_VECTOR_H_
#define SAS_CORE_PROB_VECTOR_H_

#include <cstddef>
#include <vector>

#include "core/pair_aggregate.h"
#include "core/random.h"

namespace sas {

class ProbVector {
 public:
  ProbVector() = default;
  explicit ProbVector(std::vector<double> probs);

  std::size_t size() const { return p_.size(); }
  double operator[](std::size_t i) const { return p_[i]; }
  const std::vector<double>& values() const { return p_; }

  /// Number of entries not yet set to exactly 0 or 1.
  std::size_t open_count() const { return open_count_; }

  /// Sum of all entries (maintained incrementally; exact up to FP error).
  double sum() const { return sum_; }

  bool IsSetAt(std::size_t i) const { return IsSet(p_[i]); }

  /// Applies PAIR-AGGREGATE to entries i and j. Requires both open.
  void Aggregate(std::size_t i, std::size_t j, Rng* rng);

  /// Resolves a single remaining open entry by a Bernoulli draw. This is
  /// only needed when the initial sum is non-integral (or off by floating
  /// point error): a final lone entry q is set to 1 with probability q.
  /// Requires entry i to be open.
  void ResolveResidual(std::size_t i, Rng* rng);

  /// Indices of entries equal to 1 (the chosen sample, once none are open).
  std::vector<std::size_t> OnesIndices() const;

 private:
  std::vector<double> p_;
  std::size_t open_count_ = 0;
  double sum_ = 0.0;
};

}  // namespace sas

#endif  // SAS_CORE_PROB_VECTOR_H_
