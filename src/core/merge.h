// VarOpt sample merge (mergeability of IPPS/VarOpt summaries).
//
// A VarOpt sample answers subset-sum queries unbiasedly via the adjusted
// weights max(w_i, tau). Merging re-samples the union of the inputs'
// entries, *carrying each entry at its adjusted weight*: by the law of
// total expectation, an unbiased sample of unbiased estimates is itself
// unbiased for the original data. The merged threshold is re-solved with
// the exact IPPS machinery (core/ipps) and entries are settled by random
// pair aggregation (core/pair_aggregate), i.e. the paper's own
// structure-oblivious VarOpt step applied to the combined entry set.
//
// This is the primitive behind the sharded backend (api/sharded.h) and
// distributed aggregation trees: shards sample independently, merges
// combine pairwise or N-way in any order, and every intermediate result is
// a valid Sample over the same query interface.

#ifndef SAS_CORE_MERGE_H_
#define SAS_CORE_MERGE_H_

#include <cstddef>
#include <vector>

#include "core/ipps.h"
#include "core/random.h"
#include "core/sample.h"

namespace sas {

/// Reusable workspace for the merge's intermediate buffers (combined
/// entries, weights, inclusion probabilities, shuffle order, and the IPPS
/// scratch). A caller that merges repeatedly — the windowed ring's QueryAt
/// path re-merges its live bucket samples on every cache miss — keeps one
/// scratch alive and pays no steady-state allocations for them. A scratch
/// may be reused freely across calls but not shared by concurrent calls.
struct MergeScratch {
  std::vector<WeightedKey> entries;
  std::vector<Weight> weights;
  std::vector<double> probs;
  std::vector<std::size_t> order;
  IppsScratch ipps;
};

/// Merges two VarOpt samples into one of (expected) size s. Entries are
/// combined at their adjusted weights, so the result is unbiased for the
/// union of the data the inputs summarized. When the inputs together hold
/// at most s entries, everything is kept (threshold 0) and no randomness is
/// consumed. Requires s >= 1.
Sample MergeSamples(const Sample& a, const Sample& b, std::size_t s,
                    Rng* rng);

/// N-way merge: one joint threshold resolution over all parts' entries.
/// Statistically preferable to a cascade of pairwise merges (one
/// re-sampling round instead of N-1).
Sample MergeAllSamples(const std::vector<Sample>& parts, std::size_t s,
                       Rng* rng);

/// Pointer-flavored N-way merge for callers that assemble their parts from
/// non-contiguous storage (the windowed ring merges samples held in ring
/// slots) and want buffer reuse across merges. `scratch` may be nullptr
/// (per-call buffers are then used). Null part pointers are not allowed;
/// zero-entry parts are.
Sample MergeSampleParts(const Sample* const* parts, std::size_t num_parts,
                        std::size_t s, Rng* rng, MergeScratch* scratch);

}  // namespace sas

#endif  // SAS_CORE_MERGE_H_
