// VarOpt sample merge (mergeability of IPPS/VarOpt summaries).
//
// A VarOpt sample answers subset-sum queries unbiasedly via the adjusted
// weights max(w_i, tau). Merging re-samples the union of the inputs'
// entries, *carrying each entry at its adjusted weight*: by the law of
// total expectation, an unbiased sample of unbiased estimates is itself
// unbiased for the original data. The merged threshold is re-solved with
// the exact IPPS machinery (core/ipps) and entries are settled by random
// pair aggregation (core/pair_aggregate), i.e. the paper's own
// structure-oblivious VarOpt step applied to the combined entry set.
//
// This is the primitive behind the sharded backend (api/sharded.h) and
// distributed aggregation trees: shards sample independently, merges
// combine pairwise or N-way in any order, and every intermediate result is
// a valid Sample over the same query interface.

#ifndef SAS_CORE_MERGE_H_
#define SAS_CORE_MERGE_H_

#include <cstddef>
#include <vector>

#include "core/random.h"
#include "core/sample.h"

namespace sas {

/// Merges two VarOpt samples into one of (expected) size s. Entries are
/// combined at their adjusted weights, so the result is unbiased for the
/// union of the data the inputs summarized. When the inputs together hold
/// at most s entries, everything is kept (threshold 0) and no randomness is
/// consumed. Requires s >= 1.
Sample MergeSamples(const Sample& a, const Sample& b, std::size_t s,
                    Rng* rng);

/// N-way merge: one joint threshold resolution over all parts' entries.
/// Statistically preferable to a cascade of pairwise merges (one
/// re-sampling round instead of N-1).
Sample MergeAllSamples(const std::vector<Sample>& parts, std::size_t s,
                       Rng* rng);

}  // namespace sas

#endif  // SAS_CORE_MERGE_H_
