#include "core/simd.h"

#include <atomic>
#include <cmath>
#include <limits>

// The AVX2 paths exist only when the build opts in (SAS_SIMD, see
// CMakeLists.txt) and the toolchain/arch can express them. Everything else
// compiles the scalar reference only.
#if defined(SAS_SIMD_ENABLED) && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define SAS_SIMD_X86 1
#include <immintrin.h>
#endif

namespace sas {
namespace simd {

namespace {

// -------------------------------------------------------------------------
// Scalar reference kernels. These are verbatim the loops the callers used
// before the facade existed; the golden-seed suite pins their outputs, so
// they must never change behavior.

double FillIppsProbabilitiesScalar(const double* w, std::size_t n, double tau,
                                   double* probs) {
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double p = w[i] / tau;
    probs[i] = p >= 1.0 ? 1.0 : p;
    sum += probs[i];
  }
  return sum;
}

double SuffixSumScalar(const double* buf, std::size_t begin, std::size_t end,
                       double init) {
  double acc = init;
  for (std::size_t i = end; i-- > begin;) acc += buf[i];
  return acc;
}

std::size_t MinGapScanScalar(const double* prefix, const Coord* vals,
                             std::size_t len, double total) {
  std::size_t best = kNoSplit;
  double best_gap = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i + 1 < len; ++i) {
    if (vals[i] == vals[i + 1]) continue;  // not a coordinate boundary
    const double gap = std::fabs(total - 2.0 * prefix[i]);
    if (gap < best_gap) {
      best_gap = gap;
      best = i;
    }
  }
  return best;
}

void U64ToUnitDoublesScalar(const std::uint64_t* raw, double* out,
                            std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<double>(raw[i] >> 11) * 0x1.0p-53;
  }
}

// -------------------------------------------------------------------------
// AVX2/FMA kernels. Per-lane arithmetic mirrors the scalar ops exactly
// (division, min, abs, and the fused total - 2*prefix, whose 2*prefix term
// is a power-of-two scale and hence exact); only reductions re-associate.

#if defined(SAS_SIMD_X86)

__attribute__((target("avx2,fma"))) inline __m256d MarksteinQuotient(
    __m256d vw, __m256d vy, __m256d vtau) {
  const __m256d q0 = _mm256_mul_pd(vw, vy);
  const __m256d r = _mm256_fnmadd_pd(q0, vtau, vw);
  return _mm256_fmadd_pd(r, vy, q0);
}

__attribute__((target("avx2,fma"))) double FillIppsProbabilitiesAvx2(
    const double* w, std::size_t n, double* probs, double tau) {
  // Division via Markstein's sequence instead of vdivpd: with the
  // correctly rounded reciprocal y = RN(1/tau), q0 = RN(w*y),
  // r = w - q0*tau (exact by FMA), the corrected q = RN(q0 + r*y) is the
  // correctly rounded quotient w/tau for every normal quotient
  // (round-to-nearest), so the stored probabilities stay bit-identical to
  // the scalar `w[i] / tau` while the loop runs at FMA throughput rather
  // than the divider's. Degenerate inputs degrade identically: a quotient
  // that overflows turns q into +-inf/NaN, and the min below (NaN in the
  // first operand selects the second) clamps it to the same 1.0 the
  // overflowed scalar divide produces. Denormal quotients could double-
  // round, but tau <= sum(w) in every caller (SolveTau), so w/tau >=
  // w/sum(w) never underflows for representable weights.
  const __m256d vy = _mm256_set1_pd(1.0 / tau);
  const __m256d vtau = _mm256_set1_pd(tau);
  const __m256d ones = _mm256_set1_pd(1.0);
  // Two independent streams hide the correction latency and split the sum
  // accumulation chain (the sum contract is near-equality, not
  // bit-identity, so lane/stream re-association is allowed).
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256d p0 = _mm256_min_pd(
        MarksteinQuotient(_mm256_loadu_pd(w + i), vy, vtau), ones);
    const __m256d p1 = _mm256_min_pd(
        MarksteinQuotient(_mm256_loadu_pd(w + i + 4), vy, vtau), ones);
    _mm256_storeu_pd(probs + i, p0);
    _mm256_storeu_pd(probs + i + 4, p1);
    acc0 = _mm256_add_pd(acc0, p0);
    acc1 = _mm256_add_pd(acc1, p1);
  }
  for (; i + 4 <= n; i += 4) {
    const __m256d p = _mm256_min_pd(
        MarksteinQuotient(_mm256_loadu_pd(w + i), vy, vtau), ones);
    _mm256_storeu_pd(probs + i, p);
    acc0 = _mm256_add_pd(acc0, p);
  }
  const __m256d acc = _mm256_add_pd(acc0, acc1);
  const __m128d lo = _mm256_castpd256_pd128(acc);
  const __m128d hi = _mm256_extractf128_pd(acc, 1);
  const __m128d pair = _mm_add_pd(lo, hi);
  double sum = _mm_cvtsd_f64(_mm_add_sd(pair, _mm_unpackhi_pd(pair, pair)));
  for (; i < n; ++i) {
    const double p = w[i] / tau;
    probs[i] = p >= 1.0 ? 1.0 : p;
    sum += probs[i];
  }
  return sum;
}

__attribute__((target("avx2,fma"))) double SuffixSumAvx2(const double* buf,
                                                         std::size_t begin,
                                                         std::size_t end,
                                                         double init) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = begin;
  for (; i + 4 <= end; i += 4) {
    acc = _mm256_add_pd(acc, _mm256_loadu_pd(buf + i));
  }
  const __m128d lo = _mm256_castpd256_pd128(acc);
  const __m128d hi = _mm256_extractf128_pd(acc, 1);
  const __m128d pair = _mm_add_pd(lo, hi);
  double sum =
      init + _mm_cvtsd_f64(_mm_add_sd(pair, _mm_unpackhi_pd(pair, pair)));
  for (; i < end; ++i) sum += buf[i];
  return sum;
}

__attribute__((target("avx2,fma"))) std::size_t MinGapScanAvx2(
    const double* prefix, const Coord* vals, std::size_t len, double total) {
  const double inf = std::numeric_limits<double>::infinity();
  std::size_t best = kNoSplit;
  double best_gap = inf;
  std::size_t i = 0;
  if (len >= 1 && len - 1 >= 4) {
    const std::size_t bound = len - 1;
    const __m256d vtotal = _mm256_set1_pd(total);
    const __m256d vtwo = _mm256_set1_pd(2.0);
    const __m256d vinf = _mm256_set1_pd(inf);
    const __m256d sign_mask = _mm256_set1_pd(-0.0);
    __m256d vbest_gap = _mm256_set1_pd(inf);
    __m256i vbest_idx = _mm256_setzero_si256();
    __m256i vidx = _mm256_setr_epi64x(0, 1, 2, 3);
    const __m256i four = _mm256_set1_epi64x(4);
    for (; i + 4 <= bound; i += 4) {
      // gap = |total - 2*prefix[i]|; 2*prefix is exact, so the fused
      // negate-multiply-add rounds once, like the scalar subtraction.
      __m256d gap = _mm256_andnot_pd(
          sign_mask,
          _mm256_fnmadd_pd(vtwo, _mm256_loadu_pd(prefix + i), vtotal));
      // Positions where vals[i] == vals[i+1] are not boundaries: mask to
      // +inf so they can never win the strict-less min.
      const __m256i eq = _mm256_cmpeq_epi64(
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(vals + i)),
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(vals + i + 1)));
      gap = _mm256_blendv_pd(gap, vinf, _mm256_castsi256_pd(eq));
      // Strict-less update keeps the earliest index per lane, matching the
      // scalar first-minimum-wins rule.
      const __m256d lt = _mm256_cmp_pd(gap, vbest_gap, _CMP_LT_OQ);
      vbest_gap = _mm256_blendv_pd(vbest_gap, gap, lt);
      vbest_idx = _mm256_blendv_epi8(vbest_idx, vidx, _mm256_castpd_si256(lt));
      vidx = _mm256_add_epi64(vidx, four);
    }
    alignas(32) double lane_gap[4];
    alignas(32) std::int64_t lane_idx[4];
    _mm256_store_pd(lane_gap, vbest_gap);
    _mm256_store_si256(reinterpret_cast<__m256i*>(lane_idx), vbest_idx);
    for (int lane = 0; lane < 4; ++lane) {
      if (lane_gap[lane] < best_gap ||
          (lane_gap[lane] == best_gap && best != kNoSplit &&
           static_cast<std::size_t>(lane_idx[lane]) < best)) {
        best_gap = lane_gap[lane];
        best = static_cast<std::size_t>(lane_idx[lane]);
      }
    }
    if (best_gap == inf) best = kNoSplit;  // no boundary in the vector part
  }
  for (; i + 1 < len; ++i) {
    if (vals[i] == vals[i + 1]) continue;
    const double gap = std::fabs(total - 2.0 * prefix[i]);
    if (gap < best_gap) {
      best_gap = gap;
      best = i;
    }
  }
  return best;
}

__attribute__((target("avx2,fma"))) void U64ToUnitDoublesAvx2(
    const std::uint64_t* raw, double* out, std::size_t n) {
  // k = raw >> 11 has 53 bits, too wide for the single 2^52 magic-number
  // convert — split into hi21 * 2^32 + lo32, both exactly convertible, and
  // recombine with one FMA (every step exact because k itself fits a
  // double, so the result is bit-identical to the scalar cast).
  const __m256i mask32 = _mm256_set1_epi64x(0xFFFFFFFFLL);
  const __m256i magic = _mm256_set1_epi64x(0x4330000000000000LL);  // 2^52
  const __m256d two52 = _mm256_set1_pd(0x1.0p52);
  const __m256d two32 = _mm256_set1_pd(0x1.0p32);
  const __m256d scale = _mm256_set1_pd(0x1.0p-53);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i k = _mm256_srli_epi64(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(raw + i)), 11);
    const __m256d lo = _mm256_sub_pd(
        _mm256_castsi256_pd(_mm256_or_si256(_mm256_and_si256(k, mask32),
                                            magic)),
        two52);
    const __m256d hi = _mm256_sub_pd(
        _mm256_castsi256_pd(_mm256_or_si256(_mm256_srli_epi64(k, 32), magic)),
        two52);
    const __m256d value = _mm256_fmadd_pd(hi, two32, lo);
    _mm256_storeu_pd(out + i, _mm256_mul_pd(value, scale));
  }
  for (; i < n; ++i) {
    out[i] = static_cast<double>(raw[i] >> 11) * 0x1.0p-53;
  }
}

#endif  // SAS_SIMD_X86

std::atomic<int> g_level{-1};

}  // namespace

Level DetectLevel() {
#if defined(SAS_SIMD_X86)
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return Level::kAvx2;
  }
#endif
  return Level::kScalar;
}

Level ActiveLevel() {
  int lv = g_level.load(std::memory_order_relaxed);
  if (lv < 0) {
    lv = static_cast<int>(DetectLevel());
    g_level.store(lv, std::memory_order_relaxed);
  }
  return static_cast<Level>(lv);
}

bool SetLevel(Level level) {
  if (static_cast<int>(level) > static_cast<int>(DetectLevel())) return false;
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
  return true;
}

const char* LevelName(Level level) {
  return level == Level::kAvx2 ? "avx2" : "scalar";
}

double FillIppsProbabilities(const double* w, std::size_t n, double tau,
                             double* probs) {
#if defined(SAS_SIMD_X86)
  if (ActiveLevel() == Level::kAvx2) {
    return FillIppsProbabilitiesAvx2(w, n, probs, tau);
  }
#endif
  return FillIppsProbabilitiesScalar(w, n, tau, probs);
}

double SuffixSum(const double* buf, std::size_t begin, std::size_t end,
                 double init) {
#if defined(SAS_SIMD_X86)
  if (ActiveLevel() == Level::kAvx2) {
    return SuffixSumAvx2(buf, begin, end, init);
  }
#endif
  return SuffixSumScalar(buf, begin, end, init);
}

std::size_t MinGapScan(const double* prefix, const Coord* vals,
                       std::size_t len, double total) {
#if defined(SAS_SIMD_X86)
  if (ActiveLevel() == Level::kAvx2) {
    return MinGapScanAvx2(prefix, vals, len, total);
  }
#endif
  return MinGapScanScalar(prefix, vals, len, total);
}

void U64ToUnitDoubles(const std::uint64_t* raw, double* out, std::size_t n) {
#if defined(SAS_SIMD_X86)
  if (ActiveLevel() == Level::kAvx2) {
    U64ToUnitDoublesAvx2(raw, out, n);
    return;
  }
#endif
  U64ToUnitDoublesScalar(raw, out, n);
}

}  // namespace simd
}  // namespace sas
