// Deterministic pseudo-random number generation for all sampling algorithms.
//
// Every randomized component in the library takes an explicit Rng so that
// experiments are reproducible from a single seed. The generator is
// xoshiro256++ seeded via SplitMix64, which is fast, high quality, and easy
// to reimplement from scratch (no dependency on std::mt19937 state layout).

#ifndef SAS_CORE_RANDOM_H_
#define SAS_CORE_RANDOM_H_

#include <cstdint>

namespace sas {

/// SplitMix64 step: used for seeding and as a cheap stateless mixer.
std::uint64_t SplitMix64(std::uint64_t* state);

/// Stateless 64-bit finalizer (good avalanche); used by hashing code.
std::uint64_t Mix64(std::uint64_t x);

/// SplitMix-style deterministic sub-seed derivation: the seed of stream
/// `stream` under master seed `seed`. Distinct streams yield independent
/// generators; the mapping depends only on (seed, stream), so sharded runs
/// are reproducible for a fixed seed and shard count regardless of thread
/// scheduling.
std::uint64_t ForkSeed(std::uint64_t seed, std::uint64_t stream);

/// xoshiro256++ generator with convenience draws.
class Rng {
 public:
  /// Seeds the four words of state from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit output.
  std::uint64_t Next();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in [0, bound). Requires bound > 0. Unbiased
  /// (Lemire's rejection method).
  std::uint64_t NextBounded(std::uint64_t bound);

  /// Bernoulli draw with success probability p (clamped to [0,1]).
  bool NextBernoulli(double p);

  /// Standard exponential variate (rate 1).
  double NextExp();

  /// Pareto variate with shape `alpha` and scale 1: x = u^{-1/alpha}.
  double NextPareto(double alpha);

  /// Creates an independent generator by jumping through SplitMix64 of the
  /// current state (used to hand child RNGs to sub-tasks deterministically).
  Rng Split();

  /// Derives the `stream`-th child generator from the current state without
  /// advancing it: Fork(i) called twice returns identical generators, and
  /// distinct streams are independent. This is how per-shard RNGs are
  /// derived so that parallel ingest is reproducible.
  Rng Fork(std::uint64_t stream) const;

 private:
  std::uint64_t s_[4];
};

}  // namespace sas

#endif  // SAS_CORE_RANDOM_H_
