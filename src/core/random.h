// Deterministic pseudo-random number generation for all sampling algorithms.
//
// Every randomized component in the library takes an explicit Rng so that
// experiments are reproducible from a single seed. The generator is
// xoshiro256++ seeded via SplitMix64, which is fast, high quality, and easy
// to reimplement from scratch (no dependency on std::mt19937 state layout).

#ifndef SAS_CORE_RANDOM_H_
#define SAS_CORE_RANDOM_H_

#include <cstddef>
#include <cstdint>

namespace sas {

/// SplitMix64 step: used for seeding and as a cheap stateless mixer.
std::uint64_t SplitMix64(std::uint64_t* state);

/// Stateless 64-bit finalizer (good avalanche); used by hashing code.
std::uint64_t Mix64(std::uint64_t x);

/// SplitMix-style deterministic sub-seed derivation: the seed of stream
/// `stream` under master seed `seed`. Distinct streams yield independent
/// generators; the mapping depends only on (seed, stream), so sharded runs
/// are reproducible for a fixed seed and shard count regardless of thread
/// scheduling.
std::uint64_t ForkSeed(std::uint64_t seed, std::uint64_t stream);

/// xoshiro256++ generator with convenience draws.
class Rng {
 public:
  /// Seeds the four words of state from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit output.
  std::uint64_t Next();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Fills out[0..n) with the next n NextDouble() draws, in order. The
  /// per-element values are bit-identical to n successive NextDouble()
  /// calls; the batch form exists so hot loops can consume blocks of draws
  /// without a per-draw function boundary (see RngStream).
  void FillDoubles(double* out, std::size_t n);

  /// Uniform integer in [0, bound). Requires bound > 0. Unbiased
  /// (Lemire's rejection method).
  std::uint64_t NextBounded(std::uint64_t bound);

  /// Bernoulli draw with success probability p (clamped to [0,1]).
  bool NextBernoulli(double p);

  /// Standard exponential variate (rate 1).
  double NextExp();

  /// Pareto variate with shape `alpha` and scale 1: x = u^{-1/alpha}.
  double NextPareto(double alpha);

  /// Creates an independent generator by jumping through SplitMix64 of the
  /// current state (used to hand child RNGs to sub-tasks deterministically).
  Rng Split();

  /// Derives the `stream`-th child generator from the current state without
  /// advancing it: Fork(i) called twice returns identical generators, and
  /// distinct streams are independent. This is how per-shard RNGs are
  /// derived so that parallel ingest is reproducible.
  Rng Fork(std::uint64_t stream) const;

 private:
  std::uint64_t s_[4];
};

/// Buffered uniform-double stream over a borrowed Rng, used by the batched
/// aggregation fast paths (ChainAggregateRange).
///
/// The stream pre-generates draws in blocks of kBlock via Rng::FillDoubles
/// but is *draw-order transparent*: the i-th NextDouble() returns exactly
/// the value the i-th rng->NextDouble() would have, and Flush() repositions
/// the borrowed Rng to exactly "construction state advanced by the number of
/// draws consumed". A pass that routes all of its randomness through one
/// RngStream is therefore bit-identical — including the caller's Rng state
/// afterwards — to the same pass calling the Rng directly.
///
/// Ownership rule: while a block is live — i.e. after a NextDouble()/
/// consuming NextBernoulli() and before the next Flush() (the destructor
/// flushes too) — the borrowed Rng must not be used directly. Between
/// Flush() and the next draw the Rng may be used freely; the stream
/// re-syncs from it.
class RngStream {
 public:
  static constexpr std::size_t kBlock = 256;

  explicit RngStream(Rng* rng) : src_(rng), synced_(*rng) {}
  RngStream(const RngStream&) = delete;
  RngStream& operator=(const RngStream&) = delete;
  ~RngStream() { Flush(); }

  double NextDouble() {
    if (pos_ == filled_) Refill();
    return buf_[pos_++];
  }

  /// Bernoulli draw matching Rng::NextBernoulli's consumption: degenerate
  /// probabilities consume no draw.
  bool NextBernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return NextDouble() < p;
  }

  /// Repositions the borrowed Rng exactly past the consumed draws and
  /// resets the stream (it may be used again afterwards).
  void Flush();

 private:
  void Refill();

  Rng* src_;
  // source state at the stream position of buf_[0]
  // sas-lint: allow(unforked-rng): copied from the borrowed Rng at construction
  Rng synced_;
  // synced_ advanced by kBlock draws (valid when filled_ > 0)
  // sas-lint: allow(unforked-rng): derived from synced_ inside Refill
  Rng next_;
  std::size_t pos_ = 0;
  std::size_t filled_ = 0;
  double buf_[kBlock];
};

}  // namespace sas

#endif  // SAS_CORE_RANDOM_H_
