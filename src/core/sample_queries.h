// Higher-level applications over samples (paper introduction: "computing
// order statistics over subsets of the data, heavy hitters detection, ...").
// All of these evaluate the query over the sample with Horvitz-Thompson
// adjusted weights — no new summary structures are needed, which is exactly
// the flexibility argument for sample-based summaries.

#ifndef SAS_CORE_SAMPLE_QUERIES_H_
#define SAS_CORE_SAMPLE_QUERIES_H_

#include <functional>
#include <vector>

#include "core/sample.h"
#include "core/types.h"

namespace sas {

/// Estimated q-quantile (q in [0,1]) of the weight distribution over the
/// x-coordinate: the smallest coordinate c such that the estimated weight
/// of keys with x <= c is at least q times the estimated total. Returns 0
/// for an empty sample.
Coord EstimateQuantileX(const Sample& sample, double q);

/// Quantile restricted to a subset of keys (order statistics over subsets).
Coord EstimateSubsetQuantileX(
    const Sample& sample, double q,
    const std::function<bool(const WeightedKey&)>& pred);

/// A detected heavy hitter: a sampled key whose estimated weight is at
/// least `phi` times the estimated total.
struct HeavyHitter {
  WeightedKey key;
  Weight estimated_weight = 0.0;
  double estimated_fraction = 0.0;
};

/// All keys with estimated weight fraction >= phi, heaviest first. Under
/// IPPS every key with true weight >= phi * W and weight >= tau is in the
/// sample with certainty, so no true heavy hitter above the threshold is
/// missed once tau <= phi * W.
std::vector<HeavyHitter> EstimateHeavyHitters(const Sample& sample,
                                              double phi);

/// Hierarchical heavy hitters along one axis: estimated weight of each
/// given interval (e.g. hierarchy node ranges), returning those whose
/// estimated fraction is >= phi. Intervals are reported in input order.
struct RangeHeavyHitter {
  Interval range;
  Weight estimated_weight = 0.0;
  double estimated_fraction = 0.0;
};

std::vector<RangeHeavyHitter> EstimateRangeHeavyHittersX(
    const Sample& sample, const std::vector<Interval>& ranges, double phi);

}  // namespace sas

#endif  // SAS_CORE_SAMPLE_QUERIES_H_
