// Epoch-based reclamation for single-publisher / multi-reader data
// structures (the serving tier, src/serve/). The primitive answers one
// question: "can this retired object still be referenced by a concurrent
// reader?" — without readers ever taking a lock or blocking the publisher.
//
// Protocol:
//
//   * Readers register once per thread (RegisterReader -> slot) and bracket
//     every access with Pin(slot) / Unpin(slot). Pin advertises the global
//     epoch the reader entered at; between Pin and Unpin the reader may
//     dereference any pointer it loaded from the published structure.
//   * The publisher swaps in new state, tags the displaced state with the
//     current global epoch, then calls Advance(). State tagged with epoch t
//     is reclaimable once MinActiveEpoch() > t: every reader pinned at an
//     epoch <= t has since unpinned, and any reader pinned at an epoch
//     >= t+1 pinned after Advance() — which happens after the swap — so it
//     can only have loaded the new state.
//
// Memory ordering: Pin's store, its re-validation load, the publisher's
// swap, and Advance() are all seq_cst, so the "pinned after Advance implies
// loaded after swap" argument holds in the C++ total order of seq_cst
// operations. The re-validation loop in Pin (store slot, re-load global,
// retry on change) closes the window where a reader advertises a stale
// epoch after the publisher already scanned its slot. Unpin is a release
// store (the reader's accesses must not sink below it).
//
// Readers are lock-free, not wait-free: Pin retries while the publisher
// advances concurrently, but each retry means the publisher made progress,
// and the publisher never waits on readers at all (reclamation is deferred,
// never blocking).
//
// Thread-safety: Pin/Unpin are per-slot (one thread per registered slot,
// the registration contract); RegisterReader/UnregisterReader and
// MinActiveEpoch/Advance are safe from any number of threads.

#ifndef SAS_CORE_EPOCH_H_
#define SAS_CORE_EPOCH_H_

#include <array>
#include <atomic>
#include <cstdint>

namespace sas {

class EpochDomain {
 public:
  /// Concurrently registered readers an EpochDomain supports; the 65th
  /// RegisterReader throws. Sized for "threads on one machine", not for
  /// open-ended sessions — register per worker thread, not per query.
  static constexpr int kMaxReaders = 64;

  /// Slot value meaning "not inside a read-side critical section".
  static constexpr std::uint64_t kIdle = ~std::uint64_t{0};

  EpochDomain() = default;
  EpochDomain(const EpochDomain&) = delete;
  EpochDomain& operator=(const EpochDomain&) = delete;

  /// Claims a reader slot (index in [0, kMaxReaders)). Throws
  /// std::runtime_error when all slots are taken. The slot is driven by one
  /// thread at a time; hand it back with UnregisterReader.
  int RegisterReader();

  /// Releases a slot claimed by RegisterReader (the slot must be unpinned).
  void UnregisterReader(int slot);

  /// Enters a read-side critical section on `slot`: advertises the current
  /// global epoch and returns it. Never blocks; retries its advertisement
  /// while the publisher concurrently advances (each retry implies
  /// publisher progress, so the loop is lock-free).
  std::uint64_t Pin(int slot);

  /// Leaves the read-side critical section of `slot`.
  void Unpin(int slot);

  /// The current global epoch (starts at 0).
  std::uint64_t current_epoch() const {
    return global_epoch_.load(std::memory_order_seq_cst);
  }

  /// Publisher side: moves the global epoch forward and returns the *new*
  /// epoch. Call after the old state has been unpublished (swapped out).
  std::uint64_t Advance();

  /// The smallest epoch any currently pinned reader advertises, or kIdle
  /// when no reader is pinned. State retired under tag t is reclaimable
  /// when MinActiveEpoch() > t.
  std::uint64_t MinActiveEpoch() const;

  /// Number of currently pinned readers (diagnostic; racy by nature).
  int PinnedReaders() const;

  /// Number of registered reader slots.
  int RegisteredReaders() const;

 private:
  // One cache line per slot: a reader's Pin/Unpin traffic never false-shares
  // with another reader's, and the publisher's scan walks predictable lines.
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> pinned{kIdle};
    std::atomic<bool> claimed{false};
  };

  std::atomic<std::uint64_t> global_epoch_{0};
  std::array<Slot, kMaxReaders> slots_{};
};

}  // namespace sas

#endif  // SAS_CORE_EPOCH_H_
