#include "core/ipps.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace sas {

double SolveTau(const std::vector<Weight>& weights, double s) {
  assert(s > 0.0);
  std::vector<Weight> sorted;
  sorted.reserve(weights.size());
  for (Weight w : weights) {
    assert(w >= 0.0);
    if (w > 0.0) sorted.push_back(w);
  }
  const std::size_t n = sorted.size();
  if (static_cast<double>(n) <= s) return 0.0;  // everyone has probability 1
  std::sort(sorted.begin(), sorted.end(), std::greater<>());

  // Suffix sums: rest[t] = sum of sorted[t..n-1].
  // For t keys taken with probability 1, the threshold candidate is
  // tau(t) = rest[t] / (s - t); it is consistent iff
  //   sorted[t-1] >= tau(t) (taken keys really have p == 1) and
  //   sorted[t]    < tau(t) (remaining keys have p < 1).
  std::vector<double> rest(n + 1, 0.0);
  for (std::size_t i = n; i-- > 0;) rest[i] = rest[i + 1] + sorted[i];

  const std::size_t t_max =
      std::min(n - 1, static_cast<std::size_t>(std::floor(s)));
  for (std::size_t t = 0; t <= t_max; ++t) {
    const double denom = s - static_cast<double>(t);
    if (denom <= 0.0) break;
    const double tau = rest[t] / denom;
    const bool upper_ok = (t == 0) || (sorted[t - 1] >= tau);
    const bool lower_ok = sorted[t] < tau;
    if (upper_ok && lower_ok) return tau;
  }
  // Numerical fallback: bisection on the monotone function
  // f(tau) = sum_i min(1, w_i/tau) - s.
  double lo = 0.0, hi = rest[0] / s + 1.0;
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    double f = 0.0;
    for (Weight w : sorted) f += std::min(1.0, w / mid);
    if (f > s) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

double IppsProbabilities(const std::vector<Weight>& weights, double tau,
                         std::vector<double>* probs) {
  probs->resize(weights.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    (*probs)[i] = IppsProbability(weights[i], tau);
    sum += (*probs)[i];
  }
  return sum;
}

StreamTau::StreamTau(double s) : s_(s) { assert(s > 0.0); }

void StreamTau::Push(Weight w) {
  assert(w >= 0.0);
  ++count_;
  if (w <= 0.0) return;
  if (w < tau_) {
    light_total_ += w;
  } else {
    heap_.push(w);
  }
  // Restore the invariant tau = L / (s - |H|) with every heap element >= tau:
  // pop heap minima into the light side while the heap is over-full or its
  // minimum falls below the recomputed threshold.
  for (;;) {
    if (!heap_.empty() && static_cast<double>(heap_.size()) >= s_) {
      light_total_ += heap_.top();
      heap_.pop();
      continue;
    }
    const double denom = s_ - static_cast<double>(heap_.size());
    const double candidate = light_total_ / denom;
    if (!heap_.empty() && heap_.top() < candidate) {
      light_total_ += heap_.top();
      heap_.pop();
      continue;
    }
    tau_ = candidate;
    break;
  }
}

}  // namespace sas
