#include "core/ipps.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "core/simd.h"

namespace sas {

namespace {

/// Numerical fallback: bisection on the monotone function
/// f(tau) = sum_i min(1, w_i/tau) - s over the positive weights in
/// buf[0..n). Only reached when floating-point near-ties defeat the exact
/// candidate search.
double BisectTau(const Weight* buf, std::size_t n, double total, double s) {
  double lo = 0.0, hi = total / s + 1.0;
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    double f = 0.0;
    for (std::size_t i = 0; i < n; ++i) f += std::min(1.0, buf[i] / mid);
    if (f > s) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace

// With the weights sorted descending and rest[t] = sum of sorted[t..n-1],
// the threshold for t certainly-included keys is tau(t) = rest[t] / (s - t);
// it is consistent iff sorted[t-1] >= tau(t) and sorted[t] < tau(t). The
// smallest t whose *lower* condition holds automatically satisfies the upper
// one (if t-1 fails its lower check, sorted[t-1] * (s-t+1) >= rest[t-1]
// rearranges to sorted[t-1] >= tau(t)), and the lower condition is monotone
// in t — so the consistent t can be found by partition-based binary search
// over an unsorted buffer instead of a full sort: expected O(n) and
// allocation-free against a warm scratch.
double SolveTau(const Weight* weights, std::size_t n_in, double s,
                IppsScratch* scratch) {
  assert(s > 0.0);
  auto& buf = scratch->buf;
  buf.resize(n_in);
  std::size_t n = 0;
  double total = 0.0;
  Weight wmin = 0.0, wmax = 0.0;
  for (std::size_t i = 0; i < n_in; ++i) {
    const Weight w = weights[i];
    assert(w >= 0.0);
    if (w > 0.0) {
      if (n == 0) {
        wmin = wmax = w;
      } else {
        wmin = w < wmin ? w : wmin;
        wmax = w > wmax ? w : wmax;
      }
      total += w;
      buf[n++] = w;
    }
  }
  if (static_cast<double>(n) <= s) return 0.0;  // everyone has probability 1
  if (wmin == wmax) return total / s;  // all-equal: tau = n*w/s, exactly

  // Partition search: t* lies in [lo, hi]; elements left of lo are known
  // heavy (among the t* largest), elements right of hi are known light with
  // sum right_sum and maximum right_max.
  std::size_t lo = 0, hi = n;
  double right_sum = 0.0;
  Weight right_max = 0.0;
  constexpr std::size_t kSmallWindow = 32;
  while (hi - lo > kSmallWindow) {
    const std::size_t mid = lo + (hi - lo) / 2;
    std::nth_element(buf.begin() + lo, buf.begin() + mid, buf.begin() + hi,
                     std::greater<>());
    const double rest = simd::SuffixSum(buf.data(), mid, hi, right_sum);
    const double denom = s - static_cast<double>(mid);
    // t* <= floor(s) always, so a non-positive denominator means "go left".
    if (denom <= 0.0 || buf[mid] < rest / denom) {
      hi = mid;
      right_sum = rest;
      right_max = buf[mid];  // nth_element: the maximum of buf[mid..hi)
    } else {
      lo = mid + 1;
    }
  }

  // Resolve the remaining window by the classic scan over sorted candidates.
  std::sort(buf.begin() + lo, buf.begin() + hi, std::greater<>());
  double suffix[kSmallWindow + 1];
  suffix[hi - lo] = right_sum;
  for (std::size_t i = hi; i-- > lo;) {
    suffix[i - lo] = suffix[i - lo + 1] + buf[i];
  }
  for (std::size_t t = lo; t <= hi && t < n; ++t) {
    const double denom = s - static_cast<double>(t);
    if (denom <= 0.0) break;
    const double tau = suffix[t - lo] / denom;
    const Weight w_t = t < hi ? buf[t] : right_max;
    if (w_t < tau) return tau;
  }
  return BisectTau(buf.data(), n, total, s);
}

double SolveTau(const std::vector<Weight>& weights, double s,
                IppsScratch* scratch) {
  return SolveTau(weights.data(), weights.size(), s, scratch);
}

double SolveTau(const std::vector<Weight>& weights, double s) {
  thread_local IppsScratch scratch;
  return SolveTau(weights.data(), weights.size(), s, &scratch);
}

double IppsProbabilities(const std::vector<Weight>& weights, double tau,
                         std::vector<double>* probs) {
  probs->resize(weights.size());
  if (tau <= 0.0) {
    // Degenerate threshold ("include everything"): keep the branchy
    // per-element edge handling of IppsProbability.
    double sum = 0.0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      (*probs)[i] = IppsProbability(weights[i], tau);
      sum += (*probs)[i];
    }
    return sum;
  }
  return simd::FillIppsProbabilities(weights.data(), weights.size(), tau,
                                     probs->data());
}

StreamTau::StreamTau(double s) : s_(s) { assert(s > 0.0); }

void StreamTau::Push(Weight w) {
  assert(w >= 0.0);
  ++count_;
  if (w <= 0.0) return;
  if (w < tau_) {
    light_total_ += w;
  } else {
    heap_.push(w);
  }
  // Restore the invariant tau = L / (s - |H|) with every heap element >= tau:
  // pop heap minima into the light side while the heap is over-full or its
  // minimum falls below the recomputed threshold.
  for (;;) {
    if (!heap_.empty() && static_cast<double>(heap_.size()) >= s_) {
      light_total_ += heap_.top();
      heap_.pop();
      continue;
    }
    const double denom = s_ - static_cast<double>(heap_.size());
    const double candidate = light_total_ / denom;
    if (!heap_.empty() && heap_.top() < candidate) {
      light_total_ += heap_.top();
      heap_.pop();
      continue;
    }
    tau_ = candidate;
    break;
  }
}

}  // namespace sas
