// PAIR-AGGREGATE (Algorithm 1): the probabilistic-aggregation primitive.
//
// Each call touches exactly two probabilities pi, pj in (0,1), preserves
// their sum, agrees with them in expectation, and sets at least one of them
// to 0 or 1. A sequence of pair aggregations that sets every entry produces
// a VarOpt sample (Section 2); the *choice* of which pair to aggregate is
// free, and that freedom is what the structure-aware schemes exploit.

#ifndef SAS_CORE_PAIR_AGGREGATE_H_
#define SAS_CORE_PAIR_AGGREGATE_H_

#include <cstddef>
#include <vector>

#include "core/random.h"

namespace sas {

/// Probabilities within this distance of 0 or 1 are snapped to exactly 0 or
/// 1 after an aggregation step, so "is set" checks are exact.
inline constexpr double kProbEps = 1e-12;

/// True if p is settled (exactly 0 or 1 after snapping).
inline bool IsSet(double p) { return p == 0.0 || p == 1.0; }

/// Snaps values within kProbEps of {0,1} and clamps to [0,1].
double SnapProbability(double p);

/// Algorithm 1. Requires 0 < *pi < 1 and 0 < *pj < 1. On return, the sum
/// *pi + *pj is unchanged and at least one of them is exactly 0 or 1.
///
/// Case pi + pj < 1: all mass moves onto one key (the other is excluded);
///   the receiving key is i with probability pi / (pi + pj).
/// Case pi + pj >= 1: one key is included (set to 1) and the other keeps the
///   leftover pi + pj - 1; key i is the included one with probability
///   (1 - pj) / (2 - pi - pj).
void PairAggregate(double* pi, double* pj, Rng* rng);

/// Sentinel meaning "no open entry".
inline constexpr std::size_t kNoEntry = static_cast<std::size_t>(-1);

/// Sequentially pair-aggregates the open entries of *probs listed in
/// `indices` (skipping entries that are already set), starting from an
/// optional open carry entry. After each aggregation exactly one open entry
/// survives as the new carry. Returns the index of the final open entry, or
/// kNoEntry if everything is set.
///
/// This is the "one active key" scan shared by the order summarizer
/// (Algorithm 5), the per-group stage of the disjoint-range summarizer, and
/// the per-node stage of the hierarchy summarizers. It forwards to
/// ChainAggregateRange below with a local draw stream, so it consumes
/// exactly the same rng draws as the classic one-PairAggregate-per-merge
/// loop and leaves the rng in exactly the same state.
std::size_t ChainAggregate(std::vector<double>* probs,
                           const std::vector<std::size_t>& indices,
                           std::size_t carry, Rng* rng);

/// Batched fast path of the chain scan: consumes pre-generated blocks of
/// uniform draws from `draws` (one per merge, in merge order), keeps the
/// carry probability in a register so already-settled entries are skipped
/// without re-reading the vector, and settles each entry with a single
/// store. Aggregation arithmetic and draw consumption are bit-identical to
/// PairAggregate. `indices[0..count)` must be distinct and in range; `carry`
/// may be kNoEntry or an entry index (it may also already be settled).
///
/// Callers that run many chains in one pass (hierarchy and kd bottom-up
/// aggregation) should share a single RngStream across all of them and rely
/// on its Flush to reposition the underlying Rng once at the end.
std::size_t ChainAggregateRange(double* probs, const std::size_t* indices,
                                std::size_t count, std::size_t carry,
                                RngStream* draws);

/// Resolves a final open entry by a Bernoulli draw (needed only when the
/// initial probability mass was non-integral or drifted by floating point).
/// No-op when `entry` is kNoEntry.
void ResolveResidual(std::vector<double>* probs, std::size_t entry, Rng* rng);

/// Stream overload for fast-path callers, consuming the draw (if any) from
/// the same stream as the chain that produced `entry`.
void ResolveResidual(double* probs, std::size_t entry, RngStream* draws);

}  // namespace sas

#endif  // SAS_CORE_PAIR_AGGREGATE_H_
