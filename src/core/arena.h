// Monotonic arena allocator for build-time scratch memory.
//
// The kd builds and the IPPS fast paths run on every summary construction
// (and, since the sharded backend, once per shard plus once at merge), so
// their per-call heap traffic is a measurable constant factor. A
// MonotonicArena hands out bump-pointer allocations from a chain of large
// blocks and recycles the blocks on Reset(): after a warm-up build, a
// workspace that owns an arena serves every later build with zero heap
// allocations.
//
// Ownership rule (see README "Fast-path architecture"): the arena lives in a
// caller-owned scratch object (e.g. KdBuildScratch); memory returned by
// Allocate is valid until the next Reset(), and Reset() is called by the
// consuming build routine on entry — so at most one build may use a given
// arena at a time, and nothing may retain arena pointers across builds.

#ifndef SAS_CORE_ARENA_H_
#define SAS_CORE_ARENA_H_

#include <cstddef>
#include <memory>
#include <type_traits>
#include <vector>

namespace sas {

class MonotonicArena {
 public:
  explicit MonotonicArena(std::size_t first_block_bytes = std::size_t{1} << 16)
      : next_block_bytes_(first_block_bytes) {}

  MonotonicArena(const MonotonicArena&) = delete;
  MonotonicArena& operator=(const MonotonicArena&) = delete;

  /// Rewinds to the first block, keeping all capacity for reuse.
  void Reset() {
    block_ = 0;
    pos_ = 0;
  }

  /// Bump-allocates `bytes` with the given power-of-two alignment. The
  /// returned memory is uninitialized and owned by the arena.
  void* Allocate(std::size_t bytes, std::size_t align) {
    while (block_ < blocks_.size()) {
      Block& b = blocks_[block_];
      const std::size_t p = (pos_ + (align - 1)) & ~(align - 1);
      if (p + bytes <= b.size) {
        pos_ = p + bytes;
        return b.data.get() + p;
      }
      ++block_;
      pos_ = 0;
    }
    // No existing block fits: chain a new one, doubling so that a warm arena
    // has at most O(log total) blocks and Reset() reuse is near-contiguous.
    std::size_t want = next_block_bytes_;
    if (want < bytes + align) want = bytes + align;
    blocks_.push_back({std::make_unique<std::byte[]>(want), want});
    next_block_bytes_ = want * 2;
    block_ = blocks_.size() - 1;
    const std::size_t p =
        (0 + (align - 1)) & ~(align - 1);  // new[] is max-aligned already
    pos_ = p + bytes;
    return blocks_[block_].data.get() + p;
  }

  /// Uninitialized array of `count` trivially-destructible elements.
  template <typename T>
  T* AllocateArray(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is reclaimed without running destructors");
    return static_cast<T*>(Allocate(count * sizeof(T), alignof(T)));
  }

  /// Total bytes held across all blocks (capacity, not live allocations).
  std::size_t CapacityBytes() const {
    std::size_t total = 0;
    for (const Block& b : blocks_) total += b.size;
    return total;
  }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  std::vector<Block> blocks_;
  std::size_t block_ = 0;            // current block index
  std::size_t pos_ = 0;              // bump offset inside current block
  std::size_t next_block_bytes_;     // size of the next block to chain
};

}  // namespace sas

#endif  // SAS_CORE_ARENA_H_
