// Basic value types shared across the structure-aware sampling library.
//
// The data model follows Section 2 of the paper: the input is a set of
// (key, weight) pairs where each key lives in a structured domain (an order,
// a hierarchy, or a product of those).

#ifndef SAS_CORE_TYPES_H_
#define SAS_CORE_TYPES_H_

#include <cstdint>
#include <vector>

namespace sas {

/// Dense index of a key inside one dataset (0..n-1). Algorithms address keys
/// by this index; the mapping to domain coordinates lives in the dataset.
using KeyId = std::uint32_t;

/// Non-negative item weight (e.g. flow bytes, ticket counts).
using Weight = double;

/// Coordinate on one axis of a product domain (IP address, leaf rank, ...).
using Coord = std::uint64_t;

/// A point in a two-dimensional product domain.
struct Point2D {
  Coord x = 0;
  Coord y = 0;

  friend bool operator==(const Point2D&, const Point2D&) = default;
};

/// One input record: a key with its weight and (up to 2-D) location.
struct WeightedKey {
  KeyId id = 0;
  Weight weight = 0.0;
  Point2D pt;
};

/// A half-open interval [lo, hi) of coordinates on one axis.
struct Interval {
  Coord lo = 0;
  Coord hi = 0;  // exclusive

  bool Contains(Coord c) const { return c >= lo && c < hi; }
  Coord Length() const { return hi - lo; }
  bool Empty() const { return hi <= lo; }

  friend bool operator==(const Interval&, const Interval&) = default;
};

/// An axis-parallel box in a 2-D product domain: the range type of Section 4.
struct Box {
  Interval x;
  Interval y;

  bool Contains(const Point2D& p) const {
    return x.Contains(p.x) && y.Contains(p.y);
  }
  bool Empty() const { return x.Empty() || y.Empty(); }

  friend bool operator==(const Box&, const Box&) = default;
};

/// A query that spans several disjoint boxes (Section 6.1: "each query is
/// produced as a collection of non-overlapping rectangles").
struct MultiRangeQuery {
  std::vector<Box> boxes;
  /// Exact answer over the full data, filled by the query generator.
  Weight exact = 0.0;
};

}  // namespace sas

#endif  // SAS_CORE_TYPES_H_
