// Chernoff tail bounds for Poisson and VarOpt samples (Appendix A,
// Eqs. (2)-(4)). Both schemes satisfy these bounds; the tests use them to
// validate empirical sample-count distributions, and the analysis sections
// of the paper use them to translate discrepancy into estimation error.

#ifndef SAS_CORE_TAIL_BOUNDS_H_
#define SAS_CORE_TAIL_BOUNDS_H_

namespace sas {

/// Upper-tail bound: Pr[X >= a] <= e^{a-mu} (mu/a)^a for a >= mu
/// (the bracketed form of Eq. (2)). Returns 1 for a <= mu.
double ChernoffUpper(double mu, double a);

/// Lower-tail bound: Pr[X <= a] <= e^{a-mu} (mu/a)^a for a <= mu
/// (the bracketed form of Eq. (3)). Returns 1 for a >= mu. Handles a == 0
/// (bound e^{-mu}).
double ChernoffLower(double mu, double a);

/// Eq. (4): bound on Pr[estimate <= h] / Pr[estimate >= h] for the HT
/// estimate of a subset with true weight w under threshold tau:
///   e^{(h - w)/tau} (w/h)^{h/tau}.
double EstimateTailBound(double w, double h, double tau);

}  // namespace sas

#endif  // SAS_CORE_TAIL_BOUNDS_H_
