// Process-wide telemetry: lock-free metric instruments, log-bucketed
// latency histograms, and RAII span tracing for the live serving stack.
// Where the offline eval harness answers "how accurate is a summary", this
// subsystem answers "what is the p99 seal latency, how deep are the shard
// queues, how often does the window query cache hit" on a running process.
//
// Design, in the spirit of core/fault.h:
//
//   * A global string-keyed registry hands out stable instrument pointers.
//     Registration is cold (mutex + map); engines resolve their instruments
//     once at construction and keep raw pointers. Instruments are never
//     destroyed, so a cached pointer is valid for the process lifetime.
//   * Instruments are lock-free and cache-line padded: Counter and Gauge
//     are one relaxed atomic each; Histogram is a row of relaxed atomic
//     log2 buckets plus count/sum/max, so concurrent observers never take
//     a lock and concurrent counts sum exactly.
//   * Every hot site is guarded: `if (telemetry::Enabled())` is one relaxed
//     atomic load and a predictable branch, the entire cost of a disarmed
//     build. Arming is global (SetEnabled / the SAS_TELEMETRY environment
//     variable) with a per-builder opt-out (SummarizerConfig::telemetry).
//   * Span is an RAII timer: construction stamps a start time, destruction
//     feeds the elapsed nanoseconds into a Histogram and appends a trace
//     event to a fixed-size per-thread ring. ChromeTraceJson() exports the
//     rings in Chrome trace-event JSON (chrome://tracing, Perfetto).
//   * CaptureSnapshot() returns a structured, diff-able TelemetrySnapshot;
//     ToPrometheus()/ToJson() render it. Fault-injection hit counters
//     (core/fault.h) are re-exported into the snapshot as
//     `sas.fault.hits.<site>` so chaos runs are observable like any other
//     metric.
//
// Naming grammar: `sas.<layer>.<metric>` (docs/observability.md catalogs
// every instrument). The Prometheus exporter rewrites '.'/'-' to '_'.
//
// Timing discipline: ambient clocks live HERE and nowhere else — sas-lint
// rule `timing-confined` keeps std::chrono clock calls out of the rest of
// src/, so build determinism never depends on wall time (telemetry only
// observes; it never feeds RNG or build state).
//
// Thread-safety: all instrument mutation paths are safe from any number of
// threads. A snapshot is per-instrument atomic, not cross-instrument
// consistent (counters read mid-update may be ahead of a related gauge);
// diffing two snapshots bounds any skew to the capture instants.

#ifndef SAS_CORE_TELEMETRY_H_
#define SAS_CORE_TELEMETRY_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace sas {

class FaultInjector;

namespace telemetry {

namespace internal {
extern std::atomic<bool> g_enabled;
}  // namespace internal

/// True when telemetry is armed process-wide. One relaxed atomic load —
/// the full per-site cost of a disarmed build. Armed from the
/// SAS_TELEMETRY environment variable (any non-empty value but "0") or
/// SetEnabled().
inline bool Enabled() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}

/// Arms or disarms telemetry process-wide. Instruments keep their values
/// across disable/enable (Reset() on the registry clears them).
void SetEnabled(bool on);

/// Monotonically increasing event count. Inc/Add are relaxed atomic adds:
/// wait-free, exact under any interleaving.
class alignas(64) Counter {
 public:
  void Inc(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  void Reset() { value_.store(0, std::memory_order_relaxed); }
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous level (queue depth, live buckets). Signed so transient
/// dec-before-inc interleavings cannot wrap.
class alignas(64) Gauge {
 public:
  void Set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(std::int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Sub(std::int64_t n) { value_.fetch_sub(n, std::memory_order_relaxed); }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  void Reset() { value_.store(0, std::memory_order_relaxed); }
  std::atomic<std::int64_t> value_{0};
};

/// Number of log2 buckets a Histogram carries: bucket 0 holds the value 0
/// and bucket b >= 1 holds [2^(b-1), 2^b), so 65 buckets cover the whole
/// uint64 range with <= 2x relative quantile error.
inline constexpr int kHistogramBuckets = 65;

struct HistogramSnap;

/// Log-bucketed distribution of non-negative integer values (latencies in
/// nanoseconds, batch sizes, fan-ins). Observe is a handful of relaxed
/// atomic adds plus a CAS loop for the max; no locks, no allocation.
class alignas(64) Histogram {
 public:
  void Observe(std::uint64_t value);

  /// Copies count/sum/max and the raw buckets into `out` (name untouched).
  /// Per-field atomic, not a consistent cut — see the header comment.
  void SnapshotTo(HistogramSnap* out) const;

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t max() const { return max_.load(std::memory_order_relaxed); }

  /// Index of the bucket `value` lands in (bit-width of the value).
  static int BucketOf(std::uint64_t value);
  /// Smallest value bucket `b` holds (0, then 2^(b-1)).
  static std::uint64_t BucketFloor(int b);

 private:
  friend class Registry;
  void Reset();
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
  std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets_{};
};

/// Point-in-time value of one Counter (or one re-exported external counter
/// such as a fault-site hit count).
struct CounterSnap {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeSnap {
  std::string name;
  std::int64_t value = 0;
};

/// Point-in-time copy of one Histogram, carrying the raw buckets so that a
/// diff of two snapshots can re-derive interval percentiles.
struct HistogramSnap {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;
  std::array<std::uint64_t, kHistogramBuckets> buckets{};

  /// Quantile q in [0, 1] estimated by linear interpolation inside the
  /// log2 bucket holding the target rank (exact bucket, <= 2x value
  /// error); q = 1 returns the exact observed max. 0 when empty.
  double Quantile(double q) const;
};

/// Structured export of every instrument: capture with CaptureSnapshot(),
/// render with ToPrometheus()/ToJson(), and difference two captures with
/// DiffSince() to scope rates and percentiles to an interval.
struct TelemetrySnapshot {
  std::vector<CounterSnap> counters;      // sorted by name
  std::vector<GaugeSnap> gauges;          // sorted by name
  std::vector<HistogramSnap> histograms;  // sorted by name

  /// This snapshot minus `earlier`: counters and histogram buckets
  /// subtract (names missing from `earlier` keep their full value), gauges
  /// keep the current level (a gauge has no meaningful delta). Histogram
  /// max is the later max — a per-interval max would need per-interval
  /// tracking the lock-free instrument deliberately does not carry.
  TelemetrySnapshot DiffSince(const TelemetrySnapshot& earlier) const;
};

/// The string-keyed instrument registry. Get* return a stable pointer,
/// creating the instrument on first use; looking a name up as the wrong
/// kind throws std::logic_error (names are typed once, process-wide).
class Registry {
 public:
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Zeroes every registered instrument (tests; instruments stay
  /// registered and pointers stay valid).
  void ResetValues();

  /// Copies every registered instrument into a snapshot (sorted by name).
  /// CaptureSnapshot() below layers the fault-site re-export on top.
  TelemetrySnapshot Capture();

  /// The process-wide registry. First use arms telemetry when the
  /// SAS_TELEMETRY environment variable is set non-empty (and not "0").
  static Registry& Global();

 private:
  struct Impl;
  Impl* impl();  // lazily built; never destroyed
  // sas-lint: allow(atomic-publication): write-once lazy-init pointer that
  // is never retired or swapped, so there is nothing to reclaim — the
  // epoch protocol the rule protects does not apply.
  std::atomic<Impl*> impl_{nullptr};
};

/// Shorthands on the global registry (cold path: resolve once, cache the
/// pointer).
Counter* GetCounter(const std::string& name);
Gauge* GetGauge(const std::string& name);
Histogram* GetHistogram(const std::string& name);

/// Monotonic nanosecond clock for span timing (steady_clock under the
/// hood; the one sanctioned ambient-clock call site in the library).
std::uint64_t NowNs();

/// RAII latency timer: stamps a start time at construction when telemetry
/// is armed (and `armed` is true — pass a builder's config toggle there),
/// and on destruction feeds the elapsed nanoseconds into `hist` (when non
/// null) and appends a trace event to the calling thread's ring. `name`
/// must point at storage that outlives the export (string literals).
/// Disarmed cost: the Enabled() load and a branch.
class Span {
 public:
  explicit Span(const char* name, Histogram* hist = nullptr,
                bool armed = true)
      : name_(name), hist_(hist) {
    if (armed && Enabled()) {
      start_ns_ = NowNs();
      live_ = true;
    }
  }
  ~Span() { if (live_) Finish(); }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Elapsed nanoseconds so far (0 when the span is disarmed).
  std::uint64_t ElapsedNs() const { return live_ ? NowNs() - start_ns_ : 0; }

 private:
  void Finish();
  const char* name_;
  Histogram* hist_;
  std::uint64_t start_ns_ = 0;
  bool live_ = false;
};

/// Events one thread's ring can hold before wrapping (oldest overwritten).
inline constexpr std::size_t kSpanRingCapacity = 4096;
/// Thread rings retained process-wide; threads beyond the cap still feed
/// histograms but record no trace events (the sharded wrapper spawns a
/// fresh worker set per builder, so rings are capped, not per-thread
/// forever).
inline constexpr std::size_t kMaxSpanRings = 64;

/// Captures every registered instrument, then re-exports the fault
/// injector's per-site hit counters as `sas.fault.hits.<site>` counters —
/// from `faults` when non-null, else the global injector (mirroring the
/// FaultPoint resolution rule).
TelemetrySnapshot CaptureSnapshot(const FaultInjector* faults = nullptr);

/// Prometheus text exposition: counters/gauges under their sanitized names
/// ('.'/'-' become '_'), histograms as summaries with p50/p90/p99 quantile
/// lines plus _sum/_count/_max.
std::string ToPrometheus(const TelemetrySnapshot& snap);

/// JSON object {"counters": {...}, "gauges": {...}, "histograms": {name:
/// {count, sum, max, p50, p90, p99}}} — the format tools/sas_stats.py
/// renders and diffs.
std::string ToJson(const TelemetrySnapshot& snap);

/// Chrome trace-event JSON ({"traceEvents": [...]}) of every thread ring,
/// timestamps rebased to the earliest recorded span. Load in
/// chrome://tracing or Perfetto.
std::string ChromeTraceJson();

/// Drops every recorded trace event (rings stay registered).
void ClearTraceEvents();

}  // namespace telemetry
}  // namespace sas

#endif  // SAS_CORE_TELEMETRY_H_
