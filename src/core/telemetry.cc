#include "core/telemetry.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>

#include "core/fault.h"

namespace sas {
namespace telemetry {

namespace internal {
std::atomic<bool> g_enabled{false};
}  // namespace internal

void SetEnabled(bool on) {
  internal::g_enabled.store(on, std::memory_order_relaxed);
}

std::uint64_t NowNs() {
  // The library's one sanctioned ambient-clock read (sas-lint rule
  // timing-confined): steady so span durations never go backwards across
  // NTP slews.
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// ---------------------------------------------------------------------------
// Histogram

int Histogram::BucketOf(std::uint64_t value) {
  // bit_width(0) == 0, bit_width(2^k) == k+1: bucket b >= 1 spans
  // [2^(b-1), 2^b), bucket 0 holds exactly the value 0.
  return std::bit_width(value);
}

std::uint64_t Histogram::BucketFloor(int b) {
  if (b <= 0) return 0;
  return std::uint64_t{1} << (b - 1);
}

void Histogram::Observe(std::uint64_t value) {
  buckets_[static_cast<std::size_t>(BucketOf(value))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  std::uint64_t seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

void Histogram::SnapshotTo(HistogramSnap* out) const {
  out->count = count();
  out->sum = sum();
  out->max = max();
  for (int b = 0; b < kHistogramBuckets; ++b) {
    out->buckets[static_cast<std::size_t>(b)] =
        buckets_[static_cast<std::size_t>(b)].load(std::memory_order_relaxed);
  }
}

void Histogram::Reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

double HistogramSnap::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  if (q >= 1.0) return static_cast<double>(max);
  // Rank of the target observation (1-based ceil, the "nearest-rank"
  // definition), then a cumulative walk to the bucket holding it.
  const double target = q * static_cast<double>(count);
  std::uint64_t rank = static_cast<std::uint64_t>(std::ceil(target));
  if (rank == 0) rank = 1;
  std::uint64_t cum = 0;
  for (int b = 0; b < kHistogramBuckets; ++b) {
    const std::uint64_t in_bucket = buckets[static_cast<std::size_t>(b)];
    if (in_bucket == 0) continue;
    if (cum + in_bucket < rank) {
      cum += in_bucket;
      continue;
    }
    // Linear interpolation across the bucket's value span by the rank's
    // position inside the bucket; the top bucket is clamped by the
    // observed max so a lone huge outlier doesn't report 2x itself.
    const double lo = static_cast<double>(Histogram::BucketFloor(b));
    double hi = b == 0 ? 0.0
                       : static_cast<double>(Histogram::BucketFloor(b + 1));
    hi = std::min(hi, static_cast<double>(max));
    if (hi < lo) hi = lo;
    const double frac = static_cast<double>(rank - cum) /
                        static_cast<double>(in_bucket);
    return lo + (hi - lo) * frac;
  }
  return static_cast<double>(max);
}

// ---------------------------------------------------------------------------
// Span rings / trace events

namespace {

struct TraceEvent {
  const char* name = nullptr;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
};

// One thread's fixed-size trace buffer. Spans append under the ring mutex —
// uncontended in steady state (each ring has exactly one writer thread;
// the lock exists so exports are TSan-clean and tear-free) — wrapping over
// the oldest events once full.
struct SpanRing {
  std::mutex mu;
  std::uint64_t tid = 0;
  std::array<TraceEvent, kSpanRingCapacity> events;
  std::size_t size = 0;  // events recorded, capped at capacity
  std::size_t next = 0;  // wrap cursor

  void Record(const char* name, std::uint64_t start_ns, std::uint64_t dur_ns) {
    std::lock_guard<std::mutex> lock(mu);
    events[next] = {name, start_ns, dur_ns};
    next = (next + 1) % kSpanRingCapacity;
    size = std::min(size + 1, kSpanRingCapacity);
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mu);
    size = 0;
    next = 0;
  }
};

struct RingTable {
  std::mutex mu;
  std::vector<std::shared_ptr<SpanRing>> rings;
  std::uint64_t next_tid = 1;
};

RingTable& Rings() {
  static RingTable* table = new RingTable();
  return *table;
}

// The calling thread's ring, registered on first span. Null once the
// process-wide ring cap is reached — such threads still feed histograms,
// they just record no trace events.
SpanRing* ThreadRing() {
  thread_local std::shared_ptr<SpanRing> ring = [] {
    RingTable& table = Rings();
    std::lock_guard<std::mutex> lock(table.mu);
    if (table.rings.size() >= kMaxSpanRings) {
      return std::shared_ptr<SpanRing>();
    }
    auto r = std::make_shared<SpanRing>();
    r->tid = table.next_tid++;
    table.rings.push_back(r);
    return r;
  }();
  return ring.get();
}

void AppendJsonEscaped(std::string* out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out->push_back(' ');
    } else {
      out->push_back(c);
    }
  }
}

// Prometheus metric names admit [a-zA-Z0-9_:]; the registry's dotted
// `sas.<layer>.<metric>` grammar (and any '-' inside a fault-site suffix)
// maps onto it by substitution.
std::string PromName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  return out;
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

void Span::Finish() {
  const std::uint64_t end_ns = NowNs();
  const std::uint64_t dur = end_ns - start_ns_;
  if (hist_ != nullptr) hist_->Observe(dur);
  if (SpanRing* ring = ThreadRing()) ring->Record(name_, start_ns_, dur);
}

std::string ChromeTraceJson() {
  // Snapshot every ring under its own lock, then rebase timestamps to the
  // earliest span so the trace opens at t=0 in chrome://tracing.
  struct Flat {
    TraceEvent ev;
    std::uint64_t tid;
  };
  std::vector<Flat> all;
  {
    RingTable& table = Rings();
    std::lock_guard<std::mutex> table_lock(table.mu);
    for (const auto& ring : table.rings) {
      std::lock_guard<std::mutex> lock(ring->mu);
      // Oldest-first: when wrapped, the cursor points at the oldest entry.
      const std::size_t n = ring->size;
      const std::size_t begin =
          n == kSpanRingCapacity ? ring->next : 0;
      for (std::size_t i = 0; i < n; ++i) {
        all.push_back(
            {ring->events[(begin + i) % kSpanRingCapacity], ring->tid});
      }
    }
  }
  std::uint64_t base = ~std::uint64_t{0};
  for (const Flat& f : all) base = std::min(base, f.ev.start_ns);
  if (all.empty()) base = 0;

  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const Flat& f : all) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"name\":\"";
    AppendJsonEscaped(&out, f.ev.name);
    // Chrome trace timestamps and durations are microseconds.
    out += "\",\"ph\":\"X\",\"ts\":";
    out += FormatDouble(static_cast<double>(f.ev.start_ns - base) / 1000.0);
    out += ",\"dur\":";
    out += FormatDouble(static_cast<double>(f.ev.dur_ns) / 1000.0);
    out += ",\"pid\":1,\"tid\":";
    out += std::to_string(f.tid);
    out += "}";
  }
  out += "]}";
  return out;
}

void ClearTraceEvents() {
  RingTable& table = Rings();
  std::lock_guard<std::mutex> table_lock(table.mu);
  for (const auto& ring : table.rings) ring->Clear();
}

// ---------------------------------------------------------------------------
// Registry

struct Registry::Impl {
  std::mutex mu;
  // std::map: node-based, so instrument addresses are stable across
  // inserts; values are unique_ptrs anyway for alignment-safe ownership.
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

Registry::Impl* Registry::impl() {
  Impl* existing = impl_.load(std::memory_order_acquire);
  if (existing != nullptr) return existing;
  auto* fresh = new Impl();
  if (impl_.compare_exchange_strong(existing, fresh,
                                    std::memory_order_acq_rel)) {
    return fresh;
  }
  delete fresh;
  return existing;
}

namespace {

// Insert-or-find under the caller-held registry lock; a name already
// registered in one of the `other` maps is a programming error (each name
// is typed once, process-wide).
template <typename T, typename Map, typename MapA, typename MapB>
T* GetInstrument(Map& own, const MapA& other_a, const MapB& other_b,
                 const std::string& name, const char* kind) {
  auto it = own.find(name);
  if (it != own.end()) return it->second.get();
  if (other_a.count(name) > 0 || other_b.count(name) > 0) {
    throw std::logic_error("telemetry: instrument '" + name +
                           "' already registered as a different kind than " +
                           kind);
  }
  auto inserted = own.emplace(name, std::make_unique<T>());
  return inserted.first->second.get();
}

}  // namespace

Counter* Registry::GetCounter(const std::string& name) {
  Impl* im = impl();
  std::lock_guard<std::mutex> lock(im->mu);
  return GetInstrument<Counter>(im->counters, im->gauges, im->histograms,
                                name, "counter");
}

Gauge* Registry::GetGauge(const std::string& name) {
  Impl* im = impl();
  std::lock_guard<std::mutex> lock(im->mu);
  return GetInstrument<Gauge>(im->gauges, im->counters, im->histograms, name,
                              "gauge");
}

Histogram* Registry::GetHistogram(const std::string& name) {
  Impl* im = impl();
  std::lock_guard<std::mutex> lock(im->mu);
  return GetInstrument<Histogram>(im->histograms, im->counters, im->gauges,
                                  name, "histogram");
}

void Registry::ResetValues() {
  Impl* im = impl();
  std::lock_guard<std::mutex> lock(im->mu);
  for (auto& [name, c] : im->counters) c->Reset();
  for (auto& [name, g] : im->gauges) g->Reset();
  for (auto& [name, h] : im->histograms) h->Reset();
}

Registry& Registry::Global() {
  static Registry* registry = [] {
    const char* env = std::getenv("SAS_TELEMETRY");
    if (env != nullptr && env[0] != '\0' &&
        !(env[0] == '0' && env[1] == '\0')) {
      SetEnabled(true);
    }
    return new Registry();
  }();
  return *registry;
}

Counter* GetCounter(const std::string& name) {
  return Registry::Global().GetCounter(name);
}

Gauge* GetGauge(const std::string& name) {
  return Registry::Global().GetGauge(name);
}

Histogram* GetHistogram(const std::string& name) {
  return Registry::Global().GetHistogram(name);
}

// ---------------------------------------------------------------------------
// Snapshot + exporters

TelemetrySnapshot Registry::Capture() {
  TelemetrySnapshot snap;
  Impl* im = impl();
  std::lock_guard<std::mutex> lock(im->mu);
  snap.counters.reserve(im->counters.size());
  for (const auto& [name, c] : im->counters) {
    snap.counters.push_back({name, c->value()});
  }
  snap.gauges.reserve(im->gauges.size());
  for (const auto& [name, g] : im->gauges) {
    snap.gauges.push_back({name, g->value()});
  }
  snap.histograms.reserve(im->histograms.size());
  for (const auto& [name, h] : im->histograms) {
    HistogramSnap hs;
    hs.name = name;
    h->SnapshotTo(&hs);
    snap.histograms.push_back(std::move(hs));
  }
  return snap;
}

TelemetrySnapshot CaptureSnapshot(const FaultInjector* faults) {
  TelemetrySnapshot snap = Registry::Global().Capture();
  // Re-export fault-site hit counters (core/fault.h keeps them per rule;
  // HitCounts aggregates per site) under the same naming grammar, resolved
  // local-else-global like FaultPoint itself.
  const FaultInjector& fi =
      faults != nullptr ? *faults : FaultInjector::Global();
  for (const auto& [site, hits] : fi.HitCounts()) {
    snap.counters.push_back({"sas.fault.hits." + site, hits});
  }
  std::sort(snap.counters.begin(), snap.counters.end(),
            [](const CounterSnap& a, const CounterSnap& b) {
              return a.name < b.name;
            });
  return snap;
}

TelemetrySnapshot TelemetrySnapshot::DiffSince(
    const TelemetrySnapshot& earlier) const {
  TelemetrySnapshot out = *this;
  for (CounterSnap& c : out.counters) {
    for (const CounterSnap& e : earlier.counters) {
      if (e.name == c.name) {
        c.value -= std::min(e.value, c.value);
        break;
      }
    }
  }
  for (HistogramSnap& h : out.histograms) {
    for (const HistogramSnap& e : earlier.histograms) {
      if (e.name != h.name) continue;
      h.count -= std::min(e.count, h.count);
      h.sum -= std::min(e.sum, h.sum);
      for (int b = 0; b < kHistogramBuckets; ++b) {
        auto& mine = h.buckets[static_cast<std::size_t>(b)];
        mine -= std::min(e.buckets[static_cast<std::size_t>(b)], mine);
      }
      break;
    }
  }
  return out;
}

std::string ToPrometheus(const TelemetrySnapshot& snap) {
  std::string out;
  for (const CounterSnap& c : snap.counters) {
    const std::string name = PromName(c.name);
    out += "# TYPE " + name + " counter\n";
    out += name + " " + std::to_string(c.value) + "\n";
  }
  for (const GaugeSnap& g : snap.gauges) {
    const std::string name = PromName(g.name);
    out += "# TYPE " + name + " gauge\n";
    out += name + " " + std::to_string(g.value) + "\n";
  }
  for (const HistogramSnap& h : snap.histograms) {
    const std::string name = PromName(h.name);
    out += "# TYPE " + name + " summary\n";
    out += name + "{quantile=\"0.5\"} " + FormatDouble(h.Quantile(0.5)) + "\n";
    out += name + "{quantile=\"0.9\"} " + FormatDouble(h.Quantile(0.9)) + "\n";
    out +=
        name + "{quantile=\"0.99\"} " + FormatDouble(h.Quantile(0.99)) + "\n";
    out += name + "_sum " + std::to_string(h.sum) + "\n";
    out += name + "_count " + std::to_string(h.count) + "\n";
    out += "# TYPE " + name + "_max gauge\n";
    out += name + "_max " + std::to_string(h.max) + "\n";
  }
  return out;
}

std::string ToJson(const TelemetrySnapshot& snap) {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const CounterSnap& c : snap.counters) {
    if (!first) out.push_back(',');
    first = false;
    out += "\"";
    AppendJsonEscaped(&out, c.name.c_str());
    out += "\":" + std::to_string(c.value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const GaugeSnap& g : snap.gauges) {
    if (!first) out.push_back(',');
    first = false;
    out += "\"";
    AppendJsonEscaped(&out, g.name.c_str());
    out += "\":" + std::to_string(g.value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const HistogramSnap& h : snap.histograms) {
    if (!first) out.push_back(',');
    first = false;
    out += "\"";
    AppendJsonEscaped(&out, h.name.c_str());
    out += "\":{\"count\":" + std::to_string(h.count);
    out += ",\"sum\":" + std::to_string(h.sum);
    out += ",\"max\":" + std::to_string(h.max);
    out += ",\"p50\":" + FormatDouble(h.Quantile(0.5));
    out += ",\"p90\":" + FormatDouble(h.Quantile(0.9));
    out += ",\"p99\":" + FormatDouble(h.Quantile(0.99));
    out += "}";
  }
  out += "}}";
  return out;
}

}  // namespace telemetry
}  // namespace sas
