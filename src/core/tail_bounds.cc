#include "core/tail_bounds.h"

#include <algorithm>
#include <cmath>

namespace sas {

double ChernoffUpper(double mu, double a) {
  if (a <= mu) return 1.0;
  if (mu <= 0.0) return 0.0;
  // exp(a - mu + a * ln(mu / a)), computed in log space for stability.
  const double log_b = (a - mu) + a * std::log(mu / a);
  return std::min(1.0, std::exp(log_b));
}

double ChernoffLower(double mu, double a) {
  if (a >= mu) return 1.0;
  if (a < 0.0) return 0.0;
  if (a == 0.0) return std::exp(-mu);
  const double log_b = (a - mu) + a * std::log(mu / a);
  return std::min(1.0, std::exp(log_b));
}

double EstimateTailBound(double w, double h, double tau) {
  if (tau <= 0.0) return 0.0;  // exact summary: no deviation possible
  if (w <= 0.0 || h <= 0.0) return 1.0;
  const double log_b = (h - w) / tau + (h / tau) * std::log(w / h);
  return std::min(1.0, std::exp(log_b));
}

}  // namespace sas
