#include "core/fault.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <thread>

namespace sas {
namespace {

// One parsed clause of the spec, e.g. "shard.worker.batch#0=fail@2/3".
// Splits on the first '=' into site[#lane] and action@N[/K][:USEC].
struct ParsedClause {
  std::string site;
  std::int64_t lane = -1;
  bool is_delay = false;
  std::uint64_t nth = 1;
  std::uint64_t every = 0;
  std::uint64_t delay_us = 0;
};

[[noreturn]] void BadClause(const std::string& clause, const char* why) {
  throw std::invalid_argument("SAS_FAULTS: bad clause '" + clause + "': " +
                              why);
}

std::uint64_t ParseCount(const std::string& clause, const std::string& text,
                         const char* what) {
  if (text.empty()) BadClause(clause, what);
  std::uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') BadClause(clause, what);
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return value;
}

ParsedClause ParseClause(const std::string& clause) {
  ParsedClause out;
  const std::size_t eq = clause.find('=');
  if (eq == std::string::npos || eq == 0) {
    BadClause(clause, "expected site=action");
  }
  std::string site = clause.substr(0, eq);
  const std::size_t hash = site.find('#');
  if (hash != std::string::npos) {
    out.lane = static_cast<std::int64_t>(
        ParseCount(clause, site.substr(hash + 1), "lane must be a number"));
    site.resize(hash);
  }
  if (site.empty()) BadClause(clause, "empty site name");
  out.site = site;

  std::string action = clause.substr(eq + 1);
  const std::size_t at = action.find('@');
  if (at == std::string::npos) BadClause(clause, "expected action@N");
  const std::string verb = action.substr(0, at);
  std::string sched = action.substr(at + 1);
  if (verb == "fail") {
    out.is_delay = false;
  } else if (verb == "delay") {
    out.is_delay = true;
    const std::size_t colon = sched.find(':');
    if (colon == std::string::npos) {
      BadClause(clause, "delay needs a :USEC suffix");
    }
    out.delay_us = ParseCount(clause, sched.substr(colon + 1),
                              "delay microseconds must be a number");
    sched.resize(colon);
  } else {
    BadClause(clause, "action must be 'fail' or 'delay'");
  }
  const std::size_t slash = sched.find('/');
  if (slash != std::string::npos) {
    out.every = ParseCount(clause, sched.substr(slash + 1),
                           "period K must be a number");
    if (out.every == 0) BadClause(clause, "period K must be >= 1");
    sched.resize(slash);
  }
  out.nth = ParseCount(clause, sched, "hit ordinal N must be a number");
  if (out.nth == 0) BadClause(clause, "hit ordinal N is 1-based");
  return out;
}

// A rule fires on hit ordinal `nth` and, when `every` is set, on every
// `every`-th hit after that. Pure function of the counter, so schedules
// replay identically across runs.
bool Due(std::uint64_t n, std::uint64_t nth, std::uint64_t every) {
  if (n == nth) return true;
  return every > 0 && n > nth && (n - nth) % every == 0;
}

}  // namespace

FaultInjectionError::FaultInjectionError(const std::string& site,
                                         std::uint64_t hit)
    : std::runtime_error("injected fault at site '" + site + "' (hit " +
                         std::to_string(hit) + ")"),
      site_(site),
      hit_(hit) {}

void FaultInjector::Configure(const std::string& spec) {
  std::vector<std::unique_ptr<Rule>> parsed;
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    std::size_t end = spec.find(';', begin);
    if (end == std::string::npos) end = spec.size();
    const std::string clause = spec.substr(begin, end - begin);
    begin = end + 1;
    if (clause.empty()) continue;
    const ParsedClause pc = ParseClause(clause);
    auto rule = std::make_unique<Rule>();
    rule->site = pc.site;
    rule->lane = pc.lane;
    rule->is_delay = pc.is_delay;
    rule->nth = pc.nth;
    rule->every = pc.every;
    rule->delay_us = pc.delay_us;
    parsed.push_back(std::move(rule));
  }
  rules_ = std::move(parsed);
  fired_.store(0, std::memory_order_relaxed);
  armed_.store(!rules_.empty(), std::memory_order_relaxed);
}

void FaultInjector::Clear() {
  rules_.clear();
  fired_.store(0, std::memory_order_relaxed);
  armed_.store(false, std::memory_order_relaxed);
}

bool FaultInjector::PollImpl(const char* site, std::int64_t lane,
                             std::uint64_t* hit_out) {
  bool fail_due = false;
  for (const auto& rule : rules_) {
    if (rule->site != site) continue;
    if (rule->lane >= 0 && rule->lane != lane) continue;
    const std::uint64_t n =
        rule->hits.fetch_add(1, std::memory_order_relaxed) + 1;
    if (!Due(n, rule->nth, rule->every)) continue;
    fired_.fetch_add(1, std::memory_order_relaxed);
    if (rule->is_delay) {
      std::this_thread::sleep_for(std::chrono::microseconds(rule->delay_us));
    } else if (!fail_due) {
      fail_due = true;
      if (hit_out != nullptr) *hit_out = n;
    }
  }
  return fail_due;
}

void FaultInjector::Hit(const char* site, std::int64_t lane) {
  std::uint64_t hit = 0;
  if (PollImpl(site, lane, &hit)) throw FaultInjectionError(site, hit);
}

bool FaultInjector::Poll(const char* site, std::int64_t lane) {
  return PollImpl(site, lane, nullptr);
}

std::uint64_t FaultInjector::HitCount(const std::string& site) const {
  std::uint64_t total = 0;
  for (const auto& rule : rules_) {
    if (rule->site == site) {
      total += rule->hits.load(std::memory_order_relaxed);
    }
  }
  return total;
}

std::vector<std::pair<std::string, std::uint64_t>> FaultInjector::HitCounts()
    const {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  for (const auto& rule : rules_) {
    const std::uint64_t hits = rule->hits.load(std::memory_order_relaxed);
    auto it = std::find_if(out.begin(), out.end(), [&](const auto& p) {
      return p.first == rule->site;
    });
    if (it == out.end()) {
      out.emplace_back(rule->site, hits);
    } else {
      it->second += hits;
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = [] {
    auto* fi = new FaultInjector();
    const char* spec = std::getenv("SAS_FAULTS");
    if (spec != nullptr && spec[0] != '\0') fi->Configure(spec);
    return fi;
  }();
  return *injector;
}

}  // namespace sas
