// IPPS (Inclusion Probability Proportional to Size) threshold computation.
//
// A sampling scheme is IPPS for threshold tau when key i is included with
// probability p_i = min{1, w_i / tau}. For a target expected sample size s,
// tau_s solves sum_i min{1, w_i / tau_s} = s (Appendix A of the paper).
//
// Two implementations are provided:
//  * SolveTau        — exact offline solver over a weight vector. The solver
//                      is selection-based (std::nth_element over a reusable
//                      IppsScratch workspace): expected O(n) instead of the
//                      classic sort-based O(n log n), with zero steady-state
//                      allocations. It runs on every StreamVarOpt overflow
//                      resolution, every MergeSamples, and every summary
//                      build, so its constant factor matters.
//  * StreamTau       — Algorithm 4: one-pass streaming tracker using a heap
//                      of at most s weights and O(s) memory.

#ifndef SAS_CORE_IPPS_H_
#define SAS_CORE_IPPS_H_

#include <cstddef>
#include <queue>
#include <vector>

#include "core/types.h"

namespace sas {

/// Inclusion probability of weight w under threshold tau. A threshold of 0
/// means "include everything" (arises when s >= number of keys).
inline double IppsProbability(Weight w, double tau) {
  if (tau <= 0.0) return w > 0.0 ? 1.0 : 0.0;
  const double p = w / tau;
  return p >= 1.0 ? 1.0 : p;
}

/// Reusable workspace for SolveTau. The buffer grows to the largest input
/// seen and is then reused, so a caller that keeps one scratch alive pays no
/// allocations in steady state. A scratch may be reused freely across calls
/// but must not be shared by concurrent calls.
struct IppsScratch {
  std::vector<Weight> buf;
};

/// Exact offline IPPS threshold: returns tau such that
/// sum_i min{1, w_i/tau} == s. If s >= (number of positive weights), returns
/// 0 (every key has probability 1). Requires s > 0 and all weights >= 0.
///
/// Expected O(n) via quickselect-style partitioning of `scratch->buf`
/// (the input is not modified). Exact early-outs cover the boundary inputs
/// that used to fall through to bisection: all-equal positive weights
/// (tau = total/s) and s >= n after zero-filtering (tau = 0).
double SolveTau(const Weight* weights, std::size_t n, double s,
                IppsScratch* scratch);

/// Convenience overloads. The vector-only form uses an internal thread-local
/// scratch, so it is also allocation-free in steady state.
double SolveTau(const std::vector<Weight>& weights, double s,
                IppsScratch* scratch);
double SolveTau(const std::vector<Weight>& weights, double s);

/// Fills `probs` with min{1, w_i/tau}. Returns the sum of probabilities.
double IppsProbabilities(const std::vector<Weight>& weights, double tau,
                         std::vector<double>* probs);

/// Algorithm 4 (STREAM-tau): maintains the IPPS threshold for expected
/// sample size s over a stream of weights, with O(s) memory.
///
/// Invariant: H holds weights currently >= tau (at most s of them), L is the
/// total weight of everything else, and tau = L / (s - |H|).
class StreamTau {
 public:
  explicit StreamTau(double s);

  /// Processes one stream weight.
  void Push(Weight w);

  /// Current threshold estimate (exact for the prefix seen so far).
  double tau() const { return tau_; }

  /// Number of weights currently held in the heap (the "heavy" candidates).
  std::size_t heap_size() const { return heap_.size(); }

  /// Total number of weights pushed.
  std::size_t count() const { return count_; }

 private:
  double s_;
  double tau_ = 0.0;
  double light_total_ = 0.0;  // L in Algorithm 4
  std::size_t count_ = 0;
  // Min-heap of heavy weights (H in Algorithm 4).
  std::priority_queue<Weight, std::vector<Weight>, std::greater<>> heap_;
};

}  // namespace sas

#endif  // SAS_CORE_IPPS_H_
