#include "core/prob_vector.h"

#include <cassert>

namespace sas {

ProbVector::ProbVector(std::vector<double> probs) : p_(std::move(probs)) {
  for (auto& v : p_) {
    assert(v >= 0.0 && v <= 1.0);
    v = SnapProbability(v);
    sum_ += v;
    if (!IsSet(v)) ++open_count_;
  }
}

void ProbVector::Aggregate(std::size_t i, std::size_t j, Rng* rng) {
  assert(i != j);
  assert(!IsSetAt(i) && !IsSetAt(j));
  PairAggregate(&p_[i], &p_[j], rng);
  if (IsSet(p_[i])) --open_count_;
  if (IsSet(p_[j])) --open_count_;
}

void ProbVector::ResolveResidual(std::size_t i, Rng* rng) {
  assert(!IsSetAt(i));
  const double q = p_[i];
  p_[i] = rng->NextBernoulli(q) ? 1.0 : 0.0;
  sum_ += p_[i] - q;
  --open_count_;
}

std::vector<std::size_t> ProbVector::OnesIndices() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < p_.size(); ++i) {
    if (p_[i] == 1.0) out.push_back(i);
  }
  return out;
}

}  // namespace sas
