#include "core/sample_queries.h"

#include <algorithm>

namespace sas {

namespace {

Coord QuantileOver(const Sample& sample, double q,
                   const std::function<bool(const WeightedKey&)>& pred) {
  std::vector<const WeightedKey*> keys;
  Weight total = 0.0;
  for (const auto& k : sample.entries()) {
    if (pred(k)) {
      keys.push_back(&k);
      total += sample.AdjustedWeight(k);
    }
  }
  if (keys.empty() || total <= 0.0) return 0;
  std::sort(keys.begin(), keys.end(),
            [](const WeightedKey* a, const WeightedKey* b) {
              return a->pt.x < b->pt.x;
            });
  const double target = std::clamp(q, 0.0, 1.0) * total;
  Weight run = 0.0;
  for (const WeightedKey* k : keys) {
    run += sample.AdjustedWeight(*k);
    if (run >= target) return k->pt.x;
  }
  return keys.back()->pt.x;
}

}  // namespace

Coord EstimateQuantileX(const Sample& sample, double q) {
  return QuantileOver(sample, q, [](const WeightedKey&) { return true; });
}

Coord EstimateSubsetQuantileX(
    const Sample& sample, double q,
    const std::function<bool(const WeightedKey&)>& pred) {
  return QuantileOver(sample, q, pred);
}

std::vector<HeavyHitter> EstimateHeavyHitters(const Sample& sample,
                                              double phi) {
  const Weight total = sample.EstimateTotal();
  std::vector<HeavyHitter> out;
  if (total <= 0.0) return out;
  for (const auto& k : sample.entries()) {
    const Weight est = sample.AdjustedWeight(k);
    if (est >= phi * total) {
      out.push_back({k, est, est / total});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const HeavyHitter& a, const HeavyHitter& b) {
              return a.estimated_weight > b.estimated_weight;
            });
  return out;
}

std::vector<RangeHeavyHitter> EstimateRangeHeavyHittersX(
    const Sample& sample, const std::vector<Interval>& ranges, double phi) {
  const Weight total = sample.EstimateTotal();
  std::vector<RangeHeavyHitter> out;
  if (total <= 0.0) return out;
  for (const auto& r : ranges) {
    Weight est = 0.0;
    for (const auto& k : sample.entries()) {
      if (r.Contains(k.pt.x)) est += sample.AdjustedWeight(k);
    }
    if (est >= phi * total) {
      out.push_back({r, est, est / total});
    }
  }
  return out;
}

}  // namespace sas
