// Runtime-dispatched SIMD kernels for the build-engine hot paths.
//
// This header is the only sanctioned boundary between the library and raw
// vector intrinsics: every kernel below has a scalar implementation that IS
// the reference semantics (bit-identical to the classic loops it replaced,
// pinned by the golden-seed suite) and, when the build and the host allow
// it, an AVX2/FMA implementation selected at runtime.
//
// Dispatch contract:
//  * Compile time: the CMake option SAS_SIMD (default ON) gates whether the
//    AVX2 paths are compiled at all; with SAS_SIMD=OFF only the scalar
//    code exists and ActiveLevel() is always kScalar.
//  * Run time: the first kernel call probes the CPU (cpuid via
//    __builtin_cpu_supports) and caches the best supported level. A binary
//    built with SAS_SIMD=ON still runs correctly on a non-AVX2 host — it
//    just stays on the scalar path.
//  * Equivalence: kernels whose outputs are pure per-lane operations
//    (FillIppsProbabilities elements, U64ToUnitDoubles, MinGapScan) return
//    bit-identical results on every level. Kernels that reduce over floats
//    (the probability *sum*, SuffixSum) may differ from the scalar path in
//    the last few ulps because vector lanes re-associate the additions; the
//    documented bound is |simd - scalar| <= 4 * eps * n * max|term| and the
//    equivalence tests in tests/core/simd_test.cc pin a 1e-12 relative
//    tolerance. The scalar results never change: they are the golden-seed
//    reference.
//
// Adding a kernel: declare it here, implement <Name>Scalar in simd.cc (this
// becomes the reference — copy the loop you are replacing verbatim), add an
// AVX2 variant guarded by SAS_SIMD_X86 with target("avx2,fma"), route both
// through a switch on ActiveLevel(), and pin scalar-vs-AVX2 equivalence in
// tests/core/simd_test.cc. Raw intrinsics anywhere else in src/ are
// rejected by sas-lint (rule simd-intrinsics).

#ifndef SAS_CORE_SIMD_H_
#define SAS_CORE_SIMD_H_

#include <cstddef>
#include <cstdint>

#include "core/types.h"

namespace sas {
namespace simd {

/// Instruction-set tiers the dispatcher knows about.
enum class Level {
  kScalar = 0,
  kAvx2 = 1,  // AVX2 + FMA
};

/// Best level supported by this binary on this host (compile-time gate and
/// cpuid probe combined). Does not consult overrides.
Level DetectLevel();

/// The level kernels currently dispatch to. Defaults to DetectLevel();
/// cached after the first call.
Level ActiveLevel();

/// Overrides the dispatch level (tests and A/B benches). Returns false —
/// and changes nothing — if `level` is not supported by this binary/host.
bool SetLevel(Level level);

/// Human-readable level name ("scalar" / "avx2").
const char* LevelName(Level level);

/// IPPS probability fill: probs[i] = min{1, w[i]/tau} for tau > 0 (the
/// IppsProbability edge cases for tau <= 0 are handled by the caller).
/// Returns the sum of the probabilities. Elements are bit-identical on
/// every level; the returned sum is a float reduction (see header
/// contract).
double FillIppsProbabilities(const double* w, std::size_t n, double tau,
                             double* probs);

/// The SolveTau partition scan: init + buf[end-1] + buf[end-2] + ... +
/// buf[begin], accumulated in exactly that (reverse) order on the scalar
/// path. Float reduction: AVX2 re-associates.
double SuffixSum(const double* buf, std::size_t begin, std::size_t end,
                 double init);

/// Weighted-median split selection for the kd build: over boundaries
/// i in [0, len-1) with vals[i] != vals[i+1], minimizes
/// |total - 2*prefix[i]| and returns the first minimizing i (strict-less
/// update order, matching the classic scan). Returns kNoSplit when no
/// boundary exists. Bit-identical on every level: the gap values are pure
/// per-lane arithmetic on the caller-computed prefix sums, and the argmin
/// tie-break is exact.
inline constexpr std::size_t kNoSplit = static_cast<std::size_t>(-1);
std::size_t MinGapScan(const double* prefix, const Coord* vals,
                       std::size_t len, double total);

/// Block conversion behind Rng::FillDoubles: out[i] =
/// double(raw[i] >> 11) * 2^-53, the xoshiro256++ unit-interval mapping.
/// Bit-identical on every level (the shifted value fits 53 bits, so the
/// convert and the power-of-two scale are both exact).
void U64ToUnitDoubles(const std::uint64_t* raw, double* out, std::size_t n);

}  // namespace simd
}  // namespace sas

#endif  // SAS_CORE_SIMD_H_
