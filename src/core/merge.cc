#include "core/merge.h"

#include <cassert>
#include <numeric>

#include "core/ipps.h"
#include "core/pair_aggregate.h"

namespace sas {
namespace {

/// Shared implementation over an arbitrary set of input samples. All
/// intermediate buffers come from `scratch`, so repeated merges (the
/// windowed ring) allocate only the output entry vector in steady state.
Sample MergeParts(const Sample* const* parts, std::size_t num_parts,
                  std::size_t s, Rng* rng, MergeScratch* scratch) {
  assert(s >= 1);
  std::size_t total = 0;
  for (std::size_t p = 0; p < num_parts; ++p) total += parts[p]->size();

  // Combined entry set, each entry carried at its adjusted weight under its
  // source sample. Entries keep that weight in the output, so a light entry
  // (inclusion probability tau_src/tau_new) is adjusted to tau_new by
  // Sample::AdjustedWeight while a pre-settled heavy entry keeps its value.
  std::vector<WeightedKey>& entries = scratch->entries;
  entries.clear();
  entries.reserve(total);
  for (std::size_t p = 0; p < num_parts; ++p) {
    for (const WeightedKey& e : parts[p]->entries()) {
      entries.push_back({e.id, parts[p]->AdjustedWeight(e), e.pt});
    }
  }

  if (total <= s) {
    // Everything fits: keep all entries at their adjusted weights. The
    // threshold must not disturb them, so it is 0 ("include everything").
    return Sample(0.0, {entries.begin(), entries.end()});
  }

  std::vector<Weight>& weights = scratch->weights;
  weights.clear();
  weights.reserve(total);
  for (const WeightedKey& e : entries) weights.push_back(e.weight);
  const double tau = SolveTau(weights.data(), weights.size(),
                              static_cast<double>(s), &scratch->ipps);

  std::vector<double>& probs = scratch->probs;
  IppsProbabilities(weights, tau, &probs);
  for (double& q : probs) q = SnapProbability(q);

  // Structure-oblivious settling: aggregate the open entries in a uniformly
  // random order, then resolve any floating-point residual. The shuffle
  // draws raw bounded integers, so only the chain itself goes through the
  // batched draw stream.
  std::vector<std::size_t>& order = scratch->order;
  order.resize(total);
  std::iota(order.begin(), order.end(), 0);
  for (std::size_t i = total; i > 1; --i) {
    std::swap(order[i - 1], order[rng->NextBounded(i)]);
  }
  {
    RngStream draws(rng);
    const std::size_t leftover = ChainAggregateRange(
        probs.data(), order.data(), order.size(), kNoEntry, &draws);
    ResolveResidual(probs.data(), leftover, &draws);
  }

  Sample out;
  out.set_tau(tau);
  out.Reserve(s + 1);
  for (std::size_t i = 0; i < total; ++i) {
    if (probs[i] == 1.0) out.Append(entries[i]);
  }
  return out;
}

}  // namespace

Sample MergeSamples(const Sample& a, const Sample& b, std::size_t s,
                    Rng* rng) {
  const Sample* parts[2] = {&a, &b};
  MergeScratch scratch;
  return MergeParts(parts, 2, s, rng, &scratch);
}

Sample MergeAllSamples(const std::vector<Sample>& parts, std::size_t s,
                       Rng* rng) {
  std::vector<const Sample*> ptrs;
  ptrs.reserve(parts.size());
  for (const Sample& p : parts) ptrs.push_back(&p);
  MergeScratch scratch;
  return MergeParts(ptrs.data(), ptrs.size(), s, rng, &scratch);
}

Sample MergeSampleParts(const Sample* const* parts, std::size_t num_parts,
                        std::size_t s, Rng* rng, MergeScratch* scratch) {
  if (scratch != nullptr) return MergeParts(parts, num_parts, s, rng, scratch);
  MergeScratch local;
  return MergeParts(parts, num_parts, s, rng, &local);
}

}  // namespace sas
