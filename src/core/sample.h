// Sample: the summary object produced by every sampling scheme.
//
// A Sample stores the selected keys (with their original weights and domain
// coordinates) and the IPPS threshold tau. Query answering uses the
// Horvitz-Thompson estimator (Appendix A, Eq. 1): the adjusted weight of a
// sampled key is max(w_i, tau); the estimate of any subset is the sum of
// adjusted weights of sampled keys in the subset.

#ifndef SAS_CORE_SAMPLE_H_
#define SAS_CORE_SAMPLE_H_

#include <cstddef>
#include <vector>

#include "core/types.h"

namespace sas {

class Sample {
 public:
  Sample() = default;
  Sample(double tau, std::vector<WeightedKey> entries)
      : tau_(tau), entries_(std::move(entries)) {}

  double tau() const { return tau_; }
  const std::vector<WeightedKey>& entries() const { return entries_; }
  std::size_t size() const { return entries_.size(); }

  /// Mutation surface for merge/combiner code paths: pre-size the entry
  /// storage, append selected entries, and set the threshold — so a merge
  /// assembles its output in place instead of copying a finished vector.
  void Reserve(std::size_t n) { entries_.reserve(n); }
  void Append(const WeightedKey& k) { entries_.push_back(k); }
  void set_tau(double tau) { tau_ = tau; }

  /// Horvitz-Thompson adjusted weight for a sampled key: w_i / p_i, which
  /// under IPPS equals w_i when w_i >= tau and tau otherwise.
  Weight AdjustedWeight(const WeightedKey& k) const {
    return k.weight >= tau_ ? k.weight : tau_;
  }

  /// Unbiased estimate of the total weight inside an axis-parallel box.
  Weight EstimateBox(const Box& box) const;

  /// Unbiased estimate for a multi-rectangle query (rectangles assumed
  /// disjoint, as produced by the query generators).
  Weight EstimateQuery(const MultiRangeQuery& q) const;

  /// Unbiased estimate of the total data weight.
  Weight EstimateTotal() const;

  /// Number of sampled keys inside the box (used by discrepancy checks).
  std::size_t CountInBox(const Box& box) const;

  /// Unbiased estimate over an arbitrary subset given by a predicate on the
  /// sampled keys — the "flexible summaries" property of samples.
  template <typename Pred>
  Weight EstimateSubset(Pred&& pred) const {
    Weight total = 0.0;
    for (const auto& k : entries_) {
      if (pred(k)) total += AdjustedWeight(k);
    }
    return total;
  }

 private:
  double tau_ = 0.0;
  std::vector<WeightedKey> entries_;
};

}  // namespace sas

#endif  // SAS_CORE_SAMPLE_H_
