#include "core/epoch.h"

#include <stdexcept>

namespace sas {

int EpochDomain::RegisterReader() {
  for (int i = 0; i < kMaxReaders; ++i) {
    bool expected = false;
    if (slots_[static_cast<std::size_t>(i)].claimed.compare_exchange_strong(
            expected, true, std::memory_order_acq_rel)) {
      return i;
    }
  }
  throw std::runtime_error(
      "EpochDomain: all reader slots in use (kMaxReaders = 64); register "
      "one slot per worker thread, not per query");
}

void EpochDomain::UnregisterReader(int slot) {
  if (slot < 0 || slot >= kMaxReaders) {
    throw std::invalid_argument("EpochDomain: bad reader slot");
  }
  Slot& s = slots_[static_cast<std::size_t>(slot)];
  s.pinned.store(kIdle, std::memory_order_release);
  s.claimed.store(false, std::memory_order_release);
}

std::uint64_t EpochDomain::Pin(int slot) {
  Slot& s = slots_[static_cast<std::size_t>(slot)];
  std::uint64_t e = global_epoch_.load(std::memory_order_seq_cst);
  for (;;) {
    s.pinned.store(e, std::memory_order_seq_cst);
    const std::uint64_t seen = global_epoch_.load(std::memory_order_seq_cst);
    if (seen == e) return e;
    // The publisher advanced between our advertisement and its validation:
    // re-advertise the fresh epoch so MinActiveEpoch never under-reports us.
    e = seen;
  }
}

void EpochDomain::Unpin(int slot) {
  slots_[static_cast<std::size_t>(slot)].pinned.store(
      kIdle, std::memory_order_release);
}

std::uint64_t EpochDomain::Advance() {
  return global_epoch_.fetch_add(1, std::memory_order_seq_cst) + 1;
}

std::uint64_t EpochDomain::MinActiveEpoch() const {
  std::uint64_t min = kIdle;
  for (const Slot& s : slots_) {
    const std::uint64_t e = s.pinned.load(std::memory_order_seq_cst);
    if (e < min) min = e;
  }
  return min;
}

int EpochDomain::PinnedReaders() const {
  int n = 0;
  for (const Slot& s : slots_) {
    if (s.pinned.load(std::memory_order_seq_cst) != kIdle) ++n;
  }
  return n;
}

int EpochDomain::RegisteredReaders() const {
  int n = 0;
  for (const Slot& s : slots_) {
    if (s.claimed.load(std::memory_order_acquire)) ++n;
  }
  return n;
}

}  // namespace sas
