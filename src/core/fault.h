// Deterministic fault injection for the ingest stack: failure paths are
// driven by named fault sites compiled into the engines (the sharded
// worker pool, the windowed bucket ring, the trace reader) and armed by
// counter-based schedules, so a crash/recovery scenario replays exactly as
// a happy-path build does — same (schedule, input) in, same failure out.
//
// A FaultInjector holds a set of rules parsed from a schedule spec:
//
//   site[#lane]=fail@N[/K]            throw on the Nth hit (and every Kth
//                                     hit after it when /K is given)
//   site[#lane]=delay@N[/K]:USEC      sleep USEC microseconds instead of
//                                     throwing (widens race windows under
//                                     TSan without killing the worker)
//
// Rules are ';'-separated; `lane` narrows a rule to one lane of a
// multi-lane site (the shard index of the shard.* sites). Examples:
//
//   shard.worker.finalize=fail@1/1            every shard's finalize dies
//   shard.worker.batch#0=fail@2               shard 0 dies on its 2nd batch
//   trace.row=fail@5/9                        every 9th row from the 5th on
//   shard.worker.batch=delay@1/1:500          500us stall per batch drain
//
// Deployment: the process-global injector (FaultInjector::Global()) is
// configured once from the SAS_FAULTS environment variable; tests that need
// isolation hand their own injector to SummarizerConfig::faults (the
// composed wrappers propagate it to every inner builder) or
// TraceReader::Options::faults. Hit counting is per rule and atomic, so
// schedules fire deterministically wherever a site is driven from a single
// thread (producer-side sites, per-lane worker sites, the trace reader).
//
// Cost when disarmed: FaultPoint() is one branch on a relaxed atomic load —
// the probes stay compiled into release builds.
//
// Thread-safety: Configure/Clear must not race Hit/Poll (arm the injector
// before ingest starts, clear it after workers join); Hit/Poll/armed are
// safe from any number of threads.

#ifndef SAS_CORE_FAULT_H_
#define SAS_CORE_FAULT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace sas {

/// Canonical fault-site names (docs/robustness.md catalogs what each one
/// interrupts). Sites are plain strings so custom summarizers can add their
/// own without touching this header.
namespace fault_sites {
/// Producer-side hand-off of one batch to a shard queue (lane = shard).
inline constexpr const char kShardQueuePush[] = "shard.queue.push";
/// Worker-side drain of one batch into the inner builder (lane = shard).
inline constexpr const char kShardWorkerBatch[] = "shard.worker.batch";
/// Worker-side finalize of one shard's inner summary (lane = shard).
inline constexpr const char kShardWorkerFinalize[] = "shard.worker.finalize";
/// Sealing one windowed bucket into its inner sample (lane = epoch).
inline constexpr const char kWindowBucketSeal[] = "window.bucket.seal";
/// Merging the live windowed buckets for a query (lane = epoch).
inline constexpr const char kWindowQueryMerge[] = "window.query.merge";
/// One successfully parsed trace row (fires by *corrupting* the row: the
/// reader counts it malformed and drops it instead of throwing).
inline constexpr const char kTraceRow[] = "trace.row";
/// Publishing a freshly built serving snapshot (lane = publish ordinal,
/// 0-based). Fires *before* the pointer swap: a failed publish leaves the
/// previous snapshot serving (src/serve/query_service.h).
inline constexpr const char kServePublish[] = "serve.publish";
/// One deferred-reclamation pass over retired serving snapshots (lane =
/// retired-list depth). Degrading site: a fired rule skips the pass; the
/// garbage stays pending and the next publish retries.
inline constexpr const char kServeReclaim[] = "serve.reclaim";
}  // namespace fault_sites

/// The exception an armed `fail` rule throws from its fault site. Carries
/// the site name and the 1-based hit ordinal that fired so tests can assert
/// exactly which injection they caught.
class FaultInjectionError : public std::runtime_error {
 public:
  FaultInjectionError(const std::string& site, std::uint64_t hit);

  const std::string& site() const { return site_; }
  std::uint64_t hit() const { return hit_; }

 private:
  std::string site_;
  std::uint64_t hit_;
};

class FaultInjector {
 public:
  FaultInjector() = default;
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Replaces the rule set with the parsed `spec` (see the header comment
  /// for the grammar) and arms the injector when it is non-empty. An empty
  /// spec is equivalent to Clear(). Throws std::invalid_argument naming the
  /// offending clause on a malformed spec. Not safe against concurrent
  /// Hit/Poll — configure before ingest starts.
  void Configure(const std::string& spec);

  /// Drops every rule and disarms. Hit counters are discarded with the
  /// rules.
  void Clear();

  /// True when at least one rule is loaded. One relaxed atomic load.
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// Counts one hit of `site` against every matching rule and fires the
  /// schedules that come due: `delay` rules sleep here; a due `fail` rule
  /// throws FaultInjectionError. No-op (beyond the counters) otherwise.
  void Hit(const char* site, std::int64_t lane = -1);

  /// Non-throwing variant for sites that degrade instead of failing (the
  /// trace reader): counts the hit, sleeps due `delay` rules, and returns
  /// true when a `fail` rule came due — the caller decides what "failing"
  /// means locally.
  bool Poll(const char* site, std::int64_t lane = -1);

  /// Total hits counted against rules matching `site` (all lanes).
  std::uint64_t HitCount(const std::string& site) const;

  /// Per-site hit totals for every configured rule site (lanes aggregated),
  /// sorted by site name. Telemetry re-exports these as
  /// `sas.fault.hits.<site>` so chaos runs are observable through the same
  /// snapshot as every other metric. Empty when disarmed.
  std::vector<std::pair<std::string, std::uint64_t>> HitCounts() const;

  /// Total schedule firings (throws + delays) since Configure.
  std::uint64_t fired() const {
    return fired_.load(std::memory_order_relaxed);
  }

  /// The process-wide injector, configured once from the SAS_FAULTS
  /// environment variable on first use (unset/empty leaves it disarmed).
  /// Builders fall back to it when SummarizerConfig::faults is null.
  static FaultInjector& Global();

 private:
  struct Rule {
    std::string site;
    std::int64_t lane = -1;  // -1 matches every lane
    bool is_delay = false;
    std::uint64_t nth = 1;       // first firing hit (1-based)
    std::uint64_t every = 0;     // 0 = fire once, else period after nth
    std::uint64_t delay_us = 0;  // sleep length for delay rules
    std::atomic<std::uint64_t> hits{0};
  };

  bool PollImpl(const char* site, std::int64_t lane, std::uint64_t* hit_out);

  std::vector<std::unique_ptr<Rule>> rules_;
  std::atomic<bool> armed_{false};
  std::atomic<std::uint64_t> fired_{0};
};

/// The per-site probe compiled into the engines: resolves to `local` when a
/// config carries its own injector, else the global one, and forwards to
/// Hit only when armed. Disarmed cost is the branch and one relaxed load.
inline void FaultPoint(FaultInjector* local, const char* site,
                       std::int64_t lane = -1) {
  FaultInjector& fi = local != nullptr ? *local : FaultInjector::Global();
  if (fi.armed()) fi.Hit(site, lane);
}

}  // namespace sas

#endif  // SAS_CORE_FAULT_H_
