// Shared build workspace for the kd constructions (2-D KdHierarchy and the
// general-d KdHierarchyNd).
//
// One monotonic arena backs everything a build needs — per-axis item
// orders, the stable-partition buffer, the task stack, and the SoA node
// accumulators — so repeated builds against a warm scratch perform zero
// heap allocations beyond the returned tree itself. See core/arena.h for
// the ownership rules; builds Reset() the arena on entry, so one scratch
// serves at most one build at a time.

#ifndef SAS_AWARE_KD_SCRATCH_H_
#define SAS_AWARE_KD_SCRATCH_H_

#include <cstddef>
#include <cstdint>

#include "core/arena.h"
#include "core/types.h"

namespace sas {

struct KdBuildScratch {
  MonotonicArena arena;
};

/// Arena-backed SoA node accumulators shared by the kd builds: field writes
/// stream into flat arrays during construction and the public AoS node
/// vector is emitted in one pass at the end. The N-d build has no parent
/// field in its public nodes and simply never reads `parent`.
struct KdNodeSoA {
  std::int32_t* parent;
  std::int32_t* left;
  std::int32_t* right;
  std::int32_t* axis;
  Coord* split;
  double* mass;
  std::uint32_t* begin;
  std::uint32_t* end;

  void Init(MonotonicArena* arena, std::size_t cap) {
    parent = arena->AllocateArray<std::int32_t>(cap);
    left = arena->AllocateArray<std::int32_t>(cap);
    right = arena->AllocateArray<std::int32_t>(cap);
    axis = arena->AllocateArray<std::int32_t>(cap);
    split = arena->AllocateArray<Coord>(cap);
    mass = arena->AllocateArray<double>(cap);
    begin = arena->AllocateArray<std::uint32_t>(cap);
    end = arena->AllocateArray<std::uint32_t>(cap);
  }

  /// New node with leaf defaults (children/parent null = -1, axis 0),
  /// matching the public Node member initializers of both kd classes.
  void Emplace(std::int32_t id, std::int32_t parent_id) {
    parent[id] = parent_id;
    left[id] = -1;
    right[id] = -1;
    axis[id] = 0;
    split[id] = 0;
  }
};

}  // namespace sas

#endif  // SAS_AWARE_KD_SCRATCH_H_
