#include "aware/kd_hierarchy.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <limits>

namespace sas {

namespace {

inline Coord AxisCoord(const Point2D& p, int axis) {
  return axis == 0 ? p.x : p.y;
}

struct BuildTask {
  std::int32_t node;
  std::uint32_t begin, end;
  std::int32_t depth;
  std::int32_t parent_axis;  // axis the parent split on; -1 for the root
};

static_assert(KdHierarchy::kNull == -1,
              "KdNodeSoA::Emplace hardcodes -1 as the null child/parent");

}  // namespace

KdHierarchy KdHierarchy::Build(const std::vector<Point2D>& pts,
                               const std::vector<double>& mass) {
  thread_local KdBuildScratch scratch;
  return Build(pts, mass, &scratch);
}

KdHierarchy KdHierarchy::Build(const std::vector<Point2D>& pts,
                               const std::vector<double>& mass,
                               KdBuildScratch* scratch) {
  assert(pts.size() == mass.size());
  KdHierarchy tree;
  const std::size_t n = pts.size();
  if (n == 0) return tree;
  MonotonicArena& arena = scratch->arena;
  arena.Reset();

  // Per-axis item orders, each sorted once (coordinate, then index so ties
  // are deterministic); every split keeps both orders sorted by a stable
  // partition instead of re-sorting the subrange per node.
  std::uint32_t* ord[2] = {arena.AllocateArray<std::uint32_t>(n),
                           arena.AllocateArray<std::uint32_t>(n)};
  std::uint32_t* part_tmp = arena.AllocateArray<std::uint32_t>(n);
  for (int axis = 0; axis < 2; ++axis) {
    std::uint32_t* o = ord[axis];
    for (std::size_t i = 0; i < n; ++i) o[i] = static_cast<std::uint32_t>(i);
    std::sort(o, o + n, [&](std::uint32_t a, std::uint32_t b) {
      const Coord ca = AxisCoord(pts[a], axis);
      const Coord cb = AxisCoord(pts[b], axis);
      return ca != cb ? ca < cb : a < b;
    });
  }

  const std::size_t node_cap = 2 * n;  // at most 2n - 1 nodes
  KdNodeSoA soa;
  soa.Init(&arena, node_cap);
  // DFS with left child processed first: outstanding tasks cover disjoint
  // item ranges, so the stack holds at most n of them.
  BuildTask* stack = arena.AllocateArray<BuildTask>(n + 1);
  std::size_t stack_size = 0;

  tree.item_order_.resize(n);
  std::int32_t num_nodes = 1;
  soa.Emplace(0, kNull);
  stack[stack_size++] = {0, 0, static_cast<std::uint32_t>(n), 0, -1};
  while (stack_size > 0) {
    const BuildTask t = stack[--stack_size];
    soa.begin[t.node] = t.begin;
    soa.end[t.node] = t.end;
    // Sum the node mass in the order inherited from the parent's split axis
    // (the root sums input order), matching the classic build's summation
    // sequence so masses agree bit-for-bit on duplicate-free inputs.
    double total = 0.0;
    if (t.parent_axis < 0) {
      for (std::uint32_t i = t.begin; i < t.end; ++i) total += mass[i];
    } else {
      const std::uint32_t* po = ord[t.parent_axis];
      for (std::uint32_t i = t.begin; i < t.end; ++i) total += mass[po[i]];
    }
    soa.mass[t.node] = total;
    if (t.end - t.begin <= 1) {
      if (t.end > t.begin) tree.item_order_[t.begin] = ord[0][t.begin];
      continue;  // leaf
    }

    // Choose the split axis round-robin; fall back to the other axis when
    // all coordinates coincide on the preferred one. Weighted median: the
    // coordinate boundary minimizing |left mass - right mass|; only
    // boundaries between distinct coordinates are valid split positions.
    int axis = t.depth % 2;
    int used_axis = axis;
    bool split_found = false;
    std::uint32_t split_pos = t.begin;
    Coord split_val = 0;
    for (int attempt = 0; attempt < 2 && !split_found; ++attempt, axis ^= 1) {
      const std::uint32_t* o = ord[axis];
      if (AxisCoord(pts[o[t.begin]], axis) ==
          AxisCoord(pts[o[t.end - 1]], axis)) {
        continue;  // degenerate on this axis
      }
      double run = 0.0;
      double best_gap = std::numeric_limits<double>::infinity();
      for (std::uint32_t i = t.begin; i + 1 < t.end; ++i) {
        run += mass[o[i]];
        if (AxisCoord(pts[o[i]], axis) == AxisCoord(pts[o[i + 1]], axis)) {
          continue;  // not a coordinate boundary
        }
        const double gap = std::fabs(total - 2.0 * run);
        if (gap < best_gap) {
          best_gap = gap;
          split_pos = i + 1;
          split_val = AxisCoord(pts[o[i + 1]], axis);
        }
      }
      split_found = split_pos > t.begin;
      used_axis = axis;
    }
    if (!split_found) {
      // All points identical: keep them together as one leaf.
      const std::uint32_t* o = ord[(t.depth + 1) % 2];
      for (std::uint32_t i = t.begin; i < t.end; ++i) {
        tree.item_order_[i] = o[i];
      }
      continue;
    }
    // The used axis' order is already partitioned by position; stable-
    // partition the other axis' order around the split coordinate so both
    // children again see both orders sorted.
    std::uint32_t* o2 = ord[used_axis ^ 1];
    std::uint32_t nl = t.begin, nr = 0;
    for (std::uint32_t i = t.begin; i < t.end; ++i) {
      const std::uint32_t item = o2[i];
      if (AxisCoord(pts[item], used_axis) < split_val) {
        o2[nl++] = item;
      } else {
        part_tmp[nr++] = item;
      }
    }
    assert(nl == split_pos);
    std::copy(part_tmp, part_tmp + nr, o2 + nl);

    const std::int32_t left = num_nodes++;
    const std::int32_t right = num_nodes++;
    soa.Emplace(left, t.node);
    soa.Emplace(right, t.node);
    soa.axis[t.node] = used_axis;
    soa.split[t.node] = split_val;
    soa.left[t.node] = left;
    soa.right[t.node] = right;
    stack[stack_size++] = {right, split_pos, t.end, t.depth + 1, used_axis};
    stack[stack_size++] = {left, t.begin, split_pos, t.depth + 1, used_axis};
  }

  assert(static_cast<std::size_t>(num_nodes) < node_cap);
  tree.nodes_.resize(num_nodes);
  for (std::int32_t v = 0; v < num_nodes; ++v) {
    Node& nd = tree.nodes_[v];
    nd.parent = soa.parent[v];
    nd.left = soa.left[v];
    nd.right = soa.right[v];
    nd.axis = soa.axis[v];
    nd.split = soa.split[v];
    nd.mass = soa.mass[v];
    nd.begin = soa.begin[v];
    nd.end = soa.end[v];
  }
  return tree;
}

int KdHierarchy::LocateLeaf(const Point2D& pt) const {
  if (nodes_.empty()) return kNull;
  int v = 0;
  while (!nodes_[v].IsLeaf()) {
    const Coord c = AxisCoord(pt, nodes_[v].axis);
    v = c < nodes_[v].split ? nodes_[v].left : nodes_[v].right;
  }
  return v;
}

std::vector<int> KdHierarchy::SuperLeaves(double limit) const {
  std::vector<int> out;
  if (nodes_.empty()) return out;
  std::vector<int> stack{0};
  while (!stack.empty()) {
    const int v = stack.back();
    stack.pop_back();
    if (nodes_[v].mass <= limit || nodes_[v].IsLeaf()) {
      out.push_back(v);
      continue;
    }
    stack.push_back(nodes_[v].right);
    stack.push_back(nodes_[v].left);
  }
  return out;
}

int KdHierarchy::MaxDepth() const {
  if (nodes_.empty()) return 0;
  std::vector<std::pair<int, int>> stack{{0, 0}};
  int best = 0;
  while (!stack.empty()) {
    const auto [v, d] = stack.back();
    stack.pop_back();
    best = std::max(best, d);
    if (!nodes_[v].IsLeaf()) {
      stack.push_back({nodes_[v].left, d + 1});
      stack.push_back({nodes_[v].right, d + 1});
    }
  }
  return best;
}

}  // namespace sas
