#include "aware/kd_hierarchy.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>

namespace sas {

namespace {

inline Coord AxisCoord(const Point2D& p, int axis) {
  return axis == 0 ? p.x : p.y;
}

struct BuildTask {
  int node;
  std::size_t begin, end;
  int depth;
};

}  // namespace

KdHierarchy KdHierarchy::Build(const std::vector<Point2D>& pts,
                               const std::vector<double>& mass) {
  assert(pts.size() == mass.size());
  KdHierarchy tree;
  const std::size_t n = pts.size();
  if (n == 0) return tree;
  tree.item_order_.resize(n);
  std::iota(tree.item_order_.begin(), tree.item_order_.end(), 0);
  tree.nodes_.reserve(2 * n);
  tree.nodes_.push_back({});

  std::vector<double> prefix;  // scratch for the weighted-median scan
  std::vector<BuildTask> stack{{0, 0, n, 0}};
  while (!stack.empty()) {
    const BuildTask t = stack.back();
    stack.pop_back();
    auto& order = tree.item_order_;
    Node& node = tree.nodes_[t.node];
    node.begin = t.begin;
    node.end = t.end;
    double total = 0.0;
    for (std::size_t i = t.begin; i < t.end; ++i) total += mass[order[i]];
    node.mass = total;
    if (t.end - t.begin <= 1) continue;  // leaf

    // Choose the split axis round-robin; fall back to the other axis when
    // all coordinates coincide on the preferred one.
    int axis = t.depth % 2;
    bool split_found = false;
    std::size_t split_pos = 0;
    Coord split_val = 0;
    for (int attempt = 0; attempt < 2 && !split_found; ++attempt, axis ^= 1) {
      std::sort(order.begin() + t.begin, order.begin() + t.end,
                [&](std::size_t a, std::size_t b) {
                  return AxisCoord(pts[a], axis) < AxisCoord(pts[b], axis);
                });
      if (AxisCoord(pts[order[t.begin]], axis) ==
          AxisCoord(pts[order[t.end - 1]], axis)) {
        continue;  // degenerate on this axis
      }
      // Weighted median: pick the coordinate boundary minimizing
      // |left mass - right mass|. Only boundaries between distinct
      // coordinates are valid split positions.
      prefix.clear();
      double run = 0.0;
      double best_gap = std::numeric_limits<double>::infinity();
      for (std::size_t i = t.begin; i + 1 < t.end; ++i) {
        run += mass[order[i]];
        if (AxisCoord(pts[order[i]], axis) ==
            AxisCoord(pts[order[i + 1]], axis)) {
          continue;  // not a coordinate boundary
        }
        const double gap = std::fabs(total - 2.0 * run);
        if (gap < best_gap) {
          best_gap = gap;
          split_pos = i + 1;
          split_val = AxisCoord(pts[order[i + 1]], axis);
        }
      }
      split_found = split_pos > t.begin;
    }
    if (!split_found) {
      // All points identical: keep them together as one leaf.
      continue;
    }
    // `axis` was toggled one past the axis actually used.
    const int used_axis = axis ^ 1;
    const int left = static_cast<int>(tree.nodes_.size());
    tree.nodes_.push_back({});
    const int right = static_cast<int>(tree.nodes_.size());
    tree.nodes_.push_back({});
    // Re-fetch: push_back may have invalidated `node`.
    Node& nd = tree.nodes_[t.node];
    nd.axis = used_axis;
    nd.split = split_val;
    nd.left = left;
    nd.right = right;
    tree.nodes_[left].parent = t.node;
    tree.nodes_[right].parent = t.node;
    stack.push_back({right, split_pos, t.end, t.depth + 1});
    stack.push_back({left, t.begin, split_pos, t.depth + 1});
  }
  return tree;
}

int KdHierarchy::LocateLeaf(const Point2D& pt) const {
  if (nodes_.empty()) return kNull;
  int v = 0;
  while (!nodes_[v].IsLeaf()) {
    const Coord c = AxisCoord(pt, nodes_[v].axis);
    v = c < nodes_[v].split ? nodes_[v].left : nodes_[v].right;
  }
  return v;
}

std::vector<int> KdHierarchy::SuperLeaves(double limit) const {
  std::vector<int> out;
  if (nodes_.empty()) return out;
  std::vector<int> stack{0};
  while (!stack.empty()) {
    const int v = stack.back();
    stack.pop_back();
    if (nodes_[v].mass <= limit || nodes_[v].IsLeaf()) {
      out.push_back(v);
      continue;
    }
    stack.push_back(nodes_[v].right);
    stack.push_back(nodes_[v].left);
  }
  return out;
}

int KdHierarchy::MaxDepth() const {
  if (nodes_.empty()) return 0;
  std::vector<std::pair<int, int>> stack{{0, 0}};
  int best = 0;
  while (!stack.empty()) {
    const auto [v, d] = stack.back();
    stack.pop_back();
    best = std::max(best, d);
    if (!nodes_[v].IsLeaf()) {
      stack.push_back({nodes_[v].left, d + 1});
      stack.push_back({nodes_[v].right, d + 1});
    }
  }
  return best;
}

}  // namespace sas
