#include "aware/kd_hierarchy.h"

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <vector>

#include "aware/flat_coords.h"
#include "aware/kd_build_core.h"

namespace sas {

namespace {

inline Coord AxisCoord(const Point2D& p, int axis) {
  return axis == 0 ? p.x : p.y;
}

static_assert(KdHierarchy::kNull == kKdNull,
              "KdHierarchy::kNull must match the core's sentinel");

}  // namespace

KdHierarchy KdHierarchy::Build(const std::vector<Point2D>& pts,
                               const std::vector<double>& mass) {
  thread_local KdBuildScratch scratch;
  return Build(pts, mass, &scratch);
}

KdHierarchy KdHierarchy::Build(const std::vector<Point2D>& pts,
                               const std::vector<double>& mass,
                               KdBuildScratch* scratch) {
  KdHierarchy tree;
  BuildInto(pts, mass, scratch, &tree);
  return tree;
}

void KdHierarchy::BuildInto(const std::vector<Point2D>& pts,
                            const std::vector<double>& mass,
                            KdBuildScratch* scratch, KdHierarchy* out) {
  assert(pts.size() == mass.size());
  const std::size_t n = pts.size();
  if (n == 0) {
    out->nodes_.clear();
    out->item_order_.clear();
    return;
  }

  const Coord* flat = AsFlatCoords(pts.data());
  const KdCoreBuild core = KdBuildCore(flat, /*dims=*/2, mass.data(), n,
                                       scratch, &out->item_order_);

  out->nodes_.resize(static_cast<std::size_t>(core.num_nodes));
  for (std::int32_t v = 0; v < core.num_nodes; ++v) {
    Node& nd = out->nodes_[static_cast<std::size_t>(v)];
    nd.parent = core.soa.parent[v];
    nd.left = core.soa.left[v];
    nd.right = core.soa.right[v];
    nd.axis = core.soa.axis[v];
    nd.split = core.soa.split[v];
    nd.mass = core.soa.mass[v];
    nd.begin = core.soa.begin[v];
    nd.end = core.soa.end[v];
  }
}

int KdHierarchy::LocateLeaf(const Point2D& pt) const {
  if (nodes_.empty()) return kNull;
  int v = 0;
  while (!nodes_[v].IsLeaf()) {
    const Coord c = AxisCoord(pt, nodes_[v].axis);
    v = c < nodes_[v].split ? nodes_[v].left : nodes_[v].right;
  }
  return v;
}

std::vector<int> KdHierarchy::SuperLeaves(double limit) const {
  std::vector<int> out;
  if (nodes_.empty()) return out;
  std::vector<int> stack{0};
  while (!stack.empty()) {
    const int v = stack.back();
    stack.pop_back();
    if (nodes_[v].mass <= limit || nodes_[v].IsLeaf()) {
      out.push_back(v);
      continue;
    }
    stack.push_back(nodes_[v].right);
    stack.push_back(nodes_[v].left);
  }
  return out;
}

int KdHierarchy::MaxDepth() const {
  if (nodes_.empty()) return 0;
  std::vector<std::pair<int, int>> stack{{0, 0}};
  int best = 0;
  while (!stack.empty()) {
    const auto [v, d] = stack.back();
    stack.pop_back();
    best = std::max(best, d);
    if (!nodes_[v].IsLeaf()) {
      stack.push_back({nodes_[v].left, d + 1});
      stack.push_back({nodes_[v].right, d + 1});
    }
  }
  return best;
}

}  // namespace sas
