#include "aware/order_summarizer.h"

#include "core/ipps.h"
#include "core/pair_aggregate.h"
#include "structure/order.h"

namespace sas {

void OrderAggregate(std::vector<double>* probs,
                    const std::vector<std::size_t>& order, Rng* rng) {
  RngStream draws(rng);
  const std::size_t leftover = ChainAggregateRange(
      probs->data(), order.data(), order.size(), kNoEntry, &draws);
  ResolveResidual(probs->data(), leftover, &draws);
}

SummarizeResult OrderSummarize(const std::vector<WeightedKey>& items,
                               double s, Rng* rng) {
  std::vector<Weight> weights;
  weights.reserve(items.size());
  for (const auto& it : items) weights.push_back(it.weight);
  const double tau = SolveTau(weights, s);

  SummarizeResult out;
  out.tau = tau;
  IppsProbabilities(weights, tau, &out.probs);
  for (auto& q : out.probs) q = SnapProbability(q);

  std::vector<Coord> xs;
  xs.reserve(items.size());
  for (const auto& it : items) xs.push_back(it.pt.x);
  const std::vector<std::size_t> order = SortedOrder(xs);

  std::vector<double> work = out.probs;
  OrderAggregate(&work, order, rng);

  std::vector<WeightedKey> chosen;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (work[i] == 1.0) chosen.push_back(items[i]);
  }
  out.sample = Sample(tau, std::move(chosen));
  return out;
}

}  // namespace sas
