#include "aware/order_summarizer.h"

#include "core/ipps.h"
#include "core/pair_aggregate.h"
#include "structure/order.h"

namespace sas {

void OrderAggregate(std::vector<double>* probs,
                    const std::vector<std::size_t>& order, Rng* rng) {
  RngStream draws(rng);
  const std::size_t leftover = ChainAggregateRange(
      probs->data(), order.data(), order.size(), kNoEntry, &draws);
  ResolveResidual(probs->data(), leftover, &draws);
}

void OrderSummarizeInto(const std::vector<WeightedKey>& items, double s,
                        Rng* rng, SummarizeScratch* scratch,
                        SummarizeOutput* out) {
  auto& weights = scratch->weights;
  weights.clear();
  weights.reserve(items.size());
  for (const auto& it : items) weights.push_back(it.weight);
  const double tau = SolveTau(weights, s, &scratch->ipps);

  out->tau = tau;
  IppsProbabilities(weights, tau, &out->probs);
  for (auto& q : out->probs) q = SnapProbability(q);

  auto& xs = scratch->xs;
  xs.clear();
  xs.reserve(items.size());
  for (const auto& it : items) xs.push_back(it.pt.x);
  SortedOrderInto(xs, &scratch->order);

  auto& work = scratch->work;
  work.assign(out->probs.begin(), out->probs.end());
  OrderAggregate(&work, scratch->order, rng);

  out->chosen.clear();
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (work[i] == 1.0) out->chosen.push_back(static_cast<std::uint32_t>(i));
  }
}

SummarizeResult OrderSummarize(const std::vector<WeightedKey>& items,
                               double s, Rng* rng) {
  thread_local SummarizeScratch scratch;
  SummarizeOutput out;
  OrderSummarizeInto(items, s, rng, &scratch, &out);

  SummarizeResult r;
  r.tau = out.tau;
  r.probs = std::move(out.probs);
  std::vector<WeightedKey> chosen;
  chosen.reserve(out.chosen.size());
  for (std::uint32_t i : out.chosen) chosen.push_back(items[i]);
  r.sample = Sample(out.tau, std::move(chosen));
  return r;
}

}  // namespace sas
