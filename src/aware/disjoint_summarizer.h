// Structure-aware VarOpt sampling for disjoint ranges (Section 3).
//
// Disjoint ranges are the flat 2-level special case of a hierarchy: pair
// selection first exhausts pairs inside the same range, then aggregates the
// per-range leftovers across ranges. The number of samples in every range
// is the floor or ceiling of its expectation (Delta < 1).

#ifndef SAS_AWARE_DISJOINT_SUMMARIZER_H_
#define SAS_AWARE_DISJOINT_SUMMARIZER_H_

#include <vector>

#include "aware/order_summarizer.h"
#include "core/random.h"
#include "core/types.h"

namespace sas {

/// Low-level: aggregates open entries of *probs where range_of[i] gives the
/// range of entry i (values in [0, num_ranges)). On return every entry is
/// set. The scratch overload buckets the open entries by counting sort
/// into `scratch` (same per-bucket order as the classic nested vectors,
/// allocation-free when warm); the plain overload keeps a thread-local one.
void DisjointAggregate(std::vector<double>* probs,
                       const std::vector<int>& range_of, int num_ranges,
                       Rng* rng);
void DisjointAggregate(std::vector<double>* probs,
                       const std::vector<int>& range_of, int num_ranges,
                       Rng* rng, SummarizeScratch* scratch);

/// Draws a structure-aware VarOpt sample of (expected) size s for keys
/// partitioned into disjoint ranges.
SummarizeResult DisjointSummarize(const std::vector<WeightedKey>& items,
                                  const std::vector<int>& range_of,
                                  int num_ranges, double s, Rng* rng);

/// Scratch-backed core of DisjointSummarize (identical draws and sample;
/// see aware/summarize_scratch.h for the reuse contract).
void DisjointSummarizeInto(const std::vector<WeightedKey>& items,
                           const std::vector<int>& range_of, int num_ranges,
                           double s, Rng* rng, SummarizeScratch* scratch,
                           SummarizeOutput* out);

}  // namespace sas

#endif  // SAS_AWARE_DISJOINT_SUMMARIZER_H_
