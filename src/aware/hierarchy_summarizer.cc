#include "aware/hierarchy_summarizer.h"

#include <cassert>

#include "core/ipps.h"
#include "core/pair_aggregate.h"

namespace sas {

void HierarchyAggregate(std::vector<double>* probs, const Hierarchy& h,
                        Rng* rng) {
  assert(probs->size() == h.num_keys());
  const int n = h.num_nodes();
  // Builders guarantee parent(v) < v, so a reverse index scan is a valid
  // bottom-up (children before parents) order.
  std::vector<std::size_t> leftover(n, kNoEntry);
  std::vector<std::size_t> child_entries;
  RngStream draws(rng);
  for (int v = n - 1; v >= 0; --v) {
    if (h.is_leaf(v)) {
      const KeyId k = h.key_of_leaf(v);
      leftover[v] = IsSet((*probs)[k]) ? kNoEntry : static_cast<std::size_t>(k);
      continue;
    }
    child_entries.clear();
    for (int c : h.children(v)) {
      if (leftover[c] != kNoEntry) child_entries.push_back(leftover[c]);
    }
    leftover[v] = ChainAggregateRange(probs->data(), child_entries.data(),
                                      child_entries.size(), kNoEntry, &draws);
  }
  ResolveResidual(probs->data(), leftover[h.root()], &draws);
}

SummarizeResult HierarchySummarize(const std::vector<WeightedKey>& items,
                                   const Hierarchy& h, double s, Rng* rng) {
  assert(items.size() == h.num_keys());
  std::vector<Weight> weights;
  weights.reserve(items.size());
  for (const auto& it : items) weights.push_back(it.weight);
  const double tau = SolveTau(weights, s);

  SummarizeResult out;
  out.tau = tau;
  IppsProbabilities(weights, tau, &out.probs);
  for (auto& q : out.probs) q = SnapProbability(q);

  std::vector<double> work = out.probs;
  HierarchyAggregate(&work, h, rng);

  std::vector<WeightedKey> chosen;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (work[i] == 1.0) chosen.push_back(items[i]);
  }
  out.sample = Sample(tau, std::move(chosen));
  return out;
}

}  // namespace sas
