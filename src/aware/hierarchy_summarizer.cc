#include "aware/hierarchy_summarizer.h"

#include <cassert>

#include "core/ipps.h"
#include "core/pair_aggregate.h"

namespace sas {

void HierarchyAggregate(std::vector<double>* probs, const Hierarchy& h,
                        Rng* rng, SummarizeScratch* scratch) {
  assert(probs->size() == h.num_keys());
  const int n = h.num_nodes();
  // Builders guarantee parent(v) < v, so a reverse index scan is a valid
  // bottom-up (children before parents) order.
  auto& leftover = scratch->leftover;
  leftover.assign(static_cast<std::size_t>(n), kNoEntry);
  auto& child_entries = scratch->entries;
  RngStream draws(rng);
  for (int v = n - 1; v >= 0; --v) {
    if (h.is_leaf(v)) {
      const KeyId k = h.key_of_leaf(v);
      leftover[v] = IsSet((*probs)[k]) ? kNoEntry : static_cast<std::size_t>(k);
      continue;
    }
    child_entries.clear();
    for (int c : h.children(v)) {
      if (leftover[c] != kNoEntry) child_entries.push_back(leftover[c]);
    }
    leftover[v] = ChainAggregateRange(probs->data(), child_entries.data(),
                                      child_entries.size(), kNoEntry, &draws);
  }
  ResolveResidual(probs->data(), leftover[h.root()], &draws);
}

void HierarchyAggregate(std::vector<double>* probs, const Hierarchy& h,
                        Rng* rng) {
  thread_local SummarizeScratch scratch;
  HierarchyAggregate(probs, h, rng, &scratch);
}

void HierarchySummarizeInto(const std::vector<WeightedKey>& items,
                            const Hierarchy& h, double s, Rng* rng,
                            SummarizeScratch* scratch, SummarizeOutput* out) {
  assert(items.size() == h.num_keys());
  auto& weights = scratch->weights;
  weights.clear();
  weights.reserve(items.size());
  for (const auto& it : items) weights.push_back(it.weight);
  const double tau = SolveTau(weights, s, &scratch->ipps);

  out->tau = tau;
  IppsProbabilities(weights, tau, &out->probs);
  for (auto& q : out->probs) q = SnapProbability(q);

  auto& work = scratch->work;
  work.assign(out->probs.begin(), out->probs.end());
  HierarchyAggregate(&work, h, rng, scratch);

  out->chosen.clear();
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (work[i] == 1.0) out->chosen.push_back(static_cast<std::uint32_t>(i));
  }
}

SummarizeResult HierarchySummarize(const std::vector<WeightedKey>& items,
                                   const Hierarchy& h, double s, Rng* rng) {
  thread_local SummarizeScratch scratch;
  SummarizeOutput out;
  HierarchySummarizeInto(items, h, s, rng, &scratch, &out);

  SummarizeResult r;
  r.tau = out.tau;
  r.probs = std::move(out.probs);
  std::vector<WeightedKey> chosen;
  chosen.reserve(out.chosen.size());
  for (std::uint32_t i : out.chosen) chosen.push_back(items[i]);
  r.sample = Sample(out.tau, std::move(chosen));
  return r;
}

}  // namespace sas
