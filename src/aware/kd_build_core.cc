#include "aware/kd_build_core.h"

#include <algorithm>
#include <cassert>

#include "core/simd.h"

namespace sas {

namespace {

struct BuildTask {
  std::int32_t node;
  std::uint32_t begin, end;
  std::int32_t depth;
  std::int32_t parent_axis;  // axis the parent split on; -1 for the root
};

static_assert(kKdNull == -1,
              "KdNodeSoA::Emplace hardcodes -1 as the null child/parent");

}  // namespace

KdCoreBuild KdBuildCore(const Coord* coords, int dims, const double* mass,
                        std::size_t n, KdBuildScratch* scratch,
                        std::vector<std::size_t>* item_order) {
  assert(dims >= 1);
  assert(n >= 1);
  MonotonicArena& arena = scratch->arena;
  arena.Reset();

  auto axis_coord = [&](std::uint32_t item, int axis) {
    return coords[static_cast<std::size_t>(item) * dims + axis];
  };

  // One item order per axis, each sorted once (coordinate, then index so
  // ties are deterministic); every split keeps all d orders sorted by a
  // stable partition instead of re-sorting the subrange per node.
  std::uint32_t** ord = arena.AllocateArray<std::uint32_t*>(dims);
  for (int axis = 0; axis < dims; ++axis) {
    ord[axis] = arena.AllocateArray<std::uint32_t>(n);
    std::uint32_t* o = ord[axis];
    for (std::size_t i = 0; i < n; ++i) o[i] = static_cast<std::uint32_t>(i);
    std::sort(o, o + n, [&](std::uint32_t a, std::uint32_t b) {
      const Coord ca = axis_coord(a, axis);
      const Coord cb = axis_coord(b, axis);
      return ca != cb ? ca < cb : a < b;
    });
  }
  std::uint32_t* part_tmp = arena.AllocateArray<std::uint32_t>(n);
  // Median-scan working arrays (one node range at a time): gathered axis
  // coordinates and the running weighted prefix, consumed by the dispatched
  // min-gap kernel.
  double* pref = arena.AllocateArray<double>(n);
  Coord* vals = arena.AllocateArray<Coord>(n);

  const std::size_t node_cap = 2 * n;  // at most 2n - 1 nodes
  KdCoreBuild out;
  out.soa.Init(&arena, node_cap);
  KdNodeSoA& soa = out.soa;
  // DFS with left child processed first: outstanding tasks cover disjoint
  // item ranges, so the stack holds at most n of them.
  BuildTask* stack = arena.AllocateArray<BuildTask>(n + 1);
  std::size_t stack_size = 0;

  item_order->resize(n);
  std::int32_t num_nodes = 1;
  soa.Emplace(0, kKdNull);
  stack[stack_size++] = {0, 0, static_cast<std::uint32_t>(n), 0, -1};
  while (stack_size > 0) {
    const BuildTask t = stack[--stack_size];
    soa.begin[t.node] = t.begin;
    soa.end[t.node] = t.end;
    // Sum the node mass in the order inherited from the parent's split axis
    // (the root sums input order), matching the classic build's summation
    // sequence so masses agree bit-for-bit on duplicate-free inputs.
    double total = 0.0;
    if (t.parent_axis < 0) {
      for (std::uint32_t i = t.begin; i < t.end; ++i) total += mass[i];
    } else {
      const std::uint32_t* po = ord[t.parent_axis];
      for (std::uint32_t i = t.begin; i < t.end; ++i) total += mass[po[i]];
    }
    soa.mass[t.node] = total;
    if (t.end - t.begin <= 1) {
      if (t.end > t.begin) (*item_order)[t.begin] = ord[0][t.begin];
      continue;  // leaf
    }

    // Choose the split axis round-robin; fall back to the next axis when
    // all coordinates coincide on the preferred one. Weighted median: the
    // coordinate boundary minimizing |left mass - right mass|; only
    // boundaries between distinct coordinates are valid split positions.
    int axis = t.depth % dims;
    int used_axis = axis;
    bool split_found = false;
    std::uint32_t split_pos = t.begin;
    Coord split_val = 0;
    for (int attempt = 0; attempt < dims && !split_found;
         ++attempt, axis = (axis + 1) % dims) {
      const std::uint32_t* o = ord[axis];
      if (axis_coord(o[t.begin], axis) == axis_coord(o[t.end - 1], axis)) {
        continue;  // degenerate on this axis
      }
      // Pass 1 (serial by construction — the prefix sum's addition order is
      // part of the bit-identity contract): gather the axis coordinates and
      // accumulate the weighted prefix. Pass 2: the dispatched min-gap scan
      // picks the first boundary minimizing |left - right| mass, exactly as
      // the classic fused loop did.
      const std::uint32_t len = t.end - t.begin;
      double run = 0.0;
      for (std::uint32_t i = 0; i < len; ++i) {
        const std::uint32_t item = o[t.begin + i];
        vals[i] = axis_coord(item, axis);
        run += mass[item];
        pref[i] = run;
      }
      const std::size_t pos = simd::MinGapScan(pref, vals, len, total);
      if (pos != simd::kNoSplit) {
        split_pos = t.begin + static_cast<std::uint32_t>(pos) + 1;
        split_val = vals[pos + 1];
      }
      split_found = pos != simd::kNoSplit;
      used_axis = axis;
    }
    if (!split_found) {
      // All points identical: keep them together as one leaf, emitted in
      // the order of the last attempted axis (ties are index-ordered, so
      // any axis agrees).
      const std::uint32_t* o = ord[(t.depth + dims - 1) % dims];
      for (std::uint32_t i = t.begin; i < t.end; ++i) {
        (*item_order)[i] = o[i];
      }
      continue;
    }
    // The used axis' order is already partitioned by position; stable-
    // partition every other axis' order around the split coordinate so both
    // children again see all orders sorted.
    for (int a = 0; a < dims; ++a) {
      if (a == used_axis) continue;
      std::uint32_t* o2 = ord[a];
      std::uint32_t nl = t.begin, nr = 0;
      for (std::uint32_t i = t.begin; i < t.end; ++i) {
        const std::uint32_t item = o2[i];
        if (axis_coord(item, used_axis) < split_val) {
          o2[nl++] = item;
        } else {
          part_tmp[nr++] = item;
        }
      }
      assert(nl == split_pos);
      std::copy(part_tmp, part_tmp + nr, o2 + nl);
    }

    const std::int32_t left = num_nodes++;
    const std::int32_t right = num_nodes++;
    soa.Emplace(left, t.node);
    soa.Emplace(right, t.node);
    soa.axis[t.node] = used_axis;
    soa.split[t.node] = split_val;
    soa.left[t.node] = left;
    soa.right[t.node] = right;
    stack[stack_size++] = {right, split_pos, t.end, t.depth + 1, used_axis};
    stack[stack_size++] = {left, t.begin, split_pos, t.depth + 1, used_axis};
  }

  assert(static_cast<std::size_t>(num_nodes) < node_cap);
  out.num_nodes = num_nodes;
  return out;
}

}  // namespace sas
