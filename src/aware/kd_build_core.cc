#include "aware/kd_build_core.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace sas {

namespace {

struct BuildTask {
  std::int32_t node;
  std::uint32_t begin, end;
  std::int32_t depth;
  std::int32_t parent_axis;  // axis the parent split on; -1 for the root
};

static_assert(kKdNull == -1,
              "KdNodeSoA::Emplace hardcodes -1 as the null child/parent");

}  // namespace

KdCoreBuild KdBuildCore(const Coord* coords, int dims, const double* mass,
                        std::size_t n, KdBuildScratch* scratch,
                        std::vector<std::size_t>* item_order) {
  assert(dims >= 1);
  assert(n >= 1);
  MonotonicArena& arena = scratch->arena;
  arena.Reset();

  auto axis_coord = [&](std::uint32_t item, int axis) {
    return coords[static_cast<std::size_t>(item) * dims + axis];
  };

  // One item order per axis, each sorted once (coordinate, then index so
  // ties are deterministic); every split keeps all d orders sorted by a
  // stable partition instead of re-sorting the subrange per node.
  std::uint32_t** ord = arena.AllocateArray<std::uint32_t*>(dims);
  for (int axis = 0; axis < dims; ++axis) {
    ord[axis] = arena.AllocateArray<std::uint32_t>(n);
    std::uint32_t* o = ord[axis];
    for (std::size_t i = 0; i < n; ++i) o[i] = static_cast<std::uint32_t>(i);
    std::sort(o, o + n, [&](std::uint32_t a, std::uint32_t b) {
      const Coord ca = axis_coord(a, axis);
      const Coord cb = axis_coord(b, axis);
      return ca != cb ? ca < cb : a < b;
    });
  }
  std::uint32_t* part_tmp = arena.AllocateArray<std::uint32_t>(n);

  const std::size_t node_cap = 2 * n;  // at most 2n - 1 nodes
  KdCoreBuild out;
  out.soa.Init(&arena, node_cap);
  KdNodeSoA& soa = out.soa;
  // DFS with left child processed first: outstanding tasks cover disjoint
  // item ranges, so the stack holds at most n of them.
  BuildTask* stack = arena.AllocateArray<BuildTask>(n + 1);
  std::size_t stack_size = 0;

  item_order->resize(n);
  std::int32_t num_nodes = 1;
  soa.Emplace(0, kKdNull);
  stack[stack_size++] = {0, 0, static_cast<std::uint32_t>(n), 0, -1};
  while (stack_size > 0) {
    const BuildTask t = stack[--stack_size];
    soa.begin[t.node] = t.begin;
    soa.end[t.node] = t.end;
    // Sum the node mass in the order inherited from the parent's split axis
    // (the root sums input order), matching the classic build's summation
    // sequence so masses agree bit-for-bit on duplicate-free inputs.
    double total = 0.0;
    if (t.parent_axis < 0) {
      for (std::uint32_t i = t.begin; i < t.end; ++i) total += mass[i];
    } else {
      const std::uint32_t* po = ord[t.parent_axis];
      for (std::uint32_t i = t.begin; i < t.end; ++i) total += mass[po[i]];
    }
    soa.mass[t.node] = total;
    if (t.end - t.begin <= 1) {
      if (t.end > t.begin) (*item_order)[t.begin] = ord[0][t.begin];
      continue;  // leaf
    }

    // Choose the split axis round-robin; fall back to the next axis when
    // all coordinates coincide on the preferred one. Weighted median: the
    // coordinate boundary minimizing |left mass - right mass|; only
    // boundaries between distinct coordinates are valid split positions.
    int axis = t.depth % dims;
    int used_axis = axis;
    bool split_found = false;
    std::uint32_t split_pos = t.begin;
    Coord split_val = 0;
    for (int attempt = 0; attempt < dims && !split_found;
         ++attempt, axis = (axis + 1) % dims) {
      const std::uint32_t* o = ord[axis];
      if (axis_coord(o[t.begin], axis) == axis_coord(o[t.end - 1], axis)) {
        continue;  // degenerate on this axis
      }
      double run = 0.0;
      double best_gap = std::numeric_limits<double>::infinity();
      for (std::uint32_t i = t.begin; i + 1 < t.end; ++i) {
        run += mass[o[i]];
        if (axis_coord(o[i], axis) == axis_coord(o[i + 1], axis)) {
          continue;  // not a coordinate boundary
        }
        const double gap = std::fabs(total - 2.0 * run);
        if (gap < best_gap) {
          best_gap = gap;
          split_pos = i + 1;
          split_val = axis_coord(o[i + 1], axis);
        }
      }
      split_found = split_pos > t.begin;
      used_axis = axis;
    }
    if (!split_found) {
      // All points identical: keep them together as one leaf, emitted in
      // the order of the last attempted axis (ties are index-ordered, so
      // any axis agrees).
      const std::uint32_t* o = ord[(t.depth + dims - 1) % dims];
      for (std::uint32_t i = t.begin; i < t.end; ++i) {
        (*item_order)[i] = o[i];
      }
      continue;
    }
    // The used axis' order is already partitioned by position; stable-
    // partition every other axis' order around the split coordinate so both
    // children again see all orders sorted.
    for (int a = 0; a < dims; ++a) {
      if (a == used_axis) continue;
      std::uint32_t* o2 = ord[a];
      std::uint32_t nl = t.begin, nr = 0;
      for (std::uint32_t i = t.begin; i < t.end; ++i) {
        const std::uint32_t item = o2[i];
        if (axis_coord(item, used_axis) < split_val) {
          o2[nl++] = item;
        } else {
          part_tmp[nr++] = item;
        }
      }
      assert(nl == split_pos);
      std::copy(part_tmp, part_tmp + nr, o2 + nl);
    }

    const std::int32_t left = num_nodes++;
    const std::int32_t right = num_nodes++;
    soa.Emplace(left, t.node);
    soa.Emplace(right, t.node);
    soa.axis[t.node] = used_axis;
    soa.split[t.node] = split_val;
    soa.left[t.node] = left;
    soa.right[t.node] = right;
    stack[stack_size++] = {right, split_pos, t.end, t.depth + 1, used_axis};
    stack[stack_size++] = {left, t.begin, split_pos, t.depth + 1, used_axis};
  }

  assert(static_cast<std::size_t>(num_nodes) < node_cap);
  out.num_nodes = num_nodes;
  return out;
}

}  // namespace sas
