// d-dimensional KD-HIERARCHY and product summarizer (Section 4 in full
// generality). The evaluation datasets are 2-D (see kd_hierarchy.h /
// product_summarizer.h, which the benches use); this module implements the
// paper's general-d construction, whose box discrepancy is
// O(min{p(R), 2d s^((d-1)/d)}) concentrated around s^((d-1)/(2d)).
//
// Points are stored flat: point i occupies coords[i*dims .. i*dims+dims).

#ifndef SAS_AWARE_KD_ND_H_
#define SAS_AWARE_KD_ND_H_

#include <cstddef>
#include <vector>

#include "aware/kd_scratch.h"
#include "core/random.h"
#include "core/types.h"

namespace sas {

struct SummarizeScratch;  // aware/summarize_scratch.h

/// An axis-parallel box in d dimensions: one interval per axis.
using BoxN = std::vector<Interval>;

/// True if flat point `pt` (dims coords) lies in the box.
bool BoxNContains(const BoxN& box, const Coord* pt);

class KdHierarchyNd {
 public:
  static constexpr int kNull = -1;

  struct Node {
    int left = kNull;
    int right = kNull;
    int axis = 0;
    Coord split = 0;
    double mass = 0.0;
    std::size_t begin = 0;
    std::size_t end = 0;

    bool IsLeaf() const { return left == kNull; }
  };

  /// Builds over n = coords.size()/dims points with per-point mass,
  /// splitting axes round-robin at weighted medians. A thin wrapper over
  /// the shared dims-parameterized KdBuildCore (aware/kd_build_core.h) —
  /// the same build loop as KdHierarchy::Build: each axis sorted once, the
  /// d axis orders maintained through stable partitions, all working
  /// memory from the scratch arena. The overload without a scratch uses an
  /// internal thread-local workspace.
  static KdHierarchyNd Build(const std::vector<Coord>& coords, int dims,
                             const std::vector<double>& mass);
  static KdHierarchyNd Build(const std::vector<Coord>& coords, int dims,
                             const std::vector<double>& mass,
                             KdBuildScratch* scratch);

  /// Rebuilds *out in place, reusing its node and item-order storage in
  /// addition to the scratch arena: a warm (scratch, out) pair makes the
  /// whole build allocation-free. Produces exactly the tree Build returns.
  static void BuildInto(const std::vector<Coord>& coords, int dims,
                        const std::vector<double>& mass,
                        KdBuildScratch* scratch, KdHierarchyNd* out);

  const std::vector<Node>& nodes() const { return nodes_; }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int root() const { return nodes_.empty() ? kNull : 0; }
  int dims() const { return dims_; }
  const std::vector<std::size_t>& item_order() const { return item_order_; }

 private:
  int dims_ = 0;
  std::vector<Node> nodes_;
  std::vector<std::size_t> item_order_;
};

/// One weighted d-dimensional key for the general summarizer.
struct ResultNd {
  double tau = 0.0;
  std::vector<double> probs;        // initial IPPS probabilities
  std::vector<std::size_t> chosen;  // indices of sampled keys
};

/// Structure-aware VarOpt sample of (expected) size s over d-dimensional
/// points (flat coords, one weight per point): IPPS probabilities, kd
/// hierarchy over the open keys, bottom-up pair aggregation.
ResultNd ProductSummarizeNd(const std::vector<Coord>& coords, int dims,
                            const std::vector<Weight>& weights, double s,
                            Rng* rng);

/// Scratch-backed core of ProductSummarizeNd: identical draws and result,
/// but every working vector (and the kd tree itself) lives in `scratch`
/// and out->probs / out->chosen reuse their capacity, so a warm
/// (scratch, out) pair summarizes without heap allocation (see
/// aware/summarize_scratch.h for the reuse contract).
void ProductSummarizeNdInto(const std::vector<Coord>& coords, int dims,
                            const std::vector<Weight>& weights, double s,
                            Rng* rng, SummarizeScratch* scratch,
                            ResultNd* out);

}  // namespace sas

#endif  // SAS_AWARE_KD_ND_H_
