#include "aware/product_summarizer.h"

#include <cassert>

#include "core/ipps.h"
#include "core/pair_aggregate.h"

namespace sas {

void KdAggregate(std::vector<double>* probs, const KdHierarchy& tree,
                 Rng* rng, SummarizeScratch* scratch) {
  const int n = tree.num_nodes();
  if (n == 0) return;
  // Children are created after their parent, so a reverse scan is
  // bottom-up.
  auto& leftover = scratch->leftover;
  leftover.assign(static_cast<std::size_t>(n), kNoEntry);
  auto& entries = scratch->entries;
  RngStream draws(rng);
  for (int v = n - 1; v >= 0; --v) {
    const auto& node = tree.nodes()[static_cast<std::size_t>(v)];
    entries.clear();
    if (node.IsLeaf()) {
      for (std::size_t i = node.begin; i < node.end; ++i) {
        const std::size_t item = tree.item_order()[i];
        if (!IsSet((*probs)[item])) entries.push_back(item);
      }
    } else {
      if (leftover[static_cast<std::size_t>(node.left)] != kNoEntry) {
        entries.push_back(leftover[static_cast<std::size_t>(node.left)]);
      }
      if (leftover[static_cast<std::size_t>(node.right)] != kNoEntry) {
        entries.push_back(leftover[static_cast<std::size_t>(node.right)]);
      }
    }
    leftover[static_cast<std::size_t>(v)] = ChainAggregateRange(
        probs->data(), entries.data(), entries.size(), kNoEntry, &draws);
  }
  ResolveResidual(probs->data(),
                  leftover[static_cast<std::size_t>(tree.root())], &draws);
}

void KdAggregate(std::vector<double>* probs, const KdHierarchy& tree,
                 Rng* rng) {
  thread_local SummarizeScratch scratch;
  KdAggregate(probs, tree, rng, &scratch);
}

void ProductSummarizeInto(const std::vector<WeightedKey>& items, double s,
                          Rng* rng, SummarizeScratch* scratch,
                          SummarizeOutput* out) {
  auto& weights = scratch->weights;
  weights.clear();
  weights.reserve(items.size());
  for (const auto& it : items) weights.push_back(it.weight);
  const double tau = SolveTau(weights, s, &scratch->ipps);

  out->tau = tau;
  IppsProbabilities(weights, tau, &out->probs);
  for (auto& q : out->probs) q = SnapProbability(q);

  // Keys with p == 1 are always in the sample; the kd-tree is built over
  // the open keys only, with their probabilities as mass.
  auto& open = scratch->open;
  open.clear();
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (!IsSet(out->probs[i])) open.push_back(i);
  }
  auto& pts = scratch->pts;
  auto& mass = scratch->mass;
  pts.clear();
  mass.clear();
  pts.reserve(open.size());
  mass.reserve(open.size());
  for (std::size_t i : open) {
    pts.push_back(items[i].pt);
    mass.push_back(out->probs[i]);
  }
  KdHierarchy::BuildInto(pts, mass, &scratch->kd, &scratch->tree);

  // Aggregate over local (open-subset) indices, then map back.
  auto& work = scratch->work;
  work.assign(mass.begin(), mass.end());
  KdAggregate(&work, scratch->tree, rng, scratch);

  out->chosen.clear();
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (out->probs[i] == 1.0) {
      out->chosen.push_back(static_cast<std::uint32_t>(i));
    }
  }
  for (std::size_t j = 0; j < open.size(); ++j) {
    if (work[j] == 1.0) {
      out->chosen.push_back(static_cast<std::uint32_t>(open[j]));
    }
  }
}

SummarizeResult ProductSummarize(const std::vector<WeightedKey>& items,
                                 double s, Rng* rng) {
  thread_local SummarizeScratch scratch;
  SummarizeOutput out;
  ProductSummarizeInto(items, s, rng, &scratch, &out);

  SummarizeResult r;
  r.tau = out.tau;
  r.probs = std::move(out.probs);
  std::vector<WeightedKey> chosen;
  chosen.reserve(out.chosen.size());
  for (std::uint32_t i : out.chosen) chosen.push_back(items[i]);
  r.sample = Sample(out.tau, std::move(chosen));
  return r;
}

}  // namespace sas
