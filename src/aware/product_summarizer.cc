#include "aware/product_summarizer.h"

#include <cassert>

#include "core/ipps.h"
#include "core/pair_aggregate.h"

namespace sas {

void KdAggregate(std::vector<double>* probs, const KdHierarchy& tree,
                 Rng* rng) {
  const int n = tree.num_nodes();
  if (n == 0) return;
  // Children are created after their parent, so a reverse scan is
  // bottom-up.
  std::vector<std::size_t> leftover(n, kNoEntry);
  std::vector<std::size_t> entries;
  RngStream draws(rng);
  for (int v = n - 1; v >= 0; --v) {
    const auto& node = tree.nodes()[v];
    entries.clear();
    if (node.IsLeaf()) {
      for (std::size_t i = node.begin; i < node.end; ++i) {
        const std::size_t item = tree.item_order()[i];
        if (!IsSet((*probs)[item])) entries.push_back(item);
      }
    } else {
      if (leftover[node.left] != kNoEntry) {
        entries.push_back(leftover[node.left]);
      }
      if (leftover[node.right] != kNoEntry) {
        entries.push_back(leftover[node.right]);
      }
    }
    leftover[v] = ChainAggregateRange(probs->data(), entries.data(),
                                      entries.size(), kNoEntry, &draws);
  }
  ResolveResidual(probs->data(), leftover[tree.root()], &draws);
}

SummarizeResult ProductSummarize(const std::vector<WeightedKey>& items,
                                 double s, Rng* rng) {
  std::vector<Weight> weights;
  weights.reserve(items.size());
  for (const auto& it : items) weights.push_back(it.weight);
  const double tau = SolveTau(weights, s);

  SummarizeResult out;
  out.tau = tau;
  IppsProbabilities(weights, tau, &out.probs);
  for (auto& q : out.probs) q = SnapProbability(q);

  // Keys with p == 1 are always in the sample; the kd-tree is built over
  // the open keys only, with their probabilities as mass.
  std::vector<std::size_t> open;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (!IsSet(out.probs[i])) open.push_back(i);
  }
  std::vector<Point2D> pts;
  std::vector<double> mass;
  pts.reserve(open.size());
  mass.reserve(open.size());
  for (std::size_t i : open) {
    pts.push_back(items[i].pt);
    mass.push_back(out.probs[i]);
  }
  const KdHierarchy tree = KdHierarchy::Build(pts, mass);

  // Aggregate over local (open-subset) indices, then map back.
  std::vector<double> work_local = mass;
  KdAggregate(&work_local, tree, rng);

  std::vector<WeightedKey> chosen;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (out.probs[i] == 1.0) chosen.push_back(items[i]);
  }
  for (std::size_t j = 0; j < open.size(); ++j) {
    if (work_local[j] == 1.0) chosen.push_back(items[open[j]]);
  }
  out.sample = Sample(tau, std::move(chosen));
  return out;
}

}  // namespace sas
