// Main-memory structure-aware VarOpt sampling for product structures
// (Section 4, general case):
//   1. compute IPPS probabilities and set aside every key with p = 1;
//   2. build KD-HIERARCHY over the remaining keys (mass = probability);
//   3. aggregate bottom-up along the kd-tree (lowest-LCA rule).
//
// The discrepancy on an axis-parallel box R behaves like a VarOpt sample on
// a subset of expected size mu <= min{p(R), 2d s^((d-1)/d)} (Appendix E).

#ifndef SAS_AWARE_PRODUCT_SUMMARIZER_H_
#define SAS_AWARE_PRODUCT_SUMMARIZER_H_

#include <vector>

#include "aware/kd_hierarchy.h"
#include "aware/order_summarizer.h"
#include "core/random.h"
#include "core/types.h"

namespace sas {

/// Low-level: aggregates the open entries of *probs (indexed like the build
/// items of `tree`) bottom-up along the kd-tree. On return all entries are
/// set. The scratch overload routes the per-node carries through `scratch`
/// (allocation-free when warm); the plain overload keeps a thread-local
/// one.
void KdAggregate(std::vector<double>* probs, const KdHierarchy& tree,
                 Rng* rng);
void KdAggregate(std::vector<double>* probs, const KdHierarchy& tree,
                 Rng* rng, SummarizeScratch* scratch);

/// Draws a structure-aware VarOpt sample of (expected) size s over the 2-D
/// points of `items`.
SummarizeResult ProductSummarize(const std::vector<WeightedKey>& items,
                                 double s, Rng* rng);

/// Scratch-backed core of ProductSummarize (identical draws and sample;
/// see aware/summarize_scratch.h for the reuse contract). out->chosen
/// lists the certain inclusions (p == 1) in ascending index order first,
/// then the aggregation picks in open-subset order, matching the sample
/// order of ProductSummarize.
void ProductSummarizeInto(const std::vector<WeightedKey>& items, double s,
                          Rng* rng, SummarizeScratch* scratch,
                          SummarizeOutput* out);

}  // namespace sas

#endif  // SAS_AWARE_PRODUCT_SUMMARIZER_H_
