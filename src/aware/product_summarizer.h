// Main-memory structure-aware VarOpt sampling for product structures
// (Section 4, general case):
//   1. compute IPPS probabilities and set aside every key with p = 1;
//   2. build KD-HIERARCHY over the remaining keys (mass = probability);
//   3. aggregate bottom-up along the kd-tree (lowest-LCA rule).
//
// The discrepancy on an axis-parallel box R behaves like a VarOpt sample on
// a subset of expected size mu <= min{p(R), 2d s^((d-1)/d)} (Appendix E).

#ifndef SAS_AWARE_PRODUCT_SUMMARIZER_H_
#define SAS_AWARE_PRODUCT_SUMMARIZER_H_

#include <vector>

#include "aware/kd_hierarchy.h"
#include "aware/order_summarizer.h"
#include "core/random.h"
#include "core/types.h"

namespace sas {

/// Low-level: aggregates the open entries of *probs (indexed like the build
/// items of `tree`) bottom-up along the kd-tree. On return all entries are
/// set.
void KdAggregate(std::vector<double>* probs, const KdHierarchy& tree,
                 Rng* rng);

/// Draws a structure-aware VarOpt sample of (expected) size s over the 2-D
/// points of `items`.
SummarizeResult ProductSummarize(const std::vector<WeightedKey>& items,
                                 double s, Rng* rng);

}  // namespace sas

#endif  // SAS_AWARE_PRODUCT_SUMMARIZER_H_
