#include "aware/disjoint_summarizer.h"

#include <cassert>

#include "core/ipps.h"
#include "core/pair_aggregate.h"

namespace sas {

void DisjointAggregate(std::vector<double>* probs,
                       const std::vector<int>& range_of, int num_ranges,
                       Rng* rng) {
  assert(probs->size() == range_of.size());
  // Bucket the open entries per range.
  std::vector<std::vector<std::size_t>> buckets(num_ranges);
  for (std::size_t i = 0; i < probs->size(); ++i) {
    if (!IsSet((*probs)[i])) {
      assert(range_of[i] >= 0 && range_of[i] < num_ranges);
      buckets[range_of[i]].push_back(i);
    }
  }
  // Stage 1: aggregate inside each range; stage 2: chain the leftovers.
  // Both stages share one draw stream, repositioned once at the end.
  RngStream draws(rng);
  std::vector<std::size_t> leftovers;
  for (const auto& bucket : buckets) {
    const std::size_t l = ChainAggregateRange(probs->data(), bucket.data(),
                                              bucket.size(), kNoEntry, &draws);
    if (l != kNoEntry) leftovers.push_back(l);
  }
  const std::size_t final_entry = ChainAggregateRange(
      probs->data(), leftovers.data(), leftovers.size(), kNoEntry, &draws);
  ResolveResidual(probs->data(), final_entry, &draws);
}

SummarizeResult DisjointSummarize(const std::vector<WeightedKey>& items,
                                  const std::vector<int>& range_of,
                                  int num_ranges, double s, Rng* rng) {
  std::vector<Weight> weights;
  weights.reserve(items.size());
  for (const auto& it : items) weights.push_back(it.weight);
  const double tau = SolveTau(weights, s);

  SummarizeResult out;
  out.tau = tau;
  IppsProbabilities(weights, tau, &out.probs);
  for (auto& q : out.probs) q = SnapProbability(q);

  std::vector<double> work = out.probs;
  DisjointAggregate(&work, range_of, num_ranges, rng);

  std::vector<WeightedKey> chosen;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (work[i] == 1.0) chosen.push_back(items[i]);
  }
  out.sample = Sample(tau, std::move(chosen));
  return out;
}

}  // namespace sas
