#include "aware/disjoint_summarizer.h"

#include <cassert>

#include "core/ipps.h"
#include "core/pair_aggregate.h"

namespace sas {

void DisjointAggregate(std::vector<double>* probs,
                       const std::vector<int>& range_of, int num_ranges,
                       Rng* rng, SummarizeScratch* scratch) {
  assert(probs->size() == range_of.size());
  // Bucket the open entries per range by counting sort: the fill below is
  // stable over ascending i, so bucket r holds exactly the entries the
  // classic vector<vector> push_back order produced.
  auto& start = scratch->bucket_start;
  start.assign(static_cast<std::size_t>(num_ranges) + 1, 0);
  for (std::size_t i = 0; i < probs->size(); ++i) {
    if (!IsSet((*probs)[i])) {
      assert(range_of[i] >= 0 && range_of[i] < num_ranges);
      ++start[static_cast<std::size_t>(range_of[i]) + 1];
    }
  }
  for (int r = 0; r < num_ranges; ++r) {
    start[static_cast<std::size_t>(r) + 1] += start[static_cast<std::size_t>(r)];
  }
  auto& bucket_items = scratch->bucket_items;
  bucket_items.resize(start[static_cast<std::size_t>(num_ranges)]);
  for (std::size_t i = 0; i < probs->size(); ++i) {
    if (!IsSet((*probs)[i])) {
      bucket_items[start[static_cast<std::size_t>(range_of[i])]++] = i;
    }
  }
  // After the fill, start[r] is the END offset of bucket r (and bucket r
  // begins where bucket r-1 ends).
  // Stage 1: aggregate inside each range; stage 2: chain the leftovers.
  // Both stages share one draw stream, repositioned once at the end.
  RngStream draws(rng);
  auto& leftovers = scratch->entries;
  leftovers.clear();
  std::size_t begin = 0;
  for (int r = 0; r < num_ranges; ++r) {
    const std::size_t end = start[static_cast<std::size_t>(r)];
    const std::size_t l = ChainAggregateRange(
        probs->data(), bucket_items.data() + begin, end - begin, kNoEntry,
        &draws);
    if (l != kNoEntry) leftovers.push_back(l);
    begin = end;
  }
  const std::size_t final_entry = ChainAggregateRange(
      probs->data(), leftovers.data(), leftovers.size(), kNoEntry, &draws);
  ResolveResidual(probs->data(), final_entry, &draws);
}

void DisjointAggregate(std::vector<double>* probs,
                       const std::vector<int>& range_of, int num_ranges,
                       Rng* rng) {
  thread_local SummarizeScratch scratch;
  DisjointAggregate(probs, range_of, num_ranges, rng, &scratch);
}

void DisjointSummarizeInto(const std::vector<WeightedKey>& items,
                           const std::vector<int>& range_of, int num_ranges,
                           double s, Rng* rng, SummarizeScratch* scratch,
                           SummarizeOutput* out) {
  auto& weights = scratch->weights;
  weights.clear();
  weights.reserve(items.size());
  for (const auto& it : items) weights.push_back(it.weight);
  const double tau = SolveTau(weights, s, &scratch->ipps);

  out->tau = tau;
  IppsProbabilities(weights, tau, &out->probs);
  for (auto& q : out->probs) q = SnapProbability(q);

  auto& work = scratch->work;
  work.assign(out->probs.begin(), out->probs.end());
  DisjointAggregate(&work, range_of, num_ranges, rng, scratch);

  out->chosen.clear();
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (work[i] == 1.0) out->chosen.push_back(static_cast<std::uint32_t>(i));
  }
}

SummarizeResult DisjointSummarize(const std::vector<WeightedKey>& items,
                                  const std::vector<int>& range_of,
                                  int num_ranges, double s, Rng* rng) {
  thread_local SummarizeScratch scratch;
  SummarizeOutput out;
  DisjointSummarizeInto(items, range_of, num_ranges, s, rng, &scratch, &out);

  SummarizeResult r;
  r.tau = out.tau;
  r.probs = std::move(out.probs);
  std::vector<WeightedKey> chosen;
  chosen.reserve(out.chosen.size());
  for (std::uint32_t i : out.chosen) chosen.push_back(items[i]);
  r.sample = Sample(out.tau, std::move(chosen));
  return r;
}

}  // namespace sas
