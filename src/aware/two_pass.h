// I/O-efficient structure-aware sampling (Section 5).
//
// Two read-only streaming passes over the (unsorted) data with memory
// O~(s):
//   Pass 1: compute the IPPS threshold tau_s (Algorithm 4) and draw a
//           structure-oblivious guide sample S' of size s' = factor * s
//           (stream VarOpt).
//   Between passes: build a partition L of the key domain from S' such that
//           with high probability p(L) <= 1 for every cell.
//   Pass 2: IO-AGGREGATE (Algorithm 3) — maintain one active key per cell;
//           pair-aggregate each arriving key with its cell's active key.
//   Final:  aggregate the remaining active keys following the structure.
//
// Partitions are provided for product structures (kd-tree over S'), order
// structures (subintervals between consecutive S' keys) and hierarchies
// (linearization — giving Delta < 2 — per the paper's discussion).

#ifndef SAS_AWARE_TWO_PASS_H_
#define SAS_AWARE_TWO_PASS_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "aware/kd_hierarchy.h"
#include "core/random.h"
#include "core/sample.h"
#include "core/types.h"
#include "structure/hierarchy.h"

namespace sas {

struct TwoPassConfig {
  /// Oversampling factor: s' = factor * s (the paper uses 5).
  double sprime_factor = 5.0;
};

/// Streaming two-pass summarizer for 2-D product structures. Call Pass1
/// over every item, then BeginPass2, then Pass2 over every item (any
/// order), then Finalize. The convenience function below wraps this for
/// in-memory vectors, iterating them like a stream.
class TwoPassProductSampler {
 public:
  TwoPassProductSampler(double s, TwoPassConfig cfg, Rng rng);
  ~TwoPassProductSampler();  // out-of-line: Pass1State is incomplete here

  void Pass1(const WeightedKey& item);

  /// Builds the partition from the pass-1 state. Memory O(s').
  void BeginPass2();

  void Pass2(const WeightedKey& item);

  /// Aggregates the remaining active keys along the kd-tree and returns the
  /// final sample of size (essentially) s.
  Sample Finalize();

  double tau() const { return tau_; }

  /// Number of partition cells (kd leaves over the guide sample).
  std::size_t num_cells() const { return active_.size(); }

 private:
  double s_;
  TwoPassConfig cfg_;
  // sas-lint: allow(unforked-rng): member slot only; every constructor
  // copies it from the caller-provided generator.
  Rng rng_;

  // Pass-1 state (defined in two_pass.cc to keep this header light).
  struct Pass1State;
  std::unique_ptr<Pass1State> pass1_;

  // Pass-2 state.
  double tau_ = 0.0;
  KdHierarchy partition_;
  std::vector<int> cell_of_leaf_;  // kd node id -> cell index
  struct ActiveKey {
    WeightedKey key;
    double p = 0.0;
    bool present = false;
  };
  std::vector<ActiveKey> active_;  // one slot per cell
  std::vector<WeightedKey> sample_;
  bool pass2_begun_ = false;
};

/// Convenience wrapper: runs both passes over `items` and returns the
/// sample together with the IPPS probabilities (for discrepancy checks).
Sample TwoPassProductSample(const std::vector<WeightedKey>& items, double s,
                            const TwoPassConfig& cfg, Rng* rng);

/// Two-pass summarizer for order structures (1-D, ordered by pt.x): the
/// partition consists of the intervals between consecutive guide-sample
/// keys; final aggregation scans cells left to right (Delta < 2 w.h.p.).
Sample TwoPassOrderSample(const std::vector<WeightedKey>& items, double s,
                          const TwoPassConfig& cfg, Rng* rng);

/// Two-pass summarizer for disjoint ranges (Section 5): one cell per range
/// represented in the guide sample, plus one cell per maximal run of
/// unrepresented range ids between represented ones. Delta < 1 per range
/// w.h.p. `range_of` maps a key to its range id in [0, num_ranges).
Sample TwoPassDisjointSample(const std::vector<WeightedKey>& items,
                             const std::vector<int>& range_of,
                             int num_ranges, double s,
                             const TwoPassConfig& cfg, Rng* rng);

/// Which Section 5 partition the hierarchy two-pass uses.
enum class HierarchyTwoPassVariant {
  kLinearize,  // totally order keys by DFS rank; Delta < 2 w.h.p.
  kAncestors,  // cells = lowest guide-selected ancestors; Delta < 1 w.h.p.
};

/// Two-pass summarizer for hierarchies (Section 5). items[k] must be the
/// key at hierarchy leaf leaf_of_key(k) with k == item.id.
Sample TwoPassHierarchySample(const std::vector<WeightedKey>& items,
                              const Hierarchy& h, double s,
                              const TwoPassConfig& cfg,
                              HierarchyTwoPassVariant variant, Rng* rng);

}  // namespace sas

#endif  // SAS_AWARE_TWO_PASS_H_
