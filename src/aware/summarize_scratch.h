// Reusable per-build workspace for the structure-aware summarizers.
//
// Every *SummarizeInto entry point (order / hierarchy / disjoint / product
// / nd) routes ALL of its working memory — extracted weights, aggregation
// probabilities, sort orders, chain buckets, kd open subsets, and the kd
// tree storage itself — through one of these, so a caller that keeps a
// scratch and an output alive rebuilds summaries with zero steady-state
// heap allocations (pinned by BM_SummarizerRebuild's allocs_per_iter
// counter in bench/micro_core.cc). The vectors grow to the largest build
// seen and keep their capacity; the kd arena does the same.
//
// Ownership mirrors KdBuildScratch / IppsScratch: a scratch may be reused
// across any number of builds but serves one build at a time, and nothing
// inside it outlives the build that filled it. The scratch-less
// convenience wrappers (OrderSummarize etc.) keep one thread-local
// instance, which the sharded backend's one-thread-per-shard workers
// exercise safely.

#ifndef SAS_AWARE_SUMMARIZE_SCRATCH_H_
#define SAS_AWARE_SUMMARIZE_SCRATCH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "aware/kd_hierarchy.h"
#include "aware/kd_nd.h"
#include "aware/kd_scratch.h"
#include "core/ipps.h"
#include "core/types.h"

namespace sas {

struct SummarizeScratch {
  IppsScratch ipps;      // SolveTau partition buffer
  KdBuildScratch kd;     // kd build arena (product / nd)
  KdHierarchy tree;      // recycled 2-D tree storage (product)
  KdHierarchyNd tree_nd; // recycled d-dim tree storage (nd)

  std::vector<Weight> weights;        // extracted item weights
  std::vector<double> work;           // aggregated probabilities
  std::vector<double> mass;           // open-subset masses (product / nd)
  std::vector<Coord> xs;              // order: sort coordinates
  std::vector<Coord> coords;          // nd: open-subset flat coordinates
  std::vector<Point2D> pts;           // product: open-subset points
  std::vector<std::size_t> order;     // order: sorted positions
  std::vector<std::size_t> open;      // open item indices (product / nd)
  std::vector<std::size_t> leftover;  // per-node chain carries
  std::vector<std::size_t> entries;   // per-node open entries / leftovers
  std::vector<std::size_t> bucket_start;  // disjoint: bucket offsets
  std::vector<std::size_t> bucket_items;  // disjoint: bucketed open indices
};

/// Caller-owned result of an Into-style summarization; reusable across
/// builds the same way the scratch is (the d-dim summarizer reuses its
/// ResultNd likewise). Indices refer to the build input.
struct SummarizeOutput {
  double tau = 0.0;
  std::vector<double> probs;          // snapped initial IPPS probabilities
  std::vector<std::uint32_t> chosen;  // indices of sampled keys, ascending
};

}  // namespace sas

#endif  // SAS_AWARE_SUMMARIZE_SCRATCH_H_
