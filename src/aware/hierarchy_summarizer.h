// Structure-aware VarOpt sampling over hierarchies (Section 3, Figure 1).
//
// Pair selection follows the lowest-LCA rule, implemented bottom-up: each
// subtree surrenders at most one open "leftover" key, and an internal node
// chains its children's leftovers. Probability mass therefore never crosses
// a node boundary while the node has two or more open keys, which yields
// the optimal maximum range discrepancy Delta < 1 for every node range.

#ifndef SAS_AWARE_HIERARCHY_SUMMARIZER_H_
#define SAS_AWARE_HIERARCHY_SUMMARIZER_H_

#include <vector>

#include "aware/order_summarizer.h"
#include "core/random.h"
#include "core/sample.h"
#include "core/types.h"
#include "structure/hierarchy.h"

namespace sas {

/// Low-level: aggregates open entries of *probs (indexed by key id, one per
/// hierarchy leaf) following the lowest-LCA rule. On return every entry is
/// set. Entries already set (0 or 1) are untouched. The scratch overload
/// routes the per-node carries through `scratch` (allocation-free when
/// warm); the plain overload keeps a thread-local one.
void HierarchyAggregate(std::vector<double>* probs, const Hierarchy& h,
                        Rng* rng);
void HierarchyAggregate(std::vector<double>* probs, const Hierarchy& h,
                        Rng* rng, SummarizeScratch* scratch);

/// Draws a structure-aware VarOpt sample of (expected) size s. items[k]
/// must be the key at hierarchy leaf leaf_of_key(k); probabilities are IPPS
/// for the exact offline threshold.
SummarizeResult HierarchySummarize(const std::vector<WeightedKey>& items,
                                   const Hierarchy& h, double s, Rng* rng);

/// Scratch-backed core of HierarchySummarize (identical draws and sample;
/// see aware/summarize_scratch.h for the reuse contract).
void HierarchySummarizeInto(const std::vector<WeightedKey>& items,
                            const Hierarchy& h, double s, Rng* rng,
                            SummarizeScratch* scratch, SummarizeOutput* out);

}  // namespace sas

#endif  // SAS_AWARE_HIERARCHY_SUMMARIZER_H_
