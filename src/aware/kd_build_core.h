// Dims-parameterized kd build core shared by the 2-D KdHierarchy and the
// general-d KdHierarchyNd (both are thin wrappers over KdBuildCore).
//
// The core owns the whole hot path of a weighted kd construction:
//
//  * the sort-once scheme — one item order per axis, each sorted a single
//    time up front (coordinate, then index so ties are deterministic), with
//    every split maintaining all d orders through stable partitions instead
//    of re-sorting subranges per node;
//  * round-robin axis choice with fallback to the next axis when all
//    coordinates coincide on the preferred one, splitting at the weighted
//    median (the coordinate boundary minimizing |left mass - right mass|);
//  * the SoA node accumulators (KdNodeSoA) and the explicit task stack,
//    all bump-allocated from the caller's KdBuildScratch arena.
//
// Points are flat: point i occupies coords[i*dims .. i*dims+dims). The 2-D
// wrapper routes its Point2D storage through a flat-coords facade (a
// static_assert-checked reinterpretation of the point array), so both
// public entry points run byte-for-byte the same build loop.

#ifndef SAS_AWARE_KD_BUILD_CORE_H_
#define SAS_AWARE_KD_BUILD_CORE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "aware/kd_scratch.h"
#include "core/types.h"

namespace sas {

/// Null child/parent sentinel of the core's SoA nodes; both public kd
/// classes pin their own kNull to this value.
inline constexpr std::int32_t kKdNull = -1;

/// One finished core build. The SoA arrays live in the scratch arena and
/// stay valid only until the scratch's next Reset (i.e. the next build);
/// callers copy them into their public node representation before reuse.
struct KdCoreBuild {
  KdNodeSoA soa;
  std::int32_t num_nodes = 0;
};

/// Builds the kd tree over n flat d-dimensional points with per-point mass
/// (IPPS probabilities or uniform 1s), filling `item_order` with the item
/// indices in kd DFS-leaf order. Exact duplicate points are kept together
/// in one leaf (emitted in index order). Requires n >= 1 and dims >= 1;
/// the scratch arena is Reset on entry, so one scratch serves one build at
/// a time and pointers from a previous build are invalidated.
KdCoreBuild KdBuildCore(const Coord* coords, int dims, const double* mass,
                        std::size_t n, KdBuildScratch* scratch,
                        std::vector<std::size_t>* item_order);

}  // namespace sas

#endif  // SAS_AWARE_KD_BUILD_CORE_H_
