#include "aware/two_pass.h"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "core/ipps.h"
#include "core/pair_aggregate.h"
#include "sampling/stream_varopt.h"
#include "structure/order.h"

namespace sas {

struct TwoPassProductSampler::Pass1State {
  StreamTau tau_tracker;
  StreamVarOpt guide;

  Pass1State(double s, std::size_t sprime, Rng rng)
      : tau_tracker(s), guide(sprime, rng) {}
};

TwoPassProductSampler::TwoPassProductSampler(double s, TwoPassConfig cfg,
                                             Rng rng)
    : s_(s), cfg_(cfg), rng_(rng) {
  const auto sprime = static_cast<std::size_t>(
      std::max(1.0, cfg_.sprime_factor * s_));
  pass1_ = std::make_unique<Pass1State>(s_, sprime, rng_.Split());
}

TwoPassProductSampler::~TwoPassProductSampler() = default;

void TwoPassProductSampler::Pass1(const WeightedKey& item) {
  assert(!pass2_begun_);
  pass1_->tau_tracker.Push(item.weight);
  pass1_->guide.Push(item);
}

void TwoPassProductSampler::BeginPass2() {
  assert(!pass2_begun_);
  pass2_begun_ = true;
  tau_ = pass1_->tau_tracker.tau();

  // Guide keys that would not be certain inclusions define the partition:
  // the kd-tree is built over their positions with uniform mass.
  const Sample guide = pass1_->guide.ToSample();
  std::vector<Point2D> pts;
  for (const auto& k : guide.entries()) {
    if (IppsProbability(k.weight, tau_) < 1.0) pts.push_back(k.pt);
  }
  pass1_.reset();  // release pass-1 memory, as a streaming system would

  std::vector<double> ones(pts.size(), 1.0);
  partition_ = KdHierarchy::Build(pts, ones);

  // Dense cell ids for kd leaves; a degenerate (empty) partition gets one
  // catch-all cell.
  cell_of_leaf_.assign(std::max(partition_.num_nodes(), 1), -1);
  int cells = 0;
  for (int v = 0; v < partition_.num_nodes(); ++v) {
    if (partition_.nodes()[v].IsLeaf()) cell_of_leaf_[v] = cells++;
  }
  if (cells == 0) cells = 1;
  active_.assign(cells, {});
}

void TwoPassProductSampler::Pass2(const WeightedKey& item) {
  assert(pass2_begun_);
  if (item.weight <= 0.0) return;
  double p = SnapProbability(IppsProbability(item.weight, tau_));
  if (p == 1.0) {
    sample_.push_back(item);  // certain inclusion
    return;
  }
  if (p == 0.0) return;
  const int leaf = partition_.LocateLeaf(item.pt);
  const int cell = leaf == KdHierarchy::kNull ? 0 : cell_of_leaf_[leaf];
  ActiveKey& a = active_[cell];
  if (!a.present) {
    a.key = item;
    a.p = p;
    a.present = true;
    return;
  }
  // IO-AGGREGATE (Algorithm 3): aggregate the arriving key with the cell's
  // active key; whichever becomes certain joins the sample, and the one
  // left open (if any) stays active.
  PairAggregate(&p, &a.p, &rng_);
  if (a.p == 1.0) sample_.push_back(a.key);
  if (!IsSet(a.p)) {
    // a remains the active key with its leftover probability.
  } else {
    a.present = false;
  }
  if (p == 1.0) sample_.push_back(item);
  if (!IsSet(p)) {
    assert(!a.present);
    a.key = item;
    a.p = p;
    a.present = true;
  }
}

Sample TwoPassProductSampler::Finalize() {
  assert(pass2_begun_);
  // Gather the active keys and aggregate them bottom-up along the kd-tree
  // (the partition *is* the hierarchy h of Section 5).
  std::vector<WeightedKey> akeys;
  std::vector<double> aprobs;
  std::vector<std::size_t> entry_of_cell(active_.size(), kNoEntry);
  for (std::size_t c = 0; c < active_.size(); ++c) {
    if (active_[c].present) {
      entry_of_cell[c] = akeys.size();
      akeys.push_back(active_[c].key);
      aprobs.push_back(active_[c].p);
    }
  }
  const int n = partition_.num_nodes();
  std::size_t root_leftover = kNoEntry;
  RngStream draws(&rng_);
  if (n == 0) {
    // Catch-all cell only.
    if (entry_of_cell[0] != kNoEntry) root_leftover = entry_of_cell[0];
  } else {
    std::vector<std::size_t> leftover(n, kNoEntry);
    std::vector<std::size_t> entries;
    for (int v = n - 1; v >= 0; --v) {
      const auto& node = partition_.nodes()[v];
      entries.clear();
      if (node.IsLeaf()) {
        const std::size_t e = entry_of_cell[cell_of_leaf_[v]];
        if (e != kNoEntry && !IsSet(aprobs[e])) entries.push_back(e);
      } else {
        if (leftover[node.left] != kNoEntry) {
          entries.push_back(leftover[node.left]);
        }
        if (leftover[node.right] != kNoEntry) {
          entries.push_back(leftover[node.right]);
        }
      }
      leftover[v] = ChainAggregateRange(aprobs.data(), entries.data(),
                                        entries.size(), kNoEntry, &draws);
    }
    root_leftover = leftover[partition_.root()];
  }
  ResolveResidual(aprobs.data(), root_leftover, &draws);
  draws.Flush();
  for (std::size_t e = 0; e < akeys.size(); ++e) {
    if (aprobs[e] == 1.0) sample_.push_back(akeys[e]);
  }
  for (auto& slot : active_) slot.present = false;
  return Sample(tau_, std::move(sample_));
}

Sample TwoPassProductSample(const std::vector<WeightedKey>& items, double s,
                            const TwoPassConfig& cfg, Rng* rng) {
  TwoPassProductSampler sampler(s, cfg, rng->Split());
  for (const auto& it : items) sampler.Pass1(it);
  sampler.BeginPass2();
  for (const auto& it : items) sampler.Pass2(it);
  return sampler.Finalize();
}

Sample TwoPassOrderSample(const std::vector<WeightedKey>& items, double s,
                          const TwoPassConfig& cfg, Rng* rng) {
  // Pass 1: threshold + guide sample.
  const auto sprime =
      static_cast<std::size_t>(std::max(1.0, cfg.sprime_factor * s));
  StreamTau tau_tracker(s);
  StreamVarOpt guide(sprime, rng->Split());
  for (const auto& it : items) {
    tau_tracker.Push(it.weight);
    guide.Push(it);
  }
  const double tau = tau_tracker.tau();

  // Partition: boundaries at the guide keys (excluding certain inclusions),
  // sorted by coordinate; cell j = keys with x in (b_{j-1}, b_j].
  std::vector<Coord> bounds;
  const Sample guide_sample = guide.ToSample();
  for (const auto& k : guide_sample.entries()) {
    if (IppsProbability(k.weight, tau) < 1.0) bounds.push_back(k.pt.x);
  }
  std::sort(bounds.begin(), bounds.end());
  bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());
  const std::size_t cells = bounds.size() + 1;

  struct ActiveKey {
    WeightedKey key;
    double p = 0.0;
    bool present = false;
  };
  std::vector<ActiveKey> active(cells);
  std::vector<WeightedKey> sample;
  Rng local = rng->Split();

  // Pass 2: IO-AGGREGATE per cell.
  for (const auto& item : items) {
    if (item.weight <= 0.0) continue;
    double p = SnapProbability(IppsProbability(item.weight, tau));
    if (p == 1.0) {
      sample.push_back(item);
      continue;
    }
    if (p == 0.0) continue;
    const std::size_t cell =
        std::lower_bound(bounds.begin(), bounds.end(), item.pt.x) -
        bounds.begin();
    ActiveKey& a = active[cell];
    if (!a.present) {
      a.key = item;
      a.p = p;
      a.present = true;
      continue;
    }
    PairAggregate(&p, &a.p, &local);
    if (a.p == 1.0) sample.push_back(a.key);
    if (IsSet(a.p)) a.present = false;
    if (p == 1.0) sample.push_back(item);
    if (!IsSet(p)) {
      a.key = item;
      a.p = p;
      a.present = true;
    }
  }

  // Final aggregation: left-to-right fold over cells (the main-memory order
  // aggregation applied to the active keys).
  std::vector<WeightedKey> akeys;
  std::vector<double> aprobs;
  for (const auto& slot : active) {
    if (slot.present) {
      akeys.push_back(slot.key);
      aprobs.push_back(slot.p);
    }
  }
  std::vector<std::size_t> order(akeys.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  {
    RngStream draws(&local);
    const std::size_t leftover = ChainAggregateRange(
        aprobs.data(), order.data(), order.size(), kNoEntry, &draws);
    ResolveResidual(aprobs.data(), leftover, &draws);
  }
  for (std::size_t e = 0; e < akeys.size(); ++e) {
    if (aprobs[e] == 1.0) sample.push_back(akeys[e]);
  }
  return Sample(tau, std::move(sample));
}

namespace {

/// IO-AGGREGATE step shared by the 1-D two-pass variants: processes one key
/// against the active slot of its cell.
struct CellSlot {
  WeightedKey key;
  double p = 0.0;
  bool present = false;
};

void IoAggregateStep(const WeightedKey& item, double p, CellSlot* slot,
                     std::vector<WeightedKey>* sample, Rng* rng) {
  if (!slot->present) {
    slot->key = item;
    slot->p = p;
    slot->present = true;
    return;
  }
  PairAggregate(&p, &slot->p, rng);
  if (slot->p == 1.0) sample->push_back(slot->key);
  if (IsSet(slot->p)) slot->present = false;
  if (p == 1.0) sample->push_back(item);
  if (!IsSet(p)) {
    slot->key = item;
    slot->p = p;
    slot->present = true;
  }
}

}  // namespace

Sample TwoPassDisjointSample(const std::vector<WeightedKey>& items,
                             const std::vector<int>& range_of,
                             int num_ranges, double s,
                             const TwoPassConfig& cfg, Rng* rng) {
  assert(items.size() == range_of.size());
  // Pass 1.
  const auto sprime =
      static_cast<std::size_t>(std::max(1.0, cfg.sprime_factor * s));
  StreamTau tau_tracker(s);
  StreamVarOpt guide(sprime, rng->Split());
  for (const auto& it : items) {
    tau_tracker.Push(it.weight);
    guide.Push(it);
  }
  const double tau = tau_tracker.tau();

  // Partition: a dedicated cell per range represented in the guide sample,
  // plus one cell per maximal run of unrepresented range ids (these runs
  // carry < 1 probability mass w.h.p.).
  std::vector<char> represented(num_ranges, 0);
  const Sample guide_sample = guide.ToSample();
  for (const auto& k : guide_sample.entries()) {
    if (IppsProbability(k.weight, tau) < 1.0) {
      represented[range_of[k.id]] = 1;
    }
  }
  std::vector<int> cell_of_range(num_ranges, -1);
  int cells = 0;
  int current_gap_cell = -1;
  for (int r = 0; r < num_ranges; ++r) {
    if (represented[r]) {
      cell_of_range[r] = cells++;
      current_gap_cell = -1;
    } else {
      if (current_gap_cell < 0) current_gap_cell = cells++;
      cell_of_range[r] = current_gap_cell;
    }
  }
  if (cells == 0) cells = 1;

  // Pass 2.
  std::vector<CellSlot> active(cells);
  std::vector<WeightedKey> sample;
  Rng local = rng->Split();
  for (const auto& item : items) {
    if (item.weight <= 0.0) continue;
    const double p = SnapProbability(IppsProbability(item.weight, tau));
    if (p == 1.0) {
      sample.push_back(item);
      continue;
    }
    if (p == 0.0) continue;
    const int cell = std::max(0, cell_of_range[range_of[item.id]]);
    IoAggregateStep(item, p, &active[cell], &sample, &local);
  }

  // Final aggregation: across-cell order is arbitrary for disjoint ranges.
  std::vector<WeightedKey> akeys;
  std::vector<double> aprobs;
  for (const auto& slot : active) {
    if (slot.present) {
      akeys.push_back(slot.key);
      aprobs.push_back(slot.p);
    }
  }
  std::vector<std::size_t> order(akeys.size());
  std::iota(order.begin(), order.end(), 0);
  {
    RngStream draws(&local);
    const std::size_t leftover = ChainAggregateRange(
        aprobs.data(), order.data(), order.size(), kNoEntry, &draws);
    ResolveResidual(aprobs.data(), leftover, &draws);
  }
  for (std::size_t e = 0; e < akeys.size(); ++e) {
    if (aprobs[e] == 1.0) sample.push_back(akeys[e]);
  }
  return Sample(tau, std::move(sample));
}

Sample TwoPassHierarchySample(const std::vector<WeightedKey>& items,
                              const Hierarchy& h, double s,
                              const TwoPassConfig& cfg,
                              HierarchyTwoPassVariant variant, Rng* rng) {
  assert(items.size() == h.num_keys());
  if (variant == HierarchyTwoPassVariant::kLinearize) {
    // Totally order the keys by DFS rank and run the order variant; node
    // ranges are rank intervals, so Delta < 2 w.h.p. carries over.
    std::vector<WeightedKey> relabeled = items;
    for (auto& it : relabeled) {
      it.pt.x = h.rank_of_key(it.id);
    }
    return TwoPassOrderSample(relabeled, s, cfg, rng);
  }

  // Ancestor variant: select every ancestor of every guide key; each key's
  // cell is its lowest selected ancestor. Works best for shallow
  // hierarchies (the paper's caveat) but gives Delta < 1 w.h.p.
  const auto sprime =
      static_cast<std::size_t>(std::max(1.0, cfg.sprime_factor * s));
  StreamTau tau_tracker(s);
  StreamVarOpt guide(sprime, rng->Split());
  for (const auto& it : items) {
    tau_tracker.Push(it.weight);
    guide.Push(it);
  }
  const double tau = tau_tracker.tau();

  std::vector<char> selected(h.num_nodes(), 0);
  const Sample guide_sample = guide.ToSample();
  for (const auto& k : guide_sample.entries()) {
    if (IppsProbability(k.weight, tau) >= 1.0) continue;
    for (int v = h.leaf_of_key(k.id); v != Hierarchy::kNoParent;
         v = h.parent(v)) {
      if (selected[v]) break;  // ancestors above are already selected
      selected[v] = 1;
    }
  }
  selected[h.root()] = 1;  // catch-all for keys outside all guide subtrees

  // Dense cell ids for selected nodes.
  std::vector<int> cell_of_node(h.num_nodes(), -1);
  int cells = 0;
  for (int v = 0; v < h.num_nodes(); ++v) {
    if (selected[v]) cell_of_node[v] = cells++;
  }

  // Pass 2: a key's cell is its lowest selected ancestor.
  std::vector<CellSlot> active(cells);
  std::vector<WeightedKey> sample;
  Rng local = rng->Split();
  for (const auto& item : items) {
    if (item.weight <= 0.0) continue;
    const double p = SnapProbability(IppsProbability(item.weight, tau));
    if (p == 1.0) {
      sample.push_back(item);
      continue;
    }
    if (p == 0.0) continue;
    int v = h.leaf_of_key(item.id);
    while (!selected[v]) v = h.parent(v);
    IoAggregateStep(item, p, &active[cell_of_node[v]], &sample, &local);
  }

  // Final aggregation follows the hierarchy: bottom-up, each node chains
  // its own active key with the leftovers of its children (builders
  // guarantee parent(v) < v, so a reverse scan is bottom-up).
  std::vector<WeightedKey> akeys;
  std::vector<double> aprobs;
  std::vector<std::size_t> entry_of_cell(cells, kNoEntry);
  for (int c = 0; c < cells; ++c) {
    if (active[c].present) {
      entry_of_cell[c] = akeys.size();
      akeys.push_back(active[c].key);
      aprobs.push_back(active[c].p);
    }
  }
  std::vector<std::size_t> leftover(h.num_nodes(), kNoEntry);
  std::vector<std::size_t> entries;
  {
    RngStream draws(&local);
    for (int v = h.num_nodes() - 1; v >= 0; --v) {
      entries.clear();
      if (selected[v] && entry_of_cell[cell_of_node[v]] != kNoEntry) {
        entries.push_back(entry_of_cell[cell_of_node[v]]);
      }
      for (int c : h.children(v)) {
        if (leftover[c] != kNoEntry) entries.push_back(leftover[c]);
      }
      leftover[v] = ChainAggregateRange(aprobs.data(), entries.data(),
                                        entries.size(), kNoEntry, &draws);
    }
    ResolveResidual(aprobs.data(), leftover[h.root()], &draws);
  }
  for (std::size_t e = 0; e < akeys.size(); ++e) {
    if (aprobs[e] == 1.0) sample.push_back(akeys[e]);
  }
  return Sample(tau, std::move(sample));
}

}  // namespace sas
