// KD-HIERARCHY (Algorithm 2): a kd-tree over weighted 2-D keys used both as
// the aggregation hierarchy of the product-structure summarizer (Section 4)
// and as the space partition of the two-pass algorithm (Section 5).
//
// Axes are split round-robin; the split point on the current axis is the
// weighted median (the position minimizing |left mass - right mass|). For
// hierarchy axes the datasets lay leaf coordinates out in DFS order, so the
// coordinate median is a split over the hierarchy's canonical linearization
// (see DESIGN.md, substitution 3).

#ifndef SAS_AWARE_KD_HIERARCHY_H_
#define SAS_AWARE_KD_HIERARCHY_H_

#include <cstddef>
#include <vector>

#include "aware/kd_scratch.h"
#include "core/types.h"

namespace sas {

class KdHierarchy {
 public:
  static constexpr int kNull = -1;

  struct Node {
    int parent = kNull;
    int left = kNull;
    int right = kNull;
    int axis = 0;       // 0 = x, 1 = y (split axis; leaves: unused)
    Coord split = 0;    // points with axis-coord < split go left
    double mass = 0.0;  // total mass under this node
    // Leaves hold a contiguous run [begin, end) of item_order() (a single
    // item unless the build hit duplicate points).
    std::size_t begin = 0;
    std::size_t end = 0;

    bool IsLeaf() const { return left == kNull; }
  };

  /// Builds the tree over points with per-point mass (IPPS probabilities or
  /// uniform 1s). Points should be distinct; exact duplicates are kept
  /// together in one leaf.
  ///
  /// The build is a thin wrapper over the shared dims-parameterized
  /// KdBuildCore (aware/kd_build_core.h) with dims = 2, the Point2D array
  /// routed through its flat-coords facade: each axis is sorted once up
  /// front and both axis orders are maintained through stable partitions,
  /// so the per-level work is linear (the classic per-node re-sort made it
  /// O(n log^2 n)). All working memory — axis orders, partition buffer,
  /// task stack, and the SoA node accumulators — comes from the scratch
  /// arena; builds against a warm scratch allocate only the returned tree.
  /// The overload without a scratch uses an internal thread-local
  /// workspace.
  static KdHierarchy Build(const std::vector<Point2D>& pts,
                           const std::vector<double>& mass);
  static KdHierarchy Build(const std::vector<Point2D>& pts,
                           const std::vector<double>& mass,
                           KdBuildScratch* scratch);

  /// Rebuilds *out in place, reusing its node and item-order storage in
  /// addition to the scratch arena: a warm (scratch, out) pair makes the
  /// whole build allocation-free. Produces exactly the tree Build returns.
  static void BuildInto(const std::vector<Point2D>& pts,
                        const std::vector<double>& mass,
                        KdBuildScratch* scratch, KdHierarchy* out);

  const std::vector<Node>& nodes() const { return nodes_; }
  int root() const { return nodes_.empty() ? kNull : 0; }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }

  /// Item indices (into the build vectors) in kd DFS-leaf order.
  const std::vector<std::size_t>& item_order() const { return item_order_; }

  /// Descends by split coordinates to the leaf region containing pt. Works
  /// for arbitrary points, not only build points. Returns kNull on an empty
  /// tree.
  int LocateLeaf(const Point2D& pt) const;

  /// Minimal-depth nodes with mass <= limit ("s-leaves" of Appendix E).
  std::vector<int> SuperLeaves(double limit) const;

  /// Maximum leaf depth (root = 0).
  int MaxDepth() const;

 private:
  std::vector<Node> nodes_;
  std::vector<std::size_t> item_order_;
};

}  // namespace sas

#endif  // SAS_AWARE_KD_HIERARCHY_H_
