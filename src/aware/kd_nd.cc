#include "aware/kd_nd.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <limits>

#include "core/ipps.h"
#include "core/pair_aggregate.h"

namespace sas {

bool BoxNContains(const BoxN& box, const Coord* pt) {
  for (std::size_t a = 0; a < box.size(); ++a) {
    if (!box[a].Contains(pt[a])) return false;
  }
  return true;
}

KdHierarchyNd KdHierarchyNd::Build(const std::vector<Coord>& coords,
                                   int dims,
                                   const std::vector<double>& mass) {
  thread_local KdBuildScratch scratch;
  return Build(coords, dims, mass, &scratch);
}

KdHierarchyNd KdHierarchyNd::Build(const std::vector<Coord>& coords,
                                   int dims,
                                   const std::vector<double>& mass,
                                   KdBuildScratch* scratch) {
  assert(dims >= 1);
  assert(coords.size() == mass.size() * dims);
  KdHierarchyNd tree;
  tree.dims_ = dims;
  const std::size_t n = mass.size();
  if (n == 0) return tree;
  MonotonicArena& arena = scratch->arena;
  arena.Reset();

  auto axis_coord = [&](std::uint32_t item, int axis) {
    return coords[static_cast<std::size_t>(item) * dims + axis];
  };

  // One item order per axis, each sorted once (coordinate, then index);
  // splits maintain all d orders with stable partitions — the same
  // sort-once scheme as the 2-D build, generalized.
  std::uint32_t** ord = arena.AllocateArray<std::uint32_t*>(dims);
  for (int axis = 0; axis < dims; ++axis) {
    ord[axis] = arena.AllocateArray<std::uint32_t>(n);
    std::uint32_t* o = ord[axis];
    for (std::size_t i = 0; i < n; ++i) o[i] = static_cast<std::uint32_t>(i);
    std::sort(o, o + n, [&](std::uint32_t a, std::uint32_t b) {
      const Coord ca = axis_coord(a, axis);
      const Coord cb = axis_coord(b, axis);
      return ca != cb ? ca < cb : a < b;
    });
  }
  std::uint32_t* part_tmp = arena.AllocateArray<std::uint32_t>(n);

  struct Task {
    std::int32_t node;
    std::uint32_t begin, end;
    std::int32_t depth;
    std::int32_t parent_axis;  // -1 for the root
  };
  const std::size_t node_cap = 2 * n;
  static_assert(kNull == -1,
                "KdNodeSoA::Emplace hardcodes -1 as the null child");
  KdNodeSoA soa;
  soa.Init(&arena, node_cap);

  Task* stack = arena.AllocateArray<Task>(n + 1);
  std::size_t stack_size = 0;
  tree.item_order_.resize(n);
  std::int32_t num_nodes = 1;
  soa.Emplace(0, kNull);
  stack[stack_size++] = {0, 0, static_cast<std::uint32_t>(n), 0, -1};
  while (stack_size > 0) {
    const Task t = stack[--stack_size];
    soa.begin[t.node] = t.begin;
    soa.end[t.node] = t.end;
    double total = 0.0;
    if (t.parent_axis < 0) {
      for (std::uint32_t i = t.begin; i < t.end; ++i) total += mass[i];
    } else {
      const std::uint32_t* po = ord[t.parent_axis];
      for (std::uint32_t i = t.begin; i < t.end; ++i) total += mass[po[i]];
    }
    soa.mass[t.node] = total;
    if (t.end - t.begin <= 1) {
      if (t.end > t.begin) tree.item_order_[t.begin] = ord[0][t.begin];
      continue;
    }

    int axis = t.depth % dims;
    int used_axis = axis;
    bool split_found = false;
    std::uint32_t split_pos = t.begin;
    Coord split_val = 0;
    for (int attempt = 0; attempt < dims && !split_found;
         ++attempt, axis = (axis + 1) % dims) {
      const std::uint32_t* o = ord[axis];
      if (axis_coord(o[t.begin], axis) == axis_coord(o[t.end - 1], axis)) {
        continue;
      }
      double run = 0.0;
      double best_gap = std::numeric_limits<double>::infinity();
      for (std::uint32_t i = t.begin; i + 1 < t.end; ++i) {
        run += mass[o[i]];
        if (axis_coord(o[i], axis) == axis_coord(o[i + 1], axis)) {
          continue;
        }
        const double gap = std::fabs(total - 2.0 * run);
        if (gap < best_gap) {
          best_gap = gap;
          split_pos = i + 1;
          split_val = axis_coord(o[i + 1], axis);
        }
      }
      split_found = split_pos > t.begin;
      used_axis = axis;
    }
    if (!split_found) {
      // All points identical: one leaf, emitted in the order of the last
      // attempted axis (ties are index-ordered, so any axis agrees).
      const std::uint32_t* o = ord[(t.depth + dims - 1) % dims];
      for (std::uint32_t i = t.begin; i < t.end; ++i) {
        tree.item_order_[i] = o[i];
      }
      continue;
    }
    // Stable-partition every other axis order around the split coordinate.
    for (int a = 0; a < dims; ++a) {
      if (a == used_axis) continue;
      std::uint32_t* o2 = ord[a];
      std::uint32_t nl = t.begin, nr = 0;
      for (std::uint32_t i = t.begin; i < t.end; ++i) {
        const std::uint32_t item = o2[i];
        if (axis_coord(item, used_axis) < split_val) {
          o2[nl++] = item;
        } else {
          part_tmp[nr++] = item;
        }
      }
      assert(nl == split_pos);
      std::copy(part_tmp, part_tmp + nr, o2 + nl);
    }

    const std::int32_t left = num_nodes++;
    const std::int32_t right = num_nodes++;
    soa.Emplace(left, t.node);
    soa.Emplace(right, t.node);
    soa.axis[t.node] = used_axis;
    soa.split[t.node] = split_val;
    soa.left[t.node] = left;
    soa.right[t.node] = right;
    stack[stack_size++] = {right, split_pos, t.end, t.depth + 1, used_axis};
    stack[stack_size++] = {left, t.begin, split_pos, t.depth + 1, used_axis};
  }

  assert(static_cast<std::size_t>(num_nodes) < node_cap);
  tree.nodes_.resize(num_nodes);
  for (std::int32_t v = 0; v < num_nodes; ++v) {
    Node& nd = tree.nodes_[v];
    nd.left = soa.left[v];
    nd.right = soa.right[v];
    nd.axis = soa.axis[v];
    nd.split = soa.split[v];
    nd.mass = soa.mass[v];
    nd.begin = soa.begin[v];
    nd.end = soa.end[v];
  }
  return tree;
}

ResultNd ProductSummarizeNd(const std::vector<Coord>& coords, int dims,
                            const std::vector<Weight>& weights, double s,
                            Rng* rng) {
  ResultNd out;
  out.tau = SolveTau(weights, s);
  IppsProbabilities(weights, out.tau, &out.probs);
  for (auto& q : out.probs) q = SnapProbability(q);

  // Certain inclusions go straight to the sample; the kd hierarchy is
  // built over the open keys.
  std::vector<std::size_t> open;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (out.probs[i] == 1.0) {
      out.chosen.push_back(i);
    } else if (!IsSet(out.probs[i])) {
      open.push_back(i);
    }
  }
  std::vector<Coord> sub_coords;
  std::vector<double> sub_mass;
  sub_coords.reserve(open.size() * dims);
  sub_mass.reserve(open.size());
  for (std::size_t i : open) {
    for (int a = 0; a < dims; ++a) sub_coords.push_back(coords[i * dims + a]);
    sub_mass.push_back(out.probs[i]);
  }
  const KdHierarchyNd tree = KdHierarchyNd::Build(sub_coords, dims, sub_mass);

  // Bottom-up lowest-LCA aggregation (children follow parents in node
  // order, so a reverse scan is bottom-up). All per-node chains share one
  // draw stream, repositioned once at the end of the pass.
  std::vector<double> work = sub_mass;
  const int n = tree.num_nodes();
  std::vector<std::size_t> leftover(std::max(n, 1), kNoEntry);
  std::vector<std::size_t> entries;
  {
    RngStream draws(rng);
    for (int v = n - 1; v >= 0; --v) {
      const auto& node = tree.nodes()[v];
      entries.clear();
      if (node.IsLeaf()) {
        for (std::size_t i = node.begin; i < node.end; ++i) {
          const std::size_t item = tree.item_order()[i];
          if (!IsSet(work[item])) entries.push_back(item);
        }
      } else {
        if (leftover[node.left] != kNoEntry) {
          entries.push_back(leftover[node.left]);
        }
        if (leftover[node.right] != kNoEntry) {
          entries.push_back(leftover[node.right]);
        }
      }
      leftover[v] = ChainAggregateRange(work.data(), entries.data(),
                                        entries.size(), kNoEntry, &draws);
    }
    if (n > 0) ResolveResidual(work.data(), leftover[tree.root()], &draws);
  }
  for (std::size_t j = 0; j < open.size(); ++j) {
    if (work[j] == 1.0) out.chosen.push_back(open[j]);
  }
  return out;
}

}  // namespace sas
