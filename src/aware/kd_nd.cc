#include "aware/kd_nd.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

#include "aware/kd_build_core.h"
#include "core/ipps.h"
#include "core/pair_aggregate.h"

namespace sas {

static_assert(KdHierarchyNd::kNull == kKdNull,
              "KdHierarchyNd::kNull must match the core's sentinel");

bool BoxNContains(const BoxN& box, const Coord* pt) {
  for (std::size_t a = 0; a < box.size(); ++a) {
    if (!box[a].Contains(pt[a])) return false;
  }
  return true;
}

KdHierarchyNd KdHierarchyNd::Build(const std::vector<Coord>& coords,
                                   int dims,
                                   const std::vector<double>& mass) {
  thread_local KdBuildScratch scratch;
  return Build(coords, dims, mass, &scratch);
}

KdHierarchyNd KdHierarchyNd::Build(const std::vector<Coord>& coords,
                                   int dims,
                                   const std::vector<double>& mass,
                                   KdBuildScratch* scratch) {
  assert(dims >= 1);
  assert(coords.size() == mass.size() * dims);
  KdHierarchyNd tree;
  tree.dims_ = dims;
  const std::size_t n = mass.size();
  if (n == 0) return tree;

  const KdCoreBuild core = KdBuildCore(coords.data(), dims, mass.data(), n,
                                       scratch, &tree.item_order_);

  tree.nodes_.resize(core.num_nodes);
  for (std::int32_t v = 0; v < core.num_nodes; ++v) {
    Node& nd = tree.nodes_[v];
    nd.left = core.soa.left[v];
    nd.right = core.soa.right[v];
    nd.axis = core.soa.axis[v];
    nd.split = core.soa.split[v];
    nd.mass = core.soa.mass[v];
    nd.begin = core.soa.begin[v];
    nd.end = core.soa.end[v];
  }
  return tree;
}

ResultNd ProductSummarizeNd(const std::vector<Coord>& coords, int dims,
                            const std::vector<Weight>& weights, double s,
                            Rng* rng) {
  ResultNd out;
  out.tau = SolveTau(weights, s);
  IppsProbabilities(weights, out.tau, &out.probs);
  for (auto& q : out.probs) q = SnapProbability(q);

  // Certain inclusions go straight to the sample; the kd hierarchy is
  // built over the open keys.
  std::vector<std::size_t> open;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (out.probs[i] == 1.0) {
      out.chosen.push_back(i);
    } else if (!IsSet(out.probs[i])) {
      open.push_back(i);
    }
  }
  std::vector<Coord> sub_coords;
  std::vector<double> sub_mass;
  sub_coords.reserve(open.size() * dims);
  sub_mass.reserve(open.size());
  for (std::size_t i : open) {
    for (int a = 0; a < dims; ++a) sub_coords.push_back(coords[i * dims + a]);
    sub_mass.push_back(out.probs[i]);
  }
  const KdHierarchyNd tree = KdHierarchyNd::Build(sub_coords, dims, sub_mass);

  // Bottom-up lowest-LCA aggregation (children follow parents in node
  // order, so a reverse scan is bottom-up). All per-node chains share one
  // draw stream, repositioned once at the end of the pass.
  std::vector<double> work = sub_mass;
  const int n = tree.num_nodes();
  std::vector<std::size_t> leftover(std::max(n, 1), kNoEntry);
  std::vector<std::size_t> entries;
  {
    RngStream draws(rng);
    for (int v = n - 1; v >= 0; --v) {
      const auto& node = tree.nodes()[v];
      entries.clear();
      if (node.IsLeaf()) {
        for (std::size_t i = node.begin; i < node.end; ++i) {
          const std::size_t item = tree.item_order()[i];
          if (!IsSet(work[item])) entries.push_back(item);
        }
      } else {
        if (leftover[node.left] != kNoEntry) {
          entries.push_back(leftover[node.left]);
        }
        if (leftover[node.right] != kNoEntry) {
          entries.push_back(leftover[node.right]);
        }
      }
      leftover[v] = ChainAggregateRange(work.data(), entries.data(),
                                        entries.size(), kNoEntry, &draws);
    }
    if (n > 0) ResolveResidual(work.data(), leftover[tree.root()], &draws);
  }
  for (std::size_t j = 0; j < open.size(); ++j) {
    if (work[j] == 1.0) out.chosen.push_back(open[j]);
  }
  return out;
}

}  // namespace sas
