#include "aware/kd_nd.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

#include "aware/kd_build_core.h"
#include "aware/summarize_scratch.h"
#include "core/ipps.h"
#include "core/pair_aggregate.h"

namespace sas {

static_assert(KdHierarchyNd::kNull == kKdNull,
              "KdHierarchyNd::kNull must match the core's sentinel");

bool BoxNContains(const BoxN& box, const Coord* pt) {
  for (std::size_t a = 0; a < box.size(); ++a) {
    if (!box[a].Contains(pt[a])) return false;
  }
  return true;
}

KdHierarchyNd KdHierarchyNd::Build(const std::vector<Coord>& coords,
                                   int dims,
                                   const std::vector<double>& mass) {
  thread_local KdBuildScratch scratch;
  return Build(coords, dims, mass, &scratch);
}

KdHierarchyNd KdHierarchyNd::Build(const std::vector<Coord>& coords,
                                   int dims,
                                   const std::vector<double>& mass,
                                   KdBuildScratch* scratch) {
  KdHierarchyNd tree;
  BuildInto(coords, dims, mass, scratch, &tree);
  return tree;
}

void KdHierarchyNd::BuildInto(const std::vector<Coord>& coords, int dims,
                              const std::vector<double>& mass,
                              KdBuildScratch* scratch, KdHierarchyNd* out) {
  assert(dims >= 1);
  assert(coords.size() == mass.size() * static_cast<std::size_t>(dims));
  out->dims_ = dims;
  const std::size_t n = mass.size();
  if (n == 0) {
    out->nodes_.clear();
    out->item_order_.clear();
    return;
  }

  const KdCoreBuild core = KdBuildCore(coords.data(), dims, mass.data(), n,
                                       scratch, &out->item_order_);

  out->nodes_.resize(static_cast<std::size_t>(core.num_nodes));
  for (std::int32_t v = 0; v < core.num_nodes; ++v) {
    Node& nd = out->nodes_[static_cast<std::size_t>(v)];
    nd.left = core.soa.left[v];
    nd.right = core.soa.right[v];
    nd.axis = core.soa.axis[v];
    nd.split = core.soa.split[v];
    nd.mass = core.soa.mass[v];
    nd.begin = core.soa.begin[v];
    nd.end = core.soa.end[v];
  }
}

void ProductSummarizeNdInto(const std::vector<Coord>& coords, int dims,
                            const std::vector<Weight>& weights, double s,
                            Rng* rng, SummarizeScratch* scratch,
                            ResultNd* out) {
  out->tau = SolveTau(weights, s, &scratch->ipps);
  IppsProbabilities(weights, out->tau, &out->probs);
  for (auto& q : out->probs) q = SnapProbability(q);

  // Certain inclusions go straight to the sample; the kd hierarchy is
  // built over the open keys.
  out->chosen.clear();
  auto& open = scratch->open;
  open.clear();
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (out->probs[i] == 1.0) {
      out->chosen.push_back(i);
    } else if (!IsSet(out->probs[i])) {
      open.push_back(i);
    }
  }
  auto& sub_coords = scratch->coords;
  auto& sub_mass = scratch->mass;
  sub_coords.clear();
  sub_mass.clear();
  sub_coords.reserve(open.size() * static_cast<std::size_t>(dims));
  sub_mass.reserve(open.size());
  const std::size_t ud = static_cast<std::size_t>(dims);
  for (std::size_t i : open) {
    for (std::size_t a = 0; a < ud; ++a) {
      sub_coords.push_back(coords[i * ud + a]);
    }
    sub_mass.push_back(out->probs[i]);
  }
  KdHierarchyNd::BuildInto(sub_coords, dims, sub_mass, &scratch->kd,
                           &scratch->tree_nd);
  const KdHierarchyNd& tree = scratch->tree_nd;

  // Bottom-up lowest-LCA aggregation (children follow parents in node
  // order, so a reverse scan is bottom-up). All per-node chains share one
  // draw stream, repositioned once at the end of the pass.
  auto& work = scratch->work;
  work.assign(sub_mass.begin(), sub_mass.end());
  const int n = tree.num_nodes();
  auto& leftover = scratch->leftover;
  leftover.assign(static_cast<std::size_t>(std::max(n, 1)), kNoEntry);
  auto& entries = scratch->entries;
  {
    RngStream draws(rng);
    for (int v = n - 1; v >= 0; --v) {
      const auto& node = tree.nodes()[static_cast<std::size_t>(v)];
      entries.clear();
      if (node.IsLeaf()) {
        for (std::size_t i = node.begin; i < node.end; ++i) {
          const std::size_t item = tree.item_order()[i];
          if (!IsSet(work[item])) entries.push_back(item);
        }
      } else {
        if (leftover[static_cast<std::size_t>(node.left)] != kNoEntry) {
          entries.push_back(leftover[static_cast<std::size_t>(node.left)]);
        }
        if (leftover[static_cast<std::size_t>(node.right)] != kNoEntry) {
          entries.push_back(leftover[static_cast<std::size_t>(node.right)]);
        }
      }
      leftover[static_cast<std::size_t>(v)] = ChainAggregateRange(
          work.data(), entries.data(), entries.size(), kNoEntry, &draws);
    }
    if (n > 0) {
      ResolveResidual(work.data(),
                      leftover[static_cast<std::size_t>(tree.root())], &draws);
    }
  }
  for (std::size_t j = 0; j < open.size(); ++j) {
    if (work[j] == 1.0) out->chosen.push_back(open[j]);
  }
}

ResultNd ProductSummarizeNd(const std::vector<Coord>& coords, int dims,
                            const std::vector<Weight>& weights, double s,
                            Rng* rng) {
  thread_local SummarizeScratch scratch;
  ResultNd out;
  ProductSummarizeNdInto(coords, dims, weights, s, rng, &scratch, &out);
  return out;
}

}  // namespace sas
