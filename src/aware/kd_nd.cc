#include "aware/kd_nd.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>

#include "core/ipps.h"
#include "core/pair_aggregate.h"

namespace sas {

bool BoxNContains(const BoxN& box, const Coord* pt) {
  for (std::size_t a = 0; a < box.size(); ++a) {
    if (!box[a].Contains(pt[a])) return false;
  }
  return true;
}

KdHierarchyNd KdHierarchyNd::Build(const std::vector<Coord>& coords,
                                   int dims,
                                   const std::vector<double>& mass) {
  assert(dims >= 1);
  assert(coords.size() == mass.size() * dims);
  KdHierarchyNd tree;
  tree.dims_ = dims;
  const std::size_t n = mass.size();
  if (n == 0) return tree;
  tree.item_order_.resize(n);
  std::iota(tree.item_order_.begin(), tree.item_order_.end(), 0);
  tree.nodes_.reserve(2 * n);
  tree.nodes_.push_back({});

  auto axis_coord = [&](std::size_t item, int axis) {
    return coords[item * dims + axis];
  };

  struct Task {
    int node;
    std::size_t begin, end;
    int depth;
  };
  std::vector<Task> stack{{0, 0, n, 0}};
  while (!stack.empty()) {
    const Task t = stack.back();
    stack.pop_back();
    auto& order = tree.item_order_;
    {
      Node& node = tree.nodes_[t.node];
      node.begin = t.begin;
      node.end = t.end;
      node.mass = 0.0;
      for (std::size_t i = t.begin; i < t.end; ++i) {
        node.mass += mass[order[i]];
      }
      if (t.end - t.begin <= 1) continue;
    }

    int axis = t.depth % dims;
    bool split_found = false;
    std::size_t split_pos = 0;
    Coord split_val = 0;
    double total = tree.nodes_[t.node].mass;
    for (int attempt = 0; attempt < dims && !split_found;
         ++attempt, axis = (axis + 1) % dims) {
      std::sort(order.begin() + t.begin, order.begin() + t.end,
                [&](std::size_t a, std::size_t b) {
                  return axis_coord(a, axis) < axis_coord(b, axis);
                });
      if (axis_coord(order[t.begin], axis) ==
          axis_coord(order[t.end - 1], axis)) {
        continue;
      }
      double run = 0.0;
      double best_gap = std::numeric_limits<double>::infinity();
      for (std::size_t i = t.begin; i + 1 < t.end; ++i) {
        run += mass[order[i]];
        if (axis_coord(order[i], axis) == axis_coord(order[i + 1], axis)) {
          continue;
        }
        const double gap = std::fabs(total - 2.0 * run);
        if (gap < best_gap) {
          best_gap = gap;
          split_pos = i + 1;
          split_val = axis_coord(order[i + 1], axis);
        }
      }
      split_found = split_pos > t.begin;
    }
    if (!split_found) continue;  // all points identical: one leaf
    const int used_axis = (axis + dims - 1) % dims;
    const int left = static_cast<int>(tree.nodes_.size());
    tree.nodes_.push_back({});
    const int right = static_cast<int>(tree.nodes_.size());
    tree.nodes_.push_back({});
    Node& nd = tree.nodes_[t.node];
    nd.axis = used_axis;
    nd.split = split_val;
    nd.left = left;
    nd.right = right;
    stack.push_back({right, split_pos, t.end, t.depth + 1});
    stack.push_back({left, t.begin, split_pos, t.depth + 1});
  }
  return tree;
}

ResultNd ProductSummarizeNd(const std::vector<Coord>& coords, int dims,
                            const std::vector<Weight>& weights, double s,
                            Rng* rng) {
  ResultNd out;
  out.tau = SolveTau(weights, s);
  IppsProbabilities(weights, out.tau, &out.probs);
  for (auto& q : out.probs) q = SnapProbability(q);

  // Certain inclusions go straight to the sample; the kd hierarchy is
  // built over the open keys.
  std::vector<std::size_t> open;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (out.probs[i] == 1.0) {
      out.chosen.push_back(i);
    } else if (!IsSet(out.probs[i])) {
      open.push_back(i);
    }
  }
  std::vector<Coord> sub_coords;
  std::vector<double> sub_mass;
  sub_coords.reserve(open.size() * dims);
  sub_mass.reserve(open.size());
  for (std::size_t i : open) {
    for (int a = 0; a < dims; ++a) sub_coords.push_back(coords[i * dims + a]);
    sub_mass.push_back(out.probs[i]);
  }
  const KdHierarchyNd tree = KdHierarchyNd::Build(sub_coords, dims, sub_mass);

  // Bottom-up lowest-LCA aggregation (children follow parents in node
  // order, so a reverse scan is bottom-up).
  std::vector<double> work = sub_mass;
  const int n = tree.num_nodes();
  std::vector<std::size_t> leftover(std::max(n, 1), kNoEntry);
  std::vector<std::size_t> entries;
  for (int v = n - 1; v >= 0; --v) {
    const auto& node = tree.nodes()[v];
    entries.clear();
    if (node.IsLeaf()) {
      for (std::size_t i = node.begin; i < node.end; ++i) {
        const std::size_t item = tree.item_order()[i];
        if (!IsSet(work[item])) entries.push_back(item);
      }
    } else {
      if (leftover[node.left] != kNoEntry) {
        entries.push_back(leftover[node.left]);
      }
      if (leftover[node.right] != kNoEntry) {
        entries.push_back(leftover[node.right]);
      }
    }
    leftover[v] = ChainAggregate(&work, entries, kNoEntry, rng);
  }
  if (n > 0) ResolveResidual(&work, leftover[tree.root()], rng);
  for (std::size_t j = 0; j < open.size(); ++j) {
    if (work[j] == 1.0) out.chosen.push_back(open[j]);
  }
  return out;
}

}  // namespace sas
