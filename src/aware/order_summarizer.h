// OSSUMMARIZE (Algorithm 5): structure-aware VarOpt sampling for order
// structures.
//
// Keys are scanned in sorted order keeping a single active (open) key; each
// new open key is pair-aggregated with the active one. The resulting VarOpt
// sample has prefix discrepancy < 1 and interval discrepancy < 2, which
// Theorem 1 shows is optimal for VarOpt samples on order structures.

#ifndef SAS_AWARE_ORDER_SUMMARIZER_H_
#define SAS_AWARE_ORDER_SUMMARIZER_H_

#include <vector>

#include "aware/summarize_scratch.h"
#include "core/random.h"
#include "core/sample.h"
#include "core/types.h"

namespace sas {

/// Result of a structure-aware summarization: the sample plus the initial
/// IPPS probabilities (needed by discrepancy evaluation; indexed like the
/// input items).
struct SummarizeResult {
  Sample sample;
  std::vector<double> probs;
  double tau = 0.0;
};

/// Low-level: aggregates the open entries of *probs following Algorithm 5,
/// scanning positions in the given order. On return every entry is set.
void OrderAggregate(std::vector<double>* probs,
                    const std::vector<std::size_t>& order, Rng* rng);

/// Draws a structure-aware VarOpt sample of (expected) size s where the
/// order is the x-coordinate of the items.
SummarizeResult OrderSummarize(const std::vector<WeightedKey>& items,
                               double s, Rng* rng);

/// Scratch-backed core of OrderSummarize: identical draws and sample, all
/// working memory from `scratch`, results into the caller-owned `out` —
/// warm rebuild cycles allocate nothing (see aware/summarize_scratch.h).
void OrderSummarizeInto(const std::vector<WeightedKey>& items, double s,
                        Rng* rng, SummarizeScratch* scratch,
                        SummarizeOutput* out);

}  // namespace sas

#endif  // SAS_AWARE_ORDER_SUMMARIZER_H_
