// The audited flat-coords facade: the single place in the library where a
// Point2D array is reinterpreted as an interleaved flat coordinate array
// (x0, y0, x1, y1, ...) so the dims-parameterized KdBuildCore can walk 2-D
// point storage without a copy.
//
// This is the only file where a bare reinterpret_cast is permitted
// (tools/sas_lint.py enforces that repo-wide); every layout assumption the
// cast relies on is pinned by the static_asserts below, so a Point2D change
// that breaks the aliasing turns into a compile error here rather than a
// silent misread in the build core.

#ifndef SAS_AWARE_FLAT_COORDS_H_
#define SAS_AWARE_FLAT_COORDS_H_

#include <cstddef>
#include <type_traits>

#include "core/types.h"

namespace sas {

static_assert(std::is_standard_layout_v<Point2D> &&
                  sizeof(Point2D) == 2 * sizeof(Coord) &&
                  offsetof(Point2D, x) == 0 &&
                  offsetof(Point2D, y) == sizeof(Coord),
              "Point2D must be layout-compatible with Coord[2] for the "
              "flat-coords facade over KdBuildCore");

/// Views `pts[0..n)` as the flat coord array (pts[0].x, pts[0].y,
/// pts[1].x, ...) of length 2n. The view borrows the point storage: it is
/// valid exactly as long as the pointed-to array and must only be read.
inline const Coord* AsFlatCoords(const Point2D* pts) {
  // sas-lint: allow(reinterpret-cast): layout pinned by the static_asserts
  // above; this facade exists so no other file needs a raw cast.
  return reinterpret_cast<const Coord*>(pts);
}

}  // namespace sas

#endif  // SAS_AWARE_FLAT_COORDS_H_
