#include "structure/dyadic.h"

#include <bit>
#include <cassert>

namespace sas {

Interval DyadicToInterval(const DyadicInterval& d, int bits) {
  const int shift = bits - d.level;
  const Coord lo = d.index << shift;
  return {lo, lo + (Coord{1} << shift)};
}

std::vector<DyadicInterval> DyadicDecompose(Coord lo, Coord hi, int bits) {
  assert(bits >= 0 && bits < 64);
  assert(hi <= (Coord{1} << bits));
  std::vector<DyadicInterval> out;
  // Greedy: repeatedly take the largest dyadic block aligned at `lo` that
  // does not overshoot `hi`.
  while (lo < hi) {
    // Largest power of two dividing lo (or the whole domain when lo == 0).
    int align = (lo == 0) ? bits : std::countr_zero(lo);
    if (align > bits) align = bits;
    // Shrink until the block fits within [lo, hi).
    Coord block = Coord{1} << align;
    while (lo + block > hi) {
      block >>= 1;
      --align;
    }
    out.push_back({bits - align, lo >> align});
    lo += block;
  }
  return out;
}

}  // namespace sas
