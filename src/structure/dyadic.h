// Dyadic-interval machinery used by the wavelet, q-digest and sketch
// baselines: canonical decomposition of an interval into O(log u) dyadic
// pieces, and dyadic ancestors of a point.
//
// Levels are counted from the root: level 0 is the whole domain [0, 2^bits),
// level j splits it into 2^j equal intervals, and level `bits` is the unit
// cells.

#ifndef SAS_STRUCTURE_DYADIC_H_
#define SAS_STRUCTURE_DYADIC_H_

#include <cstdint>
#include <vector>

#include "core/types.h"

namespace sas {

/// One dyadic interval: level j, index k covers
/// [k * 2^(bits-j), (k+1) * 2^(bits-j)).
struct DyadicInterval {
  int level = 0;
  Coord index = 0;

  friend bool operator==(const DyadicInterval&, const DyadicInterval&) =
      default;
};

/// The coordinate interval covered by a dyadic interval in a `bits`-bit
/// domain.
Interval DyadicToInterval(const DyadicInterval& d, int bits);

/// Index of the level-j dyadic ancestor of coordinate c.
inline Coord DyadicAncestorIndex(Coord c, int level, int bits) {
  return c >> (bits - level);
}

/// Canonical decomposition of [lo, hi) into at most 2*bits disjoint dyadic
/// intervals whose union is exactly [lo, hi). Requires hi <= 2^bits.
std::vector<DyadicInterval> DyadicDecompose(Coord lo, Coord hi, int bits);

}  // namespace sas

#endif  // SAS_STRUCTURE_DYADIC_H_
